package pdbscan

import (
	"fmt"
	"io"
	"slices"

	"pdbscan/internal/cellstore"
	"pdbscan/internal/core"
	"pdbscan/internal/grid"
)

// snapMagic opens every streaming snapshot stream (version is the first
// checksummed field).
const snapMagic = "PDBSNAP1"

const snapVersion = 1

// Snapshot serializes the StreamingClusterer's full warm state to w: the
// point set with its id assignment, the dynamic grid (including the pending
// dirty set — Snapshot never consumes it, so taking a snapshot does not
// perturb the next Run), and the incremental caches (core flags, per-cell
// core lists, cell-graph edge booleans; quadtrees are derived state and are
// rebuilt lazily after restore). The stream is checksummed; RestoreStreaming
// rejects any corruption.
//
// A restored clusterer's next Run recomputes only what the pending mutations
// dirtied — same as if the process had never exited — plus cheap grid-side
// geometry (bounding boxes, neighbor lists) that is cheaper to rebuild than
// to ship.
func (s *StreamingClusterer) Snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := cellstore.NewEncoder(w, snapMagic)
	enc.U64(snapVersion)
	enc.U64(uint64(s.dims))
	enc.F64(s.eps)
	enc.I64(s.nextID)
	enc.I64s(s.ids)
	enc.I32s(s.slots)

	ds := s.dyn.ExportState()
	enc.F64s(ds.Data)
	enc.I32s(ds.PtCell)
	enc.I32s(ds.FreePts)
	enc.Bools(ds.CellPresent)
	enc.Bools(ds.CellAlive)
	enc.I64s(ds.CellAbs)
	enc.I32s(ds.CellPtsOff)
	enc.I32s(ds.CellPtsFlat)
	enc.I32s(ds.FreeCells)
	enc.I32s(ds.DeadPending)
	enc.I32s(ds.Dirty)

	is := s.inc.ExportState()
	enc.Bool(is.Valid)
	enc.I64(int64(is.MinPts))
	enc.Bools(is.CoreFlags)
	enc.I32s(is.CoreOff)
	enc.I32s(is.CoreIdx)
	enc.F64s(is.CoreBBLo)
	enc.F64s(is.CoreBBHi)
	enc.I32s(is.EdgeOff)
	enc.I32s(is.EdgeH)
	enc.Bools(is.EdgeConn)
	enc.I64(int64(is.EdgeKind))
	enc.F64(is.EdgeRho)
	return enc.Flush()
}

// RestoreStreaming rebuilds a StreamingClusterer from a Snapshot stream. The
// restored clusterer is fully warm: point ids are preserved (LabelOf keys
// keep working, new Inserts continue the id sequence), pending mutations are
// still pending, and the incremental caches carry over — the next Run costs
// what it would have cost without the restart, up to a lazy quadtree rebuild
// and one pass of grid-side geometry.
//
// The stream is validated structurally and by checksum; a truncated,
// bit-flipped, or wrong-version stream returns an error.
func RestoreStreaming(r io.Reader) (*StreamingClusterer, error) {
	dec, err := cellstore.NewDecoder(r, snapMagic)
	if err != nil {
		return nil, err
	}
	if v := dec.U64(); dec.Err() == nil && v != snapVersion {
		return nil, fmt.Errorf("pdbscan: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	dims := int(dec.U64())
	eps := dec.F64()
	nextID := dec.I64()
	ids := dec.I64s()
	slots := dec.I32s()

	ds := &grid.DynamicState{
		Dims: dims,
		Eps:  eps,
	}
	ds.Data = dec.F64s()
	ds.PtCell = dec.I32s()
	ds.FreePts = dec.I32s()
	ds.CellPresent = dec.Bools()
	ds.CellAlive = dec.Bools()
	ds.CellAbs = dec.I64s()
	ds.CellPtsOff = dec.I32s()
	ds.CellPtsFlat = dec.I32s()
	ds.FreeCells = dec.I32s()
	ds.DeadPending = dec.I32s()
	ds.Dirty = dec.I32s()

	is := &core.IncrementalState{}
	is.Valid = dec.Bool()
	is.MinPts = int(dec.I64())
	is.CoreFlags = dec.Bools()
	is.CoreOff = dec.I32s()
	is.CoreIdx = dec.I32s()
	is.CoreBBLo = dec.F64s()
	is.CoreBBHi = dec.F64s()
	is.EdgeOff = dec.I32s()
	is.EdgeH = dec.I32s()
	is.EdgeConn = dec.Bools()
	is.EdgeKind = int(dec.I64())
	is.EdgeRho = dec.F64()
	if err := dec.Verify(); err != nil {
		return nil, err
	}

	dyn, err := grid.RestoreDynamic(ds)
	if err != nil {
		return nil, err
	}
	inc, err := core.RestoreIncremental(is)
	if err != nil {
		return nil, err
	}

	// The id table must name live point slots bijectively, in ascending id
	// order, below the id counter.
	if len(ids) != len(slots) || len(ids) != dyn.NumPoints() {
		return nil, fmt.Errorf("pdbscan: snapshot lists %d ids for %d slots and %d live points", len(ids), len(slots), dyn.NumPoints())
	}
	if !slices.IsSorted(ids) || (len(ids) > 0 && (ids[0] < 0 || ids[len(ids)-1] >= nextID)) {
		return nil, fmt.Errorf("pdbscan: snapshot id sequence invalid")
	}
	slotOf := make(map[int64]int32, len(ids))
	for k, id := range ids {
		slot := slots[k]
		if slot < 0 || int(slot) >= dyn.NumPointSlots() {
			return nil, fmt.Errorf("pdbscan: snapshot id %d names point slot %d of %d", id, slot, dyn.NumPointSlots())
		}
		if _, dup := slotOf[id]; dup {
			return nil, fmt.Errorf("pdbscan: snapshot repeats id %d", id)
		}
		slotOf[id] = slot
	}

	return &StreamingClusterer{
		dims:   dims,
		eps:    eps,
		dyn:    dyn,
		inc:    inc,
		arena:  core.NewArena(),
		ids:    ids,
		slots:  slots,
		slotOf: slotOf,
		nextID: nextID,
	}, nil
}
