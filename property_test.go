package pdbscan

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"pdbscan/internal/dataset"
	"pdbscan/internal/geom"
	"pdbscan/internal/metrics"
)

// TestPropertyExactMatchesOracle is the randomized end-to-end property test:
// for arbitrary small point sets and parameters, every exact method must
// reproduce the brute-force DBSCAN result exactly.
func TestPropertyExactMatchesOracle(t *testing.T) {
	type input struct {
		Seed   int64
		EpsQ   uint8 // quantized eps selector
		MinPts uint8
		Dims   uint8
	}
	cfgCheck := func(in input) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		d := 2 + int(in.Dims)%3 // 2..4
		n := 40 + rng.Intn(120)
		rows := make([][]float64, n)
		for i := range rows {
			row := make([]float64, d)
			for j := range row {
				// Mix of clustered and spread-out points.
				if rng.Float64() < 0.5 {
					row[j] = math.Floor(rng.Float64()*4) * 10
				} else {
					row[j] = rng.Float64() * 40
				}
				row[j] += rng.NormFloat64()
			}
			rows[i] = row
		}
		eps := []float64{0.5, 1.5, 3, 6, 12}[int(in.EpsQ)%5]
		minPts := 1 + int(in.MinPts)%8
		pts, _ := geom.FromRows(rows)
		ref := metrics.BruteDBSCAN(pts, eps, minPts)
		methods := []Method{MethodExact, MethodExactQt}
		if d == 2 {
			methods = append(methods, Method2DGridUSEC, Method2DBoxBCP, Method2DGridDelaunay)
		}
		for _, m := range methods {
			res, err := Cluster(rows, Config{Eps: eps, MinPts: minPts, Method: m})
			if err != nil {
				t.Logf("%s: %v", m, err)
				return false
			}
			if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
				t.Logf("%s eps=%v minPts=%d d=%d n=%d: %v", m, eps, minPts, d, n, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(cfgCheck, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyApproxIsValid checks the Gan–Tao validity of the approximate
// methods over random inputs and rho values.
func TestPropertyApproxIsValid(t *testing.T) {
	type input struct {
		Seed int64
		RhoQ uint8
	}
	cfgCheck := func(in input) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		n := 40 + rng.Intn(100)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{
				math.Floor(rng.Float64()*5)*8 + rng.NormFloat64(),
				math.Floor(rng.Float64()*5)*8 + rng.NormFloat64(),
				math.Floor(rng.Float64()*5)*8 + rng.NormFloat64(),
			}
		}
		rho := []float64{0.001, 0.01, 0.1, 0.5, 1}[int(in.RhoQ)%5]
		eps, minPts := 2.5, 4
		pts, _ := geom.FromRows(rows)
		for _, m := range []Method{MethodApprox, MethodApproxQt} {
			res, err := Cluster(rows, Config{Eps: eps, MinPts: minPts, Method: m, Rho: rho})
			if err != nil {
				return false
			}
			if err := metrics.ValidApproxResult(pts, eps, rho, minPts,
				res.Core, res.Labels, res.Border); err != nil {
				t.Logf("%s rho=%v: %v", m, rho, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(cfgCheck, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyShardedDifferential is the cross-path differential property
// test: for random point sets, methods, and shard counts, the three
// execution paths — sharded, monolithic, and streaming (which builds its
// cell structure incrementally through a different code path entirely) —
// must produce the same clustering. Exact methods must agree with the
// brute-force oracle on top; approximate methods are pinned by the
// cross-path equality itself plus Gan–Tao validity.
func TestPropertyShardedDifferential(t *testing.T) {
	type input struct {
		Seed    int64
		EpsQ    uint8
		MinPts  uint8
		Dims    uint8
		ShardsQ uint8
		MethodQ uint8
	}
	check := func(in input) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		d := 2 + int(in.Dims)%3 // 2..4
		n := 30 + rng.Intn(150)
		rows := make([][]float64, n)
		for i := range rows {
			row := make([]float64, d)
			for j := range row {
				if rng.Float64() < 0.5 {
					row[j] = math.Floor(rng.Float64()*4) * 8
				} else {
					row[j] = rng.Float64() * 32
				}
				row[j] += rng.NormFloat64()
			}
			rows[i] = row
		}
		eps := []float64{0.8, 1.5, 3, 7}[int(in.EpsQ)%4]
		minPts := 1 + int(in.MinPts)%7
		methods := streamMethodsFor(d)
		m := methods[int(in.MethodQ)%len(methods)]
		shards := []int{2, 3, 5, 11}[int(in.ShardsQ)%4]
		cfg := Config{Eps: eps, MinPts: minPts, Method: m}

		mono, err := Cluster(rows, cfg)
		if err != nil {
			t.Logf("%s monolithic: %v", m, err)
			return false
		}
		shCfg := cfg
		shCfg.Shards = shards
		sh, err := Cluster(rows, shCfg)
		if err != nil {
			t.Logf("%s shards=%d: %v", m, shards, err)
			return false
		}
		if err := equivalentResults(sh, mono); err != nil {
			t.Logf("%s d=%d n=%d eps=%v minPts=%d shards=%d: sharded vs monolithic: %v",
				m, d, n, eps, minPts, shards, err)
			return false
		}
		// Streaming third path: half the points, then the rest, then run —
		// its sharded tick must also agree.
		s, err := NewStreamingClusterer(d, eps)
		if err != nil {
			t.Logf("streaming: %v", err)
			return false
		}
		if _, err := s.Insert(rows[:n/2]); err != nil {
			t.Logf("streaming insert: %v", err)
			return false
		}
		if _, err := s.Run(Config{MinPts: minPts, Method: m}); err != nil {
			t.Logf("streaming warm-up run: %v", err)
			return false
		}
		if _, err := s.Insert(rows[n/2:]); err != nil {
			t.Logf("streaming insert: %v", err)
			return false
		}
		stream, err := s.Run(Config{MinPts: minPts, Method: m, Shards: shards})
		if err != nil {
			t.Logf("streaming sharded run: %v", err)
			return false
		}
		// StreamResult rows are in insertion order == rows order here.
		if err := equivalentResults(&stream.Result, mono); err != nil {
			t.Logf("%s d=%d n=%d eps=%v minPts=%d shards=%d: streaming-sharded vs monolithic: %v",
				m, d, n, eps, minPts, shards, err)
			return false
		}
		// Exact methods additionally face the oracle.
		if m != MethodApprox && m != MethodApproxQt {
			pts, _ := geom.FromRows(rows)
			ref := metrics.BruteDBSCAN(pts, eps, minPts)
			if err := metrics.SameDBSCANResult(ref, sh.Core, sh.Labels, sh.Border, sh.NumClusters); err != nil {
				t.Logf("%s d=%d n=%d eps=%v minPts=%d shards=%d: oracle: %v",
					m, d, n, eps, minPts, shards, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConcurrentRuns exercises concurrent sharded Run calls on one
// shared Clusterer — mixed shard counts, workers, and methods, overlapping
// with monolithic runs — under the race detector. Each call must still
// produce exactly its reference result: the sharded phases share the
// Clusterer's cell structure read-only and keep all mutable state per run.
func TestShardedConcurrentRuns(t *testing.T) {
	rows := blobs(900, 2, 29)
	eps := 2.5
	c, err := NewClusterer(rows, eps)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		minPts  int
		method  Method
		shards  int
		workers int
	}
	jobs := []job{
		{5, MethodExact, 1, 2},
		{5, MethodExact, 4, 1},
		{5, MethodExactQt, 3, 3},
		{8, Method2DGridUSEC, 2, 2},
		{8, Method2DGridDelaunay, 5, 1},
		{8, MethodApprox, 4, 2},
		{12, Method2DBoxBCP, 6, 0},
	}
	want := make([]*Result, len(jobs))
	for i, j := range jobs {
		w, err := Cluster(rows, Config{Eps: eps, MinPts: j.minPts, Method: j.method, Shards: j.shards})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	errs := make(chan error, 3*len(jobs))
	for rep := 0; rep < 3; rep++ {
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				got, err := c.Run(Config{MinPts: j.minPts, Method: j.method, Shards: j.shards, Workers: j.workers})
				if err != nil {
					errs <- fmt.Errorf("job %d: %v", i, err)
					return
				}
				if err := labelsEqual(got, want[i]); err != nil {
					errs <- fmt.Errorf("job %d (%s shards=%d): %v", i, j.method, j.shards, err)
				}
			}(i, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestIntegrationLargeAllVariantsAgree is the no-oracle integration test:
// at a size where brute force is infeasible, all exact variants must produce
// the identical clustering, and the result must satisfy DBSCAN's structural
// invariants.
func TestIntegrationLargeAllVariantsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: 50000, D: 2, Seed: 77})
	eps, minPts := 300.0, 50
	var base *Result
	for _, m := range []Method{
		MethodExact, MethodExactQt,
		Method2DGridBCP, Method2DGridUSEC, Method2DGridDelaunay,
		Method2DBoxBCP, Method2DBoxUSEC, Method2DBoxDelaunay,
	} {
		for _, bucketing := range []bool{false, true} {
			res, err := ClusterFlat(pts.Data, pts.D, Config{
				Eps: eps, MinPts: minPts, Method: m, Bucketing: bucketing,
			})
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			if base == nil {
				base = res
				checkStructuralInvariants(t, pts, eps, minPts, res)
				continue
			}
			if res.NumClusters != base.NumClusters {
				t.Fatalf("%s bucketing=%v: %d clusters, want %d", m, bucketing, res.NumClusters, base.NumClusters)
			}
			if ari := metrics.AdjustedRandIndex(res.Labels, base.Labels); ari != 1 {
				t.Fatalf("%s bucketing=%v: ARI %v", m, bucketing, ari)
			}
		}
	}
}

// checkStructuralInvariants verifies sampled DBSCAN invariants that do not
// need the quadratic oracle:
//   - a core point's label equals its eps-neighbor core points' labels;
//   - a labeled non-core point has a core point within eps with that label;
//   - a noise point has no core point within eps (checked by brute force on
//     a sample).
func checkStructuralInvariants(t *testing.T, pts geom.Points, eps float64, minPts int, res *Result) {
	t.Helper()
	eps2 := eps * eps
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(pts.N)
		// Count neighbors and collect nearby core labels by brute force for
		// this one point.
		count := 0
		nearbyCore := map[int32]bool{}
		for j := 0; j < pts.N; j++ {
			if geom.DistSq(pts.At(i), pts.At(j)) <= eps2 {
				count++
				if res.Core[j] {
					nearbyCore[res.Labels[j]] = true
				}
			}
		}
		if res.Core[i] != (count >= minPts) {
			t.Fatalf("point %d: core=%v but %d neighbors (minPts=%d)", i, res.Core[i], count, minPts)
		}
		if res.Core[i] {
			if len(nearbyCore) != 1 || !nearbyCore[res.Labels[i]] {
				t.Fatalf("core point %d: nearby core labels %v, own %d", i, nearbyCore, res.Labels[i])
			}
			continue
		}
		if res.Labels[i] >= 0 && !nearbyCore[res.Labels[i]] {
			t.Fatalf("border point %d: label %d has no core point within eps", i, res.Labels[i])
		}
		if res.Labels[i] == -1 && len(nearbyCore) > 0 {
			t.Fatalf("noise point %d has core neighbors %v", i, nearbyCore)
		}
	}
}

func TestNonFiniteInputRejected(t *testing.T) {
	rows := [][]float64{{0, 0}, {math.NaN(), 1}}
	if _, err := Cluster(rows, Config{Eps: 1, MinPts: 1}); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	rows = [][]float64{{0, 0}, {math.Inf(1), 1}}
	if _, err := Cluster(rows, Config{Eps: 1, MinPts: 1}); err == nil {
		t.Fatal("Inf coordinate accepted")
	}
}

// TestLatticeRangeRejected pins the numeric envelope of the absolute cell
// lattice: coordinate magnitudes past the exact floor(v/side) range, and
// spreads past int32 cell coordinates, are rejected with clear errors instead
// of silently misclustering.
func TestLatticeRangeRejected(t *testing.T) {
	// |v|/side >= 2^52 (side = 1/sqrt(2) here).
	rows := [][]float64{{0, 0}, {1e16, 1}}
	if _, err := Cluster(rows, Config{Eps: 1, MinPts: 1}); err == nil {
		t.Fatal("out-of-lattice-range magnitude accepted")
	}
	// Spread of 2^31 cells at modest magnitudes: 4e9 / (1/sqrt(2)) > 2^31.
	rows = [][]float64{{-2e9, 0}, {2e9, 1}}
	if _, err := Cluster(rows, Config{Eps: 1, MinPts: 1}); err == nil {
		t.Fatal("over-wide spread accepted")
	}
	// Streaming rejects magnitude at Insert; spread is caught by Snapshot
	// inside Run.
	s, err := NewStreamingClusterer(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert([][]float64{{1e16, 1}}); err == nil {
		t.Fatal("streaming accepted out-of-range magnitude")
	}
	if _, err := s.Insert([][]float64{{-2e9, 0}, {2e9, 1}}); err != nil {
		t.Fatal(err) // magnitudes individually fine
	}
	if _, err := s.Run(Config{MinPts: 1}); err == nil {
		t.Fatal("streaming Run accepted over-wide spread")
	}
	// Large-but-in-range coordinates still work.
	rows = [][]float64{{1e9, 1e9}, {1e9 + 0.5, 1e9}, {1e9, 1e9 + 0.5}}
	res, err := Cluster(rows, Config{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
}

func TestCoreOnlyLabels(t *testing.T) {
	rows := blobs(300, 2, 21)
	res, err := Cluster(rows, Config{Eps: 3, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	star := res.CoreOnlyLabels()
	for i := range star {
		if res.Core[i] && star[i] != res.Labels[i] {
			t.Fatalf("core point %d: star label %d != %d", i, star[i], res.Labels[i])
		}
		if !res.Core[i] && star[i] != -1 {
			t.Fatalf("non-core point %d: star label %d != -1", i, star[i])
		}
	}
}
