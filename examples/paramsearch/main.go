// Paramsearch: the paper chooses eps/minPts per dataset by searching for the
// parameters that "output a correct clustering" (Section 7). This example
// shows that workflow with the library in two stages:
//
//  1. an eps sweep at fixed minPts through a single Hierarchy: one
//     BuildHierarchy pays for core distances and the mutual-reachability
//     EMST, then every eps on the grid is a CutEps replay over the sorted
//     edges — versus a fresh one-shot Cluster per eps, which rebuilds the
//     cell structure and redoes the full run each time. ExtractStable then
//     reads the parameter-free answer straight off the same dendrogram;
//  2. a minPts sweep at the chosen eps through a single Clusterer, which
//     builds the eps-keyed grid once and reuses it for every run — the
//     second stage is nearly free compared to re-clustering from scratch.
package main

import (
	"fmt"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
)

func main() {
	const n = 100000
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: n, D: 3, Seed: 9})

	// --- Stage 1: eps sweep off one hierarchy ---
	// The grid covers the useful range: below ~10 everything is noise at
	// minPts=100, and by a few hundred the generator's clusters have merged.
	// Keeping epsMax at the top of the *interesting* range matters: the
	// hierarchy build enumerates cell-pair subgraphs within epsMax, so a
	// needlessly large radius pays for merges the sweep never looks at.
	epsGrid := []float64{10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 80, 100}
	epsMax := epsGrid[len(epsGrid)-1]
	minPts := 100
	fmt.Printf("SS-simden-3D: %d points; sweeping eps at minPts=%d\n", pts.N, minPts)
	c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, epsMax)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	h, err := c.BuildHierarchy(minPts)
	if err != nil {
		panic(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("hierarchy: %d MR-EMST edges in %v (build once, cut per eps)\n",
		h.NumEdges(), buildTime.Round(time.Millisecond))
	fmt.Printf("%-10s %-10s %-10s %-12s %-12s %s\n",
		"eps", "clusters", "noise%", "largest%", "cut", "one-shot")
	var sweepTime, oneShotTime time.Duration
	for _, eps := range epsGrid {
		start = time.Now()
		res, err := h.CutEps(eps)
		if err != nil {
			panic(err)
		}
		cut := time.Since(start)
		sweepTime += cut

		// The old way, for comparison: a fresh structure and full run per eps.
		start = time.Now()
		oneShot, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
			Eps: eps, MinPts: minPts, Method: pdbscan.MethodExact, Bucketing: true,
		})
		if err != nil {
			panic(err)
		}
		shot := time.Since(start)
		oneShotTime += shot
		if res.NumClusters != oneShot.NumClusters {
			panic(fmt.Sprintf("eps %g: cut found %d clusters, one-shot %d",
				eps, res.NumClusters, oneShot.NumClusters))
		}

		largest := 0
		for _, s := range res.ClusterSizes() {
			if s > largest {
				largest = s
			}
		}
		fmt.Printf("%-10g %-10d %-10.1f %-12.1f %-12v %v\n",
			eps, res.NumClusters,
			100*float64(res.NumNoise())/float64(n),
			100*float64(largest)/float64(n),
			cut.Round(time.Millisecond),
			shot.Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Printf("sweep via cuts: %v (+%v build) vs %v re-clustering from scratch\n",
		sweepTime.Round(time.Millisecond), buildTime.Round(time.Millisecond),
		oneShotTime.Round(time.Millisecond))
	fmt.Println("pick the eps plateau: the cluster count settles at the generator's")
	fmt.Println("true cluster count (6) with low noise, before over-merging begins")
	fmt.Println()

	// CutK inverts the question: ask for a cluster count, get the radius.
	if res, eps, err := h.CutK(6); err == nil {
		fmt.Printf("CutK(6): eps=%.4g yields %d clusters, %.1f%% noise\n",
			eps, res.NumClusters, 100*float64(res.NumNoise())/float64(n))
	} else {
		fmt.Printf("CutK(6): %v\n", err)
	}

	// ExtractStable skips the eps choice entirely: HDBSCAN*-style stability
	// selection over the same dendrogram.
	start = time.Now()
	stable, err := h.ExtractStable(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ExtractStable: %d stable clusters in %v (no eps needed)\n",
		stable.NumClusters, time.Since(start).Round(time.Millisecond))
	fmt.Println()

	// --- Stage 2: minPts sweep at the chosen eps, one Clusterer ---
	const chosenEps = 60.0
	fmt.Printf("sweeping minPts at eps=%g through one Clusterer (grid built once)\n", chosenEps)
	fmt.Printf("%-10s %-10s %-10s %s\n", "minPts", "clusters", "noise%", "time")
	c2, err := pdbscan.NewClustererFlat(pts.Data, pts.D, chosenEps)
	if err != nil {
		panic(err)
	}
	for _, mp := range []int{10, 25, 50, 100, 200, 500} {
		start := time.Now()
		res, err := c2.Run(pdbscan.Config{MinPts: mp, Method: pdbscan.MethodExact, Bucketing: true})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10d %-10d %-10.1f %v\n",
			mp, res.NumClusters,
			100*float64(res.NumNoise())/float64(n),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("the first Run pays the grid + neighbor construction; later Runs reuse it")
	fmt.Println("and only redo MarkCore/ClusterCore/ClusterBorder at the new minPts")
}
