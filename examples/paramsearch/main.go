// Paramsearch: the paper chooses eps/minPts per dataset by searching for the
// parameters that "output a correct clustering" (Section 7). This example
// shows that workflow with the library: sweep eps at a fixed minPts, watch
// cluster count and noise fraction, and pick the plateau — the eps range
// where the cluster count is stable is the natural operating point.
package main

import (
	"fmt"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
)

func main() {
	const n = 100000
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: n, D: 3, Seed: 9})
	fmt.Printf("SS-simden-3D: %d points; sweeping eps at minPts=100\n", pts.N)
	fmt.Printf("%-10s %-10s %-10s %-12s %s\n", "eps", "clusters", "noise%", "largest%", "time")

	minPts := 100
	for _, eps := range []float64{10, 25, 50, 100, 400, 1000, 2000, 3000} {
		start := time.Now()
		res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
			Eps: eps, MinPts: minPts, Method: pdbscan.MethodExact, Bucketing: true,
		})
		if err != nil {
			panic(err)
		}
		largest := 0
		for _, s := range res.ClusterSizes() {
			if s > largest {
				largest = s
			}
		}
		fmt.Printf("%-10g %-10d %-10.1f %-12.1f %v\n",
			eps, res.NumClusters,
			100*float64(res.NumNoise())/float64(n),
			100*float64(largest)/float64(n),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("pick the eps plateau: the cluster count stabilizes at the generator's")
	fmt.Println("true cluster count (~10) with low noise, before over-merging begins")
}
