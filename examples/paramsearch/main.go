// Paramsearch: the paper chooses eps/minPts per dataset by searching for the
// parameters that "output a correct clustering" (Section 7). This example
// shows that workflow with the library in two stages:
//
//  1. an eps sweep at fixed minPts with one-shot Cluster calls (each eps
//     needs its own cell structure, so there is nothing to reuse), picking
//     the plateau — the eps range where the cluster count is stable;
//  2. a minPts sweep at the chosen eps through a single Clusterer, which
//     builds the eps-keyed grid once and reuses it for every run — the
//     second stage is nearly free compared to re-clustering from scratch.
package main

import (
	"fmt"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
)

func main() {
	const n = 100000
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: n, D: 3, Seed: 9})

	// --- Stage 1: eps sweep (fresh structure per eps) ---
	fmt.Printf("SS-simden-3D: %d points; sweeping eps at minPts=100\n", pts.N)
	fmt.Printf("%-10s %-10s %-10s %-12s %s\n", "eps", "clusters", "noise%", "largest%", "time")
	minPts := 100
	for _, eps := range []float64{10, 25, 50, 100, 400, 1000, 2000, 3000} {
		start := time.Now()
		res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
			Eps: eps, MinPts: minPts, Method: pdbscan.MethodExact, Bucketing: true,
		})
		if err != nil {
			panic(err)
		}
		largest := 0
		for _, s := range res.ClusterSizes() {
			if s > largest {
				largest = s
			}
		}
		fmt.Printf("%-10g %-10d %-10.1f %-12.1f %v\n",
			eps, res.NumClusters,
			100*float64(res.NumNoise())/float64(n),
			100*float64(largest)/float64(n),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("pick the eps plateau: the cluster count stabilizes at the generator's")
	fmt.Println("true cluster count (~10) with low noise, before over-merging begins")
	fmt.Println()

	// --- Stage 2: minPts sweep at the chosen eps, one Clusterer ---
	const chosenEps = 1000.0
	fmt.Printf("sweeping minPts at eps=%g through one Clusterer (grid built once)\n", chosenEps)
	fmt.Printf("%-10s %-10s %-10s %s\n", "minPts", "clusters", "noise%", "time")
	c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, chosenEps)
	if err != nil {
		panic(err)
	}
	for _, mp := range []int{10, 50, 100, 500, 1000, 5000} {
		start := time.Now()
		res, err := c.Run(pdbscan.Config{MinPts: mp, Method: pdbscan.MethodExact, Bucketing: true})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10d %-10d %-10.1f %v\n",
			mp, res.NumClusters,
			100*float64(res.NumNoise())/float64(n),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("the first Run pays the grid + neighbor construction; later Runs reuse it")
	fmt.Println("and only redo MarkCore/ClusterCore/ClusterBorder at the new minPts")
}
