// Engine: multi-tenant serving of clustering jobs. This example multiplexes
// two workloads through one engine.Engine sharing one worker budget — the
// deployment shape of a clustering service where parameter sweeps from
// interactive users compete with latency-bound sensor ticks:
//
//  1. a MinPts sweep over a prepared Clusterer (one batch job per MinPts,
//     each with a modest Workers cap, so the sweep saturates the budget
//     without monopolizing it), and
//  2. a streaming sliding window ticking at higher priority, each tick
//     submitted with a per-job deadline — if the engine cannot schedule and
//     finish a tick in time, the tick is cancelled (promptly, mid-run if
//     needed) instead of stalling the sensor loop.
//
// The engine guarantees the running jobs' Workers caps never sum past the
// budget, queues overflow FIFO-within-priority, and rejects what would wait
// too long — the stats printed at the end show all of it.
package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"pdbscan"
	"pdbscan/engine"
	"pdbscan/internal/dataset"
)

func main() {
	const (
		n      = 200000
		window = 20000
		eps    = 1000.0
	)
	budget := runtime.GOMAXPROCS(0)
	e := engine.New(engine.Options{
		Budget:       budget,
		MaxQueue:     32,
		QueueTimeout: 10 * time.Second,
	})
	defer e.Close()
	fmt.Printf("engine: budget %d workers, queue 32, queue timeout 10s\n\n", budget)

	// Tenant 1: a MinPts sweep over one prepared batch Clusterer. The cell
	// structure is built once (Prepare) and shared by every job.
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: n, D: 2, Seed: 3})
	c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, eps)
	if err != nil {
		panic(err)
	}
	if err := c.Prepare(pdbscan.Config{}); err != nil {
		panic(err)
	}
	sweep := []int{20, 50, 100, 200, 400, 800}
	sweepJobs := make([]*engine.Job, 0, len(sweep))
	for i, minPts := range sweep {
		workers := 1 + i%2 // modest caps: the sweep shares, not monopolizes
		j, err := e.Submit(context.Background(), engine.Request{
			Clusterer: c,
			Config:    pdbscan.Config{MinPts: minPts, Workers: workers},
			Priority:  0,
		})
		if err != nil {
			panic(err)
		}
		sweepJobs = append(sweepJobs, j)
	}

	// Tenant 2: a streaming window ticking at higher priority with a
	// deadline per tick.
	stream := dataset.DriftStream(dataset.DriftStreamConfig{N: window * 2, D: 2, Seed: 7})
	s, err := pdbscan.NewStreamingClusterer(2, eps)
	if err != nil {
		panic(err)
	}
	rows := make([][]float64, stream.N)
	for i := range rows {
		rows[i] = stream.At(i)
	}
	if _, err := s.Insert(rows[:window]); err != nil {
		panic(err)
	}
	const ticks = 5
	batch := window / 20
	next := window
	fmt.Printf("%-6s %-10s %-10s %-10s %s\n", "tick", "queued", "run", "clusters", "outcome")
	for tick := 0; tick < ticks; tick++ {
		if _, err := s.Insert(rows[next : next+batch]); err != nil {
			panic(err)
		}
		next += batch
		s.Window(window)

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		j, err := e.Submit(ctx, engine.Request{
			Streaming: s,
			Config:    pdbscan.Config{MinPts: 100, Workers: budget},
			Priority:  10, // sensor ticks outrank sweep points
		})
		if err != nil {
			cancel()
			fmt.Printf("%-6d tick rejected: %v\n", tick, err)
			continue
		}
		res, err := j.StreamResult()
		st := j.Stats()
		switch {
		case err == nil:
			fmt.Printf("%-6d %-10v %-10v %-10d ok\n",
				tick, st.Queued.Round(time.Microsecond), st.Run.Round(time.Microsecond), res.NumClusters)
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Printf("%-6d %-10v %-10v %-10s missed its deadline, cancelled mid-run\n",
				tick, st.Queued.Round(time.Microsecond), st.Run.Round(time.Microsecond), "-")
		default:
			fmt.Printf("%-6d tick failed: %v\n", tick, err)
		}
		cancel()
	}

	// Harvest the sweep.
	fmt.Printf("\n%-8s %-9s %-10s %-10s %-10s %s\n", "minPts", "workers", "queued", "run", "clusters", "noise%")
	for i, j := range sweepJobs {
		res, err := j.Result()
		if err != nil {
			fmt.Printf("%-8d sweep job failed: %v\n", sweep[i], err)
			continue
		}
		st := j.Stats()
		fmt.Printf("%-8d %-9d %-10v %-10v %-10d %.1f\n",
			sweep[i], st.Workers,
			st.Queued.Round(time.Millisecond), st.Run.Round(time.Millisecond),
			res.NumClusters, 100*float64(res.NumNoise())/float64(n))
	}

	stats := e.Stats()
	fmt.Printf("\nengine stats: %d submitted, %d completed, %d cancelled, %d rejected, %d timed out\n",
		stats.Submitted, stats.Completed, stats.Cancelled, stats.Rejected, stats.TimedOut)
	fmt.Printf("budget %d; %d workers in use at exit\n", stats.Budget, stats.WorkersInUse)
}
