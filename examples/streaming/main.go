// Streaming: incremental clustering of a live point stream. A
// StreamingClusterer holds a mutable point set; Insert/Remove/Window mutate
// it between Run calls, and each Run re-clusters touching only the cells
// whose eps-neighborhood changed — with results exactly equal (up to label
// permutation) to re-clustering the current points from scratch.
//
// The scenario here is a sliding window over moving emitters (think vehicle
// traces or lidar returns): the window holds each emitter's recent trail,
// and as the window slides the trails drift, merge, and split. The
// interesting outputs per tick are the cluster count, how it changed, and
// how little work the tick actually did (dirty vs total cells).
package main

import (
	"fmt"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
)

func main() {
	const (
		window = 30000
		batch  = 300 // 1% churn per tick
		ticks  = 20
		eps    = 4.0
		minPts = 10
	)
	// A time-ordered stream: consecutive points are spatially close (their
	// emitter moved only a little between emissions). Any real feed with
	// that property — GPS pings, sensor sweeps — slots in the same way.
	stream := dataset.DriftStream(dataset.DriftStreamConfig{
		N: window + ticks*batch, D: 2, Seed: 3,
	})

	s, err := pdbscan.NewStreamingClusterer(2, eps)
	if err != nil {
		panic(err)
	}
	cfg := pdbscan.Config{MinPts: minPts}

	// Fill the initial window. The first Run computes everything; later
	// Runs are incremental.
	if _, err := s.InsertFlat(stream.Data[:window*2]); err != nil {
		panic(err)
	}
	start := time.Now()
	res, err := s.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial window: %d points -> %d clusters, %d noise (%v)\n\n",
		s.Len(), res.NumClusters, res.NumNoise(), time.Since(start).Round(time.Millisecond))

	fmt.Println("tick  clusters  noise  dirty-cells  latency")
	for tick := 0; tick < ticks; tick++ {
		lo := (window + tick*batch) * 2
		start := time.Now()
		// One tick: ingest the new batch, evict beyond the window, recluster.
		if _, err := s.InsertFlat(stream.Data[lo : lo+batch*2]); err != nil {
			panic(err)
		}
		s.Window(window)
		res, err = s.Run(cfg)
		if err != nil {
			panic(err)
		}
		st := s.LastRunStats()
		fmt.Printf("%-5d %-9d %-6d %4d/%-6d %v\n",
			tick, res.NumClusters, res.NumNoise(),
			st.DirtyCells, st.NumCells,
			time.Since(start).Round(time.Microsecond))
	}

	// Point-level access: every live point keeps a stable id, and results
	// are reported in insertion order with an id column alongside.
	oldest := res.IDs[0]
	if lbl, ok := res.LabelOf(oldest); ok {
		fmt.Printf("\noldest live point (id %d) is in cluster %d\n", oldest, lbl)
	}
	fmt.Println("every tick's result is exactly what a from-scratch Cluster of the")
	fmt.Println("current window would return (up to label permutation) — see the")
	fmt.Println("oracle and metamorphic suites, which enforce this for every method")
}
