// Variants2D: run all six 2D algorithm variants of the paper (grid/box cell
// construction x BCP/USEC/Delaunay cell-graph connectivity) on a
// seed-spreader dataset and verify that every exact variant produces the
// identical clustering — the paper's key claim that, unlike prior parallel
// DBSCANs, these algorithms do not sacrifice clustering quality.
package main

import (
	"fmt"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
	"pdbscan/internal/metrics"
)

func main() {
	const n = 100000
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: n, D: 2, Seed: 3})
	fmt.Printf("SS-simden-2D: %d points\n", pts.N)

	eps := 200.0
	minPts := 100

	methods := []pdbscan.Method{
		pdbscan.Method2DGridBCP,
		pdbscan.Method2DGridUSEC,
		pdbscan.Method2DGridDelaunay,
		pdbscan.Method2DBoxBCP,
		pdbscan.Method2DBoxUSEC,
		pdbscan.Method2DBoxDelaunay,
	}
	var reference *pdbscan.Result
	for _, m := range methods {
		start := time.Now()
		res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
			Eps: eps, MinPts: minPts, Method: m,
		})
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		agree := "reference"
		if reference == nil {
			reference = res
		} else {
			if metrics.AdjustedRandIndex(reference.Labels, res.Labels) == 1 &&
				reference.NumClusters == res.NumClusters {
				agree = "identical"
			} else {
				agree = "MISMATCH"
			}
		}
		fmt.Printf("  %-18s %8v  clusters=%d noise=%d  [%s]\n",
			m, elapsed, res.NumClusters, res.NumNoise(), agree)
	}
}
