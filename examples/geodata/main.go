// Geodata: cluster a skewed GPS-like trajectory dataset (the GeoLife regime
// of the paper's evaluation — Figure 6(j)). Heavily skewed data is the hard
// case for cell-based methods: a few cells hold most of the points. This
// example compares the exact BCP variant against the quadtree variant with
// and without bucketing, which is exactly the comparison where the paper
// observes the largest differences.
package main

import (
	"fmt"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
)

func main() {
	const n = 200000
	pts := dataset.GeoLifeSim(n, 1)
	fmt.Printf("GeoLife-sim: %d GPS-like points (d=%d), heavily skewed\n", pts.N, pts.D)

	eps := 40.0 // matches the paper's GeoLife default parameter regime
	minPts := 100

	type variant struct {
		name      string
		method    pdbscan.Method
		bucketing bool
	}
	variants := []variant{
		{"our-exact", pdbscan.MethodExact, false},
		{"our-exact-bucketing", pdbscan.MethodExact, true},
		{"our-exact-qt", pdbscan.MethodExactQt, false},
		{"our-exact-qt-bucketing", pdbscan.MethodExactQt, true},
	}
	for _, v := range variants {
		start := time.Now()
		res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
			Eps:       eps,
			MinPts:    minPts,
			Method:    v.method,
			Bucketing: v.bucketing,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-24s %8v  clusters=%d noise=%d\n",
			v.name, time.Since(start).Round(time.Millisecond), res.NumClusters, res.NumNoise())
	}

	// Report the densest regions (the "hotspots").
	res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
		Eps: eps, MinPts: minPts, Method: pdbscan.MethodExact,
	})
	if err != nil {
		panic(err)
	}
	sizes := res.ClusterSizes()
	biggest, at := 0, -1
	for id, s := range sizes {
		if s > biggest {
			biggest, at = s, id
		}
	}
	fmt.Printf("largest hotspot: cluster %d with %d points (%.1f%% of data)\n",
		at, biggest, 100*float64(biggest)/float64(n))
}
