// Astro3D: find halos in a cosmology-style 3D particle snapshot (the Cosmo50
// regime of the paper's evaluation). Demonstrates exact vs approximate
// DBSCAN on the same data: approximate DBSCAN (Gan–Tao) returns a valid
// clustering where core points at distance within (eps, eps(1+rho)] may or
// may not be merged — for astronomically separated halos the two coincide.
package main

import (
	"fmt"
	"sort"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
)

func main() {
	const n = 300000
	pts := dataset.CosmoSim(n, 7)
	fmt.Printf("Cosmo-sim: %d particles in filaments + halos (d=%d)\n", pts.N, pts.D)

	eps := 300.0
	minPts := 100

	run := func(name string, method pdbscan.Method, rho float64) *pdbscan.Result {
		start := time.Now()
		res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
			Eps: eps, MinPts: minPts, Method: method, Rho: rho,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-14s %8v  halos=%d noise=%d\n",
			name, time.Since(start).Round(time.Millisecond), res.NumClusters, res.NumNoise())
		return res
	}
	exact := run("our-exact", pdbscan.MethodExact, 0)
	run("our-exact-qt", pdbscan.MethodExactQt, 0)
	run("our-approx", pdbscan.MethodApprox, 0.01)
	run("our-approx-qt", pdbscan.MethodApproxQt, 0.01)

	// Rank halos by mass (point count).
	sizes := exact.ClusterSizes()
	ids := make([]int, len(sizes))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return sizes[ids[a]] > sizes[ids[b]] })
	fmt.Println("most massive structures:")
	for i := 0; i < 5 && i < len(ids); i++ {
		fmt.Printf("  #%d: cluster %d, %d particles\n", i+1, ids[i], sizes[ids[i]])
	}
}
