// Quickstart: cluster a small 2D point set with the default (auto) method
// and inspect the result. This is the five-minute tour of the public API.
package main

import (
	"fmt"
	"math/rand"

	"pdbscan"
)

func main() {
	// Three Gaussian blobs plus background noise.
	rng := rand.New(rand.NewSource(42))
	centers := [][2]float64{{10, 10}, {50, 50}, {80, 20}}
	var points [][]float64
	for i := 0; i < 3000; i++ {
		c := centers[i%3]
		points = append(points, []float64{
			c[0] + rng.NormFloat64()*2,
			c[1] + rng.NormFloat64()*2,
		})
	}
	for i := 0; i < 200; i++ {
		points = append(points, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}

	res, err := pdbscan.Cluster(points, pdbscan.Config{
		Eps:    1.5, // neighborhood radius
		MinPts: 10,  // density threshold
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("found %d clusters, %d noise points\n", res.NumClusters, res.NumNoise())
	for id, size := range res.ClusterSizes() {
		fmt.Printf("  cluster %d: %d points\n", id, size)
	}

	// Per-point access: labels, core flags, multi-cluster border points.
	fmt.Printf("point 0: cluster %d, core=%v\n", res.Labels[0], res.Core[0])
	fmt.Printf("border points in multiple clusters: %d\n", len(res.Border))
}
