package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pdbscan"
	"pdbscan/engine"
)

// genPoints returns n deterministic pseudo-random 2D points in a k-cluster
// layout (same generator as the engine tests).
func genPoints(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	centers := [][2]float64{{0, 0}, {40, 5}, {10, 50}, {60, 60}}
	for i := range pts {
		if i%10 == 9 {
			pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
			continue
		}
		c := centers[i%len(centers)]
		pts[i] = []float64{c[0] + rng.NormFloat64()*2, c[1] + rng.NormFloat64()*2}
	}
	return pts
}

// tclient is a minimal JSON client against one httptest server.
type tclient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func newTestServer(t *testing.T, opts Options) (*Server, *tclient, func()) {
	t.Helper()
	srv := New(opts)
	hs := httptest.NewServer(srv)
	tc := &tclient{t: t, base: hs.URL, c: hs.Client()}
	return srv, tc, func() {
		hs.Close()
		srv.Close()
	}
}

// do issues one request; body is JSON-encoded if non-nil, and the response
// body is decoded into out if non-nil and decodable. Returns the response
// (body already consumed).
func (tc *tclient) do(method, path string, body any, out any) *http.Response {
	tc.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			tc.t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, tc.base+path, rd)
	if err != nil {
		tc.t.Fatalf("NewRequest: %v", err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		tc.t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			tc.t.Fatalf("%s %s: decode %q: %v", method, path, buf.String(), err)
		}
	}
	return resp
}

// expect issues the request and asserts the status code.
func (tc *tclient) expect(method, path string, body any, status int, out any) *http.Response {
	tc.t.Helper()
	resp := tc.do(method, path, body, out)
	if resp.StatusCode != status {
		tc.t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, status)
	}
	return resp
}

func (tc *tclient) createSession(req CreateSessionRequest) SessionInfo {
	tc.t.Helper()
	var info SessionInfo
	tc.expect("POST", "/v1/sessions", req, http.StatusCreated, &info)
	return info
}

func TestSessionLifecycle(t *testing.T) {
	_, tc, done := newTestServer(t, Options{})
	defer done()

	pts := genPoints(500, 1)
	batch := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: pts})
	if batch.Kind != "batch" || batch.NumPoints != 500 || batch.Dims != 2 {
		t.Fatalf("batch info = %+v", batch)
	}
	stream := tc.createSession(CreateSessionRequest{Kind: "streaming", Eps: 3, Dims: 2})
	if stream.NumPoints != 0 {
		t.Fatalf("fresh streaming session has %d points", stream.NumPoints)
	}
	hier := tc.createSession(CreateSessionRequest{Kind: "hierarchy", Eps: 3, MinPts: 5, Points: pts})
	if hier.MinPts != 5 {
		t.Fatalf("hierarchy info = %+v", hier)
	}

	var infos []SessionInfo
	tc.expect("GET", "/v1/sessions", nil, http.StatusOK, &infos)
	if len(infos) != 3 {
		t.Fatalf("listed %d sessions, want 3", len(infos))
	}
	var got SessionInfo
	tc.expect("GET", "/v1/sessions/"+batch.ID, nil, http.StatusOK, &got)
	if got.ID != batch.ID {
		t.Fatalf("got %+v", got)
	}

	tc.expect("DELETE", "/v1/sessions/"+stream.ID, nil, http.StatusNoContent, nil)
	tc.expect("GET", "/v1/sessions/"+stream.ID, nil, http.StatusNotFound, nil)
	tc.expect("DELETE", "/v1/sessions/"+stream.ID, nil, http.StatusNotFound, nil)
	tc.expect("POST", "/v1/sessions/"+stream.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 5}, Wait: true}, http.StatusNotFound, nil)
}

func TestBatchRunWaitMatchesDirect(t *testing.T) {
	_, tc, done := newTestServer(t, Options{})
	defer done()
	pts := genPoints(2000, 2)
	sess := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: pts})

	var st RunStatus
	tc.expect("POST", "/v1/sessions/"+sess.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}, http.StatusOK, &st)
	if st.State != "done" || st.Result == nil || st.Stats == nil {
		t.Fatalf("run status = %+v", st)
	}
	if st.Stats.RunNS <= 0 {
		t.Fatalf("run stats report no execution time: %+v", st.Stats)
	}

	c, err := pdbscan.NewClusterer(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Run(pdbscan.Config{MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.NumClusters != want.NumClusters || st.Result.NumNoise != want.NumNoise() {
		t.Fatalf("served run: %d clusters / %d noise, direct: %d / %d",
			st.Result.NumClusters, st.Result.NumNoise, want.NumClusters, want.NumNoise())
	}
	for i := range want.Labels {
		if st.Result.Labels[i] != want.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, st.Result.Labels[i], want.Labels[i])
		}
		if st.Result.Core[i] != want.Core[i] {
			t.Fatalf("core[%d] = %v, want %v", i, st.Result.Core[i], want.Core[i])
		}
	}
}

func TestAsyncRunPollAndDelete(t *testing.T) {
	_, tc, done := newTestServer(t, Options{})
	defer done()
	pts := genPoints(2000, 3)
	sess := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: pts})

	var pending RunStatus
	tc.expect("POST", "/v1/sessions/"+sess.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Priority: 3}, http.StatusAccepted, &pending)
	if pending.ID == "" || pending.State != "pending" {
		t.Fatalf("async submit = %+v", pending)
	}

	var st RunStatus
	tc.expect("GET", "/v1/sessions/"+sess.ID+"/runs/"+pending.ID+"?wait=1", nil, http.StatusOK, &st)
	if st.State != "done" || st.Result == nil || st.Stats == nil {
		t.Fatalf("fetched run = %+v", st)
	}
	// A settled run stays fetchable until deleted.
	tc.expect("GET", "/v1/sessions/"+sess.ID+"/runs/"+pending.ID, nil, http.StatusOK, &st)
	tc.expect("DELETE", "/v1/sessions/"+sess.ID+"/runs/"+pending.ID, nil, http.StatusNoContent, nil)
	tc.expect("GET", "/v1/sessions/"+sess.ID+"/runs/"+pending.ID, nil, http.StatusNotFound, nil)
}

func TestStreamingSessionFlow(t *testing.T) {
	_, tc, done := newTestServer(t, Options{})
	defer done()
	sess := tc.createSession(CreateSessionRequest{Kind: "streaming", Eps: 3, Dims: 2})
	path := "/v1/sessions/" + sess.ID

	var ins struct {
		IDs []int64 `json:"ids"`
	}
	tc.expect("POST", path+"/points", InsertPointsRequest{Points: genPoints(1000, 4)}, http.StatusOK, &ins)
	if len(ins.IDs) != 1000 {
		t.Fatalf("inserted %d ids", len(ins.IDs))
	}

	var st RunStatus
	tc.expect("POST", path+"/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}, http.StatusOK, &st)
	if st.State != "done" || len(st.Result.Labels) != 1000 || len(st.Result.IDs) != 1000 {
		t.Fatalf("tick = %+v", st)
	}

	tc.expect("DELETE", path+"/points", RemovePointsRequest{IDs: ins.IDs[:100]}, http.StatusOK, nil)
	var win struct {
		Evicted []int64 `json:"evicted"`
	}
	tc.expect("POST", path+"/window", WindowRequest{N: 600}, http.StatusOK, &win)
	if len(win.Evicted) != 300 {
		t.Fatalf("window evicted %d, want 300 (900 live - 600 kept)", len(win.Evicted))
	}
	tc.expect("POST", path+"/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}, http.StatusOK, &st)
	if len(st.Result.Labels) != 600 {
		t.Fatalf("tick after window has %d labels, want 600", len(st.Result.Labels))
	}

	// Mutations on a batch session are a 400.
	b := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: genPoints(100, 5)})
	tc.expect("POST", "/v1/sessions/"+b.ID+"/points", InsertPointsRequest{Points: genPoints(10, 6)}, http.StatusBadRequest, nil)
}

func TestHierarchySessionCuts(t *testing.T) {
	_, tc, done := newTestServer(t, Options{})
	defer done()
	pts := genPoints(1500, 7)
	sess := tc.createSession(CreateSessionRequest{Kind: "hierarchy", Eps: 3, MinPts: 5, Points: pts})

	c, err := pdbscan.NewClusterer(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.BuildHierarchy(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.75, 1.5, 3} {
		var st RunStatus
		tc.expect("POST", "/v1/sessions/"+sess.ID+"/runs",
			SubmitRunRequest{Config: ConfigJSON{Eps: eps}, Wait: true}, http.StatusOK, &st)
		want, err := h.CutEps(eps)
		if err != nil {
			t.Fatal(err)
		}
		if st.Result.NumClusters != want.NumClusters {
			t.Fatalf("cut at %g: %d clusters, want %d", eps, st.Result.NumClusters, want.NumClusters)
		}
		for i := range want.Labels {
			if st.Result.Labels[i] != want.Labels[i] {
				t.Fatalf("cut at %g: label[%d] = %d, want %d", eps, i, st.Result.Labels[i], want.Labels[i])
			}
		}
	}
	// A cut beyond the build radius is a validation error, rejected before
	// the job occupies a queue slot.
	tc.expect("POST", "/v1/sessions/"+sess.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{Eps: 99}, Wait: true}, http.StatusBadRequest, nil)
}

// TestStatusCodeMapping drives every failure mode to its documented HTTP
// status: 400 validation, 404 unknown ids, 429 + Retry-After on a full
// queue, 504 on queue timeout and request deadline, 503 + Retry-After when
// draining.
func TestStatusCodeMapping(t *testing.T) {
	// QueueTimeout is generous: the queued job must still be occupying its
	// queue slot when the overflow submit arrives (the race detector slows
	// each HTTP round trip), and only time out afterwards.
	const queueTimeout = 2 * time.Second
	_, tc, done := newTestServer(t, Options{
		Engine:     engine.Options{Budget: 1, MaxQueue: 1, QueueTimeout: queueTimeout},
		RetryAfter: 2 * time.Second,
	})
	defer done()

	small := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: genPoints(500, 8)})

	// Pure validation, no scheduling involved.
	for _, bad := range []struct {
		name   string
		method string
		path   string
		body   any
	}{
		{"unknown kind", "POST", "/v1/sessions", CreateSessionRequest{Kind: "nope", Eps: 3}},
		{"batch without points", "POST", "/v1/sessions", CreateSessionRequest{Kind: "batch", Eps: 3}},
		{"bad eps", "POST", "/v1/sessions", CreateSessionRequest{Kind: "streaming", Eps: -1, Dims: 2}},
		{"hierarchy without minpts", "POST", "/v1/sessions", CreateSessionRequest{Kind: "hierarchy", Eps: 3, Points: genPoints(50, 9)}},
		{"unknown config field", "POST", "/v1/sessions/" + small.ID + "/runs", map[string]any{"config": map[string]any{"minPoints": 5}}},
		{"zero minpts", "POST", "/v1/sessions/" + small.ID + "/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 0}, Wait: true}},
		{"unknown method", "POST", "/v1/sessions/" + small.ID + "/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 5, Method: "magic"}, Wait: true}},
		{"negative shards", "POST", "/v1/sessions/" + small.ID + "/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 5, Shards: -1}, Wait: true}},
		{"eps mismatch", "POST", "/v1/sessions/" + small.ID + "/runs", SubmitRunRequest{Config: ConfigJSON{Eps: 7, MinPts: 5}, Wait: true}},
	} {
		if resp := tc.do(bad.method, bad.path, bad.body, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad.name, resp.StatusCode)
		}
	}
	tc.expect("GET", "/v1/sessions/nosuch", nil, http.StatusNotFound, nil)
	tc.expect("GET", "/v1/sessions/"+small.ID+"/runs/nosuch", nil, http.StatusNotFound, nil)

	// Saturate the budget: a whole-budget async run that cannot early-exit
	// core counting (minPts far above any neighborhood size), so it blocks
	// for tens of seconds unless cancelled — and cancels within milliseconds.
	blockSess := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 2, Points: genPoints(300000, 10)})
	var blocker RunStatus
	tc.expect("POST", "/v1/sessions/"+blockSess.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 200000}}, http.StatusAccepted, &blocker)
	// Unwind the blocker on any exit — teardown's Engine.Close would
	// otherwise wait out its full run.
	defer tc.do("DELETE", "/v1/sessions/"+blockSess.ID+"/runs/"+blocker.ID, nil, nil)

	// Fill the queue (MaxQueue 1), then overflow it: 429 with Retry-After.
	var queued RunStatus
	tc.expect("POST", "/v1/sessions/"+small.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 5}}, http.StatusAccepted, &queued)
	resp := tc.expect("POST", "/v1/sessions/"+small.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 5}, Wait: true}, http.StatusTooManyRequests, nil)
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("429 Retry-After = %q, want \"2\"", ra)
	}

	// The queued job exceeds QueueTimeout behind the blocker: fetching it
	// reports 504.
	var timedOut RunStatus
	resp = tc.do("GET", "/v1/sessions/"+small.ID+"/runs/"+queued.ID+"?wait=1", nil, &timedOut)
	if resp.StatusCode != http.StatusGatewayTimeout || timedOut.State != "failed" {
		t.Fatalf("timed-out run: status %d, body %+v; want 504/failed", resp.StatusCode, timedOut)
	}
	if timedOut.Stats == nil || time.Duration(timedOut.Stats.QueuedNS) < queueTimeout {
		t.Fatalf("timed-out run must report its true queue wait, got %+v", timedOut.Stats)
	}

	// A wait run with a short request deadline behind the blocker: 504.
	resp = tc.do("POST", "/v1/sessions/"+small.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 5}, DeadlineMillis: 30, Wait: true}, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline run: status %d, want 504", resp.StatusCode)
	}
}

// TestShutdownDrain pins the drain ordering: after Drain, in-flight jobs
// finish and are fetchable, while new mutating requests get 503 with
// Retry-After.
func TestShutdownDrain(t *testing.T) {
	srv, tc, done := newTestServer(t, Options{Engine: engine.Options{Budget: 1}})
	defer done()
	sess := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: genPoints(20000, 11)})

	// An in-flight wait run crossing the drain point.
	var wg sync.WaitGroup
	wg.Add(1)
	var inflight RunStatus
	var inflightCode int
	go func() {
		defer wg.Done()
		resp := tc.do("POST", "/v1/sessions/"+sess.ID+"/runs",
			SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}, &inflight)
		inflightCode = resp.StatusCode
	}()
	time.Sleep(10 * time.Millisecond)
	srv.Drain()

	for _, req := range []struct {
		name, method, path string
		body               any
	}{
		{"submit", "POST", "/v1/sessions/" + sess.ID + "/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}},
		{"create", "POST", "/v1/sessions", CreateSessionRequest{Kind: "streaming", Eps: 3, Dims: 2}},
		{"healthz", "GET", "/healthz", nil},
	} {
		resp := tc.do(req.method, req.path, req.body, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: status %d, want 503", req.name, resp.StatusCode)
		}
		if req.name != "healthz" {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Errorf("%s while draining: no Retry-After", req.name)
			}
		}
	}

	// The in-flight run completes normally, and read-only endpoints survive.
	wg.Wait()
	if inflightCode != http.StatusOK || inflight.State != "done" {
		t.Fatalf("in-flight run after drain: status %d, %+v", inflightCode, inflight)
	}
	tc.expect("GET", "/v1/sessions/"+sess.ID, nil, http.StatusOK, nil)

	// After Close (engine gone), submits map ErrClosed to 503 as well — but
	// the drain flag already covers the HTTP path; pin the engine-level
	// mapping directly.
	srv.Close()
	if status := submitStatus(engine.ErrClosed); status != http.StatusServiceUnavailable {
		t.Fatalf("submitStatus(ErrClosed) = %d, want 503", status)
	}
}

// TestConcurrentSessions drives mixed sessions concurrently through one
// server under -race.
func TestConcurrentSessions(t *testing.T) {
	_, tc, done := newTestServer(t, Options{Engine: engine.Options{Budget: 4, MaxQueue: 256}})
	defer done()

	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pts := genPoints(600, int64(20+g))
			switch g % 3 {
			case 0:
				sess := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: pts})
				for _, mp := range []int{5, 10, 20} {
					var st RunStatus
					tc.expect("POST", "/v1/sessions/"+sess.ID+"/runs",
						SubmitRunRequest{Config: ConfigJSON{MinPts: mp, Workers: 1 + g%3}, Priority: g, Wait: true},
						http.StatusOK, &st)
					if st.State != "done" {
						t.Errorf("batch run: %+v", st)
					}
				}
			case 1:
				sess := tc.createSession(CreateSessionRequest{Kind: "streaming", Eps: 3, Points: pts})
				path := "/v1/sessions/" + sess.ID
				for i := 0; i < 3; i++ {
					tc.expect("POST", path+"/points", InsertPointsRequest{Points: genPoints(100, int64(40+i))}, http.StatusOK, nil)
					tc.expect("POST", path+"/window", WindowRequest{N: 650}, http.StatusOK, nil)
					var st RunStatus
					tc.expect("POST", path+"/runs",
						SubmitRunRequest{Config: ConfigJSON{MinPts: 8, Workers: 1}, Wait: true}, http.StatusOK, &st)
					if st.State != "done" || len(st.Result.Labels) == 0 {
						t.Errorf("tick: %+v", st)
					}
				}
			case 2:
				sess := tc.createSession(CreateSessionRequest{Kind: "hierarchy", Eps: 3, MinPts: 5, Points: pts})
				for _, eps := range []float64{1, 2, 3} {
					var st RunStatus
					tc.expect("POST", "/v1/sessions/"+sess.ID+"/runs",
						SubmitRunRequest{Config: ConfigJSON{Eps: eps}, Wait: true}, http.StatusOK, &st)
					if st.State != "done" {
						t.Errorf("cut: %+v", st)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

var metricRe = regexp.MustCompile(`(?m)^(\w+)(?:\{[^}]*\})? ([0-9.e+-]+)$`)

// metricValue returns the first sample of the named metric (any labels) in a
// /metrics page, or -1.
func metricValue(body, name string) float64 {
	for _, m := range metricRe.FindAllStringSubmatch(body, -1) {
		if m[1] == name {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

func (tc *tclient) metrics() string {
	tc.t.Helper()
	req, _ := http.NewRequest("GET", tc.base+"/metrics", nil)
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	return buf.String()
}

func TestMetricsEndpoint(t *testing.T) {
	_, tc, done := newTestServer(t, Options{})
	defer done()
	sess := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: genPoints(1500, 12)})
	var st RunStatus
	tc.expect("POST", "/v1/sessions/"+sess.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}, http.StatusOK, &st)

	body := tc.metrics()
	for _, want := range []string{
		"dbscand_engine_worker_budget",
		"dbscand_engine_completed_total 1",
		`dbscand_sessions{kind="batch"} 1`,
		`dbscand_session_points{id="` + sess.ID + `",kind="batch"} 1500`,
		`dbscand_session_last_run_seconds{id="` + sess.ID + `",phase="total"}`,
		`dbscand_job_queue_seconds_bucket{le="+Inf"} 1`,
		"dbscand_job_run_seconds_count 1",
		`dbscand_http_responses_total{code="200"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsQueueWaitRecorded is the serving-layer half of the queue-wait
// regression: jobs that died waiting (deadline expired while queued) must
// contribute their true wait to the /metrics queue histogram, not zeros.
func TestMetricsQueueWaitRecorded(t *testing.T) {
	_, tc, done := newTestServer(t, Options{Engine: engine.Options{Budget: 1}})
	defer done()

	blockSess := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 2, Points: genPoints(300000, 13)})
	var blocker RunStatus
	tc.expect("POST", "/v1/sessions/"+blockSess.ID+"/runs",
		SubmitRunRequest{Config: ConfigJSON{MinPts: 200000}}, http.StatusAccepted, &blocker)
	defer tc.do("DELETE", "/v1/sessions/"+blockSess.ID+"/runs/"+blocker.ID, nil, nil)

	// Two wait runs with short deadlines die in the queue behind the blocker,
	// each after >= 30ms of waiting.
	small := tc.createSession(CreateSessionRequest{Kind: "batch", Eps: 3, Points: genPoints(500, 14)})
	for i := 0; i < 2; i++ {
		resp := tc.do("POST", "/v1/sessions/"+small.ID+"/runs",
			SubmitRunRequest{Config: ConfigJSON{MinPts: 5}, DeadlineMillis: 30, Wait: true}, nil)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("deadline run %d: status %d, want 504", i, resp.StatusCode)
		}
	}

	body := tc.metrics()
	if n := metricValue(body, "dbscand_job_queue_seconds_count"); n < 2 {
		t.Fatalf("queue histogram count = %v, want >= 2 (queued-and-died jobs must be recorded)", n)
	}
	// Two jobs each waited >= 30ms; with the seed bug (queue wait reported as
	// 0 on non-dispatch exits) this sum would be 0.
	if sum := metricValue(body, "dbscand_job_queue_seconds_sum"); sum < 0.06 {
		t.Fatalf("queue histogram sum = %v, want >= 0.06s", sum)
	}
}

// TestRetryAfterRounding pins the Retry-After computation to whole seconds,
// minimum 1.
func TestRetryAfterRounding(t *testing.T) {
	for _, tt := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"}, {200 * time.Millisecond, "1"}, {time.Second, "1"}, {1500 * time.Millisecond, "2"}, {3 * time.Second, "3"},
	} {
		s := New(Options{RetryAfter: tt.d})
		rec := httptest.NewRecorder()
		s.writeError(rec, http.StatusTooManyRequests, fmt.Errorf("full"))
		if got := rec.Header().Get("Retry-After"); got != tt.want {
			t.Errorf("RetryAfter %v: header %q, want %q", tt.d, got, tt.want)
		}
		s.Close()
	}
}
