// Package serve is the HTTP/JSON serving layer over engine.Engine: the piece
// that turns the job scheduler into a network service. It is session-oriented
// — a session owns a *pdbscan.Clusterer, *pdbscan.StreamingClusterer, or
// prebuilt *pdbscan.Hierarchy, so the eps-keyed cell structures, arenas, and
// incremental caches amortize across a client's requests exactly as they do
// across direct Run calls — and every run request becomes one engine job with
// the priority and deadline the request asked for.
//
// The engine's failure modes map to honest HTTP semantics:
//
//   - engine.ErrQueueFull  -> 429 Too Many Requests, with a Retry-After hint
//     (the bounded admission queue is the backpressure signal; clients back
//     off instead of piling on)
//   - engine.ErrQueueTimeout and context.DeadlineExceeded -> 504 Gateway
//     Timeout (the job's deadline — from the request's deadline_ms — or the
//     engine's queue-wait bound expired)
//   - validation errors (bad JSON, bad Config, unknown method, eps mismatch)
//     -> 400 Bad Request, rejected before the job occupies any queue slot
//   - engine.ErrClosed and draining -> 503 Service Unavailable, with
//     Retry-After (graceful shutdown: this replica is going away)
//
// GET /metrics exposes a Prometheus-style text page built from Engine.Stats,
// per-session LastRunStats/StreamStats, and histograms of per-job queue and
// run latencies (fed by engine.JobStats, which records the true queue wait
// even for jobs that timed out, were cancelled, or were swept by Close).
//
// Graceful shutdown drains in order: Drain() stops admission (mutating
// requests get 503), then the caller shuts down its http.Server (in-flight
// handlers — including wait=true runs — finish), then Close() closes the
// engine (running jobs complete; still-queued async jobs complete with
// ErrClosed and report 503 on fetch). cmd/dbscand wires this to SIGTERM.
//
// # API
//
//	POST   /v1/sessions                 {kind, eps, dims|points, min_pts}  create a session
//	GET    /v1/sessions                 list session infos
//	GET    /v1/sessions/{id}            session info + last run stats
//	DELETE /v1/sessions/{id}            delete (cancels the session's pending runs)
//	POST   /v1/sessions/{id}/points     insert points (streaming sessions)
//	DELETE /v1/sessions/{id}/points     remove points by id (streaming sessions)
//	POST   /v1/sessions/{id}/window     evict down to n newest points (streaming sessions)
//	POST   /v1/sessions/{id}/runs       submit a run/tick/cut job {config, priority, deadline_ms, wait}
//	GET    /v1/sessions/{id}/runs/{rid} poll an async run (?wait=1 blocks until done)
//	DELETE /v1/sessions/{id}/runs/{rid} cancel-and-forget an async run
//	GET    /metrics                     Prometheus-style metrics
//	GET    /healthz                     200 serving / 503 draining
//
// A run request with wait=true executes in one round trip: the handler blocks
// on the job (tied to the HTTP request context, so a disconnecting client
// cancels its job) and returns the result inline, storing nothing. Async runs
// (the default) return 202 with a run id to poll; they are retained until
// fetched-and-deleted, deleted explicitly, or their session is deleted.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pdbscan"
	"pdbscan/engine"
)

// Options configures a Server. The zero value is usable: a default Engine
// (GOMAXPROCS budget), DefaultMaxSessions, a 1s Retry-After hint.
type Options struct {
	// Engine configures the job scheduler the server wraps (worker budget,
	// admission-queue bound, queue timeout).
	Engine engine.Options
	// MaxSessions bounds live sessions; creates beyond it get 429. <= 0
	// means DefaultMaxSessions.
	MaxSessions int
	// MaxBodyBytes bounds request bodies. <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// RetryAfter is the hint attached to 429 and 503 responses (rounded up
	// to whole seconds, minimum 1). <= 0 means 1s.
	RetryAfter time.Duration
}

const (
	// DefaultMaxSessions bounds live sessions when Options.MaxSessions is
	// not set.
	DefaultMaxSessions = 4096
	// DefaultMaxBodyBytes bounds request bodies when Options.MaxBodyBytes is
	// not set.
	DefaultMaxBodyBytes = 64 << 20
)

// Server is the HTTP serving layer. Create with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	eng        *engine.Engine
	mux        *http.ServeMux
	metrics    *metrics
	maxSess    int
	maxBody    int64
	retryAfter time.Duration

	mu       sync.Mutex
	sessions map[string]*session
	nextSess uint64
	draining bool
	snapDir  string // streaming snapshot directory ("" = disabled); see snapshot.go
}

// session is one client-owned run target plus its async runs.
type session struct {
	id      string
	kind    string // "batch", "streaming", or "hierarchy"
	eps     float64
	dims    int
	minPts  int // hierarchy sessions: the dendrogram's MinPts
	created time.Time

	clusterer *pdbscan.Clusterer
	streaming *pdbscan.StreamingClusterer
	hierarchy *pdbscan.Hierarchy

	mu      sync.Mutex
	runs    map[string]*run
	nextRun uint64
}

// run is one async engine job owned by a session.
type run struct {
	id        string
	streaming bool
	job       *engine.Job
	cancel    context.CancelFunc
}

// New returns a Server wrapping a fresh engine.Engine built from
// opts.Engine.
func New(opts Options) *Server {
	s := &Server{
		eng:        engine.New(opts.Engine),
		metrics:    newMetrics(),
		maxSess:    opts.MaxSessions,
		maxBody:    opts.MaxBodyBytes,
		retryAfter: opts.RetryAfter,
		sessions:   make(map[string]*session),
	}
	if s.maxSess <= 0 {
		s.maxSess = DefaultMaxSessions
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	if s.retryAfter <= 0 {
		s.retryAfter = time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/points", s.handleInsertPoints)
	mux.HandleFunc("DELETE /v1/sessions/{id}/points", s.handleRemovePoints)
	mux.HandleFunc("POST /v1/sessions/{id}/window", s.handleWindow)
	mux.HandleFunc("POST /v1/sessions/{id}/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/sessions/{id}/runs/{rid}", s.handleGetRun)
	mux.HandleFunc("DELETE /v1/sessions/{id}/runs/{rid}", s.handleDeleteRun)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s
}

// Engine returns the wrapped engine (for stats sampling and tests). The
// Server owns its lifecycle; do not Close it directly — use Server.Close.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Drain stops admission: session creation, streaming mutations, and run
// submissions return 503 with Retry-After. Read-only endpoints (session info,
// run fetch, /metrics) keep serving, so clients can collect results of jobs
// already in flight. Call before http.Server.Shutdown.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Close drains (if not already) and closes the engine: running jobs finish,
// still-queued jobs complete with ErrClosed (fetching them reports 503).
// Call after http.Server.Shutdown has returned, so no handler is mid-submit.
func (s *Server) Close() {
	s.Drain()
	s.eng.Close()
}

// ServeHTTP implements http.Handler, recording per-status response counts
// for /metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.metrics.countResponse(sw.code)
}

type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ---------------------------------------------------------------- JSON types

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	// Kind is "batch", "streaming", or "hierarchy".
	Kind string `json:"kind"`
	// Eps is the session's clustering radius (required, > 0). Every run on
	// the session uses it; for hierarchy sessions it is the build (maximum
	// queryable) radius.
	Eps float64 `json:"eps"`
	// Points are the coordinate rows for batch and hierarchy sessions
	// (required there). For streaming sessions they are optional initial
	// inserts.
	Points [][]float64 `json:"points,omitempty"`
	// Dims is the dimensionality for streaming sessions created without
	// initial points.
	Dims int `json:"dims,omitempty"`
	// MinPts is the dendrogram density threshold for hierarchy sessions
	// (required there, >= 1).
	MinPts int `json:"min_pts,omitempty"`
	// Workers caps the parallelism of a hierarchy session's build (0 = all).
	Workers int `json:"workers,omitempty"`
}

// SessionInfo describes a session.
type SessionInfo struct {
	ID        string  `json:"id"`
	Kind      string  `json:"kind"`
	Eps       float64 `json:"eps"`
	Dims      int     `json:"dims"`
	NumPoints int     `json:"num_points"`
	MinPts    int     `json:"min_pts,omitempty"`
	// PendingRuns counts stored async runs not yet deleted.
	PendingRuns int `json:"pending_runs"`
}

// ConfigJSON mirrors pdbscan.Config for run submissions. Eps may be 0 (the
// session's eps); for hierarchy sessions Eps is the cut radius and is
// required.
type ConfigJSON struct {
	Eps       float64 `json:"eps,omitempty"`
	MinPts    int     `json:"min_pts,omitempty"`
	Method    string  `json:"method,omitempty"`
	Rho       float64 `json:"rho,omitempty"`
	Bucketing bool    `json:"bucketing,omitempty"`
	Buckets   int     `json:"buckets,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Shards    int     `json:"shards,omitempty"`

	// Sampled-core approximate mode (DBSCAN++): see pdbscan.Config.Sampler.
	// Batch sessions only; streaming and hierarchy runs reject samplers.
	Sampler    string  `json:"sampler,omitempty"`
	SampleFrac float64 `json:"sample_frac,omitempty"`
	SampleSeed int64   `json:"sample_seed,omitempty"`
}

func (c ConfigJSON) toConfig() pdbscan.Config {
	return pdbscan.Config{
		Eps: c.Eps, MinPts: c.MinPts, Method: pdbscan.Method(c.Method),
		Rho: c.Rho, Bucketing: c.Bucketing, Buckets: c.Buckets,
		Workers: c.Workers, Shards: c.Shards,
		Sampler: pdbscan.Sampler(c.Sampler), SampleFrac: c.SampleFrac,
		SampleSeed: c.SampleSeed,
	}
}

// SubmitRunRequest is the body of POST /v1/sessions/{id}/runs.
type SubmitRunRequest struct {
	Config ConfigJSON `json:"config"`
	// Priority orders queued jobs (higher first, FIFO within a priority).
	Priority int `json:"priority,omitempty"`
	// DeadlineMillis bounds the job's whole life (queue wait + run): the
	// submit context carries context.WithTimeout(deadline_ms). Expiry
	// reports 504. 0 means no deadline.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Wait makes the submission synchronous: the response carries the
	// result (or the job's mapped error) and nothing is stored. The job is
	// additionally tied to the HTTP request context, so a disconnecting
	// client cancels it.
	Wait bool `json:"wait,omitempty"`
}

// JobStatsJSON mirrors engine.JobStats.
type JobStatsJSON struct {
	Workers  int   `json:"workers"`
	QueuedNS int64 `json:"queued_ns"`
	RunNS    int64 `json:"run_ns"`
}

// ResultJSON is a clustering result on the wire.
type ResultJSON struct {
	NumClusters int     `json:"num_clusters"`
	NumNoise    int     `json:"num_noise"`
	Labels      []int32 `json:"labels"`
	Core        []bool  `json:"core"`
	// IDs aligns rows with streaming point ids (streaming sessions only).
	IDs []int64 `json:"ids,omitempty"`
}

// RunStatus is the state of a run: pending, done (with result + stats), or
// failed (with the error and its mapped status code as the HTTP status).
type RunStatus struct {
	ID     string        `json:"id,omitempty"`
	State  string        `json:"state"` // "pending", "done", "failed"
	Error  string        `json:"error,omitempty"`
	Result *ResultJSON   `json:"result,omitempty"`
	Stats  *JobStatsJSON `json:"stats,omitempty"`
}

// InsertPointsRequest is the body of POST /v1/sessions/{id}/points.
type InsertPointsRequest struct {
	Points [][]float64 `json:"points"`
}

// RemovePointsRequest is the body of DELETE /v1/sessions/{id}/points.
type RemovePointsRequest struct {
	IDs []int64 `json:"ids"`
}

// WindowRequest is the body of POST /v1/sessions/{id}/window.
type WindowRequest struct {
	N int `json:"n"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ------------------------------------------------------------- error mapping

// submitStatus maps an Engine.Submit (or pre-submit validation) error to its
// HTTP status: the admission-time failure modes.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request's deadline_ms expired before the job was even
		// admitted (Submit checks ctx up front).
		return http.StatusGatewayTimeout
	default:
		// Everything else Submit returns is validation-shaped
		// (ErrBadRequest, Config.Validate, ValidateEps).
		return http.StatusBadRequest
	}
}

// jobStatus maps a completed job's error to its HTTP status: the
// post-admission failure modes.
func jobStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, engine.ErrQueueTimeout),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		secs := int((s.retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to map an error to
}

// decodeJSON strictly decodes the request body into v (unknown fields are a
// 400 — a typoed field silently ignored is a config that did not do what the
// client asked).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// ----------------------------------------------------------------- sessions

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	var req CreateSessionRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	sess := &session{kind: req.Kind, eps: req.Eps, created: time.Now(), runs: make(map[string]*run)}
	switch req.Kind {
	case "batch":
		c, err := pdbscan.NewClusterer(req.Points, req.Eps)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		sess.clusterer = c
		sess.dims = c.Dims()
	case "streaming":
		dims := req.Dims
		if dims == 0 && len(req.Points) > 0 {
			dims = len(req.Points[0])
		}
		sc, err := pdbscan.NewStreamingClusterer(dims, req.Eps)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Points) > 0 {
			if _, err := sc.Insert(req.Points); err != nil {
				s.writeError(w, http.StatusBadRequest, err)
				return
			}
		}
		sess.streaming = sc
		sess.dims = dims
	case "hierarchy":
		c, err := pdbscan.NewClusterer(req.Points, req.Eps)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		// The build is synchronous and parallelizes under req.Workers; a
		// disconnecting client cancels it.
		h, err := c.BuildHierarchyContext(r.Context(), pdbscan.Config{MinPts: req.MinPts, Workers: req.Workers})
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
			s.writeError(w, status, err)
			return
		}
		sess.hierarchy = h
		sess.minPts = req.MinPts
		sess.dims = c.Dims()
	default:
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown session kind %q (want batch, streaming, or hierarchy)", req.Kind))
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	if len(s.sessions) >= s.maxSess {
		s.mu.Unlock()
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("session limit reached (%d); delete one or retry later", s.maxSess))
		return
	}
	s.nextSess++
	sess.id = "s" + strconv.FormatUint(s.nextSess, 10)
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, s.infoOf(sess))
}

func (s *Server) infoOf(sess *session) SessionInfo {
	info := SessionInfo{
		ID: sess.id, Kind: sess.kind, Eps: sess.eps, Dims: sess.dims, MinPts: sess.minPts,
	}
	switch sess.kind {
	case "batch":
		info.NumPoints = sess.clusterer.NumPoints()
	case "streaming":
		info.NumPoints = sess.streaming.Len()
	case "hierarchy":
		info.NumPoints = sess.hierarchy.NumPoints()
	}
	sess.mu.Lock()
	info.PendingRuns = len(sess.runs)
	sess.mu.Unlock()
	return info
}

// sessionOf resolves the {id} path value, writing a 404 and returning nil if
// it names no live session.
func (s *Server) sessionOf(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return nil
	}
	return sess
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()
	infos := make([]SessionInfo, 0, len(all))
	for _, sess := range all {
		infos = append(infos, s.infoOf(sess))
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionOf(w, r)
	if sess == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.infoOf(sess))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if sess == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return
	}
	// Cancel the session's pending async runs: their jobs dequeue (or unwind
	// mid-run) and their watcher goroutines record final stats.
	sess.mu.Lock()
	for _, rn := range sess.runs {
		rn.cancel()
	}
	sess.runs = make(map[string]*run)
	sess.mu.Unlock()
	if sess.kind == "streaming" {
		s.removeSnapshot(sess.id) // a deleted session must not resurrect on reboot
	}
	w.WriteHeader(http.StatusNoContent)
}

// ------------------------------------------------------ streaming mutations

// streamingOf is sessionOf plus the kind check shared by the mutation
// endpoints.
func (s *Server) streamingOf(w http.ResponseWriter, r *http.Request) *session {
	sess := s.sessionOf(w, r)
	if sess == nil {
		return nil
	}
	if sess.kind != "streaming" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("session %s is %s; points mutations need a streaming session", sess.id, sess.kind))
		return nil
	}
	return sess
}

func (s *Server) handleInsertPoints(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	sess := s.streamingOf(w, r)
	if sess == nil {
		return
	}
	var req InsertPointsRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ids, err := sess.streaming.Insert(req.Points)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids})
}

func (s *Server) handleRemovePoints(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	sess := s.streamingOf(w, r)
	if sess == nil {
		return
	}
	var req RemovePointsRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := sess.streaming.Remove(req.IDs...); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": len(req.IDs)})
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	sess := s.streamingOf(w, r)
	if sess == nil {
		return
	}
	var req WindowRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	evicted := sess.streaming.Window(req.N)
	if evicted == nil {
		evicted = []int64{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"evicted": evicted})
}

// -------------------------------------------------------------------- runs

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	sess := s.sessionOf(w, r)
	if sess == nil {
		return
	}
	var req SubmitRunRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg := req.Config.toConfig()
	er := engine.Request{Config: cfg, Priority: req.Priority}
	switch sess.kind {
	case "batch":
		er.Clusterer = sess.clusterer
	case "streaming":
		er.Streaming = sess.streaming
	case "hierarchy":
		er.Hierarchy = sess.hierarchy
	}
	// Reject an eps mismatch here, where it maps to 400: left to the run it
	// would surface as a 500 job failure.
	if sess.kind != "hierarchy" && cfg.Eps != 0 && cfg.Eps != sess.eps {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("session %s is built for eps=%v; config.eps must be 0 or equal (got %v)", sess.id, sess.eps, cfg.Eps))
		return
	}

	// The submit context: background for async runs (the job outlives this
	// handler), the request context for wait runs (a gone client cancels its
	// job), with the request's deadline layered on either.
	base := context.Background()
	if req.Wait {
		base = r.Context()
	}
	// Always cancellable, so deleting the run (or its session) can unwind a
	// queued or running job, not just deadline expiry.
	var ctx context.Context
	var cancel context.CancelFunc
	if req.DeadlineMillis > 0 {
		ctx, cancel = context.WithTimeout(base, time.Duration(req.DeadlineMillis)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(base)
	}

	job, err := s.eng.Submit(ctx, er)
	if err != nil {
		cancel()
		s.writeError(w, submitStatus(err), err)
		return
	}

	if req.Wait {
		<-job.Done()
		s.metrics.recordJob(job)
		cancel()
		s.writeRunStatus(w, "", sess, job)
		return
	}

	sess.mu.Lock()
	sess.nextRun++
	rn := &run{
		id:        "r" + strconv.FormatUint(sess.nextRun, 10),
		streaming: sess.kind == "streaming",
		job:       job,
		cancel:    cancel,
	}
	sess.runs[rn.id] = rn
	sess.mu.Unlock()
	// The watcher releases the deadline timer and feeds the latency
	// histograms as soon as the job settles, fetched or not.
	go func() {
		<-job.Done()
		cancel()
		s.metrics.recordJob(job)
	}()
	writeJSON(w, http.StatusAccepted, RunStatus{ID: rn.id, State: "pending"})
}

// writeRunStatus renders a settled job: 200 + result on success, the mapped
// error status otherwise.
func (s *Server) writeRunStatus(w http.ResponseWriter, id string, sess *session, job *engine.Job) {
	st := job.Stats()
	stats := &JobStatsJSON{Workers: st.Workers, QueuedNS: st.Queued.Nanoseconds(), RunNS: st.Run.Nanoseconds()}
	if err := job.Err(); err != nil {
		status := jobStatus(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			secs := int((s.retryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, status, RunStatus{ID: id, State: "failed", Error: err.Error(), Stats: stats})
		return
	}
	var rj *ResultJSON
	if sess.kind == "streaming" {
		sr, _ := job.StreamResult()
		rj = &ResultJSON{
			NumClusters: sr.NumClusters, NumNoise: sr.NumNoise(),
			Labels: sr.Labels, Core: sr.Core, IDs: sr.IDs,
		}
	} else {
		res, _ := job.Result()
		rj = &ResultJSON{
			NumClusters: res.NumClusters, NumNoise: res.NumNoise(),
			Labels: res.Labels, Core: res.Core,
		}
	}
	writeJSON(w, http.StatusOK, RunStatus{ID: id, State: "done", Result: rj, Stats: stats})
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionOf(w, r)
	if sess == nil {
		return
	}
	rid := r.PathValue("rid")
	sess.mu.Lock()
	rn := sess.runs[rid]
	sess.mu.Unlock()
	if rn == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no run %q in session %s", rid, sess.id))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-rn.job.Done():
		case <-r.Context().Done():
			// The client gave up; the job keeps running for a later poll.
			s.writeError(w, http.StatusGatewayTimeout, r.Context().Err())
			return
		}
	}
	select {
	case <-rn.job.Done():
		s.writeRunStatus(w, rn.id, sess, rn.job)
	default:
		writeJSON(w, http.StatusOK, RunStatus{ID: rn.id, State: "pending"})
	}
}

func (s *Server) handleDeleteRun(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionOf(w, r)
	if sess == nil {
		return
	}
	rid := r.PathValue("rid")
	sess.mu.Lock()
	rn := sess.runs[rid]
	delete(sess.runs, rid)
	sess.mu.Unlock()
	if rn == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no run %q in session %s", rid, sess.id))
		return
	}
	rn.cancel() // dequeue or unwind; the watcher still records its stats
	w.WriteHeader(http.StatusNoContent)
}

// ------------------------------------------------------------------- health

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
