package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"pdbscan/engine"
)

// metrics holds the server-side counters and latency histograms exported by
// GET /metrics. Engine counters are read live from Engine.Stats at render
// time; only what the engine cannot know — HTTP response codes and per-job
// latency distributions — is accumulated here.
type metrics struct {
	mu        sync.Mutex
	responses map[int]uint64
	queue     *histogram // per-job queue wait (every admitted job, ran or not)
	run       *histogram // per-job execution time (jobs that ran)
}

// histBounds are the histogram bucket upper bounds in seconds: a short
// exponential ladder from 500µs to 10s, enough to separate "dispatched
// immediately" from "sat behind the queue" without prometheus-client
// dependencies or cardinality bloat.
var histBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func newMetrics() *metrics {
	return &metrics{
		responses: make(map[int]uint64),
		queue:     newHistogram(histBounds),
		run:       newHistogram(histBounds),
	}
}

func (m *metrics) countResponse(code int) {
	m.mu.Lock()
	m.responses[code]++
	m.mu.Unlock()
}

// recordJob feeds a settled job's scheduling stats into the histograms. The
// queue histogram deliberately includes jobs that never ran — timed out,
// cancelled while queued, swept by Close — whose JobStats.Queued records the
// true wait; dropping them would bias the queue-latency distribution toward
// the happy path exactly when the service is overloaded.
func (m *metrics) recordJob(j *engine.Job) {
	st := j.Stats()
	m.queue.observe(st.Queued.Seconds())
	if st.Run > 0 {
		m.run.observe(st.Run.Seconds())
	}
}

// histogram is a fixed-bound cumulative histogram (Prometheus semantics:
// bucket counts are cumulative, +Inf equals _count). Observations are
// per-job-completion, so a mutex is plenty.
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts aligned with bounds (plus the
// implicit +Inf = total), the sum, and the count.
func (h *histogram) snapshot() (cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.bounds))
	acc := uint64(0)
	for i := range h.bounds {
		acc += h.counts[i]
		cum[i] = acc
	}
	return cum, h.sum, h.total
}

func (h *histogram) writeTo(w http.ResponseWriter, name, help string) {
	cum, sum, total := h.snapshot()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, sum, name, total)
}

// handleMetrics renders the Prometheus-style text page: engine scheduler
// state, HTTP response counts, session gauges with per-session last-run
// observability, and the job latency histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	st := s.eng.Stats()
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("dbscand_engine_queued", "jobs waiting in the admission queue", st.Queued)
	gauge("dbscand_engine_running", "jobs in flight", st.Running)
	gauge("dbscand_engine_workers_in_use", "worker budget consumed by running jobs", st.WorkersInUse)
	gauge("dbscand_engine_worker_budget", "total shared worker budget", st.Budget)
	counter("dbscand_engine_submitted_total", "jobs admitted (queued or started)", st.Submitted)
	counter("dbscand_engine_completed_total", "jobs finished with a nil error", st.Completed)
	counter("dbscand_engine_cancelled_total", "jobs ended by context cancellation or deadline", st.Cancelled)
	counter("dbscand_engine_rejected_total", "submissions refused with a full queue (HTTP 429)", st.Rejected)
	counter("dbscand_engine_timedout_total", "queued jobs rejected by the queue timeout", st.TimedOut)
	counter("dbscand_engine_closed_total", "queued jobs swept by engine close", st.Closed)
	counter("dbscand_engine_failed_total", "jobs finished with any other error", st.Failed)

	// HTTP responses by status code.
	s.mu.Lock()
	codes := make([]int, 0, len(s.metrics.responses))
	for c := range s.metrics.responses {
		codes = append(codes, c)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Ints(codes)
	fmt.Fprintf(w, "# HELP dbscand_http_responses_total HTTP responses by status code\n# TYPE dbscand_http_responses_total counter\n")
	s.metrics.mu.Lock()
	for _, c := range codes {
		fmt.Fprintf(w, "dbscand_http_responses_total{code=%q} %d\n", strconv.Itoa(c), s.metrics.responses[c])
	}
	s.metrics.mu.Unlock()

	// Session gauges plus per-session last-run observability, straight from
	// LastRunStats / StreamStats / BuildStats.
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	byKind := map[string]int{}
	for _, sess := range sessions {
		byKind[sess.kind]++
	}
	fmt.Fprintf(w, "# HELP dbscand_sessions live sessions by kind\n# TYPE dbscand_sessions gauge\n")
	for _, kind := range []string{"batch", "streaming", "hierarchy"} {
		fmt.Fprintf(w, "dbscand_sessions{kind=%q} %d\n", kind, byKind[kind])
	}
	fmt.Fprintf(w, "# HELP dbscand_session_points live points per session\n# TYPE dbscand_session_points gauge\n")
	for _, sess := range sessions {
		fmt.Fprintf(w, "dbscand_session_points{id=%q,kind=%q} %d\n", sess.id, sess.kind, s.infoOf(sess).NumPoints)
	}
	fmt.Fprintf(w, "# HELP dbscand_session_last_run_seconds wall time of the session's most recent completed run, by phase\n# TYPE dbscand_session_last_run_seconds gauge\n")
	for _, sess := range sessions {
		switch sess.kind {
		case "batch":
			rs := sess.clusterer.LastRunStats()
			if rs.Total > 0 {
				for _, ph := range []struct {
					name string
					d    float64
				}{
					{"total", rs.Total.Seconds()}, {"mark_core", rs.MarkCore.Seconds()},
					{"cluster_core", rs.ClusterCore.Seconds()}, {"border", rs.Border.Seconds()},
				} {
					fmt.Fprintf(w, "dbscand_session_last_run_seconds{id=%q,phase=%q} %g\n", sess.id, ph.name, ph.d)
				}
			}
		case "hierarchy":
			bs := sess.hierarchy.BuildStats()
			fmt.Fprintf(w, "dbscand_session_last_run_seconds{id=%q,phase=%q} %g\n", sess.id, "hierarchy_build", bs.Total.Seconds())
		}
	}
	fmt.Fprintf(w, "# HELP dbscand_session_stream_dirty_cells dirty-cell count of the streaming session's most recent tick\n# TYPE dbscand_session_stream_dirty_cells gauge\n")
	for _, sess := range sessions {
		if sess.kind == "streaming" {
			fmt.Fprintf(w, "dbscand_session_stream_dirty_cells{id=%q} %d\n", sess.id, sess.streaming.LastRunStats().DirtyCells)
		}
	}
	fmt.Fprintf(w, "# HELP dbscand_session_stream_full whether the streaming session's most recent tick was a full recompute\n# TYPE dbscand_session_stream_full gauge\n")
	for _, sess := range sessions {
		if sess.kind == "streaming" {
			full := 0
			if sess.streaming.LastRunStats().Full {
				full = 1
			}
			fmt.Fprintf(w, "dbscand_session_stream_full{id=%q} %d\n", sess.id, full)
		}
	}

	s.metrics.queue.writeTo(w, "dbscand_job_queue_seconds",
		"per-job admission-queue wait (includes jobs that timed out, were cancelled, or were swept by close)")
	s.metrics.run.writeTo(w, "dbscand_job_run_seconds", "per-job execution time (jobs that ran)")
}
