package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// TestSnapshotSaveRestoreReboot drives a streaming session, "reboots" the
// server (SaveSnapshots + a fresh Server restoring from the same directory),
// and checks the session resumes under its original id with an identical next
// tick, preserved point ids, and a continued id sequence.
func TestSnapshotSaveRestoreReboot(t *testing.T) {
	dir := t.TempDir()
	srv, tc, done := newTestServer(t, Options{})
	srv.SetSnapshotDir(dir)

	sess := tc.createSession(CreateSessionRequest{Kind: "streaming", Eps: 3, Dims: 2})
	path := "/v1/sessions/" + sess.ID
	var ins struct {
		IDs []int64 `json:"ids"`
	}
	tc.expect("POST", path+"/points", InsertPointsRequest{Points: genPoints(800, 11)}, http.StatusOK, &ins)
	var warm RunStatus
	tc.expect("POST", path+"/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}, http.StatusOK, &warm)
	// Pending mutations the snapshot must carry.
	tc.expect("DELETE", path+"/points", RemovePointsRequest{IDs: ins.IDs[:20]}, http.StatusOK, nil)

	// The reference next tick, from the still-running original.
	var want RunStatus
	tc.expect("POST", path+"/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}, http.StatusOK, &want)

	if n, err := srv.SaveSnapshots(); err != nil || n != 1 {
		t.Fatalf("SaveSnapshots = %d, %v", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, sess.ID+".snap")); err != nil {
		t.Fatal(err)
	}
	done()

	// Reboot: a fresh server restores from the same directory. The snapshot
	// was taken BEFORE the reference tick, which consumed the pending
	// removals — but the snapshot carries them as still-pending, so the
	// restored session's next tick must reproduce the reference.
	srv2, tc2, done2 := newTestServer(t, Options{})
	defer done2()
	srv2.SetSnapshotDir(dir)
	if n, err := srv2.RestoreSnapshots(); err != nil || n != 1 {
		t.Fatalf("RestoreSnapshots = %d, %v", n, err)
	}

	var info SessionInfo
	tc2.expect("GET", path, nil, http.StatusOK, &info) // original id resolves
	if info.Kind != "streaming" || info.NumPoints != 780 || info.Eps != 3 {
		t.Fatalf("restored session info %+v", info)
	}

	var got RunStatus
	tc2.expect("POST", path+"/runs", SubmitRunRequest{Config: ConfigJSON{MinPts: 8}, Wait: true}, http.StatusOK, &got)
	if len(got.Result.IDs) != len(want.Result.IDs) {
		t.Fatalf("restored tick has %d rows, want %d", len(got.Result.IDs), len(want.Result.IDs))
	}
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for k := range want.Result.IDs {
		if got.Result.IDs[k] != want.Result.IDs[k] {
			t.Fatalf("row %d: id %d vs %d", k, got.Result.IDs[k], want.Result.IDs[k])
		}
		if got.Result.Core[k] != want.Result.Core[k] {
			t.Fatalf("row %d: core %v vs %v", k, got.Result.Core[k], want.Result.Core[k])
		}
		x, y := want.Result.Labels[k], got.Result.Labels[k]
		if (x < 0) != (y < 0) {
			t.Fatalf("row %d: label %d vs %d", k, x, y)
		}
		if x >= 0 {
			if v, ok := fwd[x]; ok && v != y {
				t.Fatalf("labels not permutation-equal at row %d", k)
			}
			if v, ok := rev[y]; ok && v != x {
				t.Fatalf("labels not permutation-equal at row %d", k)
			}
			fwd[x], rev[y] = y, x
		}
	}
	if got.Result.NumClusters != want.Result.NumClusters {
		t.Fatalf("%d vs %d clusters", got.Result.NumClusters, want.Result.NumClusters)
	}

	// New sessions continue past the restored id.
	s2 := tc2.createSession(CreateSessionRequest{Kind: "streaming", Eps: 3, Dims: 2})
	if s2.ID == sess.ID {
		t.Fatalf("restored id %s reissued", sess.ID)
	}

	// Deleting the restored session removes its snapshot file.
	tc2.expect("DELETE", path, nil, http.StatusNoContent, nil)
	if _, err := os.Stat(filepath.Join(dir, sess.ID+".snap")); !os.IsNotExist(err) {
		t.Fatalf("snapshot file still present after session delete: %v", err)
	}
}

// TestSnapshotCorruptFileSkipped: a damaged snapshot is reported, not served.
func TestSnapshotCorruptFileSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "s7.snap"), []byte("PDBSNAP1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, _, done := newTestServer(t, Options{})
	defer done()
	srv.SetSnapshotDir(dir)
	n, err := srv.RestoreSnapshots()
	if n != 0 || err == nil {
		t.Fatalf("RestoreSnapshots = %d, %v; want 0 + error", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s7.snap")); err != nil {
		t.Fatal("corrupt snapshot file was deleted; it should be kept for inspection")
	}
}
