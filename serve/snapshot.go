package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pdbscan"
)

// SetSnapshotDir points the server at a directory for streaming-session
// warm-restart snapshots (pdbscan.StreamingClusterer.Snapshot streams): after
// a drain, SaveSnapshots writes one <session-id>.snap per streaming session
// there, and deleting a session removes its file. Call RestoreSnapshots on
// boot to resurrect the sessions. An empty dir (the default) disables all of
// it.
func (s *Server) SetSnapshotDir(dir string) {
	s.mu.Lock()
	s.snapDir = dir
	s.mu.Unlock()
}

// SaveSnapshots writes every streaming session's warm state to the snapshot
// directory, one checksummed <id>.snap file each (temp file + rename, so a
// crash mid-save never leaves a partial snapshot under the final name).
// Batch and hierarchy sessions are skipped — their state is their immutable
// input, which the client can re-POST. Call it after Drain + Shutdown, when
// no mutations are in flight; it returns the number of sessions saved and
// the first error (continuing past per-session failures).
func (s *Server) SaveSnapshots() (int, error) {
	s.mu.Lock()
	dir := s.snapDir
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess.kind == "streaming" {
			all = append(all, sess)
		}
	}
	s.mu.Unlock()
	if dir == "" {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	saved := 0
	var firstErr error
	for _, sess := range all {
		if err := saveOne(dir, sess); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		saved++
	}
	return saved, firstErr
}

func saveOne(dir string, sess *session) error {
	final := filepath.Join(dir, sess.id+".snap")
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op once renamed
	if err := sess.streaming.Snapshot(f); err != nil {
		f.Close()
		return fmt.Errorf("session %s: %w", sess.id, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// RestoreSnapshots loads every *.snap file in the snapshot directory as a
// streaming session under its original id (so clients resume with the URLs
// and point ids they had before the restart) and bumps the session counter
// past the restored ids. A snapshot that fails to restore — truncated,
// bit-flipped, wrong version — is skipped and reported in the error, never
// served silently wrong; the file is left in place for inspection. Call once
// on boot, before serving traffic. Returns the number of sessions restored.
func (s *Server) RestoreSnapshots() (int, error) {
	s.mu.Lock()
	dir := s.snapDir
	s.mu.Unlock()
	if dir == "" {
		return 0, nil
	}
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil // first boot: nothing saved yet
	}
	if err != nil {
		return 0, err
	}
	restored := 0
	var firstErr error
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".snap") {
			continue
		}
		id := strings.TrimSuffix(name, ".snap")
		seq, ok := sessionSeq(id)
		if !ok {
			continue // not a session-id-shaped name; leave it alone
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sc, err := pdbscan.RestoreStreaming(f)
		f.Close()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("snapshot %s: %w", name, err)
			}
			continue
		}
		sess := &session{
			id:        id,
			kind:      "streaming",
			eps:       sc.Eps(),
			dims:      sc.Dims(),
			streaming: sc,
			runs:      make(map[string]*run),
		}
		s.mu.Lock()
		if _, exists := s.sessions[id]; exists {
			s.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("snapshot %s: session id already live", name)
			}
			continue
		}
		s.sessions[id] = sess
		if seq > s.nextSess {
			s.nextSess = seq // new sessions continue past every restored id
		}
		s.mu.Unlock()
		restored++
	}
	return restored, firstErr
}

// sessionSeq parses the numeric sequence out of a session id ("s42" -> 42).
func sessionSeq(id string) (uint64, bool) {
	if len(id) < 2 || id[0] != 's' {
		return 0, false
	}
	seq, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// removeSnapshot deletes a session's snapshot file, if the directory is
// configured (a deleted session must not resurrect on the next boot).
func (s *Server) removeSnapshot(id string) {
	s.mu.Lock()
	dir := s.snapDir
	s.mu.Unlock()
	if dir == "" {
		return
	}
	os.Remove(filepath.Join(dir, id+".snap"))
}
