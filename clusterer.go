package pdbscan

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pdbscan/internal/core"
	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
)

// Clusterer holds the eps-dependent spatial structure — the cell partition
// and its neighbor lists (Sections 4.1, 4.2, 5.1) — and answers repeated Run
// calls against it. The structure depends only on the points and Eps, not on
// MinPts, Method's connectivity strategy, Rho, or Bucketing, so a parameter
// sweep over those (the workflow of Section 7 and of examples/paramsearch)
// pays the grid construction once instead of once per run.
//
// A Clusterer is safe for concurrent use: Run calls may overlap freely, each
// honoring its own Config.Workers budget. The cell structure for each layout
// (grid, and box for 2D methods) is built lazily on the first Run that needs
// it; concurrent first Runs block until the one build finishes.
//
// The points slice handed to NewClustererFlat (or the rows copied by
// NewClusterer) must not be mutated while the Clusterer is in use.
type Clusterer struct {
	pts geom.Points
	eps float64

	grid lazyCells // grid layout (Section 4.1), any dimension
	box  lazyCells // box layout (Section 4.2), 2D methods only

	// parts caches the spatial partitions of the grid layout by shard
	// count: like the cells they cut, they depend only on the points and
	// eps, so a sweep of sharded Runs pays MakePartition's sorts once.
	partMu sync.Mutex
	parts  map[int]*grid.Partition

	// arena pools the pipeline's per-run and per-worker scratch buffers, so
	// repeated Run calls are near-allocation-free in steady state. Checkout
	// is per run (concurrent Runs each pop their own scratch), so sharing
	// the arena across overlapping Runs is safe.
	arena *core.Arena

	builds atomic.Int32 // number of cell-structure builds (for tests)
}

// lazyCells builds a cell structure at most once.
type lazyCells struct {
	once  sync.Once
	cells *grid.Cells
}

// NewClusterer prepares a Clusterer for the given coordinate rows (all rows
// must have the same dimensionality) at the given eps. The points are copied.
func NewClusterer(points [][]float64, eps float64) (*Clusterer, error) {
	pts, err := geom.FromRows(points)
	if err != nil {
		return nil, err
	}
	return newClusterer(pts, eps)
}

// NewClustererFlat prepares a Clusterer over n = len(data)/dims points stored
// row-major in a flat slice, without copying. data must not be mutated while
// the Clusterer is in use.
func NewClustererFlat(data []float64, dims int, eps float64) (*Clusterer, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("pdbscan: dims must be positive, got %d", dims)
	}
	if len(data) == 0 || len(data)%dims != 0 {
		return nil, fmt.Errorf("pdbscan: data length %d is not a positive multiple of dims %d", len(data), dims)
	}
	return newClusterer(geom.Points{N: len(data) / dims, D: dims, Data: data}, eps)
}

func newClusterer(pts geom.Points, eps float64) (*Clusterer, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("pdbscan: Eps must be positive, got %v", eps)
	}
	// Non-finite or out-of-lattice-range coordinates would corrupt the grid
	// construction; reject them up front with a clear error.
	if err := checkCoords(pts.Data, pts.D, eps); err != nil {
		return nil, err
	}
	return &Clusterer{pts: pts, eps: eps, arena: core.NewArena()}, nil
}

// Eps returns the radius this Clusterer was built for.
func (c *Clusterer) Eps() float64 { return c.eps }

// NumPoints returns the number of points.
func (c *Clusterer) NumPoints() int { return c.pts.N }

// Dims returns the dimensionality of the points.
func (c *Clusterer) Dims() int { return c.pts.D }

// validateBudgetConfig checks the scheduling fields (Workers, Shards) that
// both Prepare and the Run-shaped entry points must reject — one function so
// the conditions and messages cannot diverge.
func validateBudgetConfig(cfg *Config) error {
	if cfg.Workers < 0 {
		return fmt.Errorf("pdbscan: Workers must be >= 0, got %d (0 means all CPUs)", cfg.Workers)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("pdbscan: Shards must be >= 0, got %d (0 means auto, 1 forces the monolithic path)", cfg.Shards)
	}
	return nil
}

// validateRunConfig checks the Config fields every Run-shaped entry point
// (Clusterer.Run, StreamingClusterer.Run) must reject up front.
func validateRunConfig(cfg *Config) error {
	if cfg.MinPts < 1 {
		return fmt.Errorf("pdbscan: MinPts must be >= 1, got %d", cfg.MinPts)
	}
	if err := validateBudgetConfig(cfg); err != nil {
		return err
	}
	if cfg.Buckets < 0 {
		return fmt.Errorf("pdbscan: Buckets must not be negative, got %d (0 selects the default of 32)", cfg.Buckets)
	}
	return nil
}

// resolveMethod maps cfg.Method (defaulting by dimension d) to the pipeline
// strategies, reporting whether the 2D box layout is needed.
func resolveMethod(d int, cfg *Config, params *core.Params) (useBox bool, err error) {
	method := cfg.Method
	if method == "" || method == MethodAuto {
		if d == 2 {
			method = Method2DGridBCP
		} else {
			method = MethodExact
		}
	}
	switch method {
	case MethodExact:
		params.Mark, params.Graph = core.MarkScan, core.GraphBCP
	case MethodExactQt:
		params.Mark, params.Graph = core.MarkQuadtree, core.GraphQuadtree
	case MethodApprox:
		params.Mark, params.Graph = core.MarkScan, core.GraphApprox
	case MethodApproxQt:
		params.Mark, params.Graph = core.MarkQuadtree, core.GraphApprox
	case Method2DGridBCP, Method2DBoxBCP:
		params.Mark, params.Graph = core.MarkScan, core.GraphBCP
		useBox = method == Method2DBoxBCP
	case Method2DGridUSEC, Method2DBoxUSEC:
		params.Mark, params.Graph = core.MarkScan, core.GraphUSEC
		useBox = method == Method2DBoxUSEC
	case Method2DGridDelaunay, Method2DBoxDelaunay:
		params.Mark, params.Graph = core.MarkScan, core.GraphDelaunay
		useBox = method == Method2DBoxDelaunay
	default:
		return false, fmt.Errorf("pdbscan: unknown method %q", method)
	}
	if params.Graph == core.GraphApprox && params.Rho == 0 {
		params.Rho = 0.01 // the paper's default
	}
	is2DOnly := method == Method2DGridBCP || method == Method2DGridUSEC ||
		method == Method2DGridDelaunay || useBox
	if is2DOnly && d != 2 {
		return false, fmt.Errorf("pdbscan: method %q requires 2-dimensional points, got d=%d", method, d)
	}
	return useBox, nil
}

// cellsFor returns the cell structure for the requested layout, building it
// on first use with the given executor.
func (c *Clusterer) cellsFor(useBox bool, ex *parallel.Pool) *grid.Cells {
	if useBox {
		c.box.once.Do(func() {
			c.builds.Add(1)
			cells := grid.BuildBox2D(ex, c.pts, c.eps)
			cells.ComputeNeighborsBox2D(ex)
			c.box.cells = cells
		})
		return c.box.cells
	}
	c.grid.once.Do(func() {
		c.builds.Add(1)
		cells := grid.BuildGrid(ex, c.pts, c.eps)
		// Offset enumeration is cheap in low dimensions; the k-d tree wins
		// once (2*ceil(sqrt(d))+1)^d explodes (Section 5.1).
		if c.pts.D <= 3 {
			cells.ComputeNeighborsEnum(ex)
		} else {
			cells.ComputeNeighborsKD(ex)
		}
		c.grid.cells = cells
	})
	return c.grid.cells
}

// partitionFor returns the cached partition of the grid cells for the given
// shard count, building it on first use. Partitions are immutable once
// built; the lock only serializes construction.
func (c *Clusterer) partitionFor(cells *grid.Cells, shards int, ex *parallel.Pool) (*grid.Partition, error) {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	if p, ok := c.parts[shards]; ok {
		return p, nil
	}
	p, err := grid.MakePartition(ex, cells, shards)
	if err != nil {
		return nil, err
	}
	if c.parts == nil {
		c.parts = make(map[int]*grid.Partition)
	}
	c.parts[shards] = p
	return p, nil
}

// Prepare eagerly builds the cell structure cfg's Method needs (the grid
// layout, or the 2D box layout for 2d-box-* methods) with cfg.Workers,
// without clustering. The structure is otherwise built lazily by the first
// Run that needs it — with that Run's worker budget. A sweep whose first Run
// is deliberately narrow (Workers: 1) can call Prepare first so the
// expensive construction still parallelizes. Calling Prepare when the
// structure already exists is a no-op.
func (c *Clusterer) Prepare(cfg Config) error {
	if err := c.checkEps(cfg); err != nil {
		return err
	}
	if err := validateBudgetConfig(&cfg); err != nil {
		return err
	}
	var params core.Params
	useBox, err := resolveMethod(c.pts.D, &cfg, &params)
	if err != nil {
		return err
	}
	if resolveShards(&cfg, c.pts.N) > 1 {
		useBox = false // a sharded Run will use the grid layout
	}
	c.cellsFor(useBox, parallel.NewPool(cfg.Workers))
	return nil
}

func (c *Clusterer) checkEps(cfg Config) error {
	if cfg.Eps != 0 && cfg.Eps != c.eps {
		return fmt.Errorf("pdbscan: Clusterer built for Eps=%v cannot run with Eps=%v (create a new Clusterer)", c.eps, cfg.Eps)
	}
	return nil
}

// Run clusters the points with this Clusterer's precomputed cell structure.
// cfg.Eps must be zero (meaning "the Clusterer's eps") or equal to Eps();
// every other Config field is honored per call, including Workers — distinct
// Run calls, even concurrent ones, never share parallelism state. The result
// is identical to Cluster with the same Config.
//
// The cell structure is built lazily by the first Run that needs it, with
// that Run's Workers budget; call Prepare to build it eagerly with a budget
// of your choice.
func (c *Clusterer) Run(cfg Config) (*Result, error) {
	if err := c.checkEps(cfg); err != nil {
		return nil, err
	}
	if err := validateRunConfig(&cfg); err != nil {
		return nil, err
	}
	ex := parallel.NewPool(cfg.Workers)
	params := core.Params{
		MinPts:    cfg.MinPts,
		Rho:       cfg.Rho,
		Bucketing: cfg.Bucketing,
		Buckets:   cfg.Buckets,
		Exec:      ex,
		Arena:     c.arena,
	}
	useBox, err := resolveMethod(c.pts.D, &cfg, &params)
	if err != nil {
		return nil, err
	}
	var res *core.Result
	if shards := resolveShards(&cfg, c.pts.N); shards > 1 {
		// The sharded path cuts the anchored lattice, so it always runs on
		// the grid layout — 2d-box-* methods keep their connectivity
		// strategy but are served by grid cells (identical clustering; see
		// Config.Shards).
		cells := c.cellsFor(false, ex)
		part, err := c.partitionFor(cells, shards, ex)
		if err != nil {
			return nil, err
		}
		if part.NumShards <= 1 {
			// The occupied lattice offered nothing to cut (a single slab on
			// every axis); the monolithic phases parallelize better than a
			// one-shard run would.
			res, err = core.Run(cells, params)
		} else {
			res, err = core.RunSharded(cells, params, part)
		}
		if err != nil {
			return nil, err
		}
	} else {
		res, err = core.Run(c.cellsFor(useBox, ex), params)
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		Labels:      res.Labels,
		Core:        res.Core,
		Border:      res.Border,
		NumClusters: res.NumClusters,
	}, nil
}
