package pdbscan

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"pdbscan/internal/cellstore"
	"pdbscan/internal/core"
	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
)

// Clusterer holds the eps-dependent spatial structure — the cell partition
// and its neighbor lists (Sections 4.1, 4.2, 5.1) — and answers repeated Run
// calls against it. The structure depends only on the points and Eps, not on
// MinPts, Method's connectivity strategy, Rho, or Bucketing, so a parameter
// sweep over those (the workflow of Section 7 and of examples/paramsearch)
// pays the grid construction once instead of once per run.
//
// A Clusterer is safe for concurrent use: Run calls may overlap freely, each
// honoring its own Config.Workers budget. The cell structure for each layout
// (grid, and box for 2D methods) is built lazily on the first Run that needs
// it; concurrent first Runs block until the one build finishes.
//
// The points slice handed to NewClustererFlat (or the rows copied by
// NewClusterer) must not be mutated while the Clusterer is in use.
type Clusterer struct {
	pts geom.Points
	eps float64

	grid lazyCells // grid layout (Section 4.1), any dimension
	box  lazyCells // box layout (Section 4.2), 2D methods only

	// parts caches the spatial partitions of the grid layout by shard
	// count: like the cells they cut, they depend only on the points and
	// eps, so a sweep of sharded Runs pays MakePartition's sorts once.
	partMu sync.Mutex
	parts  map[int]*grid.Partition

	// samples caches the sampled-core masks by (sampler, fraction, seed):
	// a mask depends only on the points and those three knobs, so a sweep of
	// sampled Runs (or repeated service requests with one sampling config)
	// pays the sampler once. Masks are immutable once built; cancelled
	// builds are never cached.
	sampleMu sync.Mutex
	samples  map[sampleKey][]bool

	// arena pools the pipeline's per-run and per-worker scratch buffers, so
	// repeated Run calls are near-allocation-free in steady state. Checkout
	// is per run (concurrent Runs each pop their own scratch), so sharing
	// the arena across overlapping Runs is safe.
	arena *core.Arena

	// hiers caches one Hierarchy per MinPts (hierarchies depend only on the
	// points, eps, and MinPts). Entries follow the lazyCells discipline —
	// cancelled builds are discarded, never latched.
	hierMu   sync.Mutex
	hiers    map[int]*lazyHierarchy
	hierHook func(phase string) // test seam: forwarded as the build's PhaseHook

	statsMu   sync.Mutex
	lastStats RunStats

	// store, when non-nil, backs this Clusterer with an on-disk cell store
	// (OpenStoreClusterer): Spill runs stream it window by window, the
	// in-RAM paths address the whole payload through storeMap (created
	// lazily, resident on demand via the page cache), and every result is
	// scattered back to the writing Clusterer's point order.
	store    *cellstore.Store
	storeMu  sync.Mutex
	storeMap *cellstore.Mapping

	builds atomic.Int32 // number of completed cell-structure builds (for tests)
}

// lazyCells builds a cell structure at most once — unless a build is
// cancelled, in which case the half-built structure is discarded and the
// next run that needs the layout rebuilds it from scratch (which is why this
// is explicit state rather than a sync.Once: a Once would latch the
// cancelled build forever). While a build is in flight, `building` holds a
// channel closed when it finishes, so waiting runs can select it against
// their own cancellation instead of blocking unboundedly on the mutex.
type lazyCells struct {
	mu       sync.Mutex
	building chan struct{} // non-nil while a build is in flight
	cells    *grid.Cells
}

// NewClusterer prepares a Clusterer for the given coordinate rows (all rows
// must have the same dimensionality) at the given eps. The points are copied.
func NewClusterer(points [][]float64, eps float64) (*Clusterer, error) {
	pts, err := geom.FromRows(points)
	if err != nil {
		return nil, err
	}
	return newClusterer(pts, eps)
}

// NewClustererFlat prepares a Clusterer over n = len(data)/dims points stored
// row-major in a flat slice, without copying. data must not be mutated while
// the Clusterer is in use.
func NewClustererFlat(data []float64, dims int, eps float64) (*Clusterer, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("pdbscan: dims must be positive, got %d", dims)
	}
	if len(data) == 0 || len(data)%dims != 0 {
		return nil, fmt.Errorf("pdbscan: data length %d is not a positive multiple of dims %d", len(data), dims)
	}
	return newClusterer(geom.Points{N: len(data) / dims, D: dims, Data: data}, eps)
}

func newClusterer(pts geom.Points, eps float64) (*Clusterer, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("pdbscan: Eps must be positive, got %v", eps)
	}
	// Non-finite or out-of-lattice-range coordinates would corrupt the grid
	// construction; reject them up front with a clear error.
	if err := checkCoords(pts.Data, pts.D, eps); err != nil {
		return nil, err
	}
	return &Clusterer{pts: pts, eps: eps, arena: core.NewArena()}, nil
}

// Eps returns the radius this Clusterer was built for.
func (c *Clusterer) Eps() float64 { return c.eps }

// NumPoints returns the number of points.
func (c *Clusterer) NumPoints() int { return c.pts.N }

// Dims returns the dimensionality of the points.
func (c *Clusterer) Dims() int { return c.pts.D }

// validateBudgetConfig checks the scheduling fields (Workers, Shards) that
// both Prepare and the Run-shaped entry points must reject — one function so
// the conditions and messages cannot diverge.
func validateBudgetConfig(cfg *Config) error {
	if cfg.Workers < 0 {
		return fmt.Errorf("pdbscan: Workers must be >= 0, got %d (0 means all CPUs)", cfg.Workers)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("pdbscan: Shards must be >= 0, got %d (0 means auto, 1 forces the monolithic path)", cfg.Shards)
	}
	return nil
}

// resolveMethod maps cfg.Method (defaulting by dimension d) to the pipeline
// strategies, reporting whether the 2D box layout is needed.
func resolveMethod(d int, cfg *Config, params *core.Params) (useBox bool, err error) {
	method := cfg.Method
	if method == "" || method == MethodAuto {
		if d == 2 {
			method = Method2DGridBCP
		} else {
			method = MethodExact
		}
	}
	switch method {
	case MethodExact:
		params.Mark, params.Graph = core.MarkScan, core.GraphBCP
	case MethodExactQt:
		params.Mark, params.Graph = core.MarkQuadtree, core.GraphQuadtree
	case MethodApprox:
		params.Mark, params.Graph = core.MarkScan, core.GraphApprox
	case MethodApproxQt:
		params.Mark, params.Graph = core.MarkQuadtree, core.GraphApprox
	case Method2DGridBCP, Method2DBoxBCP:
		params.Mark, params.Graph = core.MarkScan, core.GraphBCP
		useBox = method == Method2DBoxBCP
	case Method2DGridUSEC, Method2DBoxUSEC:
		params.Mark, params.Graph = core.MarkScan, core.GraphUSEC
		useBox = method == Method2DBoxUSEC
	case Method2DGridDelaunay, Method2DBoxDelaunay:
		params.Mark, params.Graph = core.MarkScan, core.GraphDelaunay
		useBox = method == Method2DBoxDelaunay
	default:
		return false, fmt.Errorf("pdbscan: unknown method %q", method)
	}
	if params.Graph == core.GraphApprox && params.Rho == 0 {
		params.Rho = 0.01 // the paper's default
	}
	is2DOnly := method == Method2DGridBCP || method == Method2DGridUSEC ||
		method == Method2DGridDelaunay || useBox
	if is2DOnly && d != 2 {
		return false, fmt.Errorf("pdbscan: method %q requires 2-dimensional points, got d=%d", method, d)
	}
	return useBox, nil
}

// cellsFor returns the cell structure for the requested layout, building it
// on first use with the given executor. If the executor's context is
// cancelled during (or before) the build, the half-built structure is
// discarded, the context's error is returned, and the next run that needs
// the layout rebuilds it. A run that arrives while another run's build is
// in flight waits for that build — but selects the wait against its own
// cancellation, so a cancelled waiter still returns promptly instead of
// blocking for the duration of someone else's build.
func (c *Clusterer) cellsFor(useBox bool, ex *parallel.Pool) (*grid.Cells, error) {
	lc := &c.grid
	if useBox {
		lc = &c.box
	}
	for {
		lc.mu.Lock()
		if lc.cells != nil {
			cells := lc.cells
			lc.mu.Unlock()
			return cells, nil
		}
		if err := ex.Err(); err != nil {
			lc.mu.Unlock()
			return nil, err
		}
		if lc.building == nil {
			// Claim the build. The lock is released while building (the
			// build parallelizes on ex); done is closed when it settles.
			// The settle runs in a defer so that a panic inside the build
			// (surfaced as an error at the API boundary) still releases the
			// build slot — otherwise every later run would deadlock on it.
			done := make(chan struct{})
			lc.building = done
			lc.mu.Unlock()
			var cells *grid.Cells
			publish := false
			defer func() {
				lc.mu.Lock()
				lc.building = nil
				if publish {
					lc.cells = cells
					c.builds.Add(1)
				}
				lc.mu.Unlock()
				close(done)
			}()
			cells = c.buildCells(useBox, ex)
			// A build on a cancelled pool may have skipped parallel blocks,
			// leaving the structure arbitrary; publish only clean builds.
			if err := ex.Err(); err != nil {
				return nil, err
			}
			publish = true
			return cells, nil
		}
		done := lc.building
		lc.mu.Unlock()
		select {
		case <-done:
			// Re-check: the build either published (fast path above) or was
			// cancelled by its owner (this run claims the rebuild).
		case <-ex.Done():
			return nil, ex.Err()
		}
	}
}

// buildCells constructs the requested layout's cell structure on ex.
func (c *Clusterer) buildCells(useBox bool, ex *parallel.Pool) *grid.Cells {
	if useBox {
		cells := grid.BuildBox2D(ex, c.pts, c.eps)
		cells.ComputeNeighborsBox2D(ex)
		return cells
	}
	cells := grid.BuildGrid(ex, c.pts, c.eps)
	// Offset enumeration is cheap in low dimensions; the k-d tree wins once
	// (2*ceil(sqrt(d))+1)^d explodes (Section 5.1).
	if c.pts.D <= 3 {
		cells.ComputeNeighborsEnum(ex)
	} else {
		cells.ComputeNeighborsKD(ex)
	}
	return cells
}

// sampleKey identifies one sampled-core mask in the Clusterer's cache.
type sampleKey struct {
	sampler Sampler
	frac    float64
	seed    int64
}

// sampleFor returns the cached sampled-core mask for cfg's sampling knobs,
// building it on first use with the given executor. Masks are immutable once
// built; the lock only serializes construction. A mask built on a cancelled
// pool may be arbitrary (the samplers bail early) and is never cached.
func (c *Clusterer) sampleFor(cfg *Config, ex *parallel.Pool) ([]bool, error) {
	key := sampleKey{cfg.Sampler, cfg.SampleFrac, cfg.SampleSeed}
	c.sampleMu.Lock()
	defer c.sampleMu.Unlock()
	if m, ok := c.samples[key]; ok {
		return m, nil
	}
	var mask []bool
	switch cfg.Sampler {
	case SamplerUniform:
		mask = core.UniformMask(ex, c.pts.N, cfg.SampleFrac, cfg.SampleSeed)
	case SamplerKCenter:
		mask = core.KCenterMask(ex, c.pts, cfg.SampleFrac, cfg.SampleSeed)
	default:
		return nil, fmt.Errorf("pdbscan: unknown sampler %q", cfg.Sampler)
	}
	if err := ex.Err(); err != nil {
		return nil, err
	}
	if c.samples == nil {
		c.samples = make(map[sampleKey][]bool)
	}
	c.samples[key] = mask
	return mask, nil
}

// partitionFor returns the cached partition of the grid cells for the given
// shard count, building it on first use. Partitions are immutable once
// built; the lock only serializes construction.
func (c *Clusterer) partitionFor(cells *grid.Cells, shards int, ex *parallel.Pool) (*grid.Partition, error) {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	if p, ok := c.parts[shards]; ok {
		return p, nil
	}
	p, err := grid.MakePartition(ex, cells, shards)
	if err != nil {
		return nil, err
	}
	// A partition cut on a cancelled pool may be arbitrary; never cache it.
	if err := ex.Err(); err != nil {
		return nil, err
	}
	if c.parts == nil {
		c.parts = make(map[int]*grid.Partition)
	}
	c.parts[shards] = p
	return p, nil
}

// Prepare eagerly builds the cell structure cfg's Method needs (the grid
// layout, or the 2D box layout for 2d-box-* methods) with cfg.Workers,
// without clustering. The structure is otherwise built lazily by the first
// Run that needs it — with that Run's worker budget. A sweep whose first Run
// is deliberately narrow (Workers: 1) can call Prepare first so the
// expensive construction still parallelizes. Calling Prepare when the
// structure already exists is a no-op.
func (c *Clusterer) Prepare(cfg Config) (err error) {
	// Same panic boundary as the run entry points: a worker panic during the
	// eager build surfaces as an error, not a crash.
	defer recoverRunPanic(context.Background(), &err)
	if err := c.checkEps(cfg); err != nil {
		return err
	}
	if err := validateBudgetConfig(&cfg); err != nil {
		return err
	}
	if c.store != nil && !cfg.Spill {
		if err := c.ensureMapped(); err != nil {
			return err
		}
	}
	if cfg.Spill {
		return nil // Spill runs need no in-RAM cell structure
	}
	var params core.Params
	useBox, err := resolveMethod(c.pts.D, &cfg, &params)
	if err != nil {
		return err
	}
	if resolveShards(&cfg, c.pts.N) > 1 {
		useBox = false // a sharded Run will use the grid layout
	}
	_, err = c.cellsFor(useBox, parallel.NewPool(cfg.Workers))
	return err
}

func (c *Clusterer) checkEps(cfg Config) error {
	if cfg.Eps != 0 && cfg.Eps != c.eps {
		return fmt.Errorf("pdbscan: Clusterer built for Eps=%v cannot run with Eps=%v (create a new Clusterer)", c.eps, cfg.Eps)
	}
	return nil
}

// Run clusters the points with this Clusterer's precomputed cell structure.
// cfg.Eps must be zero (meaning "the Clusterer's eps") or equal to Eps();
// every other Config field is honored per call, including Workers — distinct
// Run calls, even concurrent ones, never share parallelism state. The result
// is identical to Cluster with the same Config.
//
// Run is RunContext with a background (never-cancelled) context.
func (c *Clusterer) Run(cfg Config) (*Result, error) {
	return c.RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: when ctx is cancelled (or its deadline
// passes) while the run is in flight, the run stops cooperatively at the
// next phase or cell boundary — promptly, without waiting for the clustering
// to finish — and returns ctx.Err(). The Clusterer remains fully usable: the
// run's pooled scratch is released in a reusable state, a cell structure
// whose build was interrupted is discarded and rebuilt by the next run, and
// the next uncancelled RunContext returns exactly what it would have had the
// cancelled run never happened. Cancellation never corrupts results — a run
// either completes and returns the same clustering Run would, or returns
// ctx.Err() and no result.
//
// The cell structure is built lazily by the first run that needs it, with
// that run's Workers budget; call Prepare to build it eagerly with a budget
// of your choice.
func (c *Clusterer) RunContext(ctx context.Context, cfg Config) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.checkEps(cfg); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	defer recoverRunPanic(ctx, &err)
	start := time.Now()
	ex := parallel.NewPoolContext(ctx, cfg.Workers)
	var tm core.PhaseTimings
	params := core.Params{
		MinPts:    cfg.MinPts,
		Rho:       cfg.Rho,
		Bucketing: cfg.Bucketing,
		Buckets:   cfg.Buckets,
		Exec:      ex,
		Arena:     c.arena,
		Timings:   &tm,
	}
	useBox, err := resolveMethod(c.pts.D, &cfg, &params)
	if err != nil {
		return nil, err
	}
	if cfg.Spill {
		// Out-of-core: sweep the store's shards one halo window at a time.
		// Validate already rejected Sampler and explicit Shards; the shard
		// schedule is the store's layout.
		if c.store == nil {
			return nil, fmt.Errorf("pdbscan: Spill requires a store-backed Clusterer (OpenStoreClusterer)")
		}
		cres, ooc, err := core.RunOutOfCore(c.store, params, cfg.MaxResidentBytes)
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		phases := tm.Mark + tm.Collect + tm.Graph + tm.Merge + tm.Label + tm.Border
		c.statsMu.Lock()
		c.lastStats = RunStats{
			MarkCore:           tm.Mark,
			ClusterCore:        tm.Collect + tm.Graph + tm.Merge,
			Border:             tm.Label + tm.Border,
			Build:              total - phases,
			Total:              total,
			Shards:             c.store.NumShards(),
			Workers:            ex.Workers(),
			BytesMapped:        ooc.BytesMapped,
			PeakResidentBytes:  ooc.PeakResidentBytes,
			ShardsResidentPeak: ooc.ShardsResidentPeak,
		}
		c.statsMu.Unlock()
		return &Result{
			Labels:      cres.Labels,
			Core:        cres.Core,
			Border:      cres.Border,
			NumClusters: cres.NumClusters,
		}, nil
	}
	if c.store != nil {
		if err := c.ensureMapped(); err != nil {
			return nil, err
		}
	}
	if cfg.Sampler != SamplerNone {
		mask, err := c.sampleFor(&cfg, ex)
		if err != nil {
			return nil, err
		}
		params.Sample = mask
	}
	var cres *core.Result
	shards := resolveShards(&cfg, c.pts.N)
	if shards > 1 {
		// The sharded path cuts the anchored lattice, so it always runs on
		// the grid layout — 2d-box-* methods keep their connectivity
		// strategy but are served by grid cells (identical clustering; see
		// Config.Shards).
		cells, err := c.cellsFor(false, ex)
		if err != nil {
			return nil, err
		}
		part, err := c.partitionFor(cells, shards, ex)
		if err != nil {
			return nil, err
		}
		if part.NumShards <= 1 {
			// The occupied lattice offered nothing to cut (a single slab on
			// every axis); the monolithic phases parallelize better than a
			// one-shard run would.
			shards = 1
			cres, err = core.Run(cells, params)
		} else {
			shards = part.NumShards
			cres, err = core.RunSharded(cells, params, part)
		}
		if err != nil {
			return nil, err
		}
	} else {
		cells, err := c.cellsFor(useBox, ex)
		if err != nil {
			return nil, err
		}
		cres, err = core.Run(cells, params)
		if err != nil {
			return nil, err
		}
	}
	if c.store != nil {
		// Store-backed payloads are laid out in store order; hand results
		// back in the writing Clusterer's point order.
		c.scatterStore(ex, cres)
	}
	total := time.Since(start)
	c.statsMu.Lock()
	c.lastStats = RunStats{
		MarkCore:    tm.Mark,
		ClusterCore: tm.Collect + tm.Graph + tm.Merge,
		Border:      tm.Label + tm.Border,
		Build:       total - (tm.Mark + tm.Collect + tm.Graph + tm.Merge + tm.Label + tm.Border),
		Total:       total,
		Shards:      shards,
		Workers:     ex.Workers(),
	}
	c.statsMu.Unlock()
	return &Result{
		Labels:      cres.Labels,
		Core:        cres.Core,
		Border:      cres.Border,
		NumClusters: cres.NumClusters,
	}, nil
}

// LastRunStats returns the RunStats of the most recent completed (successful)
// run on this Clusterer. Concurrent runs record their stats in completion
// order; cancelled or failed runs record nothing.
func (c *Clusterer) LastRunStats() RunStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.lastStats
}

// recoverRunPanic is the API-boundary panic handler of every run-shaped entry
// point: a worker panic recovered by internal/parallel (or any panic on the
// run's own goroutine) surfaces as an error instead of crashing the process.
// On a cancelled context the panic is attributed to the cancellation — a
// construct on a cancelled pool is allowed to skip blocks, and downstream
// code that consumed such output before noticing the cancellation may fail
// arbitrarily — and ctx.Err() is returned, which is the contract callers
// already handle.
func recoverRunPanic(ctx context.Context, err *error) {
	if r := recover(); r != nil {
		*err = runPanicError(ctx, r)
	}
}

// runPanicError classifies a recovered run panic into the error the API
// returns (shared by the batch and streaming boundary handlers, so the
// attribution rules cannot diverge).
func runPanicError(ctx context.Context, r any) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if pe, ok := r.(*parallel.PanicError); ok {
		return fmt.Errorf("pdbscan: %w", pe)
	}
	return fmt.Errorf("pdbscan: internal panic: %v\n%s", r, debug.Stack())
}
