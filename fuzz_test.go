package pdbscan

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"pdbscan/internal/core"
	"pdbscan/internal/dataset"
	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/metrics"
)

// FuzzClusterInvariants feeds arbitrary bytes as 2D points and checks that
// Cluster either rejects the input or returns a result satisfying the
// DBSCAN definition (compared against the brute-force oracle).
func FuzzClusterInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(10), uint8(2))
	f.Add(bytes.Repeat([]byte{0}, 64), uint8(1), uint8(1))
	f.Add([]byte{255, 255, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1}, uint8(50), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, epsQ, minPtsQ uint8) {
		if len(raw) < 16 {
			return
		}
		if len(raw) > 64*16 {
			raw = raw[:64*16]
		}
		// Decode pairs of uint64 -> small finite floats.
		n := len(raw) / 16
		rows := make([][]float64, 0, n)
		for i := 0; i < n; i++ {
			x := binary.LittleEndian.Uint64(raw[i*16:])
			y := binary.LittleEndian.Uint64(raw[i*16+8:])
			rows = append(rows, []float64{
				float64(x%10000) / 100,
				float64(y%10000) / 100,
			})
		}
		eps := 0.1 + float64(epsQ)/8
		minPts := 1 + int(minPtsQ)%6
		res, err := Cluster(rows, Config{Eps: eps, MinPts: minPts})
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		pts, _ := geom.FromRows(rows)
		ref := metrics.BruteDBSCAN(pts, eps, minPts)
		if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
			t.Fatalf("eps=%v minPts=%d n=%d: %v", eps, minPts, len(rows), err)
		}
	})
}

// FuzzStreamingOps feeds arbitrary bytes as an insert/remove/window op
// sequence to a StreamingClusterer and checks after every tick that the
// incremental result matches the brute-force oracle on the current point set
// (exact methods rotate per tick; the op interleavings are the fuzz surface —
// slot reuse, cell death/rebirth, empty windows).
func FuzzStreamingOps(f *testing.F) {
	f.Add([]byte{0, 17, 33, 0, 40, 41, 2, 0, 0, 50, 60, 3, 1}, uint8(8), uint8(2))
	f.Add(bytes.Repeat([]byte{0, 1, 2}, 12), uint8(3), uint8(1))
	f.Add([]byte{0, 10, 10, 0, 10, 11, 0, 11, 10, 2, 1, 3, 0, 0, 5, 5}, uint8(16), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, epsQ, minPtsQ uint8) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		eps := 0.5 + float64(epsQ%32)/8
		minPts := 1 + int(minPtsQ)%5
		s, err := NewStreamingClusterer(2, eps)
		if err != nil {
			t.Fatal(err)
		}
		methods := []Method{MethodExact, MethodExactQt, Method2DGridUSEC, Method2DBoxBCP, Method2DGridDelaunay}
		var ids []int64
		tick := 0
		pos := 0
		next := func() (byte, bool) {
			if pos >= len(raw) {
				return 0, false
			}
			b := raw[pos]
			pos++
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0, 1: // insert one point
				xb, ok1 := next()
				yb, ok2 := next()
				if !ok1 || !ok2 {
					return
				}
				got, err := s.Insert([][]float64{{float64(xb) / 16, float64(yb) / 16}})
				if err != nil {
					t.Fatalf("insert: %v", err)
				}
				ids = append(ids, got[0])
			case 2: // remove the k-th live point
				kb, ok := next()
				if !ok {
					return
				}
				if len(ids) == 0 {
					continue
				}
				k := int(kb) % len(ids)
				if err := s.Remove(ids[k]); err != nil {
					t.Fatalf("remove: %v", err)
				}
				ids = append(ids[:k], ids[k+1:]...)
			case 3: // slide the window
				nb, ok := next()
				if !ok {
					return
				}
				keep := int(nb) % (len(ids) + 1)
				evicted := s.Window(keep)
				if len(ids)-len(evicted) != keep && len(ids) > keep {
					t.Fatalf("window(%d): evicted %d of %d", keep, len(evicted), len(ids))
				}
				if len(ids) > keep {
					ids = ids[len(ids)-keep:]
				}
			}
			m := methods[tick%len(methods)]
			tick++
			res, err := s.Run(Config{MinPts: minPts, Method: m})
			if err != nil {
				t.Fatalf("run %s: %v", m, err)
			}
			if len(ids) == 0 {
				if res.NumClusters != 0 {
					t.Fatalf("empty stream: %d clusters", res.NumClusters)
				}
				continue
			}
			rows := make([][]float64, 0, len(ids))
			for _, id := range s.IDs() {
				row, ok := s.Point(id)
				if !ok {
					t.Fatalf("live id %d missing", id)
				}
				rows = append(rows, row)
			}
			pts, _ := geom.FromRows(rows)
			ref := metrics.BruteDBSCAN(pts, eps, minPts)
			if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
				t.Fatalf("tick %d %s eps=%v minPts=%d n=%d: %v", tick, m, eps, minPts, len(rows), err)
			}
		}
	})
}

// FuzzShardedCluster feeds arbitrary bytes as 2D points plus a shard count
// and differentially checks the sharded path against the monolithic one on
// the identical input: label-permutation-equal results for a rotating method
// (exact and approx), and oracle conformance for the exact ones. The fuzz
// surface is the partition geometry — cut placement, halo width, boundary
// dedup — under adversarial point layouts; the seeded corpus includes a
// boundary-straddling chain at exact-eps spacing, the layout most likely to
// shatter at a cut.
func FuzzShardedCluster(f *testing.F) {
	// A cluster chain along x at exact-eps spacing (eps = 0.1+16/8 = 2.1 at
	// epsQ=16 ... the chain spacing 1.0 keeps pairs connected for most eps),
	// plus scattered noise. Every cut through the chain splits a cluster.
	chain := make([]byte, 0, 24*16)
	for i := 0; i < 24; i++ {
		var p [16]byte
		binary.LittleEndian.PutUint64(p[:8], uint64(i*100))  // x = i * 1.0
		binary.LittleEndian.PutUint64(p[8:], uint64(i%2*25)) // y jitter 0.25
		chain = append(chain, p[:]...)
	}
	f.Add(chain, uint8(8), uint8(2), uint8(5))
	f.Add(bytes.Repeat([]byte{7, 3}, 40), uint8(3), uint8(1), uint8(2))
	f.Add([]byte{255, 255, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1, 9, 9, 9, 9}, uint8(50), uint8(3), uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, epsQ, minPtsQ, shardsQ uint8) {
		if len(raw) < 16 {
			return
		}
		if len(raw) > 64*16 {
			raw = raw[:64*16]
		}
		n := len(raw) / 16
		rows := make([][]float64, 0, n)
		for i := 0; i < n; i++ {
			x := binary.LittleEndian.Uint64(raw[i*16:])
			y := binary.LittleEndian.Uint64(raw[i*16+8:])
			rows = append(rows, []float64{
				float64(x%10000) / 100,
				float64(y%10000) / 100,
			})
		}
		eps := 0.1 + float64(epsQ)/8
		minPts := 1 + int(minPtsQ)%6
		shards := 2 + int(shardsQ)%15
		methods := []Method{MethodExact, MethodExactQt, Method2DGridUSEC, Method2DGridDelaunay, MethodApprox}
		m := methods[(int(epsQ)+int(shardsQ))%len(methods)]
		cfg := Config{Eps: eps, MinPts: minPts, Method: m}
		mono, err := Cluster(rows, cfg)
		if err != nil {
			t.Fatalf("monolithic rejected valid input: %v", err)
		}
		shCfg := cfg
		shCfg.Shards = shards
		sh, err := Cluster(rows, shCfg)
		if err != nil {
			t.Fatalf("sharded rejected valid input: %v", err)
		}
		if err := equivalentResults(sh, mono); err != nil {
			t.Fatalf("%s eps=%v minPts=%d shards=%d n=%d: sharded vs monolithic: %v",
				m, eps, minPts, shards, n, err)
		}
		if m != MethodApprox {
			pts, _ := geom.FromRows(rows)
			ref := metrics.BruteDBSCAN(pts, eps, minPts)
			if err := metrics.SameDBSCANResult(ref, sh.Core, sh.Labels, sh.Border, sh.NumClusters); err != nil {
				t.Fatalf("%s eps=%v minPts=%d shards=%d n=%d: oracle: %v", m, eps, minPts, shards, n, err)
			}
		}
	})
}

// FuzzHierarchyCut feeds arbitrary bytes as 2D points plus a query-radius
// sequence and differentially checks the dendrogram path against the batch
// path: one BuildHierarchy, then every radius in the sequence answered by
// CutEps on the shared Hierarchy — whose union-find replay advances or
// resets depending on the previous query — must be label-permutation-equal
// to a from-scratch Cluster at the same radius. The fuzz surface is the
// replay state machine under adversarial query orders and the exact-
// threshold edge cases; the seeded corpus includes the shard suite's
// exact-eps chain, where every query at the chain spacing is a boundary
// decision.
func FuzzHierarchyCut(f *testing.F) {
	// Chain along x at exact spacing 1.0 with alternating y jitter (the
	// FuzzShardedCluster layout): queried at the spacing itself, every link
	// is a d == eps inclusive-boundary case.
	chain := make([]byte, 0, 24*16)
	for i := 0; i < 24; i++ {
		var p [16]byte
		binary.LittleEndian.PutUint64(p[:8], uint64(i*100))  // x = i * 1.0
		binary.LittleEndian.PutUint64(p[8:], uint64(i%2*25)) // y jitter 0.25
		chain = append(chain, p[:]...)
	}
	// Query fractions: 8/64 of buildEps 8 = 1.0 — exactly the chain spacing
	// — surrounded by smaller and larger radii in a zigzag order.
	f.Add(chain, []byte{8, 4, 8, 63, 8, 1}, uint8(2))
	f.Add(bytes.Repeat([]byte{0}, 64), []byte{32, 16, 48}, uint8(1))
	f.Add([]byte{255, 255, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1, 9, 9, 9, 9}, []byte{5, 60, 30}, uint8(3))
	f.Fuzz(func(t *testing.T, raw, epsSeq []byte, minPtsQ uint8) {
		if len(raw) < 16 || len(epsSeq) == 0 {
			return
		}
		if len(raw) > 48*16 {
			raw = raw[:48*16]
		}
		if len(epsSeq) > 12 {
			epsSeq = epsSeq[:12]
		}
		n := len(raw) / 16
		rows := make([][]float64, 0, n)
		for i := 0; i < n; i++ {
			x := binary.LittleEndian.Uint64(raw[i*16:])
			y := binary.LittleEndian.Uint64(raw[i*16+8:])
			rows = append(rows, []float64{
				float64(x%10000) / 100,
				float64(y%10000) / 100,
			})
		}
		const buildEps = 8.0
		minPts := 1 + int(minPtsQ)%6
		c, err := NewClusterer(rows, buildEps)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		h, err := c.BuildHierarchy(minPts)
		if err != nil {
			t.Fatalf("BuildHierarchy: %v", err)
		}
		for qi, b := range epsSeq {
			q := buildEps * float64(1+int(b)%64) / 64
			cut, err := h.CutEps(q)
			if err != nil {
				t.Fatalf("CutEps(%v): %v", q, err)
			}
			batch, err := Cluster(rows, Config{Eps: q, MinPts: minPts})
			if err != nil {
				t.Fatalf("batch eps=%v: %v", q, err)
			}
			if err := equivalentResults(cut, batch); err != nil {
				t.Fatalf("query %d eps=%v minPts=%d n=%d: hierarchy vs batch: %v",
					qi, q, minPts, n, err)
			}
		}
	})
}

// FuzzLayoutEquivalence differentially checks the cell-major contiguous
// layout against the indirect one: the same cells, params, and method run
// once with the payload active and once with ForceIndirectLayout, and every
// output — core flags, labels, multi-cluster border sets, cluster count —
// must be bit-identical, not merely permutation-equal. The fuzz surface is
// the payload-row index space under adversarial point layouts (duplicate
// points collapsing into one cell, exact-eps chains, one point per cell) ×
// method × dimension; the layouts differ only in where the kernels read
// coordinates from, so any divergence is an index-space translation bug.
func FuzzLayoutEquivalence(f *testing.F) {
	// Exact-eps chain (the FuzzShardedCluster layout): cell-boundary
	// decisions on every link.
	chain := make([]byte, 0, 24*16)
	for i := 0; i < 24; i++ {
		var p [16]byte
		binary.LittleEndian.PutUint64(p[:8], uint64(i*100))
		binary.LittleEndian.PutUint64(p[8:], uint64(i%2*25))
		chain = append(chain, p[:]...)
	}
	f.Add(chain, uint8(8), uint8(2), uint8(0), uint8(2))
	// All points identical: one cell owns the whole payload.
	f.Add(bytes.Repeat([]byte{42, 0, 42, 0, 42, 0, 42, 0, 42, 0, 42, 0, 42, 0, 42, 0}, 20), uint8(4), uint8(3), uint8(1), uint8(3))
	// Scattered: roughly one point per cell at small eps.
	f.Add([]byte{255, 255, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1, 9, 9, 9, 9, 77, 3, 200, 150, 6, 90, 13, 8}, uint8(1), uint8(1), uint8(4), uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, epsQ, minPtsQ, methodQ, dimQ uint8) {
		if len(raw) < 16 {
			return
		}
		if len(raw) > 64*16 {
			raw = raw[:64*16]
		}
		dims := []int{2, 3, 5}
		d := dims[int(dimQ)%len(dims)]
		n := len(raw) / (8 * d)
		if n < 2 {
			return
		}
		data := make([]float64, 0, n*d)
		for i := 0; i < n*d; i++ {
			v := binary.LittleEndian.Uint64(raw[i*8:])
			data = append(data, float64(v%10000)/100)
		}
		pts := geom.Points{N: n, D: d, Data: data}
		eps := 0.1 + float64(epsQ)/8

		type method struct {
			name  string
			box   bool // 2D box construction instead of the grid
			mark  core.MarkStrategy
			graph core.GraphStrategy
			rho   float64
		}
		methods := []method{
			{name: "grid-bcp", mark: core.MarkScan, graph: core.GraphBCP},
			{name: "grid-qt", mark: core.MarkQuadtree, graph: core.GraphQuadtree},
			{name: "grid-approx", mark: core.MarkScan, graph: core.GraphApprox, rho: 0.01},
		}
		if d == 2 {
			methods = append(methods,
				method{name: "grid-usec", mark: core.MarkScan, graph: core.GraphUSEC},
				method{name: "grid-delaunay", mark: core.MarkScan, graph: core.GraphDelaunay},
				method{name: "box-bcp", box: true, mark: core.MarkScan, graph: core.GraphBCP},
			)
		}
		m := methods[int(methodQ)%len(methods)]

		var cells *grid.Cells
		if m.box {
			cells = grid.BuildBox2D(nil, pts, eps)
			cells.ComputeNeighborsBox2D(nil)
		} else {
			cells = grid.BuildGrid(nil, pts, eps)
			if d <= 3 {
				cells.ComputeNeighborsEnum(nil)
			} else {
				cells.ComputeNeighborsKD(nil)
			}
		}
		if cells.Payload == nil {
			t.Fatal("cells built without a cell-major payload")
		}
		params := core.Params{
			MinPts: 1 + int(minPtsQ)%6, Rho: m.rho, Mark: m.mark, Graph: m.graph,
		}
		contig, err := core.Run(cells, params)
		if err != nil {
			t.Fatalf("%s d=%d contiguous: %v", m.name, d, err)
		}
		params.ForceIndirectLayout = true
		indirect, err := core.Run(cells, params)
		if err != nil {
			t.Fatalf("%s d=%d indirect: %v", m.name, d, err)
		}

		if contig.NumClusters != indirect.NumClusters {
			t.Fatalf("%s d=%d n=%d eps=%v: NumClusters %d (contiguous) vs %d (indirect)",
				m.name, d, n, eps, contig.NumClusters, indirect.NumClusters)
		}
		for i := 0; i < n; i++ {
			if contig.Core[i] != indirect.Core[i] {
				t.Fatalf("%s d=%d n=%d eps=%v: Core[%d] %v vs %v",
					m.name, d, n, eps, i, contig.Core[i], indirect.Core[i])
			}
			if contig.Labels[i] != indirect.Labels[i] {
				t.Fatalf("%s d=%d n=%d eps=%v: Labels[%d] %d vs %d",
					m.name, d, n, eps, i, contig.Labels[i], indirect.Labels[i])
			}
		}
		if len(contig.Border) != len(indirect.Border) {
			t.Fatalf("%s d=%d n=%d eps=%v: Border size %d vs %d",
				m.name, d, n, eps, len(contig.Border), len(indirect.Border))
		}
		for p, want := range indirect.Border {
			got, ok := contig.Border[p]
			if !ok || len(got) != len(want) {
				t.Fatalf("%s d=%d n=%d eps=%v: Border[%d] %v vs %v", m.name, d, n, eps, p, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s d=%d n=%d eps=%v: Border[%d] %v vs %v", m.name, d, n, eps, p, got, want)
				}
			}
		}
	})
}

// FuzzCSVReader checks that the CSV reader never panics and that whatever it
// accepts round-trips through the writer.
func FuzzCSVReader(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# comment\n1.5e3, -2\n")
	f.Add("nan,inf\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		pts, err := dataset.ReadCSV(bytes.NewBufferString(s))
		if err != nil {
			return
		}
		// Round-trip only for finite data (the writer emits shortest-form
		// floats, which re-read exactly).
		for _, v := range pts.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		var buf bytes.Buffer
		if err := dataset.WriteCSV(&buf, pts); err != nil {
			t.Fatalf("write of accepted data failed: %v", err)
		}
		back, err := dataset.ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if back.N != pts.N || back.D != pts.D {
			t.Fatalf("round-trip shape changed: %dx%d -> %dx%d", pts.N, pts.D, back.N, back.D)
		}
		for i := range pts.Data {
			if back.Data[i] != pts.Data[i] {
				t.Fatalf("round-trip value changed at %d", i)
			}
		}
	})
}
