package pdbscan

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// equalUpToPermutation checks that two clustering results describe the same
// clustering under a bijective relabeling: identical core flags, a consistent
// label bijection over core points, and matching border membership sets.
// (Primary labels of multi-membership border points are min-of-set in each
// labeling and therefore need not correspond under the bijection.)
func equalUpToPermutation(a, b *Result) error {
	n := len(a.Labels)
	if n != len(b.Labels) {
		return fmt.Errorf("length %d vs %d", n, len(b.Labels))
	}
	if a.NumClusters != b.NumClusters {
		return fmt.Errorf("numClusters %d vs %d", a.NumClusters, b.NumClusters)
	}
	fw := make(map[int32]int32)
	bw := make(map[int32]int32)
	for i := 0; i < n; i++ {
		if a.Core[i] != b.Core[i] {
			return fmt.Errorf("point %d: core %v vs %v", i, a.Core[i], b.Core[i])
		}
		if !a.Core[i] {
			continue
		}
		la, lb := a.Labels[i], b.Labels[i]
		if m, ok := fw[la]; ok && m != lb {
			return fmt.Errorf("point %d: label %d maps to both %d and %d", i, la, m, lb)
		}
		if m, ok := bw[lb]; ok && m != la {
			return fmt.Errorf("point %d: label %d mapped from both %d and %d", i, lb, m, la)
		}
		fw[la], bw[lb] = lb, la
	}
	members := func(r *Result, i int) []int32 {
		if m, ok := r.Border[int32(i)]; ok {
			return m
		}
		if r.Labels[i] >= 0 {
			return []int32{r.Labels[i]}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if a.Core[i] {
			continue
		}
		ma, mb := members(a, i), members(b, i)
		if len(ma) != len(mb) {
			return fmt.Errorf("point %d: %d memberships vs %d", i, len(ma), len(mb))
		}
		set := make(map[int32]bool, len(mb))
		for _, l := range mb {
			set[l] = true
		}
		for _, l := range ma {
			m, ok := fw[l]
			if !ok {
				return fmt.Errorf("point %d: label %d has no core point", i, l)
			}
			if !set[m] {
				return fmt.Errorf("point %d: membership %d (mapped %d) missing", i, l, m)
			}
		}
	}
	return nil
}

// checkStreamMatchesScratch compares a streaming run against from-scratch
// Cluster on the same (insertion-ordered) point set.
func checkStreamMatchesScratch(t *testing.T, s *StreamingClusterer, cfg Config, ctx string) {
	t.Helper()
	got, err := s.Run(cfg)
	if err != nil {
		t.Fatalf("%s: streaming run: %v", ctx, err)
	}
	rows := make([][]float64, 0, s.Len())
	for _, id := range s.IDs() {
		row, ok := s.Point(id)
		if !ok {
			t.Fatalf("%s: live id %d has no point", ctx, id)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		if got.NumClusters != 0 || len(got.Labels) != 0 {
			t.Fatalf("%s: empty stream returned %d clusters, %d labels", ctx, got.NumClusters, len(got.Labels))
		}
		return
	}
	cfg.Eps = s.Eps()
	want, err := Cluster(rows, cfg)
	if err != nil {
		t.Fatalf("%s: from-scratch run: %v", ctx, err)
	}
	if err := equalUpToPermutation(&got.Result, want); err != nil {
		t.Fatalf("%s: streaming differs from from-scratch: %v", ctx, err)
	}
}

// streamMethodsFor lists every method applicable in d dimensions.
func streamMethodsFor(d int) []Method {
	if d == 2 {
		return Methods()
	}
	return []Method{MethodExact, MethodExactQt, MethodApprox, MethodApproxQt}
}

// TestStreamingMatchesClusterScripted drives random insert/remove/window
// scripts and verifies after every tick that the incremental result is
// label-permutation-equal to a from-scratch Cluster on the current point set,
// for every method (including the approximate ones — the absolute lattice
// anchoring makes even their optional merges reproducible).
func TestStreamingMatchesClusterScripted(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		d := d
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(100 + d)))
			s, err := NewStreamingClusterer(d, 2.0)
			if err != nil {
				t.Fatal(err)
			}
			methods := streamMethodsFor(d)
			randRow := func() []float64 {
				row := make([]float64, d)
				base := float64(rng.Intn(4)) * 5
				for j := range row {
					row[j] = base + rng.NormFloat64()*1.5
				}
				return row
			}
			batch := func(k int) [][]float64 {
				rows := make([][]float64, k)
				for i := range rows {
					rows[i] = randRow()
				}
				return rows
			}
			if _, err := s.Insert(batch(80)); err != nil {
				t.Fatal(err)
			}
			for tick := 0; tick < 12; tick++ {
				switch tick % 4 {
				case 0, 1:
					if _, err := s.Insert(batch(10 + rng.Intn(20))); err != nil {
						t.Fatal(err)
					}
					if tick > 0 {
						ids := s.IDs()
						var kill []int64
						for _, id := range ids {
							if rng.Intn(8) == 0 {
								kill = append(kill, id)
							}
						}
						if err := s.Remove(kill...); err != nil {
							t.Fatal(err)
						}
					}
				case 2:
					s.Window(s.Len() * 3 / 4)
					if _, err := s.Insert(batch(15)); err != nil {
						t.Fatal(err)
					}
				case 3:
					// Mutation-free tick: everything reused.
				}
				m := methods[tick%len(methods)]
				cfg := Config{MinPts: 3 + tick%5, Method: m}
				if m == MethodApprox || m == MethodApproxQt {
					cfg.Rho = []float64{0.01, 0.1, 0.5}[tick%3]
				}
				checkStreamMatchesScratch(t, s, cfg, fmt.Sprintf("d=%d tick=%d method=%s", d, tick, m))
			}
		})
	}
}

// TestStreamingDrainAndRefill empties the stream completely and refills it,
// crossing the empty state both ways.
func TestStreamingDrainAndRefill(t *testing.T) {
	s, err := NewStreamingClusterer(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 4}
	checkStreamMatchesScratch(t, s, cfg, "empty start")
	ids, err := s.Insert([][]float64{{0, 0}, {0.5, 0}, {0, 0.5}, {10, 10}, {10.5, 10}, {10, 10.5}})
	if err != nil {
		t.Fatal(err)
	}
	checkStreamMatchesScratch(t, s, cfg, "filled")
	if err := s.Remove(ids...); err != nil {
		t.Fatal(err)
	}
	checkStreamMatchesScratch(t, s, cfg, "drained")
	if _, err := s.Insert([][]float64{{1, 1}, {1.2, 1}, {1, 1.2}}); err != nil {
		t.Fatal(err)
	}
	checkStreamMatchesScratch(t, s, cfg, "refilled")
	// Drain via Window(0) and refill with a single far-away point: the old
	// cells' slots stay unclaimed, so any cached core list that survived the
	// empty tick would surface as a phantom cluster here (regression:
	// FuzzStreamingOps found the empty-tick snapshot being dropped before
	// the caches processed it).
	s.Window(0)
	checkStreamMatchesScratch(t, s, cfg, "window(0)")
	if _, err := s.Insert([][]float64{{-50, -50}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(Config{MinPts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 || len(res.Labels) != 1 || res.Labels[0] != 0 {
		t.Fatalf("single point after drain: %d clusters, labels %v", res.NumClusters, res.Labels)
	}
}

// TestStreamingConfigSweepsBetweenTicks varies MinPts, Method, and Rho
// between ticks with and without interleaved mutations; stale caches keyed to
// the old parameters must be invalidated, never silently reused.
func TestStreamingConfigSweepsBetweenTicks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := NewStreamingClusterer(2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, 150)
	for i := range rows {
		rows[i] = []float64{
			float64(rng.Intn(3))*6 + rng.NormFloat64(),
			float64(rng.Intn(3))*6 + rng.NormFloat64(),
		}
	}
	if _, err := s.Insert(rows); err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{MinPts: 3, Method: MethodExact},
		{MinPts: 8, Method: MethodExact},
		{MinPts: 8, Method: MethodApprox, Rho: 0.05},
		{MinPts: 8, Method: MethodApprox, Rho: 0.4},
		{MinPts: 4, Method: MethodExactQt},
		{MinPts: 4, Method: Method2DBoxUSEC},
		{MinPts: 4, Method: MethodApproxQt, Rho: 0.05},
		{MinPts: 4, Method: Method2DGridDelaunay},
	}
	for i, cfg := range cfgs {
		checkStreamMatchesScratch(t, s, cfg, fmt.Sprintf("sweep cfg %d (no mutation)", i))
		if i%2 == 1 {
			s.Window(s.Len() - 5)
			if _, err := s.Insert([][]float64{{rng.Float64() * 18, rng.Float64() * 18}}); err != nil {
				t.Fatal(err)
			}
			checkStreamMatchesScratch(t, s, cfg, fmt.Sprintf("sweep cfg %d (mutated)", i))
		}
	}
}

// TestStreamingConcurrentRuns exercises concurrent Run calls (with different
// budgets and methods) interleaved with concurrent mutations; the structure
// serializes internally, so this must be race-free and every run must return
// a valid result for some recent point set.
func TestStreamingConcurrentRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s, err := NewStreamingClusterer(2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
	}
	if _, err := s.Insert(rows); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := s.Run(Config{MinPts: 5, Workers: 1 + w, Method: MethodExact})
				if err != nil {
					t.Errorf("worker %d run %d: %v", w, i, err)
					return
				}
				if len(res.Labels) != len(res.IDs) {
					t.Errorf("worker %d: %d labels for %d ids", w, len(res.Labels), len(res.IDs))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		mrng := rand.New(rand.NewSource(43))
		for i := 0; i < 20; i++ {
			if _, err := s.Insert([][]float64{{mrng.NormFloat64() * 5, mrng.NormFloat64() * 5}}); err != nil {
				t.Errorf("mutator insert: %v", err)
				return
			}
			s.Window(300)
		}
	}()
	wg.Wait()
	// After the dust settles, the final state must still match from-scratch.
	checkStreamMatchesScratch(t, s, Config{MinPts: 5, Method: MethodExact}, "post-concurrency")
}

// TestStreamingErrorDoesNotCorruptState pins the error-path contract: a Run
// rejected for an invalid config mid-stream (here a negative Rho) must not
// consume mutations — the next valid Run still has to match from-scratch.
func TestStreamingErrorDoesNotCorruptState(t *testing.T) {
	s, err := NewStreamingClusterer(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.Insert([][]float64{{0, 0}, {0.5, 0}, {10, 10}, {10.5, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Config{MinPts: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(ids[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Config{MinPts: 2, Method: MethodApprox, Rho: -1}); err == nil {
		t.Fatal("negative Rho accepted")
	}
	checkStreamMatchesScratch(t, s, Config{MinPts: 2}, "after rejected config")
}

func TestStreamingValidation(t *testing.T) {
	if _, err := NewStreamingClusterer(0, 1); err == nil {
		t.Fatal("dims=0 accepted")
	}
	if _, err := NewStreamingClusterer(2, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	s, err := NewStreamingClusterer(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("wrong-dim row accepted")
	}
	if _, err := s.Insert([][]float64{{1, math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := s.InsertFlat([]float64{1, 2, 3}); err == nil {
		t.Fatal("ragged flat input accepted")
	}
	if err := s.Remove(99); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := s.Run(Config{Eps: 2, MinPts: 1}); err == nil {
		t.Fatal("mismatched eps accepted")
	}
	if _, err := s.Run(Config{MinPts: 0}); err == nil {
		t.Fatal("MinPts=0 accepted")
	}
	if _, err := s.Run(Config{MinPts: 1, Method: "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	// 2D-only method on 3D stream.
	s3, _ := NewStreamingClusterer(3, 1)
	if _, err := s3.Run(Config{MinPts: 1, Method: Method2DGridBCP}); err == nil {
		t.Fatal("2D method on 3D stream accepted")
	}
}

func TestStreamResultLabelOf(t *testing.T) {
	s, err := NewStreamingClusterer(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.Insert([][]float64{{0, 0}, {0.5, 0}, {0, 0.5}, {50, 50}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(Config{MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, id := range ids {
		got, ok := res.LabelOf(id)
		if !ok || got != res.Labels[k] {
			t.Fatalf("LabelOf(%d) = %d,%v want %d", id, got, ok, res.Labels[k])
		}
	}
	if _, ok := res.LabelOf(999); ok {
		t.Fatal("LabelOf(999) found a label")
	}
}
