package pdbscan

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func sameResultT(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if got.NumClusters != want.NumClusters {
		t.Fatalf("%s: NumClusters = %d, want %d", label, got.NumClusters, want.NumClusters)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatalf("%s: labels differ", label)
	}
	if !reflect.DeepEqual(got.Core, want.Core) {
		t.Fatalf("%s: core flags differ", label)
	}
	if len(got.Border) != len(want.Border) || (len(want.Border) > 0 && !reflect.DeepEqual(got.Border, want.Border)) {
		t.Fatalf("%s: border maps differ", label)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	rows := blobs(2000, 2, 21)
	c, err := NewClusterer(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{MinPts: 8}
	if _, err := c.RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext: err = %v", err)
	}
	// Nothing was built for the cancelled run; the next run is clean.
	if got := c.builds.Load(); got != 0 {
		t.Fatalf("builds = %d after pre-cancelled run, want 0", got)
	}
	want, err := Cluster(rows, Config{Eps: 2, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResultT(t, got, want, "run after pre-cancelled run")
}

// TestRunContextCancelDuringBuild cancels while the first run is still
// constructing the cell structure: the half-built structure must be
// discarded (not latched), and the next run must rebuild and succeed.
func TestRunContextCancelDuringBuild(t *testing.T) {
	rows := blobs(120000, 2, 22)
	c, err := NewClusterer(rows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond) // almost surely mid-build at this size
		cancel()
	}()
	cfg := Config{MinPts: 10}
	_, rerr := c.RunContext(ctx, cfg)
	cancel()
	if rerr == nil {
		t.Skip("run finished before the cancel landed; nothing to assert")
	}
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", rerr)
	}
	want, err := Cluster(rows, Config{Eps: 1.0, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(cfg)
	if err != nil {
		t.Fatalf("run after cancelled build: %v", err)
	}
	sameResultT(t, got, want, "run after cancelled build")
}

// TestRunContextCancelWhileOtherRunBuilds: a run that arrives while another
// run's cell-structure build is in flight waits for it — but its own
// cancellation must still unwind it promptly, not after the foreign build
// completes.
func TestRunContextCancelWhileOtherRunBuilds(t *testing.T) {
	rows := blobs(120000, 2, 29)
	c, err := NewClusterer(rows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 10}
	aStarted := make(chan struct{})
	aDone := make(chan error, 1)
	go func() {
		close(aStarted)
		_, err := c.Run(cfg) // owns the build
		aDone <- err
	}()
	<-aStarted
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(2*time.Millisecond, cancel)
	start := time.Now()
	_, berr := c.RunContext(ctx, cfg)
	bElapsed := time.Since(start)
	cancel()
	if err := <-aDone; err != nil {
		t.Fatalf("building run: %v", err)
	}
	if berr == nil {
		t.Skip("foreign build finished before the cancel landed; waiter path not hit")
	}
	if !errors.Is(berr, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", berr)
	}
	// The waiter must not have ridden out the whole foreign build: at 120k
	// points the build takes tens of ms; a prompt unwind is bounded well
	// below that (generous margin for loaded CI hosts).
	if bElapsed > 2*time.Second {
		t.Fatalf("cancelled waiter took %v to return", bElapsed)
	}
	// And the structure the other run built is intact.
	want, err := Cluster(rows, Config{Eps: 1.0, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResultT(t, got, want, "run after cancelled waiter")
}

// TestRunContextCancelMidRunThenIdentical: with the structure prebuilt,
// cancel runs at a spread of delays (hitting different phases), and after
// every cancelled run assert the very next uncancelled run returns exactly
// the baseline — the arena-reuse-after-unwind guarantee, under -race.
func TestRunContextCancelMidRunThenIdentical(t *testing.T) {
	rows := blobs(60000, 2, 23)
	c, err := NewClusterer(rows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare(Config{}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 10}
	want, err := c.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cancelledAtLeastOne := false
	for _, delay := range []time.Duration{0, 200 * time.Microsecond, time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			cancel()
		}()
		res, rerr := c.RunContext(ctx, cfg)
		wg.Wait()
		cancel()
		if rerr != nil {
			if !errors.Is(rerr, context.Canceled) {
				t.Fatalf("delay %v: err = %v, want context.Canceled", delay, rerr)
			}
			if res != nil {
				t.Fatalf("delay %v: result alongside error", delay)
			}
			cancelledAtLeastOne = true
		}
		got, err := c.Run(cfg)
		if err != nil {
			t.Fatalf("delay %v: rerun: %v", delay, err)
		}
		sameResultT(t, got, want, "rerun after cancel")
	}
	if !cancelledAtLeastOne {
		t.Log("no delay landed mid-run on this machine; equality still verified")
	}
}

// TestRunContextCancelSharded exercises the sharded path explicitly.
func TestRunContextCancelSharded(t *testing.T) {
	rows := blobs(60000, 2, 24)
	c, err := NewClusterer(rows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 10, Shards: 4}
	want, err := c.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []time.Duration{0, time.Millisecond, 8 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(delay, cancel)
		if _, rerr := c.RunContext(ctx, cfg); rerr != nil && !errors.Is(rerr, context.Canceled) {
			t.Fatalf("sharded cancel: err = %v", rerr)
		}
		cancel()
		got, err := c.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResultT(t, got, want, "sharded rerun after cancel")
	}
}

// TestConcurrentCancelledAndCleanRuns mixes cancelled and uncancelled
// concurrent runs on one Clusterer (shared arena, shared cells): the clean
// runs must be unaffected. Run with -race.
func TestConcurrentCancelledAndCleanRuns(t *testing.T) {
	rows := blobs(30000, 2, 25)
	c, err := NewClusterer(rows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 10}
	want, err := c.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				// Clean run: must equal the baseline exactly.
				got, err := c.RunContext(context.Background(), Config{MinPts: 10, Workers: 1 + i%3})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got.Labels, want.Labels) {
					errs <- errors.New("clean concurrent run diverged from baseline")
				}
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			time.AfterFunc(time.Duration(i)*time.Millisecond, cancel)
			defer cancel()
			if _, err := c.RunContext(ctx, cfg); err != nil && !errors.Is(err, context.Canceled) {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStreamingRunContextCancel cancels a streaming tick and asserts the
// next tick is a clean full recompute equal to a from-scratch Cluster.
func TestStreamingRunContextCancel(t *testing.T) {
	rows := blobs(30000, 2, 26)
	s, err := NewStreamingClusterer(2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rows); err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 10}

	// Pre-cancelled: rejected before the snapshot, stream unaffected.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := s.RunContext(pre, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled tick: err = %v", err)
	}

	// Mid-tick cancellations at a spread of delays.
	for _, delay := range []time.Duration{time.Millisecond, 8 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(delay, cancel)
		_, rerr := s.RunContext(ctx, cfg)
		cancel()
		if rerr != nil && !errors.Is(rerr, context.Canceled) {
			t.Fatalf("mid-tick cancel: err = %v", rerr)
		}
		got, err := s.Run(cfg)
		if err != nil {
			t.Fatalf("tick after cancelled tick: %v", err)
		}
		if rerr != nil && !s.LastRunStats().Full {
			t.Fatal("tick after a cancelled tick should be a full recompute")
		}
		want, err := Cluster(rows, Config{Eps: 1.0, MinPts: 10})
		if err != nil {
			t.Fatal(err)
		}
		if got.NumClusters != want.NumClusters {
			t.Fatalf("recovered tick: NumClusters = %d, want %d", got.NumClusters, want.NumClusters)
		}
		// Streaming results are label-permutation-equal to batch results.
		if !permEqualLabels(got.Labels, want.Labels) {
			t.Fatal("recovered tick labels differ from from-scratch clustering")
		}
	}
}

// permEqualLabels reports whether two labelings are equal up to a bijection
// of cluster ids (noise must match exactly).
func permEqualLabels(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for i := range a {
		x, y := a[i], b[i]
		if (x < 0) != (y < 0) {
			return false
		}
		if x < 0 {
			continue
		}
		if v, ok := fwd[x]; ok && v != y {
			return false
		}
		if v, ok := rev[y]; ok && v != x {
			return false
		}
		fwd[x], rev[y] = y, x
	}
	return true
}

func TestClusterContextWrappers(t *testing.T) {
	rows := blobs(2000, 2, 27)
	want, err := Cluster(rows, Config{Eps: 2, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ClusterContext(context.Background(), rows, Config{Eps: 2, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameResultT(t, got, want, "ClusterContext")

	flat := make([]float64, 0, len(rows)*2)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	gotFlat, err := ClusterFlatContext(context.Background(), flat, 2, Config{Eps: 2, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameResultT(t, gotFlat, want, "ClusterFlatContext")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ClusterContext(ctx, rows, Config{Eps: 2, MinPts: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ClusterContext: err = %v", err)
	}
}

// TestRunStatsRecorded checks the per-phase RunStats surface on batch runs.
func TestRunStatsRecorded(t *testing.T) {
	rows := blobs(20000, 2, 28)
	c, err := NewClusterer(rows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Config{MinPts: 10}); err != nil {
		t.Fatal(err)
	}
	st := c.LastRunStats()
	if st.Total <= 0 {
		t.Fatalf("Total = %v, want > 0", st.Total)
	}
	if st.MarkCore+st.ClusterCore+st.Border <= 0 {
		t.Fatalf("no phase durations recorded: %+v", st)
	}
	if st.MarkCore+st.ClusterCore+st.Border+st.Build > st.Total+time.Millisecond {
		t.Fatalf("phases exceed total: %+v", st)
	}
	if st.Workers < 1 {
		t.Fatalf("Workers = %d", st.Workers)
	}
	if st.Shards < 1 {
		t.Fatalf("Shards = %d", st.Shards)
	}
	// A cancelled run must not overwrite the stats.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunContext(ctx, Config{MinPts: 10}); err == nil {
		t.Fatal("cancelled run succeeded?")
	}
	if got := c.LastRunStats(); got != st {
		t.Fatal("cancelled run overwrote LastRunStats")
	}
}
