package pdbscan

import (
	"fmt"
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
	"pdbscan/internal/metrics"
)

func blobs(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{}
	for c := 0; c < 4; c++ {
		ctr := make([]float64, d)
		for j := range ctr {
			ctr[j] = rng.Float64() * 100
		}
		centers = append(centers, ctr)
	}
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		if rng.Float64() < 0.08 {
			for j := range row {
				row[j] = rng.Float64() * 100
			}
		} else {
			c := centers[rng.Intn(len(centers))]
			for j := range row {
				row[j] = c[j] + rng.NormFloat64()*2
			}
		}
		rows[i] = row
	}
	return rows
}

func toPoints(rows [][]float64) geom.Points {
	p, _ := geom.FromRows(rows)
	return p
}

func TestAllMethodsMatchOracle2D(t *testing.T) {
	rows := blobs(400, 2, 1)
	eps, minPts := 3.0, 5
	ref := metrics.BruteDBSCAN(toPoints(rows), eps, minPts)
	for _, m := range Methods() {
		cfg := Config{Eps: eps, MinPts: minPts, Method: m}
		res, err := Cluster(rows, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if m == MethodApprox || m == MethodApproxQt {
			if err := metrics.ValidApproxResult(toPoints(rows), eps, 0.01, minPts,
				res.Core, res.Labels, res.Border); err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			continue
		}
		if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestAllMethodsMatchOracleHighDim(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		rows := blobs(300, d, int64(d))
		eps, minPts := 5.0, 6
		ref := metrics.BruteDBSCAN(toPoints(rows), eps, minPts)
		for _, m := range []Method{MethodExact, MethodExactQt} {
			for _, bucketing := range []bool{false, true} {
				cfg := Config{Eps: eps, MinPts: minPts, Method: m, Bucketing: bucketing}
				res, err := Cluster(rows, cfg)
				if err != nil {
					t.Fatalf("%s d=%d: %v", m, d, err)
				}
				if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
					t.Fatalf("%s d=%d bucketing=%v: %v", m, d, bucketing, err)
				}
			}
		}
		for _, m := range []Method{MethodApprox, MethodApproxQt} {
			cfg := Config{Eps: eps, MinPts: minPts, Method: m, Rho: 0.05}
			res, err := Cluster(rows, cfg)
			if err != nil {
				t.Fatalf("%s d=%d: %v", m, d, err)
			}
			if err := metrics.ValidApproxResult(toPoints(rows), eps, 0.05, minPts,
				res.Core, res.Labels, res.Border); err != nil {
				t.Fatalf("%s d=%d: %v", m, d, err)
			}
		}
	}
}

func TestAutoMethodSelection(t *testing.T) {
	rows2 := blobs(200, 2, 9)
	if _, err := Cluster(rows2, Config{Eps: 3, MinPts: 5}); err != nil {
		t.Fatalf("auto 2D: %v", err)
	}
	rows5 := blobs(200, 5, 10)
	if _, err := Cluster(rows5, Config{Eps: 5, MinPts: 5}); err != nil {
		t.Fatalf("auto 5D: %v", err)
	}
}

func TestClusterFlatMatchesCluster(t *testing.T) {
	rows := blobs(300, 3, 11)
	flat := make([]float64, 0, len(rows)*3)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	a, err := Cluster(rows, Config{Eps: 4, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterFlat(flat, 3, Config{Eps: 4, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumClusters != b.NumClusters {
		t.Fatalf("cluster counts differ: %d vs %d", a.NumClusters, b.NumClusters)
	}
	if ari := metrics.AdjustedRandIndex(a.Labels, b.Labels); ari != 1 {
		t.Fatalf("ARI = %v", ari)
	}
}

func TestWorkersConfig(t *testing.T) {
	rows := blobs(500, 3, 12)
	var base *Result
	for _, w := range []int{1, 2, 8} {
		res, err := Cluster(rows, Config{Eps: 4, MinPts: 8, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.NumClusters != base.NumClusters {
			t.Fatalf("workers=%d: %d clusters vs %d", w, res.NumClusters, base.NumClusters)
		}
		if ari := metrics.AdjustedRandIndex(res.Labels, base.Labels); ari != 1 {
			t.Fatalf("workers=%d: ARI %v", w, ari)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	rows := blobs(50, 2, 13)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero eps", Config{Eps: 0, MinPts: 5}, false},
		{"negative eps", Config{Eps: -1, MinPts: 5}, false},
		{"zero minpts", Config{Eps: 1, MinPts: 0}, false},
		{"unknown method", Config{Eps: 1, MinPts: 5, Method: "bogus"}, false},
		{"negative workers", Config{Eps: 1, MinPts: 5, Workers: -1}, false},
		{"negative buckets", Config{Eps: 1, MinPts: 5, Buckets: -3, Bucketing: true}, false},
		{"negative buckets without bucketing", Config{Eps: 1, MinPts: 5, Buckets: -1}, false},
		{"negative shards", Config{Eps: 1, MinPts: 5, Shards: -1}, false},
		{"very negative shards", Config{Eps: 1, MinPts: 5, Shards: -64}, false},
		{"valid default buckets", Config{Eps: 1, MinPts: 5, Bucketing: true}, true},
		{"valid explicit buckets", Config{Eps: 1, MinPts: 5, Bucketing: true, Buckets: 1}, true},
		{"valid zero workers", Config{Eps: 1, MinPts: 5, Workers: 0}, true},
		{"valid auto shards", Config{Eps: 1, MinPts: 5, Shards: 0}, true},
		{"valid explicit shards", Config{Eps: 1, MinPts: 5, Shards: 3}, true},
		{"valid shards beyond cells", Config{Eps: 1, MinPts: 5, Shards: 1000}, true},
	}
	for _, c := range cases {
		_, err := Cluster(rows, c.cfg)
		if c.ok && err != nil {
			t.Fatalf("%s: unexpected error: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		// The streaming Run path shares the validation.
		s, serr := NewStreamingClusterer(2, 1)
		if serr != nil {
			t.Fatal(serr)
		}
		if _, serr = s.Insert(rows); serr != nil {
			t.Fatal(serr)
		}
		runCfg := c.cfg
		runCfg.Eps = 0 // streaming pins eps at construction
		_, err = s.Run(runCfg)
		if c.ok && err != nil {
			t.Fatalf("%s (streaming): unexpected error: %v", c.name, err)
		}
		if !c.ok && c.cfg.Eps > 0 && err == nil {
			t.Fatalf("%s (streaming): expected error", c.name)
		}
	}
	// 2D-only method on 3D data.
	rows3 := blobs(50, 3, 14)
	if _, err := Cluster(rows3, Config{Eps: 1, MinPts: 5, Method: Method2DGridUSEC}); err == nil {
		t.Fatal("expected error for 2D method on 3D data")
	}
	// Empty input.
	if _, err := Cluster(nil, Config{Eps: 1, MinPts: 5}); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Bad flat input.
	if _, err := ClusterFlat([]float64{1, 2, 3}, 2, Config{Eps: 1, MinPts: 5}); err == nil {
		t.Fatal("expected error for ragged flat input")
	}
	if _, err := ClusterFlat(nil, 0, Config{Eps: 1, MinPts: 5}); err == nil {
		t.Fatal("expected error for zero dims")
	}
}

func TestResultHelpers(t *testing.T) {
	rows := blobs(400, 2, 15)
	res, err := Cluster(rows, Config{Eps: 3, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.ClusterSizes()
	if len(sizes) != res.NumClusters {
		t.Fatalf("sizes len = %d, want %d", len(sizes), res.NumClusters)
	}
	total := 0
	for _, s := range sizes {
		if s == 0 {
			t.Fatal("empty cluster in sizes")
		}
		total += s
	}
	if total+res.NumNoise() != len(rows) {
		t.Fatalf("sizes+noise = %d, want %d", total+res.NumNoise(), len(rows))
	}
}

func TestMethodsListUsable(t *testing.T) {
	// Every listed method must run on 2D data (approx defaults Rho).
	rows := blobs(150, 2, 16)
	for _, m := range Methods() {
		if _, err := Cluster(rows, Config{Eps: 3, MinPts: 5, Method: m}); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func ExampleCluster() {
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, // a dense blob
		{5, 5}, {5.1, 5}, {5, 5.1}, {5.1, 5.1}, // another blob
		{2.5, 2.5}, // noise
	}
	res, err := Cluster(points, Config{Eps: 0.5, MinPts: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters, "noise:", res.NumNoise())
	// Output: clusters: 2 noise: 1
}
