// Package pdbscan is a parallel implementation of exact and approximate
// Euclidean DBSCAN, reproducing "Theoretically-Efficient and Practical
// Parallel DBSCAN" (Wang, Gu, Shun — SIGMOD 2020).
//
// The exact methods return precisely the clustering of the standard DBSCAN
// definition (Ester et al.): core points partitioned by eps-connectivity,
// border points attached to every cluster with a core point within eps, and
// noise labeled -1. The approximate methods implement Gan–Tao approximate
// DBSCAN: identical core points, with cluster merges optional for core pairs
// at distance in (eps, eps(1+rho)].
//
// Quick start:
//
//	res, err := pdbscan.Cluster(points, pdbscan.Config{Eps: 10, MinPts: 100})
//	// res.Labels[i] is point i's cluster (-1 = noise)
//
// For parameter sweeps (MinPts, Method, Rho) over the same points at one Eps,
// build a Clusterer once and call Run repeatedly — the eps-keyed cell
// structure is built a single time and shared across runs:
//
//	c, err := pdbscan.NewClusterer(points, 10)
//	for _, minPts := range []int{10, 50, 100} {
//		res, err := c.Run(pdbscan.Config{MinPts: minPts})
//		...
//	}
//
// All methods run in parallel over the available CPUs; Config.Workers caps
// the parallelism of that one call. The cap is carried by a per-run executor
// (internal/parallel.Pool), never by process-wide state, so any number of
// Cluster and Clusterer.Run calls may run concurrently — each honors its own
// Workers budget.
//
// At scale, runs execute through a sharded partition/merge architecture: the
// cell lattice is cut into contiguous spatial shards clustered independently
// and stitched by a boundary-merge pass. Config.Shards controls it (0 = auto
// from the point count and worker budget); results are identical to the
// monolithic path for every method.
package pdbscan

import (
	"context"
	"fmt"
	"math"
	"time"

	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
)

// checkCoords validates every coordinate of a point set against the cell
// lattice for the given eps: finite, within the exact-arithmetic range of the
// absolute lattice (|v|/side < grid.MaxExactCells — beyond it floor(v/side)
// quantizes in steps of several cells and clustering would be silently
// wrong), and with per-dimension spread under 2^31 cells (relative cell
// coordinates are int32). One serial pass, shared by Clusterer and
// StreamingClusterer construction/ingest.
func checkCoords(data []float64, d int, eps float64) error {
	side := eps / math.Sqrt(float64(d))
	maxMag := grid.MaxExactCells * side
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := range lo {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pdbscan: point %d has a non-finite coordinate (%v)", i/d, v)
		}
		if v >= maxMag || v <= -maxMag {
			return fmt.Errorf("pdbscan: point %d coordinate %v exceeds the exact cell-lattice range (+-%.4g) for Eps=%v; recenter the data closer to the origin or increase Eps", i/d, v, maxMag, eps)
		}
		j := i % d
		if v < lo[j] {
			lo[j] = v
		}
		if v > hi[j] {
			hi[j] = v
		}
	}
	for j := 0; j < d; j++ {
		if (hi[j]-lo[j])/side >= math.MaxInt32 {
			return fmt.Errorf("pdbscan: point spread %v in dimension %d exceeds %d cells of side %v; increase Eps or partition the data", hi[j]-lo[j], j, math.MaxInt32, side)
		}
	}
	return nil
}

// Method selects the algorithm variant. The names follow Section 7.1 of the
// paper.
type Method string

const (
	// MethodAuto picks MethodExact for d >= 3 and Method2DGridBCP for d = 2
	// (the fastest variants in the paper's evaluation).
	MethodAuto Method = "auto"
	// MethodExact marks cores by scanning neighbor cells and connects cells
	// with filtered, early-terminating BCP ("our-exact").
	MethodExact Method = "exact"
	// MethodExactQt answers MarkCore range counts with per-cell quadtrees
	// ("our-exact-qt").
	MethodExactQt Method = "exact-qt"
	// MethodApprox is Gan–Tao approximate DBSCAN with scan-based MarkCore
	// ("our-approx"); requires Rho > 0.
	MethodApprox Method = "approx"
	// MethodApproxQt is MethodApprox with quadtree MarkCore
	// ("our-approx-qt").
	MethodApproxQt Method = "approx-qt"

	// 2D-only variants: cell construction (grid or box) x connectivity
	// (BCP, USEC wavefronts, or Delaunay triangulation).
	Method2DGridBCP      Method = "2d-grid-bcp"
	Method2DGridUSEC     Method = "2d-grid-usec"
	Method2DGridDelaunay Method = "2d-grid-delaunay"
	Method2DBoxBCP       Method = "2d-box-bcp"
	Method2DBoxUSEC      Method = "2d-box-usec"
	Method2DBoxDelaunay  Method = "2d-box-delaunay"
)

// Sampler selects how the sampled-core approximate mode (DBSCAN++, Jang &
// Jiang) picks the subset of points whose core status is computed. The empty
// value disables sampling (exact DBSCAN).
type Sampler string

const (
	// SamplerNone disables sampling: every point gets an exact core decision.
	SamplerNone Sampler = ""
	// SamplerUniform samples each point independently with probability
	// SampleFrac by a seeded hash threshold — O(n), the cheap default.
	SamplerUniform Sampler = "uniform"
	// SamplerKCenter samples ceil(SampleFrac*n) points by greedy K-center
	// (farthest-point traversal), the geometrically-covering sampler DBSCAN++
	// pairs with its approximation guarantee. O(m*n) distances to build, so
	// it suits small fractions; the mask is cached per (sampler, frac, seed)
	// on the Clusterer.
	SamplerKCenter Sampler = "kcenter"
)

// Methods lists every selectable method (excluding MethodAuto), 2D-only ones
// last.
func Methods() []Method {
	return []Method{
		MethodExact, MethodExactQt, MethodApprox, MethodApproxQt,
		Method2DGridBCP, Method2DGridUSEC, Method2DGridDelaunay,
		Method2DBoxBCP, Method2DBoxUSEC, Method2DBoxDelaunay,
	}
}

// Config configures a clustering run.
type Config struct {
	// Eps is the DBSCAN radius (required, > 0).
	Eps float64
	// MinPts is the core-point density threshold (required, >= 1). A point
	// is core iff at least MinPts points (including itself) lie within Eps.
	MinPts int
	// Method selects the algorithm variant; empty means MethodAuto.
	Method Method
	// Rho is the approximation parameter for the approx methods (> 0).
	// Ignored by exact methods. Defaults to 0.01 when an approx method is
	// chosen and Rho is unset, matching the paper's default.
	Rho float64
	// Bucketing enables the size-sorted batched processing of core cells
	// (the "-bucketing" suffix in the paper's experiments).
	Bucketing bool
	// Buckets is the number of batches when Bucketing is set (default 32).
	Buckets int
	// Workers caps the number of OS-level workers used by parallel loops;
	// 0 means all available CPUs.
	Workers int
	// Shards selects the sharded execution path: the anchored cell lattice
	// is split into Shards contiguous spatial blocks with eps-wide halos,
	// each block is clustered independently, and a boundary-merge pass
	// stitches the blocks by evaluating only the cell-graph edges that cross
	// a cut. Results are identical to the monolithic path (Shards = 1) for
	// every method, exact and approximate, up to cluster label permutation —
	// and bit-identical whenever the method runs on the grid layout.
	//
	// 0 means auto: batch runs (Cluster, Clusterer.Run) pick roughly one
	// shard per 64k points, capped at 4x the worker budget and at 1 when
	// Bucketing is set (sharding subsumes the bucketed traversal, so auto
	// defers to the explicit scheduling request); StreamingClusterer.Run
	// always resolves auto to 1, because a sharded run cannot reuse the
	// incremental caches — set Shards explicitly to shard a streaming run,
	// accepting a full recompute. 1 forces the monolithic path. The count is
	// clamped to the occupied lattice (a shard cannot be thinner than one
	// cell slab). Negative values are rejected.
	//
	// The 2d-box-* methods are served by the grid cell layout when
	// Shards > 1 (the box strips have no lattice to cut); the connectivity
	// strategy is preserved and the clustering is identical, as for every
	// exact method.
	Shards int

	// Sampler enables the DBSCAN++ sampled-core approximate mode: core
	// status is computed only for a sample of SampleFrac*n points (their
	// decisions stay exact — the counting set is all points), the sampled
	// cores are clustered by eps-connectivity, and every other point is
	// attached border-style to the clusters of sampled cores within Eps.
	// MarkCore — the dominant phase on dense data — becomes sublinear in n,
	// at the cost of possibly splitting clusters whose density the sample
	// missed; the trade-off is measured (ARI/NMI vs exact) in
	// BENCH_scale.json. Results are deterministic for a fixed (Sampler,
	// SampleFrac, SampleSeed) at any Workers count.
	//
	// Sampled runs are monolithic and batch-only: Shards must be 0 or 1
	// (auto resolves to 1), and StreamingClusterer rejects samplers.
	Sampler Sampler
	// SampleFrac is the sampled fraction m/n, in (0, 1]; required when
	// Sampler is set, rejected when it is not. 1 samples every point, which
	// reproduces exact DBSCAN.
	SampleFrac float64
	// SampleSeed seeds the sampler. Runs with equal (Sampler, SampleFrac,
	// SampleSeed) over the same points pick the same sample.
	SampleSeed int64

	// Spill selects the out-of-core execution path: shards are swept one halo
	// window at a time from the on-disk cell store, so only a sliver of the
	// point data is ever resident. Requires a store-backed Clusterer
	// (OpenStoreClusterer); the shard schedule comes from the store's layout,
	// so Shards must be 0, and samplers are rejected (their counting set is
	// the whole dataset). Labels are bit-identical to an in-RAM run for every
	// grid-layout method and permutation-equal for the 2d-box-* methods
	// (which the store serves from the grid layout, as sharding does).
	// StreamingClusterer rejects Spill — its state is the in-memory dynamic
	// grid; use Snapshot/RestoreStreaming to persist a stream.
	Spill bool
	// MaxResidentBytes is a hard budget on the point-data bytes resident at
	// any moment of a Spill run (one shard's halo window, page rounding
	// included). 0 means no budget. A window over budget fails the run with
	// an error naming the shortfall — rewrite the store with more shards, or
	// raise the budget. The run's O(n) bookkeeping (core flags, labels,
	// cell-level union-find, store metadata) is small and outside the budget;
	// see RunStats.PeakResidentBytes for what was actually mapped. Requires
	// Spill; negative values are rejected.
	MaxResidentBytes int64
}

// Validate checks every Config field for structural validity: the value
// ranges that hold for any run, independent of the data's dimensionality or
// the Clusterer's eps. It is the exact validation every run-shaped entry
// point (Cluster, Clusterer.Run/RunContext, StreamingClusterer.Run/
// RunContext, engine.Engine.Submit) applies up front, exported so that a
// service can reject a bad request before paying to queue or schedule it.
//
// Eps = 0 is valid here (it means "the Clusterer's eps" on the Clusterer
// entry points; Cluster itself additionally requires Eps > 0, as does
// NewClusterer). Dimensionality-dependent rules (the 2D-only methods) are
// still checked by the run itself, which knows the points.
func (cfg *Config) Validate() error {
	if math.IsNaN(cfg.Eps) || math.IsInf(cfg.Eps, 0) || cfg.Eps < 0 {
		return fmt.Errorf("pdbscan: Eps must be finite and >= 0, got %v (0 defers to the Clusterer's eps)", cfg.Eps)
	}
	if cfg.MinPts < 1 {
		return fmt.Errorf("pdbscan: MinPts must be >= 1, got %d", cfg.MinPts)
	}
	switch cfg.Method {
	case "", MethodAuto, MethodExact, MethodExactQt, MethodApprox, MethodApproxQt,
		Method2DGridBCP, Method2DGridUSEC, Method2DGridDelaunay,
		Method2DBoxBCP, Method2DBoxUSEC, Method2DBoxDelaunay:
	default:
		return fmt.Errorf("pdbscan: unknown method %q", cfg.Method)
	}
	if math.IsNaN(cfg.Rho) || math.IsInf(cfg.Rho, 0) || cfg.Rho < 0 {
		return fmt.Errorf("pdbscan: Rho must be finite and >= 0, got %v (0 selects the default of 0.01 for approximate methods)", cfg.Rho)
	}
	if err := validateBudgetConfig(cfg); err != nil {
		return err
	}
	if cfg.Buckets < 0 {
		return fmt.Errorf("pdbscan: Buckets must not be negative, got %d (0 selects the default of 32)", cfg.Buckets)
	}
	switch cfg.Sampler {
	case SamplerNone:
		if cfg.SampleFrac != 0 {
			return fmt.Errorf("pdbscan: SampleFrac %v requires a Sampler", cfg.SampleFrac)
		}
	case SamplerUniform, SamplerKCenter:
		if math.IsNaN(cfg.SampleFrac) || cfg.SampleFrac <= 0 || cfg.SampleFrac > 1 {
			return fmt.Errorf("pdbscan: SampleFrac must be in (0, 1] with Sampler %q, got %v", cfg.Sampler, cfg.SampleFrac)
		}
		if cfg.Shards > 1 {
			return fmt.Errorf("pdbscan: sampled-core runs are monolithic; Shards must be 0 or 1 with Sampler %q, got %d", cfg.Sampler, cfg.Shards)
		}
	default:
		return fmt.Errorf("pdbscan: unknown sampler %q", cfg.Sampler)
	}
	if cfg.MaxResidentBytes < 0 {
		return fmt.Errorf("pdbscan: MaxResidentBytes must not be negative, got %d (0 means no budget)", cfg.MaxResidentBytes)
	}
	if cfg.MaxResidentBytes > 0 && !cfg.Spill {
		return fmt.Errorf("pdbscan: MaxResidentBytes requires Spill (it budgets the out-of-core window)")
	}
	if cfg.Spill {
		if cfg.Sampler != SamplerNone {
			return fmt.Errorf("pdbscan: sampled-core runs are in-RAM only; Spill rejects Sampler %q", cfg.Sampler)
		}
		if cfg.Shards != 0 {
			return fmt.Errorf("pdbscan: Spill derives its shard schedule from the store layout; Shards must be 0, got %d", cfg.Shards)
		}
	}
	return nil
}

// autoShardPoints is the point count one auto-selected shard targets: small
// enough that multi-million-point inputs decompose well past the worker
// count, large enough that per-shard bookkeeping never dominates.
const autoShardPoints = 1 << 16

// resolveShards maps cfg.Shards to the effective shard count for a batch run
// over n points: explicit counts pass through, 0 applies the auto heuristic
// documented on Config.Shards.
func resolveShards(cfg *Config, n int) int {
	if cfg.Sampler != SamplerNone {
		return 1 // sampled-core runs are monolithic (Validate rejects Shards > 1)
	}
	if cfg.Shards > 0 {
		return cfg.Shards
	}
	if cfg.Bucketing {
		return 1
	}
	s := n / autoShardPoints
	if w := 4 * parallel.NewPool(cfg.Workers).Workers(); s > w {
		s = w
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Result is the clustering output.
type Result struct {
	// Labels[i] is the cluster of point i in [0, NumClusters), or -1 for
	// noise. A border point belonging to several clusters gets the smallest
	// label; see Border.
	Labels []int32
	// Core[i] reports whether point i is a core point.
	Core []bool
	// Border maps border points that belong to more than one cluster to
	// their full ascending membership lists.
	Border map[int32][]int32
	// NumClusters is the number of clusters found.
	NumClusters int
}

// ClusterSizes returns the number of points whose primary label is each
// cluster (border multi-memberships count once, under the primary label).
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}

// NumNoise returns the number of noise points.
func (r *Result) NumNoise() int {
	c := 0
	for _, l := range r.Labels {
		if l < 0 {
			c++
		}
	}
	return c
}

// CoreOnlyLabels returns the labeling of the DBSCAN* variant (Campello et
// al., cited in the paper's related work): identical clusters but border
// points are excluded — only core points carry labels, everything else is
// noise (-1).
func (r *Result) CoreOnlyLabels() []int32 {
	out := make([]int32, len(r.Labels))
	for i, l := range r.Labels {
		if r.Core[i] {
			out[i] = l
		} else {
			out[i] = -1
		}
	}
	return out
}

// Cluster runs DBSCAN over points given as coordinate rows (all rows must
// have the same dimensionality). It is a one-shot wrapper around Clusterer;
// to run several configurations over the same points at one Eps (a MinPts,
// Method, or Rho sweep), create a Clusterer once and call Run repeatedly.
func Cluster(points [][]float64, cfg Config) (*Result, error) {
	return ClusterContext(context.Background(), points, cfg)
}

// ClusterContext is Cluster under a context: the run stops cooperatively and
// returns ctx.Err() when ctx is cancelled mid-flight (see
// Clusterer.RunContext for the exact semantics).
func ClusterContext(ctx context.Context, points [][]float64, cfg Config) (*Result, error) {
	c, err := NewClusterer(points, cfg.Eps)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx, cfg)
}

// ClusterFlat runs DBSCAN over n = len(data)/dims points stored row-major in
// a flat slice, avoiding the copy of Cluster. data must not be mutated while
// clustering runs.
func ClusterFlat(data []float64, dims int, cfg Config) (*Result, error) {
	return ClusterFlatContext(context.Background(), data, dims, cfg)
}

// ClusterFlatContext is ClusterFlat under a context (see Clusterer.RunContext
// for the cancellation semantics).
func ClusterFlatContext(ctx context.Context, data []float64, dims int, cfg Config) (*Result, error) {
	c, err := NewClustererFlat(data, dims, cfg.Eps)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx, cfg)
}

// RunStats reports the phase breakdown of a batch run (Clusterer.Run or
// RunContext), retrievable with Clusterer.LastRunStats. Durations are
// wall-clock; phases overlap nothing, so Build + MarkCore + ClusterCore +
// Border ~= Total (Build absorbs structure construction, partitioning, and
// the run's fixed bookkeeping, and is near zero once the eps-keyed cell
// structure is cached).
type RunStats struct {
	// Build is the time this run spent outside the pipeline phases: cell
	// structure construction (first run per layout only), partition cuts,
	// validation, and result assembly.
	Build time.Duration
	// MarkCore is Algorithm 2 (core-point marking).
	MarkCore time.Duration
	// ClusterCore covers core collection, the cell graph (Algorithm 3), and
	// — on sharded runs — the boundary merge.
	ClusterCore time.Duration
	// Border covers dense label assignment and ClusterBorder (Algorithm 4).
	Border time.Duration
	// Total is the end-to-end wall time of the run.
	Total time.Duration
	// Shards is the effective shard count the run executed with (1 =
	// monolithic).
	Shards int
	// Workers is the effective worker budget of the run.
	Workers int

	// BytesMapped is the cumulative point-data bytes mapped across every
	// window turn of a Spill run (zero otherwise). Each shard's halo window
	// is mapped once per pass (mark/graph, then border), so this typically
	// lands at 2-6x the dataset size depending on halo overlap.
	BytesMapped int64
	// PeakResidentBytes is the largest single window mapping of a Spill run —
	// the most point data resident at any moment (windows are mapped one at a
	// time and released before the next turn). This is the figure
	// Config.MaxResidentBytes bounds.
	PeakResidentBytes int64
	// ShardsResidentPeak is the widest halo window of a Spill run, in shards.
	ShardsResidentPeak int
}
