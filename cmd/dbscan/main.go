// Command dbscan clusters a points file (CSV or the binary format written by
// datagen) with any of the paper's algorithm variants and reports the
// clustering; optionally writes per-point labels.
//
// Usage:
//
//	dbscan -i points.bin -eps 1000 -minpts 100 -method exact -bucketing
//	dbscan -i points.csv -eps 0.5 -minpts 10 -method 2d-grid-usec -o labels.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
)

func main() {
	var (
		in        = flag.String("i", "", "input points file (CSV or pdbscan binary)")
		eps       = flag.Float64("eps", 0, "DBSCAN radius (required)")
		minPts    = flag.Int("minpts", 0, "core point threshold (required)")
		method    = flag.String("method", "auto", "algorithm variant (see pdbscan.Methods)")
		rho       = flag.Float64("rho", 0.01, "approximation parameter for approx methods")
		bucketing = flag.Bool("bucketing", false, "enable the bucketing heuristic")
		workers   = flag.Int("workers", 0, "parallelism cap (0 = all CPUs)")
		out       = flag.String("o", "", "write per-point labels to this CSV file")
		topK      = flag.Int("top", 10, "number of largest clusters to report")
	)
	flag.Parse()
	if *in == "" || *eps <= 0 || *minPts < 1 {
		fmt.Fprintln(os.Stderr, "usage: dbscan -i points.csv -eps E -minpts K [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	pts, err := dataset.LoadFile(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d points, d=%d\n", pts.N, pts.D)

	cfg := pdbscan.Config{
		Eps:       *eps,
		MinPts:    *minPts,
		Method:    pdbscan.Method(*method),
		Rho:       *rho,
		Bucketing: *bucketing,
		Workers:   *workers,
	}
	start := time.Now()
	res, err := pdbscan.ClusterFlat(pts.Data, pts.D, cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	nCore := 0
	for _, c := range res.Core {
		if c {
			nCore++
		}
	}
	fmt.Printf("method=%s eps=%v minpts=%d: %d clusters, %d core, %d noise in %v\n",
		*method, *eps, *minPts, res.NumClusters, nCore, res.NumNoise(), elapsed)

	sizes := res.ClusterSizes()
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	k := *topK
	if k > len(order) {
		k = len(order)
	}
	for i := 0; i < k; i++ {
		fmt.Printf("  cluster %d: %d points\n", order[i], sizes[order[i]])
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, l := range res.Labels {
			if _, err := w.WriteString(strconv.Itoa(int(l)) + "\n"); err != nil {
				fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("labels written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbscan:", err)
	os.Exit(1)
}
