package main

import (
	"fmt"

	"pdbscan"
	"pdbscan/internal/metrics"
)

// expVerify is the at-scale correctness harness: on every generated dataset
// it runs all applicable exact variants (with and without bucketing) and
// checks that they produce the identical clustering, and that approximate
// variants agree with exact on core flags. This is the property the paper
// emphasizes — the parallel algorithms return the standard DBSCAN result —
// checked at sizes where the quadratic test oracle is infeasible.
func expVerify(o options) {
	t := newTable("Verification: cross-variant agreement (exact variants identical; approx core-identical)",
		"dataset", "eps", "minPts", "clusters", "variants", "status")
	for _, ds := range append(figure6Datasets(),
		dsConfig{name: "ss-simden-2d", eps: 400, minPts: 100},
		dsConfig{name: "ss-varden-2d", eps: 1000, minPts: 100},
	) {
		pts := loadDataset(ds.name, o.n, o.seed)
		methods := []pdbscan.Method{pdbscan.MethodExact, pdbscan.MethodExactQt}
		if pts.D == 2 {
			methods = append(methods,
				pdbscan.Method2DGridBCP, pdbscan.Method2DGridUSEC, pdbscan.Method2DGridDelaunay,
				pdbscan.Method2DBoxBCP, pdbscan.Method2DBoxUSEC, pdbscan.Method2DBoxDelaunay)
		}
		var base *pdbscan.Result
		status := "OK"
		count := 0
		for _, m := range methods {
			for _, bucketing := range []bool{false, true} {
				res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
					Eps: ds.eps, MinPts: ds.minPts, Method: m, Bucketing: bucketing,
				})
				if err != nil {
					status = fmt.Sprintf("ERROR %s: %v", m, err)
					break
				}
				count++
				if base == nil {
					base = res
					continue
				}
				if res.NumClusters != base.NumClusters ||
					metrics.AdjustedRandIndex(res.Labels, base.Labels) != 1 {
					status = fmt.Sprintf("MISMATCH at %s bucketing=%v", m, bucketing)
				}
			}
		}
		// Approximate: core flags must equal exact's.
		for _, m := range []pdbscan.Method{pdbscan.MethodApprox, pdbscan.MethodApproxQt} {
			res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
				Eps: ds.eps, MinPts: ds.minPts, Method: m, Rho: 0.01,
			})
			if err != nil {
				status = fmt.Sprintf("ERROR %s: %v", m, err)
				break
			}
			count++
			if !sameCoreFlags(base, res) {
				status = fmt.Sprintf("CORE MISMATCH at %s", m)
			}
		}
		t.add(ds.name, fmt.Sprintf("%g", ds.eps), fmt.Sprintf("%d", ds.minPts),
			fmt.Sprintf("%d", base.NumClusters), fmt.Sprintf("%d", count), status)
	}
	t.print()
}

func sameCoreFlags(a, b *pdbscan.Result) bool {
	if len(a.Core) != len(b.Core) {
		return false
	}
	for i := range a.Core {
		if a.Core[i] != b.Core[i] {
			return false
		}
	}
	return true
}
