package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"pdbscan/internal/hashtable"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// expTable1 exercises every parallel primitive of Table 1 at 1 and NumCPU
// threads, demonstrating the near-linear work bounds (self-relative speedup
// is the observable proxy for work-efficiency + low depth).
func expTable1(o options) {
	n := o.n
	if n < 1<<20 {
		n = 1 << 20
	}
	rng := rand.New(rand.NewSource(o.seed))
	ints := make([]int64, n)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(rng.Intn(1000))
		keys[i] = uint64(rng.Intn(n / 16)) // many duplicate keys for semisort
	}

	// Pre-sorted halves for the merge bench (sorting is not what Table 1's
	// merge row measures).
	sortedA := append([]int64{}, ints[:n/2]...)
	sortedB := append([]int64{}, ints[n/2:]...)
	prim.Sort(nil, sortedA, func(x, y int64) bool { return x < y })
	prim.Sort(nil, sortedB, func(x, y int64) bool { return x < y })

	type primBench struct {
		name string
		run  func(ex *parallel.Pool)
	}
	benches := []primBench{
		{"prefix sum", func(ex *parallel.Pool) {
			buf := make([]int64, n)
			prim.PrefixSum(ex, ints, buf)
		}},
		{"filter", func(ex *parallel.Pool) {
			prim.Filter(ex, ints, func(x int64) bool { return x%3 == 0 })
		}},
		{"comparison sort", func(ex *parallel.Pool) {
			a := append([]int64{}, ints...)
			prim.Sort(ex, a, func(x, y int64) bool { return x < y })
		}},
		{"integer sort (radix)", func(ex *parallel.Pool) {
			k := append([]uint64{}, keys...)
			v := make([]int32, n)
			prim.RadixSortPairs(ex, k, v, 32)
		}},
		{"semisort", func(ex *parallel.Pool) {
			prim.Semisort(ex, keys)
		}},
		{"merge", func(ex *parallel.Pool) {
			out := make([]int64, n)
			prim.Merge(ex, sortedA, sortedB, out, func(x, y int64) bool { return x < y })
		}},
		{"hash table (insert+lookup)", func(ex *parallel.Pool) {
			tb := hashtable.NewU64(n / 4)
			ex.For(n/4, func(i int) { tb.Insert(uint64(i)*0x9e3779b97f4a7c15+1, int32(i)) })
			ex.For(n/4, func(i int) { tb.Lookup(uint64(i)*0x9e3779b97f4a7c15 + 1) })
		}},
	}

	maxT := runtime.NumCPU()
	t := newTable(
		fmt.Sprintf("Table 1: parallel primitives, n=%d — work-efficiency via scaling", n),
		"primitive", "p=1", fmt.Sprintf("p=%d", maxT), "speedup")
	for _, b := range benches {
		t1 := timePrimitive(b.run, 1)
		tp := timePrimitive(b.run, maxT)
		t.add(b.name, fmtDur(t1), fmtDur(tp), fmtSpeedup(t1, tp))
	}
	t.print()
}

func timePrimitive(f func(ex *parallel.Pool), threads int) time.Duration {
	old := runtime.GOMAXPROCS(threads)
	defer runtime.GOMAXPROCS(old)
	ex := parallel.NewPool(threads)
	// Best of 3 runs.
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f(ex)
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best
}
