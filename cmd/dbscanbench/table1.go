package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"pdbscan/internal/hashtable"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// expTable1 exercises every parallel primitive of Table 1 at 1 and NumCPU
// threads, demonstrating the near-linear work bounds (self-relative speedup
// is the observable proxy for work-efficiency + low depth).
func expTable1(o options) {
	n := o.n
	if n < 1<<20 {
		n = 1 << 20
	}
	rng := rand.New(rand.NewSource(o.seed))
	ints := make([]int64, n)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(rng.Intn(1000))
		keys[i] = uint64(rng.Intn(n / 16)) // many duplicate keys for semisort
	}

	// Pre-sorted halves for the merge bench (sorting is not what Table 1's
	// merge row measures).
	sortedA := append([]int64{}, ints[:n/2]...)
	sortedB := append([]int64{}, ints[n/2:]...)
	prim.Sort(sortedA, func(x, y int64) bool { return x < y })
	prim.Sort(sortedB, func(x, y int64) bool { return x < y })

	type primBench struct {
		name string
		run  func()
	}
	benches := []primBench{
		{"prefix sum", func() {
			buf := make([]int64, n)
			prim.PrefixSum(ints, buf)
		}},
		{"filter", func() {
			prim.Filter(ints, func(x int64) bool { return x%3 == 0 })
		}},
		{"comparison sort", func() {
			a := append([]int64{}, ints...)
			prim.Sort(a, func(x, y int64) bool { return x < y })
		}},
		{"integer sort (radix)", func() {
			k := append([]uint64{}, keys...)
			v := make([]int32, n)
			prim.RadixSortPairs(k, v, 32)
		}},
		{"semisort", func() {
			prim.Semisort(keys)
		}},
		{"merge", func() {
			out := make([]int64, n)
			prim.Merge(sortedA, sortedB, out, func(x, y int64) bool { return x < y })
		}},
		{"hash table (insert+lookup)", func() {
			tb := hashtable.NewU64(n / 4)
			parallel.For(n/4, func(i int) { tb.Insert(uint64(i)*0x9e3779b97f4a7c15+1, int32(i)) })
			parallel.For(n/4, func(i int) { tb.Lookup(uint64(i)*0x9e3779b97f4a7c15 + 1) })
		}},
	}

	maxT := runtime.NumCPU()
	t := newTable(
		fmt.Sprintf("Table 1: parallel primitives, n=%d — work-efficiency via scaling", n),
		"primitive", "p=1", fmt.Sprintf("p=%d", maxT), "speedup")
	for _, b := range benches {
		t1 := timePrimitive(b.run, 1)
		tp := timePrimitive(b.run, maxT)
		t.add(b.name, fmtDur(t1), fmtDur(tp), fmtSpeedup(t1, tp))
	}
	t.print()
}

func timePrimitive(f func(), threads int) time.Duration {
	old := runtime.GOMAXPROCS(threads)
	oldW := parallel.SetWorkers(threads)
	defer func() {
		runtime.GOMAXPROCS(old)
		parallel.SetWorkers(oldW)
	}()
	// Best of 3 runs.
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best
}
