package main

import (
	"fmt"
	"runtime"
	"time"

	"pdbscan/internal/baseline"
	"pdbscan/internal/dataset"
	"pdbscan/internal/geom"
	"pdbscan/internal/parallel"
)

// dsConfig is a dataset plus its default parameters (scaled analogues of the
// per-dataset defaults in the paper's figure captions).
type dsConfig struct {
	name   string
	eps    float64   // default eps (the "correct clustering" point)
	minPts int       // default minPts
	sweep  []float64 // eps sweep for Figures 6; default eps included
}

// figure6Datasets mirrors the 11 panels of Figures 6-8 (d >= 3).
func figure6Datasets() []dsConfig {
	mk := func(name string, eps float64, minPts int) dsConfig {
		return dsConfig{
			name: name, eps: eps, minPts: minPts,
			sweep: []float64{eps / 4, eps / 2, eps, eps * 2, eps * 4},
		}
	}
	return []dsConfig{
		mk("ss-simden-3d", 1000, 10),
		mk("ss-varden-3d", 2000, 100),
		mk("uniform-3d", 100, 10),
		mk("ss-simden-5d", 1000, 100),
		mk("ss-varden-5d", 3000, 10),
		mk("uniform-5d", 100, 100),
		mk("ss-simden-7d", 2000, 10),
		mk("ss-varden-7d", 3000, 10),
		mk("uniform-7d", 200, 10),
		mk("geolife", 40, 100),
		mk("household", 2000, 100),
	}
}

// quickSubset is the default (non -full) dataset list for the heavier
// experiments.
func quickSubset(all []dsConfig) []dsConfig {
	keep := map[string]bool{
		"ss-simden-3d": true, "ss-varden-3d": true,
		"ss-varden-5d": true, "geolife": true,
	}
	var out []dsConfig
	for _, c := range all {
		if keep[c.name] {
			out = append(out, c)
		}
	}
	return out
}

func loadDataset(name string, n int, seed int64) geom.Points {
	pts, err := dataset.Generate(name, n, seed)
	if err != nil {
		panic(err)
	}
	return pts
}

// expFig6 regenerates Figure 6: running time vs eps for every d>=3 dataset.
// The paper's shape: our methods flat-or-improving in eps; the pointwise
// baselines degrade sharply (they are only run up to the default eps here,
// mirroring the paper's one-hour timeout cutoff).
func expFig6(o options) {
	datasets := figure6Datasets()
	if !o.full {
		datasets = quickSubset(datasets)
	}
	for _, ds := range datasets {
		pts := loadDataset(ds.name, o.n, o.seed)
		t := newTable(
			fmt.Sprintf("Figure 6: time vs eps — %s n=%d minPts=%d", ds.name, o.n, ds.minPts),
			append([]string{"variant"}, epsHeaders(ds.sweep)...)...)
		variants := append(ourVariants(), baselineVariants()...)
		for _, v := range variants {
			cells := []string{v.name}
			for _, eps := range ds.sweep {
				if (v.name == "hpdbscan" || v.name == "pdsdbscan") && eps > ds.eps*1.01 {
					cells = append(cells, "(skip)") // the paper's >1h regime
					continue
				}
				rho := 0.01
				dur, k := timeVariant(v, pts, eps, ds.minPts, rho, o.threads)
				cells = append(cells, fmt.Sprintf("%s k=%d", fmtDur(dur), k))
			}
			t.add(cells...)
		}
		t.print()
	}
}

func epsHeaders(sweep []float64) []string {
	out := make([]string, len(sweep))
	for i, e := range sweep {
		out[i] = fmt.Sprintf("eps=%g", e)
	}
	return out
}

// expFig7 regenerates Figure 7: running time vs minPts. Shape: our methods
// degrade roughly linearly in minPts (O(n*minPts) MarkCore); the baselines
// are mostly flat.
func expFig7(o options) {
	datasets := figure6Datasets()
	if !o.full {
		datasets = quickSubset(datasets)
	}
	minPtsSweep := []int{10, 100, 1000, 10000}
	for _, ds := range datasets {
		pts := loadDataset(ds.name, o.n, o.seed)
		headers := []string{"variant"}
		for _, m := range minPtsSweep {
			headers = append(headers, fmt.Sprintf("minPts=%d", m))
		}
		t := newTable(
			fmt.Sprintf("Figure 7: time vs minPts — %s n=%d eps=%g", ds.name, o.n, ds.eps),
			headers...)
		variants := append(ourVariants(), baselineVariants()...)
		for _, v := range variants {
			cells := []string{v.name}
			for _, m := range minPtsSweep {
				dur, k := timeVariant(v, pts, ds.eps, m, 0.01, o.threads)
				cells = append(cells, fmt.Sprintf("%s k=%d", fmtDur(dur), k))
			}
			t.add(cells...)
		}
		t.print()
	}
}

// expFig8 regenerates Figure 8: speedup over the best sequential time vs
// thread count. The best sequential time is the fastest single-threaded run
// across all our variants and the sequential baseline (the paper's
// definition: speedup over the best serial baseline).
func expFig8(o options) {
	datasets := figure6Datasets()
	if !o.full {
		datasets = quickSubset(datasets)
	}
	threads := threadSweep()
	for _, ds := range datasets {
		pts := loadDataset(ds.name, o.n, o.seed)
		// Best serial time.
		bestSerial := time.Duration(0)
		bestName := ""
		serialCandidates := append(ourVariants(), seqVariant())
		for _, v := range serialCandidates {
			dur, _ := timeVariant(v, pts, ds.eps, ds.minPts, 0.01, 1)
			if bestName == "" || dur < bestSerial {
				bestSerial, bestName = dur, v.name
			}
		}
		headers := []string{"variant"}
		for _, th := range threads {
			headers = append(headers, fmt.Sprintf("p=%d", th))
		}
		t := newTable(
			fmt.Sprintf("Figure 8: speedup over best serial (%s, %s) — %s n=%d eps=%g minPts=%d",
				bestName, fmtDur(bestSerial), ds.name, o.n, ds.eps, ds.minPts),
			headers...)
		variants := append(ourVariants(), baselineVariants()...)
		for _, v := range variants {
			cells := []string{v.name}
			for _, th := range threads {
				dur, _ := timeVariant(v, pts, ds.eps, ds.minPts, 0.01, th)
				cells = append(cells, fmtSpeedup(bestSerial, dur))
			}
			t.add(cells...)
		}
		t.print()
	}
}

// expFig9 regenerates Figure 9: self-relative speedup vs thread count on
// 3D-SS-varden. Shape: near-linear scaling for our methods.
func expFig9(o options) {
	ds := dsConfig{name: "ss-varden-3d", eps: 2000, minPts: 100}
	pts := loadDataset(ds.name, o.n, o.seed)
	threads := threadSweep()
	headers := []string{"variant"}
	for _, th := range threads {
		headers = append(headers, fmt.Sprintf("p=%d", th))
	}
	t := newTable(
		fmt.Sprintf("Figure 9: self-relative speedup — %s n=%d eps=%g minPts=%d",
			ds.name, o.n, ds.eps, ds.minPts),
		headers...)
	variants := append(ourVariants(), baselineVariants()...)
	for _, v := range variants {
		var t1 time.Duration
		cells := []string{v.name}
		for i, th := range threads {
			dur, _ := timeVariant(v, pts, ds.eps, ds.minPts, 0.01, th)
			if i == 0 {
				t1 = dur
			}
			cells = append(cells, fmtSpeedup(t1, dur))
		}
		t.add(cells...)
	}
	t.print()
}

// expFig10 regenerates Figure 10: running time vs rho for the approximate
// methods, with the best exact method as the reference line. Shape: mild
// decrease with rho; best exact remains competitive (often faster).
func expFig10(o options) {
	for _, ds := range []dsConfig{
		{name: "ss-simden-5d", eps: 1000, minPts: 100},
		{name: "ss-varden-5d", eps: 3000, minPts: 10},
	} {
		pts := loadDataset(ds.name, o.n, o.seed)
		rhos := []float64{0.001, 0.003, 0.01, 0.03, 0.1}
		headers := []string{"variant"}
		for _, r := range rhos {
			headers = append(headers, fmt.Sprintf("rho=%g", r))
		}
		t := newTable(
			fmt.Sprintf("Figure 10: time vs rho — %s n=%d eps=%g minPts=%d",
				ds.name, o.n, ds.eps, ds.minPts),
			headers...)
		for _, v := range []variant{
			methodVariant("our-approx-qt", "approx-qt", false),
			methodVariant("our-approx", "approx", false),
		} {
			cells := []string{v.name}
			for _, r := range rhos {
				dur, k := timeVariant(v, pts, ds.eps, ds.minPts, r, o.threads)
				cells = append(cells, fmt.Sprintf("%s k=%d", fmtDur(dur), k))
			}
			t.add(cells...)
		}
		// Best-exact reference.
		best := variant{}
		bestDur := time.Duration(0)
		for _, v := range ourVariants()[:4] {
			dur, _ := timeVariant(v, pts, ds.eps, ds.minPts, 0, o.threads)
			if best.name == "" || dur < bestDur {
				best, bestDur = v, dur
			}
		}
		ref := []string{"our-best-exact (" + best.name + ")"}
		for range rhos {
			ref = append(ref, fmtDur(bestDur))
		}
		t.add(ref...)
		t.print()
	}
}

// expFig11 regenerates Figure 11: the six 2D variants (grid/box x
// bcp/usec/delaunay) plus baselines, vs eps, minPts, n, and threads.
// Shape: grid beats box; delaunay slowest; grid-bcp fastest overall.
func expFig11(o options) {
	for _, ds := range []dsConfig{
		{name: "ss-simden-2d", eps: 400, minPts: 100,
			sweep: []float64{100, 200, 400, 1000, 3000}},
		{name: "ss-varden-2d", eps: 1000, minPts: 100,
			sweep: []float64{100, 300, 1000, 2000, 3000}},
	} {
		pts := loadDataset(ds.name, o.n, o.seed)
		variants := append(twoDVariants(), baselineVariants()...)

		// (a/e) time vs eps.
		t := newTable(
			fmt.Sprintf("Figure 11(a/e): time vs eps — %s n=%d minPts=%d", ds.name, o.n, ds.minPts),
			append([]string{"variant"}, epsHeaders(ds.sweep)...)...)
		for _, v := range variants {
			cells := []string{v.name}
			for _, eps := range ds.sweep {
				if (v.name == "hpdbscan" || v.name == "pdsdbscan") && eps > ds.eps*1.01 {
					cells = append(cells, "(skip)")
					continue
				}
				dur, k := timeVariant(v, pts, eps, ds.minPts, 0, o.threads)
				cells = append(cells, fmt.Sprintf("%s k=%d", fmtDur(dur), k))
			}
			t.add(cells...)
		}
		t.print()

		// (b/f) time vs minPts.
		minSweep := []int{10, 100, 1000, 10000}
		headers := []string{"variant"}
		for _, m := range minSweep {
			headers = append(headers, fmt.Sprintf("minPts=%d", m))
		}
		t = newTable(
			fmt.Sprintf("Figure 11(b/f): time vs minPts — %s n=%d eps=%g", ds.name, o.n, ds.eps),
			headers...)
		for _, v := range variants {
			cells := []string{v.name}
			for _, m := range minSweep {
				dur, k := timeVariant(v, pts, ds.eps, m, 0, o.threads)
				cells = append(cells, fmt.Sprintf("%s k=%d", fmtDur(dur), k))
			}
			t.add(cells...)
		}
		t.print()

		// (c/g) time vs n.
		sizes := []int{o.n / 100, o.n / 10, o.n}
		headers = []string{"variant"}
		for _, s := range sizes {
			headers = append(headers, fmt.Sprintf("n=%d", s))
		}
		t = newTable(
			fmt.Sprintf("Figure 11(c/g): time vs n — %s eps=%g minPts=%d", ds.name, ds.eps, ds.minPts),
			headers...)
		for _, v := range variants {
			cells := []string{v.name}
			for _, s := range sizes {
				sub := loadDataset(ds.name, s, o.seed)
				dur, k := timeVariant(v, sub, ds.eps, ds.minPts, 0, o.threads)
				cells = append(cells, fmt.Sprintf("%s k=%d", fmtDur(dur), k))
			}
			t.add(cells...)
		}
		t.print()

		// (d/h) speedup over best serial vs threads.
		threads := threadSweep()
		bestSerial := time.Duration(0)
		bestName := ""
		for _, v := range append(twoDVariants(), seqVariant()) {
			dur, _ := timeVariant(v, pts, ds.eps, ds.minPts, 0, 1)
			if bestName == "" || dur < bestSerial {
				bestSerial, bestName = dur, v.name
			}
		}
		headers = []string{"variant"}
		for _, th := range threads {
			headers = append(headers, fmt.Sprintf("p=%d", th))
		}
		t = newTable(
			fmt.Sprintf("Figure 11(d/h): speedup over best serial (%s, %s) — %s n=%d",
				bestName, fmtDur(bestSerial), ds.name, o.n),
			headers...)
		for _, v := range variants {
			cells := []string{v.name}
			for _, th := range threads {
				dur, _ := timeVariant(v, pts, ds.eps, ds.minPts, 0, th)
				cells = append(cells, fmtSpeedup(bestSerial, dur))
			}
			t.add(cells...)
		}
		t.print()
	}
}

// expTable2 regenerates Table 2: our-exact vs the RP-DBSCAN-style
// partition/merge comparator on the large-dataset simulators, sweeping eps
// as in the paper. Shape: our-exact wins by a large factor; the
// TeraClickLog regime (all points in one cell) is near-trivial.
func expTable2(o options) {
	configs := []struct {
		name   string
		sweep  []float64
		minPts int
	}{
		{"geolife", []float64{20, 40, 80, 160}, 100},
		{"cosmo", []float64{100, 200, 400, 800}, 100},
		{"osm", []float64{50, 100, 200, 400}, 100},
		{"teraclick", []float64{1500, 3000, 6000, 12000}, 100},
	}
	parts := runtime.NumCPU()
	rp := variant{name: "rpdbscan-sim", run: func(pts geom.Points, eps float64, minPts int, _ float64, workers int) int {
		return baseline.RPDBSCANSim(parallel.NewPool(workers), pts, eps, minPts, parts).NumClusters
	}}
	our := methodVariant("our-exact", "exact", false)
	for _, cfg := range configs {
		pts := loadDataset(cfg.name, o.n, o.seed)
		t := newTable(
			fmt.Sprintf("Table 2: %s n=%d minPts=%d (rpdbscan-sim with %d partitions)",
				cfg.name, o.n, cfg.minPts, parts),
			append([]string{"variant"}, epsHeaders(cfg.sweep)...)...)
		ourTimes := make([]time.Duration, len(cfg.sweep))
		cells := []string{our.name}
		for i, eps := range cfg.sweep {
			dur, k := timeVariant(our, pts, eps, cfg.minPts, 0, o.threads)
			ourTimes[i] = dur
			cells = append(cells, fmt.Sprintf("%s k=%d", fmtDur(dur), k))
		}
		t.add(cells...)
		cells = []string{rp.name}
		rpTimes := make([]time.Duration, len(cfg.sweep))
		for i, eps := range cfg.sweep {
			dur, k := timeVariant(rp, pts, eps, cfg.minPts, 0, o.threads)
			rpTimes[i] = dur
			cells = append(cells, fmt.Sprintf("%s k=%d", fmtDur(dur), k))
		}
		t.add(cells...)
		cells = []string{"our speedup"}
		for i := range cfg.sweep {
			cells = append(cells, fmtSpeedup(rpTimes[i], ourTimes[i]))
		}
		t.add(cells...)
		t.print()
	}
}
