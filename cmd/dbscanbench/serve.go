package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"pdbscan"
	"pdbscan/engine"
)

// serveReport is the BENCH_serve.json schema: the serving-path guarantees of
// the cancellable execution stack, measured — how fast a heavy run unwinds
// when its context is cancelled mid-ClusterCore, whether the owning
// Clusterer's next run is unaffected, and how the Engine behaves under mixed
// concurrent jobs on one shared budget. cmd/benchgate gates the latency and
// the two boolean invariants.
type serveReport struct {
	N       int     `json:"n"`
	Eps     float64 `json:"eps"`
	MinPts  int     `json:"min_pts"`
	Threads int     `json:"threads"`

	// Cancellation latency: time from cancel() to RunContext returning
	// context.Canceled, cancelled mid-ClusterCore (after MarkCore's share of
	// the baseline run, halfway into the clustering phase).
	CancelTrialsNS      []int64 `json:"cancel_trials_ns"`
	CancelLatencyP50NS  int64   `json:"cancel_latency_p50_ns"`
	CancelLatencyMaxNS  int64   `json:"cancel_latency_max_ns"`
	CancelledMidCluster int     `json:"cancelled_mid_cluster"` // trials that returned Canceled
	// RecoveredEqual: after every cancelled run, the very next uncancelled
	// RunContext on the same Clusterer was label-permutation-equal to the
	// monolithic baseline.
	RecoveredEqual bool `json:"recovered_equal"`

	// Engine throughput under mixed concurrent jobs (batch + streaming,
	// distinct Workers caps) on one shared budget.
	EngineBudget          int     `json:"engine_budget"`
	EngineJobs            int     `json:"engine_jobs"`
	EngineCompleted       int     `json:"engine_completed"`
	EngineCancelled       int     `json:"engine_cancelled"` // deadline jobs, by design
	EngineWallNS          int64   `json:"engine_wall_ns"`
	EngineJobsPerSec      float64 `json:"engine_jobs_per_sec"`
	EngineMaxWorkersInUse int     `json:"engine_max_workers_in_use"`
	// BudgetConformant: the sampled WorkersInUse never exceeded the budget.
	BudgetConformant bool `json:"budget_conformant"`
}

// expServe measures the serving-path behavior recorded in BENCH_serve.json:
// cancellation latency mid-ClusterCore on an o.n-point run (the acceptance
// floor is measured at 1M), recovery equality, and Engine throughput under
// mixed concurrent jobs.
func expServe(o options) {
	const eps, minPts = 1000.0, 100
	pts := loadDataset("ss-varden-2d", o.n, o.seed)
	threads := effectiveThreads(o.threads)
	rep := serveReport{
		N: pts.N, Eps: eps, MinPts: minPts, Threads: threads,
		RecoveredEqual: true,
	}
	cfg := pdbscan.Config{MinPts: minPts, Workers: o.threads, Shards: 1}

	c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, eps)
	if err != nil {
		fatalf("serve: %v", err)
	}
	if err := c.Prepare(pdbscan.Config{Workers: o.threads}); err != nil {
		fatalf("serve: %v", err)
	}
	baseline, err := c.Run(cfg)
	if err != nil {
		fatalf("serve: %v", err)
	}
	stats := c.LastRunStats()
	fmt.Printf("baseline monolithic run: total %v (mark %v, cluster %v, border %v)\n",
		stats.Total.Round(time.Millisecond), stats.MarkCore.Round(time.Millisecond),
		stats.ClusterCore.Round(time.Millisecond), stats.Border.Round(time.Millisecond))

	// Cancellation latency: cancel each trial midway into ClusterCore (after
	// the baseline's MarkCore duration plus half its ClusterCore duration)
	// and measure cancel -> return.
	cancelAt := stats.MarkCore + stats.ClusterCore/2
	const trials = 5
	tbl := newTable(fmt.Sprintf("cancellation latency: n=%d, cancel at +%v (mid-ClusterCore)", pts.N, cancelAt.Round(time.Millisecond)),
		"trial", "outcome", "latency", "recovered equal")
	for trial := 0; trial < trials; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancelled := make(chan time.Time, 1)
		timer := time.AfterFunc(cancelAt, func() {
			cancelled <- time.Now()
			cancel()
		})
		_, rerr := c.RunContext(ctx, cfg)
		ret := time.Now()
		timer.Stop()
		cancel()
		outcome := "completed before cancel"
		latency := time.Duration(0)
		if rerr != nil {
			if !errors.Is(rerr, context.Canceled) {
				fatalf("serve: cancelled run returned %v, want context.Canceled", rerr)
			}
			outcome = "context.Canceled"
			latency = ret.Sub(<-cancelled)
			rep.CancelTrialsNS = append(rep.CancelTrialsNS, latency.Nanoseconds())
			rep.CancelledMidCluster++
		}
		// The very next uncancelled run must match the baseline exactly.
		next, err := c.RunContext(context.Background(), cfg)
		if err != nil {
			fatalf("serve: run after cancel: %v", err)
		}
		equal := permutationEqual(next, baseline)
		if !equal {
			rep.RecoveredEqual = false
		}
		tbl.add(fmt.Sprint(trial), outcome, latency.Round(time.Microsecond).String(), fmt.Sprint(equal))
	}
	tbl.print()
	if len(rep.CancelTrialsNS) > 0 {
		sorted := append([]int64(nil), rep.CancelTrialsNS...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		rep.CancelLatencyP50NS = sorted[len(sorted)/2]
		rep.CancelLatencyMaxNS = sorted[len(sorted)-1]
		fmt.Printf("\ncancel latency: p50 %v, max %v over %d mid-run cancellations (floor: 50ms)\n",
			time.Duration(rep.CancelLatencyP50NS).Round(time.Microsecond),
			time.Duration(rep.CancelLatencyMaxNS).Round(time.Microsecond),
			rep.CancelledMidCluster)
	} else {
		fmt.Println("\nno trial was cancelled mid-run (dataset too small for the cancel point)")
	}

	runEngineThroughput(o, &rep)

	if o.jsonPath != "" {
		writeJSON(o.jsonPath, rep)
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
}

// runEngineThroughput pushes mixed concurrent jobs (batch sweeps with
// distinct Workers caps, streaming ticks, and deadline-bounded jobs) through
// one Engine and records throughput and budget conformance.
func runEngineThroughput(o options, rep *serveReport) {
	budget := rep.Threads
	e := engine.New(engine.Options{Budget: budget, MaxQueue: 256})
	defer e.Close()
	rep.EngineBudget = budget
	rep.BudgetConformant = true

	// Job targets: three batch clusterers and a streaming window, each a
	// tenth of the headline size.
	n := o.n / 10
	if n < 5000 {
		n = 5000
	}
	const eps, minPts = 1000.0, 100
	var clusterers []*pdbscan.Clusterer
	for i := 0; i < 3; i++ {
		pts := loadDataset("ss-varden-2d", n, o.seed+int64(i))
		c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, eps)
		if err != nil {
			fatalf("serve: %v", err)
		}
		if err := c.Prepare(pdbscan.Config{Workers: o.threads}); err != nil {
			fatalf("serve: %v", err)
		}
		clusterers = append(clusterers, c)
	}
	s, err := pdbscan.NewStreamingClusterer(2, eps)
	if err != nil {
		fatalf("serve: %v", err)
	}
	spts := loadDataset("ss-varden-2d", n, o.seed+9)
	if _, err := s.InsertFlat(spts.Data); err != nil {
		fatalf("serve: %v", err)
	}

	// Budget-conformance sampler.
	stop := make(chan struct{})
	var maxInUse, violated atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats()
			if int64(st.WorkersInUse) > maxInUse.Load() {
				maxInUse.Store(int64(st.WorkersInUse))
			}
			if st.WorkersInUse > st.Budget {
				violated.Add(1)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const rounds = 4
	start := time.Now()
	var jobs []*engine.Job
	ctxs := []context.CancelFunc{}
	for r := 0; r < rounds; r++ {
		// A MinPts sweep across the batch clusterers, distinct Workers caps.
		for i, c := range clusterers {
			cfg := pdbscan.Config{MinPts: minPts * (1 + i), Workers: 1 + (r+i)%budget}
			j, err := e.Submit(context.Background(), engine.Request{Clusterer: c, Config: cfg, Priority: i})
			if err != nil {
				fatalf("serve: submit: %v", err)
			}
			jobs = append(jobs, j)
		}
		// A streaming tick.
		j, err := e.Submit(context.Background(), engine.Request{Streaming: s, Config: pdbscan.Config{MinPts: minPts, Workers: 1 + r%budget}})
		if err != nil {
			fatalf("serve: submit streaming: %v", err)
		}
		jobs = append(jobs, j)
		// A deadline job designed to be cancelled mid-run. On a loaded host
		// the deadline can even expire before Submit's context check — that
		// is the job's designed outcome, not a failure.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		ctxs = append(ctxs, cancel)
		j, err = e.Submit(ctx, engine.Request{Clusterer: clusterers[0], Config: pdbscan.Config{MinPts: minPts, Workers: budget}})
		switch {
		case err == nil:
			jobs = append(jobs, j)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			rep.EngineCancelled++
			rep.EngineJobs++ // never entered the jobs slice; count it here
		default:
			fatalf("serve: submit deadline job: %v", err)
		}
	}
	for _, j := range jobs {
		err := j.Err()
		switch {
		case err == nil:
			rep.EngineCompleted++
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			rep.EngineCancelled++
		default:
			fatalf("serve: engine job failed: %v", err)
		}
	}
	wall := time.Since(start)
	close(stop)
	for _, cancel := range ctxs {
		cancel()
	}
	// EngineJobs already counts deadline jobs rejected at Submit; keep the
	// throughput figure on the same population so the report reconciles.
	rep.EngineJobs += len(jobs)
	rep.EngineWallNS = wall.Nanoseconds()
	rep.EngineJobsPerSec = float64(rep.EngineJobs) / wall.Seconds()
	rep.EngineMaxWorkersInUse = int(maxInUse.Load())
	if violated.Load() > 0 {
		rep.BudgetConformant = false
	}
	fmt.Printf("\nengine: %d mixed jobs (%d completed, %d deadline-cancelled) in %v -> %.1f jobs/s; budget %d, max in use %d, conformant %v\n",
		rep.EngineJobs, rep.EngineCompleted, rep.EngineCancelled,
		wall.Round(time.Millisecond), rep.EngineJobsPerSec,
		rep.EngineBudget, rep.EngineMaxWorkersInUse, rep.BudgetConformant)
}

// permutationEqual reports label-permutation equality of two results (core
// flags exact, labels up to a cluster-id bijection).
func permutationEqual(a, b *pdbscan.Result) bool {
	if a.NumClusters != b.NumClusters || len(a.Labels) != len(b.Labels) {
		return false
	}
	for i := range a.Core {
		if a.Core[i] != b.Core[i] {
			return false
		}
	}
	fwd := make(map[int32]int32, a.NumClusters)
	rev := make(map[int32]int32, a.NumClusters)
	for i := range a.Labels {
		x, y := a.Labels[i], b.Labels[i]
		if (x < 0) != (y < 0) {
			return false
		}
		if x < 0 {
			continue
		}
		if v, ok := fwd[x]; ok && v != y {
			return false
		}
		if v, ok := rev[y]; ok && v != x {
			return false
		}
		fwd[x], rev[y] = y, x
	}
	return true
}
