package main

import (
	"fmt"
	"time"

	"pdbscan"
)

// shardRun is one measured configuration of the shard experiment.
type shardRun struct {
	Method   string  `json:"method"`
	Shards   int     `json:"shards"` // 1 = monolithic, 0 = auto
	RunNS    int64   `json:"run_ns"`
	Clusters int     `json:"clusters"`
	Speedup  float64 `json:"speedup_vs_monolithic"`
}

// shardReport is the BENCH_shard.json schema: per-method clustering-phase
// latency of the monolithic path vs the sharded partition/merge path over a
// shared prepared Clusterer, plus the end-to-end one-shot comparison.
type shardReport struct {
	Dataset string     `json:"dataset"`
	N       int        `json:"n"`
	D       int        `json:"d"`
	Eps     float64    `json:"eps"`
	MinPts  int        `json:"min_pts"`
	Threads int        `json:"threads"` // GOMAXPROCS actually used
	Runs    []shardRun `json:"runs"`    // shards=0 rows measure the auto heuristic
	// BestSpeedup is the best sharded-vs-monolithic clustering-phase speedup
	// across methods and shard counts. On a single-core runner this hovers
	// near 1.0 (the shard phases serialize); the sharded path wins as cores
	// are added because shard-level parallelism replaces barrier-separated
	// parallel loops.
	BestSpeedup float64 `json:"best_speedup"`
	OneShot     struct {
		MonolithicNS int64   `json:"monolithic_ns"`
		ShardedNS    int64   `json:"sharded_ns"`
		Speedup      float64 `json:"speedup"`
	} `json:"one_shot"`
}

// expShard measures the sharded execution path against the monolithic one:
// same prepared cell structure, same methods, varying Config.Shards. With
// -json it records BENCH_shard.json.
func expShard(o options) {
	const eps, minPts = 1000.0, 100
	pts := loadDataset("ss-varden-2d", o.n, o.seed)

	threads := effectiveThreads(o.threads)
	rep := shardReport{
		Dataset: "ss-varden-2d", N: pts.N, D: pts.D,
		Eps: eps, MinPts: minPts, Threads: threads,
	}
	// Monolithic first (the baseline), fixed counts, thread-relative
	// brackets, and the auto heuristic itself (Shards = 0) — measured
	// through the library rather than mirrored here, so the report tracks
	// whatever the heuristic resolves to.
	shardCounts := []int{1, 2, 4, 8, 2 * threads, 4 * threads, 0}

	c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, eps)
	if err != nil {
		fatalf("shard: %v", err)
	}
	if err := c.Prepare(pdbscan.Config{Workers: o.threads}); err != nil {
		fatalf("shard: %v", err)
	}

	tbl := newTable(fmt.Sprintf("sharded vs monolithic clustering phase: n=%d eps=%g minPts=%d threads=%d",
		pts.N, eps, minPts, threads),
		"method", "shards", "run", "clusters", "speedup")
	rep.BestSpeedup = 0
	for _, m := range []pdbscan.Method{pdbscan.Method2DGridBCP, pdbscan.MethodExact, pdbscan.MethodExactQt} {
		var monoDur time.Duration
		seen := map[int]bool{}
		for _, k := range shardCounts {
			if seen[k] {
				continue
			}
			seen[k] = true
			cfg := pdbscan.Config{MinPts: minPts, Method: m, Shards: k, Workers: o.threads}
			// Warm once (lazy structures), measure the second run.
			if _, err := c.Run(cfg); err != nil {
				fatalf("shard: %v", err)
			}
			start := time.Now()
			res, err := c.Run(cfg)
			if err != nil {
				fatalf("shard: %v", err)
			}
			dur := time.Since(start)
			if k == 1 {
				monoDur = dur
			}
			sp := float64(monoDur.Nanoseconds()) / float64(dur.Nanoseconds())
			if k != 1 && sp > rep.BestSpeedup {
				rep.BestSpeedup = sp
			}
			rep.Runs = append(rep.Runs, shardRun{
				Method: string(m), Shards: k, RunNS: dur.Nanoseconds(),
				Clusters: res.NumClusters, Speedup: sp,
			})
			label := fmt.Sprint(k)
			if k == 0 {
				label = "auto"
			}
			tbl.add(string(m), label, fmtDur(dur), fmt.Sprint(res.NumClusters), fmtSpeedup(monoDur, dur))
		}
	}
	tbl.print()

	// End-to-end one-shot comparison (build + cluster) with auto shards.
	oneShot := func(shards int) time.Duration {
		start := time.Now()
		if _, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
			Eps: eps, MinPts: minPts, Shards: shards, Workers: o.threads,
		}); err != nil {
			fatalf("shard: %v", err)
		}
		return time.Since(start)
	}
	mono := oneShot(1)
	sharded := oneShot(0)
	rep.OneShot.MonolithicNS = mono.Nanoseconds()
	rep.OneShot.ShardedNS = sharded.Nanoseconds()
	rep.OneShot.Speedup = float64(mono.Nanoseconds()) / float64(sharded.Nanoseconds())
	fmt.Printf("\none-shot (build+cluster): monolithic %v vs auto-sharded %v -> %.2fx\n",
		mono.Round(time.Millisecond), sharded.Round(time.Millisecond), rep.OneShot.Speedup)
	fmt.Printf("best clustering-phase speedup over monolithic: %.2fx at %d threads\n",
		rep.BestSpeedup, threads)

	if o.jsonPath != "" {
		writeJSON(o.jsonPath, rep)
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
}
