package main

import (
	"fmt"
	"time"

	"pdbscan"
)

// emstQuery is one eps of the sweep: the hierarchy cut vs a from-scratch run
// at the same radius.
type emstQuery struct {
	Eps         float64 `json:"eps"`
	Clusters    int     `json:"clusters"`
	CutNs       int64   `json:"cut_ns"`
	RunNs       int64   `json:"run_ns"`
	LabelsEqual bool    `json:"labels_equal"`
}

// emstReport is the BENCH_emst.json schema: one EMST-backed hierarchy build
// amortized over a 16-eps sweep, against 16 independent from-scratch
// Clusterer runs on the same data.
type emstReport struct {
	Dataset string  `json:"dataset"`
	N       int     `json:"n"`
	D       int     `json:"d"`
	MinPts  int     `json:"min_pts"`
	EpsMax  float64 `json:"eps_max"`
	Seed    int64   `json:"seed"`
	Threads int     `json:"threads"`

	NumEdges int   `json:"num_edges"`
	BuildNs  int64 `json:"build_ns"`
	// SweepNs is BuildNs plus every cut; BatchNs is the sum of the
	// independent runs (each paying its own eps-keyed grid construction,
	// exactly what a caller without the hierarchy would pay).
	SweepNs    int64 `json:"sweep_ns"`
	BatchNs    int64 `json:"batch_ns"`
	QueryAvgNs int64 `json:"query_avg_ns"`
	QueryMaxNs int64 `json:"query_max_ns"`

	// AmortizationRatio is BatchNs / SweepNs — how much faster the sweep is
	// through one build + cheap cuts. The benchgate floor pins it at >= 5x.
	AmortizationRatio float64 `json:"amortization_ratio"`
	// QueriesEqual is true when every cut was label-permutation-equal to its
	// from-scratch run (same cluster count, same core flags, core labels in
	// bijection, border membership sets equal under it — the oracle suite's
	// equivalence). benchgate treats false as a hard failure regardless of
	// -strict.
	QueriesEqual bool `json:"queries_equal"`

	ExtractNs      int64 `json:"extract_ns"`
	StableClusters int   `json:"stable_clusters"`

	Queries []emstQuery `json:"queries"`
}

// expEmst measures the tentpole of the hierarchy subsystem: build the core
// distances and mutual-reachability EMST once, then answer a 16-eps sweep by
// CutEps replay, against 16 independent from-scratch runs. Every cut is
// cross-checked against its run (the same conformance the oracle suite pins)
// so the speedup cannot come from answering a different question.
func expEmst(o options) {
	const (
		name   = "ss-varden-2d"
		minPts = 10
		epsMax = 30.0
		sweeps = 16
	)
	pts := loadDataset(name, o.n, o.seed)
	fmt.Printf("EMST sweep: %s n=%d minPts=%d, %d eps in (0, %g]\n\n", name, pts.N, minPts, sweeps, epsMax)

	rep := emstReport{
		Dataset: name, N: pts.N, D: pts.D, MinPts: minPts, EpsMax: epsMax,
		Seed: o.seed, Threads: effectiveThreads(o.threads), QueriesEqual: true,
	}

	c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, epsMax)
	if err != nil {
		fatalf("emst: %v", err)
	}
	start := time.Now()
	h, err := c.BuildHierarchy(minPts)
	if err != nil {
		fatalf("emst: BuildHierarchy: %v", err)
	}
	build := time.Since(start)
	rep.BuildNs = build.Nanoseconds()
	rep.NumEdges = h.NumEdges()
	fmt.Printf("build: %d MR-EMST edges in %v\n", h.NumEdges(), build.Round(time.Millisecond))

	tbl := newTable("hierarchy cut vs from-scratch run",
		"eps", "clusters", "cut", "run", "equal")
	for i := 1; i <= sweeps; i++ {
		eps := epsMax * float64(i) / sweeps
		start = time.Now()
		cut, err := h.CutEps(eps)
		if err != nil {
			fatalf("emst: CutEps(%g): %v", eps, err)
		}
		cutNs := time.Since(start).Nanoseconds()

		start = time.Now()
		cb, err := pdbscan.NewClustererFlat(pts.Data, pts.D, eps)
		if err != nil {
			fatalf("emst: %v", err)
		}
		run, err := cb.Run(pdbscan.Config{MinPts: minPts, Bucketing: true, Workers: o.threads})
		if err != nil {
			fatalf("emst: Run(eps=%g): %v", eps, err)
		}
		runNs := time.Since(start).Nanoseconds()

		equal := equivalentClusterings(cut, run)
		if !equal {
			rep.QueriesEqual = false
		}
		rep.Queries = append(rep.Queries, emstQuery{
			Eps: eps, Clusters: cut.NumClusters,
			CutNs: cutNs, RunNs: runNs, LabelsEqual: equal,
		})
		rep.SweepNs += cutNs
		rep.BatchNs += runNs
		if cutNs > rep.QueryMaxNs {
			rep.QueryMaxNs = cutNs
		}
		tbl.add(fmt.Sprintf("%.4g", eps), fmt.Sprint(cut.NumClusters),
			fmtDur(time.Duration(cutNs)), fmtDur(time.Duration(runNs)),
			fmt.Sprint(equal))
	}
	tbl.print()

	rep.QueryAvgNs = rep.SweepNs / sweeps
	rep.SweepNs += rep.BuildNs
	rep.AmortizationRatio = float64(rep.BatchNs) / float64(rep.SweepNs)

	start = time.Now()
	stable, err := h.ExtractStable(0)
	if err != nil {
		fatalf("emst: ExtractStable: %v", err)
	}
	rep.ExtractNs = time.Since(start).Nanoseconds()
	rep.StableClusters = stable.NumClusters

	fmt.Printf("\nsweep %v (build %v + %d cuts avg %v) vs batch %v: %.2fx amortization; all equal: %v\n",
		time.Duration(rep.SweepNs).Round(time.Millisecond),
		build.Round(time.Millisecond), sweeps,
		time.Duration(rep.QueryAvgNs).Round(time.Microsecond),
		time.Duration(rep.BatchNs).Round(time.Millisecond),
		rep.AmortizationRatio, rep.QueriesEqual)
	fmt.Printf("ExtractStable: %d stable clusters in %v\n",
		rep.StableClusters, time.Duration(rep.ExtractNs).Round(time.Millisecond))

	if o.jsonPath != "" {
		writeJSON(o.jsonPath, rep)
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
}

// equivalentClusterings reports whether two results describe the same
// clustering up to label permutation: identical core flags, a consistent
// core-label bijection, and per-point membership sets (primary label, or the
// full border membership list) equal under that bijection. Border points may
// take different primary labels on the two sides — a multi-membership border
// point's primary is a numbering artifact, not a clustering difference.
func equivalentClusterings(a, b *pdbscan.Result) bool {
	if len(a.Labels) != len(b.Labels) || a.NumClusters != b.NumClusters {
		return false
	}
	ab := make([]int32, a.NumClusters)
	ba := make([]int32, b.NumClusters)
	for i := range ab {
		ab[i] = -1
	}
	for i := range ba {
		ba[i] = -1
	}
	for i := range a.Labels {
		if a.Core[i] != b.Core[i] {
			return false
		}
		if !a.Core[i] {
			continue
		}
		la, lb := a.Labels[i], b.Labels[i]
		if ab[la] == -1 && ba[lb] == -1 {
			ab[la], ba[lb] = lb, la
		} else if ab[la] != lb || ba[lb] != la {
			return false
		}
	}
	memberships := func(r *pdbscan.Result, i int) []int32 {
		if m, ok := r.Border[int32(i)]; ok {
			return m
		}
		if r.Labels[i] < 0 {
			return nil
		}
		return []int32{r.Labels[i]}
	}
	for i := range a.Labels {
		ma, mb := memberships(a, i), memberships(b, i)
		if len(ma) != len(mb) {
			return false
		}
		set := make(map[int32]bool, len(ma))
		for _, l := range ma {
			set[ab[l]] = true
		}
		for _, l := range mb {
			if !set[l] {
				return false
			}
		}
	}
	return true
}
