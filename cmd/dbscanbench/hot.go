package main

import (
	"fmt"
	"runtime"
	"time"

	"pdbscan/internal/core"
	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
)

// hotRun is one measured configuration of the hot-path experiment.
type hotRun struct {
	Method string `json:"method"`
	D      int    `json:"d"`
	N      int    `json:"n"`
	// Mode is one of:
	//   - "before": generic-D distance loops in the pipeline, no scratch
	//     arena, cell-major payload disabled — the unspecialized fallback the
	//     kernels replace (the quadtree and k-d tree keep their own build-time
	//     kernels, so the *-qt rows isolate mostly the arena);
	//   - "indirect": dimension-specialized kernels + pooled scratch, but
	//     ForceIndirectLayout — every distance evaluation gathers its point
	//     through the per-cell index list;
	//   - "contiguous": the same kernels and arena over the cell-major payload,
	//     where each cell's rows are one contiguous coordinate range — the
	//     steady state of repeated Clusterer.Run calls.
	// indirect vs contiguous isolates the memory-layout win alone.
	Mode        string  `json:"mode"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Clusters    int     `json:"clusters"`
}

// hotReport is the BENCH_hot.json schema: before/after clustering-phase
// latency and allocation counts across methods and dimensionalities, over
// prebuilt cell structures (grid construction excluded — it is paid once per
// Clusterer, not per run).
type hotReport struct {
	Seed    int64    `json:"seed"`
	Threads int      `json:"threads"`
	Runs    []hotRun `json:"runs"`
	// Headline2DGridSpeedup is before/after ns-per-op for 2d-grid-bcp at the
	// full point count (the paper's fastest 2D method — the hot path the
	// kernels and arena target).
	Headline2DGridSpeedup float64 `json:"headline_2d_grid_speedup"`
	// HeadlineAllocRatio is seed-vs-now allocs-per-op for the same
	// configuration: how many fewer heap allocations a steady-state
	// Clusterer.Run makes than the pre-optimization implementation (see
	// seedAllocsPerOp). The in-run "before" mode cannot reproduce the seed's
	// allocation behavior — its per-pair and per-cell allocations were
	// removed structurally, not by a toggle — so the seed count is pinned
	// from a direct measurement instead.
	HeadlineAllocRatio float64 `json:"headline_alloc_ratio"`
	// SeedAllocsPerOp echoes the pinned seed measurement the ratio is
	// computed against.
	SeedAllocsPerOp float64 `json:"seed_allocs_per_op"`
	// ModeAllocRatio is the in-run before/after allocs-per-op ratio for the
	// headline configuration (generic+unpooled vs specialized+arena): the
	// part of the allocation win the arena alone accounts for.
	ModeAllocRatio float64 `json:"mode_alloc_ratio"`
	// HeadlineLayoutSpeedup is indirect/contiguous ns-per-op for 2d-grid-bcp
	// at the full point count: the clustering-phase win of the cell-major
	// payload alone, with kernels and arena held identical on both sides.
	HeadlineLayoutSpeedup float64 `json:"headline_layout_speedup"`
}

// seedAllocsPerOp is the measured allocs-per-op of a repeated, steady-state
// Clusterer.Run before this optimization pass (commit 371f3d5: generic
// distance loops, per-run scratch rebuild, per-pair BCP filter allocations),
// on exactly the headline configuration: ss-varden-2d n=100k seed=1,
// eps=1000, minPts=100, method 2d-grid-bcp, Workers=1, Shards=1, measured
// with testing.AllocsPerRun. Allocation counts are deterministic for a fixed
// configuration and worker budget (they do not depend on machine speed), so
// the pinned value remains comparable across hosts. Per-op allocations are
// dominated by per-pair/per-cell work and therefore roughly scale with n;
// comparing against a larger -n only widens the ratio.
const seedAllocsPerOp = 4285

// hotConfig is one method x dimension cell of the experiment matrix.
type hotConfig struct {
	name  string
	d     int
	scale int // divisor applied to o.n (non-headline cells run smaller)
	mark  core.MarkStrategy
	graph core.GraphStrategy
	rho   float64
}

// expHot measures the clustering phase (MarkCore + ClusterCore +
// ClusterBorder over prepared cells) in three modes: "before" runs the
// generic-D distance loops with no arena and no cell-major payload (every
// run allocates its scratch), "indirect" runs the dimension-specialized
// kernels with a warmed arena but ForceIndirectLayout (point gathers through
// per-cell index lists), and "contiguous" runs the same kernels and arena
// over the cell-major payload (the steady state of repeated Clusterer.Run).
// Results of all modes are asserted identical on every configuration. With
// -json it records BENCH_hot.json.
func expHot(o options) {
	const minPts = 100
	threads := effectiveThreads(o.threads)
	ex := parallel.NewPool(o.threads)
	rep := hotReport{Seed: o.seed, Threads: threads}

	matrix := []hotConfig{
		{name: "2d-grid-bcp", d: 2, scale: 1, mark: core.MarkScan, graph: core.GraphBCP},
		{name: "2d-grid-usec", d: 2, scale: 5, mark: core.MarkScan, graph: core.GraphUSEC},
		{name: "exact", d: 2, scale: 5, mark: core.MarkScan, graph: core.GraphBCP},
		{name: "exact-qt", d: 2, scale: 5, mark: core.MarkQuadtree, graph: core.GraphQuadtree},
		{name: "approx", d: 2, scale: 5, mark: core.MarkScan, graph: core.GraphApprox, rho: 0.01},
		{name: "exact", d: 3, scale: 5, mark: core.MarkScan, graph: core.GraphBCP},
		{name: "exact-qt", d: 3, scale: 5, mark: core.MarkQuadtree, graph: core.GraphQuadtree},
		{name: "approx", d: 3, scale: 5, mark: core.MarkScan, graph: core.GraphApprox, rho: 0.01},
		{name: "exact", d: 5, scale: 5, mark: core.MarkScan, graph: core.GraphBCP},
		{name: "approx", d: 5, scale: 5, mark: core.MarkScan, graph: core.GraphApprox, rho: 0.01},
	}

	tbl := newTable(fmt.Sprintf("hot path: minPts=%d threads=%d (before = generic kernel, no arena, indirect; indirect/contig = specialized + pooled, layout toggled)", minPts, threads),
		"method", "d", "n", "before", "indirect", "contig", "speedup", "layout", "allocs before", "allocs after", "ratio")

	// Cell structures are shared per (d, n): they depend only on points/eps.
	type cellKey struct{ d, n int }
	cellCache := map[cellKey]*grid.Cells{}

	for _, hc := range matrix {
		n := o.n / hc.scale
		if n < 10000 {
			n = min(10000, o.n)
		}
		key := cellKey{hc.d, n}
		cells, ok := cellCache[key]
		if !ok {
			pts := loadDataset(fmt.Sprintf("ss-varden-%dd", hc.d), n, o.seed)
			shuffleRows(pts, uint64(o.seed))
			eps := hotEps(hc.d)
			cells = grid.BuildGrid(ex, pts, eps)
			if pts.D <= 3 {
				cells.ComputeNeighborsEnum(ex)
			} else {
				cells.ComputeNeighborsKD(ex)
			}
			cellCache[key] = cells
		}

		params := core.Params{
			MinPts: minPts, Rho: hc.rho, Mark: hc.mark, Graph: hc.graph, Exec: ex,
		}
		before := measureHot(cells, params, true, true, nil)
		arena := core.NewArena()
		indirect := measureHot(cells, params, false, true, arena)
		contig := measureHot(cells, params, false, false, arena)
		if before.Clusters != indirect.Clusters || before.Clusters != contig.Clusters {
			fatalf("hot: %s %dd cluster count diverged: before %d, indirect %d, contiguous %d",
				hc.name, hc.d, before.Clusters, indirect.Clusters, contig.Clusters)
		}
		before.Method, before.D, before.N, before.Mode = hc.name, hc.d, n, "before"
		indirect.Method, indirect.D, indirect.N, indirect.Mode = hc.name, hc.d, n, "indirect"
		contig.Method, contig.D, contig.N, contig.Mode = hc.name, hc.d, n, "contiguous"
		rep.Runs = append(rep.Runs, before, indirect, contig)

		speedup := float64(before.NsPerOp) / float64(contig.NsPerOp)
		layout := float64(indirect.NsPerOp) / float64(contig.NsPerOp)
		ratio := before.AllocsPerOp / contig.AllocsPerOp
		if hc.name == "2d-grid-bcp" {
			rep.Headline2DGridSpeedup = speedup
			rep.HeadlineLayoutSpeedup = layout
			rep.SeedAllocsPerOp = seedAllocsPerOp
			rep.HeadlineAllocRatio = seedAllocsPerOp / contig.AllocsPerOp
			rep.ModeAllocRatio = ratio
		}
		tbl.add(hc.name, fmt.Sprint(hc.d), fmt.Sprint(n),
			fmtDur(time.Duration(before.NsPerOp)), fmtDur(time.Duration(indirect.NsPerOp)), fmtDur(time.Duration(contig.NsPerOp)),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%.2fx", layout),
			fmt.Sprintf("%.0f", before.AllocsPerOp), fmt.Sprintf("%.0f", contig.AllocsPerOp),
			fmt.Sprintf("%.1fx", ratio))
	}
	tbl.print()
	fmt.Printf("\nheadline (2d-grid-bcp, n=%d): %.2fx clustering-phase speedup (%.2fx from the cell-major layout alone); %.0fx fewer allocs/op than the seed implementation (%.0f -> measured above), %.1fx vs the in-run generic/unpooled mode\n",
		o.n, rep.Headline2DGridSpeedup, rep.HeadlineLayoutSpeedup, rep.HeadlineAllocRatio, rep.SeedAllocsPerOp, rep.ModeAllocRatio)

	if o.jsonPath != "" {
		writeJSON(o.jsonPath, rep)
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
}

// shuffleRows deterministically permutes the dataset's row order
// (Fisher-Yates over a splitmix64 stream). The synthetic generators emit
// points cluster-by-cluster, an input order so spatially sorted that
// same-cell points are already adjacent in memory — which hides the
// indirect layout's gather cost and would understate the cell-major
// payload's win. Real ingestion orders carry no such correlation between
// array position and space; the shuffle restores that, and all three modes
// see the identical permuted input.
func shuffleRows(pts geom.Points, seed uint64) {
	state := seed*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	d := pts.D
	for i := pts.N - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		for k := 0; k < d; k++ {
			pts.Data[i*d+k], pts.Data[j*d+k] = pts.Data[j*d+k], pts.Data[i*d+k]
		}
	}
}

// hotEps returns the experiment eps per dimension (matched to the seed
// spreader's coordinate range so cluster structure is non-trivial).
func hotEps(d int) float64 {
	switch d {
	case 2:
		return 1000
	case 3:
		return 2000
	default:
		return 4000
	}
}

// measureHot times repeated core.Run calls over prepared cells and reports
// per-op latency and allocation counts. One warmup run is excluded (it pays
// lazy builds and, in after mode, the arena's first-fill); measurement then
// loops until both a minimum op count and a minimum wall time are reached.
func measureHot(cells *grid.Cells, params core.Params, forceGeneric, forceIndirect bool, arena *core.Arena) hotRun {
	params.ForceGenericKernel = forceGeneric
	params.ForceIndirectLayout = forceIndirect
	params.Arena = arena
	res, err := core.Run(cells, params)
	if err != nil {
		fatalf("hot: %v", err)
	}
	clusters := res.NumClusters

	const minOps = 3
	const minWall = 1500 * time.Millisecond
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ops := 0
	for ops < minOps || time.Since(start) < minWall {
		if _, err := core.Run(cells, params); err != nil {
			fatalf("hot: %v", err)
		}
		ops++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return hotRun{
		NsPerOp:     elapsed.Nanoseconds() / int64(ops),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(ops),
		Clusters:    clusters,
	}
}
