package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
)

// streamTick is one measured tick of the sliding-window replay.
type streamTick struct {
	IncrementalNS int64 `json:"incremental_ns"`
	ScratchNS     int64 `json:"scratch_ns"`
	Cells         int   `json:"cells"`
	DirtyCells    int   `json:"dirty_cells"`
	Clusters      int   `json:"clusters"`
}

// streamReport is the BENCH_stream.json schema: the per-tick latency of the
// incremental streaming path vs from-scratch re-clustering of the same
// window, plus from-scratch timings of the standard methods on the final
// window so one file tracks the whole perf trajectory.
type streamReport struct {
	Dataset       string           `json:"dataset"`
	Window        int              `json:"window"`
	Batch         int              `json:"batch"`
	Eps           float64          `json:"eps"`
	MinPts        int              `json:"min_pts"`
	Threads       int              `json:"threads"`
	Ticks         []streamTick     `json:"ticks"`
	IncMeanNS     int64            `json:"incremental_mean_ns"`
	IncP95NS      int64            `json:"incremental_p95_ns"`
	ScratchMeanNS int64            `json:"scratch_mean_ns"`
	Speedup       float64          `json:"speedup"`
	DirtyFrac     float64          `json:"dirty_cell_fraction"`
	Methods       map[string]int64 `json:"method_scratch_ns"`
}

// expStream replays a sliding window over the drift-2d stream, measuring the
// per-tick latency of StreamingClusterer.Run against from-scratch Cluster on
// the identical window, and (with -json) records the report.
func expStream(o options) {
	window := o.n / 5
	if window < 2000 {
		window = 2000
	}
	batch := window / 100
	const eps, minPts = 4.0, 10
	ticks := 20

	pts := dataset.DriftStream(dataset.DriftStreamConfig{N: window + (ticks+1)*batch, D: 2, Seed: o.seed})
	rows := make([][]float64, pts.N)
	for i := range rows {
		rows[i] = pts.At(i)
	}

	s, err := pdbscan.NewStreamingClusterer(2, eps)
	if err != nil {
		fatalf("stream: %v", err)
	}
	cfg := pdbscan.Config{MinPts: minPts, Method: pdbscan.Method2DGridBCP, Workers: o.threads}
	if _, err := s.Insert(rows[:window]); err != nil {
		fatalf("stream: %v", err)
	}
	if _, err := s.Run(cfg); err != nil {
		fatalf("stream: %v", err)
	}

	rep := streamReport{
		Dataset: "drift-2d", Window: window, Batch: batch,
		Eps: eps, MinPts: minPts, Threads: effectiveThreads(o.threads),
		Methods: map[string]int64{},
	}
	tbl := newTable(fmt.Sprintf("streaming ticks: window=%d batch=%d eps=%g minPts=%d", window, batch, eps, minPts),
		"tick", "dirty/cells", "incremental", "scratch", "speedup")
	next := window
	var incSum, scrSum time.Duration
	for tick := 0; tick < ticks; tick++ {
		if _, err := s.Insert(rows[next : next+batch]); err != nil {
			fatalf("stream: %v", err)
		}
		next += batch
		s.Window(window)

		start := time.Now()
		res, err := s.Run(cfg)
		if err != nil {
			fatalf("stream: %v", err)
		}
		incDur := time.Since(start)
		stats := s.LastRunStats()

		cur := make([][]float64, 0, window)
		for _, id := range s.IDs() {
			row, _ := s.Point(id)
			cur = append(cur, row)
		}
		scratchCfg := cfg
		scratchCfg.Eps = eps
		start = time.Now()
		if _, err := pdbscan.Cluster(cur, scratchCfg); err != nil {
			fatalf("stream: %v", err)
		}
		scrDur := time.Since(start)

		incSum += incDur
		scrSum += scrDur
		rep.Ticks = append(rep.Ticks, streamTick{
			IncrementalNS: incDur.Nanoseconds(),
			ScratchNS:     scrDur.Nanoseconds(),
			Cells:         stats.NumCells,
			DirtyCells:    stats.DirtyCells,
			Clusters:      res.NumClusters,
		})
		tbl.add(fmt.Sprint(tick),
			fmt.Sprintf("%d/%d", stats.DirtyCells, stats.NumCells),
			incDur.Round(time.Microsecond).String(),
			scrDur.Round(time.Microsecond).String(),
			fmtSpeedup(scrDur, incDur))
	}
	tbl.print()

	rep.IncMeanNS = incSum.Nanoseconds() / int64(ticks)
	rep.ScratchMeanNS = scrSum.Nanoseconds() / int64(ticks)
	rep.Speedup = float64(rep.ScratchMeanNS) / float64(rep.IncMeanNS)
	incNS := make([]int64, 0, ticks)
	dirtySum, cellSum := 0, 0
	for _, tk := range rep.Ticks {
		incNS = append(incNS, tk.IncrementalNS)
		dirtySum += tk.DirtyCells
		cellSum += tk.Cells
	}
	sort.Slice(incNS, func(i, j int) bool { return incNS[i] < incNS[j] })
	rep.IncP95NS = incNS[(len(incNS)*95)/100]
	rep.DirtyFrac = float64(dirtySum) / float64(cellSum)
	fmt.Printf("\nmean tick: incremental %v vs scratch %v -> %.2fx speedup at %.1f%% dirty cells\n",
		time.Duration(rep.IncMeanNS).Round(time.Microsecond),
		time.Duration(rep.ScratchMeanNS).Round(time.Microsecond),
		rep.Speedup, 100*rep.DirtyFrac)

	// From-scratch timings of the standard methods on the final window, so
	// the JSON also tracks the non-streaming perf trajectory.
	curPts := make([]float64, 0, window*2)
	for _, id := range s.IDs() {
		row, _ := s.Point(id)
		curPts = append(curPts, row...)
	}
	for _, m := range []pdbscan.Method{pdbscan.MethodExact, pdbscan.MethodExactQt, pdbscan.Method2DGridBCP} {
		start := time.Now()
		if _, err := pdbscan.ClusterFlat(curPts, 2, pdbscan.Config{
			Eps: eps, MinPts: minPts, Method: m, Workers: o.threads,
		}); err != nil {
			fatalf("stream: %v", err)
		}
		rep.Methods[string(m)] = time.Since(start).Nanoseconds()
	}

	if o.jsonPath != "" {
		writeJSON(o.jsonPath, rep)
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("json: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("json: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
