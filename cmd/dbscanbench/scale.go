package main

import (
	"fmt"
	"runtime"
	"time"

	"pdbscan"
	"pdbscan/internal/metrics"
)

// scaleSeries is one (method, execution mode) scaling curve: clustering-phase
// latency at each swept worker count on a shared prepared Clusterer.
type scaleSeries struct {
	Method string `json:"method"`
	Mode   string `json:"mode"` // "monolithic" (Shards=1) or "sharded" (Shards=auto)
	// ThreadNS[i] is the measured run at ThreadSweep[i] workers (GOMAXPROCS
	// pinned to the same count, so the runtime really uses that many CPUs).
	ThreadNS []int64 `json:"thread_ns"`
	// SelfSpeedup[i] = ThreadNS[0] / ThreadNS[i] (1-worker run of this series
	// as the base); VsBestSerial[i] uses the fastest 1-worker run across all
	// monolithic series instead, the paper's Figure 8 convention.
	SelfSpeedup  []float64 `json:"self_speedup"`
	VsBestSerial []float64 `json:"vs_best_serial"`
	Clusters     int       `json:"clusters"`
}

// sampledRow is one sampled-core (DBSCAN++) quality measurement: the
// clustering-phase latency and agreement of a sampled run against the exact
// run on the same prepared Clusterer.
type sampledRow struct {
	Dataset string  `json:"dataset"`
	N       int     `json:"n"`
	Eps     float64 `json:"eps"`
	MinPts  int     `json:"min_pts"`
	Threads int     `json:"threads"` // effective worker count used
	Sampler string  `json:"sampler"`
	Frac    float64 `json:"frac"`
	Seed    int64   `json:"seed"`

	ExactNS   int64   `json:"exact_ns"`
	SampledNS int64   `json:"sampled_ns"`
	Speedup   float64 `json:"speedup"` // exact_ns / sampled_ns

	// Agreement of the sampled labeling with the exact one (noise treated as
	// per-point singletons, the convention both metrics share).
	ARI float64 `json:"ari"`
	NMI float64 `json:"nmi"`

	ExactClusters   int `json:"exact_clusters"`
	SampledClusters int `json:"sampled_clusters"`
}

// scaleReport is the BENCH_scale.json schema: multi-core scaling curves per
// method for both execution modes, plus the sampled-core accuracy/speedup
// trade-off rows benchgate -scale gates. NumCPU is recorded so the gate can
// tell a regression from a machine that cannot scale (one hardware CPU).
type scaleReport struct {
	Dataset string  `json:"dataset"`
	N       int     `json:"n"`
	D       int     `json:"d"`
	Eps     float64 `json:"eps"`
	MinPts  int     `json:"min_pts"`
	Seed    int64   `json:"seed"`
	NumCPU  int     `json:"num_cpu"`

	ThreadSweep      []int         `json:"thread_sweep"`
	BestSerialNS     int64         `json:"best_serial_ns"`
	BestSerialMethod string        `json:"best_serial_method"`
	Series           []scaleSeries `json:"series"`
	// TopSelfSpeedup is the best self-relative speedup at the top of the
	// sweep across all series — the headline the scaling floor gates (skipped
	// when NumCPU == 1: a single hardware CPU cannot speed itself up).
	TopSelfSpeedup float64 `json:"top_self_speedup"`

	Sampled []sampledRow `json:"sampled"`
}

// expScale measures multi-core scaling (1..NumCPU workers, self-relative and
// vs the best serial run, monolithic and sharded) and the sampled-core
// approximate mode (DBSCAN++: speedup and ARI/NMI vs exact per dataset).
// With -json it records BENCH_scale.json for cmd/benchgate -scale.
func expScale(o options) {
	const eps, minPts = 1000.0, 100
	pts := loadDataset("ss-varden-2d", o.n, o.seed)

	// Always sweep at least two worker counts: on a single-CPU machine the
	// second point documents (rather than hides) the absence of scaling, and
	// benchgate uses num_cpu to decide whether the floor applies.
	sweep := threadSweep()
	if len(sweep) < 2 {
		sweep = append(sweep, sweep[len(sweep)-1]*2)
	}

	rep := scaleReport{
		Dataset: "ss-varden-2d", N: pts.N, D: pts.D,
		Eps: eps, MinPts: minPts, Seed: o.seed,
		NumCPU: runtime.NumCPU(), ThreadSweep: sweep,
	}

	c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, eps)
	if err != nil {
		fatalf("scale: %v", err)
	}
	if err := c.Prepare(pdbscan.Config{}); err != nil {
		fatalf("scale: %v", err)
	}

	// Clustering-phase timing: warm once per configuration (lazy structures,
	// partition caches), measure the second run under pinned GOMAXPROCS.
	measure := func(cfg pdbscan.Config, threads int) (time.Duration, *pdbscan.Result) {
		old := runtime.GOMAXPROCS(threads)
		defer runtime.GOMAXPROCS(old)
		cfg.Workers = threads
		if _, err := c.Run(cfg); err != nil {
			fatalf("scale: %v", err)
		}
		start := time.Now()
		res, err := c.Run(cfg)
		if err != nil {
			fatalf("scale: %v", err)
		}
		return time.Since(start), res
	}

	methods := []pdbscan.Method{pdbscan.Method2DGridBCP, pdbscan.MethodExact}
	modes := []struct {
		name   string
		shards int
	}{{"monolithic", 1}, {"sharded", 0}}

	tbl := newTable(fmt.Sprintf("multi-core scaling (clustering phase): n=%d eps=%g minPts=%d numCPU=%d",
		pts.N, eps, minPts, rep.NumCPU),
		"method", "mode", "threads", "run", "self-speedup")
	for _, m := range methods {
		for _, mode := range modes {
			s := scaleSeries{Method: string(m), Mode: mode.name}
			for _, th := range sweep {
				dur, res := measure(pdbscan.Config{MinPts: minPts, Method: m, Shards: mode.shards}, th)
				s.ThreadNS = append(s.ThreadNS, dur.Nanoseconds())
				s.Clusters = res.NumClusters
				tbl.add(string(m), mode.name, fmt.Sprint(th), fmtDur(dur),
					fmtSpeedup(time.Duration(s.ThreadNS[0]), dur))
			}
			for _, ns := range s.ThreadNS {
				s.SelfSpeedup = append(s.SelfSpeedup, float64(s.ThreadNS[0])/float64(ns))
			}
			if mode.shards == 1 && (rep.BestSerialNS == 0 || s.ThreadNS[0] < rep.BestSerialNS) {
				rep.BestSerialNS = s.ThreadNS[0]
				rep.BestSerialMethod = string(m)
			}
			rep.Series = append(rep.Series, s)
		}
	}
	for i := range rep.Series {
		s := &rep.Series[i]
		for _, ns := range s.ThreadNS {
			s.VsBestSerial = append(s.VsBestSerial, float64(rep.BestSerialNS)/float64(ns))
		}
		if top := s.SelfSpeedup[len(s.SelfSpeedup)-1]; top > rep.TopSelfSpeedup {
			rep.TopSelfSpeedup = top
		}
	}
	tbl.print()
	fmt.Printf("\nbest serial: %s at %v; top self-relative speedup at %d threads: %.2fx (numCPU=%d)\n",
		rep.BestSerialMethod, time.Duration(rep.BestSerialNS).Round(time.Millisecond),
		sweep[len(sweep)-1], rep.TopSelfSpeedup, rep.NumCPU)

	rep.Sampled = sampledRows(o)

	if o.jsonPath != "" {
		writeJSON(o.jsonPath, rep)
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
}

// sampledRows measures the DBSCAN++ trade-off on the varden datasets: the
// clustering-phase speedup of computing core status only for a sample, and
// the agreement (ARI/NMI) of the resulting labeling with the exact run.
func sampledRows(o options) []sampledRow {
	// Quality rows run at a capped n: the greedy K-center sampler is
	// O(m * n), so the full -n of the scaling sweep would make it dominate
	// the experiment without changing the accuracy story.
	qn := o.n
	if qn > 200000 {
		qn = 200000
	}
	threads := effectiveThreads(o.threads)
	datasets := []struct {
		name   string
		eps    float64
		minPts int
		method pdbscan.Method
	}{
		{"ss-varden-2d", 1000, 100, pdbscan.Method2DGridBCP},
		{"ss-varden-3d", 2000, 100, pdbscan.MethodExact},
	}
	samplers := []struct {
		kind pdbscan.Sampler
		frac float64
	}{
		{pdbscan.SamplerUniform, 0.1},
		{pdbscan.SamplerUniform, 0.05},
		{pdbscan.SamplerKCenter, 0.05},
	}
	const seed = 5

	var rows []sampledRow
	for _, ds := range datasets {
		pts := loadDataset(ds.name, qn, o.seed)
		c, err := pdbscan.NewClustererFlat(pts.Data, pts.D, ds.eps)
		if err != nil {
			fatalf("scale: %v", err)
		}
		if err := c.Prepare(pdbscan.Config{Workers: o.threads}); err != nil {
			fatalf("scale: %v", err)
		}
		run := func(cfg pdbscan.Config) (time.Duration, *pdbscan.Result) {
			cfg.MinPts = ds.minPts
			cfg.Method = ds.method
			cfg.Workers = o.threads
			// Warm run: lazy structures, and for sampled configs the cached
			// mask — so the measured run is the clustering phase alone.
			if _, err := c.Run(cfg); err != nil {
				fatalf("scale: %v", err)
			}
			start := time.Now()
			res, err := c.Run(cfg)
			if err != nil {
				fatalf("scale: %v", err)
			}
			return time.Since(start), res
		}
		exactDur, exact := run(pdbscan.Config{})

		tbl := newTable(fmt.Sprintf("sampled-core (DBSCAN++) vs exact: %s n=%d eps=%g minPts=%d threads=%d (exact %v)",
			ds.name, qn, ds.eps, ds.minPts, threads, exactDur.Round(time.Millisecond)),
			"sampler", "frac", "run", "speedup", "ARI", "NMI", "clusters")
		for _, sp := range samplers {
			dur, res := run(pdbscan.Config{Sampler: sp.kind, SampleFrac: sp.frac, SampleSeed: seed})
			row := sampledRow{
				Dataset: ds.name, N: qn, Eps: ds.eps, MinPts: ds.minPts,
				Threads: threads, Sampler: string(sp.kind), Frac: sp.frac, Seed: seed,
				ExactNS: exactDur.Nanoseconds(), SampledNS: dur.Nanoseconds(),
				Speedup:         float64(exactDur.Nanoseconds()) / float64(dur.Nanoseconds()),
				ARI:             metrics.AdjustedRandIndex(exact.Labels, res.Labels),
				NMI:             metrics.NormalizedMutualInfo(exact.Labels, res.Labels),
				ExactClusters:   exact.NumClusters,
				SampledClusters: res.NumClusters,
			}
			rows = append(rows, row)
			tbl.add(row.Sampler, fmt.Sprintf("%.2f", row.Frac), fmtDur(dur),
				fmtSpeedup(exactDur, dur),
				fmt.Sprintf("%.3f", row.ARI), fmt.Sprintf("%.3f", row.NMI),
				fmt.Sprintf("%d/%d", row.SampledClusters, row.ExactClusters))
		}
		tbl.print()
	}
	return rows
}
