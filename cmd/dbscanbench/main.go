// Command dbscanbench regenerates every table and figure of the paper's
// evaluation (Section 7) at laptop scale. Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records the paper-vs-measured
// comparison of the shapes.
//
// Usage:
//
//	dbscanbench -exp fig6            # Figure 6: time vs eps (d >= 3)
//	dbscanbench -exp fig8 -full      # all 11 datasets instead of the subset
//	dbscanbench -exp all -n 200000   # everything, at 200k points
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

type options struct {
	n        int
	seed     int64
	threads  int // 0 = all
	full     bool
	jsonPath string // stream/shard experiments: write BENCH_*.json here
}

var experiments = map[string]struct {
	desc string
	run  func(options)
}{
	"table1":   {"parallel primitive scaling (Table 1 bounds demonstrated empirically)", expTable1},
	"fig6":     {"running time vs eps, d>=3 datasets (Figure 6)", expFig6},
	"fig7":     {"running time vs minPts, d>=3 datasets (Figure 7)", expFig7},
	"fig8":     {"speedup over best serial vs threads (Figure 8)", expFig8},
	"fig9":     {"self-relative speedup vs threads (Figure 9)", expFig9},
	"fig10":    {"running time vs rho, approximate methods (Figure 10)", expFig10},
	"fig11":    {"2D variants vs eps/minPts/n/threads (Figure 11)", expFig11},
	"table2":   {"large-scale datasets vs RP-DBSCAN-style comparator (Table 2)", expTable2},
	"ablation": {"design-choice ablations: neighbor finding, MarkCore strategy, bucketing batches", expAblation},
	"verify":   {"cross-variant agreement at scale (all exact variants identical)", expVerify},
	"stream":   {"sliding-window streaming ticks: incremental vs from-scratch (-json records BENCH_stream.json)", expStream},
	"shard":    {"sharded partition/merge path vs monolithic (-json records BENCH_shard.json)", expShard},
	"hot":      {"clustering-phase hot path: specialized kernels + arena vs generic fallback (-json records BENCH_hot.json)", expHot},
	"scale":    {"multi-core scaling per method (monolithic + sharded) and sampled-core DBSCAN++ accuracy/speedup (-json records BENCH_scale.json)", expScale},
	"serve":    {"serving path: cancellation latency mid-run + Engine throughput under mixed jobs (-json records BENCH_serve.json)", expServe},
	"emst":     {"EMST-backed hierarchy: one build amortized over a 16-eps sweep vs independent runs (-json records BENCH_emst.json)", expEmst},
	"api":      {"HTTP serving layer under hundreds of concurrent mixed sessions (-json records BENCH_api.json)", expAPI},
	"ooc":      {"out-of-core spill run vs in-RAM at a dataset 4x the residency budget (-json records BENCH_ooc.json)", expOoc},
}

func main() {
	var o options
	exp := flag.String("exp", "", "experiment to run: all, "+expNames())
	flag.IntVar(&o.n, "n", 100000, "points per dataset (the paper uses 10M-4.4B; scale as your machine allows)")
	flag.Int64Var(&o.seed, "seed", 1, "dataset generation seed")
	flag.IntVar(&o.threads, "threads", 0, "thread count for non-scaling experiments (0 = all)")
	flag.BoolVar(&o.full, "full", false, "run all 11 datasets in fig6/7/8 instead of the default subset")
	flag.StringVar(&o.jsonPath, "json", "", "stream/shard experiments: write the machine-readable report to this file (e.g. BENCH_stream.json, BENCH_shard.json)")
	flag.Parse()

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: dbscanbench -exp <experiment> [-n N] [-full]")
		fmt.Fprintln(os.Stderr, "experiments:")
		for _, name := range sortedExpNames() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", name, experiments[name].desc)
		}
		os.Exit(2)
	}
	fmt.Printf("dbscanbench: %d CPUs, n=%d, seed=%d\n", runtime.NumCPU(), o.n, o.seed)
	start := time.Now()
	if *exp == "all" {
		for _, name := range sortedExpNames() {
			fmt.Printf("\n########## %s: %s ##########\n", name, experiments[name].desc)
			experiments[name].run(o)
		}
	} else if e, ok := experiments[*exp]; ok {
		e.run(o)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; want one of: all, %s\n", *exp, expNames())
		os.Exit(2)
	}
	fmt.Printf("\ntotal experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}

func sortedExpNames() []string {
	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func expNames() string {
	out := ""
	for i, name := range sortedExpNames() {
		if i > 0 {
			out += ", "
		}
		out += name
	}
	return out
}
