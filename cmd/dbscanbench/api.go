package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pdbscan/engine"
	"pdbscan/internal/geom"
	"pdbscan/serve"
)

// apiReport is the BENCH_api.json schema: the HTTP serving layer under a
// storm of concurrent sessions mixing batch runs, streaming ticks, and
// hierarchy cuts over one shared worker budget. The queue is sized well below
// the offered concurrency so organic 429 backpressure is part of the measured
// behavior, not an error. cmd/benchgate -api gates the booleans hard
// (budget conformance, Retry-After on every 429/503, zero unexpected errors)
// and the latency figures softly.
type apiReport struct {
	Sessions         int `json:"sessions"`
	PointsPerSession int `json:"points_per_session"`
	Budget           int `json:"budget"`
	MaxQueue         int `json:"max_queue"`

	Requests      int64   `json:"requests"`       // HTTP attempts, retries included
	RunsCompleted int64   `json:"runs_completed"` // runs/ticks/cuts that returned done
	Responses429  int64   `json:"responses_429"`
	Rate429       float64 `json:"rate_429"`
	// RetryAfterAlways: every 429/503 response carried a Retry-After header.
	RetryAfterAlways bool `json:"retry_after_always"`
	// ErrorsOther: responses outside {2xx, 429} — must be zero.
	ErrorsOther int64 `json:"errors_other"`

	// End-to-end HTTP latency per attempt (client-measured), and server-side
	// queue wait per completed run (from the response's stats.queued_ns).
	LatencyP50NS int64 `json:"latency_p50_ns"`
	LatencyP90NS int64 `json:"latency_p90_ns"`
	LatencyP99NS int64 `json:"latency_p99_ns"`
	LatencyMaxNS int64 `json:"latency_max_ns"`
	QueueP50NS   int64 `json:"queue_p50_ns"`
	QueueP99NS   int64 `json:"queue_p99_ns"`

	WallNS    int64   `json:"wall_ns"`
	ReqPerSec float64 `json:"req_per_sec"`

	// Sampled engine conformance: WorkersInUse never above Budget.
	MaxWorkersInUse  int  `json:"max_workers_in_use"`
	BudgetConformant bool `json:"budget_conformant"`
	// DrainedCleanly: Drain -> http.Server.Shutdown -> Close finished with
	// every in-flight request answered.
	DrainedCleanly bool `json:"drained_cleanly"`
}

// apiLoad is the shared client state of the load run: one pooled HTTP client
// plus the latency/outcome accumulators every session goroutine feeds.
type apiLoad struct {
	base       string
	c          *http.Client
	retrySleep time.Duration

	requests     atomic.Int64
	resp429      atomic.Int64
	errOther     atomic.Int64
	runsDone     atomic.Int64
	missingRetry atomic.Int64 // 429/503 responses without Retry-After

	mu        sync.Mutex
	latencies []int64
	queueNS   []int64
}

// do issues one JSON request, retrying on 429/503 after the advertised
// Retry-After. Every attempt's end-to-end latency is recorded. Responses
// outside {2xx, 429, 503} count as errOther and return an error.
func (l *apiLoad) do(method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, l.base+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		t0 := time.Now()
		resp, err := l.c.Do(req)
		lat := time.Since(t0).Nanoseconds()
		l.requests.Add(1)
		if err != nil {
			l.errOther.Add(1)
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		l.mu.Lock()
		l.latencies = append(l.latencies, lat)
		l.mu.Unlock()

		switch {
		case resp.StatusCode < 300:
			if out != nil {
				return json.Unmarshal(raw, out)
			}
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			if resp.StatusCode == http.StatusTooManyRequests {
				l.resp429.Add(1)
			}
			sleep := l.retrySleep
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				l.missingRetry.Add(1)
			} else if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				sleep = time.Duration(secs) * time.Second
			}
			if attempt > 120 {
				l.errOther.Add(1)
				return fmt.Errorf("%s %s: still %d after %d attempts", method, path, resp.StatusCode, attempt)
			}
			time.Sleep(sleep)
		default:
			l.errOther.Add(1)
			return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(raw))
		}
	}
}

// run submits one wait=true run and folds its result into the accumulators.
func (l *apiLoad) run(sessID string, req serve.SubmitRunRequest) error {
	var st serve.RunStatus
	if err := l.do("POST", "/v1/sessions/"+sessID+"/runs", req, &st); err != nil {
		return err
	}
	if st.State != "done" {
		l.errOther.Add(1)
		return fmt.Errorf("run on %s: state %q (%s)", sessID, st.State, st.Error)
	}
	l.runsDone.Add(1)
	if st.Stats != nil {
		l.mu.Lock()
		l.queueNS = append(l.queueNS, st.Stats.QueuedNS)
		l.mu.Unlock()
	}
	return nil
}

func rowsOf(pts geom.Points) [][]float64 {
	rows := make([][]float64, pts.N)
	for i := 0; i < pts.N; i++ {
		rows[i] = pts.Data[i*pts.D : (i+1)*pts.D]
	}
	return rows
}

func apiPct(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// expAPI drives the dbscand serving stack (package serve over a real TCP
// listener) with hundreds of concurrent sessions — a third each batch,
// streaming, and hierarchy — against a deliberately small admission queue,
// and records BENCH_api.json.
func expAPI(o options) {
	threads := effectiveThreads(o.threads)
	const sessions = 200
	const maxQueue = 64
	const eps = 1000.0
	perSession := o.n / sessions
	if perSession < 200 {
		perSession = 200
	}
	if perSession > 5000 {
		perSession = 5000
	}

	srv := serve.New(serve.Options{
		Engine:      engine.Options{Budget: threads, MaxQueue: maxQueue},
		MaxSessions: sessions + 8,
		RetryAfter:  time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("api: listen: %v", err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)

	load := &apiLoad{
		base: "http://" + ln.Addr().String(),
		c: &http.Client{
			Transport: &http.Transport{MaxIdleConns: sessions + 16, MaxIdleConnsPerHost: sessions + 16},
			Timeout:   5 * time.Minute,
		},
		retrySleep: 250 * time.Millisecond,
	}
	rep := apiReport{
		Sessions: sessions, PointsPerSession: perSession,
		Budget: srv.Engine().Budget(), MaxQueue: maxQueue,
		RetryAfterAlways: true, BudgetConformant: true,
	}
	fmt.Printf("api: %d concurrent sessions x %d points on %s (budget %d, queue %d)\n",
		sessions, perSession, load.base, rep.Budget, maxQueue)

	// Budget-conformance sampler, same cadence as the serve experiment.
	stop := make(chan struct{})
	var maxInUse, violated atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := srv.Engine().Stats()
			if int64(st.WorkersInUse) > maxInUse.Load() {
				maxInUse.Store(int64(st.WorkersInUse))
			}
			if st.WorkersInUse > st.Budget {
				violated.Add(1)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Two phases behind a barrier: every session is created first, then all
	// of them fire their first run in one volley. 200 simultaneous wait-runs
	// against a 64-slot queue guarantees the 429 backpressure path is part of
	// the measured workload rather than a lucky scheduling accident.
	start := time.Now()
	var wg, created sync.WaitGroup
	created.Add(sessions)
	gate := make(chan struct{})
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows := rowsOf(loadDataset("ss-varden-2d", perSession, o.seed+int64(i)))
			prio := i % 4
			var err error
			switch i % 3 {
			case 0: // batch: create once, sweep minPts.
				var info serve.SessionInfo
				err = load.do("POST", "/v1/sessions",
					serve.CreateSessionRequest{Kind: "batch", Eps: eps, Points: rows}, &info)
				created.Done()
				<-gate
				if err != nil {
					break
				}
				for _, mp := range []int{10, 50, 100} {
					if err = load.run(info.ID, serve.SubmitRunRequest{
						Config: serve.ConfigJSON{MinPts: mp}, Priority: prio, DeadlineMillis: 120000, Wait: true,
					}); err != nil {
						break
					}
				}
			case 1: // streaming: insert, tick, insert, shrink window, tick.
				var info serve.SessionInfo
				err = load.do("POST", "/v1/sessions",
					serve.CreateSessionRequest{Kind: "streaming", Eps: eps, Dims: 2}, &info)
				created.Done()
				<-gate
				if err != nil {
					break
				}
				half := len(rows) / 2
				path := "/v1/sessions/" + info.ID
				if err = load.do("POST", path+"/points", serve.InsertPointsRequest{Points: rows[:half]}, nil); err != nil {
					break
				}
				if err = load.run(info.ID, serve.SubmitRunRequest{
					Config: serve.ConfigJSON{MinPts: 10}, Priority: prio, DeadlineMillis: 120000, Wait: true,
				}); err != nil {
					break
				}
				if err = load.do("POST", path+"/points", serve.InsertPointsRequest{Points: rows[half:]}, nil); err != nil {
					break
				}
				if err = load.do("POST", path+"/window", serve.WindowRequest{N: 3 * len(rows) / 4}, nil); err != nil {
					break
				}
				err = load.run(info.ID, serve.SubmitRunRequest{
					Config: serve.ConfigJSON{MinPts: 10}, Priority: prio, DeadlineMillis: 120000, Wait: true,
				})
			case 2: // hierarchy: one build, three eps cuts.
				var info serve.SessionInfo
				err = load.do("POST", "/v1/sessions",
					serve.CreateSessionRequest{Kind: "hierarchy", Eps: eps, MinPts: 10, Points: rows}, &info)
				created.Done()
				<-gate
				if err != nil {
					break
				}
				for _, cut := range []float64{eps / 4, eps / 2, eps} {
					if err = load.run(info.ID, serve.SubmitRunRequest{
						Config: serve.ConfigJSON{Eps: cut}, Priority: prio, DeadlineMillis: 120000, Wait: true,
					}); err != nil {
						break
					}
				}
			}
			if err != nil {
				errc <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	created.Wait()
	close(gate)
	wg.Wait()
	wall := time.Since(start)
	close(stop)
	close(errc)
	for err := range errc {
		fmt.Printf("api: ERROR %v\n", err)
	}

	// Drain in the documented order and confirm it completes.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep.DrainedCleanly = hs.Shutdown(ctx) == nil
	srv.Close()

	rep.Requests = load.requests.Load()
	rep.RunsCompleted = load.runsDone.Load()
	rep.Responses429 = load.resp429.Load()
	if rep.Requests > 0 {
		rep.Rate429 = float64(rep.Responses429) / float64(rep.Requests)
	}
	rep.RetryAfterAlways = load.missingRetry.Load() == 0
	rep.ErrorsOther = load.errOther.Load()
	rep.WallNS = wall.Nanoseconds()
	rep.ReqPerSec = float64(rep.Requests) / wall.Seconds()
	rep.MaxWorkersInUse = int(maxInUse.Load())
	rep.BudgetConformant = violated.Load() == 0

	sort.Slice(load.latencies, func(i, j int) bool { return load.latencies[i] < load.latencies[j] })
	sort.Slice(load.queueNS, func(i, j int) bool { return load.queueNS[i] < load.queueNS[j] })
	rep.LatencyP50NS = apiPct(load.latencies, 0.50)
	rep.LatencyP90NS = apiPct(load.latencies, 0.90)
	rep.LatencyP99NS = apiPct(load.latencies, 0.99)
	rep.LatencyMaxNS = apiPct(load.latencies, 1)
	rep.QueueP50NS = apiPct(load.queueNS, 0.50)
	rep.QueueP99NS = apiPct(load.queueNS, 0.99)

	tbl := newTable(fmt.Sprintf("API load: %d sessions, %d requests in %v", sessions, rep.Requests, wall.Round(time.Millisecond)),
		"metric", "value")
	tbl.add("runs completed", fmt.Sprint(rep.RunsCompleted))
	tbl.add("requests/s", fmt.Sprintf("%.1f", rep.ReqPerSec))
	tbl.add("429 rate", fmt.Sprintf("%.1f%% (%d)", 100*rep.Rate429, rep.Responses429))
	tbl.add("Retry-After on every 429/503", fmt.Sprint(rep.RetryAfterAlways))
	tbl.add("other errors", fmt.Sprint(rep.ErrorsOther))
	tbl.add("e2e latency p50/p90/p99", fmt.Sprintf("%v / %v / %v",
		time.Duration(rep.LatencyP50NS).Round(time.Microsecond),
		time.Duration(rep.LatencyP90NS).Round(time.Microsecond),
		time.Duration(rep.LatencyP99NS).Round(time.Microsecond)))
	tbl.add("queue wait p50/p99", fmt.Sprintf("%v / %v",
		time.Duration(rep.QueueP50NS).Round(time.Microsecond),
		time.Duration(rep.QueueP99NS).Round(time.Microsecond)))
	tbl.add("budget / max in use / conformant", fmt.Sprintf("%d / %d / %v", rep.Budget, rep.MaxWorkersInUse, rep.BudgetConformant))
	tbl.add("drained cleanly", fmt.Sprint(rep.DrainedCleanly))
	tbl.print()

	if o.jsonPath != "" {
		writeJSON(o.jsonPath, rep)
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
}
