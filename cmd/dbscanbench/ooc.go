package main

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"pdbscan"
)

// oocReport is the BENCH_ooc.json schema: one out-of-core Spill run against
// the in-RAM run of the identical dataset, with the engine's residency
// accounting and an informational whole-process peak RSS. benchgate -ooc
// hard-gates LabelsPermEqual, the dataset-vs-budget ratio, and
// PeakResidentBytes <= 1.25x budget; the wall-clock ratio is a soft check.
//
// PeakResidentBytes counts what MaxResidentBytes bounds: the largest single
// point-data window mapped at once. O(n) bookkeeping (labels, core flags,
// union-find, store metadata) stays heap-resident outside the budget —
// PeakRSSBytes is reported so that gap is visible, not hidden.
type oocReport struct {
	Experiment         string  `json:"experiment"`
	Dataset            string  `json:"dataset"`
	N                  int     `json:"n"`
	Dims               int     `json:"dims"`
	Eps                float64 `json:"eps"`
	MinPts             int     `json:"min_pts"`
	Threads            int     `json:"threads"`
	Seed               int64   `json:"seed"`
	Shards             int     `json:"shards"`
	DatasetBytes       int64   `json:"dataset_bytes"`
	BudgetBytes        int64   `json:"budget_bytes"`
	InRAMWallNS        int64   `json:"in_ram_wall_ns"`
	OOCWallNS          int64   `json:"ooc_wall_ns"`
	BytesMapped        int64   `json:"bytes_mapped"`
	PeakResidentBytes  int64   `json:"peak_resident_bytes"`
	ShardsResidentPeak int     `json:"shards_resident_peak"`
	PeakRSSBytes       int64   `json:"peak_rss_bytes"`
	LabelsPermEqual    bool    `json:"labels_perm_equal"`
	NumClusters        int     `json:"num_clusters"`
}

// expOoc measures the out-of-core path end to end: write the dataset to a
// cell store, rerun with Spill under a residency budget of one quarter of the
// point payload, and compare wall clock and labels against the in-RAM run.
func expOoc(o options) {
	const dsName, eps, minPts = "uniform-2d", 2.0, 10
	pts := loadDataset(dsName, o.n, o.seed)
	datasetBytes := int64(pts.N) * int64(pts.D) * 8
	budget := datasetBytes / 4

	cfg := pdbscan.Config{MinPts: minPts, Workers: o.threads}

	// In-RAM reference: the ordinary monolithic run.
	ram, err := pdbscan.NewClustererFlat(pts.Data, pts.D, eps)
	if err != nil {
		fatalf("ooc: %v", err)
	}
	start := time.Now()
	want, err := ram.Run(cfg)
	if err != nil {
		fatalf("ooc: %v", err)
	}
	ramWall := time.Since(start)

	// Spill run: persist the store, reopen it, and run under the budget. 16
	// shards keep every halo window of the uniform dataset comfortably under
	// a quarter of the payload.
	dir, err := os.MkdirTemp("", "dbscanbench-ooc-")
	if err != nil {
		fatalf("ooc: %v", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "points.cellstore")
	const shards = 16
	if err := ram.WriteStore(path, shards); err != nil {
		fatalf("ooc: %v", err)
	}
	ooc, err := pdbscan.OpenStoreClusterer(path)
	if err != nil {
		fatalf("ooc: %v", err)
	}
	defer ooc.Close()
	cfg.Spill = true
	cfg.MaxResidentBytes = budget
	start = time.Now()
	got, err := ooc.Run(cfg)
	if err != nil {
		fatalf("ooc: %v", err)
	}
	oocWall := time.Since(start)
	stats := ooc.LastRunStats()

	permEqual := labelsPermEqual(want.Labels, got.Labels) &&
		boolsEqual(want.Core, got.Core) && want.NumClusters == got.NumClusters

	rep := oocReport{
		Experiment: "ooc", Dataset: dsName,
		N: pts.N, Dims: pts.D, Eps: eps, MinPts: minPts,
		Threads: effectiveThreads(o.threads), Seed: o.seed,
		Shards:             stats.Shards,
		DatasetBytes:       datasetBytes,
		BudgetBytes:        budget,
		InRAMWallNS:        ramWall.Nanoseconds(),
		OOCWallNS:          oocWall.Nanoseconds(),
		BytesMapped:        stats.BytesMapped,
		PeakResidentBytes:  stats.PeakResidentBytes,
		ShardsResidentPeak: stats.ShardsResidentPeak,
		PeakRSSBytes:       peakRSSBytes(),
		LabelsPermEqual:    permEqual,
		NumClusters:        got.NumClusters,
	}

	tbl := newTable(fmt.Sprintf("out-of-core vs in-RAM: %s n=%d eps=%g minPts=%d budget=%s",
		dsName, pts.N, eps, minPts, fmtBytes(budget)),
		"run", "wall", "peak window", "mapped total", "clusters")
	tbl.add("in-RAM", ramWall.Round(time.Millisecond).String(), "-", "-", fmt.Sprint(want.NumClusters))
	tbl.add("spill", oocWall.Round(time.Millisecond).String(),
		fmtBytes(stats.PeakResidentBytes), fmtBytes(stats.BytesMapped), fmt.Sprint(got.NumClusters))
	tbl.print()
	fmt.Printf("dataset %s = %.1fx budget; peak window %.2fx budget; widest halo %d/%d shards; labels perm-equal: %v\n",
		fmtBytes(datasetBytes), float64(datasetBytes)/float64(budget),
		float64(stats.PeakResidentBytes)/float64(budget),
		stats.ShardsResidentPeak, stats.Shards, permEqual)
	if !permEqual {
		fatalf("ooc: spill labels diverged from the in-RAM run")
	}

	if o.jsonPath != "" {
		writeJSON(o.jsonPath, rep)
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
}

// labelsPermEqual reports whether two labelings agree up to a bijection of
// cluster ids (noise must match exactly).
func labelsPermEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for i := range a {
		x, y := a[i], b[i]
		if (x < 0) != (y < 0) {
			return false
		}
		if x < 0 {
			continue
		}
		if v, ok := fwd[x]; ok && v != y {
			return false
		}
		if v, ok := rev[y]; ok && v != x {
			return false
		}
		fwd[x], rev[y] = y, x
	}
	return true
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// peakRSSBytes returns the process's peak resident set size. Informational
// only: Go's heap, the test harness, and page-cache behavior all land in it,
// so it is not what MaxResidentBytes bounds.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// Linux reports ru_maxrss in KiB.
	return ru.Maxrss * 1024
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
