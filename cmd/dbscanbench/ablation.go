package main

import (
	"fmt"
	"time"

	"pdbscan/internal/core"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
)

// expAblation isolates the design choices DESIGN.md calls out, holding
// everything else fixed:
//
//  1. NeighborCells: offset enumeration vs k-d tree (Section 5.1) across
//     dimensions;
//  2. MarkCore: scan vs quadtree RangeCount (Sections 4.3 / 5.2) with the
//     cell-graph strategy fixed to BCP;
//  3. bucketing batch count (Section 4.4), from one batch (= plain parallel
//     processing of the sorted order) to very fine batches (= almost
//     sequential, maximal pruning).
func expAblation(o options) {
	// --- 1: neighbor finding ---
	t := newTable("Ablation 1: NeighborCells enumeration vs k-d tree (time to compute all neighbor lists)",
		"dataset", "enum", "kd-tree", "cells")
	for _, dsName := range []string{"ss-simden-3d", "ss-simden-5d", "ss-simden-7d"} {
		eps := map[string]float64{"ss-simden-3d": 1000, "ss-simden-5d": 1000, "ss-simden-7d": 2000}[dsName]
		pts := loadDataset(dsName, o.n, o.seed)
		cEnum := grid.BuildGrid(parallel.Default(), pts, eps)
		start := time.Now()
		cEnum.ComputeNeighborsEnum(parallel.Default())
		enumTime := time.Since(start)
		cKD := grid.BuildGrid(parallel.Default(), pts, eps)
		start = time.Now()
		cKD.ComputeNeighborsKD(parallel.Default())
		kdTime := time.Since(start)
		t.add(dsName, fmtDur(enumTime), fmtDur(kdTime), fmt.Sprintf("%d", cEnum.NumCells()))
	}
	t.print()

	// --- 2: MarkCore strategy (graph fixed to BCP) ---
	t = newTable("Ablation 2: MarkCore scan vs quadtree (full pipeline, GraphBCP fixed)",
		"dataset", "minPts", "mark=scan", "mark=quadtree")
	for _, cfg := range []struct {
		name   string
		eps    float64
		minPts int
	}{
		{"ss-simden-5d", 1000, 100},
		{"ss-simden-5d", 1000, 1000},
		{"geolife", 40, 100},
		{"uniform-5d", 100, 100},
	} {
		pts := loadDataset(cfg.name, o.n, o.seed)
		cells := grid.BuildGrid(parallel.Default(), pts, cfg.eps)
		if pts.D <= 3 {
			cells.ComputeNeighborsEnum(parallel.Default())
		} else {
			cells.ComputeNeighborsKD(parallel.Default())
		}
		times := map[core.MarkStrategy]time.Duration{}
		for _, mark := range []core.MarkStrategy{core.MarkScan, core.MarkQuadtree} {
			start := time.Now()
			if _, err := core.Run(cells, core.Params{
				MinPts: cfg.minPts, Mark: mark, Graph: core.GraphBCP,
			}); err != nil {
				panic(err)
			}
			times[mark] = time.Since(start)
		}
		t.add(cfg.name, fmt.Sprintf("%d", cfg.minPts),
			fmtDur(times[core.MarkScan]), fmtDur(times[core.MarkQuadtree]))
	}
	t.print()

	// --- 3: bucketing batch count ---
	buckets := []int{1, 4, 16, 64, 256}
	headers := []string{"dataset", "no-bucketing"}
	for _, b := range buckets {
		headers = append(headers, fmt.Sprintf("buckets=%d", b))
	}
	t = newTable("Ablation 3: bucketing batch count (GraphBCP)", headers...)
	for _, cfg := range []struct {
		name   string
		eps    float64
		minPts int
	}{
		{"ss-varden-3d", 2000, 100},
		{"geolife", 40, 100},
	} {
		pts := loadDataset(cfg.name, o.n, o.seed)
		cells := grid.BuildGrid(parallel.Default(), pts, cfg.eps)
		cells.ComputeNeighborsEnum(parallel.Default())
		cells2 := cells
		run := func(bucketing bool, nb int) time.Duration {
			start := time.Now()
			if _, err := core.Run(cells2, core.Params{
				MinPts: cfg.minPts, Graph: core.GraphBCP,
				Bucketing: bucketing, Buckets: nb,
			}); err != nil {
				panic(err)
			}
			return time.Since(start)
		}
		cells3 := []string{cfg.name, fmtDur(run(false, 0))}
		for _, b := range buckets {
			cells3 = append(cells3, fmtDur(run(true, b)))
		}
		t.add(cells3...)
	}
	t.print()
}
