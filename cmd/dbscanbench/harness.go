package main

import (
	"fmt"
	"runtime"
	"time"

	"pdbscan"
	"pdbscan/internal/baseline"
	"pdbscan/internal/geom"
	"pdbscan/internal/parallel"
)

// variant is one named algorithm configuration (Section 7.1 naming). run
// receives the worker budget for this invocation; implementations thread it
// through as a per-run executor (there is no process-wide worker state).
type variant struct {
	name   string
	serial bool // always runs single-threaded (the sequential baseline)
	run    func(pts geom.Points, eps float64, minPts int, rho float64, workers int) int
}

func methodVariant(name string, m pdbscan.Method, bucketing bool) variant {
	return variant{
		name: name,
		run: func(pts geom.Points, eps float64, minPts int, rho float64, workers int) int {
			res, err := pdbscan.ClusterFlat(pts.Data, pts.D, pdbscan.Config{
				Eps: eps, MinPts: minPts, Method: m, Rho: rho, Bucketing: bucketing,
				Workers: workers,
			})
			if err != nil {
				panic(err)
			}
			return res.NumClusters
		},
	}
}

// ourVariants are the paper's eight d>=3 configurations.
func ourVariants() []variant {
	return []variant{
		methodVariant("our-exact", pdbscan.MethodExact, false),
		methodVariant("our-exact-bucketing", pdbscan.MethodExact, true),
		methodVariant("our-exact-qt", pdbscan.MethodExactQt, false),
		methodVariant("our-exact-qt-bucketing", pdbscan.MethodExactQt, true),
		methodVariant("our-approx", pdbscan.MethodApprox, false),
		methodVariant("our-approx-bucketing", pdbscan.MethodApprox, true),
		methodVariant("our-approx-qt", pdbscan.MethodApproxQt, false),
		methodVariant("our-approx-qt-bucketing", pdbscan.MethodApproxQt, true),
	}
}

// baselineVariants are the parallel comparison implementations.
func baselineVariants() []variant {
	return []variant{
		{name: "hpdbscan", run: func(pts geom.Points, eps float64, minPts int, _ float64, workers int) int {
			return baseline.HPDBSCAN(parallel.NewPool(workers), pts, eps, minPts).NumClusters
		}},
		{name: "pdsdbscan", run: func(pts geom.Points, eps float64, minPts int, _ float64, workers int) int {
			return baseline.PDSDBSCAN(parallel.NewPool(workers), pts, eps, minPts).NumClusters
		}},
	}
}

func seqVariant() variant {
	return variant{name: "seq-dbscan", serial: true,
		run: func(pts geom.Points, eps float64, minPts int, _ float64, workers int) int {
			return baseline.Sequential(parallel.NewPool(workers), pts, eps, minPts).NumClusters
		}}
}

// twoDVariants are the six 2D configurations of Figure 11.
func twoDVariants() []variant {
	return []variant{
		methodVariant("our-2d-grid-bcp", pdbscan.Method2DGridBCP, false),
		methodVariant("our-2d-grid-usec", pdbscan.Method2DGridUSEC, false),
		methodVariant("our-2d-grid-delaunay", pdbscan.Method2DGridDelaunay, false),
		methodVariant("our-2d-box-bcp", pdbscan.Method2DBoxBCP, false),
		methodVariant("our-2d-box-usec", pdbscan.Method2DBoxUSEC, false),
		methodVariant("our-2d-box-delaunay", pdbscan.Method2DBoxDelaunay, false),
	}
}

// timeVariant runs v once and reports (elapsed, clusters). Thread count is
// pinned via GOMAXPROCS (so the Go runtime really uses that many CPUs) and
// passed to the variant as its per-run worker budget.
func timeVariant(v variant, pts geom.Points, eps float64, minPts int, rho float64, threads int) (time.Duration, int) {
	if v.serial {
		threads = 1
	}
	if threads > 0 {
		old := runtime.GOMAXPROCS(threads)
		defer runtime.GOMAXPROCS(old)
	}
	start := time.Now()
	clusters := v.run(pts, eps, minPts, rho, threads)
	return time.Since(start), clusters
}

// table printing ----------------------------------------------------------

type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) print() {
	fmt.Println()
	fmt.Println("== " + t.title + " ==")
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%-*s", widths[i], c)
		}
		fmt.Println()
	}
	printRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		b := make([]byte, w)
		for k := range b {
			b[k] = '-'
		}
		sep[i] = string(b)
	}
	printRow(sep)
	for _, r := range t.rows {
		printRow(r)
	}
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtSpeedup(base, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", base.Seconds()/d.Seconds())
}

// effectiveThreads resolves the -threads flag to the worker count actually
// used: 0 means "all", i.e. GOMAXPROCS. Reports must record this resolved
// count, never the raw flag — a recorded 0 makes the JSON metadata claim a
// thread count that does not exist, and benchgate refuses to compare
// baselines whose thread metadata disagrees.
func effectiveThreads(threads int) int {
	if threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return threads
}

// threadSweep returns the thread counts for scaling experiments on this
// machine: 1, 2, 4, ... up to NumCPU.
func threadSweep() []int {
	maxT := runtime.NumCPU()
	var out []int
	for t := 1; t < maxT; t *= 2 {
		out = append(out, t)
	}
	return append(out, maxT)
}
