// Command dbscanstream demonstrates the incremental streaming clusterer: it
// replays a sliding window over a generated point stream (datagen's drift
// datasets are time-ordered for exactly this) and re-clusters every tick,
// reporting per-tick latency, the dirty-cell fraction the tick actually had
// to recompute, and — with -compare — the from-scratch latency and speedup on
// the identical window.
//
// Usage:
//
//	dbscanstream -window 20000 -batch 200 -ticks 30 -eps 4 -minpts 10 -compare
//	dbscanstream -i stream.csv -window 5000 -batch 100 -eps 0.01 -minpts 25
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pdbscan"
	"pdbscan/internal/dataset"
	"pdbscan/internal/geom"
)

func main() {
	var (
		input   = flag.String("i", "", "input points file (csv or bin; row order = stream order); empty generates -dataset")
		name    = flag.String("dataset", "drift-2d", "generated stream when -i is empty (see datagen -list)")
		window  = flag.Int("window", 20000, "sliding window size (points)")
		batch   = flag.Int("batch", 200, "points inserted (and evicted) per tick")
		ticks   = flag.Int("ticks", 30, "number of ticks to replay")
		eps     = flag.Float64("eps", 4, "DBSCAN eps")
		minPts  = flag.Int("minpts", 10, "DBSCAN minPts")
		method  = flag.String("method", "", "method (empty = auto)")
		rho     = flag.Float64("rho", 0, "rho for approx methods")
		workers = flag.Int("workers", 0, "worker budget per run (0 = all CPUs)")
		seed    = flag.Int64("seed", 1, "generation seed")
		compare = flag.Bool("compare", false, "also time from-scratch Cluster on each tick's window")
	)
	flag.Parse()

	if *window <= 0 || *batch <= 0 || *ticks <= 0 {
		fmt.Fprintln(os.Stderr, "dbscanstream: -window, -batch, and -ticks must be positive")
		os.Exit(2)
	}
	pts, err := loadStream(*input, *name, *window+*ticks**batch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbscanstream:", err)
		os.Exit(1)
	}
	if pts.N < *window+*batch {
		fmt.Fprintf(os.Stderr, "dbscanstream: stream has %d points; need at least window+batch = %d\n",
			pts.N, *window+*batch)
		os.Exit(1)
	}

	s, err := pdbscan.NewStreamingClusterer(pts.D, *eps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbscanstream:", err)
		os.Exit(1)
	}
	cfg := pdbscan.Config{
		MinPts: *minPts, Method: pdbscan.Method(*method), Rho: *rho, Workers: *workers,
	}
	if _, err := s.InsertFlat(pts.Data[:*window*pts.D]); err != nil {
		fmt.Fprintln(os.Stderr, "dbscanstream:", err)
		os.Exit(1)
	}
	start := time.Now()
	if _, err := s.Run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dbscanstream:", err)
		os.Exit(1)
	}
	fmt.Printf("initial window: %d points (d=%d), first clustering in %v\n",
		*window, pts.D, time.Since(start).Round(time.Microsecond))

	header := "tick    clusters  noise    dirty/cells    tick-latency"
	if *compare {
		header += "    scratch      speedup"
	}
	fmt.Println(header)
	var incSum, scrSum time.Duration
	next := *window
	maxTicks := (pts.N - *window) / *batch
	if *ticks < maxTicks {
		maxTicks = *ticks
	}
	if maxTicks <= 0 {
		fmt.Fprintln(os.Stderr, "dbscanstream: stream too short for a single tick beyond the window")
		os.Exit(1)
	}
	for tick := 0; tick < maxTicks; tick++ {
		lo, hi := next*pts.D, (next+*batch)*pts.D
		next += *batch
		t0 := time.Now()
		if _, err := s.InsertFlat(pts.Data[lo:hi]); err != nil {
			fmt.Fprintln(os.Stderr, "dbscanstream:", err)
			os.Exit(1)
		}
		s.Window(*window)
		res, err := s.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbscanstream:", err)
			os.Exit(1)
		}
		incDur := time.Since(t0)
		incSum += incDur
		stats := s.LastRunStats()
		line := fmt.Sprintf("%-7d %-9d %-8d %-14s %-15v", tick, res.NumClusters, res.NumNoise(),
			fmt.Sprintf("%d/%d", stats.DirtyCells, stats.NumCells),
			incDur.Round(time.Microsecond))
		if *compare {
			rows := make([][]float64, 0, s.Len())
			for _, id := range s.IDs() {
				row, _ := s.Point(id)
				rows = append(rows, row)
			}
			scratchCfg := cfg
			scratchCfg.Eps = *eps
			t0 = time.Now()
			if _, err := pdbscan.Cluster(rows, scratchCfg); err != nil {
				fmt.Fprintln(os.Stderr, "dbscanstream:", err)
				os.Exit(1)
			}
			scrDur := time.Since(t0)
			scrSum += scrDur
			line += fmt.Sprintf(" %-12v %.2fx", scrDur.Round(time.Microsecond), scrDur.Seconds()/incDur.Seconds())
		}
		fmt.Println(line)
	}
	fmt.Printf("\nmean tick latency: %v", (incSum / time.Duration(maxTicks)).Round(time.Microsecond))
	if *compare {
		fmt.Printf(" (from-scratch %v, %.2fx speedup)",
			(scrSum / time.Duration(maxTicks)).Round(time.Microsecond),
			scrSum.Seconds()/incSum.Seconds())
	}
	fmt.Println()
}

func loadStream(input, name string, n int, seed int64) (geom.Points, error) {
	if input != "" {
		return dataset.LoadFile(input)
	}
	return dataset.Generate(name, n, seed)
}
