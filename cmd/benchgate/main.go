// Command benchgate checks a freshly generated BENCH_hot.json against the
// committed baseline and the hot-path acceptance floors, emitting GitHub
// Actions annotations (::warning / ::error lines) when the benchmarks
// regress. It compares only host-relative ratio metrics — the headline
// speedup and allocation ratio — never absolute ns/op, which is not
// comparable across runner hardware.
//
// Usage:
//
//	benchgate -fresh BENCH_hot.json [-baseline BENCH_hot.json] [-scale BENCH_scale.json] [-serve BENCH_serve.json] [-emst BENCH_emst.json] [-api BENCH_api.json] [-strict]
//
// A metric regresses when it drops more than 10% below the committed
// baseline, or below the absolute floor the optimization was accepted at
// (1.3x clustering-phase speedup, 5x allocation reduction). A baseline whose
// recorded thread count differs from the fresh report's is refused (with a
// ::notice): ratios measured at different worker counts are not comparable,
// so only the absolute floors are checked. With -scale it gates the scaling
// report: the thread sweep must cover at least two worker counts, the top
// self-relative speedup must clear its 1.5x floor (skipped with a ::notice
// on single-CPU runners, where the floor is physically unreachable), and per
// dataset the sampled-core (DBSCAN++) rows at frac <= 0.1 must include one
// with ARI >= 0.95 vs the exact run (hard error otherwise) whose
// clustering-phase speedup clears the 2x floor. With -serve it
// additionally gates the serving-path report: mid-run cancellation latency
// must stay under its 50ms acceptance floor, every cancelled run's recovery
// must have been label-permutation-equal to the baseline, and the Engine's
// sampled worker usage must never have exceeded its budget (the last two are
// hard errors — they are correctness invariants, not performance). With
// -emst it gates the EMST-hierarchy report: the 16-eps sweep must stay at
// least 5x faster than independent runs (a host-relative ratio), and every
// cut must have been label-permutation-equal to its from-scratch run
// (queries_equal=false is a hard error). With -api it gates the HTTP load
// report: the engine's sampled worker usage must never have exceeded its
// budget, every 429/503 must have carried Retry-After, and no request may
// have failed outside the designed backpressure statuses (all three hard
// errors); session count and queue-wait p99 are gated softly, since absolute
// latency is host-dependent. Warnings annotate the PR; -strict turns them
// into errors and a non-zero exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

// hotHeadline is the subset of the BENCH_hot.json schema the gate reads.
type hotHeadline struct {
	Threads               int     `json:"threads"`
	Headline2DGridSpeedup float64 `json:"headline_2d_grid_speedup"`
	HeadlineAllocRatio    float64 `json:"headline_alloc_ratio"`
}

// emstHeadline is the subset of the BENCH_emst.json schema the gate reads.
type emstHeadline struct {
	N                 int     `json:"n"`
	AmortizationRatio float64 `json:"amortization_ratio"`
	QueriesEqual      bool    `json:"queries_equal"`
}

// apiHeadline is the subset of the BENCH_api.json schema the gate reads.
type apiHeadline struct {
	Sessions         int     `json:"sessions"`
	Requests         int64   `json:"requests"`
	RunsCompleted    int64   `json:"runs_completed"`
	Rate429          float64 `json:"rate_429"`
	RetryAfterAlways bool    `json:"retry_after_always"`
	ErrorsOther      int64   `json:"errors_other"`
	LatencyP99NS     int64   `json:"latency_p99_ns"`
	QueueP99NS       int64   `json:"queue_p99_ns"`
	BudgetConformant bool    `json:"budget_conformant"`
	DrainedCleanly   bool    `json:"drained_cleanly"`
}

// scaleHeadline is the subset of the BENCH_scale.json schema the gate reads.
type scaleHeadline struct {
	NumCPU         int     `json:"num_cpu"`
	ThreadSweep    []int   `json:"thread_sweep"`
	TopSelfSpeedup float64 `json:"top_self_speedup"`
	Sampled        []struct {
		Dataset string  `json:"dataset"`
		Sampler string  `json:"sampler"`
		Frac    float64 `json:"frac"`
		Speedup float64 `json:"speedup"`
		ARI     float64 `json:"ari"`
	} `json:"sampled"`
}

// serveHeadline is the subset of the BENCH_serve.json schema the gate reads.
type serveHeadline struct {
	N                   int   `json:"n"`
	CancelLatencyMaxNS  int64 `json:"cancel_latency_max_ns"`
	CancelledMidCluster int   `json:"cancelled_mid_cluster"`
	RecoveredEqual      bool  `json:"recovered_equal"`
	BudgetConformant    bool  `json:"budget_conformant"`
}

// Acceptance floors of the hot-path optimization, with the 10% regression
// grace applied by the caller; of the serving path (cancellation latency,
// absolute — it is a latency budget, not a host-relative ratio); and of the
// EMST hierarchy (sweep amortization over independent runs, a ratio).
const (
	floorSpeedup          = 1.3
	floorAllocRatio       = 5.0
	grace                 = 0.9 // >10% below a reference counts as a regression
	floorCancelLatency    = 50 * time.Millisecond
	floorEmstAmortization = 5.0
	// Scaling gate: self-relative speedup at the top of the thread sweep
	// (skipped on single-CPU runners — one hardware CPU cannot speed itself
	// up) and the sampled-core mode's accuracy/speedup acceptance: at a
	// sample fraction <= 0.1 there must be a configuration per dataset that
	// keeps ARI >= 0.95 vs exact (hard — an approximation answering a
	// different question is not a result) while clustering >= 2x faster
	// (soft, with the usual grace).
	floorScaleSpeedup   = 1.5
	floorSampledSpeedup = 2.0
	floorSampledARI     = 0.95
	ceilSampledFrac     = 0.1
	// API load gate: soft ceilings only — absolute latency depends on the
	// runner, so the hard gates are the boolean invariants.
	floorAPISessions = 200
	ceilAPIQueueP99  = 5 * time.Second
	ceilAPIE2EP99    = 30 * time.Second
)

func main() {
	freshPath := flag.String("fresh", "BENCH_hot.json", "freshly generated report to check")
	basePath := flag.String("baseline", "", "committed baseline report to compare against (optional)")
	scalePath := flag.String("scale", "", "freshly generated BENCH_scale.json to gate (optional)")
	servePath := flag.String("serve", "", "freshly generated BENCH_serve.json to gate (optional)")
	apiPath := flag.String("api", "", "freshly generated BENCH_api.json to gate (optional)")
	emstPath := flag.String("emst", "", "freshly generated BENCH_emst.json to gate (optional)")
	strict := flag.Bool("strict", false, "exit non-zero (and annotate as errors) on regression")
	flag.Parse()

	fresh, err := readHeadline(*freshPath)
	if err != nil {
		fmt.Printf("::error ::benchgate: %v\n", err)
		os.Exit(1)
	}

	regressed := false
	check := func(metric string, got, ref float64, refName string) {
		if got >= ref*grace {
			return
		}
		regressed = true
		level := "warning"
		if *strict {
			level = "error"
		}
		fmt.Printf("::%s ::hot benchmark regression: %s = %.2f, more than 10%% below the %s of %.2f\n",
			level, metric, got, refName, ref)
	}

	check("headline_2d_grid_speedup", fresh.Headline2DGridSpeedup, floorSpeedup, "acceptance floor")
	check("headline_alloc_ratio", fresh.HeadlineAllocRatio, floorAllocRatio, "acceptance floor")

	if *basePath != "" {
		base, err := readHeadline(*basePath)
		switch {
		case err != nil:
			// A missing or unreadable baseline is not a regression — the
			// first run that generates one has nothing to compare against.
			fmt.Printf("::notice ::benchgate: no usable baseline (%v); checked acceptance floors only\n", err)
		case base.Threads != fresh.Threads:
			// A baseline measured at a different worker count is not
			// comparable even on ratio metrics (parallel overheads scale
			// with it); refuse it rather than let a thread-count change
			// masquerade as a perf change in either direction.
			fmt.Printf("::notice ::benchgate: baseline recorded at threads=%d but fresh report at threads=%d; thread-mismatched baselines are not comparable, checked acceptance floors only\n",
				base.Threads, fresh.Threads)
		default:
			check("headline_2d_grid_speedup", fresh.Headline2DGridSpeedup, base.Headline2DGridSpeedup, "committed baseline")
			check("headline_alloc_ratio", fresh.HeadlineAllocRatio, base.HeadlineAllocRatio, "committed baseline")
		}
	}

	hardFail := false
	if *scalePath != "" {
		scale, err := readScale(*scalePath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		warn := func(format string, args ...any) {
			level := "warning"
			if *strict {
				level = "error"
			}
			regressed = true
			fmt.Printf("::"+level+" ::"+format+"\n", args...)
		}
		if len(scale.ThreadSweep) < 2 {
			fmt.Printf("::error ::scale: thread sweep covers %d worker count(s); the scaling report requires at least two\n", len(scale.ThreadSweep))
			hardFail = true
		}
		if scale.NumCPU <= 1 {
			fmt.Printf("::notice ::scale: runner has %d CPU; self-relative scaling floor (%.1fx) not applicable, skipped\n",
				scale.NumCPU, floorScaleSpeedup)
		} else if scale.TopSelfSpeedup < floorScaleSpeedup*grace {
			warn("scale: top self-relative speedup %.2fx at %d threads (%d CPUs), more than 10%% below the %.1fx floor",
				scale.TopSelfSpeedup, scale.ThreadSweep[len(scale.ThreadSweep)-1], scale.NumCPU, floorScaleSpeedup)
		} else {
			fmt.Printf("benchgate: scale ok (self-relative %.2fx at %d threads on %d CPUs)\n",
				scale.TopSelfSpeedup, scale.ThreadSweep[len(scale.ThreadSweep)-1], scale.NumCPU)
		}
		// Sampled-core acceptance, per dataset: among the rows at frac <=
		// ceilSampledFrac, the accurate ones (ARI >= floor) must include a
		// >= 2x clustering-phase speedup. No accurate row at all is a hard
		// error — speed without fidelity is not an approximation.
		bestByDS := map[string]float64{}
		for _, row := range scale.Sampled {
			if row.Frac > ceilSampledFrac {
				continue
			}
			if _, seen := bestByDS[row.Dataset]; !seen {
				bestByDS[row.Dataset] = -1
			}
			if row.ARI >= floorSampledARI && row.Speedup > bestByDS[row.Dataset] {
				bestByDS[row.Dataset] = row.Speedup
			}
		}
		if len(bestByDS) == 0 {
			fmt.Println("::error ::scale: no sampled-core rows at frac <= 0.1 in the report")
			hardFail = true
		}
		for ds, best := range bestByDS {
			switch {
			case best < 0:
				fmt.Printf("::error ::scale: %s: no sampled-core row with ARI >= %.2f vs exact (frac <= %.1f)\n",
					ds, floorSampledARI, ceilSampledFrac)
				hardFail = true
			case best < floorSampledSpeedup*grace:
				warn("scale: %s: best accurate sampled-core speedup %.2fx, more than 10%% below the %.1fx floor",
					ds, best, floorSampledSpeedup)
			default:
				fmt.Printf("benchgate: scale sampled ok (%s: %.2fx at ARI >= %.2f)\n", ds, best, floorSampledARI)
			}
		}
	}
	if *servePath != "" {
		serve, err := readServe(*servePath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		// Correctness invariants: hard errors regardless of -strict.
		if !serve.RecoveredEqual {
			fmt.Println("::error ::serve: a run after a cancelled run diverged from the baseline (recovered_equal=false)")
			hardFail = true
		}
		if !serve.BudgetConformant {
			fmt.Println("::error ::serve: engine worker usage exceeded the shared budget (budget_conformant=false)")
			hardFail = true
		}
		switch {
		case serve.CancelledMidCluster == 0:
			fmt.Printf("::notice ::serve: no trial was cancelled mid-run at n=%d; latency floor not exercised\n", serve.N)
		case time.Duration(serve.CancelLatencyMaxNS) > floorCancelLatency:
			level := "warning"
			if *strict {
				level = "error"
			}
			regressed = true
			fmt.Printf("::%s ::serve: cancellation latency max %v exceeds the %v acceptance floor\n",
				level, time.Duration(serve.CancelLatencyMaxNS), floorCancelLatency)
		default:
			fmt.Printf("benchgate: serve ok (cancel latency max %v <= %v over %d trials, recovery equal, budget conformant)\n",
				time.Duration(serve.CancelLatencyMaxNS), floorCancelLatency, serve.CancelledMidCluster)
		}
	}

	if *apiPath != "" {
		api, err := readAPI(*apiPath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		// Invariants of the serving contract: hard errors regardless of
		// -strict. Backpressure (429s) is designed behavior; anything else
		// failing is not.
		if !api.BudgetConformant {
			fmt.Println("::error ::api: engine worker usage exceeded the shared budget under HTTP load (budget_conformant=false)")
			hardFail = true
		}
		if !api.RetryAfterAlways {
			fmt.Println("::error ::api: a 429/503 response was missing its Retry-After header (retry_after_always=false)")
			hardFail = true
		}
		if api.ErrorsOther > 0 {
			fmt.Printf("::error ::api: %d requests failed outside the designed 429/503 backpressure\n", api.ErrorsOther)
			hardFail = true
		}
		if !api.DrainedCleanly {
			fmt.Println("::error ::api: graceful drain did not complete (drained_cleanly=false)")
			hardFail = true
		}
		warn := func(format string, args ...any) {
			level := "warning"
			if *strict {
				level = "error"
			}
			regressed = true
			fmt.Printf("::"+level+" ::"+format+"\n", args...)
		}
		if api.Sessions < floorAPISessions {
			warn("api: %d concurrent sessions, below the %d-session load floor", api.Sessions, floorAPISessions)
		}
		if time.Duration(api.QueueP99NS) > ceilAPIQueueP99 {
			warn("api: queue-wait p99 %v exceeds the %v ceiling", time.Duration(api.QueueP99NS), ceilAPIQueueP99)
		}
		if time.Duration(api.LatencyP99NS) > ceilAPIE2EP99 {
			warn("api: end-to-end p99 %v exceeds the %v ceiling", time.Duration(api.LatencyP99NS), ceilAPIE2EP99)
		}
		if api.BudgetConformant && api.RetryAfterAlways && api.ErrorsOther == 0 && api.DrainedCleanly {
			fmt.Printf("benchgate: api ok (%d sessions, %d requests, %d runs, 429 rate %.1f%%, queue p99 %v, e2e p99 %v)\n",
				api.Sessions, api.Requests, api.RunsCompleted, 100*api.Rate429,
				time.Duration(api.QueueP99NS).Round(time.Microsecond),
				time.Duration(api.LatencyP99NS).Round(time.Microsecond))
		}
	}

	if *emstPath != "" {
		emst, err := readEmst(*emstPath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		// Correctness invariant: every cut label-permutation-equal to its
		// from-scratch run. A fast sweep that answers a different question
		// is not a result; hard error regardless of -strict.
		if !emst.QueriesEqual {
			fmt.Println("::error ::emst: a hierarchy cut diverged from its from-scratch run (queries_equal=false)")
			hardFail = true
		}
		if emst.AmortizationRatio < floorEmstAmortization*grace {
			level := "warning"
			if *strict {
				level = "error"
			}
			regressed = true
			fmt.Printf("::%s ::emst: sweep amortization %.2fx, more than 10%% below the %.1fx acceptance floor\n",
				level, emst.AmortizationRatio, floorEmstAmortization)
		} else if emst.QueriesEqual {
			fmt.Printf("benchgate: emst ok (amortization %.2fx >= %.2f at n=%d, all cuts equal)\n",
				emst.AmortizationRatio, floorEmstAmortization*grace, emst.N)
		}
	}

	if !regressed && !hardFail {
		fmt.Printf("benchgate: ok (speedup %.2fx >= %.2f, alloc ratio %.1fx >= %.1f)\n",
			fresh.Headline2DGridSpeedup, floorSpeedup*grace, fresh.HeadlineAllocRatio, floorAllocRatio*grace)
	}
	if hardFail || (regressed && *strict) {
		os.Exit(1)
	}
}

func readScale(path string) (*scaleHeadline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s scaleHeadline
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.NumCPU == 0 || s.TopSelfSpeedup == 0 {
		return nil, fmt.Errorf("%s: missing scale metrics", path)
	}
	return &s, nil
}

func readAPI(path string) (*apiHeadline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a apiHeadline
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.Sessions == 0 || a.Requests == 0 {
		return nil, fmt.Errorf("%s: missing api metrics", path)
	}
	return &a, nil
}

func readEmst(path string) (*emstHeadline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e emstHeadline
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if e.N == 0 || e.AmortizationRatio == 0 {
		return nil, fmt.Errorf("%s: missing emst metrics", path)
	}
	return &e, nil
}

func readServe(path string) (*serveHeadline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s serveHeadline
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.N == 0 {
		return nil, fmt.Errorf("%s: missing serve metrics", path)
	}
	return &s, nil
}

func readHeadline(path string) (*hotHeadline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var h hotHeadline
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if h.Headline2DGridSpeedup == 0 || h.HeadlineAllocRatio == 0 {
		return nil, fmt.Errorf("%s: missing headline metrics", path)
	}
	return &h, nil
}
