// Command benchgate checks a freshly generated BENCH_hot.json against the
// committed baseline and the hot-path acceptance floors, emitting GitHub
// Actions annotations (::warning / ::error lines) when the benchmarks
// regress. It compares only host-relative ratio metrics — the headline
// speedup and allocation ratio — never absolute ns/op, which is not
// comparable across runner hardware.
//
// Usage:
//
//	benchgate -fresh BENCH_hot.json [-baseline BENCH_hot.json] [-strict]
//
// A metric regresses when it drops more than 10% below the committed
// baseline, or below the absolute floor the optimization was accepted at
// (1.3x clustering-phase speedup, 5x allocation reduction). Warnings
// annotate the PR; -strict turns them into errors and a non-zero exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// hotHeadline is the subset of the BENCH_hot.json schema the gate reads.
type hotHeadline struct {
	Threads               int     `json:"threads"`
	Headline2DGridSpeedup float64 `json:"headline_2d_grid_speedup"`
	HeadlineAllocRatio    float64 `json:"headline_alloc_ratio"`
}

// Acceptance floors of the hot-path optimization, with the 10% regression
// grace applied by the caller.
const (
	floorSpeedup    = 1.3
	floorAllocRatio = 5.0
	grace           = 0.9 // >10% below a reference counts as a regression
)

func main() {
	freshPath := flag.String("fresh", "BENCH_hot.json", "freshly generated report to check")
	basePath := flag.String("baseline", "", "committed baseline report to compare against (optional)")
	strict := flag.Bool("strict", false, "exit non-zero (and annotate as errors) on regression")
	flag.Parse()

	fresh, err := readHeadline(*freshPath)
	if err != nil {
		fmt.Printf("::error ::benchgate: %v\n", err)
		os.Exit(1)
	}

	regressed := false
	check := func(metric string, got, ref float64, refName string) {
		if got >= ref*grace {
			return
		}
		regressed = true
		level := "warning"
		if *strict {
			level = "error"
		}
		fmt.Printf("::%s ::hot benchmark regression: %s = %.2f, more than 10%% below the %s of %.2f\n",
			level, metric, got, refName, ref)
	}

	check("headline_2d_grid_speedup", fresh.Headline2DGridSpeedup, floorSpeedup, "acceptance floor")
	check("headline_alloc_ratio", fresh.HeadlineAllocRatio, floorAllocRatio, "acceptance floor")

	if *basePath != "" {
		base, err := readHeadline(*basePath)
		if err != nil {
			// A missing or unreadable baseline is not a regression — the
			// first run that generates one has nothing to compare against.
			fmt.Printf("::notice ::benchgate: no usable baseline (%v); checked acceptance floors only\n", err)
		} else {
			check("headline_2d_grid_speedup", fresh.Headline2DGridSpeedup, base.Headline2DGridSpeedup, "committed baseline")
			check("headline_alloc_ratio", fresh.HeadlineAllocRatio, base.HeadlineAllocRatio, "committed baseline")
		}
	}

	if !regressed {
		fmt.Printf("benchgate: ok (speedup %.2fx >= %.2f, alloc ratio %.1fx >= %.1f)\n",
			fresh.Headline2DGridSpeedup, floorSpeedup*grace, fresh.HeadlineAllocRatio, floorAllocRatio*grace)
	}
	if regressed && *strict {
		os.Exit(1)
	}
}

func readHeadline(path string) (*hotHeadline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var h hotHeadline
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if h.Headline2DGridSpeedup == 0 || h.HeadlineAllocRatio == 0 {
		return nil, fmt.Errorf("%s: missing headline metrics", path)
	}
	return &h, nil
}
