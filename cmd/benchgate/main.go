// Command benchgate checks a freshly generated BENCH_hot.json against the
// committed baseline and the hot-path acceptance floors, emitting GitHub
// Actions annotations (::warning / ::error lines) when the benchmarks
// regress. It compares only host-relative ratio metrics — the headline
// speedup and allocation ratio — never absolute ns/op, which is not
// comparable across runner hardware.
//
// Usage:
//
//	benchgate -fresh BENCH_hot.json [-baseline BENCH_hot.json] [-scale BENCH_scale.json] [-serve BENCH_serve.json] [-emst BENCH_emst.json] [-api BENCH_api.json] [-ooc BENCH_ooc.json] [-strict]
//
// A metric regresses when it drops more than 10% below the committed
// baseline, or below the absolute floor the optimization was accepted at
// (1.3x clustering-phase speedup, 5x allocation reduction, 1.25x
// indirect-vs-contiguous layout speedup — the last skipped on reports that
// predate the cell-major payload). A baseline whose
// recorded thread count differs from the fresh report's is refused (with a
// ::notice): ratios measured at different worker counts are not comparable,
// so only the absolute floors are checked. With -scale it gates the scaling
// report: the thread sweep must cover at least two worker counts, the top
// self-relative speedup must clear its 1.5x floor (skipped with a ::notice
// on single-CPU runners, where the floor is physically unreachable), and per
// dataset the sampled-core (DBSCAN++) rows at frac <= 0.1 must include one
// with ARI >= 0.95 vs the exact run (hard error otherwise) whose
// clustering-phase speedup clears the 2x floor. With -serve it
// additionally gates the serving-path report: mid-run cancellation latency
// must stay under its 50ms acceptance floor, every cancelled run's recovery
// must have been label-permutation-equal to the baseline, and the Engine's
// sampled worker usage must never have exceeded its budget (the last two are
// hard errors — they are correctness invariants, not performance). With
// -emst it gates the EMST-hierarchy report: the 16-eps sweep must stay at
// least 5x faster than independent runs (a host-relative ratio), and every
// cut must have been label-permutation-equal to its from-scratch run
// (queries_equal=false is a hard error). With -api it gates the HTTP load
// report: the engine's sampled worker usage must never have exceeded its
// budget, every 429/503 must have carried Retry-After, and no request may
// have failed outside the designed backpressure statuses (all three hard
// errors); session count and queue-wait p99 are gated softly, since absolute
// latency is host-dependent. With -ooc it gates the out-of-core report: the
// spill run's labels must be permutation-equal to the in-RAM run, the dataset
// must be at least 4x the residency budget (otherwise the run never left
// RAM-scale and proves nothing), and the peak mapped window must stay within
// 1.25x the budget (all three hard errors — they are the acceptance criteria
// of the out-of-core mode); the spill-vs-in-RAM wall-clock ratio is gated
// softly at 8x, since mapping overhead is host-dependent. Warnings annotate
// the PR; -strict turns them into errors and a non-zero exit.
//
// A report file that simply does not exist — a fresh checkout that has not
// generated it yet, a CI job whose bench step was skipped — produces a
// ::notice and skips that gate; only files that exist but cannot be parsed
// are hard errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

// hotHeadline is the subset of the BENCH_hot.json schema the gate reads.
type hotHeadline struct {
	Threads               int     `json:"threads"`
	Headline2DGridSpeedup float64 `json:"headline_2d_grid_speedup"`
	HeadlineAllocRatio    float64 `json:"headline_alloc_ratio"`
	// HeadlineLayoutSpeedup is the indirect-vs-contiguous layout speedup;
	// zero in reports generated before the cell-major payload existed, in
	// which case its floor is skipped.
	HeadlineLayoutSpeedup float64 `json:"headline_layout_speedup"`
}

// emstHeadline is the subset of the BENCH_emst.json schema the gate reads.
type emstHeadline struct {
	N                 int     `json:"n"`
	AmortizationRatio float64 `json:"amortization_ratio"`
	QueriesEqual      bool    `json:"queries_equal"`
}

// apiHeadline is the subset of the BENCH_api.json schema the gate reads.
type apiHeadline struct {
	Sessions         int     `json:"sessions"`
	Requests         int64   `json:"requests"`
	RunsCompleted    int64   `json:"runs_completed"`
	Rate429          float64 `json:"rate_429"`
	RetryAfterAlways bool    `json:"retry_after_always"`
	ErrorsOther      int64   `json:"errors_other"`
	LatencyP99NS     int64   `json:"latency_p99_ns"`
	QueueP99NS       int64   `json:"queue_p99_ns"`
	BudgetConformant bool    `json:"budget_conformant"`
	DrainedCleanly   bool    `json:"drained_cleanly"`
}

// scaleHeadline is the subset of the BENCH_scale.json schema the gate reads.
type scaleHeadline struct {
	NumCPU         int     `json:"num_cpu"`
	ThreadSweep    []int   `json:"thread_sweep"`
	TopSelfSpeedup float64 `json:"top_self_speedup"`
	Sampled        []struct {
		Dataset string  `json:"dataset"`
		Sampler string  `json:"sampler"`
		Frac    float64 `json:"frac"`
		Speedup float64 `json:"speedup"`
		ARI     float64 `json:"ari"`
	} `json:"sampled"`
}

// oocHeadline is the subset of the BENCH_ooc.json schema the gate reads.
type oocHeadline struct {
	N                 int   `json:"n"`
	DatasetBytes      int64 `json:"dataset_bytes"`
	BudgetBytes       int64 `json:"budget_bytes"`
	InRAMWallNS       int64 `json:"in_ram_wall_ns"`
	OOCWallNS         int64 `json:"ooc_wall_ns"`
	PeakResidentBytes int64 `json:"peak_resident_bytes"`
	LabelsPermEqual   bool  `json:"labels_perm_equal"`
}

// serveHeadline is the subset of the BENCH_serve.json schema the gate reads.
type serveHeadline struct {
	N                   int   `json:"n"`
	CancelLatencyMaxNS  int64 `json:"cancel_latency_max_ns"`
	CancelledMidCluster int   `json:"cancelled_mid_cluster"`
	RecoveredEqual      bool  `json:"recovered_equal"`
	BudgetConformant    bool  `json:"budget_conformant"`
}

// Acceptance floors of the hot-path optimization, with the 10% regression
// grace applied by the caller; of the serving path (cancellation latency,
// absolute — it is a latency budget, not a host-relative ratio); and of the
// EMST hierarchy (sweep amortization over independent runs, a ratio).
const (
	floorSpeedup    = 1.3
	floorAllocRatio = 5.0
	// floorLayoutSpeedup is the cell-major payload's acceptance floor: the
	// headline configuration must cluster at least 1.25x faster over the
	// contiguous layout than over the indirect one with kernels and arena
	// held identical. Soft (a warning with the usual grace), since the
	// layout win is the most cache-sensitive of the ratios.
	floorLayoutSpeedup    = 1.25
	grace                 = 0.9 // >10% below a reference counts as a regression
	floorCancelLatency    = 50 * time.Millisecond
	floorEmstAmortization = 5.0
	// Scaling gate: self-relative speedup at the top of the thread sweep
	// (skipped on single-CPU runners — one hardware CPU cannot speed itself
	// up) and the sampled-core mode's accuracy/speedup acceptance: at a
	// sample fraction <= 0.1 there must be a configuration per dataset that
	// keeps ARI >= 0.95 vs exact (hard — an approximation answering a
	// different question is not a result) while clustering >= 2x faster
	// (soft, with the usual grace).
	floorScaleSpeedup   = 1.5
	floorSampledSpeedup = 2.0
	floorSampledARI     = 0.95
	ceilSampledFrac     = 0.1
	// API load gate: soft ceilings only — absolute latency depends on the
	// runner, so the hard gates are the boolean invariants.
	floorAPISessions = 200
	ceilAPIQueueP99  = 5 * time.Second
	ceilAPIE2EP99    = 30 * time.Second
	// Out-of-core gate: the dataset must dwarf the residency budget (else the
	// run never exercised spilling), the peak mapped window may overshoot the
	// budget only by the final halo slack the scheduler is allowed, and the
	// wall-clock cost of running from disk is softly bounded relative to the
	// in-RAM run on the same host.
	floorOocDatasetRatio = 4.0
	ceilOocPeakRatio     = 1.25
	ceilOocWallRatio     = 8.0
)

// gate accumulates the run's verdict: soft regressions (warnings, errors
// under -strict) and hard failures (correctness invariants, always errors).
type gate struct {
	strict    bool
	regressed bool
	hardFail  bool
}

func (g *gate) warn(format string, args ...any) {
	level := "warning"
	if g.strict {
		level = "error"
	}
	g.regressed = true
	fmt.Printf("::"+level+" ::"+format+"\n", args...)
}

func (g *gate) fail(format string, args ...any) {
	g.hardFail = true
	fmt.Printf("::error ::"+format+"\n", args...)
}

// check flags a ratio metric that dropped more than the grace below its
// reference (an acceptance floor or the committed baseline).
func (g *gate) check(metric string, got, ref float64, refName string) {
	if got >= ref*grace {
		return
	}
	g.warn("hot benchmark regression: %s = %.2f, more than 10%% below the %s of %.2f",
		metric, got, refName, ref)
}

func main() {
	freshPath := flag.String("fresh", "BENCH_hot.json", "freshly generated report to check")
	basePath := flag.String("baseline", "", "committed baseline report to compare against (optional)")
	scalePath := flag.String("scale", "", "freshly generated BENCH_scale.json to gate (optional)")
	servePath := flag.String("serve", "", "freshly generated BENCH_serve.json to gate (optional)")
	apiPath := flag.String("api", "", "freshly generated BENCH_api.json to gate (optional)")
	emstPath := flag.String("emst", "", "freshly generated BENCH_emst.json to gate (optional)")
	oocPath := flag.String("ooc", "", "freshly generated BENCH_ooc.json to gate (optional)")
	strict := flag.Bool("strict", false, "exit non-zero (and annotate as errors) on regression")
	flag.Parse()

	g := &gate{strict: *strict}

	fresh, err := readHeadline(*freshPath)
	if err != nil {
		fmt.Printf("::error ::benchgate: %v\n", err)
		os.Exit(1)
	}
	if fresh != nil {
		g.check("headline_2d_grid_speedup", fresh.Headline2DGridSpeedup, floorSpeedup, "acceptance floor")
		g.check("headline_alloc_ratio", fresh.HeadlineAllocRatio, floorAllocRatio, "acceptance floor")
		if fresh.HeadlineLayoutSpeedup > 0 {
			g.check("headline_layout_speedup", fresh.HeadlineLayoutSpeedup, floorLayoutSpeedup, "acceptance floor")
		} else {
			fmt.Println("::notice ::benchgate: report predates the layout modes (headline_layout_speedup absent); layout floor skipped")
		}

		if *basePath != "" {
			base, err := readHeadline(*basePath)
			switch {
			case err != nil:
				// An unreadable baseline is not a regression — the first run
				// that generates one has nothing to compare against.
				fmt.Printf("::notice ::benchgate: no usable baseline (%v); checked acceptance floors only\n", err)
			case base == nil:
				// readHeadline already printed the missing-file notice.
			case base.Threads != fresh.Threads:
				// A baseline measured at a different worker count is not
				// comparable even on ratio metrics (parallel overheads scale
				// with it); refuse it rather than let a thread-count change
				// masquerade as a perf change in either direction.
				fmt.Printf("::notice ::benchgate: baseline recorded at threads=%d but fresh report at threads=%d; thread-mismatched baselines are not comparable, checked acceptance floors only\n",
					base.Threads, fresh.Threads)
			default:
				g.check("headline_2d_grid_speedup", fresh.Headline2DGridSpeedup, base.Headline2DGridSpeedup, "committed baseline")
				g.check("headline_alloc_ratio", fresh.HeadlineAllocRatio, base.HeadlineAllocRatio, "committed baseline")
				if fresh.HeadlineLayoutSpeedup > 0 && base.HeadlineLayoutSpeedup > 0 {
					g.check("headline_layout_speedup", fresh.HeadlineLayoutSpeedup, base.HeadlineLayoutSpeedup, "committed baseline")
				}
			}
		}
	}

	if *scalePath != "" {
		scale, err := readScale(*scalePath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		if scale != nil {
			g.gateScale(scale)
		}
	}
	if *servePath != "" {
		serve, err := readServe(*servePath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		if serve != nil {
			g.gateServe(serve)
		}
	}
	if *apiPath != "" {
		api, err := readAPI(*apiPath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		if api != nil {
			g.gateAPI(api)
		}
	}
	if *emstPath != "" {
		emst, err := readEmst(*emstPath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		if emst != nil {
			g.gateEmst(emst)
		}
	}
	if *oocPath != "" {
		ooc, err := readOoc(*oocPath)
		if err != nil {
			fmt.Printf("::error ::benchgate: %v\n", err)
			os.Exit(1)
		}
		if ooc != nil {
			g.gateOoc(ooc)
		}
	}

	if !g.regressed && !g.hardFail {
		if fresh != nil {
			layout := ""
			if fresh.HeadlineLayoutSpeedup > 0 {
				layout = fmt.Sprintf(", layout %.2fx >= %.2f", fresh.HeadlineLayoutSpeedup, floorLayoutSpeedup*grace)
			}
			fmt.Printf("benchgate: ok (speedup %.2fx >= %.2f, alloc ratio %.1fx >= %.1f%s)\n",
				fresh.Headline2DGridSpeedup, floorSpeedup*grace, fresh.HeadlineAllocRatio, floorAllocRatio*grace, layout)
		} else {
			fmt.Println("benchgate: ok (hot report missing, floors skipped)")
		}
	}
	if g.hardFail || (g.regressed && *strict) {
		os.Exit(1)
	}
}

func (g *gate) gateScale(scale *scaleHeadline) {
	if len(scale.ThreadSweep) < 2 {
		g.fail("scale: thread sweep covers %d worker count(s); the scaling report requires at least two", len(scale.ThreadSweep))
	}
	if scale.NumCPU <= 1 {
		fmt.Printf("::notice ::scale: runner has %d CPU; self-relative scaling floor (%.1fx) not applicable, skipped\n",
			scale.NumCPU, floorScaleSpeedup)
	} else if scale.TopSelfSpeedup < floorScaleSpeedup*grace {
		g.warn("scale: top self-relative speedup %.2fx at %d threads (%d CPUs), more than 10%% below the %.1fx floor",
			scale.TopSelfSpeedup, scale.ThreadSweep[len(scale.ThreadSweep)-1], scale.NumCPU, floorScaleSpeedup)
	} else {
		fmt.Printf("benchgate: scale ok (self-relative %.2fx at %d threads on %d CPUs)\n",
			scale.TopSelfSpeedup, scale.ThreadSweep[len(scale.ThreadSweep)-1], scale.NumCPU)
	}
	// Sampled-core acceptance, per dataset: among the rows at frac <=
	// ceilSampledFrac, the accurate ones (ARI >= floor) must include a
	// >= 2x clustering-phase speedup. No accurate row at all is a hard
	// error — speed without fidelity is not an approximation.
	bestByDS := map[string]float64{}
	for _, row := range scale.Sampled {
		if row.Frac > ceilSampledFrac {
			continue
		}
		if _, seen := bestByDS[row.Dataset]; !seen {
			bestByDS[row.Dataset] = -1
		}
		if row.ARI >= floorSampledARI && row.Speedup > bestByDS[row.Dataset] {
			bestByDS[row.Dataset] = row.Speedup
		}
	}
	if len(bestByDS) == 0 {
		g.fail("scale: no sampled-core rows at frac <= 0.1 in the report")
	}
	for ds, best := range bestByDS {
		switch {
		case best < 0:
			g.fail("scale: %s: no sampled-core row with ARI >= %.2f vs exact (frac <= %.1f)",
				ds, floorSampledARI, ceilSampledFrac)
		case best < floorSampledSpeedup*grace:
			g.warn("scale: %s: best accurate sampled-core speedup %.2fx, more than 10%% below the %.1fx floor",
				ds, best, floorSampledSpeedup)
		default:
			fmt.Printf("benchgate: scale sampled ok (%s: %.2fx at ARI >= %.2f)\n", ds, best, floorSampledARI)
		}
	}
}

func (g *gate) gateServe(serve *serveHeadline) {
	// Correctness invariants: hard errors regardless of -strict.
	if !serve.RecoveredEqual {
		g.fail("serve: a run after a cancelled run diverged from the baseline (recovered_equal=false)")
	}
	if !serve.BudgetConformant {
		g.fail("serve: engine worker usage exceeded the shared budget (budget_conformant=false)")
	}
	switch {
	case serve.CancelledMidCluster == 0:
		fmt.Printf("::notice ::serve: no trial was cancelled mid-run at n=%d; latency floor not exercised\n", serve.N)
	case time.Duration(serve.CancelLatencyMaxNS) > floorCancelLatency:
		g.warn("serve: cancellation latency max %v exceeds the %v acceptance floor",
			time.Duration(serve.CancelLatencyMaxNS), floorCancelLatency)
	default:
		fmt.Printf("benchgate: serve ok (cancel latency max %v <= %v over %d trials, recovery equal, budget conformant)\n",
			time.Duration(serve.CancelLatencyMaxNS), floorCancelLatency, serve.CancelledMidCluster)
	}
}

func (g *gate) gateAPI(api *apiHeadline) {
	// Invariants of the serving contract: hard errors regardless of
	// -strict. Backpressure (429s) is designed behavior; anything else
	// failing is not.
	if !api.BudgetConformant {
		g.fail("api: engine worker usage exceeded the shared budget under HTTP load (budget_conformant=false)")
	}
	if !api.RetryAfterAlways {
		g.fail("api: a 429/503 response was missing its Retry-After header (retry_after_always=false)")
	}
	if api.ErrorsOther > 0 {
		g.fail("api: %d requests failed outside the designed 429/503 backpressure", api.ErrorsOther)
	}
	if !api.DrainedCleanly {
		g.fail("api: graceful drain did not complete (drained_cleanly=false)")
	}
	if api.Sessions < floorAPISessions {
		g.warn("api: %d concurrent sessions, below the %d-session load floor", api.Sessions, floorAPISessions)
	}
	if time.Duration(api.QueueP99NS) > ceilAPIQueueP99 {
		g.warn("api: queue-wait p99 %v exceeds the %v ceiling", time.Duration(api.QueueP99NS), ceilAPIQueueP99)
	}
	if time.Duration(api.LatencyP99NS) > ceilAPIE2EP99 {
		g.warn("api: end-to-end p99 %v exceeds the %v ceiling", time.Duration(api.LatencyP99NS), ceilAPIE2EP99)
	}
	if api.BudgetConformant && api.RetryAfterAlways && api.ErrorsOther == 0 && api.DrainedCleanly {
		fmt.Printf("benchgate: api ok (%d sessions, %d requests, %d runs, 429 rate %.1f%%, queue p99 %v, e2e p99 %v)\n",
			api.Sessions, api.Requests, api.RunsCompleted, 100*api.Rate429,
			time.Duration(api.QueueP99NS).Round(time.Microsecond),
			time.Duration(api.LatencyP99NS).Round(time.Microsecond))
	}
}

func (g *gate) gateEmst(emst *emstHeadline) {
	// Correctness invariant: every cut label-permutation-equal to its
	// from-scratch run. A fast sweep that answers a different question
	// is not a result; hard error regardless of -strict.
	if !emst.QueriesEqual {
		g.fail("emst: a hierarchy cut diverged from its from-scratch run (queries_equal=false)")
	}
	if emst.AmortizationRatio < floorEmstAmortization*grace {
		g.warn("emst: sweep amortization %.2fx, more than 10%% below the %.1fx acceptance floor",
			emst.AmortizationRatio, floorEmstAmortization)
	} else if emst.QueriesEqual {
		fmt.Printf("benchgate: emst ok (amortization %.2fx >= %.2f at n=%d, all cuts equal)\n",
			emst.AmortizationRatio, floorEmstAmortization*grace, emst.N)
	}
}

func (g *gate) gateOoc(ooc *oocHeadline) {
	// All three acceptance criteria are hard errors regardless of -strict:
	// an out-of-core mode that changes answers, never leaves RAM-scale, or
	// maps past its budget has not earned the name.
	ok := true
	if !ooc.LabelsPermEqual {
		g.fail("ooc: spill labels were not permutation-equal to the in-RAM run (labels_perm_equal=false)")
		ok = false
	}
	if float64(ooc.DatasetBytes) < floorOocDatasetRatio*float64(ooc.BudgetBytes) {
		g.fail("ooc: dataset (%d bytes) is under %.0fx the %d-byte residency budget; the spill path was not meaningfully exercised",
			ooc.DatasetBytes, floorOocDatasetRatio, ooc.BudgetBytes)
		ok = false
	}
	if float64(ooc.PeakResidentBytes) > ceilOocPeakRatio*float64(ooc.BudgetBytes) {
		g.fail("ooc: peak mapped window %d bytes exceeds %.2fx the %d-byte residency budget",
			ooc.PeakResidentBytes, ceilOocPeakRatio, ooc.BudgetBytes)
		ok = false
	}
	if ooc.InRAMWallNS > 0 && float64(ooc.OOCWallNS) > ceilOocWallRatio*float64(ooc.InRAMWallNS) {
		g.warn("ooc: spill run took %v vs %v in-RAM, over the %gx soft ceiling",
			time.Duration(ooc.OOCWallNS), time.Duration(ooc.InRAMWallNS), ceilOocWallRatio)
		ok = false
	}
	if ok {
		fmt.Printf("benchgate: ooc ok (n=%d, dataset %.1fx budget, peak window %.2fx budget, spill wall %.2fx in-RAM, labels equal)\n",
			ooc.N, float64(ooc.DatasetBytes)/float64(ooc.BudgetBytes),
			float64(ooc.PeakResidentBytes)/float64(ooc.BudgetBytes),
			float64(ooc.OOCWallNS)/float64(ooc.InRAMWallNS))
	}
}

// missingNotice reports a plainly absent report file as a skipped gate. Only
// files that exist but cannot be read or parsed are errors.
func missingNotice(path string, err error) bool {
	if os.IsNotExist(err) {
		fmt.Printf("::notice ::benchgate: %s not found; gate skipped\n", path)
		return true
	}
	return false
}

func readScale(path string) (*scaleHeadline, error) {
	data, err := os.ReadFile(path)
	if missingNotice(path, err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var s scaleHeadline
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.NumCPU == 0 || s.TopSelfSpeedup == 0 {
		return nil, fmt.Errorf("%s: missing scale metrics", path)
	}
	return &s, nil
}

func readAPI(path string) (*apiHeadline, error) {
	data, err := os.ReadFile(path)
	if missingNotice(path, err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var a apiHeadline
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.Sessions == 0 || a.Requests == 0 {
		return nil, fmt.Errorf("%s: missing api metrics", path)
	}
	return &a, nil
}

func readEmst(path string) (*emstHeadline, error) {
	data, err := os.ReadFile(path)
	if missingNotice(path, err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var e emstHeadline
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if e.N == 0 || e.AmortizationRatio == 0 {
		return nil, fmt.Errorf("%s: missing emst metrics", path)
	}
	return &e, nil
}

func readOoc(path string) (*oocHeadline, error) {
	data, err := os.ReadFile(path)
	if missingNotice(path, err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var o oocHeadline
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if o.N == 0 || o.DatasetBytes == 0 || o.BudgetBytes == 0 {
		return nil, fmt.Errorf("%s: missing ooc metrics", path)
	}
	return &o, nil
}

func readServe(path string) (*serveHeadline, error) {
	data, err := os.ReadFile(path)
	if missingNotice(path, err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var s serveHeadline
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.N == 0 {
		return nil, fmt.Errorf("%s: missing serve metrics", path)
	}
	return &s, nil
}

func readHeadline(path string) (*hotHeadline, error) {
	data, err := os.ReadFile(path)
	if missingNotice(path, err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var h hotHeadline
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if h.Headline2DGridSpeedup == 0 || h.HeadlineAllocRatio == 0 {
		return nil, fmt.Errorf("%s: missing headline metrics", path)
	}
	return &h, nil
}
