// Command dbscand serves pdbscan over HTTP: a session-oriented JSON API
// (package serve) in front of the job-scheduling engine. Clients create
// sessions holding a Clusterer, StreamingClusterer, or prebuilt Hierarchy,
// then submit batch runs, streaming inserts/ticks, and eps-cut queries as
// jobs with per-request priority and deadline; backpressure from the bounded
// admission queue surfaces as 429s with Retry-After, and GET /metrics exposes
// Prometheus-style scheduler and latency telemetry.
//
// Usage:
//
//	dbscand [-addr :8080] [-budget 0] [-max-queue 64] [-queue-timeout 0]
//	        [-max-sessions 4096] [-retry-after 1s] [-snapshot-dir DIR]
//	        [-pprof ADDR]
//
// With -pprof set (e.g. -pprof localhost:6060), the net/http/pprof profiling
// endpoints are served on that address from a second listener, never on the
// API address — profiling stays off the public surface and off by default.
//
// With -snapshot-dir set, streaming sessions survive restarts: on drain every
// streaming session's warm state (points, ids, incremental caches, pending
// mutations) is written to DIR as a checksummed <session-id>.snap, and on
// boot those files are restored under their original session ids — clients
// resume with the URLs and point ids they had, and the first tick after the
// restart costs what it would have cost without one.
//
// A quick session through curl:
//
//	dbscand -addr :8080 &
//	curl -s localhost:8080/v1/sessions -d '{"kind":"batch","eps":10,"points":[[0,0],[1,1],[2,0],[50,50],[51,50],[50,51]]}'
//	curl -s localhost:8080/v1/sessions/s1/runs -d '{"config":{"min_pts":3},"wait":true}'
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the server drains gracefully, in order: admission stops
// (new mutating requests get 503 + Retry-After), the HTTP server shuts down
// (in-flight handlers, including wait=true runs, finish), and only then the
// engine closes (running jobs complete; still-queued async jobs settle with
// ErrClosed and report 503 on fetch).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdbscan/engine"
	"pdbscan/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int("budget", 0, "total worker budget shared by all jobs (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", engine.DefaultMaxQueue, "admission queue bound; submissions beyond it get 429")
	queueTimeout := flag.Duration("queue-timeout", 0, "max queue wait before a job is rejected with 504 (0 = none)")
	maxSessions := flag.Int("max-sessions", serve.DefaultMaxSessions, "live session bound; creates beyond it get 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429/503 responses")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	snapshotDir := flag.String("snapshot-dir", "", "directory for streaming-session snapshots: restored on boot, saved on drain (\"\" = disabled)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address, e.g. localhost:6060 (\"\" = disabled)")
	flag.Parse()

	srv := serve.New(serve.Options{
		Engine: engine.Options{
			Budget:       *budget,
			MaxQueue:     *maxQueue,
			QueueTimeout: *queueTimeout,
		},
		MaxSessions: *maxSessions,
		RetryAfter:  *retryAfter,
	})
	if *snapshotDir != "" {
		srv.SetSnapshotDir(*snapshotDir)
		n, err := srv.RestoreSnapshots()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbscand: restoring snapshots: %v\n", err)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "dbscand: restored %d streaming session(s) from %s\n", n, *snapshotDir)
		}
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	var ps *http.Server
	if *pprofAddr != "" {
		// Profiling lives on its own listener with an explicit mux: the API
		// handler never routes to it, and nothing is registered on the
		// DefaultServeMux. A failure here is reported but does not take the
		// API down — profiling is an operator convenience, not a dependency.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps = &http.Server{Addr: *pprofAddr, Handler: mux}
		go func() {
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "dbscand: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dbscand: pprof on %s/debug/pprof/\n", *pprofAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dbscand: listening on %s (budget %d, queue %d)\n",
		*addr, srv.Engine().Budget(), *maxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dbscand: %v\n", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "dbscand: %v, draining\n", got)
	}

	// Drain in order: stop admission, let in-flight handlers finish, then
	// close the engine under no HTTP traffic.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dbscand: shutdown: %v\n", err)
	}
	if ps != nil {
		_ = ps.Shutdown(ctx)
	}
	srv.Close()
	if *snapshotDir != "" {
		// After Close: no handler is mid-mutation, every job has settled, so
		// the snapshots capture quiescent session state.
		n, err := srv.SaveSnapshots()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbscand: saving snapshots: %v\n", err)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "dbscand: saved %d streaming session(s) to %s\n", n, *snapshotDir)
		}
	}
	fmt.Fprintln(os.Stderr, "dbscand: drained")
}
