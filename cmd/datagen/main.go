// Command datagen generates the benchmark datasets of Section 7 (seed
// spreader, UniformFill, and the real-dataset simulators) into CSV or binary
// point files.
//
// Usage:
//
//	datagen -dataset ss-varden-3d -n 1000000 -seed 1 -o varden3d.bin
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pdbscan/internal/dataset"
)

func main() {
	var (
		name   = flag.String("dataset", "ss-simden-2d", "dataset name (see -list)")
		n      = flag.Int("n", 1000000, "number of points")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default <dataset>-<n>.<format>)")
		format = flag.String("format", "bin", "output format: bin or csv")
		list   = flag.Bool("list", false, "list available datasets and exit")
	)
	flag.Parse()
	if *list {
		fmt.Println("available datasets:")
		for _, d := range dataset.Names() {
			fmt.Println("  " + d)
		}
		return
	}
	pts, err := dataset.Generate(*name, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%d.%s", strings.ReplaceAll(*name, "/", "-"), *n, *format)
	}
	if err := dataset.SaveFile(path, *format, pts); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d points (d=%d) to %s\n", pts.N, pts.D, path)
}
