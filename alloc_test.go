package pdbscan

import (
	"testing"

	"pdbscan/internal/dataset"
)

// Steady-state allocation budgets. These pin the arena + kernel work: before
// it, a repeated Clusterer.Run on the batch configuration below allocated
// ~4300 times per run (per-pair BCP filter slices, per-cell core list
// growth, ~40 rebuilt scratch buffers); a streaming tick allocated in
// proportion to the cell count. The budgets leave headroom over the measured
// values (run with -v to see them) but sit 1-2 orders of magnitude below the
// pre-arena counts, so any reintroduced per-pair or per-cell allocation
// fails immediately.
//
// Both tests run with Workers: 1 — allocation counts are deterministic for a
// serial run, while parallel runs add goroutine/closure allocations that
// vary with GOMAXPROCS.
//
// The cell-major payload (grid.Cells.Payload) is materialized once at cell
// build time, alongside the grid itself, so it never appears in these per-run
// budgets: a steady-state Run reads the payload but allocates nothing for it.
// A payload rebuild leaking into the run path would blow the serial budget
// immediately (n*d floats is orders of magnitude over it).
const (
	batchRunAllocBudget      = 96
	streamingTickAllocBudget = 160

	// A parallel run adds the per-construct scheduling allocations (worker
	// closures, WaitGroup state) on top of the serial budget — proportional
	// to the pinned worker count times the fixed number of parallel
	// constructs per run, never to n or the cell count. The budget pins that:
	// a reintroduced per-chunk or per-cell allocation in the chunked
	// scheduler blows it immediately.
	batchRunWorkers4AllocBudget = 512
)

// TestClustererRunAllocBudget pins the steady-state allocation count of
// repeated Clusterer.Run calls on a warmed Clusterer.
func TestClustererRunAllocBudget(t *testing.T) {
	pts, err := dataset.Generate("ss-varden-2d", 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClustererFlat(pts.Data, pts.D, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 100, Method: Method2DGridBCP, Workers: 1, Shards: 1}
	res, err := c.Run(cfg) // warm: lazy cell build + arena first fill
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters == 0 {
		t.Fatal("degenerate dataset: no clusters, budget would be meaningless")
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := c.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state Clusterer.Run: %.0f allocs/op (budget %d)", allocs, batchRunAllocBudget)
	if allocs > batchRunAllocBudget {
		t.Errorf("steady-state Clusterer.Run allocated %.0f times, budget is %d", allocs, batchRunAllocBudget)
	}
}

// TestClustererRunAllocBudgetWorkers4 pins the steady-state allocation count
// of a parallel (Workers: 4) repeated Run: the chunk-claiming scheduler must
// cost O(workers) allocations per construct, not O(chunks) or O(cells).
func TestClustererRunAllocBudgetWorkers4(t *testing.T) {
	pts, err := dataset.Generate("ss-varden-2d", 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClustererFlat(pts.Data, pts.D, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 100, Method: Method2DGridBCP, Workers: 4, Shards: 1}
	res, err := c.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters == 0 {
		t.Fatal("degenerate dataset: no clusters, budget would be meaningless")
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := c.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state Clusterer.Run (Workers: 4): %.0f allocs/op (budget %d)", allocs, batchRunWorkers4AllocBudget)
	if allocs > batchRunWorkers4AllocBudget {
		t.Errorf("steady-state parallel Clusterer.Run allocated %.0f times, budget is %d", allocs, batchRunWorkers4AllocBudget)
	}
}

// TestStreamingTickAllocBudget pins the allocation count of a mutation-free
// streaming Run (the tick fast path: everything reused, only the result and
// bookkeeping allocated).
func TestStreamingTickAllocBudget(t *testing.T) {
	pts, err := dataset.Generate("ss-varden-2d", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamingClusterer(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertFlat(pts.Data); err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 50, Workers: 1}
	if _, err := s.Run(cfg); err != nil { // warm: full first tick
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := s.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("mutation-free streaming tick: %.0f allocs/op (budget %d)", allocs, streamingTickAllocBudget)
	if allocs > streamingTickAllocBudget {
		t.Errorf("mutation-free streaming tick allocated %.0f times, budget is %d", allocs, streamingTickAllocBudget)
	}
}
