package pdbscan

import (
	"fmt"
	"math"
)

// StableCluster describes one cluster selected by ExtractStable.
type StableCluster struct {
	// Label is the cluster's index in [0, NumClusters): StableResult.Labels
	// uses these values.
	Label int32
	// Size is the number of points labeled with the cluster.
	Size int
	// Stability is the HDBSCAN* stability score the cluster was selected
	// for: the sum over its points of (lambda_point - lambda_birth), with
	// lambda = 1/eps.
	Stability float64
	// MaxEps is the radius at which the cluster first exists as its own
	// component (the radius just below its parent's split, or the build eps
	// for a root cluster).
	MaxEps float64
}

// StableResult is the flat clustering ExtractStable selects from the
// dendrogram: the most stable non-overlapping set of clusters across all
// density levels at once, rather than the single level a CutEps picks.
type StableResult struct {
	// Labels[i] is the selected cluster of point i, or -1 for noise.
	Labels []int32
	// Clusters describes the selected clusters, indexed by label.
	Clusters []StableCluster
	// NumClusters is len(Clusters).
	NumClusters int
	// MinClusterSize is the condensation threshold the extraction ran with.
	MinClusterSize int
}

// ExtractStable runs HDBSCAN*-style cluster extraction over the hierarchy:
// the linkage forest is condensed (components that never reach
// minClusterSize points are treated as their parents shedding noise, not as
// clusters), each condensed cluster is scored by its stability, and the
// most stable antichain of clusters is selected bottom-up. minClusterSize
// <= 0 means the default max(2, MinPts); values of 1 are rejected — every
// point would be its own maximally-stable cluster.
//
// The hierarchy is eps-bounded, so the extraction sees density levels in
// (0, Eps()] only: components that merge beyond the build radius stay
// separate root clusters, and points with no MinPts-neighborhood within the
// build radius are always noise. ExtractStable is deterministic and safe to
// call concurrently with itself and with cuts.
func (h *Hierarchy) ExtractStable(minClusterSize int) (*StableResult, error) {
	if minClusterSize == 1 {
		return nil, fmt.Errorf("pdbscan: minClusterSize must be >= 2 (or <= 0 for the default), got 1")
	}
	m := minClusterSize
	if m <= 0 {
		m = h.minPts
		if m < 2 {
			m = 2
		}
	}
	f := h.linkageForest()
	cl := h.condense(f, int32(m))
	return h.selectStable(f, cl, m), nil
}

// linkageForest is the binary merge tree of the MSF replay: nodes 0..n-1 are
// the points; node n+t is the component formed by edge t. Children always
// have smaller ids than their parent, so one ascending pass computes sizes.
type linkageForest struct {
	n           int
	left, right []int32   // children of node n+t
	dist        []float64 // sqrt edge weight of node n+t
	size        []int32   // subtree point count, all nodes
	parent      []int32   // parent node id, -1 for roots
	lambdaCap   float64   // 1/dist clamp for zero-length merges
}

func (h *Hierarchy) linkageForest() *linkageForest {
	n := len(h.cd2)
	mEdges := len(h.edges)
	f := &linkageForest{
		n:     n,
		left:  make([]int32, mEdges),
		right: make([]int32, mEdges),
		dist:  make([]float64, mEdges),
		size:  make([]int32, n+mEdges),
		parent: func() []int32 {
			p := make([]int32, n+mEdges)
			for i := range p {
				p[i] = -1
			}
			return p
		}(),
	}
	for i := 0; i < n; i++ {
		f.size[i] = 1
	}
	// Serial union-find replay in edge order; nodeOf[root] tracks the
	// current tree node of each live component.
	uf := make([]int32, n)
	nodeOf := make([]int32, n)
	for i := range uf {
		uf[i] = int32(i)
		nodeOf[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]] // path halving
			x = uf[x]
		}
		return x
	}
	minPos := math.Inf(1)
	for t, e := range h.edges {
		ra, rb := find(e.A), find(e.B)
		na, nb := nodeOf[ra], nodeOf[rb]
		uf[ra] = rb
		id := int32(n + t)
		f.left[t], f.right[t] = na, nb
		d := math.Sqrt(e.W2)
		f.dist[t] = d
		if d > 0 && d < minPos {
			minPos = d
		}
		f.size[id] = f.size[na] + f.size[nb]
		f.parent[na], f.parent[nb] = id, id
		nodeOf[rb] = id
	}
	// lambda = 1/d diverges on zero-length merges (duplicate points);
	// clamp to twice the lambda of the smallest positive merge distance,
	// so duplicates merge "first" but with a finite stability weight.
	switch {
	case !math.IsInf(minPos, 1):
		f.lambdaCap = 2 / minPos
	case h.eps > 0:
		f.lambdaCap = 2 / h.eps
	default:
		f.lambdaCap = 1
	}
	return f
}

func (f *linkageForest) lambda(d float64) float64 {
	if d <= 0 {
		return f.lambdaCap
	}
	l := 1 / d
	if l > f.lambdaCap {
		return f.lambdaCap
	}
	return l
}

// condensed is the condensed tree: one entry per cluster that ever held
// minClusterSize points, parents before children.
type condensed struct {
	parent    []int32   // condensed parent cluster, -1 for roots
	birthL    []float64 // lambda at which the cluster appears
	stability []float64
	// pointCid[p] is the condensed cluster point p last belonged to (-1:
	// never in one); pointL[p] the lambda at which it fell out.
	pointCid []int32
	pointL   []float64
}

// condense walks each sufficiently-large root of the linkage forest top-down
// (iteratively — chain-shaped linkages are O(n) deep). At each split: two
// big children start two new clusters; one big child continues the current
// cluster while the small side's points fall out as noise-at-that-level;
// two small children dissolve the cluster.
func (h *Hierarchy) condense(f *linkageForest, m int32) *condensed {
	n := f.n
	cl := &condensed{
		pointCid: make([]int32, n),
		pointL:   make([]float64, n),
	}
	for i := range cl.pointCid {
		cl.pointCid[i] = -1
	}
	newCluster := func(parent int32, birth float64) int32 {
		id := int32(len(cl.parent))
		cl.parent = append(cl.parent, parent)
		cl.birthL = append(cl.birthL, birth)
		cl.stability = append(cl.stability, 0)
		return id
	}
	// fallOut assigns every leaf under node to cid at level lam.
	var leafStack []int32
	fallOut := func(node, cid int32, lam float64) {
		leafStack = append(leafStack[:0], node)
		for len(leafStack) > 0 {
			nd := leafStack[len(leafStack)-1]
			leafStack = leafStack[:len(leafStack)-1]
			if nd < int32(n) {
				cl.pointCid[nd] = cid
				cl.pointL[nd] = lam
				cl.stability[cid] += lam - cl.birthL[cid]
				continue
			}
			t := nd - int32(n)
			leafStack = append(leafStack, f.left[t], f.right[t])
		}
	}
	rootL := f.lambda(h.eps)
	type frame struct {
		node int32
		cid  int32
	}
	var stack []frame
	for id := n + len(f.dist) - 1; id >= 0; id-- {
		if f.parent[id] != -1 || f.size[id] < m {
			continue
		}
		// A root with >= m points: a selectable cluster born at the build
		// radius (the hierarchy answers no level above it).
		stack = append(stack, frame{int32(id), newCluster(-1, rootL)})
	}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node, cid := fr.node, fr.cid
		for {
			// node has >= m points, so it is an internal node (leaves have
			// size 1 < m).
			t := node - int32(n)
			l, r := f.left[t], f.right[t]
			lam := f.lambda(f.dist[t])
			bigL, bigR := f.size[l] >= m, f.size[r] >= m
			if bigL && bigR {
				// True split: the cluster's points all persist to lam, then
				// continue as two new child clusters.
				cl.stability[cid] += float64(f.size[l]+f.size[r]) * (lam - cl.birthL[cid])
				stack = append(stack, frame{l, newCluster(cid, lam)})
				stack = append(stack, frame{r, newCluster(cid, lam)})
				break
			}
			if !bigL && !bigR {
				// Both sides shrink below m: the cluster dissolves here.
				fallOut(l, cid, lam)
				fallOut(r, cid, lam)
				break
			}
			// One side sheds points; the cluster continues down the other.
			if bigL {
				fallOut(r, cid, lam)
				node = l
			} else {
				fallOut(l, cid, lam)
				node = r
			}
		}
	}
	return cl
}

// selectStable picks the most stable antichain: bottom-up, a cluster is
// selected when its own stability is at least the sum of its children's
// selected stabilities; top-down, selected clusters with a selected
// ancestor yield to it. Creation order has parents before children, so a
// reverse pass is the bottom-up order.
func (h *Hierarchy) selectStable(f *linkageForest, cl *condensed, m int) *StableResult {
	nc := len(cl.parent)
	childSum := make([]float64, nc)
	selStab := make([]float64, nc)
	selected := make([]bool, nc)
	hasChild := make([]bool, nc)
	for i := 0; i < nc; i++ {
		if p := cl.parent[i]; p >= 0 {
			hasChild[p] = true
		}
	}
	for i := nc - 1; i >= 0; i-- {
		if !hasChild[i] || cl.stability[i] >= childSum[i] {
			selStab[i] = cl.stability[i]
			selected[i] = true
		} else {
			selStab[i] = childSum[i]
		}
		if p := cl.parent[i]; p >= 0 {
			childSum[p] += selStab[i]
		}
	}
	// finalOf[i]: the label of the selected cluster covering i (itself or
	// its nearest selected ancestor), -1 when none.
	finalOf := make([]int32, nc)
	var clusters []StableCluster
	for i := 0; i < nc; i++ {
		inherit := int32(-1)
		if p := cl.parent[i]; p >= 0 {
			inherit = finalOf[p]
		}
		switch {
		case inherit >= 0:
			finalOf[i] = inherit
		case selected[i]:
			finalOf[i] = int32(len(clusters))
			clusters = append(clusters, StableCluster{
				Label:     int32(len(clusters)),
				Stability: cl.stability[i],
				MaxEps:    1 / cl.birthL[i],
			})
		default:
			finalOf[i] = -1
		}
	}
	labels := make([]int32, f.n)
	for p := 0; p < f.n; p++ {
		labels[p] = -1
		if cid := cl.pointCid[p]; cid >= 0 {
			if lbl := finalOf[cid]; lbl >= 0 {
				labels[p] = lbl
				clusters[lbl].Size++
			}
		}
	}
	return &StableResult{
		Labels:         labels,
		Clusters:       clusters,
		NumClusters:    len(clusters),
		MinClusterSize: m,
	}
}
