package usec

import (
	"math/rand"
	"testing"
)

func BenchmarkBuildEnvelope(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	us, vs := makeCell(10000, 2.0, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildEnvelope(us, vs, 2.0)
	}
}

func BenchmarkCovers(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	us, vs := makeCell(10000, 2.0, rng)
	e := BuildEnvelope(us, vs, 2.0)
	queries := make([][2]float64, 256)
	for i := range queries {
		queries[i] = [2]float64{rng.Float64()*4 - 1, rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		e.Covers(q[0], q[1])
	}
}
