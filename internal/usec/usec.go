// Package usec implements the unit-spherical emptiness checking (USEC) with
// line separation subroutine of Section 4.4 and Appendix A: given points on
// one side of an axis-parallel line, build the wavefront — the upper envelope
// of their eps-radius circles on the other side of the line — and answer
// whether any query point on the other side lies inside the union of circles.
//
// Geometry is expressed in a canonical frame: centers have coordinates
// (u, v), the separating line is horizontal, and queries come from v-above.
// The appendix's uniqueness argument (equal-radius circles sorted by u cross
// at most once) makes a monotone-stack construction exact: each new circle
// caps or removes arcs from the right end of the envelope. Construction is
// serial per cell but cells are processed in parallel by ClusterCore, and
// queries are O(log m) binary searches (a documented substitution for the
// balanced-tree split/join merge of the paper; answers are identical).
package usec

import (
	"math"
	"sort"
)

// Envelope is the wavefront of equal-radius circles: a sequence of arcs,
// each owning an interval [Lo[i], Hi[i]] of u-coordinates (intervals are
// non-overlapping and increasing, possibly with gaps when circles are
// disjoint).
type Envelope struct {
	lo, hi []float64 // arc intervals
	cu, cv []float64 // arc centers
	r      float64
}

// BuildEnvelope constructs the wavefront for circles of radius r centered at
// the given (u, v) points. The centers must be sorted by increasing u
// (ties allowed; only the highest-v center of each distinct u contributes,
// since its circle dominates the others above the line — Appendix A).
func BuildEnvelope(us, vs []float64, r float64) *Envelope {
	e := &Envelope{r: r}
	n := len(us)
	for i := 0; i < n; i++ {
		// Deduplicate equal u: keep the maximum v (it dominates above the
		// separating line for equal radii).
		if i+1 < n && us[i+1] == us[i] {
			continue
		}
		u, v := us[i], vs[i]
		// Among equal u's we kept the last; ensure it is the max-v one.
		for j := i; j >= 0 && us[j] == u; j-- {
			if vs[j] > v {
				v = vs[j]
			}
		}
		e.push(u, v)
	}
	if k := len(e.lo); k > 0 {
		e.hi[k-1] = e.cu[k-1] + r
	}
	return e
}

// push adds the circle centered at (u, v) to the right end of the envelope.
func (e *Envelope) push(u, v float64) {
	r := e.r
	for len(e.lo) > 0 {
		k := len(e.lo) - 1
		tu, tv := e.cu[k], e.cv[k]
		du, dv := u-tu, v-tv
		d2 := du*du + dv*dv
		if d2 < 4*r*r {
			// Circles properly intersect. The upper-branch functions cross
			// at the circle intersection with larger v — but only if that
			// point actually lies on both upper branches (v at least both
			// centers). Otherwise the higher circle dominates the entire
			// shared domain.
			d := math.Sqrt(d2)
			h := math.Sqrt(r*r - d2/4)
			crossU := (tu+u)/2 - h*dv/d
			crossV := (tv+v)/2 + h*du/d
			switch {
			case dv > 0 && crossV < v:
				// New circle dominates everywhere both are defined; it takes
				// over from its own domain start.
				start := u - r
				if start <= e.lo[k] {
					e.pop()
					continue
				}
				e.hi[k] = start
				e.append(u, v, start)
			case dv < 0 && crossV < tv:
				// Top circle dominates the shared domain; the new circle
				// only survives past the top's natural end.
				tEnd := tu + r
				e.hi[k] = tEnd
				lo := u - r
				if lo < tEnd {
					lo = tEnd
				}
				if lo >= u+r {
					return // entirely dominated
				}
				e.append(u, v, lo)
			default:
				// Proper envelope crossing (Appendix A: unique).
				if crossU <= e.lo[k] {
					e.pop() // new circle dominates the whole top arc
					continue
				}
				e.hi[k] = crossU
				e.append(u, v, crossU)
			}
			return
		}
		// Disjoint (or tangent) circles: one dominates the shared u-range.
		if dv > 0 {
			// New circle is higher: it dominates the top arc from its own
			// domain start onward (possibly leaving a gap if the domains
			// are disjoint in u).
			start := u - r
			if start <= e.lo[k] {
				e.pop()
				continue
			}
			if end := tu + r; end < start {
				e.hi[k] = end
			} else {
				e.hi[k] = start
			}
			e.append(u, v, start)
			return
		}
		// New circle is lower or equal: it only survives past the top
		// arc's natural end.
		tEnd := tu + r
		e.hi[k] = tEnd
		lo := u - r
		if lo < tEnd {
			lo = tEnd
		}
		if lo >= u+r {
			// Entirely dominated; the new circle contributes nothing.
			return
		}
		e.append(u, v, lo)
		return
	}
	e.append(u, v, u-r)
}

func (e *Envelope) append(u, v, lo float64) {
	e.lo = append(e.lo, lo)
	e.hi = append(e.hi, u+e.r) // provisional; capped when superseded
	e.cu = append(e.cu, u)
	e.cv = append(e.cv, v)
}

func (e *Envelope) pop() {
	k := len(e.lo) - 1
	e.lo = e.lo[:k]
	e.hi = e.hi[:k]
	e.cu = e.cu[:k]
	e.cv = e.cv[:k]
}

// Len returns the number of arcs.
func (e *Envelope) Len() int { return len(e.lo) }

// Covers reports whether the query point (u, v) lies within distance r of
// some envelope center. The USEC precondition must hold: v is on or above
// the separating line, and every center is on or below it. Under that
// precondition, checking the single arc that owns u is sufficient
// (Appendix A / package comment).
func (e *Envelope) Covers(u, v float64) bool {
	n := len(e.lo)
	if n == 0 {
		return false
	}
	// Last arc with lo <= u.
	i := sort.Search(n, func(k int) bool { return e.lo[k] > u }) - 1
	if i < 0 || u > e.hi[i] {
		return false
	}
	du, dv := u-e.cu[i], v-e.cv[i]
	return du*du+dv*dv <= e.r*e.r
}

// CoversAny reports whether any of the query points lies inside the union of
// circles, scanning with early exit.
func (e *Envelope) CoversAny(us, vs []float64) bool {
	for i := range us {
		if e.Covers(us[i], vs[i]) {
			return true
		}
	}
	return false
}
