package usec

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteCovers checks the union-of-disks membership directly.
func bruteCovers(cus, cvs []float64, r, u, v float64) bool {
	for i := range cus {
		du, dv := u-cus[i], v-cvs[i]
		if du*du+dv*dv <= r*r {
			return true
		}
	}
	return false
}

// makeCell generates centers in a square cell below the line v=0 (cell side
// chosen so all pairwise distances are < r, like a DBSCAN cell), sorted by u.
func makeCell(n int, r float64, rng *rand.Rand) (us, vs []float64) {
	side := r / 1.5
	us = make([]float64, n)
	vs = make([]float64, n)
	for i := range us {
		us[i] = rng.Float64() * side
		vs[i] = -rng.Float64() * side
	}
	sort.Sort(byU{us, vs})
	return us, vs
}

type byU struct{ us, vs []float64 }

func (b byU) Len() int           { return len(b.us) }
func (b byU) Less(i, j int) bool { return b.us[i] < b.us[j] }
func (b byU) Swap(i, j int) {
	b.us[i], b.us[j] = b.us[j], b.us[i]
	b.vs[i], b.vs[j] = b.vs[j], b.vs[i]
}

func TestCoversMatchesBruteForceDBSCANRegime(t *testing.T) {
	// Centers confined to a cell below the line; queries above the line.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		r := 1 + rng.Float64()*3
		n := 1 + rng.Intn(40)
		us, vs := makeCell(n, r, rng)
		e := BuildEnvelope(us, vs, r)
		for q := 0; q < 50; q++ {
			qu := rng.Float64()*8 - 3
			qv := rng.Float64() * 3 // above the line v=0
			want := bruteCovers(us, vs, r, qu, qv)
			if got := e.Covers(qu, qv); got != want {
				t.Fatalf("trial %d query %d: Covers(%v,%v)=%v want %v (n=%d r=%v)",
					trial, q, qu, qv, got, want, n, r)
			}
		}
	}
}

func TestCoversGeneralCentersWideSpread(t *testing.T) {
	// Centers spread wider than a DBSCAN cell (exercises the disjoint-circle
	// code paths, including gaps).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		r := 0.5 + rng.Float64()
		n := 1 + rng.Intn(30)
		us := make([]float64, n)
		vs := make([]float64, n)
		for i := range us {
			us[i] = rng.Float64() * 20 // wide spread -> disjoint circles
			vs[i] = -rng.Float64() * 2
		}
		sort.Sort(byU{us, vs})
		e := BuildEnvelope(us, vs, r)
		for q := 0; q < 60; q++ {
			qu := rng.Float64()*24 - 2
			qv := rng.Float64() * 2
			want := bruteCovers(us, vs, r, qu, qv)
			if got := e.Covers(qu, qv); got != want {
				t.Fatalf("trial %d: Covers(%v,%v)=%v want %v", trial, qu, qv, got, want)
			}
		}
	}
}

func TestEqualUCentersDeduplicated(t *testing.T) {
	// Vertically stacked centers: only the highest matters above the line.
	us := []float64{1, 1, 1}
	vs := []float64{-3, -1, -2}
	e := BuildEnvelope(us, vs, 2)
	if e.Len() != 1 {
		t.Fatalf("arcs = %d, want 1", e.Len())
	}
	if !e.Covers(1, 0.9) { // within 2 of (1,-1)
		t.Fatal("query near top center not covered")
	}
	if e.Covers(1, 1.1) {
		t.Fatal("query beyond top circle covered")
	}
}

func TestSingleCircle(t *testing.T) {
	e := BuildEnvelope([]float64{0}, []float64{-1}, 2)
	if e.Len() != 1 {
		t.Fatalf("arcs = %d", e.Len())
	}
	cases := []struct {
		u, v float64
		want bool
	}{
		{0, 0, true}, // directly above center, dist 1
		{0, 0.99, true},
		{0, 1.01, false},
		{1.9, 0, false}, // dist sqrt(1.9^2+1) > 2
		{1.7, 0, true},  // dist sqrt(1.7^2+1) = 1.97 < 2
		{-5, 0, false},  // outside arc range
	}
	for _, c := range cases {
		if got := e.Covers(c.u, c.v); got != c.want {
			t.Fatalf("Covers(%v,%v) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEmptyEnvelope(t *testing.T) {
	e := BuildEnvelope(nil, nil, 1)
	if e.Len() != 0 {
		t.Fatalf("arcs = %d", e.Len())
	}
	if e.Covers(0, 0) {
		t.Fatal("empty envelope covers a point")
	}
}

func TestCoversAnyEarlyExit(t *testing.T) {
	us := []float64{0, 1, 2}
	vs := []float64{-1, -0.5, -1}
	e := BuildEnvelope(us, vs, 1.5)
	if !e.CoversAny([]float64{10, 1}, []float64{0, 0.5}) {
		t.Fatal("CoversAny missed a covered point")
	}
	if e.CoversAny([]float64{10, 20}, []float64{0, 0}) {
		t.Fatal("CoversAny claimed far points covered")
	}
}

func TestArcsAreOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		us, vs := makeCell(n, 2.0, rng)
		e := BuildEnvelope(us, vs, 2.0)
		for i := 0; i < e.Len(); i++ {
			if e.hi[i] < e.lo[i]-1e-12 {
				t.Fatalf("arc %d has hi < lo", i)
			}
			if i > 0 && e.lo[i] < e.hi[i-1]-1e-9 {
				t.Fatalf("arc %d overlaps previous (lo=%v prev hi=%v)", i, e.lo[i], e.hi[i-1])
			}
		}
	}
}

func TestDensePointsOnLine(t *testing.T) {
	// Centers all at the same v: classic umbrella envelope.
	n := 100
	us := make([]float64, n)
	vs := make([]float64, n)
	for i := range us {
		us[i] = float64(i) * 0.01
		vs[i] = -0.5
	}
	e := BuildEnvelope(us, vs, 1)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 200; q++ {
		qu := rng.Float64()*3 - 1
		qv := rng.Float64()
		want := bruteCovers(us, vs, 1, qu, qv)
		if got := e.Covers(qu, qv); got != want {
			t.Fatalf("Covers(%v,%v)=%v want %v", qu, qv, got, want)
		}
	}
}
