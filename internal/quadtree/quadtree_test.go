package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
)

// cellPoints generates n random points inside the cube (lo, side) in d dims.
func cellPoints(n, d int, lo []float64, side float64, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			data[i*d+j] = lo[j] + rng.Float64()*side
		}
	}
	return geom.Points{N: n, D: d, Data: data}
}

func allIdx(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

func bruteCount(pts geom.Points, q []float64, r float64) int {
	c := 0
	r2 := r * r
	for i := 0; i < pts.N; i++ {
		if geom.DistSq(q, pts.At(i)) <= r2 {
			c++
		}
	}
	return c
}

func TestCountWithinMatchesBrute(t *testing.T) {
	for _, d := range []int{2, 3, 5, 7} {
		lo := make([]float64, d)
		side := 10.0
		pts := cellPoints(3000, d, lo, side, int64(d))
		tree := Build(nil, pts, allIdx(pts.N), lo, side, -1)
		rng := rand.New(rand.NewSource(50 + int64(d)))
		for trial := 0; trial < 40; trial++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Float64()*20 - 5 // also query from outside the cube
			}
			r := rng.Float64() * 8
			want := bruteCount(pts, q, r)
			if got := tree.CountWithin(q, r); got != want {
				t.Fatalf("d=%d trial=%d: count=%d want %d", d, trial, got, want)
			}
		}
	}
}

func TestAnyWithinMatchesCount(t *testing.T) {
	d := 3
	lo := make([]float64, d)
	pts := cellPoints(2000, d, lo, 5.0, 9)
	tree := Build(nil, pts, allIdx(pts.N), lo, 5.0, -1)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		r := rng.Float64() * 3
		want := bruteCount(pts, q, r) > 0
		if got := tree.AnyWithin(q, r); got != want {
			t.Fatalf("trial %d: AnyWithin=%v want %v", trial, got, want)
		}
	}
}

func TestApproxCountSandwich(t *testing.T) {
	for _, rho := range []float64{0.001, 0.01, 0.1, 0.5} {
		d := 3
		eps := 2.0
		side := eps / math.Sqrt(float64(d))
		lo := []float64{0, 0, 0}
		pts := cellPoints(2000, d, lo, side, 77)
		tree := Build(nil, pts, allIdx(pts.N), lo, side, ApproxDepth(rho))
		rng := rand.New(rand.NewSource(78))
		for trial := 0; trial < 60; trial++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Float64()*3*side - side
			}
			lower := bruteCount(pts, q, eps)
			upper := bruteCount(pts, q, eps*(1+rho))
			got := tree.ApproxCountWithin(q, eps, rho)
			if got < lower || got > upper {
				t.Fatalf("rho=%v trial=%d: approx count %d outside [%d, %d]",
					rho, trial, got, lower, upper)
			}
			gotAny := tree.ApproxAnyWithin(q, eps, rho)
			if lower > 0 && !gotAny {
				t.Fatalf("rho=%v trial=%d: ApproxAnyWithin false but %d points within eps", rho, trial, lower)
			}
			if upper == 0 && gotAny {
				t.Fatalf("rho=%v trial=%d: ApproxAnyWithin true but none within eps(1+rho)", rho, trial)
			}
		}
	}
}

func TestApproxDepth(t *testing.T) {
	if got := ApproxDepth(1); got != 0 {
		t.Fatalf("ApproxDepth(1) = %d, want 0", got)
	}
	if got := ApproxDepth(0.01); got != 7 {
		t.Fatalf("ApproxDepth(0.01) = %d, want 7 (2^7=128 >= 100)", got)
	}
	if got := ApproxDepth(0); got != -1 {
		t.Fatalf("ApproxDepth(0) = %d, want -1 (exact)", got)
	}
}

func TestEmptyTree(t *testing.T) {
	pts := geom.Points{N: 0, D: 2}
	tree := Build(nil, pts, nil, []float64{0, 0}, 1.0, -1)
	if tree.CountWithin([]float64{0, 0}, 100) != 0 {
		t.Fatal("empty tree counted points")
	}
	if tree.AnyWithin([]float64{0, 0}, 100) {
		t.Fatal("empty tree AnyWithin true")
	}
	if tree.ApproxAnyWithin([]float64{0, 0}, 100, 0.1) {
		t.Fatal("empty tree ApproxAnyWithin true")
	}
}

func TestIdenticalPoints(t *testing.T) {
	// Degenerate input: the descend loop must terminate.
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{0.5, 0.5}
	}
	pts, _ := geom.FromRows(rows)
	tree := Build(nil, pts, allIdx(pts.N), []float64{0, 0}, 1.0, -1)
	if got := tree.CountWithin([]float64{0.5, 0.5}, 0); got != 500 {
		t.Fatalf("identical points count = %d, want 500", got)
	}
	if got := tree.CountWithin([]float64{2, 2}, 1); got != 0 {
		t.Fatalf("far query count = %d, want 0", got)
	}
}

func TestSubsetTree(t *testing.T) {
	lo := []float64{0, 0}
	pts := cellPoints(100, 2, lo, 4.0, 5)
	idx := []int32{}
	for i := 0; i < 100; i += 2 {
		idx = append(idx, int32(i))
	}
	tree := Build(nil, pts, idx, lo, 4.0, -1)
	if tree.Size() != 50 {
		t.Fatalf("size = %d", tree.Size())
	}
	got := tree.CountWithin([]float64{2, 2}, 100)
	if got != 50 {
		t.Fatalf("subset count = %d, want 50", got)
	}
}

func TestHighDimensionalTree(t *testing.T) {
	// d=10 exercises the 2^d child-key space (1024 children).
	d := 10
	lo := make([]float64, d)
	pts := cellPoints(1500, d, lo, 6.0, 42)
	tree := Build(nil, pts, allIdx(pts.N), lo, 6.0, -1)
	q := make([]float64, d)
	for j := range q {
		q[j] = 3.0
	}
	for _, r := range []float64{0.5, 2, 5, 20} {
		want := bruteCount(pts, q, r)
		if got := tree.CountWithin(q, r); got != want {
			t.Fatalf("r=%v: count %d want %d", r, got, want)
		}
	}
}
