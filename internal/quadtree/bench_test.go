package quadtree

import (
	"math/rand"
	"testing"
)

func BenchmarkBuildExact3D(b *testing.B) {
	lo := []float64{0, 0, 0}
	pts := cellPoints(50000, 3, lo, 10, 1)
	idx := allIdx(pts.N)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := make([]int32, len(idx))
		copy(work, idx)
		Build(nil, pts, work, lo, 10, -1)
	}
}

func BenchmarkBuildApprox3D(b *testing.B) {
	lo := []float64{0, 0, 0}
	pts := cellPoints(50000, 3, lo, 10, 1)
	idx := allIdx(pts.N)
	depth := ApproxDepth(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := make([]int32, len(idx))
		copy(work, idx)
		Build(nil, pts, work, lo, 10, depth)
	}
}

func BenchmarkCountWithin(b *testing.B) {
	lo := []float64{0, 0, 0}
	pts := cellPoints(50000, 3, lo, 10, 1)
	tree := Build(nil, pts, allIdx(pts.N), lo, 10, -1)
	rng := rand.New(rand.NewSource(2))
	queries := make([][]float64, 256)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.CountWithin(queries[i%len(queries)], 1.5)
	}
}

func BenchmarkApproxAnyWithin(b *testing.B) {
	lo := []float64{0, 0, 0}
	pts := cellPoints(50000, 3, lo, 10, 1)
	tree := Build(nil, pts, allIdx(pts.N), lo, 10, ApproxDepth(0.01))
	rng := rand.New(rand.NewSource(3))
	queries := make([][]float64, 256)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 12, rng.Float64() * 12, rng.Float64() * 12}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.ApproxAnyWithin(queries[i%len(queries)], 1.5, 0.01)
	}
}
