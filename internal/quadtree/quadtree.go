// Package quadtree implements the per-cell quadtree of Section 5.2: a cell
// cube of side eps/sqrt(d) is recursively divided into 2^d sub-cells, keeping
// only non-empty children, until a leaf threshold is reached (exact tree) or
// the side length drops to eps*rho/sqrt(d) (approximate tree, maximum depth
// 1 + ceil(log2(1/rho))). Construction sorts the points of a node by child
// index with the integer sort primitive, making the children contiguous
// subarrays that are built in parallel. Nodes with a single non-empty child
// are collapsed by descending directly into the occupied sub-cell, so every
// materialized internal node has at least two non-empty children.
package quadtree

import (
	"math"

	"pdbscan/internal/geom"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// leafThreshold is the point count at or below which a node becomes a leaf
// (the construction-time optimization described in Section 5.2).
const leafThreshold = 16

// hardMaxDepth bounds the descend loop for degenerate inputs (e.g. many
// identical points).
const hardMaxDepth = 64

type node struct {
	lo       []float64 // sub-cell corner (d coords)
	hi       []float64 // lo + side per coordinate, precomputed once at build
	side     float64   // sub-cell side length
	start    int32     // range into tree idx
	count    int32
	children []*node // non-empty children; nil for leaves
	capped   bool    // leaf due to the approximate depth cap
}

// fillHi precomputes the node's upper corner from its (final) lo and side.
// Called when build returns the node — after the single-child descend loop
// has stopped mutating lo — so the traversals never rebuild the corner per
// visit (the per-visit slice allocation this replaces dominated quadtree
// query cost).
func (n *node) fillHi(d int) {
	n.hi = make([]float64, d)
	for j := 0; j < d; j++ {
		n.hi[j] = n.lo[j] + n.side
	}
}

// Tree answers range-count queries over one cell's points.
type Tree struct {
	pts  geom.Points
	k    geom.Kernel // dimension-resolved distance kernel for leaf scans
	idx  []int32
	root *node
	ex   *parallel.Pool // build-time executor; queries are serial
}

// Build constructs a quadtree over the given point indices, rooted at the
// cube (boxLo, side). maxDepth < 0 builds the exact tree; maxDepth >= 0 also
// stops subdividing after maxDepth levels (the approximate tree of Section
// 5.2 uses ApproxDepth(rho)).
func Build(ex *parallel.Pool, pts geom.Points, idx []int32, boxLo []float64, side float64, maxDepth int) *Tree {
	t := &Tree{pts: pts, k: geom.NewKernel(pts), idx: idx, ex: ex}
	if len(idx) > 0 {
		lo := make([]float64, pts.D)
		copy(lo, boxLo)
		t.root = t.build(lo, side, 0, int32(len(idx)), 0, maxDepth, ex.Workers())
	}
	return t
}

// ApproxDepth returns the subdivision depth cap for approximation parameter
// rho: ceil(log2(1/rho)) levels below the root, so the tree has
// 1 + ceil(log2(1/rho)) levels as in the paper.
func ApproxDepth(rho float64) int {
	if rho <= 0 {
		return -1
	}
	return int(math.Ceil(math.Log2(1 / rho)))
}

func (t *Tree) build(lo []float64, side float64, start, count int32, depth, maxDepth, budget int) *node {
	d := t.pts.D
	n := &node{lo: lo, side: side, start: start, count: count}
	// The descend loop below may still shift n.lo (it aliases lo); fill the
	// upper corner only once this call is done mutating it.
	defer n.fillHi(d)
	if count <= leafThreshold || depth >= hardMaxDepth {
		return n
	}
	if maxDepth >= 0 && depth >= maxDepth {
		n.capped = true
		return n
	}
	// Descend until the points split into at least two different sub-cells.
	sub := t.idx[start : start+count]
	keys := make([]int32, count)
	for {
		first := t.childKey(sub[0], lo, side)
		uniform := true
		for i, p := range sub {
			k := t.childKey(p, lo, side)
			keys[i] = k
			if k != first {
				uniform = false
			}
		}
		if !uniform {
			break
		}
		// Single occupied sub-cell: shrink the box and re-split.
		half := side / 2
		for j := 0; j < d; j++ {
			if first&(1<<j) != 0 {
				lo[j] += half
			}
		}
		side = half
		depth++
		if depth >= hardMaxDepth {
			return n
		}
		if maxDepth >= 0 && depth >= maxDepth {
			n.capped = true
			return n
		}
	}

	// Group the points by child index: parallel integer sort for large
	// nodes, serial counting sort otherwise.
	keyRange := 1 << d
	if count >= 8192 && keyRange <= 256 {
		prim.IntegerSort(t.ex, keys, sub, keyRange)
	} else {
		countingSortByKey(keys, sub, keyRange)
	}

	// Children boundaries.
	half := side / 2
	type childRange struct {
		key    int32
		lo, hi int32
	}
	var ranges []childRange
	for i := int32(0); i < count; {
		j := i + 1
		for j < count && keys[j] == keys[i] {
			j++
		}
		ranges = append(ranges, childRange{key: keys[i], lo: i, hi: j})
		i = j
	}
	n.children = make([]*node, len(ranges))
	buildChild := func(k int) {
		r := ranges[k]
		cl := make([]float64, d)
		copy(cl, lo)
		for j := 0; j < d; j++ {
			if r.key&(1<<j) != 0 {
				cl[j] += half
			}
		}
		n.children[k] = t.build(cl, half, start+r.lo, r.hi-r.lo, depth+1, maxDepth, 1)
	}
	if count > 4096 && budget > 1 {
		t.ex.ForGrain(len(ranges), 1, buildChild)
	} else {
		for k := range ranges {
			buildChild(k)
		}
	}
	return n
}

// childKey returns the sub-cell index of point p within (lo, side): bit j is
// set iff coordinate j lies in the upper half.
func (t *Tree) childKey(p int32, lo []float64, side float64) int32 {
	row := t.pts.At(int(p))
	half := side / 2
	var k int32
	for j, v := range row {
		if v >= lo[j]+half {
			k |= 1 << j
		}
	}
	return k
}

// countingSortByKey stably sorts (keys, vals) by key with a serial counting
// sort over [0, keyRange).
func countingSortByKey(keys, vals []int32, keyRange int) {
	counts := make([]int32, keyRange+1)
	for _, k := range keys {
		counts[k+1]++
	}
	for k := 0; k < keyRange; k++ {
		counts[k+1] += counts[k]
	}
	outK := make([]int32, len(keys))
	outV := make([]int32, len(vals))
	for i, k := range keys {
		w := counts[k]
		counts[k] = w + 1
		outK[w] = k
		outV[w] = vals[i]
	}
	copy(keys, outK)
	copy(vals, outV)
}

// Size returns the number of points in the tree.
func (t *Tree) Size() int { return len(t.idx) }

// CountWithin returns the exact number of points within distance r of q
// (the RangeCount of Algorithm 2, quadtree version).
func (t *Tree) CountWithin(q []float64, r float64) int {
	if t.root == nil {
		return 0
	}
	return t.countWithin(t.root, q, r*r)
}

func (t *Tree) countWithin(n *node, q []float64, r2 float64) int {
	if t.k.PointBoxDistSq(q, n.lo, n.hi) > r2 {
		return 0
	}
	if t.k.BoxMaxDistSq(q, n.lo, n.hi) <= r2 {
		return int(n.count)
	}
	if n.children == nil {
		c := 0
		for _, p := range t.idx[n.start : n.start+n.count] {
			if t.k.DistSqRow(q, p) <= r2 {
				c++
			}
		}
		return c
	}
	total := 0
	for _, ch := range n.children {
		total += t.countWithin(ch, q, r2)
	}
	return total
}

// AnyWithin reports whether any point lies within distance r of q,
// terminating as soon as a non-zero count can be determined (the optimized
// connectivity query of Section 5.2, exact DBSCAN).
func (t *Tree) AnyWithin(q []float64, r float64) bool {
	if t.root == nil {
		return false
	}
	return t.anyWithin(t.root, q, r*r)
}

func (t *Tree) anyWithin(n *node, q []float64, r2 float64) bool {
	if t.k.PointBoxDistSq(q, n.lo, n.hi) > r2 {
		return false
	}
	if t.k.BoxMaxDistSq(q, n.lo, n.hi) <= r2 {
		return true // node is non-empty by construction
	}
	if n.children == nil {
		for _, p := range t.idx[n.start : n.start+n.count] {
			if t.k.DistSqRow(q, p) <= r2 {
				return true
			}
		}
		return false
	}
	for _, ch := range n.children {
		if t.anyWithin(ch, q, r2) {
			return true
		}
	}
	return false
}

// ApproxAnyWithin is the approximate RangeCount connectivity test of Section
// 5.2: it returns true if some point lies within eps of q, false if no point
// lies within eps*(1+rho), and either answer in between. The tree must have
// been built with maxDepth = ApproxDepth(rho).
func (t *Tree) ApproxAnyWithin(q []float64, eps, rho float64) bool {
	if t.root == nil {
		return false
	}
	return t.approxAny(t.root, q, eps*eps, eps*(1+rho)*eps*(1+rho))
}

func (t *Tree) approxAny(n *node, q []float64, eps2, relaxed2 float64) bool {
	if t.k.PointBoxDistSq(q, n.lo, n.hi) > eps2 {
		return false
	}
	if t.k.BoxMaxDistSq(q, n.lo, n.hi) <= relaxed2 {
		return true // entire non-empty sub-cell inside the relaxed ball
	}
	if n.capped {
		// Depth-cap leaf: side <= eps*rho/sqrt(d), so every point is within
		// dist(q, box) + diameter <= eps(1+rho).
		return true
	}
	if n.children == nil {
		for _, p := range t.idx[n.start : n.start+n.count] {
			if t.k.DistSqRow(q, p) <= eps2 {
				return true
			}
		}
		return false
	}
	for _, ch := range n.children {
		if t.approxAny(ch, q, eps2, relaxed2) {
			return true
		}
	}
	return false
}

// ApproxCountWithin returns an integer between the number of points within
// eps of q and the number within eps*(1+rho) (Gan–Tao's approximate
// RangeCount). Used by tests and by callers that need the count itself.
func (t *Tree) ApproxCountWithin(q []float64, eps, rho float64) int {
	if t.root == nil {
		return 0
	}
	return t.approxCount(t.root, q, eps*eps, eps*(1+rho)*eps*(1+rho))
}

func (t *Tree) approxCount(n *node, q []float64, eps2, relaxed2 float64) int {
	if t.k.PointBoxDistSq(q, n.lo, n.hi) > eps2 {
		return 0
	}
	if t.k.BoxMaxDistSq(q, n.lo, n.hi) <= relaxed2 {
		return int(n.count)
	}
	if n.capped {
		return int(n.count)
	}
	if n.children == nil {
		c := 0
		for _, p := range t.idx[n.start : n.start+n.count] {
			if t.k.DistSqRow(q, p) <= eps2 {
				c++
			}
		}
		return c
	}
	total := 0
	for _, ch := range n.children {
		total += t.approxCount(ch, q, eps2, relaxed2)
	}
	return total
}
