// Package baseline implements the comparison algorithms of Section 7.1:
//
//   - Sequential: the original Ester et al. DBSCAN with k-d tree range
//     queries (the classic queue-expansion algorithm);
//   - PDSDBSCAN: Patwary et al.'s parallel disjoint-set DBSCAN — every point
//     issues a pointwise eps-range query against a k-d tree and core points
//     union with their core neighbors (the paper notes its queries get more
//     expensive as eps grows; ours reproduces that cost shape);
//   - HPDBSCAN: Götz et al.'s grid-partitioned DBSCAN — pointwise queries
//     against grid neighbor cells with a union-find merge;
//   - RPDBSCANSim: an in-process simulation of the RP-DBSCAN partition/merge
//     structure (random cell partitioning, per-partition local clustering
//     with halo duplication, then a cross-partition merge phase). See
//     DESIGN.md for the substitution rationale.
//
// Border-point semantics follow the original implementations: a border point
// receives a single cluster label (the standard-definition multi-membership
// is only produced by the main pipeline).
package baseline

import (
	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/kdtree"
	"pdbscan/internal/parallel"
	"pdbscan/internal/unionfind"
)

// Result is the common output of the baseline algorithms.
type Result struct {
	Core        []bool
	Labels      []int32 // -1 = noise; border points get one cluster
	NumClusters int
}

// Sequential runs the classic DBSCAN algorithm (Ester et al.) with a k-d
// tree index: scan points, expand each unvisited core point's cluster with a
// FIFO queue of eps-neighborhood queries. O(n * query) work, sequential.
func Sequential(ex *parallel.Pool, pts geom.Points, eps float64, minPts int) *Result {
	tree := kdtree.Build(ex, pts)
	n := pts.N
	labels := make([]int32, n)
	core := make([]bool, n)
	for i := range labels {
		labels[i] = -1
	}
	visited := make([]bool, n)
	var numClusters int32
	var queue []int32
	var nbrs []int32
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nbrs = tree.RangeQuery(pts.At(i), eps, nbrs[:0])
		if len(nbrs) < minPts {
			continue // noise for now; may become border later
		}
		cluster := numClusters
		numClusters++
		core[i] = true
		labels[i] = cluster
		queue = append(queue[:0], nbrs...)
		for len(queue) > 0 {
			q := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[q] == -1 {
				labels[q] = cluster // border or core; set below
			}
			if visited[q] {
				continue
			}
			visited[q] = true
			qn := tree.RangeQuery(pts.At(int(q)), eps, nil)
			if len(qn) >= minPts {
				core[q] = true
				labels[q] = cluster
				queue = append(queue, qn...)
			}
		}
	}
	return &Result{Core: core, Labels: labels, NumClusters: int(numClusters)}
}

// PDSDBSCAN is the parallel disjoint-set DBSCAN baseline: parallel pointwise
// eps-queries on a k-d tree, a union-find over points (ours is lock-free
// where the original is lock-based), and a border pass.
func PDSDBSCAN(ex *parallel.Pool, pts geom.Points, eps float64, minPts int) *Result {
	tree := kdtree.Build(ex, pts)
	n := pts.N
	core := make([]bool, n)
	ex.For(n, func(i int) {
		core[i] = tree.CountAtLeast(pts.At(i), eps, minPts)
	})
	uf := unionfind.New(n)
	ex.ForGrain(n, 16, func(i int) {
		if !core[i] {
			return
		}
		nbrs := tree.RangeQuery(pts.At(i), eps, nil)
		for _, q := range nbrs {
			if core[q] {
				uf.Union(int32(i), q)
			}
		}
	})
	return finishPointUF(ex, pts, eps, core, uf, func(i int) []int32 {
		return tree.RangeQuery(pts.At(i), eps, nil)
	})
}

// HPDBSCAN is the grid-partitioned baseline: identical structure to
// PDSDBSCAN but with pointwise queries answered by scanning the grid
// neighbor cells (the local clustering + merge of the original collapses to
// a shared union-find in shared memory).
func HPDBSCAN(ex *parallel.Pool, pts geom.Points, eps float64, minPts int) *Result {
	cells := grid.BuildGrid(ex, pts, eps)
	if pts.D <= 3 {
		cells.ComputeNeighborsEnum(ex)
	} else {
		cells.ComputeNeighborsKD(ex)
	}
	n := pts.N
	eps2 := eps * eps
	k := geom.NewKernel(pts)
	core := make([]bool, n)
	// Pointwise core test by scanning own + neighbor cells through the
	// dimension-specialized kernel, nearest-counted first via the cell's own
	// points then neighbors, with early termination at minPts.
	ex.ForGrain(n, 16, func(i int) {
		g := cells.CellOf[i]
		count := k.CountWithin(int32(i), cells.PointsOf(int(g)), eps2, minPts)
		if count >= minPts {
			core[i] = true
			return
		}
		for _, h := range cells.Neighbors[g] {
			count += k.CountWithin(int32(i), cells.PointsOf(int(h)), eps2, minPts-count)
			if count >= minPts {
				core[i] = true
				return
			}
		}
	})
	uf := unionfind.New(n)
	ex.ForGrain(n, 16, func(i int) {
		if !core[i] {
			return
		}
		g := cells.CellOf[i]
		unionCell := func(h int32) {
			for _, p := range cells.PointsOf(int(h)) {
				if core[p] && k.DistSq(int32(i), p) <= eps2 {
					uf.Union(int32(i), p)
				}
			}
		}
		unionCell(g)
		for _, h := range cells.Neighbors[g] {
			unionCell(h)
		}
	})
	query := func(i int) []int32 {
		g := cells.CellOf[i]
		var out []int32
		collect := func(h int32) {
			for _, p := range cells.PointsOf(int(h)) {
				if k.DistSq(int32(i), p) <= eps2 {
					out = append(out, p)
				}
			}
		}
		collect(g)
		for _, h := range cells.Neighbors[g] {
			collect(h)
		}
		return out
	}
	return finishPointUF(ex, pts, eps, core, uf, query)
}

// finishPointUF densifies point-level union-find components into cluster
// labels and attaches border points to the cluster of one core neighbor.
func finishPointUF(ex *parallel.Pool, pts geom.Points, eps float64, core []bool, uf *unionfind.UF, query func(i int) []int32) *Result {
	n := pts.N
	roots, dense := unionfind.DenseRoots(ex, uf, func(i int32) bool { return core[i] })
	labels := make([]int32, n)
	ex.ForGrain(n, 16, func(i int) {
		if core[i] {
			labels[i] = dense[uf.Find(int32(i))]
			return
		}
		labels[i] = -1
		best := int32(-1)
		for _, q := range query(i) {
			if core[q] {
				l := dense[uf.Find(q)]
				if best == -1 || l < best {
					best = l
				}
			}
		}
		labels[i] = best
	})
	return &Result{Core: core, Labels: labels, NumClusters: len(roots)}
}
