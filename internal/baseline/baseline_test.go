package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
	"pdbscan/internal/metrics"
)

func clusteredPoints(n, d int, scale float64, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	nClusters := 3 + rng.Intn(3)
	centers := make([][]float64, nClusters)
	for i := range centers {
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.Float64() * scale
		}
		centers[i] = c
	}
	data := make([]float64, n*d)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			for j := 0; j < d; j++ {
				data[i*d+j] = rng.Float64() * scale
			}
			continue
		}
		c := centers[rng.Intn(nClusters)]
		for j := 0; j < d; j++ {
			data[i*d+j] = c[j] + rng.NormFloat64()*scale/40
		}
	}
	return geom.Points{N: n, D: d, Data: data}
}

// checkAgainstOracle verifies a baseline result: identical core flags and
// core-point partition; border points must carry one of their oracle
// memberships (baselines use single-membership semantics); noise matches.
func checkAgainstOracle(t *testing.T, pts geom.Points, eps float64, minPts int, res *Result, name string) {
	t.Helper()
	ref := metrics.BruteDBSCAN(pts, eps, minPts)
	if res.NumClusters != ref.NumClusters {
		t.Fatalf("%s: clusters = %d, want %d", name, res.NumClusters, ref.NumClusters)
	}
	fw := map[int32]int{}
	bw := map[int]int32{}
	for i := 0; i < pts.N; i++ {
		if res.Core[i] != ref.Core[i] {
			t.Fatalf("%s: point %d core=%v want %v", name, i, res.Core[i], ref.Core[i])
		}
		if !ref.Core[i] {
			continue
		}
		got, want := res.Labels[i], ref.Clusters[i][0]
		if g, ok := fw[got]; ok && g != want {
			t.Fatalf("%s: core partition mismatch at %d", name, i)
		}
		if w, ok := bw[want]; ok && w != got {
			t.Fatalf("%s: core partition split at %d", name, i)
		}
		fw[got] = want
		bw[want] = got
	}
	for i := 0; i < pts.N; i++ {
		if ref.Core[i] {
			continue
		}
		if len(ref.Clusters[i]) == 0 {
			if res.Labels[i] != -1 {
				t.Fatalf("%s: noise point %d labeled %d", name, i, res.Labels[i])
			}
			continue
		}
		if res.Labels[i] < 0 {
			t.Fatalf("%s: border point %d unlabeled", name, i)
		}
		mapped, ok := fw[res.Labels[i]]
		if !ok {
			t.Fatalf("%s: border point %d has unseen label", name, i)
		}
		found := false
		for _, c := range ref.Clusters[i] {
			if c == mapped {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: border point %d in wrong cluster", name, i)
		}
	}
}

func TestSequentialMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, d := range []int{2, 3, 5} {
			pts := clusteredPoints(350, d, 80, seed*7+int64(d))
			eps, minPts := 7.0, 6
			res := Sequential(nil, pts, eps, minPts)
			checkAgainstOracle(t, pts, eps, minPts, res, fmt.Sprintf("seq-d%d-s%d", d, seed))
		}
	}
}

func TestPDSDBSCANMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, d := range []int{2, 3, 5} {
			pts := clusteredPoints(350, d, 80, seed*11+int64(d))
			eps, minPts := 7.0, 6
			res := PDSDBSCAN(nil, pts, eps, minPts)
			checkAgainstOracle(t, pts, eps, minPts, res, fmt.Sprintf("pds-d%d-s%d", d, seed))
		}
	}
}

func TestHPDBSCANMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, d := range []int{2, 3, 5} {
			pts := clusteredPoints(350, d, 80, seed*13+int64(d))
			eps, minPts := 7.0, 6
			res := HPDBSCAN(nil, pts, eps, minPts)
			checkAgainstOracle(t, pts, eps, minPts, res, fmt.Sprintf("hp-d%d-s%d", d, seed))
		}
	}
}

func TestRPDBSCANSimMatchesOracle(t *testing.T) {
	for _, parts := range []int{1, 4, 13} {
		for seed := int64(1); seed <= 2; seed++ {
			pts := clusteredPoints(350, 3, 80, seed*17)
			eps, minPts := 7.0, 6
			res := RPDBSCANSim(nil, pts, eps, minPts, parts)
			checkAgainstOracle(t, pts, eps, minPts, res, fmt.Sprintf("rp-p%d-s%d", parts, seed))
		}
	}
}

func TestBaselinesAgreeWithEachOther(t *testing.T) {
	pts := clusteredPoints(800, 3, 100, 23)
	eps, minPts := 8.0, 10
	seq := Sequential(nil, pts, eps, minPts)
	pds := PDSDBSCAN(nil, pts, eps, minPts)
	hp := HPDBSCAN(nil, pts, eps, minPts)
	rp := RPDBSCANSim(nil, pts, eps, minPts, 8)
	if seq.NumClusters != pds.NumClusters || seq.NumClusters != hp.NumClusters ||
		seq.NumClusters != rp.NumClusters {
		t.Fatalf("cluster counts differ: seq=%d pds=%d hp=%d rp=%d",
			seq.NumClusters, pds.NumClusters, hp.NumClusters, rp.NumClusters)
	}
	// Core partitions must be identical (border labels may differ).
	coreLabelsOf := func(r *Result) []int32 {
		out := make([]int32, len(r.Labels))
		for i := range out {
			if r.Core[i] {
				out[i] = r.Labels[i]
			} else {
				out[i] = -1
			}
		}
		return out
	}
	a := coreLabelsOf(seq)
	for _, other := range []*Result{pds, hp, rp} {
		if ari := metrics.AdjustedRandIndex(a, coreLabelsOf(other)); ari != 1 {
			t.Fatalf("core partitions differ (ARI=%v)", ari)
		}
	}
}

func TestSequentialEdgeCases(t *testing.T) {
	one, _ := geom.FromRows([][]float64{{0, 0}})
	res := Sequential(nil, one, 1, 2)
	if res.NumClusters != 0 || res.Labels[0] != -1 {
		t.Fatal("single point should be noise")
	}
	res = Sequential(nil, one, 1, 1)
	if res.NumClusters != 1 || res.Labels[0] != 0 {
		t.Fatal("single point should cluster with minPts=1")
	}
}
