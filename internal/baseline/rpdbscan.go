package baseline

import (
	"sync"

	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
	"pdbscan/internal/unionfind"
)

// RPDBSCANSim simulates the cost structure of RP-DBSCAN (Song & Lee, the
// state-of-the-art distributed comparator of Table 2) inside one process:
//
//  1. cells are assigned to `parts` partitions pseudo-randomly (random
//     partitioning);
//  2. each partition, on its own goroutine with its own private buffers,
//     *copies* the points of its cells plus a halo of neighboring cells
//     (the data duplication a real cluster pays as network shuffle), marks
//     core points, and unions cells locally (cell-graph BCP restricted to
//     pairs whose lower-indexed cell is owned by the partition);
//  3. a merge phase resolves cross-partition cell pairs in a global
//     union-find (the "cell merging" step of RP-DBSCAN).
//
// Unlike the real RP-DBSCAN, the result is exact (the connectivity tests are
// exact BCPs); the simulation reproduces the partition/duplicate/merge work
// shape rather than the approximation.
func RPDBSCANSim(ex *parallel.Pool, pts geom.Points, eps float64, minPts int, parts int) *Result {
	if parts < 1 {
		parts = 1
	}
	cells := grid.BuildGrid(ex, pts, eps)
	if pts.D <= 3 {
		cells.ComputeNeighborsEnum(ex)
	} else {
		cells.ComputeNeighborsKD(ex)
	}
	numCells := cells.NumCells()
	eps2 := eps * eps

	// (1) Random cell -> partition assignment.
	partOf := make([]int32, numCells)
	ex.For(numCells, func(g int) {
		partOf[g] = int32(prim.Mix64(uint64(g)^0xdb5c4a) % uint64(parts))
	})

	core := make([]bool, pts.N)
	uf := unionfind.New(numCells)
	var crossMu sync.Mutex
	var crossPairs [][2]int32 // cell pairs crossing partitions, for phase 3

	// (2) Per-partition local phase.
	var wg sync.WaitGroup
	for part := 0; part < parts; part++ {
		wg.Add(1)
		go func(part int32) {
			defer wg.Done()
			// Duplicate owned + halo points into partition-private storage
			// (the simulated shuffle cost).
			local := make(map[int32][]float64, 16)
			copyCell := func(g int32) {
				if _, ok := local[g]; ok {
					return
				}
				ps := cells.PointsOf(int(g))
				buf := make([]float64, 0, len(ps)*pts.D)
				for _, p := range ps {
					buf = append(buf, pts.At(int(p))...)
				}
				local[g] = buf
			}
			var localPairs [][2]int32
			for g := int32(0); g < int32(numCells); g++ {
				if partOf[g] != part {
					continue
				}
				copyCell(g)
				for _, h := range cells.Neighbors[g] {
					copyCell(h)
					if h < g {
						if partOf[h] == part {
							localPairs = append(localPairs, [2]int32{g, h})
						} else {
							crossMu.Lock()
							crossPairs = append(crossPairs, [2]int32{g, h})
							crossMu.Unlock()
						}
					}
				}
			}
			// Mark core points of owned cells against the local copies.
			for g := int32(0); g < int32(numCells); g++ {
				if partOf[g] != part {
					continue
				}
				gPts := cells.PointsOf(int(g))
				if len(gPts) >= minPts {
					for _, p := range gPts {
						core[p] = true
					}
					continue
				}
				for _, p := range gPts {
					q := pts.At(int(p))
					count := len(gPts)
					for _, h := range cells.Neighbors[g] {
						if count >= minPts {
							break
						}
						buf := local[h]
						for o := 0; o+pts.D <= len(buf); o += pts.D {
							if geom.DistSq(q, buf[o:o+pts.D]) <= eps2 {
								count++
								if count >= minPts {
									break
								}
							}
						}
					}
					if count >= minPts {
						core[p] = true
					}
				}
			}
			// Local cell unions (both cells owned by this partition).
			for _, pr := range localPairs {
				if connectedScanLocal(pts, cells, core, local, pr[0], pr[1], eps2) {
					uf.Union(pr[0], pr[1])
				}
			}
		}(int32(part))
	}
	wg.Wait()

	// (3) Merge phase: cross-partition pairs.
	ex.ForGrain(len(crossPairs), 4, func(i int) {
		g, h := crossPairs[i][0], crossPairs[i][1]
		if uf.SameSet(g, h) {
			return
		}
		if connectedScan(pts, cells, core, g, h, eps2) {
			uf.Union(g, h)
		}
	})

	// Labels: densify over core cells, then a border pass.
	coreCellFlag := make([]bool, numCells)
	ex.For(numCells, func(g int) {
		for _, p := range cells.PointsOf(g) {
			if core[p] {
				coreCellFlag[g] = true
				break
			}
		}
	})
	roots, dense := unionfind.DenseRoots(ex, uf, func(g int32) bool { return coreCellFlag[g] })
	labels := make([]int32, pts.N)
	ex.ForGrain(pts.N, 16, func(i int) {
		if core[i] {
			labels[i] = dense[uf.Find(cells.CellOf[i])]
			return
		}
		labels[i] = -1
		q := pts.At(i)
		g := cells.CellOf[i]
		try := func(h int32) {
			for _, p := range cells.PointsOf(int(h)) {
				if core[p] && geom.DistSq(q, pts.At(int(p))) <= eps2 {
					l := dense[uf.Find(h)]
					if labels[i] == -1 || l < labels[i] {
						labels[i] = l
					}
					return
				}
			}
		}
		try(g)
		for _, h := range cells.Neighbors[g] {
			try(h)
		}
	})
	return &Result{Core: core, Labels: labels, NumClusters: len(roots)}
}

// connectedScanLocal is the partition-local BCP over copied buffers.
func connectedScanLocal(pts geom.Points, cells *grid.Cells, core []bool, local map[int32][]float64, g, h int32, eps2 float64) bool {
	d := pts.D
	gPts := cells.PointsOf(int(g))
	hBuf := local[h]
	hPts := cells.PointsOf(int(h))
	for _, p := range gPts {
		if !core[p] {
			continue
		}
		q := pts.At(int(p))
		for k, r := range hPts {
			if !core[r] {
				continue
			}
			if geom.DistSq(q, hBuf[k*d:(k+1)*d]) <= eps2 {
				return true
			}
		}
	}
	return false
}

// connectedScan is the direct BCP between two cells' core points.
func connectedScan(pts geom.Points, cells *grid.Cells, core []bool, g, h int32, eps2 float64) bool {
	for _, p := range cells.PointsOf(int(g)) {
		if !core[p] {
			continue
		}
		q := pts.At(int(p))
		for _, r := range cells.PointsOf(int(h)) {
			if core[r] && geom.DistSq(q, pts.At(int(r))) <= eps2 {
				return true
			}
		}
	}
	return false
}
