package dataset

import (
	"math"
	"math/rand"

	"pdbscan/internal/geom"
)

// The generators below are statistically-shaped stand-ins for the real
// datasets of Section 7 (which are 2-4 billion points of proprietary or
// multi-hundred-GB data). Each reproduces the property the paper's
// experiments exercise — see DESIGN.md's substitution table.

// GeoLifeSim simulates the GeoLife GPS dataset (3D: longitude, latitude,
// altitude): a small number of "users" performing long dwell-heavy random
// walks around a handful of city hotspots. The resulting distribution is
// extremely skewed — most points concentrate in a few dense areas — which is
// exactly the property that makes the real GeoLife hard for cell-based
// methods (the Figure 6(j) spike and the low-speedup case of Figure 8(j)).
func GeoLifeSim(n int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	d := 3
	data := make([]float64, 0, n*d)
	// A few hotspots with Zipf-like popularity.
	nHot := 8
	hot := make([][]float64, nHot)
	for i := range hot {
		hot[i] = []float64{
			rng.Float64() * Domain,
			rng.Float64() * Domain,
			rng.Float64() * Domain / 100, // altitude range much smaller
		}
	}
	pos := append([]float64{}, hot[0]...)
	for emitted := 0; emitted < n; emitted++ {
		if rng.Float64() < 2e-4 {
			// Travel to a hotspot; popularity ~ 1/(rank+1)^2.
			r := rng.Float64()
			idx := 0
			cum, norm := 0.0, 0.0
			for i := 0; i < nHot; i++ {
				norm += 1 / float64((i+1)*(i+1))
			}
			for i := 0; i < nHot; i++ {
				cum += 1 / float64((i+1)*(i+1)) / norm
				if r <= cum {
					idx = i
					break
				}
			}
			copy(pos, hot[idx])
		}
		// Dwell-heavy walk: tiny steps most of the time, occasional hops.
		step := 2.0
		if rng.Float64() < 0.02 {
			step = 500
		}
		for j := 0; j < d; j++ {
			scale := step
			if j == 2 {
				scale = step / 100
			}
			pos[j] = clampDomain(pos[j] + rng.NormFloat64()*scale)
		}
		data = append(data, pos...)
	}
	return geom.Points{N: n, D: d, Data: data}
}

// CosmoSim simulates the Cosmo50 N-body snapshot (3D): matter concentrated
// in filaments and halos. It draws halo centers on a jittered lattice,
// connects some with filament segments, and samples points from halos
// (dense, small) and filaments (sparse, elongated) plus a uniform background.
func CosmoSim(n int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	d := 3
	data := make([]float64, 0, n*d)
	// Halo centers.
	nHalos := 64
	halos := make([][]float64, nHalos)
	for i := range halos {
		halos[i] = []float64{rng.Float64() * Domain, rng.Float64() * Domain, rng.Float64() * Domain}
	}
	// Filaments between random halo pairs.
	type fil struct{ a, b []float64 }
	fils := make([]fil, nHalos/2)
	for i := range fils {
		fils[i] = fil{halos[rng.Intn(nHalos)], halos[rng.Intn(nHalos)]}
	}
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.6: // halo point
			h := halos[rng.Intn(nHalos)]
			for j := 0; j < d; j++ {
				data = append(data, clampDomain(h[j]+rng.NormFloat64()*150))
			}
		case r < 0.9: // filament point
			f := fils[rng.Intn(len(fils))]
			t := rng.Float64()
			for j := 0; j < d; j++ {
				v := f.a[j] + t*(f.b[j]-f.a[j]) + rng.NormFloat64()*80
				data = append(data, clampDomain(v))
			}
		default: // background
			for j := 0; j < d; j++ {
				data = append(data, rng.Float64()*Domain)
			}
		}
	}
	return geom.Points{N: n, D: d, Data: data}
}

// OSMSim simulates the OpenStreetMap GPS dataset (2D): dense urban blobs of
// very different sizes, road-like polylines between them, and sparse rural
// background, with heavy skew in city sizes.
func OSMSim(n int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	d := 2
	data := make([]float64, 0, n*d)
	nCities := 20
	cities := make([][]float64, nCities)
	sizes := make([]float64, nCities)
	for i := range cities {
		cities[i] = []float64{rng.Float64() * Domain, rng.Float64() * Domain}
		sizes[i] = 100 * math.Pow(10, rng.Float64()*1.5) // 100..~3000
	}
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.7: // city point (bigger cities more likely)
			c := rng.Intn(nCities)
			if rng.Float64() < 0.7 {
				c = rng.Intn(nCities / 4) // bias toward the first few
			}
			data = append(data,
				clampDomain(cities[c][0]+rng.NormFloat64()*sizes[c]),
				clampDomain(cities[c][1]+rng.NormFloat64()*sizes[c]))
		case r < 0.92: // road point between two cities
			a := cities[rng.Intn(nCities)]
			b := cities[rng.Intn(nCities)]
			t := rng.Float64()
			data = append(data,
				clampDomain(a[0]+t*(b[0]-a[0])+rng.NormFloat64()*30),
				clampDomain(a[1]+t*(b[1]-a[1])+rng.NormFloat64()*30))
		default: // rural background
			data = append(data, rng.Float64()*Domain, rng.Float64()*Domain)
		}
	}
	return geom.Points{N: n, D: d, Data: data}
}

// TeraClickSim simulates the TeraClickLog dataset (13D of ad-click feature
// values). The paper observes that under RP-DBSCAN's published parameters
// every point lands in a single cell, making the clustering trivial for the
// grid algorithm; the simulator reproduces that degenerate occupancy: all
// features concentrate in a narrow band with rare outliers.
func TeraClickSim(n int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	d := 13
	data := make([]float64, n*d)
	for i := 0; i < n; i++ {
		outlier := rng.Float64() < 1e-5
		for j := 0; j < d; j++ {
			if outlier {
				data[i*d+j] = rng.Float64() * Domain
			} else {
				// Narrow band around the center of the domain.
				data[i*d+j] = Domain/2 + rng.NormFloat64()*(Domain/1e4)
			}
		}
	}
	return geom.Points{N: n, D: d, Data: data}
}

// HouseholdSim simulates the UCI Household electric-consumption dataset (7D
// without date-time): appliance duty cycles produce a moderate number of
// dense operating-mode clusters with correlated coordinates.
func HouseholdSim(n int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	d := 7
	nModes := 12
	modes := make([][]float64, nModes)
	for i := range modes {
		m := make([]float64, d)
		for j := range m {
			m[j] = rng.Float64() * Domain
		}
		modes[i] = m
	}
	data := make([]float64, 0, n*d)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.05 { // measurement noise / transitions
			for j := 0; j < d; j++ {
				data = append(data, rng.Float64()*Domain)
			}
			continue
		}
		m := modes[rng.Intn(nModes)]
		// Correlated jitter: a shared factor plus per-coordinate noise.
		shared := rng.NormFloat64() * 300
		for j := 0; j < d; j++ {
			data = append(data, clampDomain(m[j]+shared+rng.NormFloat64()*200))
		}
	}
	return geom.Points{N: n, D: d, Data: data}
}
