package dataset

import (
	"math"
	"math/rand"

	"pdbscan/internal/geom"
)

// DriftStreamConfig parameterizes DriftStream.
type DriftStreamConfig struct {
	N        int     // number of points (required)
	D        int     // dimensionality (required)
	Seed     int64   // RNG seed
	Emitters int     // number of moving emitters (default 4)
	Speed    float64 // emitter displacement per emitted point (default 0.5)
	Turn     float64 // per-step Gaussian perturbation of the heading (default 0.08)
	Spread   float64 // Gaussian spread of points around an emitter (default 1.5)
	Domain   float64 // emitters reflect off [0, Domain] per axis (default 2000)
}

func (c *DriftStreamConfig) defaults() {
	if c.Emitters <= 0 {
		c.Emitters = 4
	}
	if c.Speed <= 0 {
		c.Speed = 0.5
	}
	if c.Turn <= 0 {
		c.Turn = 0.08
	}
	if c.Spread <= 0 {
		c.Spread = 1.5
	}
	if c.Domain <= 0 {
		c.Domain = 2000
	}
}

// DriftStream generates a time-ordered point stream: Emitters moving sources
// travel with a persistent (slowly turning) velocity and emit Gaussian-spread
// points round-robin. Unlike the batch generators, the ORDER of the points is
// the workload: a sliding window over the stream holds each emitter's recent
// trail — a long snake of points — and each tick only churns the cells
// around the trail heads (new points) and tails (evictions), the
// localized-mutation regime streaming clustering (lidar frames, vehicle
// traces, live geodata) lives in. Clusters are the drifting trails; they
// merge and split as emitters cross.
func DriftStream(cfg DriftStreamConfig) geom.Points {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.D
	pos := make([][]float64, cfg.Emitters)
	vel := make([][]float64, cfg.Emitters)
	for e := range pos {
		p := make([]float64, d)
		v := make([]float64, d)
		norm := 0.0
		for j := range p {
			p[j] = rng.Float64() * cfg.Domain
			v[j] = rng.NormFloat64()
			norm += v[j] * v[j]
		}
		norm = math.Sqrt(norm)
		for j := range v {
			v[j] *= cfg.Speed / norm
		}
		pos[e] = p
		vel[e] = v
	}
	data := make([]float64, 0, cfg.N*d)
	for i := 0; i < cfg.N; i++ {
		e := i % cfg.Emitters
		p, v := pos[e], vel[e]
		// Perturb the heading slightly and renormalize to keep the speed —
		// directed motion with a slowly wandering course.
		norm := 0.0
		for j := range v {
			v[j] += rng.NormFloat64() * cfg.Turn * cfg.Speed
			norm += v[j] * v[j]
		}
		norm = math.Sqrt(norm)
		for j := range v {
			v[j] *= cfg.Speed / norm
			p[j] += v[j]
			// Reflect position and heading at the domain walls.
			if p[j] < 0 {
				p[j], v[j] = -p[j], -v[j]
			} else if p[j] > cfg.Domain {
				p[j], v[j] = 2*cfg.Domain-p[j], -v[j]
			}
			data = append(data, p[j]+rng.NormFloat64()*cfg.Spread)
		}
	}
	return geom.Points{N: cfg.N, D: d, Data: data}
}
