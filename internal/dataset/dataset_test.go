package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"pdbscan/internal/geom"
)

func TestSeedSpreaderBasics(t *testing.T) {
	for _, d := range []int{2, 3, 5, 7} {
		pts := SeedSpreader(SeedSpreaderConfig{N: 5000, D: d, Seed: 1})
		if pts.N != 5000 || pts.D != d {
			t.Fatalf("d=%d: got N=%d D=%d", d, pts.N, pts.D)
		}
		for _, v := range pts.Data {
			if v < 0 || v > Domain || math.IsNaN(v) {
				t.Fatalf("d=%d: coordinate %v out of domain", d, v)
			}
		}
	}
}

func TestSeedSpreaderDeterministic(t *testing.T) {
	a := SeedSpreader(SeedSpreaderConfig{N: 1000, D: 3, Seed: 7})
	b := SeedSpreader(SeedSpreaderConfig{N: 1000, D: 3, Seed: 7})
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := SeedSpreader(SeedSpreaderConfig{N: 1000, D: 3, Seed: 8})
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSeedSpreaderIsClustered(t *testing.T) {
	// The generator must produce data far denser than uniform: the average
	// nearest-neighbor distance should be much smaller than the uniform
	// expectation.
	pts := SeedSpreader(SeedSpreaderConfig{N: 3000, D: 2, Seed: 3})
	nnSum := 0.0
	for i := 0; i < 200; i++ {
		best := math.Inf(1)
		for j := 0; j < pts.N; j++ {
			if j == i {
				continue
			}
			if d := geom.DistSq(pts.At(i), pts.At(j)); d < best {
				best = d
			}
		}
		nnSum += math.Sqrt(best)
	}
	avgNN := nnSum / 200
	uniformNN := Domain / (2 * math.Sqrt(float64(pts.N))) // ~875 for n=3000
	if avgNN > uniformNN/5 {
		t.Fatalf("avg NN distance %v not clustered (uniform ~%v)", avgNN, uniformNN)
	}
}

func TestVardenHasVariableDensity(t *testing.T) {
	// Compare the spread of nearest-neighbor distances: varden should show a
	// much wider ratio between dense and sparse cluster regions.
	nn := func(pts geom.Points, samples int) []float64 {
		out := make([]float64, samples)
		for i := 0; i < samples; i++ {
			best := math.Inf(1)
			for j := 0; j < pts.N; j++ {
				if j == i {
					continue
				}
				if d := geom.DistSq(pts.At(i), pts.At(j)); d < best {
					best = d
				}
			}
			out[i] = math.Sqrt(best)
		}
		return out
	}
	varden := SeedSpreader(SeedSpreaderConfig{N: 4000, D: 2, VarDen: true, Seed: 5, NoiseFrac: 1e-9})
	dists := nn(varden, 300)
	lo, hi := math.Inf(1), 0.0
	for _, v := range dists {
		if v <= 0 {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo < 10 {
		t.Fatalf("varden NN spread %v..%v (ratio %v) not variable enough", lo, hi, hi/lo)
	}
}

func TestUniformFill(t *testing.T) {
	pts := UniformFill(10000, 3, 2)
	side := math.Sqrt(10000.0)
	for _, v := range pts.Data {
		if v < 0 || v > side {
			t.Fatalf("coordinate %v outside [0, %v]", v, side)
		}
	}
}

func TestRealSimsShapes(t *testing.T) {
	cases := []struct {
		name string
		pts  geom.Points
		d    int
	}{
		{"geolife", GeoLifeSim(3000, 1), 3},
		{"cosmo", CosmoSim(3000, 1), 3},
		{"osm", OSMSim(3000, 1), 2},
		{"teraclick", TeraClickSim(3000, 1), 13},
		{"household", HouseholdSim(3000, 1), 7},
	}
	for _, c := range cases {
		if c.pts.N != 3000 || c.pts.D != c.d {
			t.Fatalf("%s: N=%d D=%d", c.name, c.pts.N, c.pts.D)
		}
		for _, v := range c.pts.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: bad coordinate", c.name)
			}
		}
	}
}

func TestTeraClickDegenerateOccupancy(t *testing.T) {
	// Nearly all points must fall within a tiny band (single-cell regime for
	// typical eps).
	pts := TeraClickSim(5000, 3)
	inBand := 0
	for i := 0; i < pts.N; i++ {
		ok := true
		for _, v := range pts.At(i) {
			if math.Abs(v-Domain/2) > Domain/100 {
				ok = false
				break
			}
		}
		if ok {
			inBand++
		}
	}
	if float64(inBand)/float64(pts.N) < 0.99 {
		t.Fatalf("only %d/%d points in the dense band", inBand, pts.N)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := SeedSpreader(SeedSpreaderConfig{N: 500, D: 3, Seed: 9})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != pts.N || got.D != pts.D {
		t.Fatalf("round trip: N=%d D=%d", got.N, got.D)
	}
	for i := range pts.Data {
		if got.Data[i] != pts.Data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, got.Data[i], pts.Data[i])
		}
	}
}

func TestCSVComments(t *testing.T) {
	in := "# header\n1,2\n\n3,4\n"
	pts, err := ReadCSV(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if pts.N != 2 || pts.D != 2 {
		t.Fatalf("N=%d D=%d", pts.N, pts.D)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n3\n")); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,x\n")); err == nil {
		t.Fatal("expected error for non-numeric field")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	pts := SeedSpreader(SeedSpreaderConfig{N: 1000, D: 5, Seed: 11})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != pts.N || got.D != pts.D {
		t.Fatalf("round trip: N=%d D=%d", got.N, got.D)
	}
	for i := range pts.Data {
		if got.Data[i] != pts.Data[i] {
			t.Fatal("binary round trip corrupted data")
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("NOTMAGIC-------")); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	pts := SeedSpreader(SeedSpreaderConfig{N: 300, D: 2, Seed: 13})
	for _, format := range []string{"bin", "csv"} {
		path := filepath.Join(dir, "pts."+format)
		if err := SaveFile(path, format, pts); err != nil {
			t.Fatal(err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != pts.N || got.D != pts.D {
			t.Fatalf("%s: N=%d D=%d", format, got.N, got.D)
		}
	}
	if err := SaveFile(filepath.Join(dir, "x"), "xml", pts); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestGenerateNames(t *testing.T) {
	for _, name := range Names() {
		pts, err := Generate(name, 500, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pts.N != 500 {
			t.Fatalf("%s: N=%d", name, pts.N)
		}
	}
	if _, err := Generate("bogus", 10, 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}
