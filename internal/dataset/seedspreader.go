// Package dataset provides the workload generators the paper's evaluation
// uses (Section 7): Gan–Tao's seed spreader in similar-density and
// variable-density modes, the UniformFill hypercube filler, and
// statistically-shaped simulators for the real datasets the experiments run
// on (GeoLife, Cosmo50, OpenStreetMap, TeraClickLog, Household) — see the
// substitution table in DESIGN.md. All generators are deterministic given a
// seed, so experiments are reproducible.
package dataset

import (
	"math"
	"math/rand"

	"pdbscan/internal/geom"
)

// Domain is the coordinate range of the synthetic generators; Gan–Tao's
// generator uses [0, 1e5]^d and so do we.
const Domain = 1e5

// SeedSpreaderConfig parameterizes the seed spreader (Gan–Tao Section 7 /
// this paper Section 7). A "spreader" performs a random walk, dropping
// points in a vicinity ball around its position, shifting after every
// cStep points, and restarting at a random location with probability
// 10/n per point (so ~10 clusters in expectation). A fraction of noise
// points is added uniformly at random.
type SeedSpreaderConfig struct {
	N         int     // total number of points (including noise)
	D         int     // dimensionality
	VarDen    bool    // variable-density clusters (SS-varden) vs similar (SS-simden)
	Vicinity  float64 // base vicinity radius (default 100)
	CStep     int     // points per spreader position (default 100)
	ShiftMul  float64 // shift distance as a multiple of Vicinity (default 0.5)
	NoiseFrac float64 // fraction of uniform noise points (default 1e-4)
	Seed      int64
}

func (c *SeedSpreaderConfig) defaults() {
	if c.Vicinity <= 0 {
		c.Vicinity = 100
	}
	if c.CStep <= 0 {
		c.CStep = 100
	}
	if c.ShiftMul <= 0 {
		c.ShiftMul = 0.5
	}
	if c.NoiseFrac < 0 {
		c.NoiseFrac = 0
	} else if c.NoiseFrac == 0 {
		c.NoiseFrac = 1e-4
	}
}

// SeedSpreader generates the SS-simden / SS-varden datasets.
func SeedSpreader(cfg SeedSpreaderConfig) geom.Points {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, d := cfg.N, cfg.D
	data := make([]float64, 0, n*d)

	noiseCount := int(float64(n) * cfg.NoiseFrac)
	clusterCount := n - noiseCount

	pos := randomPosition(rng, d)
	vicinity := cfg.Vicinity
	densityLevel := 0
	restartProb := 10.0 / float64(n)

	emitted := 0
	sincePosChange := 0
	for emitted < clusterCount {
		if rng.Float64() < restartProb {
			pos = randomPosition(rng, d)
			if cfg.VarDen {
				// Cycle the vicinity radius across restarts by factors of
				// 10, producing clusters whose densities differ by orders
				// of magnitude (the varden regime).
				densityLevel = (densityLevel + 1) % 3
				vicinity = cfg.Vicinity * math.Pow(10, float64(densityLevel)/1.5)
			}
			sincePosChange = 0
		}
		if sincePosChange >= cfg.CStep {
			// Shift the spreader by a random direction step.
			step := randomDirection(rng, d)
			for j := 0; j < d; j++ {
				pos[j] = clampDomain(pos[j] + step[j]*vicinity*cfg.ShiftMul)
			}
			sincePosChange = 0
		}
		// Drop a point uniformly in the vicinity ball around pos.
		p := randomInBall(rng, d, vicinity)
		for j := 0; j < d; j++ {
			data = append(data, clampDomain(pos[j]+p[j]))
		}
		emitted++
		sincePosChange++
	}
	for i := 0; i < noiseCount; i++ {
		for j := 0; j < d; j++ {
			data = append(data, rng.Float64()*Domain)
		}
	}
	return geom.Points{N: n, D: d, Data: data}
}

// UniformFill generates n points uniformly at random in a hypercube of side
// sqrt(n), as in Section 7.
func UniformFill(n, d int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	side := math.Sqrt(float64(n))
	data := make([]float64, n*d)
	for i := range data {
		data[i] = rng.Float64() * side
	}
	return geom.Points{N: n, D: d, Data: data}
}

func randomPosition(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for j := range p {
		p[j] = rng.Float64() * Domain
	}
	return p
}

// randomDirection returns a uniformly random unit vector.
func randomDirection(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for {
		var norm float64
		for j := range v {
			v[j] = rng.NormFloat64()
			norm += v[j] * v[j]
		}
		if norm > 1e-12 {
			norm = math.Sqrt(norm)
			for j := range v {
				v[j] /= norm
			}
			return v
		}
	}
}

// randomInBall returns a uniform point in the d-ball of radius r.
func randomInBall(rng *rand.Rand, d int, r float64) []float64 {
	v := randomDirection(rng, d)
	// Radius with density proportional to s^(d-1).
	s := r * math.Pow(rng.Float64(), 1/float64(d))
	for j := range v {
		v[j] *= s
	}
	return v
}

func clampDomain(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > Domain {
		return Domain
	}
	return x
}
