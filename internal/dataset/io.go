package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"pdbscan/internal/geom"
)

// WriteCSV writes points as comma-separated coordinate rows.
func WriteCSV(w io.Writer, pts geom.Points) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var sb strings.Builder
	for i := 0; i < pts.N; i++ {
		sb.Reset()
		row := pts.At(i)
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads comma- or whitespace-separated coordinate rows. Blank lines
// and lines starting with '#' are skipped.
func ReadCSV(r io.Reader) (geom.Points, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var data []float64
	d := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == ';'
		})
		if d == 0 {
			d = len(fields)
			if d == 0 {
				return geom.Points{}, fmt.Errorf("dataset: line %d has no fields", line)
			}
		} else if len(fields) != d {
			return geom.Points{}, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(fields), d)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return geom.Points{}, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			data = append(data, v)
		}
	}
	if err := sc.Err(); err != nil {
		return geom.Points{}, err
	}
	if len(data) == 0 {
		return geom.Points{}, fmt.Errorf("dataset: empty input")
	}
	return geom.Points{N: len(data) / d, D: d, Data: data}, nil
}

// binMagic identifies the binary point format: "PDBS" + version 1.
var binMagic = [8]byte{'P', 'D', 'B', 'S', 1, 0, 0, 0}

// WriteBinary writes points in the library's little-endian binary format
// (magic, int64 n, int64 d, n*d float64s) — the fast path for large
// benchmark datasets.
func WriteBinary(w io.Writer, pts geom.Points) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(pts.N))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(pts.D))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range pts.Data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the binary point format written by WriteBinary.
func ReadBinary(r io.Reader) (geom.Points, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return geom.Points{}, err
	}
	if magic != binMagic {
		return geom.Points{}, fmt.Errorf("dataset: bad magic (not a pdbscan binary file)")
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return geom.Points{}, err
	}
	n := int(binary.LittleEndian.Uint64(hdr[0:]))
	d := int(binary.LittleEndian.Uint64(hdr[8:]))
	if n <= 0 || d <= 0 || n > 1<<40 || d > 1<<16 {
		return geom.Points{}, fmt.Errorf("dataset: implausible header n=%d d=%d", n, d)
	}
	data := make([]float64, n*d)
	buf := make([]byte, 8*4096)
	idx := 0
	for idx < len(data) {
		want := (len(data) - idx) * 8
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			return geom.Points{}, err
		}
		for o := 0; o < want; o += 8 {
			data[idx] = math.Float64frombits(binary.LittleEndian.Uint64(buf[o:]))
			idx++
		}
	}
	return geom.Points{N: n, D: d, Data: data}, nil
}

// LoadFile reads points from a path, auto-detecting the binary format by
// magic and falling back to CSV.
func LoadFile(path string) (geom.Points, error) {
	f, err := os.Open(path)
	if err != nil {
		return geom.Points{}, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err == nil && magic == binMagic {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return geom.Points{}, err
		}
		return ReadBinary(f)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return geom.Points{}, err
	}
	return ReadCSV(f)
}

// SaveFile writes points to a path; format "bin" or "csv".
func SaveFile(path, format string, pts geom.Points) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "bin":
		return WriteBinary(f, pts)
	case "csv":
		return WriteCSV(f, pts)
	default:
		return fmt.Errorf("dataset: unknown format %q (want bin or csv)", format)
	}
}

// Generate builds one of the named datasets used throughout the benchmark
// harness. Names follow the paper: "ss-simden-<d>d", "ss-varden-<d>d",
// "uniform-<d>d", "geolife", "cosmo", "osm", "teraclick", "household".
func Generate(name string, n int, seed int64) (geom.Points, error) {
	switch name {
	case "geolife":
		return GeoLifeSim(n, seed), nil
	case "cosmo":
		return CosmoSim(n, seed), nil
	case "osm":
		return OSMSim(n, seed), nil
	case "teraclick":
		return TeraClickSim(n, seed), nil
	case "household":
		return HouseholdSim(n, seed), nil
	}
	var d int
	switch {
	case strings.HasPrefix(name, "ss-simden-") && strings.HasSuffix(name, "d"):
		if _, err := fmt.Sscanf(name, "ss-simden-%dd", &d); err != nil {
			return geom.Points{}, fmt.Errorf("dataset: bad name %q", name)
		}
		return SeedSpreader(SeedSpreaderConfig{N: n, D: d, Seed: seed}), nil
	case strings.HasPrefix(name, "ss-varden-") && strings.HasSuffix(name, "d"):
		if _, err := fmt.Sscanf(name, "ss-varden-%dd", &d); err != nil {
			return geom.Points{}, fmt.Errorf("dataset: bad name %q", name)
		}
		return SeedSpreader(SeedSpreaderConfig{N: n, D: d, VarDen: true, Seed: seed}), nil
	case strings.HasPrefix(name, "uniform-") && strings.HasSuffix(name, "d"):
		if _, err := fmt.Sscanf(name, "uniform-%dd", &d); err != nil {
			return geom.Points{}, fmt.Errorf("dataset: bad name %q", name)
		}
		return UniformFill(n, d, seed), nil
	case strings.HasPrefix(name, "drift-") && strings.HasSuffix(name, "d"):
		if _, err := fmt.Sscanf(name, "drift-%dd", &d); err != nil {
			return geom.Points{}, fmt.Errorf("dataset: bad name %q", name)
		}
		return DriftStream(DriftStreamConfig{N: n, D: d, Seed: seed}), nil
	}
	return geom.Points{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Names lists the generatable dataset names (with <d> placeholders expanded
// for the dimensions the paper evaluates).
func Names() []string {
	out := []string{}
	for _, d := range []int{2, 3, 5, 7} {
		out = append(out,
			fmt.Sprintf("ss-simden-%dd", d),
			fmt.Sprintf("ss-varden-%dd", d),
			fmt.Sprintf("uniform-%dd", d),
			fmt.Sprintf("drift-%dd", d),
		)
	}
	return append(out, "geolife", "cosmo", "osm", "teraclick", "household")
}
