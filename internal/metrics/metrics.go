// Package metrics provides clustering-comparison utilities: an
// obviously-correct brute-force DBSCAN oracle (quadratic, used by tests), a
// partition-equivalence check (cluster IDs compared up to relabeling), the
// Adjusted Rand Index and Normalized Mutual Information (the quality scores
// of the sampled-core approximate mode), and a validity oracle for Gan–Tao
// approximate DBSCAN.
package metrics

import (
	"fmt"
	"math"

	"pdbscan/internal/geom"
)

// BruteResult is the output of the reference DBSCAN.
type BruteResult struct {
	Core []bool
	// Clusters[i] is the ascending set of cluster IDs point i belongs to:
	// exactly one for core points, possibly several for border points,
	// empty for noise.
	Clusters [][]int
	// NumClusters is the number of clusters.
	NumClusters int
}

// BruteDBSCAN computes exact DBSCAN per the standard definition by brute
// force (O(n^2) distances). It is the test oracle.
func BruteDBSCAN(pts geom.Points, eps float64, minPts int) *BruteResult {
	n := pts.N
	eps2 := eps * eps
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		count := 0
		for j := 0; j < n; j++ {
			if geom.DistSq(pts.At(i), pts.At(j)) <= eps2 {
				count++
			}
		}
		core[i] = count >= minPts
	}
	// Connected components of core points under d <= eps.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	numClusters := 0
	var stack []int
	for s := 0; s < n; s++ {
		if !core[s] || comp[s] >= 0 {
			continue
		}
		comp[s] = numClusters
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < n; v++ {
				if v == u || !core[v] || comp[v] >= 0 {
					continue
				}
				if geom.DistSq(pts.At(u), pts.At(v)) <= eps2 {
					comp[v] = numClusters
					stack = append(stack, v)
				}
			}
		}
		numClusters++
	}
	clusters := make([][]int, n)
	for i := 0; i < n; i++ {
		if core[i] {
			clusters[i] = []int{comp[i]}
			continue
		}
		var set []int
		for j := 0; j < n; j++ {
			if !core[j] {
				continue
			}
			if geom.DistSq(pts.At(i), pts.At(j)) <= eps2 {
				c := comp[j]
				found := false
				for _, x := range set {
					if x == c {
						found = true
						break
					}
				}
				if !found {
					set = append(set, c)
				}
			}
		}
		// ascending
		for a := 1; a < len(set); a++ {
			b := a
			for b > 0 && set[b] < set[b-1] {
				set[b], set[b-1] = set[b-1], set[b]
				b--
			}
		}
		clusters[i] = set
	}
	return &BruteResult{Core: core, Clusters: clusters, NumClusters: numClusters}
}

// SameDBSCANResult compares a library result (core flags, primary labels and
// border membership sets) against the brute-force oracle, requiring exact
// agreement up to a bijective relabeling of clusters. Returns nil on match.
func SameDBSCANResult(
	ref *BruteResult,
	core []bool, labels []int32, border map[int32][]int32, numClusters int,
) error {
	n := len(ref.Core)
	if len(core) != n || len(labels) != n {
		return fmt.Errorf("length mismatch")
	}
	if numClusters != ref.NumClusters {
		return fmt.Errorf("numClusters = %d, want %d", numClusters, ref.NumClusters)
	}
	for i := 0; i < n; i++ {
		if core[i] != ref.Core[i] {
			return fmt.Errorf("point %d: core = %v, want %v", i, core[i], ref.Core[i])
		}
	}
	// Build the label bijection from core points.
	fw := map[int32]int{}
	bw := map[int]int32{}
	for i := 0; i < n; i++ {
		if !ref.Core[i] {
			continue
		}
		got, want := labels[i], ref.Clusters[i][0]
		if g, ok := fw[got]; ok && g != want {
			return fmt.Errorf("point %d: label %d maps to refs %d and %d", i, got, g, want)
		}
		if w, ok := bw[want]; ok && w != got {
			return fmt.Errorf("point %d: ref %d maps to labels %d and %d", i, want, w, got)
		}
		fw[got] = want
		bw[want] = got
	}
	// Check non-core points.
	for i := 0; i < n; i++ {
		if ref.Core[i] {
			continue
		}
		want := ref.Clusters[i]
		var got []int32
		if m, ok := border[int32(i)]; ok {
			got = m
		} else if labels[i] >= 0 {
			got = []int32{labels[i]}
		}
		if len(got) != len(want) {
			return fmt.Errorf("point %d: %d memberships, want %d", i, len(got), len(want))
		}
		// Map and compare as sets.
		seen := map[int]bool{}
		for _, w := range want {
			seen[w] = true
		}
		for _, g := range got {
			w, ok := fw[g]
			if !ok {
				return fmt.Errorf("point %d: label %d not seen on any core point", i, g)
			}
			if !seen[w] {
				return fmt.Errorf("point %d: membership %d (ref %d) not in oracle set %v", i, g, w, want)
			}
		}
		if len(got) > 0 {
			// Primary label must be the smallest membership.
			minG := got[0]
			for _, g := range got {
				if g < minG {
					minG = g
				}
			}
			if labels[i] != minG {
				return fmt.Errorf("point %d: primary label %d, want min membership %d", i, labels[i], minG)
			}
		} else if labels[i] != -1 {
			return fmt.Errorf("point %d: noise point has label %d", i, labels[i])
		}
	}
	return nil
}

// ValidApproxResult verifies the Gan–Tao approximate DBSCAN guarantees:
//  1. core flags equal exact DBSCAN's (the core definition is unchanged);
//  2. core points within eps of each other are in the same cluster;
//  3. each cluster's core points form a connected graph under d <= eps(1+rho);
//  4. border points belong only to clusters with a core point within eps,
//     and to every cluster with such a core point.
//
// Returns nil if the clustering is a valid approximate answer.
func ValidApproxResult(
	pts geom.Points, eps, rho float64, minPts int,
	core []bool, labels []int32, border map[int32][]int32,
) error {
	n := pts.N
	eps2 := eps * eps
	relaxed2 := eps * (1 + rho) * eps * (1 + rho)
	// (1) core flags.
	for i := 0; i < n; i++ {
		count := 0
		for j := 0; j < n; j++ {
			if geom.DistSq(pts.At(i), pts.At(j)) <= eps2 {
				count++
			}
		}
		if core[i] != (count >= minPts) {
			return fmt.Errorf("point %d: core = %v, exact wants %v", i, core[i], count >= minPts)
		}
	}
	// (2) mandatory merges.
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if !core[j] {
				continue
			}
			if geom.DistSq(pts.At(i), pts.At(j)) <= eps2 && labels[i] != labels[j] {
				return fmt.Errorf("core points %d and %d within eps but in clusters %d and %d",
					i, j, labels[i], labels[j])
			}
		}
	}
	// (3) intra-cluster connectivity under the relaxed radius.
	clusters := map[int32][]int{}
	for i := 0; i < n; i++ {
		if core[i] {
			clusters[labels[i]] = append(clusters[labels[i]], i)
		}
	}
	for lbl, members := range clusters {
		if len(members) <= 1 {
			continue
		}
		visited := map[int]bool{members[0]: true}
		stack := []int{members[0]}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range members {
				if visited[v] {
					continue
				}
				if geom.DistSq(pts.At(u), pts.At(v)) <= relaxed2 {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		if len(visited) != len(members) {
			return fmt.Errorf("cluster %d not connected under eps(1+rho)", lbl)
		}
	}
	// (4) border membership.
	for i := 0; i < n; i++ {
		if core[i] {
			continue
		}
		want := map[int32]bool{}
		for j := 0; j < n; j++ {
			if core[j] && geom.DistSq(pts.At(i), pts.At(j)) <= eps2 {
				want[labels[j]] = true
			}
		}
		var got []int32
		if m, ok := border[int32(i)]; ok {
			got = m
		} else if labels[i] >= 0 {
			got = []int32{labels[i]}
		}
		if len(got) != len(want) {
			return fmt.Errorf("border point %d: %d memberships, want %d", i, len(got), len(want))
		}
		for _, g := range got {
			if !want[g] {
				return fmt.Errorf("border point %d: wrong membership %d", i, g)
			}
		}
	}
	return nil
}

// AdjustedRandIndex computes the ARI between two flat labelings (same
// length; negative labels mean "noise" and are treated as singleton
// clusters). 1.0 means identical partitions.
func AdjustedRandIndex(a, b []int32) float64 {
	n := len(a)
	if n != len(b) || n == 0 {
		return 0
	}
	// Remap noise to unique singleton labels.
	amax, bmax := int32(0), int32(0)
	for i := 0; i < n; i++ {
		if a[i] > amax {
			amax = a[i]
		}
		if b[i] > bmax {
			bmax = b[i]
		}
	}
	ar := make([]int32, n)
	br := make([]int32, n)
	na, nb := amax+1, bmax+1
	for i := 0; i < n; i++ {
		if a[i] < 0 {
			ar[i] = na
			na++
		} else {
			ar[i] = a[i]
		}
		if b[i] < 0 {
			br[i] = nb
			nb++
		} else {
			br[i] = b[i]
		}
	}
	// Contingency table via map (sparse).
	type pair struct{ x, y int32 }
	cont := map[pair]int64{}
	rowSum := map[int32]int64{}
	colSum := map[int32]int64{}
	for i := 0; i < n; i++ {
		cont[pair{ar[i], br[i]}]++
		rowSum[ar[i]]++
		colSum[br[i]]++
	}
	choose2 := func(x int64) float64 { return float64(x) * float64(x-1) / 2 }
	var sumCont, sumRow, sumCol float64
	for _, v := range cont {
		sumCont += choose2(v)
	}
	for _, v := range rowSum {
		sumRow += choose2(v)
	}
	for _, v := range colSum {
		sumCol += choose2(v)
	}
	total := choose2(int64(n))
	expected := sumRow * sumCol / total
	maxIdx := (sumRow + sumCol) / 2
	if maxIdx == expected {
		return 1
	}
	return (sumCont - expected) / (maxIdx - expected)
}

// NormalizedMutualInfo computes the NMI between two flat labelings (same
// length) with arithmetic-mean normalization: I(A;B) / ((H(A)+H(B))/2).
// Negative labels mean "noise" and are treated as singleton clusters, the
// same convention as AdjustedRandIndex. Returns 1.0 for identical partitions
// (including two all-singleton partitions, where both entropies vanish
// together only if the partitions are equal-by-construction; the degenerate
// H(A)+H(B) == 0 case means both sides are one cluster and is reported as 1).
func NormalizedMutualInfo(a, b []int32) float64 {
	n := len(a)
	if n != len(b) || n == 0 {
		return 0
	}
	// Remap noise to unique singleton labels (shared convention with ARI).
	amax, bmax := int32(0), int32(0)
	for i := 0; i < n; i++ {
		if a[i] > amax {
			amax = a[i]
		}
		if b[i] > bmax {
			bmax = b[i]
		}
	}
	ar := make([]int32, n)
	br := make([]int32, n)
	na, nb := amax+1, bmax+1
	for i := 0; i < n; i++ {
		if a[i] < 0 {
			ar[i] = na
			na++
		} else {
			ar[i] = a[i]
		}
		if b[i] < 0 {
			br[i] = nb
			nb++
		} else {
			br[i] = b[i]
		}
	}
	type pair struct{ x, y int32 }
	cont := map[pair]int64{}
	rowSum := map[int32]int64{}
	colSum := map[int32]int64{}
	for i := 0; i < n; i++ {
		cont[pair{ar[i], br[i]}]++
		rowSum[ar[i]]++
		colSum[br[i]]++
	}
	fn := float64(n)
	var hA, hB, mi float64
	for _, v := range rowSum {
		p := float64(v) / fn
		hA -= p * math.Log(p)
	}
	for _, v := range colSum {
		p := float64(v) / fn
		hB -= p * math.Log(p)
	}
	for k, v := range cont {
		pxy := float64(v) / fn
		px := float64(rowSum[k.x]) / fn
		py := float64(colSum[k.y]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	denom := (hA + hB) / 2
	if denom == 0 {
		return 1 // both sides are a single cluster: identical partitions
	}
	nmi := mi / denom
	// Clamp float noise to the theoretical [0, 1] range.
	if nmi < 0 {
		return 0
	}
	if nmi > 1 {
		return 1
	}
	return nmi
}
