package metrics

import (
	"math"
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
)

func TestBruteDBSCANTwoBlobs(t *testing.T) {
	rows := [][]float64{}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{float64(i) * 0.1, 0})
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{100 + float64(i)*0.1, 0})
	}
	rows = append(rows, []float64{50, 50}) // noise
	pts, _ := geom.FromRows(rows)
	res := BruteDBSCAN(pts, 1.0, 5)
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	for i := 0; i < 20; i++ {
		if !res.Core[i] {
			t.Fatalf("point %d should be core", i)
		}
	}
	if res.Core[20] || len(res.Clusters[20]) != 0 {
		t.Fatal("noise point misclassified")
	}
	if res.Clusters[0][0] == res.Clusters[10][0] {
		t.Fatal("blobs merged")
	}
}

func TestBruteDBSCANBorder(t *testing.T) {
	// 5 core points in a tight blob; one point at distance just under eps
	// of one blob point only -> border.
	rows := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, {0.05, 0.05},
		{0.95, 0}, // within 1.0 of the blob, sees < 5 points within eps? it sees all 5 blob points... choose further
	}
	pts, _ := geom.FromRows(rows)
	res := BruteDBSCAN(pts, 1.0, 6)
	// Blob points see 5 blobmates + border point = 6 >= 6 -> core? distance
	// from (0.1,0) to (0.95,0) = 0.85 <= 1 yes; so blob points with all 6
	// within eps are core; the border point sees all 6 too... it is core.
	// Tighten: use minPts 7 so nothing is core.
	res = BruteDBSCAN(pts, 1.0, 7)
	if res.NumClusters != 0 {
		t.Fatalf("clusters = %d, want 0", res.NumClusters)
	}
	_ = res
}

func TestSameDBSCANResultDetectsMismatch(t *testing.T) {
	rows := [][]float64{{0, 0}, {0.1, 0}, {0.2, 0}, {10, 10}}
	pts, _ := geom.FromRows(rows)
	ref := BruteDBSCAN(pts, 0.5, 2)
	core := append([]bool{}, ref.Core...)
	labels := make([]int32, 4)
	for i := range labels {
		if len(ref.Clusters[i]) > 0 {
			labels[i] = int32(ref.Clusters[i][0])
		} else {
			labels[i] = -1
		}
	}
	if err := SameDBSCANResult(ref, core, labels, nil, ref.NumClusters); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	// Flip a core flag.
	core[0] = !core[0]
	if err := SameDBSCANResult(ref, core, labels, nil, ref.NumClusters); err == nil {
		t.Fatal("did not detect core-flag mismatch")
	}
	core[0] = !core[0]
	// Merge two clusters.
	labels2 := append([]int32{}, labels...)
	for i := range labels2 {
		if labels2[i] > 0 {
			labels2[i] = 0
		}
	}
	if ref.NumClusters >= 2 {
		if err := SameDBSCANResult(ref, core, labels2, nil, ref.NumClusters); err == nil {
			t.Fatal("did not detect merged clusters")
		}
	}
}

func TestARIIdenticalAndPermuted(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2}
	if got := AdjustedRandIndex(a, a); got != 1 {
		t.Fatalf("ARI(a,a) = %v", got)
	}
	b := []int32{2, 2, 0, 0, 1, 1} // same partition, renamed
	if got := AdjustedRandIndex(a, b); got != 1 {
		t.Fatalf("ARI permuted = %v", got)
	}
}

func TestARIRandomIsLow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	a := make([]int32, n)
	b := make([]int32, n)
	for i := 0; i < n; i++ {
		a[i] = int32(rng.Intn(5))
		b[i] = int32(rng.Intn(5))
	}
	if got := AdjustedRandIndex(a, b); math.Abs(got) > 0.05 {
		t.Fatalf("ARI of independent labelings = %v, want ~0", got)
	}
}

func TestARIDifferentPartitions(t *testing.T) {
	a := []int32{0, 0, 0, 1, 1, 1}
	b := []int32{0, 0, 1, 1, 2, 2}
	got := AdjustedRandIndex(a, b)
	if got >= 1 || got <= -1 {
		t.Fatalf("ARI = %v out of range", got)
	}
}

func TestARINoiseAsSingletons(t *testing.T) {
	a := []int32{0, 0, -1, -1}
	b := []int32{0, 0, -1, -1}
	if got := AdjustedRandIndex(a, b); got != 1 {
		t.Fatalf("ARI with matching noise = %v, want 1", got)
	}
}

func TestValidApproxAcceptsExact(t *testing.T) {
	rows := [][]float64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		rows = append(rows, []float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	pts, _ := geom.FromRows(rows)
	eps, minPts := 1.5, 4
	ref := BruteDBSCAN(pts, eps, minPts)
	labels := make([]int32, pts.N)
	border := map[int32][]int32{}
	for i := 0; i < pts.N; i++ {
		if len(ref.Clusters[i]) == 0 {
			labels[i] = -1
			continue
		}
		labels[i] = int32(ref.Clusters[i][0])
		if !ref.Core[i] && len(ref.Clusters[i]) > 1 {
			m := make([]int32, len(ref.Clusters[i]))
			for k, c := range ref.Clusters[i] {
				m[k] = int32(c)
			}
			border[int32(i)] = m
		}
	}
	if err := ValidApproxResult(pts, eps, 0.1, minPts, ref.Core, labels, border); err != nil {
		t.Fatalf("exact result rejected as approx: %v", err)
	}
}

func TestValidApproxRejectsBadMerge(t *testing.T) {
	// Two far-apart blobs labeled as one cluster must be rejected (not
	// connected under eps(1+rho)).
	rows := [][]float64{}
	for i := 0; i < 5; i++ {
		rows = append(rows, []float64{float64(i) * 0.1, 0})
	}
	for i := 0; i < 5; i++ {
		rows = append(rows, []float64{100 + float64(i)*0.1, 0})
	}
	pts, _ := geom.FromRows(rows)
	core := make([]bool, 10)
	labels := make([]int32, 10)
	for i := range core {
		core[i] = true
		labels[i] = 0 // wrongly merged
	}
	if err := ValidApproxResult(pts, 1.0, 0.1, 3, core, labels, nil); err == nil {
		t.Fatal("accepted a bogus merge of distant blobs")
	}
}
