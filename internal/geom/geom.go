// Package geom provides the flat point store and distance/box utilities
// shared by every spatial structure in the library. Points are stored
// row-major in a single []float64 for cache efficiency; all algorithms work
// on point *indices* into a Points value.
package geom

import (
	"fmt"
	"math"
)

// Points is an immutable set of n points in d dimensions, stored row-major.
type Points struct {
	N    int       // number of points
	D    int       // dimensionality
	Data []float64 // len N*D, point i at Data[i*D : (i+1)*D]
}

// FromRows builds a Points from a slice of coordinate rows. All rows must
// have the same dimensionality.
func FromRows(rows [][]float64) (Points, error) {
	if len(rows) == 0 {
		return Points{}, fmt.Errorf("geom: empty point set")
	}
	d := len(rows[0])
	if d == 0 {
		return Points{}, fmt.Errorf("geom: zero-dimensional points")
	}
	data := make([]float64, 0, len(rows)*d)
	for i, r := range rows {
		if len(r) != d {
			return Points{}, fmt.Errorf("geom: row %d has %d coords, want %d", i, len(r), d)
		}
		data = append(data, r...)
	}
	return Points{N: len(rows), D: d, Data: data}, nil
}

// At returns point i as a slice view (do not mutate).
func (p Points) At(i int) []float64 {
	return p.Data[i*p.D : (i+1)*p.D : (i+1)*p.D]
}

// Bounds returns the coordinate-wise min and max over all points.
func (p Points) Bounds() (lo, hi []float64) {
	lo = make([]float64, p.D)
	hi = make([]float64, p.D)
	for j := 0; j < p.D; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for i := 0; i < p.N; i++ {
		row := p.At(i)
		for j, v := range row {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

// DistSq returns the squared Euclidean distance between coordinate slices
// a and b (must have equal length).
func DistSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(DistSq(a, b)) }

// PointBoxDistSq returns the squared distance from point p to the axis-aligned
// box [lo, hi] (zero if p is inside).
func PointBoxDistSq(p, lo, hi []float64) float64 {
	var s float64
	for i := range p {
		if v := p[i]; v < lo[i] {
			d := lo[i] - v
			s += d * d
		} else if v > hi[i] {
			d := v - hi[i]
			s += d * d
		}
	}
	return s
}

// BoxBoxDistSq returns the squared minimum distance between two axis-aligned
// boxes (zero if they intersect).
func BoxBoxDistSq(alo, ahi, blo, bhi []float64) float64 {
	var s float64
	for i := range alo {
		if ahi[i] < blo[i] {
			d := blo[i] - ahi[i]
			s += d * d
		} else if bhi[i] < alo[i] {
			d := alo[i] - bhi[i]
			s += d * d
		}
	}
	return s
}

// BoxMaxDistSq returns the squared maximum distance from point p to any point
// of the box [lo, hi]; used by the approximate range query to decide that a
// quadtree node is fully inside the eps(1+rho) ball.
func BoxMaxDistSq(p, lo, hi []float64) float64 {
	var s float64
	for i := range p {
		d1 := math.Abs(p[i] - lo[i])
		d2 := math.Abs(p[i] - hi[i])
		if d2 > d1 {
			d1 = d2
		}
		s += d1 * d1
	}
	return s
}
