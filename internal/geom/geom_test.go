package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAt(t *testing.T) {
	p, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 3 || p.D != 2 {
		t.Fatalf("N=%d D=%d", p.N, p.D)
	}
	if got := p.At(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("At(1) = %v", got)
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("expected error for empty rows")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Fatal("expected error for zero-dim")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestBounds(t *testing.T) {
	p, _ := FromRows([][]float64{{1, 9}, {-2, 4}, {5, 0}})
	lo, hi := p.Bounds()
	if lo[0] != -2 || lo[1] != 0 || hi[0] != 5 || hi[1] != 9 {
		t.Fatalf("bounds = %v %v", lo, hi)
	}
}

func TestDistKnown(t *testing.T) {
	if d := Dist([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("dist = %v, want 5", d)
	}
}

func TestDistSqSymmetricNonneg(t *testing.T) {
	f := func(a, b [3]float64) bool {
		d1 := DistSq(a[:], b[:])
		d2 := DistSq(b[:], a[:])
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointBoxDistSq(t *testing.T) {
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	if d := PointBoxDistSq([]float64{0.5, 0.5}, lo, hi); d != 0 {
		t.Fatalf("inside point dist = %v", d)
	}
	if d := PointBoxDistSq([]float64{2, 0.5}, lo, hi); math.Abs(d-1) > 1e-12 {
		t.Fatalf("side dist = %v, want 1", d)
	}
	if d := PointBoxDistSq([]float64{2, 2}, lo, hi); math.Abs(d-2) > 1e-12 {
		t.Fatalf("corner dist = %v, want 2", d)
	}
}

func TestBoxBoxDistSq(t *testing.T) {
	alo, ahi := []float64{0, 0}, []float64{1, 1}
	blo, bhi := []float64{2, 0}, []float64{3, 1}
	if d := BoxBoxDistSq(alo, ahi, blo, bhi); math.Abs(d-1) > 1e-12 {
		t.Fatalf("box dist = %v, want 1", d)
	}
	// Overlapping boxes.
	if d := BoxBoxDistSq(alo, ahi, []float64{0.5, 0.5}, []float64{2, 2}); d != 0 {
		t.Fatalf("overlap dist = %v, want 0", d)
	}
	// Diagonal separation.
	if d := BoxBoxDistSq(alo, ahi, []float64{2, 2}, []float64{3, 3}); math.Abs(d-2) > 1e-12 {
		t.Fatalf("diag dist = %v, want 2", d)
	}
}

func TestBoxMaxDistSq(t *testing.T) {
	lo, hi := []float64{0, 0}, []float64{1, 1}
	// From origin corner, farthest point of box is (1,1): dist^2 = 2.
	if d := BoxMaxDistSq([]float64{0, 0}, lo, hi); math.Abs(d-2) > 1e-12 {
		t.Fatalf("max dist = %v, want 2", d)
	}
	// Max dist upper-bounds dist to any point in the box.
	f := func(px, py, qx, qy float64) bool {
		clamp := func(v float64) float64 { return math.Mod(math.Abs(v), 1.0) }
		q := []float64{clamp(qx), clamp(qy)}
		p := []float64{px, py}
		return DistSq(p, q) <= BoxMaxDistSq(p, lo, hi)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
