package geom

import (
	"math"
	"math/rand"
	"testing"
)

// adversarialValues are coordinates chosen to expose any operation-order or
// rounding difference between the specialized and generic kernels: zeros of
// both signs, denormals, values around the float64 precision cliff, and
// magnitudes whose squares overflow or underflow.
var adversarialValues = []float64{
	0, math.Copysign(0, -1),
	5e-324, -5e-324, // denormal min
	math.SmallestNonzeroFloat64 * 7,
	1e-160, -1e-160, // squares are denormal
	1, -1, 0.1, -0.1,
	1 + math.Nextafter(1, 2) - 1, // 1 + ulp
	1e8, -1e8, 1e154, -1e154,     // squares near overflow
	math.MaxFloat64, -math.MaxFloat64,
	3.5, 7.25, 1e-9,
}

// kernelPts builds a Points in dimension d whose rows enumerate adversarial
// coordinate combinations plus seeded random fill.
func kernelPts(t testing.TB, d int, rng *rand.Rand) Points {
	var rows [][]float64
	for _, a := range adversarialValues {
		for _, b := range adversarialValues {
			row := make([]float64, d)
			row[0] = a
			row[d-1] = b
			for j := 1; j < d-1; j++ {
				row[j] = rng.NormFloat64()
			}
			rows = append(rows, row)
		}
	}
	for i := 0; i < 200; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
		rows = append(rows, row)
	}
	pts, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// requireBitsEqual fails unless the two float64s are bit-for-bit identical
// (NaN payloads and signed zeros included).
func requireBitsEqual(t *testing.T, what string, spec, gen float64) {
	t.Helper()
	if math.Float64bits(spec) != math.Float64bits(gen) {
		t.Fatalf("%s: specialized %v (%#x) != generic %v (%#x)",
			what, spec, math.Float64bits(spec), gen, math.Float64bits(gen))
	}
}

// TestKernelEquivalence pins the bit-for-bit agreement between the
// specialized 2D/3D kernels and the generic-D loop (and the package-level
// reference functions) across adversarial coordinates.
func TestKernelEquivalence(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(d)))
		pts := kernelPts(t, d, rng)
		k := NewKernel(pts)
		gk := NewGenericKernel(pts)
		if (k.Specialized()) != (d == 2 || d == 3) {
			t.Fatalf("d=%d: Specialized() = %v", d, k.Specialized())
		}

		n := int32(pts.N)
		for trial := 0; trial < 4000; trial++ {
			a := int32(rng.Intn(int(n)))
			b := int32(rng.Intn(int(n)))
			spec := k.DistSq(a, b)
			gen := gk.DistSq(a, b)
			requireBitsEqual(t, "DistSq", spec, gen)
			requireBitsEqual(t, "DistSq vs reference", spec, DistSq(pts.At(int(a)), pts.At(int(b))))
			requireBitsEqual(t, "DistSqRow", k.DistSqRow(pts.At(int(a)), b), gen)

			// Exact-threshold agreement: WithinSq at eps2 equal to the
			// distance itself must agree (the <= boundary case).
			if spec == spec { // skip NaN thresholds
				if k.WithinSq(a, b, spec) != gk.WithinSq(a, b, spec) {
					t.Fatalf("WithinSq boundary disagreement at d=%d a=%d b=%d", d, a, b)
				}
			}

			lo, hi := pts.At(int(a)), pts.At(int(b))
			boxLo := make([]float64, d)
			boxHi := make([]float64, d)
			for j := 0; j < d; j++ {
				boxLo[j] = math.Min(lo[j], hi[j])
				boxHi[j] = math.Max(lo[j], hi[j])
			}
			q := pts.At(rng.Intn(int(n)))
			requireBitsEqual(t, "PointBoxDistSq",
				k.PointBoxDistSq(q, boxLo, boxHi), PointBoxDistSq(q, boxLo, boxHi))
		}

		// Flat per-slot box arrays for the *At forms.
		slots := 16
		los := make([]float64, slots*d)
		his := make([]float64, slots*d)
		for s := 0; s < slots; s++ {
			a := pts.At(rng.Intn(int(n)))
			b := pts.At(rng.Intn(int(n)))
			for j := 0; j < d; j++ {
				los[s*d+j] = math.Min(a[j], b[j])
				his[s*d+j] = math.Max(a[j], b[j])
			}
		}
		for g := int32(0); g < int32(slots); g++ {
			for h := int32(0); h < int32(slots); h++ {
				want := BoxBoxDistSq(los[g*int32(d):(g+1)*int32(d)], his[g*int32(d):(g+1)*int32(d)],
					los[h*int32(d):(h+1)*int32(d)], his[h*int32(d):(h+1)*int32(d)])
				requireBitsEqual(t, "BoxBoxDistSqAt",
					k.BoxBoxDistSqAt(los, his, g, h), want)
				requireBitsEqual(t, "BoxBoxDistSq",
					k.BoxBoxDistSq(los[g*int32(d):(g+1)*int32(d)], his[g*int32(d):(g+1)*int32(d)],
						los[h*int32(d):(h+1)*int32(d)], his[h*int32(d):(h+1)*int32(d)]), want)
			}
			p := int32(rng.Intn(int(n)))
			requireBitsEqual(t, "PointBoxDistSqAt",
				k.PointBoxDistSqAt(p, los, his, g),
				PointBoxDistSq(pts.At(int(p)), los[g*int32(d):(g+1)*int32(d)], his[g*int32(d):(g+1)*int32(d)]))
		}
	}
}

// TestKernelBatchEquivalence checks the batch variants (CountWithin,
// AnyWithin, FilterNearInto, AnyPairWithin) against straightforward loops
// over the reference functions, including exact-eps boundary pairs.
func TestKernelBatchEquivalence(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		rng := rand.New(rand.NewSource(100 + int64(d)))
		pts := kernelPts(t, d, rng)
		k := NewKernel(pts)
		n := int32(pts.N)

		idx := make([]int32, 64)
		jdx := make([]int32, 64)
		for trial := 0; trial < 300; trial++ {
			for i := range idx {
				idx[i] = int32(rng.Intn(int(n)))
				jdx[i] = int32(rng.Intn(int(n)))
			}
			q := int32(rng.Intn(int(n)))
			// eps2 drawn from an actual pair distance half the time, so the
			// <= boundary is routinely exercised (exact-eps pairs).
			eps2 := math.Abs(rng.NormFloat64())
			if trial%2 == 0 {
				eps2 = DistSq(pts.At(int(q)), pts.At(int(idx[rng.Intn(len(idx))])))
			}
			if math.IsNaN(eps2) {
				continue
			}

			want := 0
			for _, p := range idx {
				if DistSq(pts.At(int(q)), pts.At(int(p))) <= eps2 {
					want++
				}
			}
			if got := k.CountWithin(q, idx, eps2, 0); got != want {
				t.Fatalf("d=%d CountWithin = %d, want %d", d, got, want)
			}
			if need := 1 + rng.Intn(8); want >= need {
				if got := k.CountWithin(q, idx, eps2, need); got != need {
					t.Fatalf("d=%d CountWithin(need=%d) = %d", d, need, got)
				}
			}
			if got := k.AnyWithin(q, idx, eps2); got != (want > 0) {
				t.Fatalf("d=%d AnyWithin = %v, want %v", d, got, want > 0)
			}

			boxLo := make([]float64, d)
			boxHi := make([]float64, d)
			a, b := pts.At(int(jdx[0])), pts.At(int(jdx[1]))
			for j := 0; j < d; j++ {
				boxLo[j] = math.Min(a[j], b[j])
				boxHi[j] = math.Max(a[j], b[j])
			}
			var wantNear []int32
			for _, p := range idx {
				if PointBoxDistSq(pts.At(int(p)), boxLo, boxHi) <= eps2 {
					wantNear = append(wantNear, p)
				}
			}
			gotNear := k.FilterNearInto(nil, idx, boxLo, boxHi, eps2)
			if len(gotNear) != len(wantNear) {
				t.Fatalf("d=%d FilterNearInto kept %d, want %d", d, len(gotNear), len(wantNear))
			}
			for i := range gotNear {
				if gotNear[i] != wantNear[i] {
					t.Fatalf("d=%d FilterNearInto[%d] = %d, want %d", d, i, gotNear[i], wantNear[i])
				}
			}

			wantPair := false
			for _, a := range idx {
				for _, b := range jdx {
					if DistSq(pts.At(int(a)), pts.At(int(b))) <= eps2 {
						wantPair = true
					}
				}
			}
			if got := k.AnyPairWithin(idx, jdx, eps2); got != wantPair {
				t.Fatalf("d=%d AnyPairWithin = %v, want %v", d, got, wantPair)
			}
		}
	}
}

// FuzzKernelEquivalence fuzzes raw coordinate pairs through the specialized
// and generic kernels, asserting bit-identical squared distances in 2D and
// 3D (the dimensions with unrolled forms).
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(0.0, 1.0, -2.0, 3.5, 1e-300, -1e-300)
	f.Add(math.Copysign(0, -1), 0.0, 5e-324, -5e-324, 1e154, -1e154)
	f.Add(1.0, 1.0, 1.0, math.Nextafter(1, 2), math.MaxFloat64, math.MaxFloat64)
	f.Fuzz(func(t *testing.T, a0, a1, a2, b0, b1, b2 float64) {
		for _, v := range []float64{a0, a1, a2, b0, b1, b2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		for _, d := range []int{2, 3} {
			data := append(append([]float64{}, a0, a1, a2)[:d], []float64{b0, b1, b2}[:d]...)
			pts := Points{N: 2, D: d, Data: data}
			k, gk := NewKernel(pts), NewGenericKernel(pts)
			spec, gen := k.DistSq(0, 1), gk.DistSq(0, 1)
			if math.Float64bits(spec) != math.Float64bits(gen) {
				t.Fatalf("d=%d: specialized %v != generic %v", d, spec, gen)
			}
			if math.Float64bits(spec) != math.Float64bits(DistSq(pts.At(0), pts.At(1))) {
				t.Fatalf("d=%d: kernel %v != reference", d, spec)
			}
			row := k.DistSqRow(pts.At(0), 1)
			if math.Float64bits(row) != math.Float64bits(gen) {
				t.Fatalf("d=%d: DistSqRow %v != generic %v", d, row, gen)
			}
			if !math.IsNaN(spec) {
				if k.WithinSq(0, 1, spec) != gk.WithinSq(0, 1, spec) {
					t.Fatalf("d=%d: WithinSq boundary disagreement", d)
				}
			}
		}
	})
}
