package geom

import "math"

// Kernel is the distance hot path of one clustering run, resolved once per
// run from the point store's dimensionality. The specialized 2D and 3D forms
// index the flat row-major Data directly — no per-pair slice views, no
// bounds-checked generic-D loop — and the batch variants keep the dimension
// dispatch outside the per-pair loop entirely: one switch per cell (or per
// cell pair), then a tight scalar loop.
//
// Every method is bit-identical to its generic counterpart (DistSq,
// PointBoxDistSq, BoxBoxDistSq): the specialized forms accumulate terms in
// the same dimension order with the same operations, and Go never contracts
// float64 expressions into FMAs, so specialization can never change a
// clustering result. The kernel equivalence suite (kernel_test.go) pins this
// bit-for-bit across adversarial coordinates.
//
// A Kernel is two words (a dims tag and the data pointer); pass it by value.
type Kernel struct {
	dims int // dispatch tag: 2, 3, or 0 for the generic-D loop
	d    int // true dimensionality
	data []float64
}

// NewKernel resolves the kernel for a point store: the unrolled 2D or 3D
// form when the dimensionality allows, the generic-D loop otherwise.
func NewKernel(pts Points) Kernel {
	dims := pts.D
	if dims != 2 && dims != 3 {
		dims = 0
	}
	return Kernel{dims: dims, d: pts.D, data: pts.Data}
}

// NewGenericKernel resolves the generic-D kernel regardless of
// dimensionality. It exists for benchmarking (cmd/dbscanbench -exp hot
// measures specialization against it) and for the equivalence tests; results
// are bit-identical to NewKernel's.
func NewGenericKernel(pts Points) Kernel {
	return Kernel{dims: 0, d: pts.D, data: pts.Data}
}

// Dims returns the dimensionality of the underlying points.
func (k Kernel) Dims() int { return k.d }

// Specialized reports whether the kernel dispatches to an unrolled form.
func (k Kernel) Specialized() bool { return k.dims != 0 }

// DistSq returns the squared Euclidean distance between points a and b by
// index.
func (k Kernel) DistSq(a, b int32) float64 {
	switch k.dims {
	case 2:
		ia, ib := int(a)*2, int(b)*2
		dx := k.data[ia] - k.data[ib]
		dy := k.data[ia+1] - k.data[ib+1]
		return dx*dx + dy*dy
	case 3:
		ia, ib := int(a)*3, int(b)*3
		dx := k.data[ia] - k.data[ib]
		dy := k.data[ia+1] - k.data[ib+1]
		dz := k.data[ia+2] - k.data[ib+2]
		return dx*dx + dy*dy + dz*dz
	}
	return k.genericDistSq(a, b)
}

func (k Kernel) genericDistSq(a, b int32) float64 {
	d := k.d
	ra := k.data[int(a)*d : int(a)*d+d]
	rb := k.data[int(b)*d : int(b)*d+d]
	var s float64
	for j := range ra {
		diff := ra[j] - rb[j]
		s += diff * diff
	}
	return s
}

// WithinSq reports whether points a and b are within squared distance eps2.
func (k Kernel) WithinSq(a, b int32, eps2 float64) bool {
	return k.DistSq(a, b) <= eps2
}

// DistSqRow returns the squared distance between the coordinate row q and
// point p by index — the form the tree traversals use, where the query
// arrives as a row and the candidates as indices.
func (k Kernel) DistSqRow(q []float64, p int32) float64 {
	switch k.dims {
	case 2:
		ip := int(p) * 2
		dx := q[0] - k.data[ip]
		dy := q[1] - k.data[ip+1]
		return dx*dx + dy*dy
	case 3:
		ip := int(p) * 3
		dx := q[0] - k.data[ip]
		dy := q[1] - k.data[ip+1]
		dz := q[2] - k.data[ip+2]
		return dx*dx + dy*dy + dz*dz
	}
	d := k.d
	rp := k.data[int(p)*d : int(p)*d+d]
	var s float64
	for j := range rp {
		diff := q[j] - rp[j]
		s += diff * diff
	}
	return s
}

// CountWithin counts the points of pts within squared distance eps2 of point
// q, stopping once need qualifying points have been found (need <= 0 counts
// them all). The dimension dispatch happens once for the whole list.
func (k Kernel) CountWithin(q int32, pts []int32, eps2 float64, need int) int {
	count := 0
	switch k.dims {
	case 2:
		iq := int(q) * 2
		qx, qy := k.data[iq], k.data[iq+1]
		for _, p := range pts {
			ip := int(p) * 2
			dx := qx - k.data[ip]
			dy := qy - k.data[ip+1]
			if dx*dx+dy*dy <= eps2 {
				count++
				if count == need {
					return count
				}
			}
		}
	case 3:
		iq := int(q) * 3
		qx, qy, qz := k.data[iq], k.data[iq+1], k.data[iq+2]
		for _, p := range pts {
			ip := int(p) * 3
			dx := qx - k.data[ip]
			dy := qy - k.data[ip+1]
			dz := qz - k.data[ip+2]
			if dx*dx+dy*dy+dz*dz <= eps2 {
				count++
				if count == need {
					return count
				}
			}
		}
	default:
		for _, p := range pts {
			if k.genericDistSq(q, p) <= eps2 {
				count++
				if count == need {
					return count
				}
			}
		}
	}
	return count
}

// AnyWithin reports whether any point of pts lies within squared distance
// eps2 of point q.
func (k Kernel) AnyWithin(q int32, pts []int32, eps2 float64) bool {
	return k.CountWithin(q, pts, eps2, 1) > 0
}

// FilterNearInto appends to out the points of pts within squared distance
// eps2 of the axis-aligned box [boxLo, boxHi] and returns the extended slice
// (the caller passes a reused scratch buffer, typically out[:0]).
func (k Kernel) FilterNearInto(out []int32, pts []int32, boxLo, boxHi []float64, eps2 float64) []int32 {
	switch k.dims {
	case 2:
		lx, ly := boxLo[0], boxLo[1]
		hx, hy := boxHi[0], boxHi[1]
		for _, p := range pts {
			ip := int(p) * 2
			var s float64
			if v := k.data[ip]; v < lx {
				dd := lx - v
				s = dd * dd
			} else if v > hx {
				dd := v - hx
				s = dd * dd
			}
			if v := k.data[ip+1]; v < ly {
				dd := ly - v
				s += dd * dd
			} else if v > hy {
				dd := v - hy
				s += dd * dd
			}
			if s <= eps2 {
				out = append(out, p)
			}
		}
	default:
		d := k.d
		for _, p := range pts {
			if PointBoxDistSq(k.data[int(p)*d:int(p)*d+d], boxLo, boxHi) <= eps2 {
				out = append(out, p)
			}
		}
	}
	return out
}

// bcpBlock is the fixed block size of the bichromatic closest-pair scan
// (Section 4.4's blocked early termination): both point lists are walked in
// blocks of this many points so that an early qualifying pair is found
// having scanned only a prefix of each list.
const bcpBlock = 64

// AnyPairWithin reports whether any pair (a, b), a from as, b from bs, lies
// within squared distance eps2, scanning fixed-size blocks of the two lists
// and aborting on the first qualifying pair.
func (k Kernel) AnyPairWithin(as, bs []int32, eps2 float64) bool {
	for i := 0; i < len(as); i += bcpBlock {
		iEnd := min(i+bcpBlock, len(as))
		for j := 0; j < len(bs); j += bcpBlock {
			jEnd := min(j+bcpBlock, len(bs))
			switch k.dims {
			case 2:
				for _, a := range as[i:iEnd] {
					ia := int(a) * 2
					ax, ay := k.data[ia], k.data[ia+1]
					for _, b := range bs[j:jEnd] {
						ib := int(b) * 2
						dx := ax - k.data[ib]
						dy := ay - k.data[ib+1]
						if dx*dx+dy*dy <= eps2 {
							return true
						}
					}
				}
			case 3:
				for _, a := range as[i:iEnd] {
					ia := int(a) * 3
					ax, ay, az := k.data[ia], k.data[ia+1], k.data[ia+2]
					for _, b := range bs[j:jEnd] {
						ib := int(b) * 3
						dx := ax - k.data[ib]
						dy := ay - k.data[ib+1]
						dz := az - k.data[ib+2]
						if dx*dx+dy*dy+dz*dz <= eps2 {
							return true
						}
					}
				}
			default:
				for _, a := range as[i:iEnd] {
					for _, b := range bs[j:jEnd] {
						if k.genericDistSq(a, b) <= eps2 {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// CountWithinRange counts the points of the contiguous row range [lo, hi)
// within squared distance eps2 of point q, stopping once need qualifying
// points have been found (need <= 0 counts them all). It is the cell-major
// form of CountWithin: when the payload is laid out cell-by-cell the
// candidate list of a cell is exactly a row range, and the scan walks the
// backing array sequentially instead of gathering through an index list. The
// per-pair arithmetic and iteration order match CountWithin over the rows
// [lo, lo+1, ..., hi-1] exactly, so the two forms are bit-identical.
func (k Kernel) CountWithinRange(q, lo, hi int32, eps2 float64, need int) int {
	count := 0
	switch k.dims {
	case 2:
		iq := int(q) * 2
		qx, qy := k.data[iq], k.data[iq+1]
		for ip := int(lo) * 2; ip < int(hi)*2; ip += 2 {
			dx := qx - k.data[ip]
			dy := qy - k.data[ip+1]
			if dx*dx+dy*dy <= eps2 {
				count++
				if count == need {
					return count
				}
			}
		}
	case 3:
		iq := int(q) * 3
		qx, qy, qz := k.data[iq], k.data[iq+1], k.data[iq+2]
		for ip := int(lo) * 3; ip < int(hi)*3; ip += 3 {
			dx := qx - k.data[ip]
			dy := qy - k.data[ip+1]
			dz := qz - k.data[ip+2]
			if dx*dx+dy*dy+dz*dz <= eps2 {
				count++
				if count == need {
					return count
				}
			}
		}
	default:
		for p := lo; p < hi; p++ {
			if k.genericDistSq(q, p) <= eps2 {
				count++
				if count == need {
					return count
				}
			}
		}
	}
	return count
}

// AnyWithinRange reports whether any point of the contiguous row range
// [lo, hi) lies within squared distance eps2 of point q.
func (k Kernel) AnyWithinRange(q, lo, hi int32, eps2 float64) bool {
	return k.CountWithinRange(q, lo, hi, eps2, 1) > 0
}

// FilterNearRangeInto appends to out the rows of the contiguous range
// [lo, hi) within squared distance eps2 of the axis-aligned box [boxLo,
// boxHi] and returns the extended slice — the cell-major form of
// FilterNearInto, streaming the backing array instead of gathering through an
// index list. Appended values are row indices; selection and order match
// FilterNearInto over the rows [lo, ..., hi-1] exactly.
func (k Kernel) FilterNearRangeInto(out []int32, lo, hi int32, boxLo, boxHi []float64, eps2 float64) []int32 {
	switch k.dims {
	case 2:
		lx, ly := boxLo[0], boxLo[1]
		hx, hy := boxHi[0], boxHi[1]
		for p := lo; p < hi; p++ {
			ip := int(p) * 2
			var s float64
			if v := k.data[ip]; v < lx {
				dd := lx - v
				s = dd * dd
			} else if v > hx {
				dd := v - hx
				s = dd * dd
			}
			if v := k.data[ip+1]; v < ly {
				dd := ly - v
				s += dd * dd
			} else if v > hy {
				dd := v - hy
				s += dd * dd
			}
			if s <= eps2 {
				out = append(out, p)
			}
		}
	default:
		d := k.d
		for p := lo; p < hi; p++ {
			if PointBoxDistSq(k.data[int(p)*d:int(p)*d+d], boxLo, boxHi) <= eps2 {
				out = append(out, p)
			}
		}
	}
	return out
}

// AnyPairWithinRanges reports whether any pair (a, b), a from the row range
// [aLo, aHi), b from [bLo, bHi), lies within squared distance eps2 — the
// cell-major form of AnyPairWithin, walking the same fixed-size blocks
// (Section 4.4's blocked early termination) over two dense row ranges with
// no index gather. Pair order matches AnyPairWithin over the corresponding
// row lists exactly.
func (k Kernel) AnyPairWithinRanges(aLo, aHi, bLo, bHi int32, eps2 float64) bool {
	for i := aLo; i < aHi; i += bcpBlock {
		iEnd := min(i+bcpBlock, aHi)
		for j := bLo; j < bHi; j += bcpBlock {
			jEnd := min(j+bcpBlock, bHi)
			switch k.dims {
			case 2:
				for a := i; a < iEnd; a++ {
					ia := int(a) * 2
					ax, ay := k.data[ia], k.data[ia+1]
					for ib := int(j) * 2; ib < int(jEnd)*2; ib += 2 {
						dx := ax - k.data[ib]
						dy := ay - k.data[ib+1]
						if dx*dx+dy*dy <= eps2 {
							return true
						}
					}
				}
			case 3:
				for a := i; a < iEnd; a++ {
					ia := int(a) * 3
					ax, ay, az := k.data[ia], k.data[ia+1], k.data[ia+2]
					for ib := int(j) * 3; ib < int(jEnd)*3; ib += 3 {
						dx := ax - k.data[ib]
						dy := ay - k.data[ib+1]
						dz := az - k.data[ib+2]
						if dx*dx+dy*dy+dz*dz <= eps2 {
							return true
						}
					}
				}
			default:
				for a := i; a < iEnd; a++ {
					for b := j; b < jEnd; b++ {
						if k.genericDistSq(a, b) <= eps2 {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// PointBoxDistSq returns the squared distance from coordinate row q to the
// box [lo, hi] — the specialized form of the package-level PointBoxDistSq.
func (k Kernel) PointBoxDistSq(q, lo, hi []float64) float64 {
	switch k.dims {
	case 2:
		var s float64
		if v := q[0]; v < lo[0] {
			dd := lo[0] - v
			s = dd * dd
		} else if v > hi[0] {
			dd := v - hi[0]
			s = dd * dd
		}
		if v := q[1]; v < lo[1] {
			dd := lo[1] - v
			s += dd * dd
		} else if v > hi[1] {
			dd := v - hi[1]
			s += dd * dd
		}
		return s
	case 3:
		var s float64
		if v := q[0]; v < lo[0] {
			dd := lo[0] - v
			s = dd * dd
		} else if v > hi[0] {
			dd := v - hi[0]
			s = dd * dd
		}
		if v := q[1]; v < lo[1] {
			dd := lo[1] - v
			s += dd * dd
		} else if v > hi[1] {
			dd := v - hi[1]
			s += dd * dd
		}
		if v := q[2]; v < lo[2] {
			dd := lo[2] - v
			s += dd * dd
		} else if v > hi[2] {
			dd := v - hi[2]
			s += dd * dd
		}
		return s
	}
	return PointBoxDistSq(q, lo, hi)
}

// PointBoxDistSqAt returns the squared distance from point p to the box of
// slot g in the flat per-slot box arrays (box g occupies los[g*d:(g+1)*d]).
func (k Kernel) PointBoxDistSqAt(p int32, los, his []float64, g int32) float64 {
	switch k.dims {
	case 2:
		ip, ig := int(p)*2, int(g)*2
		var s float64
		if v := k.data[ip]; v < los[ig] {
			dd := los[ig] - v
			s = dd * dd
		} else if v > his[ig] {
			dd := v - his[ig]
			s = dd * dd
		}
		if v := k.data[ip+1]; v < los[ig+1] {
			dd := los[ig+1] - v
			s += dd * dd
		} else if v > his[ig+1] {
			dd := v - his[ig+1]
			s += dd * dd
		}
		return s
	case 3:
		ip, ig := int(p)*3, int(g)*3
		var s float64
		for j := 0; j < 3; j++ {
			if v := k.data[ip+j]; v < los[ig+j] {
				dd := los[ig+j] - v
				s += dd * dd
			} else if v > his[ig+j] {
				dd := v - his[ig+j]
				s += dd * dd
			}
		}
		return s
	}
	d := k.d
	return PointBoxDistSq(k.data[int(p)*d:int(p)*d+d], los[int(g)*d:int(g)*d+d], his[int(g)*d:int(g)*d+d])
}

// BoxMaxDistSq returns the squared maximum distance from coordinate row q to
// any point of the box [lo, hi] — the specialized form of the package-level
// BoxMaxDistSq (used by the quadtree's fully-inside test).
func (k Kernel) BoxMaxDistSq(q, lo, hi []float64) float64 {
	switch k.dims {
	case 2:
		d1 := math.Abs(q[0] - lo[0])
		if d2 := math.Abs(q[0] - hi[0]); d2 > d1 {
			d1 = d2
		}
		s := d1 * d1
		d1 = math.Abs(q[1] - lo[1])
		if d2 := math.Abs(q[1] - hi[1]); d2 > d1 {
			d1 = d2
		}
		return s + d1*d1
	case 3:
		var s float64
		for j := 0; j < 3; j++ {
			d1 := math.Abs(q[j] - lo[j])
			if d2 := math.Abs(q[j] - hi[j]); d2 > d1 {
				d1 = d2
			}
			s += d1 * d1
		}
		return s
	}
	return BoxMaxDistSq(q, lo, hi)
}

// BoxBoxDistSq is the specialized form of the package-level BoxBoxDistSq for
// boxes given as slices.
func (k Kernel) BoxBoxDistSq(alo, ahi, blo, bhi []float64) float64 {
	switch k.dims {
	case 2:
		var s float64
		if ahi[0] < blo[0] {
			dd := blo[0] - ahi[0]
			s = dd * dd
		} else if bhi[0] < alo[0] {
			dd := alo[0] - bhi[0]
			s = dd * dd
		}
		if ahi[1] < blo[1] {
			dd := blo[1] - ahi[1]
			s += dd * dd
		} else if bhi[1] < alo[1] {
			dd := alo[1] - bhi[1]
			s += dd * dd
		}
		return s
	case 3:
		var s float64
		for j := 0; j < 3; j++ {
			if ahi[j] < blo[j] {
				dd := blo[j] - ahi[j]
				s += dd * dd
			} else if bhi[j] < alo[j] {
				dd := alo[j] - bhi[j]
				s += dd * dd
			}
		}
		return s
	}
	return BoxBoxDistSq(alo, ahi, blo, bhi)
}

// BoxBoxDistSqAt returns the squared minimum distance between the boxes of
// slots g and h in the flat per-slot box arrays (box g occupies
// los[g*d:(g+1)*d]) — the form the cell-graph filters use, avoiding four
// slice views per pair.
func (k Kernel) BoxBoxDistSqAt(los, his []float64, g, h int32) float64 {
	switch k.dims {
	case 2:
		ig, ih := int(g)*2, int(h)*2
		var s float64
		if his[ig] < los[ih] {
			dd := los[ih] - his[ig]
			s = dd * dd
		} else if his[ih] < los[ig] {
			dd := los[ig] - his[ih]
			s = dd * dd
		}
		if his[ig+1] < los[ih+1] {
			dd := los[ih+1] - his[ig+1]
			s += dd * dd
		} else if his[ih+1] < los[ig+1] {
			dd := los[ig+1] - his[ih+1]
			s += dd * dd
		}
		return s
	case 3:
		ig, ih := int(g)*3, int(h)*3
		var s float64
		for j := 0; j < 3; j++ {
			if his[ig+j] < los[ih+j] {
				dd := los[ih+j] - his[ig+j]
				s += dd * dd
			} else if his[ih+j] < los[ig+j] {
				dd := los[ig+j] - his[ih+j]
				s += dd * dd
			}
		}
		return s
	}
	d := k.d
	return BoxBoxDistSq(
		los[int(g)*d:int(g)*d+d], his[int(g)*d:int(g)*d+d],
		los[int(h)*d:int(h)*d+d], his[int(h)*d:int(h)*d+d])
}
