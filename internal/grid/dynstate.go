package grid

import (
	"fmt"
	"slices"
)

// DynamicState is the serializable image of a Dynamic: every slot array
// verbatim (point and cell slots are the identity the downstream incremental
// caches are keyed by, so restore must preserve them exactly), plus the
// pending dirty set. The codec lives with the caller — this package defines
// only the flattened shape and its validation.
type DynamicState struct {
	Dims int
	Eps  float64

	// Point slots.
	Data    []float64 // slot-major coordinates, len = numPtSlots*Dims
	PtCell  []int32   // owning cell slot per point slot, -1 if free
	FreePts []int32

	// Cell slots. Present marks slots whose coords are retained (alive cells
	// and destroyed-but-pending ones); CellAbs rows of absent slots are zero.
	CellPresent []bool
	CellAlive   []bool
	CellAbs     []int64 // slot-major absolute lattice coords, len = numCellSlots*Dims
	CellPtsOff  []int32 // prefix offsets into CellPtsFlat, len = numCellSlots+1
	CellPtsFlat []int32
	FreeCells   []int32
	DeadPending []int32

	// Dirty lists the cell slots mutated since the last Snapshot (the set the
	// first post-restore Snapshot reports as affected).
	Dirty []int32
}

// ExportState captures the Dynamic's full mutable state. The returned value
// aliases nothing (safe to serialize after further mutations).
func (dy *Dynamic) ExportState() *DynamicState {
	d := dy.d
	numCellSlots := len(dy.cellPts)
	st := &DynamicState{
		Dims:        d,
		Eps:         dy.eps,
		Data:        append([]float64(nil), dy.data...),
		PtCell:      append([]int32(nil), dy.ptCell...),
		FreePts:     append([]int32(nil), dy.freePts...),
		CellPresent: make([]bool, numCellSlots),
		CellAlive:   append([]bool(nil), dy.cellAlive...),
		CellAbs:     make([]int64, numCellSlots*d),
		CellPtsOff:  make([]int32, numCellSlots+1),
		FreeCells:   append([]int32(nil), dy.freeCells...),
		DeadPending: append([]int32(nil), dy.deadPending...),
	}
	for g := 0; g < numCellSlots; g++ {
		if dy.cellAbs[g] != nil {
			st.CellPresent[g] = true
			copy(st.CellAbs[g*d:(g+1)*d], dy.cellAbs[g])
		}
		st.CellPtsFlat = append(st.CellPtsFlat, dy.cellPts[g]...)
		st.CellPtsOff[g+1] = int32(len(st.CellPtsFlat))
	}
	st.Dirty = make([]int32, 0, len(dy.dirty))
	for g := range dy.dirty {
		st.Dirty = append(st.Dirty, g)
	}
	slices.Sort(st.Dirty) // deterministic snapshot bytes
	return st
}

// RestoreDynamic rebuilds a Dynamic from an exported state. The restored
// structure has no previous snapshot, so its first Snapshot recomputes every
// grid-side per-cell product (bounding boxes, neighbor lists) — but it
// reports only the restored dirty set's expansion as affected, not Full, so
// downstream incremental caches restored alongside stay usable.
func RestoreDynamic(st *DynamicState) (*Dynamic, error) {
	d := st.Dims
	if d <= 0 {
		return nil, fmt.Errorf("grid: restore: dims %d", d)
	}
	if !(st.Eps > 0) {
		return nil, fmt.Errorf("grid: restore: eps %v", st.Eps)
	}
	numPtSlots := len(st.PtCell)
	numCellSlots := len(st.CellAlive)
	if len(st.Data) != numPtSlots*d {
		return nil, fmt.Errorf("grid: restore: %d coords for %d point slots of dim %d", len(st.Data), numPtSlots, d)
	}
	if len(st.CellPresent) != numCellSlots || len(st.CellAbs) != numCellSlots*d {
		return nil, fmt.Errorf("grid: restore: cell slot arrays disagree (%d alive, %d present, %d coords)", numCellSlots, len(st.CellPresent), len(st.CellAbs))
	}
	if len(st.CellPtsOff) != numCellSlots+1 || st.CellPtsOff[0] != 0 {
		return nil, fmt.Errorf("grid: restore: bad cell point offsets")
	}
	dy := NewDynamic(d, st.Eps)
	dy.data = append([]float64(nil), st.Data...)
	dy.ptCell = append([]int32(nil), st.PtCell...)
	dy.freePts = append([]int32(nil), st.FreePts...)
	dy.cellPts = make([][]int32, numCellSlots)
	dy.cellAbs = make([][]int64, numCellSlots)
	dy.cellAlive = append([]bool(nil), st.CellAlive...)
	dy.freeCells = append([]int32(nil), st.FreeCells...)
	dy.deadPending = append([]int32(nil), st.DeadPending...)

	seen := make([]bool, numPtSlots)
	for g := 0; g < numCellSlots; g++ {
		lo, hi := st.CellPtsOff[g], st.CellPtsOff[g+1]
		if lo > hi || int(hi) > len(st.CellPtsFlat) {
			return nil, fmt.Errorf("grid: restore: cell %d point extent [%d,%d) out of range", g, lo, hi)
		}
		if st.CellAlive[g] && !st.CellPresent[g] {
			return nil, fmt.Errorf("grid: restore: cell %d alive without coords", g)
		}
		if !st.CellPresent[g] {
			if lo != hi {
				return nil, fmt.Errorf("grid: restore: freed cell %d has %d points", g, hi-lo)
			}
			continue
		}
		abs := make([]int64, d)
		copy(abs, st.CellAbs[g*d:(g+1)*d])
		dy.cellAbs[g] = abs
		pts := make([]int32, hi-lo)
		copy(pts, st.CellPtsFlat[lo:hi])
		dy.cellPts[g] = pts
		if st.CellAlive[g] {
			if len(pts) == 0 {
				return nil, fmt.Errorf("grid: restore: alive cell %d is empty", g)
			}
			dy.key2cell[absKey(abs)] = int32(g)
		} else if len(pts) != 0 {
			return nil, fmt.Errorf("grid: restore: dead cell %d has %d points", g, len(pts))
		}
		for _, p := range pts {
			if p < 0 || int(p) >= numPtSlots || seen[p] {
				return nil, fmt.Errorf("grid: restore: cell %d has invalid or duplicate point slot %d", g, p)
			}
			seen[p] = true
			if st.PtCell[p] != int32(g) {
				return nil, fmt.Errorf("grid: restore: point slot %d owned by cell %d but listed in %d", p, st.PtCell[p], g)
			}
			dy.numLive++
		}
	}
	for p := 0; p < numPtSlots; p++ {
		if st.PtCell[p] >= 0 && !seen[p] {
			return nil, fmt.Errorf("grid: restore: point slot %d claims cell %d but is listed nowhere", p, st.PtCell[p])
		}
		if int(st.PtCell[p]) >= numCellSlots {
			return nil, fmt.Errorf("grid: restore: point slot %d names cell slot %d of %d", p, st.PtCell[p], numCellSlots)
		}
	}
	for _, g := range st.Dirty {
		if g < 0 || int(g) >= numCellSlots {
			return nil, fmt.Errorf("grid: restore: dirty cell slot %d out of range", g)
		}
		dy.dirty[g] = struct{}{}
	}
	for _, g := range st.DeadPending {
		if g < 0 || int(g) >= numCellSlots || st.CellAlive[g] || !st.CellPresent[g] {
			return nil, fmt.Errorf("grid: restore: dead-pending cell slot %d inconsistent", g)
		}
	}
	for _, g := range st.FreeCells {
		if g < 0 || int(g) >= numCellSlots || st.CellPresent[g] {
			return nil, fmt.Errorf("grid: restore: free cell slot %d inconsistent", g)
		}
	}
	for _, p := range st.FreePts {
		if p < 0 || int(p) >= numPtSlots || st.PtCell[p] >= 0 {
			return nil, fmt.Errorf("grid: restore: free point slot %d inconsistent", p)
		}
	}
	dy.restored = true
	return dy, nil
}
