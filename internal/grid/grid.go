// Package grid implements the cell constructions of Sections 4.1 and 4.2:
// the grid method (semisort points by cell key, store non-empty cells in a
// concurrent hash table) and the 2D box method (strips via sorting + pointer
// jumping). Both produce the same Cells representation, which is what every
// downstream phase (MarkCore, ClusterCore, ClusterBorder) consumes.
package grid

import (
	"math"
	"slices"
	"sync/atomic"

	"pdbscan/internal/geom"
	"pdbscan/internal/kdtree"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// Cells is a partition of the input points into disjoint cells of diameter at
// most eps. Points are grouped by cell in Order; cell g owns
// Order[CellStart[g]:CellStart[g+1]].
type Cells struct {
	Pts    geom.Points
	Eps    float64
	Side   float64   // cell side length, eps/sqrt(d) (grid); max strip width (box)
	Origin []float64 // min corner of the point set (grid); unused for box

	Order     []int32 // point indices grouped by cell
	CellStart []int32 // len NumCells()+1, offsets into Order
	CellOf    []int32 // cell index of each point

	// BBLo/BBHi are the actual bounding boxes of the points in each cell
	// (C*d, row-major). Used for BCP filtering, USEC line selection, and
	// kd-tree neighbor queries.
	BBLo, BBHi []float64

	// Coords are the integer grid coordinates of each cell (C*d, row-major).
	// Nil for the box construction.
	Coords []int32

	// StripCellStart, for the box construction, gives the range of cell
	// indices belonging to each strip (len numStrips+1). Nil for grid.
	StripCellStart []int32

	table *cellTable // grid only: coords -> cell index

	// Neighbors[g] lists the cells that could contain points within eps of
	// cell g (excluding g itself), in increasing index order. Filled by one
	// of the ComputeNeighbors* methods.
	Neighbors [][]int32
}

// NumCells returns the number of non-empty cells.
func (c *Cells) NumCells() int { return len(c.CellStart) - 1 }

// CellSize returns the number of points in cell g.
func (c *Cells) CellSize(g int) int {
	return int(c.CellStart[g+1] - c.CellStart[g])
}

// PointsOf returns the point indices in cell g (a view; do not mutate).
func (c *Cells) PointsOf(g int) []int32 {
	return c.Order[c.CellStart[g]:c.CellStart[g+1]]
}

// CellBox returns the actual bounding box of the points in cell g as views.
func (c *Cells) CellBox(g int) (lo, hi []float64) {
	d := c.Pts.D
	return c.BBLo[g*d : (g+1)*d], c.BBHi[g*d : (g+1)*d]
}

// GridCube returns the geometric cube of grid cell g (grid construction
// only). The quadtree of Section 5.2 is rooted at this cube so that the
// approximate depth bound holds.
func (c *Cells) GridCube(g int) (lo, hi []float64) {
	d := c.Pts.D
	lo = make([]float64, d)
	hi = make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j] = c.Origin[j] + float64(c.Coords[g*d+j])*c.Side
		hi[j] = lo[j] + c.Side
	}
	return lo, hi
}

// coordHash mixes a cell's integer coordinates into a 64-bit hash. Distinct
// coordinates may collide (the grouping and table code always confirm with a
// full coordinate comparison).
func coordHash(coords []int32) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, v := range coords {
		h = prim.Mix64(h ^ uint64(uint32(v)))
	}
	return h
}

func coordsEqual(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func coordsLess(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// BuildGrid assigns the points to grid cells of side eps/sqrt(d)
// (Section 4.1): compute each point's cell coordinates, semisort the points
// by cell key, and insert the non-empty cells into a concurrent hash table.
// Expected O(n) work. The executor ex sizes every parallel step (nil =
// default pool).
func BuildGrid(ex *parallel.Pool, pts geom.Points, eps float64) *Cells {
	n, d := pts.N, pts.D
	side := eps / math.Sqrt(float64(d))
	origin := parBoundsLo(ex, pts)

	// Integer cell coordinates and their hashes, per point.
	coords := make([]int32, n*d)
	hashes := make([]uint64, n)
	order := make([]int32, n)
	ex.For(n, func(i int) {
		row := pts.At(i)
		c := coords[i*d : (i+1)*d]
		for j, v := range row {
			c[j] = int32(math.Floor((v - origin[j]) / side))
		}
		hashes[i] = coordHash(c) & 0xffffffff
		order[i] = int32(i)
	})

	// Semisort by cell: radix sort on the 32-bit coordinate hash, then split
	// equal-hash runs by true coordinates (runs are O(1) expected length).
	prim.RadixSortPairs(ex, hashes, order, 32)
	fixCoordRuns(ex, hashes, order, coords, d)

	coordsOf := func(i int32) []int32 { return coords[int(i)*d : (int(i)+1)*d] }
	starts := prim.FilterIndex(ex, n, func(i int) bool {
		if i == 0 {
			return true
		}
		return !coordsEqual(coordsOf(order[i]), coordsOf(order[i-1]))
	})
	numCells := len(starts)
	cellStart := make([]int32, numCells+1)
	copy(cellStart, starts)
	cellStart[numCells] = int32(n)

	c := &Cells{
		Pts:       pts,
		Eps:       eps,
		Side:      side,
		Origin:    origin,
		Order:     order,
		CellStart: cellStart,
		CellOf:    make([]int32, n),
		BBLo:      make([]float64, numCells*d),
		BBHi:      make([]float64, numCells*d),
		Coords:    make([]int32, numCells*d),
	}
	c.table = newCellTable(numCells, c)

	ex.ForGrain(numCells, 1, func(g int) {
		lo, hi := int(cellStart[g]), int(cellStart[g+1])
		rep := coordsOf(order[lo])
		copy(c.Coords[g*d:(g+1)*d], rep)
		bbLo := c.BBLo[g*d : (g+1)*d]
		bbHi := c.BBHi[g*d : (g+1)*d]
		copy(bbLo, pts.At(int(order[lo])))
		copy(bbHi, pts.At(int(order[lo])))
		for i := lo; i < hi; i++ {
			p := order[i]
			c.CellOf[p] = int32(g)
			row := pts.At(int(p))
			for j, v := range row {
				if v < bbLo[j] {
					bbLo[j] = v
				}
				if v > bbHi[j] {
					bbHi[j] = v
				}
			}
		}
		c.table.insert(int32(g))
	})
	return c
}

// fixCoordRuns makes equal coordinates contiguous within runs of equal hash
// (rare 32-bit collisions), by sorting each run lexicographically by coords.
func fixCoordRuns(ex *parallel.Pool, hashes []uint64, order []int32, coords []int32, d int) {
	n := len(hashes)
	heads := prim.FilterIndex(ex, n, func(i int) bool {
		return (i == 0 || hashes[i] != hashes[i-1]) &&
			i+1 < n && hashes[i+1] == hashes[i]
	})
	co := func(i int32) []int32 { return coords[int(i)*d : (int(i)+1)*d] }
	ex.ForGrain(len(heads), 1, func(h int) {
		lo := int(heads[h])
		hi := lo + 1
		for hi < n && hashes[hi] == hashes[lo] {
			hi++
		}
		run := order[lo:hi]
		for i := 1; i < len(run); i++ {
			j := i
			for j > 0 && coordsLess(co(run[j]), co(run[j-1])) {
				run[j], run[j-1] = run[j-1], run[j]
				j--
			}
		}
	})
}

// parBoundsLo computes the coordinate-wise minimum of the points in parallel.
func parBoundsLo(ex *parallel.Pool, pts geom.Points) []float64 {
	d := pts.D
	nb := ex.NumBlocks(pts.N, 0)
	partial := make([][]float64, nb)
	ex.BlockedForIdx(pts.N, 0, func(b, lo, hi int) {
		m := make([]float64, d)
		copy(m, pts.At(lo))
		for i := lo + 1; i < hi; i++ {
			row := pts.At(i)
			for j, v := range row {
				if v < m[j] {
					m[j] = v
				}
			}
		}
		partial[b] = m
	})
	m := partial[0]
	for _, pm := range partial[1:] {
		for j, v := range pm {
			if v < m[j] {
				m[j] = v
			}
		}
	}
	return m
}

// cellTable maps cell coordinates to cell indices with the concurrent
// linear-probing scheme of internal/hashtable, but keyed on full coordinate
// vectors (compared exactly on lookup).
type cellTable struct {
	cells *Cells
	slots []int32 // cell index + 1; 0 = empty
	mask  uint64
}

func newCellTable(n int, cells *Cells) *cellTable {
	capacity := 16
	for capacity < 2*n {
		capacity <<= 1
	}
	return &cellTable{
		cells: cells,
		slots: make([]int32, capacity),
		mask:  uint64(capacity - 1),
	}
}

func (t *cellTable) insert(g int32) {
	d := t.cells.Pts.D
	co := t.cells.Coords[int(g)*d : (int(g)+1)*d]
	i := coordHash(co) & t.mask
	for {
		if atomic.LoadInt32(&t.slots[i]) == 0 &&
			atomic.CompareAndSwapInt32(&t.slots[i], 0, g+1) {
			return
		}
		i = (i + 1) & t.mask
	}
}

// lookup returns the index of the cell with the given coordinates, or -1.
func (t *cellTable) lookup(co []int32) int32 {
	d := t.cells.Pts.D
	i := coordHash(co) & t.mask
	for {
		s := atomic.LoadInt32(&t.slots[i])
		if s == 0 {
			return -1
		}
		g := s - 1
		if coordsEqual(t.cells.Coords[int(g)*d:(int(g)+1)*d], co) {
			return g
		}
		i = (i + 1) & t.mask
	}
}

// ComputeNeighborsEnum fills Neighbors by enumerating all integer coordinate
// offsets within ceil(sqrt(d)) per axis and looking each one up in the cell
// hash table — the constant-work-per-cell method the 2D algorithms use
// (Section 4.1). Only valid for the grid construction.
func (c *Cells) ComputeNeighborsEnum(ex *parallel.Pool) {
	d := c.Pts.D
	m := int(math.Ceil(math.Sqrt(float64(d))))
	numCells := c.NumCells()
	c.Neighbors = make([][]int32, numCells)
	eps2 := c.Eps * c.Eps * (1 + 1e-12)
	// Loose pruning bound for the offset recursion; the final decision uses
	// the exact cube-distance test shared with ComputeNeighborsKD so that
	// both methods return identical neighbor sets.
	pruneBound := eps2 * (1 + 1e-9)
	ex.ForGrain(numCells, 1, func(g int) {
		base := c.Coords[g*d : (g+1)*d]
		var nbrs []int32
		off := make([]int32, d)
		probe := make([]int32, d)
		gLo := make([]float64, d)
		gHi := make([]float64, d)
		hLo := make([]float64, d)
		hHi := make([]float64, d)
		c.cubeInto(g, gLo, gHi)
		var rec func(j int, dist2 float64)
		rec = func(j int, dist2 float64) {
			if dist2 > pruneBound {
				return
			}
			if j == d {
				allZero := true
				for _, o := range off {
					if o != 0 {
						allZero = false
						break
					}
				}
				if allZero {
					return
				}
				for k := 0; k < d; k++ {
					probe[k] = base[k] + off[k]
				}
				if h := c.table.lookup(probe); h >= 0 {
					c.cubeInto(int(h), hLo, hHi)
					if geom.BoxBoxDistSq(gLo, gHi, hLo, hHi) <= eps2 {
						nbrs = append(nbrs, h)
					}
				}
				return
			}
			for o := -m; o <= m; o++ {
				// Minimum axis gap between cells offset by o cells.
				gap := 0.0
				if o > 0 {
					gap = float64(o-1) * c.Side
				} else if o < 0 {
					gap = float64(-o-1) * c.Side
				}
				off[j] = int32(o)
				rec(j+1, dist2+gap*gap)
			}
			off[j] = 0
		}
		rec(0, 0)
		sortNeighbors(nbrs)
		c.Neighbors[g] = nbrs
	})
}

// ComputeNeighborsKD fills Neighbors using a k-d tree over the cell cube
// centers (Section 5.1), which avoids enumerating the exponentially many
// candidate offsets in higher dimensions. Only valid for the grid
// construction.
func (c *Cells) ComputeNeighborsKD(ex *parallel.Pool) {
	d := c.Pts.D
	numCells := c.NumCells()
	centers := geom.Points{N: numCells, D: d, Data: make([]float64, numCells*d)}
	ex.For(numCells, func(g int) {
		row := centers.Data[g*d : (g+1)*d]
		for j := 0; j < d; j++ {
			row[j] = c.Origin[j] + (float64(c.Coords[g*d+j])+0.5)*c.Side
		}
	})
	tree := kdtree.Build(ex, centers)
	// Two cells can contain points within eps iff their cubes are within
	// eps; center distance is at most cube distance + side*sqrt(d).
	radius := c.Eps + c.Side*math.Sqrt(float64(d)) + 1e-9
	eps2 := c.Eps * c.Eps * (1 + 1e-12)
	c.Neighbors = make([][]int32, numCells)
	ex.ForGrain(numCells, 1, func(g int) {
		cand := tree.RangeQuery(centers.At(g), radius, nil)
		gLo := make([]float64, d)
		gHi := make([]float64, d)
		hLo := make([]float64, d)
		hHi := make([]float64, d)
		c.cubeInto(g, gLo, gHi)
		nbrs := cand[:0]
		for _, h := range cand {
			if int(h) == g {
				continue
			}
			c.cubeInto(int(h), hLo, hHi)
			if geom.BoxBoxDistSq(gLo, gHi, hLo, hHi) <= eps2 {
				nbrs = append(nbrs, h)
			}
		}
		sortNeighbors(nbrs)
		c.Neighbors[g] = nbrs
	})
}

func (c *Cells) cubeInto(g int, lo, hi []float64) {
	d := c.Pts.D
	for j := 0; j < d; j++ {
		lo[j] = c.Origin[j] + float64(c.Coords[g*d+j])*c.Side
		hi[j] = lo[j] + c.Side
	}
}

func sortNeighbors(a []int32) {
	slices.Sort(a)
}
