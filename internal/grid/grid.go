// Package grid implements the cell constructions of Sections 4.1 and 4.2:
// the grid method (semisort points by cell key, store non-empty cells in a
// concurrent hash table) and the 2D box method (strips via sorting + pointer
// jumping). Both produce the same Cells representation, which is what every
// downstream phase (MarkCore, ClusterCore, ClusterBorder) consumes.
package grid

import (
	"math"
	"slices"
	"sync/atomic"

	"pdbscan/internal/geom"
	"pdbscan/internal/kdtree"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// Cells is a partition of the input points into disjoint cells of diameter at
// most eps. Points are grouped by cell in Order; cell g owns
// Order[CellStart[g]:CellStart[g+1]].
type Cells struct {
	Pts  geom.Points
	Eps  float64
	Side float64 // cell side length, eps/sqrt(d) (grid); max strip width (box)

	// Anchor is the absolute side-grid coordinate that relative coordinate 0
	// maps to, per dimension (grid construction; nil for box). Grid cells are
	// anchored to the absolute lattice {[k*Side, (k+1)*Side)}: a point with
	// coordinate v lives at absolute cell coordinate floor(v/Side), and
	// Anchor is the coordinate-wise minimum over the point set. Anchoring to
	// the absolute lattice (rather than the data's min corner) makes the
	// partition and the cube geometry canonical: two builds over overlapping
	// point sets place shared points in the same absolute cells, which is
	// what lets the streaming structure (Dynamic) reuse per-cell state across
	// mutations and still match a from-scratch build exactly.
	Anchor []int64

	Order     []int32 // point indices grouped by cell
	CellStart []int32 // len NumCells()+1, offsets into Order
	CellOf    []int32 // cell index of each point; -1 for points in no cell (Dynamic's freed slots)

	// BBLo/BBHi are the actual bounding boxes of the points in each cell
	// (C*d, row-major). Used for BCP filtering, USEC line selection, and
	// kd-tree neighbor queries.
	BBLo, BBHi []float64

	// Coords are the integer grid coordinates of each cell (C*d, row-major).
	// Nil for the box construction.
	Coords []int32

	// StripCellStart, for the box construction, gives the range of cell
	// indices belonging to each strip (len numStrips+1). Nil for grid.
	StripCellStart []int32

	table *cellTable // grid only: coords -> cell index

	// Neighbors[g] lists the cells that could contain points within eps of
	// cell g (excluding g itself), in increasing index order. Filled by one
	// of the ComputeNeighbors* methods.
	Neighbors [][]int32

	// Payload is the cell-major copy of the point coordinates: payload row r
	// holds Pts row Order[r], so cell g owns the contiguous payload row range
	// [CellStart[g], CellStart[g+1]) — the same layout internal/cellstore
	// writes to disk. The batch constructions (BuildGrid, BuildBox2D) fill it
	// eagerly; Dynamic.Snapshot leaves it nil and callers that want the
	// contiguous kernels call EnsurePayload. Nil means "not materialized":
	// the clustering pipeline falls back to indirecting through Order.
	Payload []float64

	// Rows is the identity permutation over payload rows ([0, len(Order)));
	// Rows[CellStart[g]:CellStart[g+1]] is cell g's point list in payload-row
	// space, ready to alias wherever the indirect path would use
	// Order[CellStart[g]:CellStart[g+1]]. Built alongside Payload.
	Rows []int32
}

// NumCells returns the number of non-empty cells.
func (c *Cells) NumCells() int { return len(c.CellStart) - 1 }

// CellSize returns the number of points in cell g.
func (c *Cells) CellSize(g int) int {
	return int(c.CellStart[g+1] - c.CellStart[g])
}

// PointsOf returns the point indices in cell g (a view; do not mutate).
func (c *Cells) PointsOf(g int) []int32 {
	return c.Order[c.CellStart[g]:c.CellStart[g+1]]
}

// RowsOf returns cell g's point list in payload-row space (a view; do not
// mutate). Only valid after EnsurePayload.
func (c *Cells) RowsOf(g int) []int32 {
	return c.Rows[c.CellStart[g]:c.CellStart[g+1]]
}

// PayloadPts views the cell-major payload as a point store: point r of the
// view is Pts row Order[r]. Only valid after EnsurePayload.
func (c *Cells) PayloadPts() geom.Points {
	return geom.Points{N: len(c.Order), D: c.Pts.D, Data: c.Payload}
}

// EnsurePayload materializes the cell-major payload (and the Rows identity)
// if it is not already present. Idempotent; not safe to call concurrently
// with itself on the same Cells — the construction paths and the streaming
// run loop call it from a single goroutine before handing the structure to
// parallel phases.
func (c *Cells) EnsurePayload(ex *parallel.Pool) {
	if c.Payload != nil {
		return
	}
	n, d := len(c.Order), c.Pts.D
	payload := make([]float64, n*d)
	rows := make([]int32, n)
	ex.For(n, func(r int) {
		copy(payload[r*d:(r+1)*d], c.Pts.At(int(c.Order[r])))
		rows[r] = int32(r)
	})
	c.Rows = rows
	c.Payload = payload
}

// CellBox returns the actual bounding box of the points in cell g as views.
func (c *Cells) CellBox(g int) (lo, hi []float64) {
	d := c.Pts.D
	return c.BBLo[g*d : (g+1)*d], c.BBHi[g*d : (g+1)*d]
}

// GridCube returns the geometric cube of grid cell g (grid construction
// only). The quadtree of Section 5.2 is rooted at this cube so that the
// approximate depth bound holds. The corners are computed from the absolute
// lattice coordinate so that every build places the cube at bit-identical
// positions regardless of anchor.
func (c *Cells) GridCube(g int) (lo, hi []float64) {
	d := c.Pts.D
	lo = make([]float64, d)
	hi = make([]float64, d)
	c.cubeInto(g, lo, hi)
	return lo, hi
}

// AbsCoord returns the absolute lattice coordinate of cell g in dimension j.
func (c *Cells) AbsCoord(g, j int) int64 {
	return c.Anchor[j] + int64(c.Coords[g*c.Pts.D+j])
}

// coordHash mixes a cell's integer coordinates into a 64-bit hash. Distinct
// coordinates may collide (the grouping and table code always confirm with a
// full coordinate comparison).
func coordHash(coords []int32) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, v := range coords {
		h = prim.Mix64(h ^ uint64(uint32(v)))
	}
	return h
}

func coordsEqual(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func coordsLess(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// maxAbsCoord bounds the absolute lattice coordinates so the float64 -> int64
// conversion in CellCoord never leaves the representable range (degenerate
// eps/coordinate combinations saturate instead of wrapping).
const maxAbsCoord = int64(1) << 60

// MaxExactCells is the largest |v|/side ratio for which floor(v/side) is an
// exact integer in float64 (with margin for the division's rounding). The
// public entry points reject coordinates beyond it: past 2^53 the lattice
// coordinate quantizes in steps of several cells and the "cell diameter <=
// eps" invariant would silently break.
const MaxExactCells = float64(1 << 52)

// CellCoord returns the absolute side-grid lattice coordinate of value v:
// floor(v/side), saturated to +-maxAbsCoord. Every construction path (batch
// BuildGrid and the streaming Dynamic) uses this one function, so a point is
// assigned to the same absolute cell no matter which path placed it. Callers
// validate |v|/side < MaxExactCells up front; the saturation is only a
// backstop against degenerate inputs reaching the int64 conversion.
func CellCoord(v, side float64) int64 {
	f := math.Floor(v / side)
	if f >= float64(maxAbsCoord) {
		return maxAbsCoord
	}
	if f <= -float64(maxAbsCoord) {
		return -maxAbsCoord
	}
	return int64(f)
}

// BuildGrid assigns the points to grid cells of side eps/sqrt(d)
// (Section 4.1): compute each point's cell coordinates, semisort the points
// by cell key, and insert the non-empty cells into a concurrent hash table.
// Expected O(n) work. The executor ex sizes every parallel step (nil =
// default pool).
//
// Preconditions (enforced with clear errors by the public pdbscan entry
// points): coordinates are finite, |v|/side < MaxExactCells, and the
// per-dimension spread is under 2^31 cells (relative coordinates are int32).
func BuildGrid(ex *parallel.Pool, pts geom.Points, eps float64) *Cells {
	n, d := pts.N, pts.D
	side := eps / math.Sqrt(float64(d))

	// Coordinate-wise minimum lattice coordinate — the anchor that relative
	// int32 coordinates are stored against — via a blocked reduction
	// (computing CellCoord twice per point beats materializing an n*d int64
	// buffer the size of the input itself).
	anchor := parCellMin(ex, pts, side)

	// Relative integer cell coordinates and their hashes, per point.
	coords := make([]int32, n*d)
	hashes := make([]uint64, n)
	order := make([]int32, n)
	ex.For(n, func(i int) {
		row := pts.At(i)
		c := coords[i*d : (i+1)*d]
		for j, v := range row {
			c[j] = int32(CellCoord(v, side) - anchor[j])
		}
		hashes[i] = coordHash(c) & 0xffffffff
		order[i] = int32(i)
	})

	// Semisort by cell: radix sort on the 32-bit coordinate hash, then split
	// equal-hash runs by true coordinates (runs are O(1) expected length).
	prim.RadixSortPairs(ex, hashes, order, 32)
	fixCoordRuns(ex, hashes, order, coords, d)

	coordsOf := func(i int32) []int32 { return coords[int(i)*d : (int(i)+1)*d] }
	starts := prim.FilterIndex(ex, n, func(i int) bool {
		if i == 0 {
			return true
		}
		return !coordsEqual(coordsOf(order[i]), coordsOf(order[i-1]))
	})
	numCells := len(starts)
	cellStart := make([]int32, numCells+1)
	copy(cellStart, starts)
	cellStart[numCells] = int32(n)

	c := &Cells{
		Pts:       pts,
		Eps:       eps,
		Side:      side,
		Anchor:    anchor,
		Order:     order,
		CellStart: cellStart,
		CellOf:    make([]int32, n),
		BBLo:      make([]float64, numCells*d),
		BBHi:      make([]float64, numCells*d),
		Coords:    make([]int32, numCells*d),
	}
	c.table = newCellTable(numCells, c)

	ex.ForGrain(numCells, 1, func(g int) {
		lo, hi := int(cellStart[g]), int(cellStart[g+1])
		rep := coordsOf(order[lo])
		copy(c.Coords[g*d:(g+1)*d], rep)
		bbLo := c.BBLo[g*d : (g+1)*d]
		bbHi := c.BBHi[g*d : (g+1)*d]
		copy(bbLo, pts.At(int(order[lo])))
		copy(bbHi, pts.At(int(order[lo])))
		for i := lo; i < hi; i++ {
			p := order[i]
			c.CellOf[p] = int32(g)
			row := pts.At(int(p))
			for j, v := range row {
				if v < bbLo[j] {
					bbLo[j] = v
				}
				if v > bbHi[j] {
					bbHi[j] = v
				}
			}
		}
		c.table.insert(int32(g))
	})
	c.EnsurePayload(ex)
	return c
}

// BuildCellMajor constructs Cells directly from a point store that is
// already laid out cell-major: cell g owns rows [cellStart[g],
// cellStart[g+1]) of pts, and abs holds each cell's absolute lattice
// coordinates (numCells*d, row-major). This is the out-of-core window path —
// internal/cellstore maps exactly this layout, so the window needs no
// re-gather: Order and Rows are the identity and Payload aliases pts.Data
// (zero copy). All cells must be non-empty and the relative coordinate
// spread must fit int32, as for BuildGrid. Neighbors are left to the
// ComputeNeighbors* methods.
func BuildCellMajor(ex *parallel.Pool, pts geom.Points, eps float64, cellStart []int32, abs []int64) *Cells {
	n, d := pts.N, pts.D
	numCells := len(cellStart) - 1
	side := eps / math.Sqrt(float64(d))

	anchor := make([]int64, d)
	if numCells > 0 {
		copy(anchor, abs[:d])
		for g := 1; g < numCells; g++ {
			for j := 0; j < d; j++ {
				if a := abs[g*d+j]; a < anchor[j] {
					anchor[j] = a
				}
			}
		}
	}

	rows := make([]int32, n)
	c := &Cells{
		Pts:       pts,
		Eps:       eps,
		Side:      side,
		Anchor:    anchor,
		Order:     rows,
		CellStart: cellStart,
		CellOf:    make([]int32, n),
		BBLo:      make([]float64, numCells*d),
		BBHi:      make([]float64, numCells*d),
		Coords:    make([]int32, numCells*d),
		Payload:   pts.Data,
		Rows:      rows,
	}
	ex.For(n, func(i int) { rows[i] = int32(i) })
	c.table = newCellTable(numCells, c)

	ex.ForGrain(numCells, 1, func(g int) {
		lo, hi := int(cellStart[g]), int(cellStart[g+1])
		co := c.Coords[g*d : (g+1)*d]
		for j := 0; j < d; j++ {
			co[j] = int32(abs[g*d+j] - anchor[j])
		}
		bbLo := c.BBLo[g*d : (g+1)*d]
		bbHi := c.BBHi[g*d : (g+1)*d]
		copy(bbLo, pts.At(lo))
		copy(bbHi, pts.At(lo))
		for i := lo; i < hi; i++ {
			c.CellOf[i] = int32(g)
			row := pts.At(i)
			for j, v := range row {
				if v < bbLo[j] {
					bbLo[j] = v
				}
				if v > bbHi[j] {
					bbHi[j] = v
				}
			}
		}
		c.table.insert(int32(g))
	})
	return c
}

// fixCoordRuns makes equal coordinates contiguous within runs of equal hash
// (rare 32-bit collisions), by sorting each run lexicographically by coords.
func fixCoordRuns(ex *parallel.Pool, hashes []uint64, order []int32, coords []int32, d int) {
	n := len(hashes)
	heads := prim.FilterIndex(ex, n, func(i int) bool {
		return (i == 0 || hashes[i] != hashes[i-1]) &&
			i+1 < n && hashes[i+1] == hashes[i]
	})
	co := func(i int32) []int32 { return coords[int(i)*d : (int(i)+1)*d] }
	ex.ForGrain(len(heads), 1, func(h int) {
		lo := int(heads[h])
		hi := lo + 1
		for hi < n && hashes[hi] == hashes[lo] {
			hi++
		}
		run := order[lo:hi]
		for i := 1; i < len(run); i++ {
			j := i
			for j > 0 && coordsLess(co(run[j]), co(run[j-1])) {
				run[j], run[j-1] = run[j-1], run[j]
				j--
			}
		}
	})
}

// parCellMin computes the coordinate-wise minimum lattice coordinate of the
// points in parallel.
func parCellMin(ex *parallel.Pool, pts geom.Points, side float64) []int64 {
	d := pts.D
	nb := ex.NumBlocks(pts.N, 0)
	partial := make([][]int64, nb)
	ex.BlockedForIdx(pts.N, 0, func(b, lo, hi int) {
		m := make([]int64, d)
		for j, v := range pts.At(lo) {
			m[j] = CellCoord(v, side)
		}
		for i := lo + 1; i < hi; i++ {
			for j, v := range pts.At(i) {
				if a := CellCoord(v, side); a < m[j] {
					m[j] = a
				}
			}
		}
		partial[b] = m
	})
	m := partial[0]
	for _, pm := range partial[1:] {
		for j, v := range pm {
			if v < m[j] {
				m[j] = v
			}
		}
	}
	return m
}

// cellTable maps cell coordinates to cell indices with the concurrent
// linear-probing scheme of internal/hashtable, but keyed on full coordinate
// vectors (compared exactly on lookup).
type cellTable struct {
	cells *Cells
	slots []int32 // cell index + 1; 0 = empty
	mask  uint64
}

func newCellTable(n int, cells *Cells) *cellTable {
	capacity := 16
	for capacity < 2*n {
		capacity <<= 1
	}
	return &cellTable{
		cells: cells,
		slots: make([]int32, capacity),
		mask:  uint64(capacity - 1),
	}
}

func (t *cellTable) insert(g int32) {
	d := t.cells.Pts.D
	co := t.cells.Coords[int(g)*d : (int(g)+1)*d]
	i := coordHash(co) & t.mask
	for {
		if atomic.LoadInt32(&t.slots[i]) == 0 &&
			atomic.CompareAndSwapInt32(&t.slots[i], 0, g+1) {
			return
		}
		i = (i + 1) & t.mask
	}
}

// lookup returns the index of the cell with the given coordinates, or -1.
func (t *cellTable) lookup(co []int32) int32 {
	d := t.cells.Pts.D
	i := coordHash(co) & t.mask
	for {
		s := atomic.LoadInt32(&t.slots[i])
		if s == 0 {
			return -1
		}
		g := s - 1
		if coordsEqual(t.cells.Coords[int(g)*d:(int(g)+1)*d], co) {
			return g
		}
		i = (i + 1) & t.mask
	}
}

// enumNeighborsOf returns the cells that could contain points within eps of
// the grid cube at absolute lattice coordinates abs, by enumerating all
// integer coordinate offsets within ceil(sqrt(d)) per axis and looking each
// one up in the cell hash table. exclude (a cell index, or -1) is omitted
// from the result. The cube at abs need not be an existing cell — the
// streaming structure uses this to find the eps-neighborhood of a destroyed
// cell.
func (c *Cells) enumNeighborsOf(abs []int64, exclude int32) []int32 {
	d := c.Pts.D
	m := int64(math.Ceil(math.Sqrt(float64(d))))
	eps2 := c.Eps * c.Eps * (1 + 1e-12)
	// Loose pruning bound for the offset recursion; the final decision uses
	// the exact cube-distance test shared with the k-d path so that both
	// methods return identical neighbor sets.
	pruneBound := eps2 * (1 + 1e-9)
	var nbrs []int32
	k := geom.NewKernel(c.Pts)
	probe := make([]int32, d)
	buf := make([]float64, 4*d)
	gLo, gHi, hLo, hHi := buf[:d], buf[d:2*d], buf[2*d:3*d], buf[3*d:]
	absCubeInto(abs, c.Side, gLo, gHi)
	var rec func(j int, dist2 float64)
	rec = func(j int, dist2 float64) {
		if dist2 > pruneBound {
			return
		}
		if j == d {
			// Self-exclusion is exclude's job alone (exclude = the queried
			// cell for alive cells, -1 for vacated coordinates — where a
			// cell reborn at the same coordinates IS a valid answer, and
			// the k-d path already returns it).
			if h := c.table.lookup(probe); h >= 0 && h != exclude {
				c.cubeInto(int(h), hLo, hHi)
				if k.BoxBoxDistSq(gLo, gHi, hLo, hHi) <= eps2 {
					nbrs = append(nbrs, h)
				}
			}
			return
		}
		for o := -m; o <= m; o++ {
			// Minimum axis gap between cells offset by o cells.
			gap := 0.0
			if o > 0 {
				gap = float64(o-1) * c.Side
			} else if o < 0 {
				gap = float64(-o-1) * c.Side
			}
			// Probe coordinates are relative to the anchor; cells only exist
			// at representable relative positions.
			rel := abs[j] + o - c.Anchor[j]
			if rel < math.MinInt32 || rel > math.MaxInt32 {
				continue
			}
			probe[j] = int32(rel)
			rec(j+1, dist2+gap*gap)
		}
	}
	rec(0, 0)
	sortNeighbors(nbrs)
	return nbrs
}

// ComputeNeighborsEnum fills Neighbors by offset enumeration — the
// constant-work-per-cell method the 2D algorithms use (Section 4.1). Only
// valid for the grid construction.
func (c *Cells) ComputeNeighborsEnum(ex *parallel.Pool) {
	d := c.Pts.D
	numCells := c.NumCells()
	c.Neighbors = make([][]int32, numCells)
	ex.ForGrain(numCells, 1, func(g int) {
		abs := make([]int64, d)
		for j := 0; j < d; j++ {
			abs[j] = c.AbsCoord(g, j)
		}
		c.Neighbors[g] = c.enumNeighborsOf(abs, int32(g))
	})
}

// cellCenterTree builds a k-d tree over the cube centers of all cells, for
// neighbor queries in higher dimensions (Section 5.1).
func (c *Cells) cellCenterTree(ex *parallel.Pool) (*kdtree.Tree, geom.Points) {
	d := c.Pts.D
	numCells := c.NumCells()
	centers := geom.Points{N: numCells, D: d, Data: make([]float64, numCells*d)}
	ex.For(numCells, func(g int) {
		row := centers.Data[g*d : (g+1)*d]
		for j := 0; j < d; j++ {
			row[j] = (float64(c.AbsCoord(g, j)) + 0.5) * c.Side
		}
	})
	return kdtree.Build(ex, centers), centers
}

// kdNeighborsOf is enumNeighborsOf answered with a k-d tree over cell cube
// centers instead of offset enumeration (identical results). slotOf maps a
// tree point index back to its cell slot (nil = identity, when the tree
// spans every cell).
func (c *Cells) kdNeighborsOf(tree *kdtree.Tree, slotOf []int32, abs []int64, exclude int32) []int32 {
	d := c.Pts.D
	// Two cells can contain points within eps iff their cubes are within
	// eps; center distance is at most cube distance + side*sqrt(d).
	radius := c.Eps + c.Side*math.Sqrt(float64(d)) + 1e-9
	eps2 := c.Eps * c.Eps * (1 + 1e-12)
	k := geom.NewKernel(c.Pts)
	q := make([]float64, d)
	gLo := make([]float64, d)
	gHi := make([]float64, d)
	hLo := make([]float64, d)
	hHi := make([]float64, d)
	for j := 0; j < d; j++ {
		q[j] = (float64(abs[j]) + 0.5) * c.Side
	}
	absCubeInto(abs, c.Side, gLo, gHi)
	cand := tree.RangeQuery(q, radius, nil)
	nbrs := cand[:0]
	for _, h := range cand {
		if slotOf != nil {
			h = slotOf[h]
		}
		if h == exclude {
			continue
		}
		c.cubeInto(int(h), hLo, hHi)
		if k.BoxBoxDistSq(gLo, gHi, hLo, hHi) <= eps2 {
			nbrs = append(nbrs, h)
		}
	}
	sortNeighbors(nbrs)
	return nbrs
}

// ComputeNeighborsKD fills Neighbors using a k-d tree over the cell cube
// centers (Section 5.1), which avoids enumerating the exponentially many
// candidate offsets in higher dimensions. Only valid for the grid
// construction.
func (c *Cells) ComputeNeighborsKD(ex *parallel.Pool) {
	d := c.Pts.D
	numCells := c.NumCells()
	tree, _ := c.cellCenterTree(ex)
	c.Neighbors = make([][]int32, numCells)
	ex.ForGrain(numCells, 1, func(g int) {
		abs := make([]int64, d)
		for j := 0; j < d; j++ {
			abs[j] = c.AbsCoord(g, j)
		}
		c.Neighbors[g] = c.kdNeighborsOf(tree, nil, abs, int32(g))
	})
}

// absCubeInto writes the cube of the cell at absolute lattice coordinates
// abs. Computed from the absolute coordinate so every build (and the
// streaming structure, whatever its anchor) places cubes at bit-identical
// positions.
func absCubeInto(abs []int64, side float64, lo, hi []float64) {
	for j, a := range abs {
		lo[j] = float64(a) * side
		hi[j] = float64(a+1) * side
	}
}

func (c *Cells) cubeInto(g int, lo, hi []float64) {
	d := c.Pts.D
	for j := 0; j < d; j++ {
		a := c.Anchor[j] + int64(c.Coords[g*d+j])
		lo[j] = float64(a) * c.Side
		hi[j] = float64(a+1) * c.Side
	}
}

func sortNeighbors(a []int32) {
	slices.Sort(a)
}
