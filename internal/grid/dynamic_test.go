package grid

import (
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
)

// snapshotMatchesBuildGrid checks that a Dynamic snapshot partitions its live
// points into exactly the cells BuildGrid produces for the same point set:
// same groups of points, same absolute lattice coordinates, same bounding
// boxes, and equivalent neighbor relations.
func snapshotMatchesBuildGrid(t *testing.T, dy *Dynamic, live []int32) {
	t.Helper()
	snap, _, err := dy.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		return
	}
	d := dy.Dims()
	data := make([]float64, 0, len(live)*d)
	for _, p := range live {
		data = append(data, dy.PointAt(p)...)
	}
	ref := BuildGrid(nil, geom.Points{N: len(live), D: d, Data: data}, dy.Eps())
	if d <= 3 {
		ref.ComputeNeighborsEnum(nil)
	} else {
		ref.ComputeNeighborsKD(nil)
	}

	// Map each live point to its reference cell via absolute coordinates and
	// check the snapshot agrees cell-for-cell.
	type cellInfo struct {
		pts  map[int32]bool // snapshot point slots
		refG int32
	}
	byKey := map[string]*cellInfo{}
	for i, p := range live {
		g := ref.CellOf[i]
		abs := make([]int64, d)
		for j := 0; j < d; j++ {
			abs[j] = ref.Anchor[j] + int64(ref.Coords[int(g)*d+j])
		}
		k := absKey(abs)
		ci := byKey[k]
		if ci == nil {
			ci = &cellInfo{pts: map[int32]bool{}, refG: g}
			byKey[k] = ci
		}
		ci.pts[p] = true
	}
	seen := 0
	for g := 0; g < snap.NumCells(); g++ {
		if snap.CellSize(g) == 0 {
			continue
		}
		seen++
		abs := make([]int64, d)
		for j := 0; j < d; j++ {
			abs[j] = snap.AbsCoord(g, j)
		}
		ci := byKey[absKey(abs)]
		if ci == nil {
			t.Fatalf("snapshot cell %d at %v has no reference cell", g, abs)
		}
		if snap.CellSize(g) != len(ci.pts) {
			t.Fatalf("cell %d: %d points, reference has %d", g, snap.CellSize(g), len(ci.pts))
		}
		for _, p := range snap.PointsOf(g) {
			if !ci.pts[p] {
				t.Fatalf("cell %d contains unexpected point slot %d", g, p)
			}
		}
		lo, hi := snap.CellBox(g)
		rLo, rHi := ref.CellBox(int(ci.refG))
		for j := 0; j < d; j++ {
			if lo[j] != rLo[j] || hi[j] != rHi[j] {
				t.Fatalf("cell %d: bbox (%v,%v) != reference (%v,%v)", g, lo, hi, rLo, rHi)
			}
		}
		// Neighbor sets must agree as absolute-coordinate sets.
		refNbrs := map[string]bool{}
		for _, h := range ref.Neighbors[ci.refG] {
			habs := make([]int64, d)
			for j := 0; j < d; j++ {
				habs[j] = ref.Anchor[j] + int64(ref.Coords[int(h)*d+j])
			}
			refNbrs[absKey(habs)] = true
		}
		if len(snap.Neighbors[g]) != len(refNbrs) {
			t.Fatalf("cell %d: %d neighbors, reference has %d", g, len(snap.Neighbors[g]), len(refNbrs))
		}
		for _, h := range snap.Neighbors[g] {
			habs := make([]int64, d)
			for j := 0; j < d; j++ {
				habs[j] = snap.AbsCoord(int(h), j)
			}
			if !refNbrs[absKey(habs)] {
				t.Fatalf("cell %d: neighbor %d not in reference neighbor set", g, h)
			}
		}
	}
	if seen != ref.NumCells() {
		t.Fatalf("snapshot has %d non-empty cells, reference %d", seen, ref.NumCells())
	}
}

func TestDynamicMatchesBuildGridUnderMutations(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(10 + d)))
		dy := NewDynamic(d, 2.5)
		var live []int32
		randRow := func() []float64 {
			row := make([]float64, d)
			for j := range row {
				row[j] = rng.Float64()*30 - 10
			}
			return row
		}
		for i := 0; i < 120; i++ {
			live = append(live, dy.Insert(randRow()))
		}
		snapshotMatchesBuildGrid(t, dy, live)
		for step := 0; step < 10; step++ {
			for i := 0; i < 15; i++ {
				switch {
				case len(live) > 0 && rng.Intn(2) == 0:
					k := rng.Intn(len(live))
					dy.Remove(live[k])
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				default:
					live = append(live, dy.Insert(randRow()))
				}
			}
			snapshotMatchesBuildGrid(t, dy, live)
		}
	}
}

func TestDynamicDirtySetIsLocal(t *testing.T) {
	dy := NewDynamic(2, 1.0)
	// Two well-separated blobs of points.
	var left, right []int32
	for i := 0; i < 50; i++ {
		left = append(left, dy.Insert([]float64{float64(i%5) * 0.2, float64(i/5) * 0.1}))
		right = append(right, dy.Insert([]float64{100 + float64(i%5)*0.2, float64(i/5) * 0.1}))
	}
	snap1, info1, err := dy.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info1.Full {
		t.Fatal("first snapshot should be Full")
	}

	// No mutations: same snapshot, nothing affected.
	snap1b, info1b, _ := dy.Snapshot(nil)
	if snap1b != snap1 {
		t.Fatal("unmutated snapshot not reused")
	}
	if info1b.NumAffected != 0 || info1b.Full {
		t.Fatalf("unmutated snapshot reports dirt: %+v", info1b)
	}

	// Mutate the right blob only: the left blob's cells must be unaffected
	// and keep their neighbor list slices (pointer identity).
	leftCells := map[int32][]int32{}
	for _, p := range left {
		g := snap1.CellOf[p]
		leftCells[g] = snap1.Neighbors[g]
	}
	dy.Remove(right[0])
	dy.Insert([]float64{101, 3})
	snap2, info2, err := dy.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Full {
		t.Fatal("incremental snapshot reported Full")
	}
	if info2.NumAffected == 0 {
		t.Fatal("mutations reported no affected cells")
	}
	for g, nbrs := range leftCells {
		if info2.Affected[g] {
			t.Fatalf("left-blob cell %d affected by right-blob mutations", g)
		}
		if len(snap2.Neighbors[g]) != len(nbrs) || (len(nbrs) > 0 && &snap2.Neighbors[g][0] != &nbrs[0]) {
			t.Fatalf("left-blob cell %d neighbor list not reused", g)
		}
	}
	// Every affected cell must be on the mutated (right) side.
	for g := 0; g < snap2.NumCells(); g++ {
		if info2.Affected[g] && snap2.CellSize(g) > 0 && snap2.BBLo[g*2] < 50 {
			t.Fatalf("left-side cell %d affected by right-blob mutations", g)
		}
	}
}

func TestDynamicCellSlotReuse(t *testing.T) {
	dy := NewDynamic(2, 1.0)
	p := dy.Insert([]float64{5, 5})
	if _, _, err := dy.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	dy.Remove(p)
	if _, _, err := dy.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	// The freed cell slot is reused by the next cell, wherever it is.
	q := dy.Insert([]float64{42, -7})
	snap, _, err := dy.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.CellOf[q]; got != 0 {
		t.Fatalf("cell slot not reused: new point in cell %d", got)
	}
	if dy.NumPoints() != 1 {
		t.Fatalf("NumPoints = %d, want 1", dy.NumPoints())
	}
	// Point slot reused too.
	if q != p {
		t.Fatalf("point slot not reused: %d vs %d", q, p)
	}
}

func TestDynamicEmpty(t *testing.T) {
	dy := NewDynamic(3, 2.0)
	snap, info, err := dy.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumCells() != 0 || !info.Full {
		t.Fatalf("empty snapshot: cells=%d full=%v", snap.NumCells(), info.Full)
	}
	p := dy.Insert([]float64{1, 2, 3})
	dy.Remove(p)
	snap, _, err = dy.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < snap.NumCells(); g++ {
		if snap.CellSize(g) != 0 {
			t.Fatalf("cell %d not empty after removing all points", g)
		}
	}
}
