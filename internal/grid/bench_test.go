package grid

import (
	"testing"
)

func BenchmarkBuildGrid2D(b *testing.B) {
	pts := randomPoints(100000, 2, 1000, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildGrid(nil, pts, 25)
	}
}

func BenchmarkBuildGrid5D(b *testing.B) {
	pts := randomPoints(100000, 5, 1000, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildGrid(nil, pts, 100)
	}
}

func BenchmarkBuildBox2D(b *testing.B) {
	pts := randomPoints(100000, 2, 1000, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildBox2D(nil, pts, 25)
	}
}

func BenchmarkNeighborsEnum2D(b *testing.B) {
	pts := randomPoints(100000, 2, 1000, 42)
	c := BuildGrid(nil, pts, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ComputeNeighborsEnum(nil)
	}
}

func BenchmarkNeighborsKD5D(b *testing.B) {
	pts := randomPoints(100000, 5, 1000, 42)
	c := BuildGrid(nil, pts, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ComputeNeighborsKD(nil)
	}
}
