package grid

import (
	"math"
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
)

func randomPoints(n, d int, scale float64, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	for i := range data {
		data[i] = rng.Float64() * scale
	}
	return geom.Points{N: n, D: d, Data: data}
}

// checkPartition verifies the cell structure invariants shared by both
// constructions.
func checkPartition(t *testing.T, c *Cells) {
	t.Helper()
	n := c.Pts.N
	if len(c.Order) != n || len(c.CellOf) != n {
		t.Fatalf("order/cellOf length mismatch")
	}
	seen := make([]bool, n)
	for g := 0; g < c.NumCells(); g++ {
		for _, p := range c.PointsOf(g) {
			if seen[p] {
				t.Fatalf("point %d in two cells", p)
			}
			seen[p] = true
			if c.CellOf[p] != int32(g) {
				t.Fatalf("CellOf[%d] = %d, want %d", p, c.CellOf[p], g)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d in no cell", i)
		}
	}
	// Cell diameter must be at most eps (the defining cell property).
	for g := 0; g < c.NumCells(); g++ {
		lo, hi := c.CellBox(g)
		var diag float64
		for j := range lo {
			d := hi[j] - lo[j]
			diag += d * d
		}
		if diag > c.Eps*c.Eps*(1+1e-9) {
			t.Fatalf("cell %d diameter %v exceeds eps %v", g, math.Sqrt(diag), c.Eps)
		}
		// Bounding boxes must actually bound the points.
		for _, p := range c.PointsOf(g) {
			row := c.Pts.At(int(p))
			for j, v := range row {
				if v < lo[j]-1e-12 || v > hi[j]+1e-12 {
					t.Fatalf("cell %d: point %d outside bbox", g, p)
				}
			}
		}
	}
}

// checkNeighbors verifies that Neighbors is a superset of the pairs of cells
// that contain points within eps of each other, and excludes self.
func checkNeighbors(t *testing.T, c *Cells) {
	t.Helper()
	eps2 := c.Eps * c.Eps
	isNbr := make([]map[int32]bool, c.NumCells())
	for g := range isNbr {
		isNbr[g] = map[int32]bool{}
		for _, h := range c.Neighbors[g] {
			if int(h) == g {
				t.Fatalf("cell %d lists itself as neighbor", g)
			}
			isNbr[g][h] = true
		}
	}
	// Brute force point pairs (test sizes are small).
	for i := 0; i < c.Pts.N; i++ {
		for j := i + 1; j < c.Pts.N; j++ {
			if geom.DistSq(c.Pts.At(i), c.Pts.At(j)) <= eps2 {
				gi, gj := c.CellOf[i], c.CellOf[j]
				if gi == gj {
					continue
				}
				if !isNbr[gi][gj] || !isNbr[gj][gi] {
					t.Fatalf("cells %d and %d have points within eps but are not neighbors", gi, gj)
				}
			}
		}
	}
	// Symmetry.
	for g := range isNbr {
		for h := range isNbr[g] {
			if !isNbr[h][int32(g)] {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", g, h)
			}
		}
	}
}

func TestBuildGrid2D(t *testing.T) {
	pts := randomPoints(2000, 2, 100, 1)
	c := BuildGrid(nil, pts, 5.0)
	checkPartition(t, c)
	if math.Abs(c.Side-5.0/math.Sqrt2) > 1e-12 {
		t.Fatalf("side = %v", c.Side)
	}
	c.ComputeNeighborsEnum(nil)
	checkNeighbors(t, c)
}

func TestBuildGridHighDim(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		pts := randomPoints(1000, d, 50, int64(d))
		c := BuildGrid(nil, pts, 12.0)
		checkPartition(t, c)
		c.ComputeNeighborsKD(nil)
		checkNeighbors(t, c)
	}
}

func TestGridEnumAndKDAgree(t *testing.T) {
	pts := randomPoints(1500, 3, 60, 7)
	c1 := BuildGrid(nil, pts, 8.0)
	c1.ComputeNeighborsEnum(nil)
	c2 := BuildGrid(nil, pts, 8.0)
	c2.ComputeNeighborsKD(nil)
	if c1.NumCells() != c2.NumCells() {
		t.Fatalf("cell counts differ")
	}
	// Enum uses cube distance, KD uses cube distance too; lists must match.
	for g := 0; g < c1.NumCells(); g++ {
		a, b := c1.Neighbors[g], c2.Neighbors[g]
		if len(a) != len(b) {
			t.Fatalf("cell %d: %d vs %d neighbors", g, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cell %d neighbor %d: %d vs %d", g, i, a[i], b[i])
			}
		}
	}
}

func TestGridCellCoordsConsistent(t *testing.T) {
	pts := randomPoints(500, 2, 30, 3)
	c := BuildGrid(nil, pts, 3.0)
	for g := 0; g < c.NumCells(); g++ {
		lo, hi := c.GridCube(g)
		for _, p := range c.PointsOf(g) {
			row := c.Pts.At(int(p))
			for j, v := range row {
				if v < lo[j]-1e-9 || v > hi[j]+1e-9 {
					t.Fatalf("cell %d: point outside grid cube", g)
				}
			}
		}
	}
}

func TestGridSinglePoint(t *testing.T) {
	pts, _ := geom.FromRows([][]float64{{1, 1}})
	c := BuildGrid(nil, pts, 1.0)
	if c.NumCells() != 1 || c.CellSize(0) != 1 {
		t.Fatalf("cells = %d size0 = %d", c.NumCells(), c.CellSize(0))
	}
	c.ComputeNeighborsEnum(nil)
	if len(c.Neighbors[0]) != 0 {
		t.Fatal("single cell has neighbors")
	}
}

func TestGridAllSamePoint(t *testing.T) {
	rows := make([][]float64, 1000)
	for i := range rows {
		rows[i] = []float64{5, 5, 5}
	}
	pts, _ := geom.FromRows(rows)
	c := BuildGrid(nil, pts, 2.0)
	if c.NumCells() != 1 {
		t.Fatalf("cells = %d, want 1", c.NumCells())
	}
	if c.CellSize(0) != 1000 {
		t.Fatalf("size = %d, want 1000", c.CellSize(0))
	}
}

func TestBuildBox2D(t *testing.T) {
	pts := randomPoints(2000, 2, 100, 5)
	c := BuildBox2D(nil, pts, 5.0)
	checkPartition(t, c)
	c.ComputeNeighborsBox2D(nil)
	checkNeighbors(t, c)
}

func TestBox2DStripWidth(t *testing.T) {
	pts := randomPoints(3000, 2, 200, 9)
	eps := 7.0
	c := BuildBox2D(nil, pts, eps)
	w := eps / math.Sqrt2
	// Each cell's bbox extent must be at most the strip width in both axes
	// (that is what guarantees diameter <= eps).
	for g := 0; g < c.NumCells(); g++ {
		lo, hi := c.CellBox(g)
		if hi[0]-lo[0] > w+1e-9 || hi[1]-lo[1] > w+1e-9 {
			t.Fatalf("cell %d extent (%v, %v) exceeds width %v",
				g, hi[0]-lo[0], hi[1]-lo[1], w)
		}
	}
}

func TestBox2DMatchesSequentialStripScan(t *testing.T) {
	// Reference: the sequential strip construction of Section 4.2.
	pts := randomPoints(800, 2, 60, 13)
	eps := 4.0
	w := eps / math.Sqrt2
	c := BuildBox2D(nil, pts, eps)

	// Sequential strips over x.
	xs := make([]float64, pts.N)
	idx := make([]int, pts.N)
	for i := range idx {
		idx[i] = i
		xs[i] = pts.At(i)[0]
	}
	// Sort by (x, index) like the parallel code.
	sortByX := func(a, b int) bool {
		if xs[a] != xs[b] {
			return xs[a] < xs[b]
		}
		return a < b
	}
	for i := 1; i < len(idx); i++ { // insertion sort (small n)
		j := i
		for j > 0 && sortByX(idx[j], idx[j-1]) {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			j--
		}
	}
	wantStrip := make([]int, pts.N)
	stripID := -1
	var stripStartX float64
	for k, p := range idx {
		if k == 0 || xs[p] > stripStartX+w {
			stripID++
			stripStartX = xs[p]
		}
		wantStrip[p] = stripID
	}
	// The parallel construction's strip of a point = index of its strip in
	// StripCellStart; recover via cell index.
	gotStrip := make([]int, pts.N)
	for p := 0; p < pts.N; p++ {
		g := int(c.CellOf[p])
		s := 0
		for int(c.StripCellStart[s+1]) <= g {
			s++
		}
		gotStrip[p] = s
	}
	for p := range wantStrip {
		if gotStrip[p] != wantStrip[p] {
			t.Fatalf("point %d: strip %d, want %d", p, gotStrip[p], wantStrip[p])
		}
	}
}

func TestBox2DRequires2D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 3D input")
		}
	}()
	BuildBox2D(nil, randomPoints(10, 3, 1, 1), 1.0)
}

func TestGridClusteredData(t *testing.T) {
	// Two tight clusters far apart: their cells must not be neighbors.
	rng := rand.New(rand.NewSource(17))
	rows := [][]float64{}
	for i := 0; i < 100; i++ {
		rows = append(rows, []float64{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 100; i++ {
		rows = append(rows, []float64{1000 + rng.Float64(), 1000 + rng.Float64()})
	}
	pts, _ := geom.FromRows(rows)
	c := BuildGrid(nil, pts, 2.0)
	c.ComputeNeighborsEnum(nil)
	for g := 0; g < c.NumCells(); g++ {
		glo, _ := c.CellBox(g)
		for _, h := range c.Neighbors[g] {
			hlo, _ := c.CellBox(int(h))
			if (glo[0] < 500) != (hlo[0] < 500) {
				t.Fatal("cells across clusters marked as neighbors")
			}
		}
	}
}
