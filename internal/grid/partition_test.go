package grid

import (
	"math/rand"
	"slices"
	"testing"

	"pdbscan/internal/geom"
)

func partitionTestCells(t *testing.T, n, d int, seed int64, eps float64) *Cells {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	for i := range data {
		// Stretch the first axis so the split axis is predictable.
		scale := 8.0
		if i%d == 0 {
			scale = 40.0
		}
		data[i] = rng.Float64() * scale
	}
	pts := geom.Points{N: n, D: d, Data: data}
	c := BuildGrid(nil, pts, eps)
	c.ComputeNeighborsEnum(nil)
	return c
}

// TestPartitionInvariants checks the structural contract of MakePartition:
// exhaustive disjoint ownership, contiguous coordinate intervals per shard,
// halos that are exactly the cross-shard neighbors of owned cells, and
// boundary lists that are exactly the owned cells with a cross-shard
// neighbor.
func TestPartitionInvariants(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		c := partitionTestCells(t, 900, d, int64(d), 1.5)
		for _, k := range []int{1, 2, 3, 7, 16} {
			p, err := MakePartition(nil, c, k)
			if err != nil {
				t.Fatalf("d=%d k=%d: %v", d, k, err)
			}
			if p.NumShards < 1 || p.NumShards > k {
				t.Fatalf("d=%d k=%d: NumShards=%d", d, k, p.NumShards)
			}
			if p.Axis != 0 {
				t.Fatalf("d=%d k=%d: split axis %d, want 0 (most slabs)", d, k, p.Axis)
			}
			// Exhaustive disjoint ownership, Owned aligned with ShardOf.
			seen := make([]bool, c.NumCells())
			for s, owned := range p.Owned {
				if len(owned) == 0 {
					t.Fatalf("d=%d k=%d: shard %d is empty", d, k, s)
				}
				if !slices.IsSorted(owned) {
					t.Fatalf("d=%d k=%d: Owned[%d] not ascending", d, k, s)
				}
				for _, g := range owned {
					if seen[g] {
						t.Fatalf("cell %d owned twice", g)
					}
					seen[g] = true
					if p.ShardOf[g] != int32(s) {
						t.Fatalf("ShardOf[%d]=%d, want %d", g, p.ShardOf[g], s)
					}
				}
			}
			for g, ok := range seen {
				if !ok {
					t.Fatalf("cell %d unowned", g)
				}
			}
			// Contiguity: shards are disjoint, increasing coordinate
			// intervals on the split axis.
			lastHi := int64(-1 << 62)
			for s := 0; s < p.NumShards; s++ {
				lo, hi := int64(1<<62), int64(-1<<62)
				for _, g := range p.Owned[s] {
					a := c.AbsCoord(int(g), p.Axis)
					lo = min(lo, a)
					hi = max(hi, a)
				}
				if lo <= lastHi {
					t.Fatalf("d=%d k=%d: shard %d interval [%d,%d] overlaps previous (hi %d)", d, k, s, lo, hi, lastHi)
				}
				lastHi = hi
			}
			// Halo and boundary: recompute from first principles.
			for s := 0; s < p.NumShards; s++ {
				wantHalo := map[int32]bool{}
				wantBoundary := map[int32]bool{}
				for _, g := range p.Owned[s] {
					for _, h := range c.Neighbors[g] {
						if p.ShardOf[h] != int32(s) {
							wantHalo[h] = true
							wantBoundary[g] = true
						}
					}
				}
				if len(p.Halo[s]) != len(wantHalo) || !slices.IsSorted(p.Halo[s]) {
					t.Fatalf("d=%d k=%d shard %d: halo %v, want set of %d", d, k, s, p.Halo[s], len(wantHalo))
				}
				for _, h := range p.Halo[s] {
					if !wantHalo[h] {
						t.Fatalf("d=%d k=%d shard %d: %d in halo but not a cross-shard neighbor", d, k, s, h)
					}
				}
				if len(p.Boundary[s]) != len(wantBoundary) {
					t.Fatalf("d=%d k=%d shard %d: boundary %v, want set of %d", d, k, s, p.Boundary[s], len(wantBoundary))
				}
				for _, g := range p.Boundary[s] {
					if !wantBoundary[g] {
						t.Fatalf("d=%d k=%d shard %d: %d in boundary without cross-shard neighbor", d, k, s, g)
					}
				}
			}
		}
	}
}

// TestPartitionBalance: on a uniform point set, a point-balanced cut keeps
// every shard within a reasonable factor of the ideal share.
func TestPartitionBalance(t *testing.T) {
	c := partitionTestCells(t, 20000, 2, 9, 1.0)
	const k = 8
	p, err := MakePartition(nil, c, k)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards != k {
		t.Fatalf("NumShards=%d, want %d", p.NumShards, k)
	}
	ideal := 20000 / k
	for s := 0; s < k; s++ {
		pts := 0
		for _, g := range p.Owned[s] {
			pts += c.CellSize(int(g))
		}
		if pts < ideal/3 || pts > 3*ideal {
			t.Fatalf("shard %d has %d points (ideal %d)", s, pts, ideal)
		}
	}
}

// TestPartitionSkewNoEmptyShards: with all mass in one slab, the tail shards
// must still each receive at least one slab.
func TestPartitionSkewNoEmptyShards(t *testing.T) {
	var data []float64
	for i := 0; i < 500; i++ { // heavy slab near x=0
		data = append(data, rand.New(rand.NewSource(int64(i))).Float64()*0.5, float64(i%7))
	}
	for x := 1; x <= 6; x++ { // six light slabs
		data = append(data, float64(x)*10, 0)
	}
	pts := geom.Points{N: len(data) / 2, D: 2, Data: data}
	c := BuildGrid(nil, pts, 1.0)
	c.ComputeNeighborsEnum(nil)
	p, err := MakePartition(nil, c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards != 4 {
		t.Fatalf("NumShards=%d, want 4", p.NumShards)
	}
	for s, owned := range p.Owned {
		if len(owned) == 0 {
			t.Fatalf("shard %d starved empty under skew", s)
		}
	}
}

// TestPartitionAxisBySlabCount: the split axis is the one with the most
// occupied slabs, not the widest geometric span — two dense columns far
// apart on x offer only 2 slabs there, so cutting x would clamp any shard
// count to 2 while y has plenty of slabs to cut between.
func TestPartitionAxisBySlabCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var data []float64
	for i := 0; i < 400; i++ {
		x := 0.25
		if i%2 == 1 {
			x = 10000.25 // second column, enormous span, same slab
		}
		data = append(data, x, rng.Float64()*30)
	}
	pts := geom.Points{N: len(data) / 2, D: 2, Data: data}
	c := BuildGrid(nil, pts, 1.0)
	c.ComputeNeighborsEnum(nil)
	p, err := MakePartition(nil, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Axis != 1 {
		t.Fatalf("split axis %d, want 1 (x spans wider but has 2 slabs)", p.Axis)
	}
	if p.NumShards != 8 {
		t.Fatalf("NumShards=%d, want 8 (y offers enough slabs)", p.NumShards)
	}
}

// TestPartitionClampAndErrors: shard counts beyond the occupied slabs clamp;
// box layout, missing neighbors, and non-positive counts error.
func TestPartitionClampAndErrors(t *testing.T) {
	c := partitionTestCells(t, 50, 2, 3, 5.0)
	p, err := MakePartition(nil, c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards >= 1000 || p.NumShards < 1 {
		t.Fatalf("NumShards=%d not clamped to occupied slabs", p.NumShards)
	}
	if _, err := MakePartition(nil, c, 0); err == nil {
		t.Fatal("shards=0 accepted")
	}
	noNbrs := BuildGrid(nil, c.Pts, 5.0)
	if _, err := MakePartition(nil, noNbrs, 2); err == nil {
		t.Fatal("cells without neighbor lists accepted")
	}
	box := BuildBox2D(nil, c.Pts, 5.0)
	box.ComputeNeighborsBox2D(nil)
	if _, err := MakePartition(nil, box, 2); err == nil {
		t.Fatal("box layout accepted")
	}
}
