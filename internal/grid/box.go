package grid

import (
	"math"
	"sort"
	"sync/atomic"

	"pdbscan/internal/geom"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// BuildBox2D implements the box method of Section 4.2 (2D only): sort points
// by x; group them into strips of width at most eps/sqrt(2) using the
// parent-pointer + pointer-jumping construction of Figure 2; then, within
// each strip, repeat the procedure on y to obtain the box cells. O(n log n)
// work, polylogarithmic depth. The executor ex sizes every parallel step
// (nil = default pool).
func BuildBox2D(ex *parallel.Pool, pts geom.Points, eps float64) *Cells {
	if pts.D != 2 {
		panic("grid.BuildBox2D: requires 2-dimensional points")
	}
	n := pts.N
	w := eps / math.Sqrt2

	// Sort point indices by x (ties by index for determinism).
	order := make([]int32, n)
	ex.For(n, func(i int) { order[i] = int32(i) })
	xOf := func(i int32) float64 { return pts.Data[2*int(i)] }
	yOf := func(i int32) float64 { return pts.Data[2*int(i)+1] }
	prim.Sort(ex, order, func(a, b int32) bool {
		xa, xb := xOf(a), xOf(b)
		if xa != xb {
			return xa < xb
		}
		return a < b
	})

	// Strip starts over the x-sorted sequence.
	stripOfPos := chainMarks(ex, n, func(i int) float64 { return xOf(order[i]) }, w)
	numStrips := int(stripOfPos[n-1]) + 1

	// Strip boundaries in the sorted order (strip ids are non-decreasing).
	stripStart := make([]int32, numStrips+1)
	ex.For(n, func(i int) {
		if i == 0 || stripOfPos[i] != stripOfPos[i-1] {
			stripStart[stripOfPos[i]] = int32(i)
		}
	})
	stripStart[numStrips] = int32(n)

	// Within each strip, sort by y and split into cells with the same chain
	// procedure. Cells are numbered strip-major; record per-strip cell count
	// first, then assign global cell ids with a prefix sum.
	cellsPerStrip := make([]int, numStrips)
	cellOfPosLocal := make([]int32, n) // cell id local to the strip, per sorted position
	ex.ForGrain(numStrips, 1, func(s int) {
		lo, hi := int(stripStart[s]), int(stripStart[s+1])
		sub := order[lo:hi]
		sort.Slice(sub, func(a, b int) bool {
			ya, yb := yOf(sub[a]), yOf(sub[b])
			if ya != yb {
				return ya < yb
			}
			return sub[a] < sub[b]
		})
		local := chainMarks(ex, hi-lo, func(i int) float64 { return yOf(sub[i]) }, w)
		copy(cellOfPosLocal[lo:hi], local)
		cellsPerStrip[s] = int(local[hi-lo-1]) + 1
	})
	totalCells := prim.PrefixSumInPlace(ex, cellsPerStrip)

	c := &Cells{
		Pts:            pts,
		Eps:            eps,
		Side:           w,
		Order:          order,
		CellStart:      make([]int32, totalCells+1),
		CellOf:         make([]int32, n),
		BBLo:           make([]float64, totalCells*2),
		BBHi:           make([]float64, totalCells*2),
		StripCellStart: make([]int32, numStrips+1),
	}
	for s := 0; s < numStrips; s++ {
		c.StripCellStart[s] = int32(cellsPerStrip[s])
	}
	c.StripCellStart[numStrips] = int32(totalCells)

	ex.ForGrain(numStrips, 1, func(s int) {
		lo, hi := int(stripStart[s]), int(stripStart[s+1])
		base := int32(cellsPerStrip[s])
		for i := lo; i < hi; i++ {
			g := base + cellOfPosLocal[i]
			p := order[i]
			c.CellOf[p] = g
			if i == lo || cellOfPosLocal[i] != cellOfPosLocal[i-1] {
				c.CellStart[g] = int32(i)
			}
		}
	})
	c.CellStart[totalCells] = int32(n)

	// Per-cell bounding boxes.
	ex.ForGrain(totalCells, 1, func(g int) {
		ps := c.PointsOf(g)
		bbLo := c.BBLo[g*2 : g*2+2]
		bbHi := c.BBHi[g*2 : g*2+2]
		copy(bbLo, pts.At(int(ps[0])))
		copy(bbHi, pts.At(int(ps[0])))
		for _, p := range ps[1:] {
			row := pts.At(int(p))
			for j, v := range row {
				if v < bbLo[j] {
					bbLo[j] = v
				}
				if v > bbHi[j] {
					bbHi[j] = v
				}
			}
		}
	})
	c.EnsurePayload(ex)
	return c
}

// chainMarks implements the strip-finding construction of Figure 2 on a
// sorted coordinate sequence: every position's parent is the first position
// whose coordinate exceeds its own by more than w; position 0 is marked; the
// marks are propagated along the parent chain by pointer jumping; the result
// maps each position to its strip index (marks prefix-summed minus one).
func chainMarks(ex *parallel.Pool, n int, coord func(int) float64, w float64) []int32 {
	if n == 0 {
		return nil
	}
	parent := make([]int32, n)
	ex.For(n, func(i int) {
		// Binary search the sorted sequence for the first position with
		// coordinate > coord(i) + w.
		target := coord(i) + w
		parent[i] = int32(i + sort.Search(n-i, func(k int) bool {
			return coord(i+k) > target
		}))
	})
	marks := make([]int32, n)
	marks[0] = 1
	next := parent // jumped pointers; n is the sentinel "no parent"
	newNext := make([]int32, n)
	// ceil(log2 n) + 1 doubling rounds suffice: after round r every chain
	// node within 2^r hops of position 0 is marked.
	for span := 1; span < 2*n; span *= 2 {
		// Mark phase: every marked node marks its current jump target.
		// Multiple writers may set the same slot; CAS keeps it race-free.
		ex.For(n, func(i int) {
			if atomic.LoadInt32(&marks[i]) == 1 {
				if p := int(next[i]); p < n {
					atomic.CompareAndSwapInt32(&marks[p], 0, 1)
				}
			}
		})
		// Jump phase: newNext[i] = next[next[i]], reading only the old
		// array so the doubling invariant is exact.
		ex.For(n, func(i int) {
			if p := int(next[i]); p < n {
				newNext[i] = next[p]
			} else {
				newNext[i] = int32(n)
			}
		})
		next, newNext = newNext, next
	}
	// Strip index = inclusive prefix sum of marks, minus one. The exclusive
	// prefix sum gives sum of marks[:i]; adding marks[i] and subtracting one
	// yields the inclusive value - 1.
	strip := make([]int32, n)
	prim.PrefixSum(ex, marks, strip)
	ex.For(n, func(i int) {
		strip[i] += marks[i] - 1
	})
	return strip
}

// ComputeNeighborsBox2D fills Neighbors for the box construction: each
// strip s is merged with strips s-2 .. s+2 (Section 4.2), walking the cells
// of both strips in increasing y and linking cells whose point bounding
// boxes are within eps.
func (c *Cells) ComputeNeighborsBox2D(ex *parallel.Pool) {
	numCells := c.NumCells()
	numStrips := len(c.StripCellStart) - 1
	eps2 := c.Eps * c.Eps
	k := geom.NewKernel(c.Pts)
	c.Neighbors = make([][]int32, numCells)
	ex.ForGrain(numStrips, 1, func(s int) {
		gLo, gHi := int(c.StripCellStart[s]), int(c.StripCellStart[s+1])
		// Per-merged-strip advancing window start: cells in every strip are
		// sorted by y, so as g walks up in y the window only moves forward
		// (the parallel-merge structure of Section 4.2).
		var winStart [5]int
		for ds := -2; ds <= 2; ds++ {
			if s2 := s + ds; s2 >= 0 && s2 < numStrips {
				winStart[ds+2] = int(c.StripCellStart[s2])
			}
		}
		for g := gLo; g < gHi; g++ {
			gbLo, gbHi := c.CellBox(g)
			var nbrs []int32
			for ds := -2; ds <= 2; ds++ {
				s2 := s + ds
				if s2 < 0 || s2 >= numStrips {
					continue
				}
				hHi := int(c.StripCellStart[s2+1])
				// Advance past cells entirely below g's y-window.
				h := winStart[ds+2]
				for h < hHi {
					if c.BBHi[h*2+1] >= gbLo[1]-c.Eps {
						break
					}
					h++
				}
				winStart[ds+2] = h
				for ; h < hHi; h++ {
					if c.BBLo[h*2+1] > gbHi[1]+c.Eps {
						break // no later cell in this strip can match
					}
					if h == g {
						continue
					}
					hbLo, hbHi := c.CellBox(h)
					if k.BoxBoxDistSq(gbLo, gbHi, hbLo, hbHi) <= eps2 {
						nbrs = append(nbrs, int32(h))
					}
				}
			}
			sortNeighbors(nbrs)
			c.Neighbors[g] = nbrs
		}
	})
}
