package grid

import (
	"fmt"
	"slices"

	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// Partition splits the non-empty cells of a grid construction into NumShards
// contiguous spatial blocks ("shards") along one axis of the absolute cell
// lattice. Because grid cells are anchored to the absolute side-grid lattice
// (Cells.Anchor, CellCoord), a shard is a half-open interval of absolute
// lattice coordinates on the split axis: every build of the same point set
// produces the same shards, which is what makes the sharded clustering path
// reproducible.
//
// Each shard also knows its halo — the cells owned by other shards that lie
// within eps of one of its owned cells (exactly the cross-shard entries of
// the owned cells' Neighbors lists, so the halo is eps-wide by the same
// cube-distance test every other phase uses). Owned cells that have at least
// one halo neighbor are the shard's boundary: only their cell-graph edges can
// cross the shard cut, so the merge pass after independent per-shard
// clustering touches boundary cells alone.
type Partition struct {
	// NumShards is the number of shards actually produced. It never exceeds
	// the number of distinct occupied lattice coordinates on the split axis
	// (a thinner slab could not keep shards contiguous), so it may be lower
	// than requested.
	NumShards int
	// Axis is the dimension the lattice was cut along: the axis with the
	// most distinct occupied lattice coordinates — i.e. the most slabs, so
	// the requested shard count clamps as little as possible (ties to the
	// widest coordinate span, then the lowest axis).
	Axis int
	// ShardOf[g] is the shard owning cell g.
	ShardOf []int32
	// Owned[s] lists the cells owned by shard s, ascending.
	Owned [][]int32
	// Halo[s] lists the cells within eps of shard s's owned cells but owned
	// by other shards, ascending.
	Halo [][]int32
	// Boundary[s] lists the owned cells of shard s with at least one
	// cross-shard neighbor, ascending. Only these cells can carry cell-graph
	// edges into the halo.
	Boundary [][]int32
}

// MakePartition partitions the cells of a grid construction into at most
// `shards` contiguous spatial blocks of roughly equal point count, with
// eps-wide halos. Requires the grid layout (Coords non-nil) and computed
// Neighbors. The executor sizes the parallel passes (nil = default pool).
//
// The split axis and cut positions depend only on the occupied lattice (not
// on cell enumeration order), so equal point sets yield equal partitions.
func MakePartition(ex *parallel.Pool, c *Cells, shards int) (*Partition, error) {
	if c.Coords == nil {
		return nil, fmt.Errorf("grid: MakePartition requires the grid layout (box cells have no lattice)")
	}
	if c.Neighbors == nil {
		return nil, fmt.Errorf("grid: MakePartition requires computed neighbor lists")
	}
	if shards < 1 {
		return nil, fmt.Errorf("grid: shard count must be >= 1, got %d", shards)
	}
	d := c.Pts.D
	numCells := c.NumCells()
	p := &Partition{NumShards: 1, ShardOf: make([]int32, numCells)}
	if numCells == 0 {
		p.Owned = [][]int32{nil}
		p.Halo = [][]int32{nil}
		p.Boundary = [][]int32{nil}
		return p, nil
	}

	// Split axis: the one with the most distinct occupied coordinates
	// (slabs), so the shard count clamps as little as possible — a sparse
	// axis can span a huge coordinate range yet offer only a couple of
	// slabs to cut between. Ties go to the wider span, then the lower axis.
	// One parallel sort per axis; the partition cost stays well below one
	// clustering phase.
	axis, bestSlabs, bestSpan := 0, -1, int64(-1)
	axCoords := make([]int64, numCells)
	for j := 0; j < d; j++ {
		ex.For(numCells, func(g int) { axCoords[g] = c.AbsCoord(g, j) })
		prim.Sort(ex, axCoords, func(a, b int64) bool { return a < b })
		slabsJ := 1
		for i := 1; i < numCells; i++ {
			if axCoords[i] != axCoords[i-1] {
				slabsJ++
			}
		}
		spanJ := axCoords[numCells-1] - axCoords[0]
		if slabsJ > bestSlabs || (slabsJ == bestSlabs && spanJ > bestSpan) {
			axis, bestSlabs, bestSpan = j, slabsJ, spanJ
		}
	}
	p.Axis = axis

	// Order cells by (axis coordinate, cell index) and cut the order into
	// point-balanced runs, never splitting cells that share an axis
	// coordinate (shards must be coordinate intervals).
	order := make([]int32, numCells)
	ex.For(numCells, func(g int) { order[g] = int32(g) })
	prim.Sort(ex, order, func(a, b int32) bool {
		ca, cb := c.AbsCoord(int(a), axis), c.AbsCoord(int(b), axis)
		if ca != cb {
			return ca < cb
		}
		return a < b
	})
	totalPts := 0
	for _, g := range order {
		totalPts += c.CellSize(int(g))
	}
	slabs := bestSlabs // distinct coordinates on the chosen axis
	if shards > slabs {
		shards = slabs
	}
	p.NumShards = shards
	p.Owned = make([][]int32, shards)
	p.Halo = make([][]int32, shards)
	p.Boundary = make([][]int32, shards)

	// Greedy balanced cuts: close shard s once its cumulative point count
	// reaches s+1 shares of the total, advancing only at slab boundaries. A
	// shard is also closed when the remaining slabs are only just enough to
	// give every remaining shard one, so point skew never starves the tail
	// shards down to empty.
	s, cum, slabIdx := 0, 0, -1
	for i, g := range order {
		if i == 0 || c.AbsCoord(int(g), axis) != c.AbsCoord(int(order[i-1]), axis) {
			slabIdx++
			if i > 0 && s < shards-1 &&
				(cum*shards >= (s+1)*totalPts || slabs-slabIdx <= shards-1-s) {
				s++
			}
		}
		p.ShardOf[g] = int32(s)
		p.Owned[s] = append(p.Owned[s], g)
		cum += c.CellSize(int(g))
	}
	// Owned lists ascending by cell index (they were appended in axis order).
	ex.ForGrain(shards, 1, func(s int) { slices.Sort(p.Owned[s]) })

	// Halo and boundary, per shard: scan owned cells' neighbor lists for
	// cross-shard entries. Dedup by sort+compact over the collected
	// candidates — their count is bounded by the boundary cells' neighbor
	// lists, so no per-shard O(numCells) scratch is needed.
	ex.ForGrain(shards, 1, func(s int) {
		var halo, boundary []int32
		for _, g := range p.Owned[s] {
			cross := false
			for _, h := range c.Neighbors[g] {
				if p.ShardOf[h] != int32(s) {
					cross = true
					halo = append(halo, h)
				}
			}
			if cross {
				boundary = append(boundary, g)
			}
		}
		slices.Sort(halo)
		p.Halo[s] = slices.Compact(halo)
		p.Boundary[s] = boundary
	})
	return p, nil
}
