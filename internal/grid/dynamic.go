package grid

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"pdbscan/internal/geom"
	"pdbscan/internal/kdtree"
	"pdbscan/internal/parallel"
)

// Dynamic is the mutable counterpart of the grid construction (Section 4.1)
// for streaming workloads: points can be inserted and removed between
// clustering runs, and Snapshot produces a Cells view that reuses every piece
// of per-cell state whose inputs did not change.
//
// Identity is slot-based and stable across mutations:
//
//   - every point occupies a point slot (an index into the flat coordinate
//     array); removing a point frees its slot for reuse;
//   - every non-empty cell occupies a cell slot; the cell keeps its slot for
//     as long as it has points, so per-cell caches held by downstream phases
//     (bounding boxes, neighbor lists, core flags, quadtrees, cell-graph
//     edges) can be keyed by slot and survive unrelated mutations.
//
// The dirty-set discipline: a mutated cell (point inserted or removed,
// created, or destroyed) is dirty. Snapshot expands the dirty set to the
// affected set — every alive cell whose cube is within eps of a dirty cell's
// cube — because those are exactly the cells whose points' eps-neighborhoods
// (and hence core counts, core point lists, and incident cell-graph edges)
// may have changed. Untouched cells keep their point lists, bounding boxes,
// and neighbor lists by construction; internal/core keeps their core flags,
// quadtrees, and edges on the same contract.
//
// Dynamic is not safe for concurrent use; the public streaming API
// serializes access.
type Dynamic struct {
	d    int
	eps  float64
	side float64

	data    []float64 // point-slot-major coordinates, len = cap*d
	freePts []int32   // reusable point slots
	ptCell  []int32   // per point slot: owning cell slot, -1 if free
	numLive int

	key2cell    map[string]int32
	cellPts     [][]int32 // per cell slot: its point slots (nil once freed)
	cellAbs     [][]int64 // per cell slot: absolute lattice coords (nil once freed)
	cellAlive   []bool
	freeCells   []int32 // reusable cell slots
	deadPending []int32 // destroyed since last snapshot; coords retained for dirty propagation

	dirty map[int32]struct{} // cell slots created/mutated/destroyed since last snapshot

	snap      *Cells // last snapshot; nil before the first
	snapValid bool   // no mutations since snap was taken

	// restored marks a Dynamic rebuilt by RestoreDynamic: the next Snapshot
	// has no previous Cells to copy grid-side per-cell state from (it
	// recomputes bounding boxes and neighbor lists for every cell), but it
	// reports only the restored dirty set's expansion as affected — not Full
	// — so incremental caches restored alongside keep their clean entries.
	restored bool
}

// DirtyInfo reports, for one Snapshot, which cell slots the mutations since
// the previous snapshot may have invalidated downstream state for.
type DirtyInfo struct {
	// Affected[g] is true when cell slot g's point set, or the point set of
	// any cell within eps of it, changed — exactly the cells whose core
	// flags, core point lists, and incident cell-graph edges must be
	// recomputed.
	Affected []bool
	// NumAffected counts the alive cells in Affected (destroyed cells are
	// also flagged so downstream caches retire their state, but they do no
	// recomputation work and are not counted).
	NumAffected int
	// Full marks the first snapshot (or a structural rebuild): all state is
	// fresh and nothing downstream may be reused.
	Full bool
}

// NewDynamic creates an empty mutable grid over d-dimensional points at the
// given eps (cell side eps/sqrt(d), anchored to the absolute lattice — the
// same partition BuildGrid produces for any point set).
func NewDynamic(d int, eps float64) *Dynamic {
	return &Dynamic{
		d:        d,
		eps:      eps,
		side:     eps / math.Sqrt(float64(d)),
		key2cell: make(map[string]int32),
		dirty:    make(map[int32]struct{}),
	}
}

// Dims returns the dimensionality.
func (dy *Dynamic) Dims() int { return dy.d }

// Eps returns the radius the grid is built for.
func (dy *Dynamic) Eps() float64 { return dy.eps }

// NumPoints returns the number of live points.
func (dy *Dynamic) NumPoints() int { return dy.numLive }

// NumPointSlots returns the size of the point-slot space (live + free).
func (dy *Dynamic) NumPointSlots() int { return len(dy.ptCell) }

// PointAt returns the coordinates stored in point slot p (a view; valid only
// while the slot is live).
func (dy *Dynamic) PointAt(p int32) []float64 {
	return dy.data[int(p)*dy.d : (int(p)+1)*dy.d]
}

// key packs absolute lattice coordinates into a map key.
func absKey(abs []int64) string {
	b := make([]byte, 8*len(abs))
	for j, a := range abs {
		binary.LittleEndian.PutUint64(b[8*j:], uint64(a))
	}
	return string(b)
}

func (dy *Dynamic) markDirty(g int32) {
	dy.dirty[g] = struct{}{}
	dy.snapValid = false
}

// Insert adds a point (row must have length Dims and finite coordinates —
// the caller validates) and returns its point slot.
func (dy *Dynamic) Insert(row []float64) int32 {
	d := dy.d
	var p int32
	if n := len(dy.freePts); n > 0 {
		p = dy.freePts[n-1]
		dy.freePts = dy.freePts[:n-1]
		copy(dy.data[int(p)*d:], row)
	} else {
		p = int32(len(dy.ptCell))
		dy.data = append(dy.data, row...)
		dy.ptCell = append(dy.ptCell, -1)
	}

	abs := make([]int64, d)
	for j, v := range row {
		abs[j] = CellCoord(v, dy.side)
	}
	key := absKey(abs)
	g, ok := dy.key2cell[key]
	if !ok {
		if n := len(dy.freeCells); n > 0 {
			g = dy.freeCells[n-1]
			dy.freeCells = dy.freeCells[:n-1]
			dy.cellPts[g] = dy.cellPts[g][:0]
			dy.cellAbs[g] = abs
			dy.cellAlive[g] = true
		} else {
			g = int32(len(dy.cellPts))
			dy.cellPts = append(dy.cellPts, nil)
			dy.cellAbs = append(dy.cellAbs, abs)
			dy.cellAlive = append(dy.cellAlive, true)
		}
		dy.key2cell[key] = g
	}
	dy.cellPts[g] = append(dy.cellPts[g], p)
	dy.ptCell[p] = g
	dy.numLive++
	dy.markDirty(g)
	return p
}

// Remove deletes the point in slot p (must be live). The slot becomes
// reusable immediately; if its cell empties, the cell is destroyed and its
// slot becomes reusable after the next Snapshot (its coordinates are needed
// until then to propagate dirtiness to its eps-neighborhood).
func (dy *Dynamic) Remove(p int32) {
	g := dy.ptCell[p]
	pts := dy.cellPts[g]
	for i, q := range pts {
		if q == p {
			pts[i] = pts[len(pts)-1]
			dy.cellPts[g] = pts[:len(pts)-1]
			break
		}
	}
	dy.ptCell[p] = -1
	dy.freePts = append(dy.freePts, p)
	dy.numLive--
	dy.markDirty(g)
	if len(dy.cellPts[g]) == 0 {
		dy.cellAlive[g] = false
		delete(dy.key2cell, absKey(dy.cellAbs[g]))
		dy.deadPending = append(dy.deadPending, g)
	}
}

// Snapshot materializes the current point set as a Cells value with neighbor
// lists computed, reusing the previous snapshot's per-cell bounding boxes and
// neighbor lists for every cell outside the affected set. Cell slots are
// stable: a cell keeps its index across snapshots, and freed slots appear as
// empty cells (zero points, no neighbors) that every downstream phase skips
// naturally.
//
// The returned Cells aliases the Dynamic's point storage; it is valid until
// the next mutation. Calling Snapshot with no mutations since the last one
// returns the same Cells and an empty DirtyInfo.
func (dy *Dynamic) Snapshot(ex *parallel.Pool) (*Cells, *DirtyInfo, error) {
	numSlots := len(dy.cellPts)
	if dy.snapValid && dy.snap != nil {
		return dy.snap, &DirtyInfo{Affected: make([]bool, numSlots)}, nil
	}
	d := dy.d
	full := dy.snap == nil && !dy.restored
	prev := dy.snap // nil right after a restore: grid-side state is recomputed below

	// Anchor: coordinate-wise minimum absolute coordinate over alive cells.
	anchor := make([]int64, d)
	first := true
	for g := 0; g < numSlots; g++ {
		if !dy.cellAlive[g] {
			continue
		}
		abs := dy.cellAbs[g]
		if first {
			copy(anchor, abs)
			first = false
			continue
		}
		for j, a := range abs {
			if a < anchor[j] {
				anchor[j] = a
			}
		}
	}
	numAlive := 0
	for g := 0; g < numSlots; g++ {
		if !dy.cellAlive[g] {
			continue
		}
		numAlive++
		for j, a := range dy.cellAbs[g] {
			if rel := a - anchor[j]; rel > math.MaxInt32 {
				return nil, nil, fmt.Errorf("grid: point spread exceeds %d cells of side %v in dimension %d", math.MaxInt32, dy.side, j)
			}
		}
	}

	nCap := len(dy.ptCell)
	c := &Cells{
		Pts:       geom.Points{N: nCap, D: d, Data: dy.data},
		Eps:       dy.eps,
		Side:      dy.side,
		Anchor:    anchor,
		CellStart: make([]int32, numSlots+1),
		Order:     make([]int32, dy.numLive),
		CellOf:    make([]int32, nCap),
		BBLo:      make([]float64, numSlots*d),
		BBHi:      make([]float64, numSlots*d),
		Coords:    make([]int32, numSlots*d),
		Neighbors: make([][]int32, numSlots),
	}

	// Offsets, coords, and the cell table.
	off := int32(0)
	for g := 0; g < numSlots; g++ {
		c.CellStart[g] = off
		if dy.cellAlive[g] {
			off += int32(len(dy.cellPts[g]))
			for j, a := range dy.cellAbs[g] {
				c.Coords[g*d+j] = int32(a - anchor[j])
			}
		}
	}
	c.CellStart[numSlots] = off
	c.table = newCellTable(numAlive, c)
	for i := range c.CellOf {
		c.CellOf[i] = -1
	}
	ex.ForGrain(numSlots, 8, func(g int) {
		if !dy.cellAlive[g] {
			return
		}
		copy(c.Order[c.CellStart[g]:c.CellStart[g+1]], dy.cellPts[g])
		for _, p := range dy.cellPts[g] {
			c.CellOf[p] = int32(g)
		}
		c.table.insert(int32(g))
	})

	// Affected set: dirty cells plus every alive cell within eps of one.
	affected := make([]int32, numSlots)
	info := &DirtyInfo{Affected: make([]bool, numSlots), Full: full}

	// Neighbor search strategy. In low dimensions offset enumeration is
	// always right. In higher dimensions a k-d tree over the cell centers
	// beats enumeration only when many cells need queries — an O(C log C)
	// rebuild per tick would break the cost-∝-dirty-cells model for small
	// dirty sets — so the tree is built lazily, per phase, only when the
	// query count justifies it. probeCost is enumeration's per-query probe
	// count, (2*ceil(sqrt(d))+1)^d (saturated).
	var tree *kdtree.Tree
	var slotOf []int32 // tree point index -> alive cell slot
	buildTree := func() {
		if tree != nil || numAlive == 0 {
			return
		}
		slotOf = make([]int32, 0, numAlive)
		centers := geom.Points{N: numAlive, D: d, Data: make([]float64, 0, numAlive*d)}
		for g := 0; g < numSlots; g++ {
			if !dy.cellAlive[g] {
				continue
			}
			slotOf = append(slotOf, int32(g))
			for _, a := range dy.cellAbs[g] {
				centers.Data = append(centers.Data, (float64(a)+0.5)*dy.side)
			}
		}
		tree = kdtree.Build(ex, centers)
	}
	probeCost := 1
	width := 2*int(math.Ceil(math.Sqrt(float64(d)))) + 1
	for j := 0; j < d && probeCost < 1<<30; j++ {
		probeCost *= width
	}
	wantTree := func(queries int) bool {
		return d > 3 && queries > numAlive/probeCost
	}
	neighborsOf := func(abs []int64, exclude int32) []int32 {
		if tree != nil {
			return c.kdNeighborsOf(tree, slotOf, abs, exclude)
		}
		return c.enumNeighborsOf(abs, exclude)
	}

	if full {
		for g := range affected {
			affected[g] = 1
		}
	} else {
		dirtyList := make([]int32, 0, len(dy.dirty))
		for g := range dy.dirty {
			dirtyList = append(dirtyList, g)
		}
		if wantTree(len(dirtyList)) {
			buildTree()
		}
		ex.ForGrain(len(dirtyList), 1, func(i int) {
			g := dirtyList[i]
			atomic.StoreInt32(&affected[g], 1)
			for _, h := range neighborsOf(dy.cellAbs[g], g) {
				atomic.StoreInt32(&affected[h], 1)
			}
		})
	}
	affectedAlive := 0
	for g := 0; g < numSlots; g++ {
		if affected[g] != 0 && dy.cellAlive[g] {
			affectedAlive++
		}
	}
	if wantTree(affectedAlive) {
		buildTree()
	}

	// Per-cell state: bounding boxes and neighbor lists are recomputed for
	// affected cells and copied from the previous snapshot otherwise.
	ex.ForGrain(numSlots, 1, func(g int) {
		if !dy.cellAlive[g] {
			return
		}
		if affected[g] == 0 && prev != nil {
			copy(c.BBLo[g*d:(g+1)*d], prev.BBLo[g*d:(g+1)*d])
			copy(c.BBHi[g*d:(g+1)*d], prev.BBHi[g*d:(g+1)*d])
			c.Neighbors[g] = prev.Neighbors[g]
			return
		}
		pts := dy.cellPts[g]
		bbLo := c.BBLo[g*d : (g+1)*d]
		bbHi := c.BBHi[g*d : (g+1)*d]
		copy(bbLo, dy.PointAt(pts[0]))
		copy(bbHi, dy.PointAt(pts[0]))
		for _, p := range pts[1:] {
			row := dy.PointAt(p)
			for j, v := range row {
				if v < bbLo[j] {
					bbLo[j] = v
				}
				if v > bbHi[j] {
					bbHi[j] = v
				}
			}
		}
		c.Neighbors[g] = neighborsOf(dy.cellAbs[g], int32(g))
	})

	for g, a := range affected {
		if a != 0 {
			info.Affected[g] = true
		}
	}
	info.NumAffected = affectedAlive

	// Retire destroyed cells: their slots become reusable now that dirtiness
	// has been propagated.
	for _, g := range dy.deadPending {
		if !dy.cellAlive[g] { // still dead (not resurrected via slot reuse)
			dy.cellAbs[g] = nil
			dy.cellPts[g] = nil
			dy.freeCells = append(dy.freeCells, g)
		}
	}
	dy.deadPending = dy.deadPending[:0]
	clear(dy.dirty)
	dy.snap = c
	dy.snapValid = true
	dy.restored = false
	return c, info, nil
}
