package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 512, 513, 100000} {
		seen := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt32(&seen[i], 1)
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestBlockedForPartitions(t *testing.T) {
	n := 100001
	var total int64
	BlockedFor(n, 0, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != int64(n) {
		t.Fatalf("covered %d of %d iterations", total, n)
	}
}

func TestBlockedForIdxDistinctBlocks(t *testing.T) {
	n := 65537
	nb := NumBlocks(n, 0)
	counts := make([]int64, nb)
	BlockedForIdx(n, 0, func(b, lo, hi int) {
		atomic.AddInt64(&counts[b], int64(hi-lo))
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(n) {
		t.Fatalf("blocks cover %d of %d", total, n)
	}
}

func TestPoolCapsBlocks(t *testing.T) {
	ex := NewPool(2)
	if w := ex.Workers(); w != 2 {
		t.Fatalf("Workers() = %d, want 2", w)
	}
	if nb := ex.NumBlocks(1<<20, 1); nb != 2 {
		t.Fatalf("NumBlocks = %d, want 2", nb)
	}
	// A nil pool tracks GOMAXPROCS; pools from non-positive budgets snapshot
	// it at construction. With GOMAXPROCS stable here, both report the same.
	for _, def := range []*Pool{nil, NewPool(0), NewPool(-3)} {
		if w := def.Workers(); w != runtime.GOMAXPROCS(0) {
			t.Fatalf("default pool Workers() = %d, want GOMAXPROCS", w)
		}
	}
}

func TestPoolBudgetSnapshotSurvivesGOMAXPROCSFlip(t *testing.T) {
	// Regression: a pool built under one GOMAXPROCS must keep that budget if
	// GOMAXPROCS changes mid-run. Before the snapshot fix, NumBlocks (used to
	// size per-block scratch) and a later BlockedForIdx re-read GOMAXPROCS
	// independently, so a flip between the two calls made BlockedForIdx hand
	// out block indices past the end of the scratch.
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, ex := range []*Pool{NewPool(0), NewPoolContext(ctx, 0)} {
		nb := ex.NumBlocks(1<<20, 1)
		scratch := make([]int64, nb)

		runtime.GOMAXPROCS(8) // flips mid-run

		if w := ex.Workers(); w != 2 {
			t.Fatalf("Workers() = %d after GOMAXPROCS flip, want snapshotted 2", w)
		}
		if got := ex.NumBlocks(1<<20, 1); got != nb {
			t.Fatalf("NumBlocks = %d after flip, want %d", got, nb)
		}
		ex.BlockedForIdx(1<<20, 1, func(b, lo, hi int) {
			atomic.AddInt64(&scratch[b], int64(hi-lo)) // panics if b >= nb
		})
		var total int64
		for _, v := range scratch {
			total += v
		}
		if total != 1<<20 {
			t.Fatalf("blocks cover %d of %d after flip", total, 1<<20)
		}
		runtime.GOMAXPROCS(2)
	}
}

func TestReduceSafeUnderConcurrentGOMAXPROCSFlips(t *testing.T) {
	// The default (nil) pool stays dynamic, so Reduce* snapshot internally:
	// a GOMAXPROCS flip between their NumBlocks sizing and BlockedForIdx
	// writes must never corrupt or crash the reduction.
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				runtime.GOMAXPROCS(1 + i%4)
			}
		}
	}()
	n := 1 << 16
	for iter := 0; iter < 100; iter++ {
		if got := ReduceInt(n, func(i int) int { return 1 }); got != n {
			t.Fatalf("iter %d: sum = %d, want %d", iter, got, n)
		}
	}
	close(stop)
	wg.Wait()
}

func TestBlockedForChunkedCoversDisjoint(t *testing.T) {
	// Force the chunk-claiming path (many grain-1 chunks, few workers) and
	// check the claimed chunks still tile [0, n) exactly once.
	ex := NewPool(4)
	n := 1 << 20
	seen := make([]int32, n)
	ex.BlockedFor(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestPoolsAreIndependent(t *testing.T) {
	// Two pools used concurrently must each honor their own budget — the
	// property the old SetWorkers global could not provide.
	var wg sync.WaitGroup
	for _, w := range []int{1, 2, 3, 5} {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := NewPool(w)
			for iter := 0; iter < 50; iter++ {
				if nb := ex.NumBlocks(1<<20, 1); nb != w {
					t.Errorf("pool(%d): NumBlocks = %d", w, nb)
					return
				}
				var total int64
				ex.BlockedFor(100000, 0, func(lo, hi int) {
					atomic.AddInt64(&total, int64(hi-lo))
				})
				if total != 100000 {
					t.Errorf("pool(%d): covered %d iterations", w, total)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPoolForCoversAllIndices(t *testing.T) {
	ex := NewPool(3)
	n := 4096
	seen := make([]int32, n)
	ex.For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.AddInt32(&a, 1) },
		func() { atomic.AddInt32(&b, 1) },
		func() { atomic.AddInt32(&c, 1) },
	)
	if a != 1 || b != 1 || c != 1 {
		t.Fatalf("Do skipped a branch: %d %d %d", a, b, c)
	}
	Do() // must not hang
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single-arg Do did not run")
	}
}

func TestDoNested(t *testing.T) {
	// Nested fork-join (divide and conquer) must not deadlock.
	var leaves int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			atomic.AddInt64(&leaves, 1)
			return
		}
		Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(10)
	if leaves != 1024 {
		t.Fatalf("leaves = %d, want 1024", leaves)
	}
}

func TestReduceIntMatchesSerial(t *testing.T) {
	f := func(xs []int16) bool {
		want := 0
		for _, x := range xs {
			want += int(x)
		}
		got := ReduceInt(len(xs), func(i int) int { return int(xs[i]) })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceFloat64Min(t *testing.T) {
	xs := []float64{5, 3, 9, -2, 7}
	got := ReduceFloat64Min(len(xs), 1e18, func(i int) float64 { return xs[i] })
	if got != -2 {
		t.Fatalf("min = %v, want -2", got)
	}
	if got := ReduceFloat64Min(0, 42, nil); got != 42 {
		t.Fatalf("empty min = %v, want identity 42", got)
	}
}

func TestReduceIntLarge(t *testing.T) {
	n := 1 << 20
	got := ReduceInt(n, func(i int) int { return 1 })
	if got != n {
		t.Fatalf("sum = %d, want %d", got, n)
	}
}
