package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolContextPlain(t *testing.T) {
	// Background contexts carry no cancellation; the pool must degrade to a
	// plain budget pool — with the default budget snapshotted at
	// construction, not re-read per call.
	if p := NewPoolContext(context.Background(), 0); p == nil || p.done != nil {
		t.Fatalf("NewPoolContext(Background, 0) = %v, want plain snapshot pool", p)
	}
	p := NewPoolContext(context.Background(), 3)
	if p.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", p.Workers())
	}
	if p.Cancelled() || p.Err() != nil {
		t.Fatal("background pool reports cancelled")
	}
	if NewPoolContext(nil, 2).Workers() != 2 {
		t.Fatal("nil ctx not treated as background")
	}
}

func TestPoolContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPoolContext(ctx, 4)
	if p.Cancelled() || p.Err() != nil {
		t.Fatal("pool cancelled before ctx")
	}
	if p.Workers() != 4 {
		t.Fatalf("Workers = %d, want 4", p.Workers())
	}
	cancel()
	if !p.Cancelled() {
		t.Fatal("pool not cancelled after ctx cancel")
	}
	if !errors.Is(p.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", p.Err())
	}
	// Pre-cancelled pools skip whole constructs.
	ran := atomic.Int64{}
	p.BlockedFor(100000, 1, func(lo, hi int) { ran.Add(1) })
	p.BlockedForIdx(100000, 1, func(b, lo, hi int) { ran.Add(1) })
	p.For(100000, func(i int) { ran.Add(1) })
	if got := ran.Load(); got != 0 {
		t.Fatalf("cancelled pool ran %d bodies, want 0", got)
	}
}

func TestForGrainStopsMidLoop(t *testing.T) {
	// Cancel from inside the element loop: the remaining iterations of every
	// block must stop within one cancellation stride.
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPoolContext(ctx, 4)
	const n = 1 << 20
	var ran atomic.Int64
	p.For(n, func(i int) {
		if ran.Add(1) == 100 {
			cancel()
		}
	})
	if got := ran.Load(); got >= n {
		t.Fatalf("loop ran all %d iterations despite cancellation", got)
	}
}

func TestBlockedForChunkedStopsClaiming(t *testing.T) {
	// Cancel from inside a chunk body on the chunk-claiming path: workers
	// must stop claiming, leaving most of the iteration space untouched.
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPoolContext(ctx, 2)
	const n = 1 << 20
	var ran atomic.Int64
	p.BlockedFor(n, 1, func(lo, hi int) {
		if ran.Add(int64(hi-lo)) >= 1024 {
			cancel()
		}
	})
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d iterations ran despite cancellation", got)
	}
	if p.Err() == nil {
		t.Fatal("Err must report the cancellation")
	}
}

func TestWorkerPanicIsWrapped(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if pe.Value != "boom" {
			t.Fatalf("PanicError.Value = %v, want boom", pe.Value)
		}
		if !strings.Contains(pe.Error(), "boom") || len(pe.Stack) == 0 {
			t.Fatalf("PanicError carries no useful context: %v", pe.Error())
		}
	}()
	NewPool(4).BlockedFor(1<<16, 1, func(lo, hi int) {
		if lo > 0 {
			panic("boom") // panic off the caller's goroutine
		}
	})
	t.Fatal("BlockedFor returned despite worker panic")
}

func TestNestedWorkerPanicKeepsInnerStack(t *testing.T) {
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatal("want *PanicError")
		}
		if pe.Value != "inner" {
			t.Fatalf("Value = %v, want inner", pe.Value)
		}
	}()
	p := NewPool(4)
	p.BlockedFor(1<<16, 1, func(lo, hi int) {
		p.BlockedFor(1<<16, 1, func(lo2, hi2 int) {
			if lo2 > 0 && lo > 0 {
				panic("inner")
			}
		})
	})
	t.Fatal("nested BlockedFor returned despite worker panic")
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok || pe.Value != "forked" {
			t.Fatalf("recovered %v, want PanicError(forked)", pe)
		}
	}()
	Do(
		func() { panic("forked") },
		func() {},
	)
	t.Fatal("Do returned despite forked panic")
}

func TestCancelledResultsUnconsumedContract(t *testing.T) {
	// Monotonicity: once any block has been skipped, every later construct
	// on the same pool skips too — the property multi-pass primitives'
	// index safety rests on.
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPoolContext(ctx, 4)
	cancel()
	first := atomic.Bool{}
	p.BlockedFor(1<<16, 1, func(lo, hi int) { first.Store(true) })
	later := atomic.Bool{}
	p.BlockedForIdx(1<<16, 1, func(b, lo, hi int) { later.Store(true) })
	if first.Load() || later.Load() {
		t.Fatal("cancelled pool ran a block")
	}
	if p.Err() == nil {
		t.Fatal("Err must report the cancellation the skipped blocks imply")
	}
}
