// Package parallel provides the fork-join primitives that the rest of the
// library is written against. It plays the role that the Cilk Plus
// work-stealing runtime plays in the paper: a data-parallel "par-for" with
// automatic granularity, binary fork-join for divide-and-conquer algorithms,
// and parallel reductions.
//
// Parallelism is budgeted by an explicit executor, Pool. A Pool is an
// immutable worker-count hint created per clustering run and threaded through
// every parallel construct, so concurrent runs with different budgets never
// observe each other's scaling (there is no package-level mutable state). A
// nil *Pool is valid everywhere and means "use GOMAXPROCS"; the package-level
// function forms are shorthands for that default pool.
//
// The scheduler is deliberately simple: every parallel loop partitions its
// iteration space into at most Workers() contiguous blocks and runs each block
// on its own goroutine. Nested parallel calls simply spawn more goroutines;
// the Go runtime multiplexes them onto GOMAXPROCS threads, which approximates
// the Brent-style W/P + D running time the paper's analysis assumes. Loops
// below a small grain run serially so that goroutine overhead never dominates
// (the coarse-granularity compensation called out in DESIGN.md).
package parallel

import (
	"runtime"
	"sync"
)

// Pool is an executor: an immutable parallelism budget for one clustering run
// (or any other unit of work). It carries no goroutines and no mutable state —
// it is only the worker-count hint every construct sizes its block partition
// by — so Pools are safe to share, copy, and use from any number of
// goroutines, and two Pools never interfere with each other.
//
// The zero value and the nil pointer both mean "all available CPUs".
type Pool struct {
	workers int
}

// NewPool returns a Pool that caps every construct at p goroutines.
// p <= 0 yields the default budget (GOMAXPROCS at each call).
func NewPool(p int) *Pool {
	if p <= 0 {
		return nil
	}
	return &Pool{workers: p}
}

// Default returns the default executor: a nil Pool, whose budget tracks
// runtime.GOMAXPROCS(0). It exists to make call sites that deliberately use
// the default read better than a bare nil.
func Default() *Pool { return nil }

// Workers reports the number of goroutines a parallel loop on this pool may
// use. Nil-safe: a nil (or zero) Pool reports GOMAXPROCS.
func (ex *Pool) Workers() int {
	if ex != nil && ex.workers > 0 {
		return ex.workers
	}
	return runtime.GOMAXPROCS(0)
}

// minGrain is the smallest per-goroutine block for element-wise loops.
// Below this, spawning is not worth it.
const minGrain = 512

// For runs f(i) for every i in [0, n) in parallel. The iteration space is cut
// into contiguous blocks; f must be safe to call concurrently for distinct i.
func (ex *Pool) For(n int, f func(i int)) {
	ex.ForGrain(n, 0, f)
}

// ForGrain is For with an explicit minimum grain (iterations per goroutine).
// grain <= 0 selects a default that keeps per-goroutine work above minGrain
// while using all workers on large inputs.
func (ex *Pool) ForGrain(n, grain int, f func(i int)) {
	ex.BlockedFor(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// BlockedFor partitions [0, n) into contiguous [lo, hi) blocks and runs
// body(lo, hi) for each block in parallel. This is the workhorse used by the
// primitives: it exposes the block structure so callers can keep per-block
// state (histograms, partial sums) without false sharing.
func (ex *Pool) BlockedFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := ex.Workers()
	if grain <= 0 {
		grain = minGrain
	}
	nblocks := (n + grain - 1) / grain
	if nblocks > p {
		nblocks = p
	}
	if nblocks <= 1 {
		body(0, n)
		return
	}
	bsize := (n + nblocks - 1) / nblocks
	var wg sync.WaitGroup
	for b := 0; b < nblocks; b++ {
		lo := b * bsize
		hi := lo + bsize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// NumBlocks reports how many blocks BlockedFor would use for n items with the
// given grain, so callers can pre-size per-block scratch arrays.
func (ex *Pool) NumBlocks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	p := ex.Workers()
	if grain <= 0 {
		grain = minGrain
	}
	nblocks := (n + grain - 1) / grain
	if nblocks > p {
		nblocks = p
	}
	if nblocks < 1 {
		nblocks = 1
	}
	return nblocks
}

// BlockedForIdx is BlockedFor that also passes the block index, for callers
// that write into per-block scratch slots.
func (ex *Pool) BlockedForIdx(n, grain int, body func(b, lo, hi int)) {
	if n <= 0 {
		return
	}
	nblocks := ex.NumBlocks(n, grain)
	if nblocks == 1 {
		body(0, 0, n)
		return
	}
	bsize := (n + nblocks - 1) / nblocks
	var wg sync.WaitGroup
	for b := 0; b < nblocks; b++ {
		lo := b * bsize
		hi := lo + bsize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			body(b, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
}

// ReduceInt computes the sum over i in [0, n) of f(i) with a parallel
// block-level reduction.
func (ex *Pool) ReduceInt(n int, f func(i int) int) int {
	nb := ex.NumBlocks(n, 0)
	if nb == 0 {
		return 0
	}
	partial := make([]int, nb)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[b] = s
	})
	total := 0
	for _, s := range partial {
		total += s
	}
	return total
}

// ReduceFloat64Min computes the minimum over i in [0, n) of f(i).
// Returns +Inf-like behaviour via the identity argument when n == 0.
func (ex *Pool) ReduceFloat64Min(n int, identity float64, f func(i int) float64) float64 {
	nb := ex.NumBlocks(n, 0)
	if nb == 0 {
		return identity
	}
	partial := make([]float64, nb)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		m := identity
		for i := lo; i < hi; i++ {
			if v := f(i); v < m {
				m = v
			}
		}
		partial[b] = m
	})
	m := identity
	for _, v := range partial {
		if v < m {
			m = v
		}
	}
	return m
}

// Do runs the given functions in parallel and waits for all of them. It is
// the binary (n-ary) fork of fork-join divide-and-conquer algorithms. Forks
// are unconditional (callers bound recursion depth with a worker budget), so
// Do needs no pool.
func Do(fs ...func()) {
	switch len(fs) {
	case 0:
		return
	case 1:
		fs[0]()
		return
	case 2:
		// Common case: run one half inline to halve goroutine count.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			fs[0]()
		}()
		fs[1]()
		wg.Wait()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[:len(fs)-1] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	fs[len(fs)-1]()
	wg.Wait()
}

// Package-level shorthands for the default (GOMAXPROCS) pool, for code with
// no per-call budget to honor: tests, benchmarks, and one-off tools.

// For runs f(i) for every i in [0, n) on the default pool.
func For(n int, f func(i int)) { Default().For(n, f) }

// ForGrain is For with an explicit minimum grain, on the default pool.
func ForGrain(n, grain int, f func(i int)) { Default().ForGrain(n, grain, f) }

// BlockedFor runs body over contiguous blocks of [0, n) on the default pool.
func BlockedFor(n, grain int, body func(lo, hi int)) { Default().BlockedFor(n, grain, body) }

// BlockedForIdx is BlockedFor with the block index, on the default pool.
func BlockedForIdx(n, grain int, body func(b, lo, hi int)) {
	Default().BlockedForIdx(n, grain, body)
}

// NumBlocks reports the default pool's block count for n items.
func NumBlocks(n, grain int) int { return Default().NumBlocks(n, grain) }

// ReduceInt sums f(i) over [0, n) on the default pool.
func ReduceInt(n int, f func(i int) int) int { return Default().ReduceInt(n, f) }

// ReduceFloat64Min minimizes f(i) over [0, n) on the default pool.
func ReduceFloat64Min(n int, identity float64, f func(i int) float64) float64 {
	return Default().ReduceFloat64Min(n, identity, f)
}

// Workers reports the default pool's worker budget (GOMAXPROCS).
func Workers() int { return Default().Workers() }
