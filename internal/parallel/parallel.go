// Package parallel provides the fork-join primitives that the rest of the
// library is written against. It plays the role that the Cilk Plus
// work-stealing runtime plays in the paper: a data-parallel "par-for" with
// automatic granularity, binary fork-join for divide-and-conquer algorithms,
// and parallel reductions.
//
// Parallelism is budgeted by an explicit executor, Pool. A Pool is an
// immutable worker-count hint created per clustering run and threaded through
// every parallel construct, so concurrent runs with different budgets never
// observe each other's scaling (there is no package-level mutable state). A
// nil *Pool is valid everywhere and means "use GOMAXPROCS"; the package-level
// function forms are shorthands for that default pool.
//
// A Pool may additionally carry a context.Context (NewPoolContext), making
// the whole run it is threaded through cooperatively cancellable: parallel
// loops check the context at grain boundaries — before each contiguous block,
// and periodically inside element-wise loops — and skip the remaining work
// once the context is done. Cancellation is monotone (once observed, every
// later check observes it), which gives callers a simple safety contract: a
// parallel construct on a cancelled pool may leave its outputs arbitrary, but
// any code that runs after it can detect the cancellation with Err() before
// consuming them. The per-element hot paths never pay more than an atomic
// load on the fast path.
//
// The scheduler spawns at most Workers() goroutines per loop. BlockedFor cuts
// the iteration space into grain-aligned chunks several times smaller than a
// worker's equal share and lets workers claim them off a shared atomic
// counter, so a straggler block (a skewed cell in a varden dataset) stalls
// one chunk, not one worker's whole share. BlockedForIdx and NumBlocks keep
// the static equal-block partition: multi-pass offset primitives size scratch
// by NumBlocks and index it by block, so their partition must be a pure
// function of (n, grain, workers). Nested parallel calls simply spawn more
// goroutines; the Go runtime multiplexes them onto GOMAXPROCS threads, which
// approximates the Brent-style W/P + D running time the paper's analysis
// assumes. Loops below a small grain run serially so that goroutine overhead
// never dominates (the coarse-granularity compensation called out in
// DESIGN.md).
//
// A panic inside a worker goroutine does not crash the process: it is
// recovered, wrapped in a *PanicError carrying the original value and stack,
// and re-panicked on the goroutine that invoked the parallel construct — from
// where it unwinds through nested constructs like any ordinary panic, so an
// API boundary can recover it once and surface it as an error.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is an executor: an immutable parallelism budget for one clustering run
// (or any other unit of work). It carries no goroutines and no mutable
// scheduling state — it is only the worker-count hint every construct sizes
// its block partition by, plus an optional cancellation context — so Pools
// are safe to share, copy, and use from any number of goroutines, and two
// Pools never interfere with each other.
//
// The zero value and the nil pointer both mean "all available CPUs, never
// cancelled".
type Pool struct {
	workers int

	// done is the carried context's cancellation channel (nil: the pool is
	// not cancellable). observed caches the first observation of the closure
	// so that the per-iteration checks are one atomic load on the fast path
	// instead of a channel select.
	ctx      context.Context
	done     <-chan struct{}
	observed *atomic.Bool
}

// NewPool returns a Pool that caps every construct at p goroutines.
// p <= 0 snapshots runtime.GOMAXPROCS(0) at construction: the budget is
// pinned for the pool's lifetime, so every NumBlocks / BlockedForIdx pair on
// the pool agrees on the block count even if GOMAXPROCS changes mid-run.
// (Only a nil *Pool — the package default — tracks GOMAXPROCS dynamically.)
func NewPool(p int) *Pool {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: p}
}

// NewPoolContext returns a Pool that caps every construct at p goroutines
// (p <= 0: GOMAXPROCS, snapshotted at construction like NewPool) and
// observes ctx: once ctx is done, every parallel construct on the pool skips
// its remaining blocks and Err() reports ctx.Err(). A nil or non-cancellable
// ctx (ctx.Done() == nil, e.g. context.Background()) yields a plain budget
// pool, identical to NewPool(p).
func NewPoolContext(ctx context.Context, p int) *Pool {
	if ctx == nil || ctx.Done() == nil {
		return NewPool(p)
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: p, ctx: ctx, done: ctx.Done(), observed: &atomic.Bool{}}
}

// snapshot returns a pool whose worker budget is pinned for its lifetime.
// Pools from NewPool/NewPoolContext already are; only a nil (default) pool
// needs pinning, which here costs one GOMAXPROCS read. Primitives that pair
// a NumBlocks-sized scratch with a later BlockedForIdx call snapshot first,
// so the two calls cannot disagree on the block count.
func (ex *Pool) snapshot() *Pool {
	if ex != nil {
		return ex
	}
	return &Pool{workers: runtime.GOMAXPROCS(0)}
}

// Cancelled reports whether the pool's context is done. Nil-safe; a pool
// without a context is never cancelled. The fast path (after the first
// observation, and for context-free pools) is at most one atomic load, so
// per-cell loops can afford to call it every iteration.
func (ex *Pool) Cancelled() bool {
	if ex == nil || ex.done == nil {
		return false
	}
	if ex.observed.Load() {
		return true
	}
	select {
	case <-ex.done:
		ex.observed.Store(true)
		return true
	default:
		return false
	}
}

// Err returns the pool context's error once the pool is cancelled, nil
// otherwise. Nil-safe. Phases call it at their boundaries to unwind a
// cancelled run promptly: a non-nil Err after a parallel construct also
// signals that the construct may have skipped blocks and its outputs must
// not be consumed.
func (ex *Pool) Err() error {
	if !ex.Cancelled() {
		return nil
	}
	return ex.ctx.Err()
}

// Done returns the pool context's cancellation channel, or nil for a pool
// with no context (a nil channel blocks forever in a select, which is the
// correct behavior for a never-cancelled pool). Callers that wait on events
// other than the pool's own loops — e.g. another run's in-flight structure
// build — select on it so cancellation stays prompt while blocked.
func (ex *Pool) Done() <-chan struct{} {
	if ex == nil {
		return nil
	}
	return ex.done
}

// PanicError wraps a panic recovered from a worker goroutine of a parallel
// construct. It unwinds to the construct's caller as a panic value and is
// converted to an ordinary error at the library's API boundaries, so a bug
// in a parallel phase surfaces from the run instead of crashing the process.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the stack trace of the panicking worker goroutine.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// panicSlot collects the first worker panic of one parallel construct.
type panicSlot struct {
	mu  sync.Mutex
	val *PanicError
}

// capture recovers a worker panic into the slot (first panic wins). Call via
// defer. A *PanicError re-panicked by a nested construct is forwarded as-is,
// keeping the innermost stack.
func (ps *panicSlot) capture() {
	r := recover()
	if r == nil {
		return
	}
	pe, ok := r.(*PanicError)
	if !ok {
		buf := make([]byte, 16<<10)
		pe = &PanicError{Value: r, Stack: buf[:runtime.Stack(buf, false)]}
	}
	ps.mu.Lock()
	if ps.val == nil {
		ps.val = pe
	}
	ps.mu.Unlock()
}

// rethrow re-panics the captured worker panic, if any, on the caller's
// goroutine. Call after the construct's WaitGroup has drained.
func (ps *panicSlot) rethrow() {
	if ps.val != nil {
		panic(ps.val)
	}
}

// Default returns the default executor: a nil Pool, whose budget tracks
// runtime.GOMAXPROCS(0). It exists to make call sites that deliberately use
// the default read better than a bare nil.
func Default() *Pool { return nil }

// Workers reports the number of goroutines a parallel loop on this pool may
// use. Pools built by NewPool / NewPoolContext report their snapshotted
// budget; a nil (or zero-value) Pool reports GOMAXPROCS at each call.
func (ex *Pool) Workers() int {
	if ex != nil && ex.workers > 0 {
		return ex.workers
	}
	return runtime.GOMAXPROCS(0)
}

// minGrain is the smallest per-goroutine block for element-wise loops.
// Below this, spawning is not worth it.
const minGrain = 512

// cancelStride is how many iterations an element-wise loop on a cancellable
// pool runs between cancellation checks. The check is an atomic load on the
// fast path; 64 iterations amortize even that to noise while keeping the
// worst-case cancellation latency of a loop at 64 body calls per worker.
const cancelStride = 64

// For runs f(i) for every i in [0, n) in parallel. The iteration space is cut
// into contiguous blocks; f must be safe to call concurrently for distinct i.
func (ex *Pool) For(n int, f func(i int)) {
	ex.ForGrain(n, 0, f)
}

// ForGrain is For with an explicit minimum grain (iterations per goroutine).
// grain <= 0 selects a default that keeps per-goroutine work above minGrain
// while using all workers on large inputs.
//
// On a cancellable pool the element loop checks the context every
// cancelStride iterations and stops early once it is done (grain-boundary
// cooperative cancellation); see the package comment for the consumption
// contract.
func (ex *Pool) ForGrain(n, grain int, f func(i int)) {
	if ex != nil && ex.done != nil {
		ex.BlockedFor(n, grain, func(lo, hi int) {
			// Strided: one cancellation check per cancelStride elements, with
			// no modulo in the element loop itself.
			for i := lo; i < hi; {
				if ex.Cancelled() {
					return
				}
				end := i + cancelStride
				if end > hi {
					end = hi
				}
				for ; i < end; i++ {
					f(i)
				}
			}
		})
		return
	}
	ex.BlockedFor(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// chunkOversub is how many chunks BlockedFor aims to hand each worker. More
// chunks mean finer load balancing on skewed per-element costs (varden cell
// loads); fewer mean less claim traffic and fewer body invocations (bodies
// often check out pooled scratch per call). 16 keeps the claim counter cold
// while bounding the straggler penalty at ~1/16 of a worker's share.
const chunkOversub = 16

// BlockedFor partitions [0, n) into contiguous [lo, hi) blocks and runs
// body(lo, hi) for each block in parallel. This is the workhorse used by the
// primitives: it exposes the block structure so callers can keep per-block
// state (histograms, partial sums) without false sharing.
//
// Scheduling is dynamic: the space is cut into grain-aligned chunks roughly
// chunkOversub times smaller than a worker's equal share, and at most
// Workers() goroutines claim chunks off a shared atomic counter until none
// remain. A body whose per-element cost is skewed (one dense cell among
// thousands of sparse ones) therefore delays one chunk, not the whole share
// of the worker it landed on. Blocks are still contiguous and disjoint and
// cover [0, n); only their number and assignment to goroutines differ from
// the static NumBlocks partition, which BlockedForIdx keeps.
//
// On a cancellable pool each chunk checks the context once before running and
// the construct stops claiming once it is done. Because cancellation is
// monotone — observing it sets a flag every later check reads — a multi-pass
// primitive stays index-safe: if any chunk of an earlier pass was skipped,
// every chunk of a later pass observes the cancellation and skips too, so
// offsets derived from a partial pass are never used for writes.
func (ex *Pool) BlockedFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := ex.Workers()
	if grain <= 0 {
		grain = minGrain
	}
	nblocks := (n + grain - 1) / grain
	if nblocks > p {
		nblocks = p
	}
	if nblocks <= 1 {
		if ex.Cancelled() {
			return
		}
		body(0, n)
		return
	}
	chunk := (n + nblocks*chunkOversub - 1) / (nblocks * chunkOversub)
	if chunk < grain {
		chunk = grain
	}
	nchunks := (n + chunk - 1) / chunk
	if nchunks <= nblocks {
		// Not enough chunks to rebalance: fall back to the static equal
		// split, one goroutine per block, as before.
		bsize := (n + nblocks - 1) / nblocks
		var wg sync.WaitGroup
		var ps panicSlot
		for b := 0; b < nblocks; b++ {
			lo := b * bsize
			hi := lo + bsize
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer ps.capture()
				if ex.Cancelled() {
					return
				}
				body(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		ps.rethrow()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var ps panicSlot
	wg.Add(nblocks)
	for w := 0; w < nblocks; w++ {
		go func() {
			defer wg.Done()
			defer ps.capture()
			for {
				t := int(next.Add(1)) - 1
				if t >= nchunks || ex.Cancelled() {
					return
				}
				lo := t * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	ps.rethrow()
}

// NumBlocks reports the static block count BlockedForIdx uses for n items
// with the given grain, so callers can pre-size per-block scratch arrays.
// The count is a pure function of (n, grain, Workers()); on pools from
// NewPool / NewPoolContext the budget is snapshotted, so a NumBlocks-sized
// scratch always matches a later BlockedForIdx on the same pool.
func (ex *Pool) NumBlocks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	p := ex.Workers()
	if grain <= 0 {
		grain = minGrain
	}
	nblocks := (n + grain - 1) / grain
	if nblocks > p {
		nblocks = p
	}
	if nblocks < 1 {
		nblocks = 1
	}
	return nblocks
}

// BlockedForIdx is the statically-partitioned variant of BlockedFor: exactly
// NumBlocks(n, grain) equal contiguous blocks, one goroutine each, with the
// block index passed to the body. Callers that write into per-block scratch
// slots (multi-pass offset primitives) rely on this partition being a pure
// function of (n, grain, Workers()), so it does not use chunk claiming.
func (ex *Pool) BlockedForIdx(n, grain int, body func(b, lo, hi int)) {
	if n <= 0 {
		return
	}
	nblocks := ex.NumBlocks(n, grain)
	if nblocks == 1 {
		if ex.Cancelled() {
			return
		}
		body(0, 0, n)
		return
	}
	bsize := (n + nblocks - 1) / nblocks
	var wg sync.WaitGroup
	var ps panicSlot
	for b := 0; b < nblocks; b++ {
		lo := b * bsize
		hi := lo + bsize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			defer ps.capture()
			if ex.Cancelled() {
				return
			}
			body(b, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
	ps.rethrow()
}

// ReduceInt computes the sum over i in [0, n) of f(i) with a parallel
// block-level reduction.
func (ex *Pool) ReduceInt(n int, f func(i int) int) int {
	ex = ex.snapshot()
	nb := ex.NumBlocks(n, 0)
	if nb == 0 {
		return 0
	}
	partial := make([]int, nb)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[b] = s
	})
	total := 0
	for _, s := range partial {
		total += s
	}
	return total
}

// ReduceFloat64Min computes the minimum over i in [0, n) of f(i).
// Returns +Inf-like behaviour via the identity argument when n == 0.
func (ex *Pool) ReduceFloat64Min(n int, identity float64, f func(i int) float64) float64 {
	ex = ex.snapshot()
	nb := ex.NumBlocks(n, 0)
	if nb == 0 {
		return identity
	}
	partial := make([]float64, nb)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		m := identity
		for i := lo; i < hi; i++ {
			if v := f(i); v < m {
				m = v
			}
		}
		partial[b] = m
	})
	m := identity
	for _, v := range partial {
		if v < m {
			m = v
		}
	}
	return m
}

// Do runs the given functions in parallel and waits for all of them. It is
// the binary (n-ary) fork of fork-join divide-and-conquer algorithms. Forks
// are unconditional (callers bound recursion depth with a worker budget), so
// Do needs no pool. A panic in a forked function is recovered and re-panicked
// on the calling goroutine after all forks have finished (a panic in the
// inline function propagates natively, after the forked ones drain).
func Do(fs ...func()) {
	switch len(fs) {
	case 0:
		return
	case 1:
		fs[0]()
		return
	case 2:
		// Common case: run one half inline to halve goroutine count.
		var wg sync.WaitGroup
		var ps panicSlot
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ps.capture()
			fs[0]()
		}()
		defer func() {
			wg.Wait()
			ps.rethrow()
		}()
		fs[1]()
		return
	}
	var wg sync.WaitGroup
	var ps panicSlot
	wg.Add(len(fs) - 1)
	for _, f := range fs[:len(fs)-1] {
		go func(f func()) {
			defer wg.Done()
			defer ps.capture()
			f()
		}(f)
	}
	defer func() {
		wg.Wait()
		ps.rethrow()
	}()
	fs[len(fs)-1]()
}

// Package-level shorthands for the default (GOMAXPROCS) pool, for code with
// no per-call budget to honor: tests, benchmarks, and one-off tools.

// For runs f(i) for every i in [0, n) on the default pool.
func For(n int, f func(i int)) { Default().For(n, f) }

// ForGrain is For with an explicit minimum grain, on the default pool.
func ForGrain(n, grain int, f func(i int)) { Default().ForGrain(n, grain, f) }

// BlockedFor runs body over contiguous blocks of [0, n) on the default pool.
func BlockedFor(n, grain int, body func(lo, hi int)) { Default().BlockedFor(n, grain, body) }

// BlockedForIdx is BlockedFor with the block index, on the default pool.
func BlockedForIdx(n, grain int, body func(b, lo, hi int)) {
	Default().BlockedForIdx(n, grain, body)
}

// NumBlocks reports the default pool's block count for n items.
func NumBlocks(n, grain int) int { return Default().NumBlocks(n, grain) }

// ReduceInt sums f(i) over [0, n) on the default pool.
func ReduceInt(n int, f func(i int) int) int { return Default().ReduceInt(n, f) }

// ReduceFloat64Min minimizes f(i) over [0, n) on the default pool.
func ReduceFloat64Min(n int, identity float64, f func(i int) float64) float64 {
	return Default().ReduceFloat64Min(n, identity, f)
}

// Workers reports the default pool's worker budget (GOMAXPROCS).
func Workers() int { return Default().Workers() }
