// Package parallel provides the fork-join primitives that the rest of the
// library is written against. It plays the role that the Cilk Plus
// work-stealing runtime plays in the paper: a data-parallel "par-for" with
// automatic granularity, binary fork-join for divide-and-conquer algorithms,
// and parallel reductions.
//
// The scheduler is deliberately simple: every parallel loop partitions its
// iteration space into at most Workers() contiguous blocks and runs each block
// on its own goroutine. Nested parallel calls simply spawn more goroutines;
// the Go runtime multiplexes them onto GOMAXPROCS threads, which approximates
// the Brent-style W/P + D running time the paper's analysis assumes. Loops
// below a small grain run serially so that goroutine overhead never dominates
// (the coarse-granularity compensation called out in DESIGN.md).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers, when positive, caps the number of goroutines any single
// parallel construct spawns. Zero means "use GOMAXPROCS".
var maxWorkers int64

// SetWorkers caps the parallelism of every construct in this package.
// p <= 0 resets to the default (GOMAXPROCS at call time). It returns the
// previous cap (0 if none was set). The benchmark harness uses this together
// with runtime.GOMAXPROCS to run thread-count sweeps.
func SetWorkers(p int) int {
	old := atomic.LoadInt64(&maxWorkers)
	if p <= 0 {
		atomic.StoreInt64(&maxWorkers, 0)
	} else {
		atomic.StoreInt64(&maxWorkers, int64(p))
	}
	return int(old)
}

// Workers reports the number of goroutines a parallel loop may use.
func Workers() int {
	if p := atomic.LoadInt64(&maxWorkers); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// minGrain is the smallest per-goroutine block for element-wise loops.
// Below this, spawning is not worth it.
const minGrain = 512

// For runs f(i) for every i in [0, n) in parallel. The iteration space is cut
// into contiguous blocks; f must be safe to call concurrently for distinct i.
func For(n int, f func(i int)) {
	ForGrain(n, 0, f)
}

// ForGrain is For with an explicit minimum grain (iterations per goroutine).
// grain <= 0 selects a default that keeps per-goroutine work above minGrain
// while using all workers on large inputs.
func ForGrain(n, grain int, f func(i int)) {
	BlockedFor(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// BlockedFor partitions [0, n) into contiguous [lo, hi) blocks and runs
// body(lo, hi) for each block in parallel. This is the workhorse used by the
// primitives: it exposes the block structure so callers can keep per-block
// state (histograms, partial sums) without false sharing.
func BlockedFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if grain <= 0 {
		grain = minGrain
	}
	nblocks := (n + grain - 1) / grain
	if nblocks > p {
		nblocks = p
	}
	if nblocks <= 1 {
		body(0, n)
		return
	}
	bsize := (n + nblocks - 1) / nblocks
	var wg sync.WaitGroup
	for b := 0; b < nblocks; b++ {
		lo := b * bsize
		hi := lo + bsize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// NumBlocks reports how many blocks BlockedFor would use for n items with the
// given grain, so callers can pre-size per-block scratch arrays.
func NumBlocks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	p := Workers()
	if grain <= 0 {
		grain = minGrain
	}
	nblocks := (n + grain - 1) / grain
	if nblocks > p {
		nblocks = p
	}
	if nblocks < 1 {
		nblocks = 1
	}
	return nblocks
}

// BlockedForIdx is BlockedFor that also passes the block index, for callers
// that write into per-block scratch slots.
func BlockedForIdx(n, grain int, body func(b, lo, hi int)) {
	if n <= 0 {
		return
	}
	nblocks := NumBlocks(n, grain)
	if nblocks == 1 {
		body(0, 0, n)
		return
	}
	bsize := (n + nblocks - 1) / nblocks
	var wg sync.WaitGroup
	for b := 0; b < nblocks; b++ {
		lo := b * bsize
		hi := lo + bsize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			body(b, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
}

// Do runs the given functions in parallel and waits for all of them. It is
// the binary (n-ary) fork of fork-join divide-and-conquer algorithms.
func Do(fs ...func()) {
	switch len(fs) {
	case 0:
		return
	case 1:
		fs[0]()
		return
	case 2:
		// Common case: run one half inline to halve goroutine count.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			fs[0]()
		}()
		fs[1]()
		wg.Wait()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[:len(fs)-1] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	fs[len(fs)-1]()
	wg.Wait()
}

// ReduceInt computes the sum over i in [0, n) of f(i) with a parallel
// block-level reduction.
func ReduceInt(n int, f func(i int) int) int {
	nb := NumBlocks(n, 0)
	if nb == 0 {
		return 0
	}
	partial := make([]int, nb)
	BlockedForIdx(n, 0, func(b, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[b] = s
	})
	total := 0
	for _, s := range partial {
		total += s
	}
	return total
}

// ReduceFloat64Min computes the minimum over i in [0, n) of f(i).
// Returns +Inf-like behaviour via the identity argument when n == 0.
func ReduceFloat64Min(n int, identity float64, f func(i int) float64) float64 {
	nb := NumBlocks(n, 0)
	if nb == 0 {
		return identity
	}
	partial := make([]float64, nb)
	BlockedForIdx(n, 0, func(b, lo, hi int) {
		m := identity
		for i := lo; i < hi; i++ {
			if v := f(i); v < m {
				m = v
			}
		}
		partial[b] = m
	})
	m := identity
	for _, v := range partial {
		if v < m {
			m = v
		}
	}
	return m
}
