//go:build !linux

package cellstore

import (
	"fmt"
	"os"
)

// mapRange, on platforms without the mmap path, reads the window into an
// anonymous buffer. Residency accounting is unchanged: the buffer is the
// resident set, released when the Mapping is.
func mapRange(f *os.File, byteLo, byteLen int64, k, pointLo int) (*Mapping, error) {
	b := make([]byte, byteLen)
	if _, err := f.ReadAt(b, byteLo); err != nil {
		return nil, fmt.Errorf("cellstore: reading window [%d,%d): %w", byteLo, byteLo+byteLen, err)
	}
	return &Mapping{
		Data:    float64View(b, k),
		PointLo: pointLo,
		Bytes:   byteLen,
	}, nil
}
