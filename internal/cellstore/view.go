package cellstore

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// float64View reinterprets b as k float64s without copying. Mapped windows
// are page-aligned and the data section starts on an 8-byte boundary, so the
// aligned fast path is the norm; a misaligned base (possible only for
// in-memory images handed to Decode by a caller) falls back to a copy.
func float64View(b []byte, k int) []float64 {
	if k == 0 {
		return nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 == 0 {
		return unsafe.Slice((*float64)(p), k)
	}
	out := make([]float64, k)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
