package cellstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"pdbscan/internal/grid"
)

// Write persists the grid cell structure c, laid out shard-contiguously by
// part, to path (via a temp file + rename, so a crash never leaves a partial
// store behind). c must be a grid construction (Coords non-nil) and part a
// partition of exactly c's cells.
func Write(path string, c *grid.Cells, part *grid.Partition) error {
	if c.Coords == nil || c.Anchor == nil {
		return fmt.Errorf("cellstore: only the grid construction can be persisted (box cells have no lattice coords)")
	}
	n, d := c.Pts.N, c.Pts.D
	numCells := c.NumCells()
	if n == 0 {
		return fmt.Errorf("cellstore: refusing to write an empty store")
	}
	if d > maxDims {
		return fmt.Errorf("cellstore: %d dims exceeds format limit %d", d, maxDims)
	}
	if part == nil || len(part.ShardOf) != numCells {
		return fmt.Errorf("cellstore: partition does not match the cell structure")
	}
	shards := part.NumShards
	if shards > maxShards {
		return fmt.Errorf("cellstore: %d shards exceeds format limit %d", shards, maxShards)
	}

	// Store cell order: shard 0's owned cells (ascending original id), then
	// shard 1's, ... — the layout that makes any shard's halo window one
	// contiguous byte range.
	order := make([]int32, 0, numCells)
	shardEnd := make([]uint32, shards)
	winLo := make([]uint32, shards)
	winHi := make([]uint32, shards)
	for s := 0; s < shards; s++ {
		order = append(order, part.Owned[s]...)
		shardEnd[s] = uint32(len(order))
		lo, hi := s, s
		for _, g := range part.Halo[s] {
			if o := int(part.ShardOf[g]); o < lo {
				lo = o
			} else if o > hi {
				hi = o
			}
		}
		winLo[s], winHi[s] = uint32(lo), uint32(hi)
	}
	if len(order) != numCells {
		return fmt.Errorf("cellstore: partition owns %d cells, structure has %d", len(order), numCells)
	}

	metaLen := metaSize(d, n, numCells, shards)
	meta := make([]byte, 0, metaLen)
	putU32 := func(v uint32) { meta = binary.LittleEndian.AppendUint32(meta, v) }
	putU64 := func(v uint64) { meta = binary.LittleEndian.AppendUint64(meta, v) }
	for _, a := range c.Anchor {
		putU64(uint64(a))
	}
	pos := uint32(0)
	putU32(0)
	for _, g := range order {
		pos += uint32(c.CellSize(int(g)))
		putU32(pos)
	}
	for _, v := range shardEnd {
		putU32(v)
	}
	for _, v := range winLo {
		putU32(v)
	}
	for _, v := range winHi {
		putU32(v)
	}
	for _, g := range order {
		for j := 0; j < d; j++ {
			putU32(uint32(c.Coords[int(g)*d+j]))
		}
	}
	for _, g := range order {
		putU32(uint32(g))
	}
	for _, g := range order {
		for _, p := range c.PointsOf(int(g)) {
			putU32(uint32(p))
		}
	}
	if uint64(len(meta)) != metaLen {
		return fmt.Errorf("cellstore: internal error: metadata is %d bytes, expected %d", len(meta), metaLen)
	}

	dataOff := uint64(headerSize) + metaLen
	dataOff = (dataOff + pageAlign - 1) / pageAlign * pageAlign

	var hdr [headerSize]byte
	copy(hdr[0:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(d))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(numCells))
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(shards))
	binary.LittleEndian.PutUint64(hdr[40:48], math.Float64bits(c.Eps))
	binary.LittleEndian.PutUint64(hdr[48:56], dataOff)
	sum := fnvSum(fnvSum(fnvNew(), hdr[0:56]), meta)
	binary.LittleEndian.PutUint64(hdr[56:64], sum)

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	w := bufio.NewWriterSize(f, 1<<20)
	w.Write(hdr[:])
	w.Write(meta)
	for pad := dataOff - uint64(headerSize) - metaLen; pad > 0; pad-- {
		w.WriteByte(0)
	}
	var row [8]byte
	for _, g := range order {
		for _, p := range c.PointsOf(int(g)) {
			base := int(p) * d
			for j := 0; j < d; j++ {
				binary.LittleEndian.PutUint64(row[:], math.Float64bits(c.Pts.Data[base+j]))
				if _, err := w.Write(row[:]); err != nil {
					f.Close()
					return err
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
