//go:build linux

package cellstore

import (
	"fmt"
	"os"
	"syscall"
)

// mapRange mmaps [byteLo, byteLo+byteLen) of f read-only and returns it as a
// float64 window of k values. The mmap offset must be page-aligned, so the
// mapping starts at the enclosing page boundary; the reported Bytes is the
// full mapped length — that is what the kernel can make resident, and what
// the residency budget must account for.
func mapRange(f *os.File, byteLo, byteLen int64, k, pointLo int) (*Mapping, error) {
	pageSize := int64(os.Getpagesize())
	pageOff := byteLo - byteLo%pageSize
	delta := byteLo - pageOff
	mapLen := delta + byteLen
	b, err := syscall.Mmap(int(f.Fd()), pageOff, int(mapLen),
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("cellstore: mmap [%d,%d): %w", pageOff, pageOff+mapLen, err)
	}
	return &Mapping{
		Data:    float64View(b[delta:], k),
		PointLo: pointLo,
		Bytes:   mapLen,
		release: func() { syscall.Munmap(b) },
	}, nil
}
