// Package cellstore persists a grid cell structure (internal/grid.Cells plus
// its shard Partition) as a flat, versioned, mmap-able file, so that a run can
// page point data in one shard window at a time instead of holding the whole
// dataset in RAM (the out-of-core mode of core.RunOutOfCore), and so that a
// server can snapshot streaming state across restarts.
//
// # Layout (version 1, all integers little-endian)
//
//	offset  size
//	0       8      magic "PDBSCEL1"
//	8       4      version (uint32, = 1)
//	12      4      dims (uint32)
//	16      8      numPoints n (uint64)
//	24      8      numCells c (uint64)
//	32      4      numShards (uint32)
//	36      4      reserved (0)
//	40      8      eps (float64 bits)
//	48      8      dataOff (uint64, multiple of 8; page-aligned when written)
//	56      8      FNV-64a checksum of bytes [0,56) and [64, 64+metaLen)
//	64      —      metadata:
//	                 anchor       [d]int64      absolute lattice anchor
//	                 cellStart    [c+1]uint32   point extents, store order
//	                 shardCellEnd [S]uint32     shard s owns store cells
//	                                            [shardCellEnd[s-1], shardCellEnd[s])
//	                 winLo, winHi [S]uint32     halo window of shard s in shards
//	                 coords       [c*d]int32    lattice coords relative to anchor
//	                 origCell     [c]uint32     writer's grid cell id per store cell
//	                 origIdx      [n]uint32     original point index per store row
//	...padding to dataOff...
//	dataOff n*d*8  float64 point rows, store order
//
// Store order is shard-contiguous: the cells of shard 0 (ascending original
// cell id), then shard 1, and so on — so the halo window of any shard is one
// contiguous byte range of the data section and maps as a single mmap call.
// origCell and origIdx record the permutation back to the writer's grid cell
// ids and point order; the out-of-core engine runs its union-find over
// original cell ids and scatters outputs through origIdx, which is what makes
// its labels bit-identical to an in-RAM run.
//
// The checksum covers the header and metadata only — the point payload can be
// tens of gigabytes and is exactly the part mmap'd on demand, so it is
// validated structurally (size bound) rather than hashed at open.
package cellstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

const (
	// Magic identifies a cell store file (version in the following u32).
	Magic = "PDBSCEL1"
	// Version is the current format version.
	Version = 1

	headerSize = 64
	// pageAlign is the alignment of dataOff chosen by the writer. Readers
	// only require multiple-of-8 (the float64 view), so the format stays
	// valid on hosts with larger pages.
	pageAlign = 4096

	maxDims   = 1 << 9
	maxShards = 1 << 20
)

// Store is a read handle on a cell store file. Metadata (O(n+c) integers) is
// held in memory; point data is mapped on demand with MapPoints, which is the
// unit of residency the out-of-core engine accounts against its budget.
type Store struct {
	d, n, c, shards int
	eps, side       float64
	dataOff         int64

	anchor    []int64
	cellStart []uint32 // len c+1, point extents in store order
	shardEnd  []uint32 // len shards, cumulative cell counts
	winLo     []uint32 // len shards
	winHi     []uint32
	coords    []int32  // c*d, relative to anchor
	origCell  []uint32 // len c
	origIdx   []uint32 // len n

	f   *os.File // nil for in-memory stores (Decode)
	mem []byte   // in-memory image; point windows are served as views
}

// Open opens a cell store file for reading, validating the header, checksum,
// and metadata invariants before returning.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("cellstore: %s: reading header: %w", path, err)
	}
	st, err := parseHeader(hdr[:], fi.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("cellstore: %s: %w", path, err)
	}
	// Read header+metadata in one shot; the data section stays on disk.
	meta := make([]byte, st.dataOff)
	if _, err := f.ReadAt(meta, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("cellstore: %s: reading metadata: %w", path, err)
	}
	if err := st.parseMeta(meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("cellstore: %s: %w", path, err)
	}
	st.f = f
	return st, nil
}

// Decode parses an in-memory store image. Point windows are served as views
// of data (no copies). Used by tests and the decode fuzzer; Open is the file
// path. Decode never panics on corrupt input and allocates no buffer larger
// than the image itself.
func Decode(data []byte) (*Store, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("cellstore: image shorter than header (%d bytes)", len(data))
	}
	st, err := parseHeader(data[:headerSize], int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("cellstore: %w", err)
	}
	if err := st.parseMeta(data[:st.dataOff]); err != nil {
		return nil, fmt.Errorf("cellstore: %w", err)
	}
	st.mem = data
	return st, nil
}

// parseHeader validates the fixed header against the total image/file size
// and returns a Store with the scalar fields set. Every count is bounded
// against the actual size before anything is allocated, so a corrupt header
// cannot trigger a huge allocation.
func parseHeader(hdr []byte, totalSize int64) (*Store, error) {
	if string(hdr[0:8]) != Magic {
		return nil, fmt.Errorf("bad magic %q", hdr[0:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version != Version {
		return nil, fmt.Errorf("unsupported version %d (want %d)", version, Version)
	}
	d := binary.LittleEndian.Uint32(hdr[12:16])
	n := binary.LittleEndian.Uint64(hdr[16:24])
	c := binary.LittleEndian.Uint64(hdr[24:32])
	shards := binary.LittleEndian.Uint32(hdr[32:36])
	eps := math.Float64frombits(binary.LittleEndian.Uint64(hdr[40:48]))
	dataOff := binary.LittleEndian.Uint64(hdr[48:56])

	if d == 0 || d > maxDims {
		return nil, fmt.Errorf("dims %d out of range [1,%d]", d, maxDims)
	}
	if n == 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("point count %d out of range [1,2^31)", n)
	}
	if c == 0 || c > n {
		return nil, fmt.Errorf("cell count %d out of range [1,n=%d]", c, n)
	}
	if shards == 0 || uint64(shards) > c || shards > maxShards {
		return nil, fmt.Errorf("shard count %d out of range [1,min(c,%d)]", shards, maxShards)
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("eps %v not a positive finite value", eps)
	}
	metaLen := metaSize(int(d), int(n), int(c), int(shards))
	if dataOff%8 != 0 || dataOff < headerSize+metaLen {
		return nil, fmt.Errorf("dataOff %d invalid (metadata needs %d bytes)", dataOff, headerSize+metaLen)
	}
	need := dataOff + n*uint64(d)*8
	if need > uint64(totalSize) {
		return nil, fmt.Errorf("file is %d bytes, need %d for %d points", totalSize, need, n)
	}
	return &Store{
		d:       int(d),
		n:       int(n),
		c:       int(c),
		shards:  int(shards),
		eps:     eps,
		side:    eps / math.Sqrt(float64(d)),
		dataOff: int64(dataOff),
	}, nil
}

func metaSize(d, n, c, shards int) uint64 {
	return 8*uint64(d) + // anchor
		4*uint64(c+1) + // cellStart
		12*uint64(shards) + // shardCellEnd, winLo, winHi
		4*uint64(c)*uint64(d) + // coords
		4*uint64(c) + // origCell
		4*uint64(n) // origIdx
}

// parseMeta verifies the checksum over img (header + metadata) and decodes the
// metadata arrays into owned slices, then validates every structural
// invariant the engine relies on (monotone extents, window bounds,
// permutation-ness of origCell/origIdx).
func (st *Store) parseMeta(img []byte) error {
	metaLen := metaSize(st.d, st.n, st.c, st.shards)
	if uint64(len(img)) < headerSize+metaLen {
		return fmt.Errorf("metadata truncated: have %d bytes, need %d", len(img), headerSize+metaLen)
	}
	h := fnvNew()
	h = fnvSum(h, img[0:56])
	h = fnvSum(h, img[headerSize:headerSize+int(metaLen)])
	want := binary.LittleEndian.Uint64(img[56:64])
	if h != want {
		return fmt.Errorf("checksum mismatch: computed %016x, header says %016x", h, want)
	}

	off := headerSize
	i64s := func(k int) []int64 {
		out := make([]int64, k)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(img[off:]))
			off += 8
		}
		return out
	}
	u32s := func(k int) []uint32 {
		out := make([]uint32, k)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(img[off:])
			off += 4
		}
		return out
	}
	i32s := func(k int) []int32 {
		out := make([]int32, k)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(img[off:]))
			off += 4
		}
		return out
	}
	st.anchor = i64s(st.d)
	st.cellStart = u32s(st.c + 1)
	st.shardEnd = u32s(st.shards)
	st.winLo = u32s(st.shards)
	st.winHi = u32s(st.shards)
	st.coords = i32s(st.c * st.d)
	st.origCell = u32s(st.c)
	st.origIdx = u32s(st.n)

	if st.cellStart[0] != 0 || st.cellStart[st.c] != uint32(st.n) {
		return fmt.Errorf("cell extents do not cover [0,%d)", st.n)
	}
	for g := 0; g < st.c; g++ {
		if st.cellStart[g] >= st.cellStart[g+1] {
			return fmt.Errorf("cell %d empty or extents not increasing", g)
		}
	}
	prev := uint32(0)
	for s := 0; s < st.shards; s++ {
		if st.shardEnd[s] < prev || st.shardEnd[s] > uint32(st.c) {
			return fmt.Errorf("shard cell boundaries not monotone")
		}
		prev = st.shardEnd[s]
		if int(st.winLo[s]) > s || int(st.winHi[s]) < s || st.winHi[s] >= uint32(st.shards) {
			return fmt.Errorf("shard %d window [%d,%d] does not contain it", s, st.winLo[s], st.winHi[s])
		}
	}
	if st.shardEnd[st.shards-1] != uint32(st.c) {
		return fmt.Errorf("shard cell boundaries do not cover all %d cells", st.c)
	}
	if err := checkPermutation(st.origCell, st.c, "origCell"); err != nil {
		return err
	}
	if err := checkPermutation(st.origIdx, st.n, "origIdx"); err != nil {
		return err
	}
	return nil
}

// checkPermutation verifies that a is a permutation of [0,k).
func checkPermutation(a []uint32, k int, name string) error {
	seen := make([]bool, k)
	for _, v := range a {
		if int(v) >= k || seen[v] {
			return fmt.Errorf("%s is not a permutation of [0,%d)", name, k)
		}
		seen[v] = true
	}
	return nil
}

// Close releases the file handle. In-flight Mappings stay valid until their
// own Release (mmap regions outlive the descriptor).
func (st *Store) Close() error {
	if st.f != nil {
		err := st.f.Close()
		st.f = nil
		return err
	}
	return nil
}

// Dims returns the point dimensionality.
func (st *Store) Dims() int { return st.d }

// NumPoints returns the number of points.
func (st *Store) NumPoints() int { return st.n }

// NumCells returns the number of cells.
func (st *Store) NumCells() int { return st.c }

// NumShards returns the number of shards the store was written with.
func (st *Store) NumShards() int { return st.shards }

// Eps returns the radius the cell lattice was built for.
func (st *Store) Eps() float64 { return st.eps }

// Side returns the lattice cell side, eps/sqrt(d).
func (st *Store) Side() float64 { return st.side }

// DatasetBytes returns the size of the point payload.
func (st *Store) DatasetBytes() int64 { return int64(st.n) * int64(st.d) * 8 }

// ShardCells returns the store cell index range [lo,hi) owned by shard s.
func (st *Store) ShardCells(s int) (lo, hi int) {
	if s > 0 {
		lo = int(st.shardEnd[s-1])
	}
	return lo, int(st.shardEnd[s])
}

// Window returns the contiguous shard range [loShard,hiShard] that must be
// resident to mark and stitch shard s: s itself plus every shard owning one
// of its halo cells. Shard-contiguous store order makes this one byte range.
func (st *Store) Window(s int) (loShard, hiShard int) {
	return int(st.winLo[s]), int(st.winHi[s])
}

// CellPointStart returns the store point index where cell sc's rows begin;
// CellPointStart(NumCells()) == NumPoints().
func (st *Store) CellPointStart(sc int) int { return int(st.cellStart[sc]) }

// OrigCell returns the writer's grid cell id of store cell sc.
func (st *Store) OrigCell(sc int) int32 { return int32(st.origCell[sc]) }

// OrigIdx returns the original point index per store row (a view; do not
// mutate).
func (st *Store) OrigIdx() []uint32 { return st.origIdx }

// AbsCoord returns the absolute lattice coordinate of store cell sc in
// dimension j — the same quantity grid.(*Cells).AbsCoord returns for the
// matching cell of any build over these points, which is what lets the
// out-of-core engine match window-local cells to store cells exactly.
func (st *Store) AbsCoord(sc, j int) int64 {
	return st.anchor[j] + int64(st.coords[sc*st.d+j])
}

// Mapping is a resident window of point data: the rows of store cells
// [CellLo,CellHi), as a float64 view. Bytes is the actual number of bytes
// made resident (page rounding included) — the figure the out-of-core engine
// charges against Config.MaxResidentBytes.
type Mapping struct {
	Data    []float64 // rows of points [PointLo, PointLo+len/d), store order
	PointLo int       // store point index of Data's first row
	Bytes   int64
	release func()
}

// Release unmaps the window. The Data view is invalid afterwards.
func (m *Mapping) Release() {
	if m.release != nil {
		m.release()
		m.release = nil
	}
	m.Data = nil
}

// MapPoints makes the rows of store cells [cellLo, cellHi) resident and
// returns the window. File-backed stores mmap the byte range read-only (one
// syscall — store order is shard-contiguous by construction); in-memory
// stores return a view.
func (st *Store) MapPoints(cellLo, cellHi int) (*Mapping, error) {
	if cellLo < 0 || cellHi > st.c || cellLo >= cellHi {
		return nil, fmt.Errorf("cellstore: MapPoints range [%d,%d) invalid for %d cells", cellLo, cellHi, st.c)
	}
	pLo := int(st.cellStart[cellLo])
	pHi := int(st.cellStart[cellHi])
	byteLo := st.dataOff + int64(pLo)*int64(st.d)*8
	byteLen := int64(pHi-pLo) * int64(st.d) * 8
	if st.mem != nil {
		return &Mapping{
			Data:    float64View(st.mem[byteLo:byteLo+byteLen], (pHi-pLo)*st.d),
			PointLo: pLo,
			Bytes:   byteLen,
		}, nil
	}
	if st.f == nil {
		return nil, fmt.Errorf("cellstore: store is closed")
	}
	return mapRange(st.f, byteLo, byteLen, (pHi-pLo)*st.d, pLo)
}
