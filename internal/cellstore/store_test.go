package cellstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
)

// buildStore writes a small real store and returns its path plus the source
// structure for cross-checking.
func buildStore(t testing.TB, n, d, shards int, seed int64) (string, *grid.Cells, *grid.Partition) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := geom.Points{N: n, D: d, Data: make([]float64, n*d)}
	for i := range pts.Data {
		pts.Data[i] = rng.Float64() * 50
	}
	ex := parallel.NewPool(2)
	cells := grid.BuildGrid(ex, pts, 2.5)
	cells.ComputeNeighborsEnum(ex)
	part, err := grid.MakePartition(ex, cells, shards)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.cells")
	if err := Write(path, cells, part); err != nil {
		t.Fatal(err)
	}
	return path, cells, part
}

func TestWriteOpenRoundTrip(t *testing.T) {
	const n, d, shards = 700, 3, 5
	path, cells, part := buildStore(t, n, d, shards, 42)
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if st.NumPoints() != n || st.Dims() != d || st.NumCells() != cells.NumCells() {
		t.Fatalf("shape: %d pts %d dims %d cells", st.NumPoints(), st.Dims(), st.NumCells())
	}
	if st.NumShards() != part.NumShards {
		t.Fatalf("shards %d vs %d", st.NumShards(), part.NumShards)
	}
	if st.Eps() != cells.Eps {
		t.Fatalf("eps %v vs %v", st.Eps(), cells.Eps)
	}

	// Windows: each shard's window contains the shard itself and is ordered.
	for s := 0; s < st.NumShards(); s++ {
		lo, hi := st.Window(s)
		if lo > s || hi < s || hi >= st.NumShards() {
			t.Fatalf("window of shard %d: [%d,%d]", s, lo, hi)
		}
	}

	// Every stored point must round-trip to the original coordinates, and
	// origCell must name a cell with matching lattice coords.
	m, err := st.MapPoints(0, st.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	for g := 0; g < st.NumCells(); g++ {
		og := int(st.OrigCell(g))
		for j := 0; j < d; j++ {
			if st.AbsCoord(g, j) != cells.AbsCoord(og, j) {
				t.Fatalf("cell %d coord %d: %d vs orig cell %d's %d", g, j, st.AbsCoord(g, j), og, cells.AbsCoord(og, j))
			}
		}
	}
	origIdx := st.OrigIdx()
	for p := 0; p < n; p++ {
		op := int(origIdx[p])
		for j := 0; j < d; j++ {
			if m.Data[p*d+j] != cells.Pts.Data[op*d+j] {
				t.Fatalf("point %d dim %d: %v vs original %d's %v", p, j, m.Data[p*d+j], op, cells.Pts.Data[op*d+j])
			}
		}
	}

	// Partial mappings agree with the full payload.
	lo, hi := st.ShardCells(1)
	pm, err := st.MapPoints(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Release()
	pLo := st.CellPointStart(lo)
	for i, v := range pm.Data {
		if v != m.Data[pLo*d+i] {
			t.Fatalf("partial map diverges at rel float %d", i)
		}
	}
	if pm.PointLo != pLo {
		t.Fatalf("PointLo %d, want %d", pm.PointLo, pLo)
	}
}

// TestDecodeRejectsCorruption: every kind of damage must produce an error,
// never a panic or a bogus Store.
func TestDecodeRejectsCorruption(t *testing.T) {
	path, _, _ := buildStore(t, 300, 2, 3, 7)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}

	// Truncation at every interesting boundary.
	for _, cut := range []int{0, 7, 8, headerSize - 1, headerSize, headerSize + 10, len(valid) / 2, len(valid) - 1} {
		if _, err := Decode(valid[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}

	// Wrong magic and wrong version.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Error("wrong magic accepted")
	}
	bad = append([]byte(nil), valid...)
	bad[8] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("wrong version accepted")
	}

	// Single bit flips across header and metadata must trip the checksum
	// (or a structural check).
	metaEnd := headerSize + int(metaSize(2, 300, 0, 3)) // d,n known; c unknown — flip within header+some meta
	if metaEnd > len(valid) {
		metaEnd = len(valid)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pos := rng.Intn(metaEnd)
		bad = append([]byte(nil), valid...)
		bad[pos] ^= 1 << uint(rng.Intn(8))
		if bad[pos] == valid[pos] {
			continue
		}
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", pos)
		}
	}
}

// FuzzCellStoreDecode: arbitrary bytes must never panic or allocate
// unboundedly; a successful decode must satisfy the format invariants the
// engine relies on.
func FuzzCellStoreDecode(f *testing.F) {
	path, _, _ := buildStore(f, 200, 2, 3, 9)
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("PDBSCEL1 not a store"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		// Survivors must be self-consistent.
		if st.NumPoints() < 1 || st.NumCells() < 1 || st.NumShards() < 1 || st.Dims() < 1 {
			t.Fatalf("decoded degenerate store: %d pts %d cells %d shards", st.NumPoints(), st.NumCells(), st.NumShards())
		}
		lo, hi := st.ShardCells(st.NumShards() - 1)
		if hi != st.NumCells() || lo > hi {
			t.Fatalf("last shard cells [%d,%d) do not end at %d", lo, hi, st.NumCells())
		}
		if st.CellPointStart(st.NumCells()) != st.NumPoints() {
			t.Fatal("cell extents do not cover all points")
		}
	})
}
