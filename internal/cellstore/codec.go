package cellstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// FNV-64a, inlined so both the flat store format and the stream codec share
// one checksum definition without dragging hash.Hash64 state around.

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func fnvNew() uint64 { return fnvOffset }

func fnvSum(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// Encoder writes length-prefixed little-endian values to a stream, keeping a
// running FNV-64a checksum that Flush appends as a trailer. It is the codec
// the streaming snapshot format (pdbscan.StreamingClusterer.Snapshot) is
// assembled from; the flat store file shares the checksum but lays out its
// arrays for mmap instead.
//
// The first error sticks: subsequent writes are no-ops and Flush reports it.
type Encoder struct {
	w   *bufio.Writer
	sum uint64
	err error
}

// NewEncoder starts a stream with the given 8-byte magic (written raw,
// outside the checksum).
func NewEncoder(w io.Writer, magic string) *Encoder {
	e := &Encoder{w: bufio.NewWriter(w), sum: fnvNew()}
	if len(magic) != 8 {
		e.err = fmt.Errorf("cellstore: magic must be 8 bytes, got %q", magic)
		return e
	}
	if _, err := e.w.WriteString(magic); err != nil {
		e.err = err
	}
	return e
}

func (e *Encoder) raw(b []byte) {
	if e.err != nil {
		return
	}
	e.sum = fnvSum(e.sum, b)
	if _, err := e.w.Write(b); err != nil {
		e.err = err
	}
}

// U64 writes v.
func (e *Encoder) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.raw(b[:])
}

// I64 writes v.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 writes v.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool writes v as one byte.
func (e *Encoder) Bool(v bool) {
	b := []byte{0}
	if v {
		b[0] = 1
	}
	e.raw(b)
}

// I32s writes a length-prefixed []int32.
func (e *Encoder) I32s(a []int32) {
	e.U64(uint64(len(a)))
	var b [8192]byte
	for len(a) > 0 {
		k := min(len(a), len(b)/4)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(a[i]))
		}
		e.raw(b[:k*4])
		a = a[k:]
	}
}

// I64s writes a length-prefixed []int64.
func (e *Encoder) I64s(a []int64) {
	e.U64(uint64(len(a)))
	var b [8]byte
	for _, v := range a {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		e.raw(b[:])
	}
}

// F64s writes a length-prefixed []float64.
func (e *Encoder) F64s(a []float64) {
	e.U64(uint64(len(a)))
	var b [8192]byte
	for len(a) > 0 {
		k := min(len(a), len(b)/8)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(a[i]))
		}
		e.raw(b[:k*8])
		a = a[k:]
	}
}

// Bools writes a length-prefixed []bool, one byte per element.
func (e *Encoder) Bools(a []bool) {
	e.U64(uint64(len(a)))
	var b [8192]byte
	for len(a) > 0 {
		k := min(len(a), len(b))
		for i := 0; i < k; i++ {
			b[i] = 0
			if a[i] {
				b[i] = 1
			}
		}
		e.raw(b[:k])
		a = a[k:]
	}
}

// Flush writes the checksum trailer and flushes the stream.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], e.sum)
	if _, err := e.w.Write(b[:]); err != nil {
		return err
	}
	return e.w.Flush()
}

// Decoder reads the Encoder's format back. Array reads grow their result in
// bounded chunks, so a corrupt length prefix on a truncated stream errors out
// once the bytes run dry instead of pre-allocating gigabytes. The first error
// sticks; Verify checks the checksum trailer and must be called after the
// last field.
type Decoder struct {
	r   *bufio.Reader
	sum uint64
	err error
}

// maxStreamElems bounds any single array length in a snapshot stream
// (2^31 elements — matching the int32 point/cell indices everywhere else).
const maxStreamElems = 1 << 31

// NewDecoder checks the 8-byte magic and returns a decoder positioned at the
// first field.
func NewDecoder(r io.Reader, magic string) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r), sum: fnvNew()}
	var m [8]byte
	if _, err := io.ReadFull(d.r, m[:]); err != nil {
		return nil, fmt.Errorf("cellstore: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("cellstore: bad magic %q (want %q)", m[:], magic)
	}
	return d, nil
}

// Err returns the first read error, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) raw(b []byte) bool {
	if d.err != nil {
		return false
	}
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = fmt.Errorf("cellstore: truncated stream: %w", err)
		return false
	}
	d.sum = fnvSum(d.sum, b)
	return true
}

// U64 reads one uint64 (0 after an error).
func (d *Decoder) U64() uint64 {
	var b [8]byte
	if !d.raw(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// I64 reads one int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads one float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads one byte as a bool.
func (d *Decoder) Bool() bool {
	var b [1]byte
	if !d.raw(b[:]) {
		return false
	}
	return b[0] != 0
}

// arrayLen reads and bounds a length prefix.
func (d *Decoder) arrayLen() int {
	k := d.U64()
	if d.err == nil && k > maxStreamElems {
		d.err = fmt.Errorf("cellstore: array length %d exceeds limit", k)
	}
	if d.err != nil {
		return 0
	}
	return int(k)
}

// I32s reads a length-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	k := d.arrayLen()
	var out []int32
	var b [8192]byte
	for len(out) < k {
		m := min(k-len(out), len(b)/4)
		if !d.raw(b[:m*4]) {
			return nil
		}
		for i := 0; i < m; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(b[i*4:])))
		}
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (d *Decoder) I64s() []int64 {
	k := d.arrayLen()
	var out []int64
	var b [8192]byte
	for len(out) < k {
		m := min(k-len(out), len(b)/8)
		if !d.raw(b[:m*8]) {
			return nil
		}
		for i := 0; i < m; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(b[i*8:])))
		}
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	k := d.arrayLen()
	var out []float64
	var b [8192]byte
	for len(out) < k {
		m := min(k-len(out), len(b)/8)
		if !d.raw(b[:m*8]) {
			return nil
		}
		for i := 0; i < m; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:])))
		}
	}
	return out
}

// Bools reads a length-prefixed []bool.
func (d *Decoder) Bools() []bool {
	k := d.arrayLen()
	var out []bool
	var b [8192]byte
	for len(out) < k {
		m := min(k-len(out), len(b))
		if !d.raw(b[:m]) {
			return nil
		}
		for i := 0; i < m; i++ {
			out = append(out, b[i] != 0)
		}
	}
	return out
}

// Verify reads the checksum trailer and compares it to the running sum over
// everything decoded so far. Call after the last field.
func (d *Decoder) Verify() error {
	if d.err != nil {
		return d.err
	}
	want := d.sum // capture before the trailer bytes pass through raw
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		return fmt.Errorf("cellstore: truncated stream (checksum trailer): %w", err)
	}
	got := binary.LittleEndian.Uint64(b[:])
	if got != want {
		return fmt.Errorf("cellstore: stream checksum mismatch: trailer %016x, computed %016x", got, want)
	}
	return nil
}
