package unionfind

import (
	"math/rand"
	"testing"

	"pdbscan/internal/parallel"
)

// serialDSU is an obviously-correct reference.
type serialDSU struct{ p []int }

func newSerialDSU(n int) *serialDSU {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &serialDSU{p}
}
func (d *serialDSU) find(x int) int {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}
func (d *serialDSU) union(x, y int) { d.p[d.find(x)] = d.find(y) }

func TestMatchesSerialDSU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	uf := New(n)
	ref := newSerialDSU(n)
	for i := 0; i < 2000; i++ {
		x, y := rng.Intn(n), rng.Intn(n)
		uf.Union(int32(x), int32(y))
		ref.union(x, y)
	}
	// Same partition: pairwise same-set relation must agree.
	for i := 0; i < 200; i++ {
		x, y := rng.Intn(n), rng.Intn(n)
		got := uf.Find(int32(x)) == uf.Find(int32(y))
		want := ref.find(x) == ref.find(y)
		if got != want {
			t.Fatalf("SameSet(%d,%d) = %v, want %v", x, y, got, want)
		}
	}
}

func TestConcurrentUnionsChain(t *testing.T) {
	// Union i with i+1 concurrently; everything must end in one component.
	n := 100000
	uf := New(n)
	parallel.For(n-1, func(i int) {
		uf.Union(int32(i), int32(i+1))
	})
	root := uf.Find(0)
	for i := 1; i < n; i += 997 {
		if uf.Find(int32(i)) != root {
			t.Fatalf("element %d not in root component", i)
		}
	}
}

func TestConcurrentUnionsRandom(t *testing.T) {
	n := 50000
	type edge struct{ u, v int32 }
	rng := rand.New(rand.NewSource(2))
	edges := make([]edge, 4*n)
	for i := range edges {
		edges[i] = edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	uf := New(n)
	parallel.For(len(edges), func(i int) { uf.Union(edges[i].u, edges[i].v) })
	ref := newSerialDSU(n)
	for _, e := range edges {
		ref.union(int(e.u), int(e.v))
	}
	// Compare partitions via canonical maps.
	canonGot := map[int32]int32{}
	canonWant := map[int]int{}
	for i := 0; i < n; i++ {
		rg := uf.Find(int32(i))
		rw := ref.find(i)
		if cg, ok := canonGot[rg]; ok {
			if int(cg) != canonWant[rw] {
				t.Fatalf("partition mismatch at %d", i)
			}
		} else {
			if _, ok2 := canonWant[rw]; ok2 {
				t.Fatalf("partition mismatch (split) at %d", i)
			}
			canonGot[rg] = int32(i)
			canonWant[rw] = i
		}
	}
}

func TestSameSet(t *testing.T) {
	uf := New(4)
	if uf.SameSet(0, 1) {
		t.Fatal("fresh elements in same set")
	}
	uf.Union(0, 1)
	if !uf.SameSet(0, 1) {
		t.Fatal("union did not join")
	}
	if uf.SameSet(2, 3) {
		t.Fatal("2,3 wrongly joined")
	}
}

func TestUnionReturnsRoot(t *testing.T) {
	uf := New(3)
	r := uf.Union(2, 1)
	if r != uf.Find(2) || r != uf.Find(1) {
		t.Fatalf("returned %d which is not the common root", r)
	}
}
