// Package unionfind implements the lock-free concurrent union-find structure
// used by ClusterCore (Algorithm 3) to maintain cell-graph connected
// components on the fly. Roots are linked by index order (higher-index root
// is attached under the lower-index root) with CAS, which prevents cycles
// without locks; Find uses path halving with atomic writes.
//
// This mirrors the paper's design point: the paper's union-find is lock-free,
// in contrast to PDSDBSCAN's lock-based structure.
package unionfind

import (
	"sync/atomic"

	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// UF is a concurrent union-find over the elements [0, n).
type UF struct {
	parent []int32
}

// New creates a union-find with n singleton sets.
func New(n int) *UF {
	u := &UF{}
	u.Reset(n)
	return u
}

// Reset reinitializes u to n singleton sets, reusing the backing array when
// it is large enough. The zero UF is valid input. Must not race with any
// other method; callers (the core scratch arena) reset between runs, never
// during one.
func (u *UF) Reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int32, n)
	}
	u.parent = u.parent[:n]
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Find returns the representative of x's set. Safe for concurrent use with
// Find and Union.
func (u *UF) Find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&u.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&u.parent[p])
		if gp == p {
			return p
		}
		// Path halving: benign CAS; failure means someone else compressed.
		atomic.CompareAndSwapInt32(&u.parent[x], p, gp)
		x = gp
	}
}

// Union merges the sets containing x and y and returns the surviving root.
// Lock-free: retries until the two roots agree or a CAS links them.
func (u *UF) Union(x, y int32) int32 {
	for {
		rx := u.Find(x)
		ry := u.Find(y)
		if rx == ry {
			return rx
		}
		// Link the higher-index root below the lower-index root. The CAS
		// only succeeds if rx is still a root, preserving acyclicity.
		if rx < ry {
			rx, ry = ry, rx
		}
		if atomic.CompareAndSwapInt32(&u.parent[rx], rx, ry) {
			return ry
		}
	}
}

// DenseRoots finds, in parallel on ex, the roots of all elements i for which
// include(i) is true, and returns them ascending together with a dense
// relabeling: dense[r] = index of root r in roots (meaningful only for
// returned roots). This is the label-densification step shared by every
// clustering finisher (coreLabels, the baselines). Many elements share a
// root, so the marking pass uses atomic same-value stores to stay race-free;
// callers must not run concurrent Unions during the call.
func DenseRoots(ex *parallel.Pool, uf *UF, include func(i int32) bool) (roots []int32, dense []int32) {
	n := uf.Len()
	isRoot := make([]int32, n)
	ex.For(n, func(i int) {
		if include(int32(i)) {
			atomic.StoreInt32(&isRoot[uf.Find(int32(i))], 1)
		}
	})
	roots = prim.FilterIndex(ex, n, func(i int) bool { return isRoot[i] != 0 })
	dense = make([]int32, n)
	ex.For(len(roots), func(i int) { dense[roots[i]] = int32(i) })
	return roots, dense
}

// SameSet reports whether x and y are currently in the same set. In the
// presence of concurrent Unions the answer is a snapshot; ClusterCore uses it
// only as a pruning hint (a stale "false" costs one redundant connectivity
// query, never correctness).
func (u *UF) SameSet(x, y int32) bool {
	for {
		rx := u.Find(x)
		ry := u.Find(y)
		if rx == ry {
			return true
		}
		// rx is a root at the time of the load below; if it still is, the
		// answer "false" was true at that instant.
		if atomic.LoadInt32(&u.parent[rx]) == rx {
			return false
		}
	}
}
