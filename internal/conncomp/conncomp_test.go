package conncomp

import (
	"math/rand"
	"testing"
)

// bfsComponents is the reference implementation.
func bfsComponents(n int, edges []Edge) ([]int, int) {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	count := 0
	var queue []int32
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if labels[v] < 0 {
					labels[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

func samePartition(a []int32, b []int, t *testing.T) {
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d vs %d", len(a), len(b))
	}
	fw := map[int32]int{}
	bw := map[int]int32{}
	for i := range a {
		if w, ok := fw[a[i]]; ok {
			if w != b[i] {
				t.Fatalf("index %d: label %d maps to both %d and %d", i, a[i], w, b[i])
			}
		} else {
			fw[a[i]] = b[i]
		}
		if w, ok := bw[b[i]]; ok {
			if w != a[i] {
				t.Fatalf("index %d: reverse mismatch", i)
			}
		} else {
			bw[b[i]] = a[i]
		}
	}
}

func TestComponentsMatchBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		m := rng.Intn(2 * n)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		got, gotCount := Components(nil, n, edges)
		want, wantCount := bfsComponents(n, edges)
		if gotCount != wantCount {
			t.Fatalf("trial %d: count %d want %d", trial, gotCount, wantCount)
		}
		samePartition(got, want, t)
	}
}

func TestNoEdges(t *testing.T) {
	labels, count := Components(nil, 5, nil)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	seen := map[int32]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatal("duplicate label without edges")
		}
		seen[l] = true
	}
}

func TestSingleComponentLarge(t *testing.T) {
	n := 100000
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{int32(i), int32(i + 1)}
	}
	_, count := Components(nil, n, edges)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestLabelsDense(t *testing.T) {
	labels, count := Components(nil, 6, []Edge{{0, 1}, {2, 3}, {4, 5}})
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	for _, l := range labels {
		if l < 0 || int(l) >= count {
			t.Fatalf("label %d out of range [0,%d)", l, count)
		}
	}
}
