// Package conncomp computes connected components of an undirected graph in
// parallel. The paper runs connected components over the cell graph after
// construction (Section 4.4, Delaunay variant); we process all edges in
// parallel through the lock-free union-find and then resolve labels, which is
// the standard linear-work randomized approach.
package conncomp

import (
	"pdbscan/internal/parallel"
	"pdbscan/internal/unionfind"
)

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int32
}

// Components unions every edge in parallel on the given executor (nil =
// default pool) and returns, for each of the n vertices, the (root-canonical)
// component ID, plus the number of components.
func Components(ex *parallel.Pool, n int, edges []Edge) (labels []int32, count int) {
	uf := unionfind.New(n)
	ex.For(len(edges), func(i int) {
		uf.Union(edges[i].U, edges[i].V)
	})
	return Labels(ex, uf)
}

// Labels extracts dense component labels [0, count) from a union-find.
func Labels(ex *parallel.Pool, uf *unionfind.UF) (labels []int32, count int) {
	n := uf.Len()
	labels = make([]int32, n)
	ex.For(n, func(i int) {
		labels[i] = uf.Find(int32(i))
	})
	// Densify: roots get labels 0..count-1 in root-index order.
	dense := make([]int32, n)
	ex.For(n, func(i int) {
		if labels[i] == int32(i) {
			dense[i] = 1
		}
	})
	var run int32
	for i := 0; i < n; i++ { // n is small (cells); serial scan is fine
		v := dense[i]
		dense[i] = run
		run += v
	}
	ex.For(n, func(i int) {
		labels[i] = dense[labels[i]]
	})
	return labels, int(run)
}
