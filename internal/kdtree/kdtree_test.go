package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"pdbscan/internal/geom"
)

func randomPoints(n, d int, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	for i := range data {
		data[i] = rng.Float64() * 100
	}
	return geom.Points{N: n, D: d, Data: data}
}

func bruteRange(pts geom.Points, q []float64, r float64) []int32 {
	var out []int32
	r2 := r * r
	for i := 0; i < pts.N; i++ {
		if geom.DistSq(q, pts.At(i)) <= r2 {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestRangeCountMatchesBrute(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 7} {
		pts := randomPoints(2000, d, int64(d))
		tree := Build(nil, pts)
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 50; trial++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Float64() * 100
			}
			r := rng.Float64() * 20
			want := len(bruteRange(pts, q, r))
			if got := tree.RangeCount(q, r); got != want {
				t.Fatalf("d=%d trial=%d: count=%d want %d", d, trial, got, want)
			}
		}
	}
}

func TestRangeQueryMatchesBrute(t *testing.T) {
	pts := randomPoints(3000, 3, 11)
	tree := Build(nil, pts)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		r := rng.Float64() * 15
		want := bruteRange(pts, q, r)
		got := tree.RangeQuery(q, r, nil)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRangeQueryAppendsToExisting(t *testing.T) {
	pts := randomPoints(100, 2, 1)
	tree := Build(nil, pts)
	pre := []int32{-7}
	out := tree.RangeQuery(pts.At(0), 1000, pre)
	if out[0] != -7 {
		t.Fatal("prefix clobbered")
	}
	if len(out) != 101 {
		t.Fatalf("len = %d, want 101", len(out))
	}
}

func TestCountAtLeast(t *testing.T) {
	pts := randomPoints(5000, 3, 21)
	tree := Build(nil, pts)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		r := rng.Float64() * 25
		k := 1 + rng.Intn(20)
		want := tree.RangeCount(q, r) >= k
		if got := tree.CountAtLeast(q, r, k); got != want {
			t.Fatalf("trial %d: CountAtLeast=%v want %v", trial, got, want)
		}
	}
}

func TestEmptyAndTinyTrees(t *testing.T) {
	empty := BuildSubset(nil, geom.Points{N: 0, D: 2}, nil)
	if empty.RangeCount([]float64{0, 0}, 10) != 0 {
		t.Fatal("empty tree counted points")
	}
	if empty.CountAtLeast([]float64{0, 0}, 10, 1) {
		t.Fatal("empty tree has a point")
	}
	one, _ := geom.FromRows([][]float64{{3, 4}})
	tree := Build(nil, one)
	if tree.RangeCount([]float64{0, 0}, 5) != 1 {
		t.Fatal("single point at distance 5 not counted with r=5")
	}
	if tree.RangeCount([]float64{0, 0}, 4.999) != 0 {
		t.Fatal("single point counted inside smaller radius")
	}
}

func TestBuildSubset(t *testing.T) {
	pts := randomPoints(1000, 2, 31)
	idx := []int32{}
	for i := 0; i < 1000; i += 2 {
		idx = append(idx, int32(i))
	}
	tree := BuildSubset(nil, pts, idx)
	if tree.Size() != 500 {
		t.Fatalf("size = %d, want 500", tree.Size())
	}
	// Only even indices should be returned.
	got := tree.RangeQuery(pts.At(0), 1e9, nil)
	if len(got) != 500 {
		t.Fatalf("got %d results", len(got))
	}
	for _, i := range got {
		if i%2 != 0 {
			t.Fatalf("odd index %d in subset tree", i)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{1, 2, 3}
	}
	pts, _ := geom.FromRows(rows)
	tree := Build(nil, pts)
	if got := tree.RangeCount([]float64{1, 2, 3}, 0); got != 200 {
		t.Fatalf("duplicates: count = %d, want 200", got)
	}
}
