package kdtree

import (
	"math/rand"
	"testing"
)

func BenchmarkBuild3D(b *testing.B) {
	pts := randomPoints(100000, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(nil, pts)
	}
}

func BenchmarkRangeCount(b *testing.B) {
	pts := randomPoints(100000, 3, 1)
	tree := Build(nil, pts)
	rng := rand.New(rand.NewSource(2))
	queries := make([][]float64, 256)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RangeCount(queries[i%len(queries)], 5)
	}
}

func BenchmarkCountAtLeast(b *testing.B) {
	pts := randomPoints(100000, 3, 1)
	tree := Build(nil, pts)
	rng := rand.New(rand.NewSource(3))
	queries := make([][]float64, 256)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.CountAtLeast(queries[i%len(queries)], 5, 10)
	}
}
