// Package kdtree implements the parallel k-d tree of Section 5.1. The paper
// uses it for two jobs, and so do we: (1) finding the non-empty neighboring
// cells of a cell in higher dimensions (a range query over cell centers), and
// (2) pointwise eps-range queries in the baseline DBSCAN implementations.
//
// Construction is recursive; the two children of every node are built in
// parallel, and the paper's "sort the points at each level and pass them to
// the appropriate child" strategy is implemented with the parallel comparison
// sort from internal/prim. Queries never modify the tree and may run in
// parallel with each other.
package kdtree

import (
	"pdbscan/internal/geom"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// leafSize is the subrange size below which a node stores points directly.
const leafSize = 16

// node is one k-d tree node over idx[lo:hi].
type node struct {
	lo, hi      int32
	bbLo, bbHi  []float64
	left, right *node // nil for leaves
}

// Tree is a k-d tree over a set of points (by index).
type Tree struct {
	pts  geom.Points
	k    geom.Kernel // dimension-resolved distance kernel for traversals
	idx  []int32     // reordered point indices
	root *node
	ex   *parallel.Pool // build-time executor; queries are serial
}

// Build constructs a k-d tree over all points of pts in parallel on the
// given executor (nil = default pool).
func Build(ex *parallel.Pool, pts geom.Points) *Tree {
	idx := make([]int32, pts.N)
	ex.For(pts.N, func(i int) { idx[i] = int32(i) })
	return BuildSubset(ex, pts, idx)
}

// BuildSubset constructs a k-d tree over the given point indices. The slice
// is taken over (reordered in place).
func BuildSubset(ex *parallel.Pool, pts geom.Points, idx []int32) *Tree {
	t := &Tree{pts: pts, k: geom.NewKernel(pts), idx: idx, ex: ex}
	if len(idx) > 0 {
		t.root = t.build(0, int32(len(idx)), 0, ex.Workers())
	}
	return t
}

func (t *Tree) build(lo, hi int32, depth, budget int) *node {
	n := &node{lo: lo, hi: hi}
	n.bbLo, n.bbHi = t.computeBounds(lo, hi)
	if hi-lo <= leafSize {
		return n
	}
	// Split on the widest dimension of the bounding box at the median, by
	// sorting the subrange on that dimension (the paper's per-level sort).
	dim := 0
	widest := n.bbHi[0] - n.bbLo[0]
	for j := 1; j < t.pts.D; j++ {
		if w := n.bbHi[j] - n.bbLo[j]; w > widest {
			widest = w
			dim = j
		}
	}
	sub := t.idx[lo:hi]
	d := t.pts.D
	data := t.pts.Data
	prim.Sort(t.ex, sub, func(a, b int32) bool {
		va, vb := data[int(a)*d+dim], data[int(b)*d+dim]
		if va != vb {
			return va < vb
		}
		return a < b
	})
	mid := lo + (hi-lo)/2
	if hi-lo > 4096 && budget > 1 {
		parallel.Do(
			func() { n.left = t.build(lo, mid, depth+1, budget/2) },
			func() { n.right = t.build(mid, hi, depth+1, budget-budget/2) },
		)
	} else {
		n.left = t.build(lo, mid, depth+1, 1)
		n.right = t.build(mid, hi, depth+1, 1)
	}
	return n
}

func (t *Tree) computeBounds(lo, hi int32) (bbLo, bbHi []float64) {
	d := t.pts.D
	bbLo = make([]float64, d)
	bbHi = make([]float64, d)
	first := t.pts.At(int(t.idx[lo]))
	copy(bbLo, first)
	copy(bbHi, first)
	for i := lo + 1; i < hi; i++ {
		row := t.pts.At(int(t.idx[i]))
		for j, v := range row {
			if v < bbLo[j] {
				bbLo[j] = v
			}
			if v > bbHi[j] {
				bbHi[j] = v
			}
		}
	}
	return bbLo, bbHi
}

// RangeCount returns |{p in tree : dist(p, q) <= r}|.
func (t *Tree) RangeCount(q []float64, r float64) int {
	if t.root == nil {
		return 0
	}
	return t.rangeCount(t.root, q, r*r)
}

func (t *Tree) rangeCount(n *node, q []float64, r2 float64) int {
	if t.k.PointBoxDistSq(q, n.bbLo, n.bbHi) > r2 {
		return 0
	}
	if t.k.BoxMaxDistSq(q, n.bbLo, n.bbHi) <= r2 {
		return int(n.hi - n.lo)
	}
	if n.left == nil {
		c := 0
		for i := n.lo; i < n.hi; i++ {
			if t.k.DistSqRow(q, t.idx[i]) <= r2 {
				c++
			}
		}
		return c
	}
	return t.rangeCount(n.left, q, r2) + t.rangeCount(n.right, q, r2)
}

// RangeQuery appends to out the indices of all points within distance r of q
// and returns the extended slice.
func (t *Tree) RangeQuery(q []float64, r float64, out []int32) []int32 {
	if t.root == nil {
		return out
	}
	return t.rangeQuery(t.root, q, r*r, out)
}

func (t *Tree) rangeQuery(n *node, q []float64, r2 float64, out []int32) []int32 {
	if t.k.PointBoxDistSq(q, n.bbLo, n.bbHi) > r2 {
		return out
	}
	if t.k.BoxMaxDistSq(q, n.bbLo, n.bbHi) <= r2 {
		out = append(out, t.idx[n.lo:n.hi]...)
		return out
	}
	if n.left == nil {
		for i := n.lo; i < n.hi; i++ {
			if t.k.DistSqRow(q, t.idx[i]) <= r2 {
				out = append(out, t.idx[i])
			}
		}
		return out
	}
	out = t.rangeQuery(n.left, q, r2, out)
	return t.rangeQuery(n.right, q, r2, out)
}

// CountAtLeast reports whether at least k points lie within distance r of q,
// terminating early once k are found (used by baseline core-point tests so a
// dense neighborhood does not cost a full count).
func (t *Tree) CountAtLeast(q []float64, r float64, k int) bool {
	if t.root == nil {
		return k <= 0
	}
	return t.countAtLeast(t.root, q, r*r, &k)
}

func (t *Tree) countAtLeast(n *node, q []float64, r2 float64, k *int) bool {
	if *k <= 0 {
		return true
	}
	if t.k.PointBoxDistSq(q, n.bbLo, n.bbHi) > r2 {
		return false
	}
	if t.k.BoxMaxDistSq(q, n.bbLo, n.bbHi) <= r2 {
		*k -= int(n.hi - n.lo)
		return *k <= 0
	}
	if n.left == nil {
		for i := n.lo; i < n.hi; i++ {
			if t.k.DistSqRow(q, t.idx[i]) <= r2 {
				*k--
				if *k <= 0 {
					return true
				}
			}
		}
		return *k <= 0
	}
	if t.countAtLeast(n.left, q, r2, k) {
		return true
	}
	return t.countAtLeast(n.right, q, r2, k)
}

// Size returns the number of points in the tree.
func (t *Tree) Size() int { return len(t.idx) }
