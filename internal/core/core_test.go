package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/metrics"
)

// clusteredPoints generates a mix of Gaussian-ish blobs plus uniform noise —
// the regime DBSCAN is designed for — in d dimensions.
func clusteredPoints(n, d int, scale float64, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	nClusters := 3 + rng.Intn(4)
	centers := make([][]float64, nClusters)
	for i := range centers {
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.Float64() * scale
		}
		centers[i] = c
	}
	data := make([]float64, n*d)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			for j := 0; j < d; j++ {
				data[i*d+j] = rng.Float64() * scale
			}
			continue
		}
		c := centers[rng.Intn(nClusters)]
		for j := 0; j < d; j++ {
			data[i*d+j] = c[j] + rng.NormFloat64()*scale/40
		}
	}
	return geom.Points{N: n, D: d, Data: data}
}

// buildGridCells builds grid cells with the right neighbor method for d.
func buildGridCells(pts geom.Points, eps float64) *grid.Cells {
	c := grid.BuildGrid(nil, pts, eps)
	if pts.D <= 3 {
		c.ComputeNeighborsEnum(nil)
	} else {
		c.ComputeNeighborsKD(nil)
	}
	return c
}

func runAndCheck(t *testing.T, pts geom.Points, cells *grid.Cells, p Params, eps float64, name string) {
	t.Helper()
	res, err := Run(cells, p)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	ref := metrics.BruteDBSCAN(pts, eps, p.MinPts)
	if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestExactVariants2DMatchBruteForce(t *testing.T) {
	graphs := []struct {
		name string
		g    GraphStrategy
	}{
		{"bcp", GraphBCP},
		{"quadtree", GraphQuadtree},
		{"usec", GraphUSEC},
		{"delaunay", GraphDelaunay},
	}
	marks := []struct {
		name string
		m    MarkStrategy
	}{
		{"scan", MarkScan},
		{"qt", MarkQuadtree},
	}
	for seed := int64(1); seed <= 4; seed++ {
		pts := clusteredPoints(400, 2, 100, seed)
		eps := 3.0
		minPts := 5
		gridCells := buildGridCells(pts, eps)
		boxCells := grid.BuildBox2D(nil, pts, eps)
		boxCells.ComputeNeighborsBox2D(nil)
		for _, gs := range graphs {
			for _, ms := range marks {
				p := Params{MinPts: minPts, Mark: ms.m, Graph: gs.g}
				runAndCheck(t, pts, gridCells, p, eps,
					fmt.Sprintf("seed%d-grid-%s-%s", seed, gs.name, ms.name))
				runAndCheck(t, pts, boxCells, p, eps,
					fmt.Sprintf("seed%d-box-%s-%s", seed, gs.name, ms.name))
			}
		}
	}
}

func TestExactHighDimMatchBruteForce(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		for seed := int64(1); seed <= 2; seed++ {
			pts := clusteredPoints(300, d, 60, seed*10+int64(d))
			eps := 8.0
			minPts := 8
			cells := buildGridCells(pts, eps)
			for _, g := range []GraphStrategy{GraphBCP, GraphQuadtree} {
				for _, m := range []MarkStrategy{MarkScan, MarkQuadtree} {
					p := Params{MinPts: minPts, Mark: m, Graph: g}
					runAndCheck(t, pts, cells, p, eps,
						fmt.Sprintf("d%d-seed%d-g%d-m%d", d, seed, g, m))
				}
			}
		}
	}
}

func TestBucketingSameResult(t *testing.T) {
	pts := clusteredPoints(600, 3, 80, 42)
	eps := 6.0
	cells := buildGridCells(pts, eps)
	base, err := Run(cells, Params{MinPts: 10, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	for _, buckets := range []int{1, 4, 64} {
		res, err := Run(cells, Params{MinPts: 10, Graph: GraphBCP, Bucketing: true, Buckets: buckets})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumClusters != base.NumClusters {
			t.Fatalf("buckets=%d: %d clusters, want %d", buckets, res.NumClusters, base.NumClusters)
		}
		if ari := metrics.AdjustedRandIndex(res.Labels, base.Labels); ari != 1 {
			t.Fatalf("buckets=%d: ARI = %v, want 1", buckets, ari)
		}
	}
}

func TestApproxValidity(t *testing.T) {
	for _, rho := range []float64{0.001, 0.01, 0.1, 1.0} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, d := range []int{2, 3, 5} {
				pts := clusteredPoints(300, d, 60, seed*100+int64(d))
				eps := 6.0
				minPts := 6
				cells := buildGridCells(pts, eps)
				for _, m := range []MarkStrategy{MarkScan, MarkQuadtree} {
					p := Params{MinPts: minPts, Rho: rho, Mark: m, Graph: GraphApprox}
					res, err := Run(cells, p)
					if err != nil {
						t.Fatal(err)
					}
					if err := metrics.ValidApproxResult(pts, eps, rho, minPts,
						res.Core, res.Labels, res.Border); err != nil {
						t.Fatalf("rho=%v seed=%d d=%d mark=%d: %v", rho, seed, d, m, err)
					}
				}
			}
		}
	}
}

func TestApproxTinyRhoMatchesExact(t *testing.T) {
	// With clustered data and tiny rho, the approximate answer almost
	// surely coincides with the exact one (no pair falls in (eps, eps(1+rho)]).
	pts := clusteredPoints(400, 3, 80, 7)
	eps := 6.0
	cells := buildGridCells(pts, eps)
	exact, err := Run(cells, Params{MinPts: 8, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Run(cells, Params{MinPts: 8, Rho: 1e-9, Graph: GraphApprox})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRandIndex(exact.Labels, approx.Labels); ari != 1 {
		t.Fatalf("ARI = %v, want 1", ari)
	}
}

func TestMinPtsOne(t *testing.T) {
	// minPts=1: every point is core (it counts itself); every point is in a
	// cluster.
	pts := clusteredPoints(200, 2, 50, 3)
	cells := buildGridCells(pts, 2.0)
	res, err := Run(cells, Params{MinPts: 1, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Core {
		if !c {
			t.Fatalf("point %d not core with minPts=1", i)
		}
		if res.Labels[i] < 0 {
			t.Fatalf("point %d unlabeled with minPts=1", i)
		}
	}
	ref := metrics.BruteDBSCAN(pts, 2.0, 1)
	if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
		t.Fatal(err)
	}
}

func TestAllNoise(t *testing.T) {
	// Huge minPts: nothing is core.
	pts := clusteredPoints(150, 2, 50, 4)
	cells := buildGridCells(pts, 1.0)
	res, err := Run(cells, Params{MinPts: 1000, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Fatalf("clusters = %d, want 0", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != -1 {
			t.Fatalf("point %d labeled %d, want -1", i, l)
		}
	}
}

func TestOneBigCluster(t *testing.T) {
	// Very large eps: one cluster containing everything (TeraClickLog-style
	// degenerate regime: all points in one cell).
	pts := clusteredPoints(500, 3, 10, 5)
	cells := buildGridCells(pts, 1e6)
	// Cells are anchored to the absolute side-grid lattice, so a tiny point
	// set straddling a lattice boundary may occupy up to 2^d cells (here the
	// Gaussian noise dips below 0); it can never occupy more.
	if n := cells.NumCells(); n < 1 || n > 8 {
		t.Fatalf("cells = %d, want 1..8", n)
	}
	res, err := Run(cells, Params{MinPts: 5, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
}

func TestSinglePoint(t *testing.T) {
	pts, _ := geom.FromRows([][]float64{{1, 2}})
	cells := buildGridCells(pts, 1.0)
	res, err := Run(cells, Params{MinPts: 2, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || res.Labels[0] != -1 {
		t.Fatal("single point should be noise with minPts=2")
	}
	res, err = Run(cells, Params{MinPts: 1, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 || res.Labels[0] != 0 {
		t.Fatal("single point should be its own cluster with minPts=1")
	}
}

func TestInvalidParams(t *testing.T) {
	pts := clusteredPoints(50, 2, 10, 6)
	cells := buildGridCells(pts, 1.0)
	if _, err := Run(cells, Params{MinPts: 0, Graph: GraphBCP}); err == nil {
		t.Fatal("expected error for MinPts=0")
	}
	if _, err := Run(cells, Params{MinPts: 5, Graph: GraphApprox}); err == nil {
		t.Fatal("expected error for GraphApprox without Rho")
	}
	noNbrs := grid.BuildGrid(nil, pts, 1.0)
	if _, err := Run(noNbrs, Params{MinPts: 5, Graph: GraphBCP}); err == nil {
		t.Fatal("expected error for missing neighbors")
	}
	pts3 := clusteredPoints(50, 3, 10, 6)
	cells3 := buildGridCells(pts3, 1.0)
	if _, err := Run(cells3, Params{MinPts: 5, Graph: GraphUSEC}); err == nil {
		t.Fatal("expected error for USEC in 3D")
	}
}

func TestBorderMultiMembership(t *testing.T) {
	// Two vertical clusters of 15 points at x=0 and x=10, and one point at
	// (5, 0). With eps=5.01 the middle point reaches only the 4 lowest
	// points of each side (9 neighbors incl. itself < minPts=12), so it is
	// a border point of both clusters; each cluster's own points see all 15
	// clustermates, so they are core.
	rows := [][]float64{}
	for i := 0; i < 15; i++ {
		rows = append(rows, []float64{0, float64(i) * 0.1})
		rows = append(rows, []float64{10, float64(i) * 0.1})
	}
	rows = append(rows, []float64{5, 0}) // border point
	pts, _ := geom.FromRows(rows)
	eps := 5.01
	minPts := 12
	cells := buildGridCells(pts, eps)
	res, err := Run(cells, Params{MinPts: minPts, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	ref := metrics.BruteDBSCAN(pts, eps, minPts)
	if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	b := int32(len(rows) - 1)
	if m, ok := res.Border[b]; !ok || len(m) != 2 {
		t.Fatalf("border point memberships = %v, want 2 clusters", res.Border[b])
	}
	if res.Core[b] {
		t.Fatal("border point marked core")
	}
}

func TestDuplicatePointsClustered(t *testing.T) {
	// Many exact duplicates: all within distance 0, forming one dense blob.
	rows := [][]float64{}
	for i := 0; i < 50; i++ {
		rows = append(rows, []float64{1, 1})
	}
	for i := 0; i < 50; i++ {
		rows = append(rows, []float64{100, 100})
	}
	pts, _ := geom.FromRows(rows)
	cells := buildGridCells(pts, 1.0)
	for _, g := range []GraphStrategy{GraphBCP, GraphQuadtree, GraphUSEC, GraphDelaunay} {
		res, err := Run(cells, Params{MinPts: 10, Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumClusters != 2 {
			t.Fatalf("graph %d: clusters = %d, want 2", g, res.NumClusters)
		}
	}
}

func TestUSECAcrossManyConfigs(t *testing.T) {
	// Dedicated stress for the USEC path: varied eps so cells take many
	// relative positions (vertical, horizontal, diagonal separations).
	for _, eps := range []float64{1.5, 3, 7, 15} {
		for seed := int64(20); seed < 23; seed++ {
			pts := clusteredPoints(300, 2, 60, seed)
			cells := buildGridCells(pts, eps)
			p := Params{MinPts: 5, Graph: GraphUSEC}
			runAndCheck(t, pts, cells, p, eps, fmt.Sprintf("usec-eps%v-seed%d", eps, seed))
		}
	}
}
