package core

import (
	"fmt"
	"math"
	"slices"

	"pdbscan/internal/grid"
	"pdbscan/internal/prim"
)

// This file builds the eps-bounded HDBSCAN* hierarchy: per-point core
// distances and the minimum spanning forest of the mutual-reachability graph,
// both restricted to the Clusterer's build radius eps. Thresholding the
// sorted forest answers DBSCAN* for every eps' <= eps from one build
// (de Berg et al., "Faster DBSCAN and HDBSCAN in Low-Dimensional Euclidean
// Spaces"); the root package's Hierarchy type owns the query side.
//
// Everything is kept in the squared-distance domain. The core distance is
// stored as cd2(p) = the MinPts-th smallest squared distance from p (counting
// p itself), or +Inf when fewer than MinPts points lie within eps; an edge's
// weight is w2(p,q) = max(cd2(p), cd2(q), d2(p,q)). A threshold query at
// radius r then tests cd2 <= r*r and w2 <= r*r — bit-for-bit the same
// float64 predicate (d2 <= eps2) the batch pipeline evaluates, which is what
// makes CutEps exactly label-equivalent to a from-scratch run rather than
// merely close up to sqrt rounding.

// MREdge is one edge of the mutual-reachability minimum spanning forest,
// with endpoints A < B and squared weight W2 = max(cd2(A), cd2(B), d2(A,B)).
type MREdge struct {
	W2   float64
	A, B int32
}

// HierarchyData is the output of ComputeHierarchy: the squared core
// distances (+Inf for points with fewer than MinPts neighbors within the
// build eps) and the mutual-reachability MSF edges sorted ascending by
// (W2, A, B). Both slices are freshly allocated — they escape into the
// caller's Hierarchy and outlive the run's arena scratch.
type HierarchyData struct {
	CoreDist2 []float64
	Edges     []MREdge
}

// lessEdge is the strict total order on candidate edges: by weight, ties by
// (A, B). Candidate pairs are enumerated exactly once, so no two candidates
// compare equal; a strict total order makes the minimum spanning forest
// unique, which in turn makes the per-block Kruskal compaction exact (the
// cycle property with strict order: an edge that is the order-maximum on a
// cycle within any subset of the edges is the order-maximum on that cycle in
// the full graph too, so it is never in the MSF) and the whole build
// deterministic — independent of worker count and block boundaries.
func lessEdge(x, y MREdge) bool {
	if x.W2 != y.W2 {
		return x.W2 < y.W2
	}
	if x.A != y.A {
		return x.A < y.A
	}
	return x.B < y.B
}

// edgeChunk is the per-block candidate-edge budget between Kruskal
// compactions. After a compaction the buffer holds at most n-1 edges (an
// MSF), so per-block memory stays O(n + edgeChunk) no matter how many
// candidate pairs the block enumerates.
const edgeChunk = 1 << 16

// ComputeHierarchy computes the squared core distances and the
// mutual-reachability MSF over prepared cells. Params are interpreted as for
// Run; only MinPts, Exec, Arena, ForceGenericKernel, Timings and PhaseHook
// matter (the graph is built by direct cell scans, not a Graph strategy).
// Cancellation mirrors Run: the build stops at the next phase or cell
// boundary and returns the context's error with no partial output.
func ComputeHierarchy(cells *grid.Cells, p Params) (*HierarchyData, error) {
	if err := validateParams(cells, &p); err != nil {
		return nil, err
	}
	if p.Sample != nil {
		return nil, fmt.Errorf("core: sampled-core mode does not apply to hierarchy builds")
	}
	// The build emits point-indexed output (cd2, MSF edges) from inside its
	// scan loops; it runs on the original point order rather than paying a
	// per-pair row translation.
	p.ForceIndirectLayout = true
	st := newPipeline(cells, p)
	defer st.release()
	if err := st.phase("coredist"); err != nil {
		return nil, err
	}
	cd2 := st.coreDistances()
	if err := st.phase("edges"); err != nil {
		return nil, err
	}
	parts := st.mrEdgeParts(cd2)
	if err := st.phase("mst"); err != nil {
		return nil, err
	}
	edges := st.mergeMSF(parts)
	if err := st.phase("done"); err != nil {
		return nil, err
	}
	return &HierarchyData{CoreDist2: cd2, Edges: edges}, nil
}

// coreDistances computes cd2 for every point: the MinPts-th smallest squared
// distance within the cell's eps-neighborhood (own cell plus grid neighbors),
// +Inf when fewer than MinPts candidates are within eps. Unlike markCore
// there is no all-core cell shortcut — the actual k-th distance is needed,
// not just the threshold decision.
func (st *pipeline) coreDistances() []float64 {
	c := st.cells
	numCells := c.NumCells()
	cd2 := make([]float64, c.Pts.N) // escapes into HierarchyData; never pooled
	st.ex.BlockedFor(numCells, 1, func(lo, hi int) {
		ws := st.getWS()
		for g := lo; g < hi; g++ {
			if st.cancelled() {
				break // partial cd2; ComputeHierarchy bails at the next boundary
			}
			st.cellCoreDistances(g, ws, cd2)
		}
		st.putWS(ws)
	})
	return cd2
}

// cellCoreDistances fills cd2 for the points of cell g. Neighbor cells are
// ordered by ascending box-box distance (as in markCellCore) so that once a
// point's bounded max-heap is full, any cell whose box lies beyond the
// current k-th distance — and every cell after it — can be skipped.
func (st *pipeline) cellCoreDistances(g int, ws *workerScratch, cd2 []float64) {
	c := st.cells
	minPts := st.p.MinPts
	eps2 := st.eps2
	pts := c.PointsOf(g)

	ord := ws.nbrOrder[:0]
	dist := ws.nbrDist[:0]
	for _, h := range c.Neighbors[g] {
		d2 := st.k.BoxBoxDistSqAt(c.BBLo, c.BBHi, int32(g), h)
		if d2 > eps2 {
			continue
		}
		ord = append(ord, h)
		dist = append(dist, d2)
	}
	sortNeighborsByDist(ws, ord, dist)
	ws.nbrOrder, ws.nbrDist = ord, dist // keep grown capacity

	for _, p := range pts {
		h := ws.kthHeap[:0]
		// Own cell first: includes p itself at distance 0, matching the
		// paper's "counting the point itself" core definition.
		for _, q := range pts {
			d2 := st.k.DistSq(p, q)
			if d2 <= eps2 {
				h = heapPushBounded(h, d2, minPts)
			}
		}
		for i, nb := range ord {
			bound := eps2
			if len(h) == minPts && h[0] < bound {
				bound = h[0]
			}
			// Cells are visited in ascending box order: when the heap is
			// full, a box beyond the current k-th distance ends the scan.
			if dist[i] > bound {
				if len(h) == minPts {
					break
				}
				continue // dist[i] <= eps2 by the prepass; only a full heap prunes
			}
			if st.k.PointBoxDistSqAt(p, c.BBLo, c.BBHi, nb) > bound {
				continue
			}
			for _, q := range c.PointsOf(int(nb)) {
				d2 := st.k.DistSq(p, q)
				if d2 <= eps2 {
					h = heapPushBounded(h, d2, minPts)
				}
			}
		}
		if len(h) == minPts {
			cd2[p] = h[0]
		} else {
			cd2[p] = math.Inf(1)
		}
		ws.kthHeap = h // keep grown capacity
	}
}

// heapPushBounded maintains a max-heap of the k smallest values seen: push
// while below capacity, replace the root when a smaller value arrives. The
// root h[0] is the current k-th smallest.
func heapPushBounded(h []float64, v float64, k int) []float64 {
	if len(h) < k {
		h = append(h, v)
		i := len(h) - 1
		for i > 0 {
			par := (i - 1) / 2
			if h[par] >= h[i] {
				break
			}
			h[par], h[i] = h[i], h[par]
			i = par
		}
		return h
	}
	if v >= h[0] {
		return h
	}
	h[0] = v
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l] > h[m] {
			m = l
		}
		if r < len(h) && h[r] > h[m] {
			m = r
		}
		if m == i {
			return h
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// mrEdgeParts enumerates the mutual-reachability candidate edges per block of
// cells and reduces each block to the MSF of its own candidates via chunked
// local Kruskal (filter-Kruskal style). Each unordered pair is enumerated by
// exactly one block — own-cell pairs by index order, cross-cell pairs by the
// lower cell — so the concatenation of the parts is a duplicate-free edge
// set whose MSF equals the MSF of all candidates (each block keeps a
// superset of the global MSF edges among its candidates, by the cycle
// property under the strict total order).
func (st *pipeline) mrEdgeParts(cd2 []float64) [][]MREdge {
	c := st.cells
	numCells := c.NumCells()
	n := c.Pts.N
	nb := st.ex.NumBlocks(numCells, 1)
	parts := make([][]MREdge, nb)
	st.ex.BlockedForIdx(numCells, 1, func(b, lo, hi int) {
		ws := st.getWS()
		buf := ws.mrEdges[:0]
		limit := edgeChunk
		compact := func() {
			slices.SortFunc(buf, func(x, y MREdge) int {
				if lessEdge(x, y) {
					return -1
				}
				return 1
			})
			ws.mrUF.Reset(n)
			keep := buf[:0]
			for _, e := range buf {
				if ws.mrUF.Find(e.A) != ws.mrUF.Find(e.B) {
					ws.mrUF.Union(e.A, e.B)
					keep = append(keep, e)
				}
			}
			buf = keep
		}
		for g := lo; g < hi; g++ {
			if st.cancelled() {
				break // partial parts; the next phase boundary discards them
			}
			buf = st.cellMREdges(g, cd2, ws, buf)
			if len(buf) >= limit {
				compact()
				limit = len(buf) + edgeChunk
			}
		}
		compact()
		out := make([]MREdge, len(buf))
		copy(out, buf)
		parts[b] = out
		ws.mrEdges = buf[:0] // keep grown capacity
		st.putWS(ws)
	})
	return parts
}

// cellMREdges appends cell g's surviving candidate edges to buf. The
// candidate pairs are those where both endpoints have a finite core distance
// (cd2 <= eps2) and d2 <= eps2 — only such pairs can ever connect at a
// queryable threshold, and every pair within eps shares a cell or a
// neighboring cell, so the grid realizes the whole graph.
//
// Rather than buffering every candidate pair (quadratic in the ball
// occupancy, and each buffered edge later pays a comparison sort in the
// Kruskal compaction), each cell-local subgraph — the own-cell clique and
// each cross-cell bipartite graph, owned by the lower cell — is reduced on
// the fly to a minimum spanning forest by a dense Prim scan. Prim touches
// each candidate pair exactly once with a compare-and-store (no sort, no
// union-find) and emits at most |subgraph|-1 edges. Any MSF of a subgraph
// preserves that subgraph's connectivity at every weight threshold, and
// threshold connectivity is union-monotone across subgraphs, so the union of
// the per-subgraph forests supports the exact same CutEps answers as the
// full candidate set; the deterministic tie-breaks below (first-seen edge
// wins, minimum (key, id) vertex next) make the emitted set independent of
// worker count, and the final total-order Kruskal does the rest.
func (st *pipeline) cellMREdges(g int, cd2 []float64, ws *workerScratch, buf []MREdge) []MREdge {
	c := st.cells
	eps2 := st.eps2
	pts := c.PointsOf(g)

	// Own-cell clique over the core-capable points.
	own := ws.primOwn[:0]
	for _, p := range pts {
		if cd2[p] <= eps2 {
			own = append(own, p)
		}
	}
	ws.primOwn = own
	buf = st.primForest(own, 0, cd2, ws, buf)

	for _, nb := range c.Neighbors[g] {
		if nb <= int32(g) {
			continue // the lower cell of the pair owns the enumeration
		}
		if st.k.BoxBoxDistSqAt(c.BBLo, c.BBHi, int32(g), nb) > eps2 {
			continue
		}
		// Bipartite subgraph: cell g's side first, then the neighbor's.
		// Points whose box distance to the far cell exceeds eps cannot have
		// a cross edge and would only be isolated Prim vertices.
		verts := ws.primVerts[:0]
		for _, p := range own {
			if st.k.PointBoxDistSqAt(p, c.BBLo, c.BBHi, nb) <= eps2 {
				verts = append(verts, p)
			}
		}
		split := len(verts)
		if split == 0 {
			ws.primVerts = verts
			continue
		}
		for _, q := range c.PointsOf(int(nb)) {
			if cd2[q] <= eps2 && st.k.PointBoxDistSqAt(q, c.BBLo, c.BBHi, int32(g)) <= eps2 {
				verts = append(verts, q)
			}
		}
		ws.primVerts = verts
		if len(verts) == split {
			continue
		}
		buf = st.primForest(verts, split, cd2, ws, buf)
	}
	return buf
}

// primForest appends a minimum spanning forest of one cell-local subgraph to
// buf via a dense Prim scan with forest restarts. verts lists the subgraph's
// points; split selects the edge set: split == 0 means the complete graph on
// verts (own-cell pairs, still subject to d2 <= eps2), split > 0 means the
// bipartite graph between verts[:split] and verts[split:] (cross-cell pairs).
// Pairs beyond eps are absent (weight +Inf). Each candidate pair's distance
// is computed exactly once — when its first endpoint joins the tree.
//
// Determinism: the next vertex is the unattached one with the minimum
// (key, id), and a key is only replaced by a strictly smaller weight, so the
// emitted edge set depends solely on the subgraph, not on worker count or
// scan history. Restarts (key +Inf) start a new tree without emitting.
func (st *pipeline) primForest(verts []int32, split int, cd2 []float64, ws *workerScratch, buf []MREdge) []MREdge {
	m := len(verts)
	if m < 2 {
		return buf
	}
	eps2 := st.eps2
	key := ws.primKey
	if cap(key) < m {
		key = make([]float64, m)
	}
	key = key[:m]
	from := ws.primFrom
	if cap(from) < m {
		from = make([]int32, m)
	}
	from = from[:m]
	side := ws.primSide
	if cap(side) < m {
		side = make([]bool, m)
	}
	side = side[:m]
	for i := range key {
		key[i] = math.Inf(1)
		from[i] = -1
		side[i] = i >= split
	}
	ws.primKey, ws.primFrom, ws.primSide = key, from, side

	for step := 0; step < m; step++ {
		best := step
		for j := step + 1; j < m; j++ {
			if key[j] < key[best] || (key[j] == key[best] && verts[j] < verts[best]) {
				best = j
			}
		}
		if best != step {
			verts[step], verts[best] = verts[best], verts[step]
			key[step], key[best] = key[best], key[step]
			from[step], from[best] = from[best], from[step]
			side[step], side[best] = side[best], side[step]
		}
		v := verts[step]
		cv := cd2[v]
		if from[step] >= 0 {
			buf = append(buf, makeMREdge(from[step], v, key[step], 0, 0))
		}
		// Relax the unattached vertices against v. In the bipartite case
		// only the opposite side is adjacent.
		for j := step + 1; j < m; j++ {
			if split > 0 && side[j] == side[step] {
				continue
			}
			d2 := st.k.DistSq(v, verts[j])
			if d2 > eps2 {
				continue
			}
			w := d2
			if cv > w {
				w = cv
			}
			if cq := cd2[verts[j]]; cq > w {
				w = cq
			}
			if w < key[j] {
				key[j] = w
				from[j] = v
			}
		}
	}
	return buf
}

func makeMREdge(p, q int32, d2, cp, cq float64) MREdge {
	w := d2
	if cp > w {
		w = cp
	}
	if cq > w {
		w = cq
	}
	if p > q {
		p, q = q, p
	}
	return MREdge{W2: w, A: p, B: q}
}

// mergeMSF concatenates the per-block MSFs, sorts them in parallel by the
// total order, and runs one serial Kruskal pass to the final forest. The
// input is at most (blocks × (n-1)) edges, so this tail is cheap relative to
// the enumeration phase.
func (st *pipeline) mergeMSF(parts [][]MREdge) []MREdge {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]MREdge, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	prim.Sort(st.ex, all, lessEdge)
	n := st.cells.Pts.N
	st.rs.uf.Reset(n)
	uf := &st.rs.uf
	kept := all[:0]
	for _, e := range all {
		if uf.Find(e.A) != uf.Find(e.B) {
			uf.Union(e.A, e.B)
			kept = append(kept, e)
		}
	}
	edges := make([]MREdge, len(kept))
	copy(edges, kept)
	return edges
}
