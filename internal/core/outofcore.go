package core

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"pdbscan/internal/cellstore"
	"pdbscan/internal/delaunay"
	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/unionfind"
)

// OOCStats reports the residency accounting of one RunOutOfCore call. All
// figures cover point-data windows only: the run additionally keeps O(n)
// bookkeeping resident (core flags, labels, the cell-level union-find and the
// store metadata), which is orders of magnitude smaller than the points and
// documented as outside the MaxResidentBytes budget.
type OOCStats struct {
	// BytesMapped is the cumulative bytes of point data mapped across every
	// window turn of both passes.
	BytesMapped int64
	// PeakResidentBytes is the largest single window mapping — the most
	// point data resident at any moment (windows are mapped one at a time
	// and released before the next turn).
	PeakResidentBytes int64
	// ShardsResidentPeak is the widest halo window, in shards.
	ShardsResidentPeak int
}

// RunOutOfCore executes the pipeline over a cell store without ever holding
// the whole dataset in memory: shards are swept in order, and each turn maps
// only the shard's halo window — the contiguous byte range holding the shard
// plus every shard owning one of its halo cells, which is exactly the state
// the partition/merge argument of RunSharded says a shard needs (core
// marking reads halo points; cross-shard cell-graph edges join two cells that
// are each in the other's halo).
//
// Exactness mirrors RunSharded: each turn rebuilds the window's cell
// structure with BuildGrid (absolute lattice anchoring places every point in
// a bit-identically positioned cell, and the store preserves within-cell
// point order, so every geometric predicate evaluates on identical operands),
// core flags are decomposable and accumulate in a global store-order array,
// and all unions go into one global union-find over the *writer's* original
// cell ids — union-by-min-index roots and DenseRoots label assignment then
// reproduce the in-RAM run's labels bit-for-bit. Cross-window pairs are
// evaluated exactly once, by the later shard's turn (the earlier shard's
// cells are part of the later window by the halo invariant).
//
// maxResidentBytes > 0 is a hard budget on a single window mapping: a window
// that exceeds it fails the run with an error naming the shortfall (rewrite
// the store with more shards, or raise the budget).
func RunOutOfCore(store *cellstore.Store, p Params, maxResidentBytes int64) (*Result, *OOCStats, error) {
	if p.Sample != nil {
		return nil, nil, fmt.Errorf("core: sampled-core runs are in-RAM only (the counting set is the whole dataset)")
	}
	if p.MinPts < 1 {
		return nil, nil, fmt.Errorf("core: MinPts must be at least 1")
	}
	d := store.Dims()
	if (p.Graph == GraphUSEC || p.Graph == GraphDelaunay) && d != 2 {
		return nil, nil, fmt.Errorf("core: the USEC and Delaunay strategies require 2-dimensional points")
	}
	if p.Graph == GraphApprox && p.Rho <= 0 {
		return nil, nil, fmt.Errorf("core: GraphApprox requires Rho > 0")
	}

	r := &oocRun{
		store:  store,
		p:      p,
		maxRes: maxResidentBytes,
		n:      store.NumPoints(),
		c:      store.NumCells(),
		stats:  &OOCStats{},
	}
	r.guf = unionfind.New(r.c)
	r.coreFlags = make([]bool, r.n) // escapes into Result.Core (scattered)
	r.cellHasCore = make([]bool, r.c)

	ex := p.Exec
	shards := store.NumShards()

	// Pass 1 — per shard turn: mark owned cells, collect core state for the
	// backward half of the window, build the intra-shard cell graph and
	// evaluate every backward cross edge.
	for s := 0; s < shards; s++ {
		if err := ex.Err(); err != nil {
			return nil, nil, err
		}
		if err := r.markTurn(s); err != nil {
			return nil, nil, err
		}
	}
	if err := ex.Err(); err != nil {
		return nil, nil, err
	}

	// Labels — from metadata only: the union-find over original cell ids and
	// the per-cell extents are all that's needed; no window is resident.
	start := time.Now()
	roots, dense := unionfind.DenseRoots(ex, r.guf, func(g int32) bool {
		return r.cellHasCore[g]
	})
	numClusters := len(roots)
	r.labels = make([]int32, r.n)
	ex.ForGrain(r.c, 8, func(sc int) {
		lbl := int32(-1)
		if og := store.OrigCell(sc); r.cellHasCore[og] {
			lbl = dense[r.guf.Find(og)]
		}
		lo, hi := store.CellPointStart(sc), store.CellPointStart(sc+1)
		for i := lo; i < hi; i++ {
			if r.coreFlags[i] {
				r.labels[i] = lbl
			} else {
				r.labels[i] = -1
			}
		}
	})
	if p.Timings != nil {
		p.Timings.Label += time.Since(start)
	}

	// Pass 2 — border attachment, again one window at a time. Core flags and
	// core-point labels are final, so each turn only needs the window's core
	// state (recollected from the global flags) plus the owned cells' points.
	r.border = make(map[int32][]int32)
	for s := 0; s < shards; s++ {
		if err := ex.Err(); err != nil {
			return nil, nil, err
		}
		if err := r.borderTurn(s); err != nil {
			return nil, nil, err
		}
	}
	if err := ex.Err(); err != nil {
		return nil, nil, err
	}

	// Scatter store-order outputs back to the writer's original point order.
	outLabels := make([]int32, r.n)
	outCore := make([]bool, r.n)
	origIdx := store.OrigIdx()
	ex.For(r.n, func(i int) {
		oi := origIdx[i]
		outLabels[oi] = r.labels[i]
		outCore[oi] = r.coreFlags[i]
	})
	return &Result{
		Core:        outCore,
		Labels:      outLabels,
		Border:      r.border,
		NumClusters: numClusters,
	}, r.stats, nil
}

type oocRun struct {
	store  *cellstore.Store
	p      Params
	maxRes int64
	n, c   int
	stats  *OOCStats

	guf         *unionfind.UF // over original cell ids
	coreFlags   []bool        // store order, global
	cellHasCore []bool        // original cell ids
	labels      []int32       // store order, global
	border      map[int32][]int32
	borderMu    sync.Mutex
}

// oocTurn is one resident window: the mapping, its rebuilt cell structure,
// a window pipeline whose core flags alias the global store-order array, and
// the local/store/original cell index translations.
type oocTurn struct {
	m      *cellstore.Mapping
	cells  *grid.Cells
	st     *pipeline
	s2l    []int32 // store cell (offset by cellLo) -> local cell
	l2s    []int32 // local cell -> store cell
	l2orig []int32 // local cell -> original (writer) cell id
	cellLo int     // store cell range of the window
	cellHi int
	ownLo  int // store cell range owned by this turn's shard
	ownHi  int
	pLo    int // store point index of the window's first row
}

func (t *oocTurn) close() {
	if t.st != nil {
		t.st.release()
	}
	if t.m != nil {
		t.m.Release()
	}
}

// openTurn maps shard s's halo window, stands the mapped range up as the
// window's cell structure directly — the store already holds the cell-major
// layout BuildCellMajor wants, so there is no per-window re-gather: no
// semisort, no coordinate hashing, and the pipeline's payload aliases the
// mapping itself (zero copy against the residency budget). Window-local cell
// ids equal store order, so the store/local translations are simple offsets.
// The pipeline's coreFlags alias the global store-order array.
func (r *oocRun) openTurn(s int) (*oocTurn, error) {
	store := r.store
	wlo, whi := store.Window(s)
	cellLo, _ := store.ShardCells(wlo)
	_, cellHi := store.ShardCells(whi)
	m, err := store.MapPoints(cellLo, cellHi)
	if err != nil {
		return nil, err
	}
	if r.maxRes > 0 && m.Bytes > r.maxRes {
		need := m.Bytes
		m.Release()
		return nil, fmt.Errorf("core: shard %d's halo window needs %d bytes resident, over the %d-byte budget; rewrite the store with more shards or raise MaxResidentBytes", s, need, r.maxRes)
	}
	r.stats.BytesMapped += m.Bytes
	if m.Bytes > r.stats.PeakResidentBytes {
		r.stats.PeakResidentBytes = m.Bytes
	}
	if span := whi - wlo + 1; span > r.stats.ShardsResidentPeak {
		r.stats.ShardsResidentPeak = span
	}

	t := &oocTurn{m: m, cellLo: cellLo, cellHi: cellHi, pLo: m.PointLo}
	t.ownLo, t.ownHi = store.ShardCells(s)

	d := store.Dims()
	pts := geom.Points{N: len(m.Data) / d, D: d, Data: m.Data}
	ex := r.p.Exec

	// Window-local cell offsets and absolute lattice coordinates, straight
	// from the store metadata.
	numCells := cellHi - cellLo
	cellStart := make([]int32, numCells+1)
	for i := 0; i <= numCells; i++ {
		cellStart[i] = int32(store.CellPointStart(cellLo+i) - t.pLo)
	}
	if int(cellStart[numCells]) != pts.N {
		t.close()
		return nil, fmt.Errorf("core: window of shard %d maps %d points, cell offsets say %d (corrupt store?)", s, pts.N, cellStart[numCells])
	}
	abs := make([]int64, numCells*d)
	for i := 0; i < numCells; i++ {
		for j := 0; j < d; j++ {
			abs[i*d+j] = store.AbsCoord(cellLo+i, j)
		}
	}
	cells := grid.BuildCellMajor(ex, pts, store.Eps(), cellStart, abs)
	if d <= 3 {
		cells.ComputeNeighborsEnum(ex)
	} else {
		cells.ComputeNeighborsKD(ex)
	}
	t.cells = cells

	// Local cell ids are store order: the translations are identity/offset.
	t.s2l = make([]int32, numCells)
	t.l2s = make([]int32, numCells)
	t.l2orig = make([]int32, numCells)
	for i := 0; i < numCells; i++ {
		t.s2l[i] = int32(i)
		t.l2s[i] = int32(cellLo + i)
		t.l2orig[i] = store.OrigCell(cellLo + i)
	}

	p2 := r.p
	p2.Timings = nil
	p2.PhaseHook = nil
	if err := validateParams(cells, &p2); err != nil {
		t.close()
		return nil, err
	}
	st := newPipeline(cells, p2)
	t.st = st
	st.coreFlags = r.coreFlags[t.pLo : t.pLo+pts.N]
	if st.p.Mark == MarkQuadtree {
		st.rs.allTrees = lazyTreeBuf(st.rs.allTrees, cells.NumCells())
		st.allTrees = st.rs.allTrees
	}
	st.initCoreState()
	return t, nil
}

// markTurn is one pass-1 window: mark the owned cells' core flags, collect
// core state for the backward half of the window (everything already marked),
// and evaluate the intra-shard and backward cross edges of the cell graph
// into the global union-find.
func (r *oocRun) markTurn(s int) error {
	t, err := r.openTurn(s)
	if err != nil {
		return err
	}
	defer t.close()
	st, ex := t.st, t.st.ex
	owned := t.s2l[t.ownLo-t.cellLo : t.ownHi-t.cellLo]

	if r.p.PhaseHook != nil {
		r.p.PhaseHook("mark")
	}
	start := time.Now()
	ex.BlockedFor(len(owned), 1, func(lo, hi int) {
		ws := st.getWS()
		for i := lo; i < hi; i++ {
			if st.cancelled() {
				break
			}
			st.markCellCore(int(owned[i]), ws)
		}
		st.putWS(ws)
	})
	if r.p.Timings != nil {
		r.p.Timings.Mark += time.Since(start)
	}

	// Collect backward + owned cells. Backward cells were marked by earlier
	// turns; the global flags array carries their flags into this window.
	start = time.Now()
	ex.ForGrain(t.ownHi-t.cellLo, 1, func(i int) {
		if st.cancelled() {
			return
		}
		st.collectCellCore(int(t.s2l[i]))
	})
	for i, lg := range owned {
		if len(st.corePts[lg]) > 0 {
			r.cellHasCore[r.store.OrigCell(t.ownLo+i)] = true
		}
	}
	if r.p.Timings != nil {
		r.p.Timings.Collect += time.Since(start)
	}
	if st.cancelled() {
		return ex.Err()
	}

	if r.p.PhaseHook != nil {
		r.p.PhaseHook("graph")
	}
	start = time.Now()
	var connect connectFunc
	if st.p.Graph == GraphDelaunay {
		// Intra-shard connectivity via this shard's own triangulation (it
		// contains the owned core subset's EMST), exactly as RunSharded.
		r.delaunayTurn(t, owned)
		connect = st.bcpConnected // backward cross edges: exact BCP
	} else {
		connect = st.connectFn()
	}

	// Owned core cells, size-sorted so large cells connect their
	// surroundings early and prune later queries (Algorithm 3 line 3).
	order := make([]int32, 0, len(owned))
	for _, lg := range owned {
		if len(st.corePts[lg]) > 0 {
			order = append(order, lg)
		}
	}
	slices.SortFunc(order, func(a, b int32) int {
		if st.coreSizeLess(a, b) {
			return -1
		}
		if st.coreSizeLess(b, a) {
			return 1
		}
		return 0
	})
	ownLo, ownHi := int32(t.ownLo), int32(t.ownHi)
	ex.BlockedFor(len(order), 1, func(lo, hi int) {
		ws := st.getWS()
		for i := lo; i < hi; i++ {
			if st.cancelled() {
				break
			}
			lg := order[i]
			og := t.l2orig[lg]
			for _, lh := range st.cells.Neighbors[lg] {
				sh := t.l2s[lh]
				if sh >= ownHi {
					continue // forward pair: that shard's turn evaluates it
				}
				if sh >= ownLo {
					// Same shard: the higher original cell id evaluates the
					// pair (the monolithic dedup rule, on original ids).
					if st.p.Graph == GraphDelaunay || t.l2orig[lh] >= og {
						continue
					}
				}
				r.oocPair(st, lg, lh, og, t.l2orig[lh], connect, ws)
			}
		}
		st.putWS(ws)
	})
	if r.p.Timings != nil {
		r.p.Timings.Graph += time.Since(start)
	}
	return ex.Err()
}

// oocPair is processPair against the global union-find over original cell
// ids: local cells carry the geometry, original ids carry the connectivity.
func (r *oocRun) oocPair(st *pipeline, lg, lh, og, oh int32, connect connectFunc, ws *workerScratch) {
	if len(st.corePts[lg]) == 0 || len(st.corePts[lh]) == 0 {
		return
	}
	if st.k.BoxBoxDistSqAt(st.coreBBLo, st.coreBBHi, lg, lh) > st.eps2 {
		return
	}
	if r.guf.SameSet(og, oh) {
		return
	}
	if connect(lg, lh, ws) {
		r.guf.Union(og, oh)
	}
}

// delaunayTurn triangulates the owned core points of one turn and unions the
// cells joined by an inter-cell edge of length at most eps — delaunayUnion
// redirected into the global original-id union-find.
func (r *oocRun) delaunayTurn(t *oocTurn, owned []int32) {
	st := t.st
	total := 0
	for _, lg := range owned {
		total += len(st.corePts[lg])
	}
	if total == 0 || st.cancelled() {
		return
	}
	all := make([]int32, 0, total)
	for _, lg := range owned {
		all = append(all, st.corePts[lg]...)
	}
	if st.contig {
		// The triangulation runs over the window's original store (CellOf is
		// keyed by window-local index); map payload rows back through Order.
		// With BuildCellMajor's identity Order this is a no-op, but the
		// translation keeps the layouts interchangeable.
		for i, p := range all {
			all[i] = st.cells.Order[p]
		}
	}
	edges := delaunay.Triangulate(st.ex, st.cells.Pts, all)
	cellEdges := delaunay.FilterCellEdges(st.ex, edges, st.cells.Pts, st.cells.CellOf, st.eps)
	st.ex.For(len(cellEdges), func(i int) {
		r.guf.Union(t.l2orig[cellEdges[i].U], t.l2orig[cellEdges[i].V])
	})
}

// borderTurn is one pass-2 window: recollect the whole window's core state
// from the (now final) global flags, then run Algorithm 4 for the owned
// cells' non-core points against the window-local labels view. Label writes
// land in the global store-order array through the subslice alias; candidate
// resolution only consults the owned cell's neighbors, all of which are in
// the window by the halo invariant.
func (r *oocRun) borderTurn(s int) error {
	t, err := r.openTurn(s)
	if err != nil {
		return err
	}
	defer t.close()
	st, ex := t.st, t.st.ex
	cells := t.cells

	start := time.Now()
	ex.ForGrain(t.cellHi-t.cellLo, 1, func(i int) {
		if st.cancelled() {
			return
		}
		st.collectCellCore(int(t.s2l[i]))
	})
	if r.p.Timings != nil {
		r.p.Timings.Collect += time.Since(start)
	}
	if st.cancelled() {
		return ex.Err()
	}

	if r.p.PhaseHook != nil {
		r.p.PhaseHook("border")
	}
	start = time.Now()
	localLabels := r.labels[t.pLo : t.pLo+cells.Pts.N]
	owned := t.s2l[t.ownLo-t.cellLo : t.ownHi-t.cellLo]
	origIdx := r.store.OrigIdx()
	ex.BlockedFor(len(owned), 1, func(lo, hi int) {
		ws := st.getWS()
		var multiP []int32   // original point ids of multi-cluster borders
		var multiM [][]int32 // their membership lists
		for i := lo; i < hi; i++ {
			if st.cancelled() {
				break
			}
			lg := owned[i]
			g := int(lg)
			if cells.CellSize(g) >= st.p.MinPts {
				continue // all points are core (Sample is rejected up front)
			}
			built := false
			pts := st.cellPts(g)
			orig := cells.PointsOf(g) // window-local store order; == pts here
			for i, p := range pts {
				op := orig[i]
				if st.coreFlags[op] {
					continue
				}
				if !built {
					st.borderCellCandidates(lg, localLabels, ws)
					built = true
				}
				if len(ws.sure) == 0 && len(ws.cand) == 0 {
					break
				}
				found := append(ws.found[:0], ws.sure...)
				for _, h := range ws.cand {
					found = st.borderScanCell(p, h, localLabels, found)
				}
				ws.found = found // keep grown capacity
				if len(found) > 0 {
					localLabels[op] = found[0]
					if len(found) > 1 {
						multiP = append(multiP, int32(origIdx[t.pLo+int(op)]))
						multiM = append(multiM, append([]int32(nil), found...))
					}
				}
			}
		}
		st.putWS(ws)
		if len(multiP) > 0 {
			r.borderMu.Lock()
			for i, p := range multiP {
				r.border[p] = multiM[i]
			}
			r.borderMu.Unlock()
		}
	})
	if r.p.Timings != nil {
		r.p.Timings.Border += time.Since(start)
	}
	return ex.Err()
}
