package core

import (
	"fmt"

	"pdbscan/internal/grid"
	"pdbscan/internal/prim"
	"pdbscan/internal/quadtree"
)

// Incremental carries the per-cell pipeline state that survives between
// streaming runs: core flags per point slot, per-cell quadtrees, and the
// boolean cell-graph edge set. It pairs with grid.Dynamic — the cell slots
// and point slots the caches are keyed by are the ones Dynamic keeps stable
// across mutations — and with the affected set a Snapshot reports: only state
// whose inputs fall in that set is recomputed by RunIncremental.
//
// The zero value is not usable; create with NewIncremental. An Incremental
// must not be shared between concurrent RunIncremental calls (the streaming
// API serializes).
type Incremental struct {
	valid  bool
	minPts int // the MinPts coreFlags (and corePts-derived caches) hold for

	// coreFlags[p] for every point slot; stale entries are overwritten for
	// affected cells and cleared for freed slots on every run.
	coreFlags []bool

	// Per-cell core point lists and their bounding boxes (the collectCore
	// products), valid for clean cells whenever MinPts is unchanged.
	corePts  [][]int32
	coreBBLo []float64
	coreBBHi []float64

	// Per-cell quadtrees. allTrees depend only on the cell's point set;
	// coreTrees additionally on MinPts (via the core point list) and the
	// depth cap (via Graph kind and Rho).
	allTrees   []*quadtree.Tree
	coreTrees  []*quadtree.Tree
	coreMinPts int
	coreDepth  int

	// edges holds the connectivity boolean of every neighboring core-cell
	// pair: edges[g] lists, in ascending h order, the booleans for g's
	// neighbors h < g that are core cells (mirroring the sorted Neighbors
	// lists, so a tick can walk cache and neighbor list in lockstep with no
	// lookups). Unlike Run, the incremental path evaluates every pair (no
	// already-connected pruning) precisely so this set is complete: the next
	// tick can then union preserved booleans for clean pairs without
	// re-deriving connectivity order.
	edges    [][]edgeEntry
	edgeKind GraphStrategy // GraphBCP (all exact methods) or GraphApprox
	edgeRho  float64

	// edgesSpare is the previous tick's top-level edge table, recycled as
	// the next tick's newEdges so a steady-state tick allocates no
	// cell-count-sized table. Only the outer slice is reused — the per-cell
	// entry lists may be aliased between consecutive tables (the clean-cell
	// fast path re-points them), so entries are never appended in place.
	edgesSpare [][]edgeEntry
}

// NewIncremental returns an empty cache; the first RunIncremental on it
// computes everything and later runs reuse whatever the DirtyInfo allows.
func NewIncremental() *Incremental {
	return &Incremental{coreDepth: -2}
}

// Fresh reports whether the cache has absorbed no run yet — the next
// RunIncremental on it recomputes everything regardless of the DirtyInfo.
// Callers use it to report full rebuilds (e.g. after a sharded run dropped
// the caches) honestly in their stats.
func (inc *Incremental) Fresh() bool { return !inc.valid }

// edgeEntry records one evaluated cell-graph pair (h < g, stored under g).
type edgeEntry struct {
	h    int32
	conn bool
}

// RunIncremental executes the pipeline over a Dynamic snapshot, recomputing
// MarkCore and the cell-graph edges only for cells in dirty's affected set
// (plus everything, when MinPts or the connectivity kind changed since the
// cached state was built) and reusing inc's caches for the rest. Cluster
// connectivity is rebuilt from the preserved + recomputed edge booleans with
// a fresh union-find, and labels and borders are re-derived in full — both
// are cheap linear passes compared to the distance work the caches avoid.
//
// The result is exactly the clustering Run produces on the same cells, up to
// cluster label permutation. The exact graph strategies (BCP, quadtree, USEC,
// Delaunay) all define the same cell connectivity, so the incremental path
// evaluates exact edges with filtered BCP regardless of which exact strategy
// p.Graph names; GraphApprox keeps its approximate quadtree semantics
// (deterministic per cell pair, hence cacheable). Bucketing is a scheduling
// heuristic for the pruned batch path and is ignored here.
func RunIncremental(cells *grid.Cells, p Params, inc *Incremental, dirty *grid.DirtyInfo) (*Result, error) {
	if err := validateParams(cells, &p); err != nil {
		return nil, err
	}
	if inc == nil || dirty == nil {
		return nil, fmt.Errorf("core: RunIncremental requires an Incremental cache and DirtyInfo")
	}
	if p.Sample != nil {
		return nil, fmt.Errorf("core: sampled-core mode is batch-only (no incremental path)")
	}
	// The incremental caches (core lists, quadtrees, edge endpoints) are
	// keyed by original point index and survive across ticks, while the
	// cell-major payload's row space is rebuilt by every Snapshot — a
	// payload-row run would poison every cached index. Run indirect.
	p.ForceIndirectLayout = true

	// Normalize the connectivity kind: every exact strategy shares one edge
	// boolean ("some core pair within eps"), computed by filtered BCP.
	kind := GraphBCP
	if p.Graph == GraphApprox {
		kind = GraphApprox
	}
	p.Graph = kind

	numCells := cells.NumCells()
	n := cells.Pts.N

	// Dirty predicates. Content-dirty: the cell's own point set (or its
	// eps-neighborhood) changed. Core-dirty additionally triggers when the
	// cached core flags were computed for a different MinPts. The hot loops
	// take (allDirty, affected) directly — a closure call per neighbor visit
	// is measurable at cell-graph scale.
	contentAllDirty := dirty.Full || !inc.valid
	allDirty := contentAllDirty || p.MinPts != inc.minPts
	affected := dirty.Affected
	contentDirty := func(g int) bool { return contentAllDirty || affected[g] }
	coreDirty := func(g int) bool { return allDirty || affected[g] }

	// Drop tree caches whose validity keys no longer match, and invalidate
	// per-cell entries regardless of whether this run will use them — the
	// next run that does must not see stale trees.
	if inc.allTrees != nil {
		inc.allTrees = resizeTrees(inc.allTrees, numCells)
		for g := range inc.allTrees {
			if contentDirty(g) {
				inc.allTrees[g] = nil
			}
		}
	}
	maxDepth := -1
	if kind == GraphApprox {
		maxDepth = quadtree.ApproxDepth(p.Rho)
	}
	if inc.coreTrees != nil {
		if inc.coreMinPts != p.MinPts || (kind == GraphApprox && inc.coreDepth != maxDepth) {
			inc.coreTrees = nil
		} else {
			inc.coreTrees = resizeTrees(inc.coreTrees, numCells)
			for g := range inc.coreTrees {
				if coreDirty(g) {
					inc.coreTrees[g] = nil
				}
			}
		}
	}

	st := newPipeline(cells, p)
	defer st.release()

	// Cancellation boundary: a cancelled incremental run leaves inc's caches
	// half-absorbed (flags, lists, and edges are updated in place), so the
	// cache is poisoned before the error returns — the owner either drops it
	// (StreamingClusterer replaces a failed run's cache) or the next run sees
	// Fresh() and recomputes everything. Either way no stale entry survives.
	boundary := func(name string) error {
		err := st.phase(name)
		if err != nil {
			inc.valid = false
		}
		return err
	}

	// MarkCore, restricted to core-dirty cells over the cached flags.
	if err := boundary("mark"); err != nil {
		return nil, err
	}
	if len(inc.coreFlags) < n {
		inc.coreFlags = append(inc.coreFlags, make([]bool, n-len(inc.coreFlags))...)
	}
	st.coreFlags = inc.coreFlags[:n]
	if p.Mark == MarkQuadtree {
		st.rs.allTrees = lazyTreeBuf(st.rs.allTrees, numCells)
		st.allTrees = st.rs.allTrees
		st.preAllTrees = inc.allTrees // nil entries (or a nil slice) build lazily
	}
	st.ex.For(n, func(i int) {
		if cells.CellOf[i] < 0 {
			st.coreFlags[i] = false // freed point slot
		}
	})
	st.ex.BlockedFor(numCells, 1, func(lo, hi int) {
		ws := st.getWS()
		for g := lo; g < hi; g++ {
			if st.cancelled() {
				break
			}
			if (allDirty || affected[g]) && cells.CellSize(g) > 0 {
				st.markCellCore(g, ws)
			}
		}
		st.putWS(ws)
	})

	if err := boundary("collect"); err != nil {
		return nil, err
	}
	st.collectCoreIncremental(inc, allDirty, affected)
	if err := boundary("graph"); err != nil {
		return nil, err
	}
	st.clusterCoreIncremental(inc, kind, allDirty, affected)
	if err := boundary("label"); err != nil {
		return nil, err
	}
	labels, numClusters := st.coreLabels()
	if err := boundary("border"); err != nil {
		return nil, err
	}
	border := st.clusterBorder(labels, numClusters)
	if err := boundary("done"); err != nil {
		return nil, err
	}

	// Harvest the caches for the next run.
	inc.valid = true
	inc.minPts = p.MinPts
	if p.Mark == MarkQuadtree {
		inc.allTrees = harvestTrees(inc.allTrees, st.allTrees, numCells)
	}
	if kind == GraphApprox {
		inc.coreTrees = harvestTrees(inc.coreTrees, st.coreTrees, numCells)
		inc.coreMinPts = p.MinPts
		inc.coreDepth = maxDepth
	}

	// The result's flags must not alias the cache (the cache mutates on the
	// next run).
	coreOut := make([]bool, n)
	copy(coreOut, st.coreFlags)
	return &Result{
		Core:        coreOut,
		Labels:      labels,
		Border:      border,
		NumClusters: numClusters,
	}, nil
}

// collectCoreIncremental is collectCore over the cached per-cell core lists:
// only core-dirty cells re-derive their core points and core bounding box;
// clean cells keep last tick's (their flags and point sets are unchanged).
// All-core cells are re-aliased to the current snapshot's point list so no
// cache entry pins a previous snapshot's Order array.
func (st *pipeline) collectCoreIncremental(inc *Incremental, allDirty bool, affected []bool) {
	c := st.cells
	d := c.Pts.D
	numCells := c.NumCells()
	for len(inc.corePts) < numCells {
		inc.corePts = append(inc.corePts, nil)
	}
	inc.corePts = inc.corePts[:numCells]
	inc.coreBBLo = resizeFloats(inc.coreBBLo, numCells*d)
	inc.coreBBHi = resizeFloats(inc.coreBBHi, numCells*d)
	st.corePts = inc.corePts
	st.coreBBLo = inc.coreBBLo
	st.coreBBHi = inc.coreBBHi
	st.ex.ForGrain(numCells, 1, func(g int) {
		if !allDirty && !affected[g] {
			if len(st.corePts[g]) > 0 && len(st.corePts[g]) == c.CellSize(g) {
				st.corePts[g] = c.PointsOf(g) // same contents, current backing
			}
			return
		}
		st.collectCellCore(g)
	})
	st.coreCells = prim.FilterIndex(st.ex, numCells, func(g int) bool {
		return len(st.corePts[g]) > 0
	})
}

func resizeFloats(a []float64, n int) []float64 {
	if cap(a) >= n {
		return a[:n]
	}
	out := make([]float64, n)
	copy(out, a)
	return out
}

func resizeTrees(trees []*quadtree.Tree, numCells int) []*quadtree.Tree {
	for len(trees) < numCells {
		trees = append(trees, nil)
	}
	return trees[:numCells]
}

// harvestTrees merges the trees built during this run (st's lazy slots) into
// the cache slice: a pre-seeded entry stays, a freshly built one is adopted.
func harvestTrees(cached []*quadtree.Tree, built []lazyTree, numCells int) []*quadtree.Tree {
	cached = resizeTrees(cached, numCells)
	for g := range built {
		if t := built[g].tree; t != nil {
			cached[g] = t
		}
	}
	return cached
}

// clusterCoreIncremental builds the cell graph like clusterCore, but
// evaluates the connectivity boolean of every neighboring core-cell pair —
// reusing the cached boolean when both endpoints are outside the core-dirty
// set — and unions all true edges into a fresh union-find. Evaluating every
// pair (instead of pruning already-connected ones) is what keeps inc.edges a
// complete function of the point set, so cleanness of the two endpoint cells
// alone certifies a cached value.
func (st *pipeline) clusterCoreIncremental(inc *Incremental, kind GraphStrategy, allDirty bool, affected []bool) {
	numCells := st.cells.NumCells()
	st.initUF(numCells)

	var connect connectFunc
	switch kind {
	case GraphBCP:
		connect = st.bcpConnected
	case GraphApprox:
		st.rs.coreTrees = lazyTreeBuf(st.rs.coreTrees, numCells)
		st.coreTrees = st.rs.coreTrees
		st.preCoreTrees = inc.preCoreTreesFor(numCells)
		connect = st.approxConnected
	}

	// A cached edge boolean is reusable only if it was computed by the same
	// deterministic function: same MinPts (core point sets), same kind, and
	// same rho for approx.
	reusable := inc.valid && inc.minPts == st.p.MinPts &&
		inc.edgeKind == kind && (kind != GraphApprox || inc.edgeRho == st.p.Rho)

	evaluate := func(g, h int32, ws *workerScratch) bool {
		// The core-bounding-box filter is part of the edge function (shared
		// with clusterCore, so the booleans — and for approx, the actual
		// query sequence — match the from-scratch path).
		if st.k.BoxBoxDistSqAt(st.coreBBLo, st.coreBBHi, g, h) > st.eps2 {
			return false
		}
		return connect(g, h, ws)
	}

	// Recycle the previous tick's top-level table (cleared to full capacity:
	// stale entries must not pin vanished cells' lists even when the cell
	// count shrank); the per-cell entry lists are never reused in place —
	// see the edgesSpare invariant.
	newEdges := inc.edgesSpare
	if cap(newEdges) < numCells {
		newEdges = make([][]edgeEntry, numCells)
	} else {
		newEdges = newEdges[:cap(newEdges)]
		clear(newEdges)
		newEdges = newEdges[:numCells]
	}
	st.ex.BlockedFor(len(st.coreCells), 1, func(blo, bhi int) {
		ws := st.getWS()
		defer st.putWS(ws)
		for i := blo; i < bhi; i++ {
			if st.cancelled() {
				break // partial edge table; RunIncremental poisons the cache
			}
			g := st.coreCells[i]
			// A clean cell's cached entry list is aligned with its (unchanged,
			// sorted) neighbor list: walk the two in lockstep. An entry whose h
			// is clean carries a valid boolean; affected h's are re-evaluated
			// (their core point set may have changed).
			var prev []edgeEntry
			if reusable && !allDirty && !affected[g] && int(g) < len(inc.edges) {
				prev = inc.edges[g]
				// Fast path: no neighbor below g is dirty, so the cached entry
				// list is valid wholesale — just union its true edges.
				fast := true
				for _, h := range st.cells.Neighbors[g] {
					if h < g && affected[h] {
						fast = false
						break
					}
				}
				if fast {
					for _, e := range prev {
						if e.conn {
							st.uf.Union(g, e.h)
						}
					}
					newEdges[g] = prev
					continue
				}
			}
			pi := 0
			out := make([]edgeEntry, 0, len(prev))
			for _, h := range st.cells.Neighbors[g] {
				if h >= g || len(st.corePts[h]) == 0 {
					continue
				}
				for pi < len(prev) && prev[pi].h < h {
					pi++
				}
				var conn bool
				if prev != nil && !affected[h] && pi < len(prev) && prev[pi].h == h {
					conn = prev[pi].conn
				} else {
					conn = evaluate(g, h, ws)
				}
				out = append(out, edgeEntry{h: h, conn: conn})
				if conn {
					st.uf.Union(g, h)
				}
			}
			newEdges[g] = out
		}
	})

	// Replace the edge cache wholesale: entries for vanished cells drop out
	// by construction. The displaced table becomes the next tick's spare.
	inc.edgesSpare = inc.edges
	inc.edges = newEdges
	inc.edgeKind = kind
	inc.edgeRho = st.p.Rho
}

// preCoreTreesFor returns the cached core trees sized to numCells (nil when
// nothing is cached).
func (inc *Incremental) preCoreTreesFor(numCells int) []*quadtree.Tree {
	if inc.coreTrees == nil {
		return nil
	}
	inc.coreTrees = resizeTrees(inc.coreTrees, numCells)
	return inc.coreTrees
}
