package core

import (
	"fmt"
	"slices"

	"pdbscan/internal/grid"
)

// RunSharded executes the pipeline as a partition/merge computation over a
// spatial Partition of the cell lattice: every shard marks cores, collects
// per-cell core state, and builds the intra-shard cell graph independently
// (shards run in parallel on the executor, each one serially — shard-level
// parallelism replaces the phase-level parallel loops of Run), then a
// boundary-merge pass evaluates only the cell-graph edges that cross shard
// cuts and stitches the shard-local components together in the global
// lock-free union-find. Labels and borders are derived exactly as in Run.
//
// The result is identical to Run on the same cells — bit-for-bit, not merely
// up to label permutation — for every strategy including GraphApprox:
//
//   - Core flags are decomposable: a point's flag depends only on points
//     within eps, all reachable through its cell's neighbor list regardless
//     of which shard owns them (halo cells are read, never written).
//   - Every per-pair connectivity predicate (connectFn) is a pure function
//     of the cell pair, so the connected components equal those of the full
//     edge set no matter which pass — intra-shard or boundary — evaluates an
//     edge, or skips it as already connected. GraphDelaunay has no per-pair
//     predicate; each shard triangulates its own core points (the subset
//     triangulation contains the subset's Euclidean MST, preserving every
//     intra-shard eps-connection) and boundary edges use exact BCP, which
//     lands on the same exact components every exact strategy defines.
//   - Union-by-index makes a component's root its minimum cell index —
//     independent of union order — and DenseRoots assigns labels by root
//     order, so equal components mean equal labels.
//
// Bucketing is a batch-scheduling heuristic of the monolithic traversal and
// is subsumed here: each shard already processes its cells in size-sorted
// order, serially, so earlier (larger) cells prune later queries within the
// shard. Results are unaffected (the components do not depend on evaluation
// order).
func RunSharded(cells *grid.Cells, p Params, part *grid.Partition) (*Result, error) {
	if err := validateParams(cells, &p); err != nil {
		return nil, err
	}
	numCells := cells.NumCells()
	if part == nil || len(part.ShardOf) != numCells {
		return nil, fmt.Errorf("core: RunSharded requires a Partition of the given cells")
	}
	if p.Sample != nil {
		return nil, fmt.Errorf("core: sampled-core runs are monolithic (Run), not sharded")
	}
	st := newPipeline(cells, p)
	defer st.release()

	// Phase 1 — per shard: MarkCore then collect core state for every owned
	// cell. Marking reads the points of neighbor cells wherever they live
	// (halo reads are the only cross-shard traffic, and they are read-only);
	// collection touches only the cell's own flags, set just before.
	if err := st.phase("mark"); err != nil {
		return nil, err
	}
	st.coreFlags = make([]bool, cells.Pts.N) // escapes into Result.Core
	if st.p.Mark == MarkQuadtree {
		st.rs.allTrees = lazyTreeBuf(st.rs.allTrees, numCells)
		st.allTrees = st.rs.allTrees
	}
	st.initCoreState()
	st.ex.ForGrain(part.NumShards, 1, func(s int) {
		ws := st.getWS()
		for _, g := range part.Owned[s] {
			if st.cancelled() {
				break
			}
			st.markCellCore(int(g), ws)
		}
		for _, g := range part.Owned[s] {
			if st.cancelled() {
				break
			}
			st.collectCellCore(int(g))
		}
		st.putWS(ws)
	})
	// st.coreCells stays nil: the monolithic traversal's global core-cell
	// list has no sharded consumer — each shard derives its own from
	// corePts, and labels/borders test corePts directly.

	// Phase 2 — per shard: intra-shard cell graph. Unions stay within the
	// shard's owned cells, so shards never contend; the union-find is global
	// only so phase 3 can link across shards without re-indexing.
	if err := st.phase("graph"); err != nil {
		return nil, err
	}
	st.initUF(numCells)
	var connect connectFunc
	if st.p.Graph == GraphDelaunay {
		connect = st.bcpConnected // boundary edges: exact per-pair predicate
	} else {
		connect = st.connectFn()
	}
	st.ex.ForGrain(part.NumShards, 1, func(s int) {
		ws := st.getWS()
		st.clusterShard(part, s, connect, ws)
		st.putWS(ws)
	})

	// Phase 3 — boundary merge: evaluate the cell-graph edges that cross
	// shard cuts. Only boundary cells can carry one; the higher-index cell
	// evaluates each pair (same dedup rule as the monolithic traversal), so
	// every cross edge is examined exactly once, by the owner of its higher
	// cell. Cross-shard unions on the lock-free union-find are safe.
	if err := st.phase("merge"); err != nil {
		return nil, err
	}
	st.ex.ForGrain(part.NumShards, 1, func(s int) {
		ws := st.getWS()
		for _, g := range part.Boundary[s] {
			if st.cancelled() {
				break
			}
			if len(st.corePts[g]) == 0 {
				continue
			}
			for _, h := range st.cells.Neighbors[g] {
				if h >= g || part.ShardOf[h] == int32(s) {
					continue
				}
				st.processPair(g, h, connect, ws)
			}
		}
		st.putWS(ws)
	})

	if err := st.phase("label"); err != nil {
		return nil, err
	}
	labels, numClusters := st.coreLabels()
	if err := st.phase("border"); err != nil {
		return nil, err
	}
	border := st.clusterBorder(labels, numClusters)
	if err := st.phase("done"); err != nil {
		return nil, err
	}
	return &Result{
		Core:        st.coreFlags,
		Labels:      labels,
		Border:      border,
		NumClusters: numClusters,
	}, nil
}

// clusterShard builds the cell graph restricted to shard s: owned core cells
// in size-sorted order (Algorithm 3's SortBySize, per shard), each examining
// its lower-index same-shard neighbors. Cross-shard pairs are left to the
// boundary-merge pass.
func (st *pipeline) clusterShard(part *grid.Partition, s int, connect connectFunc, ws *workerScratch) {
	if st.p.Graph == GraphDelaunay {
		// Triangulate this shard's own core points; inter-cell edges <= eps
		// union owned cells only (every triangulated point is owned).
		var coreCells []int32
		for _, g := range part.Owned[s] {
			if len(st.corePts[g]) > 0 {
				coreCells = append(coreCells, g)
			}
		}
		st.delaunayUnion(coreCells)
		return
	}
	order := ws.cellOrder[:0]
	for _, g := range part.Owned[s] {
		if len(st.corePts[g]) > 0 {
			order = append(order, g)
		}
	}
	ws.cellOrder = order // keep grown capacity
	slices.SortFunc(order, func(a, b int32) int {
		if st.coreSizeLess(a, b) {
			return -1
		}
		if st.coreSizeLess(b, a) {
			return 1
		}
		return 0
	})
	for _, g := range order {
		if st.cancelled() {
			return
		}
		for _, h := range st.cells.Neighbors[g] {
			if h >= g || part.ShardOf[h] != int32(s) {
				continue
			}
			st.processPair(g, h, connect, ws)
		}
	}
}
