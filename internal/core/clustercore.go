package core

import (
	"pdbscan/internal/delaunay"
	"pdbscan/internal/geom"
	"pdbscan/internal/prim"
	"pdbscan/internal/unionfind"
)

// clusterCore implements Algorithm 3: build the cell graph over core cells,
// maintaining connected components on the fly in a lock-free union-find so
// that connectivity queries between already-connected cells are pruned, and
// optionally processing cells in size-sorted batches (bucketing).
func (st *pipeline) clusterCore() {
	st.uf = unionfind.New(st.cells.NumCells())
	if len(st.coreCells) == 0 {
		return
	}
	if st.p.Graph == GraphDelaunay {
		st.clusterCoreDelaunay()
		return
	}

	connect := st.connectFn()

	// SortBySize (Algorithm 3, line 3): non-increasing core-point count, so
	// large cells connect their surroundings early and prune later queries.
	order := make([]int32, len(st.coreCells))
	copy(order, st.coreCells)
	prim.Sort(st.ex, order, st.coreSizeLess)

	process := func(g int32) {
		for _, h := range st.cells.Neighbors[g] {
			// Each unordered pair is examined by the higher-index cell.
			if h >= g {
				continue
			}
			st.processPair(g, h, connect)
		}
	}

	if st.p.Bucketing {
		// Process the sorted cells in batches: sequential across batches,
		// parallel within, so the pruning from earlier (larger) cells is
		// visible to later batches (Section 4.4, bucketing).
		nb := st.p.Buckets
		if nb > len(order) {
			nb = len(order)
		}
		bsize := (len(order) + nb - 1) / nb
		for lo := 0; lo < len(order); lo += bsize {
			hi := lo + bsize
			if hi > len(order) {
				hi = len(order)
			}
			batch := order[lo:hi]
			st.ex.ForGrain(len(batch), 1, func(i int) { process(batch[i]) })
		}
	} else {
		st.ex.ForGrain(len(order), 1, func(i int) { process(order[i]) })
	}
}

// coreSizeLess is the SortBySize ordering of Algorithm 3: core-point count
// descending, ties by cell index. One definition, shared by the monolithic
// traversal and the per-shard sort, so the two paths cannot diverge.
func (st *pipeline) coreSizeLess(a, b int32) bool {
	ca, cb := len(st.corePts[a]), len(st.corePts[b])
	if ca != cb {
		return ca > cb
	}
	return a < b
}

// connectFn returns the cell-pair connectivity predicate of the configured
// graph strategy, allocating whatever lazy per-cell state the strategy needs.
// The predicate is a pure deterministic function of the cell pair (given the
// core point sets), which is what lets the sharded and incremental paths
// evaluate edges in any order — or skip already-connected ones — and still
// land on the exact connected components of the full edge set. Not valid for
// GraphDelaunay, whose connectivity is a whole-triangulation computation
// rather than a per-pair predicate.
func (st *pipeline) connectFn() func(g, h int32) bool {
	switch st.p.Graph {
	case GraphBCP:
		return st.bcpConnected
	case GraphQuadtree:
		st.coreTrees = make([]lazyTree, st.cells.NumCells())
		return st.quadtreeConnected
	case GraphApprox:
		st.coreTrees = make([]lazyTree, st.cells.NumCells())
		return st.approxConnected
	case GraphUSEC:
		st.initUSEC()
		return st.usecConnected
	}
	panic("core: no per-pair connectivity predicate for this graph strategy")
}

// processPair evaluates the cell-graph edge between core cell g and its
// neighbor h (in either cell order): skip non-core cells, filter by the core
// bounding boxes, prune pairs already connected in the union-find, and union
// on a positive connectivity answer. Shared verbatim by the monolithic batch
// traversal and the sharded intra-shard and boundary-merge passes, so every
// path applies the identical edge function.
func (st *pipeline) processPair(g, h int32, connect func(g, h int32) bool) {
	if len(st.corePts[g]) == 0 || len(st.corePts[h]) == 0 {
		return // not a core cell pair
	}
	// Core bounding boxes must be within eps for any core pair to qualify
	// (the neighbor relation was computed from full cells).
	d := st.cells.Pts.D
	if geom.BoxBoxDistSq(
		st.coreBBLo[int(g)*d:(int(g)+1)*d], st.coreBBHi[int(g)*d:(int(g)+1)*d],
		st.coreBBLo[int(h)*d:(int(h)+1)*d], st.coreBBHi[int(h)*d:(int(h)+1)*d],
	) > st.eps*st.eps {
		return
	}
	// Reduced connectivity queries: skip if already connected.
	if st.uf.SameSet(g, h) {
		return
	}
	if connect(g, h) {
		st.uf.Union(g, h)
	}
}

// bcpConnected decides cell connectivity with a bichromatic closest pair
// computation over core points, using the two optimizations of Section 4.4:
// (1) filter out points farther than eps from the other cell's core bounding
// box, and (2) iterate over fixed-size blocks of the two point sets, aborting
// as soon as any pair within eps is found.
func (st *pipeline) bcpConnected(g, h int32) bool {
	d := st.cells.Pts.D
	eps2 := st.eps * st.eps
	gPts := st.corePts[g]
	hPts := st.corePts[h]
	gLo, gHi := st.coreBBLo[int(g)*d:(int(g)+1)*d], st.coreBBHi[int(g)*d:(int(g)+1)*d]
	hLo, hHi := st.coreBBLo[int(h)*d:(int(h)+1)*d], st.coreBBHi[int(h)*d:(int(h)+1)*d]

	// Filter: only points within eps of the other cell's core box can be in
	// a qualifying pair.
	gf := filterNear(st, gPts, hLo, hHi, eps2)
	if len(gf) == 0 {
		return false
	}
	hf := filterNear(st, hPts, gLo, gHi, eps2)
	if len(hf) == 0 {
		return false
	}

	// Blocked early-termination scan.
	const block = 64
	for i := 0; i < len(gf); i += block {
		iEnd := min(i+block, len(gf))
		for j := 0; j < len(hf); j += block {
			jEnd := min(j+block, len(hf))
			for _, p := range gf[i:iEnd] {
				pRow := st.at(p)
				for _, q := range hf[j:jEnd] {
					if geom.DistSq(pRow, st.at(q)) <= eps2 {
						return true
					}
				}
			}
		}
	}
	return false
}

// filterNear returns the subset of pts within sqrt(eps2) of the box.
func filterNear(st *pipeline, pts []int32, boxLo, boxHi []float64, eps2 float64) []int32 {
	out := make([]int32, 0, len(pts))
	for _, p := range pts {
		if geom.PointBoxDistSq(st.at(p), boxLo, boxHi) <= eps2 {
			out = append(out, p)
		}
	}
	return out
}

// quadtreeConnected queries the larger cell's core quadtree with each core
// point of the smaller cell, terminating on the first non-zero range count
// (the exact quadtree connectivity of Section 5.2).
func (st *pipeline) quadtreeConnected(g, h int32) bool {
	// Query from the smaller side into the bigger tree.
	if len(st.corePts[g]) > len(st.corePts[h]) {
		g, h = h, g
	}
	tree := st.coreTree(h)
	for _, p := range st.corePts[g] {
		if tree.AnyWithin(st.at(p), st.eps) {
			return true
		}
	}
	return false
}

// approxConnected is quadtreeConnected with Gan–Tao's approximate range
// query: connect when a point is certainly within eps, never connect when
// everything is beyond eps(1+rho), either answer in between.
func (st *pipeline) approxConnected(g, h int32) bool {
	if len(st.corePts[g]) > len(st.corePts[h]) {
		g, h = h, g
	}
	tree := st.coreTree(h)
	for _, p := range st.corePts[g] {
		if tree.ApproxAnyWithin(st.at(p), st.eps, st.p.Rho) {
			return true
		}
	}
	return false
}

// clusterCoreDelaunay implements the triangulation-based cell graph
// (Section 4.4): triangulate all core points, keep inter-cell edges of
// length at most eps (parallel filter), and union the endpoints' cells.
func (st *pipeline) clusterCoreDelaunay() {
	st.delaunayUnion(st.coreCells)
}

// delaunayUnion triangulates the core points of the given cells and unions
// the cells joined by an inter-cell edge of length at most eps. The cell list
// is the whole core-cell set for the monolithic path and one shard's owned
// core cells for the sharded path: the triangulation of any point subset
// still contains its Euclidean MST, whose edges realize every eps-connection
// within the subset, so per-shard triangulations plus exact cross-boundary
// BCP edges reach exactly the exact-DBSCAN components.
func (st *pipeline) delaunayUnion(cellList []int32) {
	// Gather the core points of the listed cells.
	total := 0
	for _, g := range cellList {
		total += len(st.corePts[g])
	}
	if total == 0 {
		return
	}
	all := make([]int32, 0, total)
	for _, g := range cellList {
		all = append(all, st.corePts[g]...)
	}
	edges := delaunay.Triangulate(st.ex, st.cells.Pts, all)
	cellEdges := delaunay.FilterCellEdges(st.ex, edges, st.cells.Pts, st.cells.CellOf, st.eps)
	st.ex.For(len(cellEdges), func(i int) {
		st.uf.Union(cellEdges[i].U, cellEdges[i].V)
	})
}
