package core

import (
	"pdbscan/internal/delaunay"
	"pdbscan/internal/prim"
)

// connectFunc is a cell-pair connectivity predicate. The workerScratch
// carries the caller's per-worker buffers for predicates that need scratch
// (BCP's filtered point lists); predicates that don't ignore it.
type connectFunc func(g, h int32, ws *workerScratch) bool

// clusterCore implements Algorithm 3: build the cell graph over core cells,
// maintaining connected components on the fly in a lock-free union-find so
// that connectivity queries between already-connected cells are pruned, and
// optionally processing cells in size-sorted batches (bucketing).
func (st *pipeline) clusterCore() {
	st.initUF(st.cells.NumCells())
	if len(st.coreCells) == 0 {
		return
	}
	if st.p.Graph == GraphDelaunay {
		st.clusterCoreDelaunay()
		return
	}

	connect := st.connectFn()

	// SortBySize (Algorithm 3, line 3): non-increasing core-point count, so
	// large cells connect their surroundings early and prune later queries.
	st.rs.order = int32Buf(st.rs.order, len(st.coreCells))
	order := st.rs.order
	copy(order, st.coreCells)
	prim.Sort(st.ex, order, st.coreSizeLess)

	process := func(g int32, ws *workerScratch) {
		for _, h := range st.cells.Neighbors[g] {
			// Each unordered pair is examined by the higher-index cell.
			if h >= g {
				continue
			}
			st.processPair(g, h, connect, ws)
		}
	}

	if st.p.Bucketing {
		// Process the sorted cells in batches: sequential across batches,
		// parallel within, so the pruning from earlier (larger) cells is
		// visible to later batches (Section 4.4, bucketing).
		nb := st.p.Buckets
		if nb > len(order) {
			nb = len(order)
		}
		bsize := (len(order) + nb - 1) / nb
		for lo := 0; lo < len(order); lo += bsize {
			if st.cancelled() {
				return // partial union-find; Run bails at the phase boundary
			}
			hi := lo + bsize
			if hi > len(order) {
				hi = len(order)
			}
			batch := order[lo:hi]
			st.ex.BlockedFor(len(batch), 1, func(lo, hi int) {
				ws := st.getWS()
				for i := lo; i < hi; i++ {
					if st.cancelled() {
						break
					}
					process(batch[i], ws)
				}
				st.putWS(ws)
			})
		}
	} else {
		st.ex.BlockedFor(len(order), 1, func(lo, hi int) {
			ws := st.getWS()
			for i := lo; i < hi; i++ {
				if st.cancelled() {
					break
				}
				process(order[i], ws)
			}
			st.putWS(ws)
		})
	}
}

// coreSizeLess is the SortBySize ordering of Algorithm 3: core-point count
// descending, ties by cell index. One definition, shared by the monolithic
// traversal and the per-shard sort, so the two paths cannot diverge.
func (st *pipeline) coreSizeLess(a, b int32) bool {
	ca, cb := len(st.corePts[a]), len(st.corePts[b])
	if ca != cb {
		return ca > cb
	}
	return a < b
}

// connectFn returns the cell-pair connectivity predicate of the configured
// graph strategy, allocating whatever lazy per-cell state the strategy needs.
// The predicate is a pure deterministic function of the cell pair (given the
// core point sets), which is what lets the sharded and incremental paths
// evaluate edges in any order — or skip already-connected ones — and still
// land on the exact connected components of the full edge set. Not valid for
// GraphDelaunay, whose connectivity is a whole-triangulation computation
// rather than a per-pair predicate.
func (st *pipeline) connectFn() connectFunc {
	switch st.p.Graph {
	case GraphBCP:
		return st.bcpConnected
	case GraphQuadtree:
		st.rs.coreTrees = lazyTreeBuf(st.rs.coreTrees, st.cells.NumCells())
		st.coreTrees = st.rs.coreTrees
		return st.quadtreeConnected
	case GraphApprox:
		st.rs.coreTrees = lazyTreeBuf(st.rs.coreTrees, st.cells.NumCells())
		st.coreTrees = st.rs.coreTrees
		return st.approxConnected
	case GraphUSEC:
		st.initUSEC()
		return st.usecConnected
	}
	panic("core: no per-pair connectivity predicate for this graph strategy")
}

// processPair evaluates the cell-graph edge between core cell g and its
// neighbor h (in either cell order): skip non-core cells, filter by the core
// bounding boxes, prune pairs already connected in the union-find, and union
// on a positive connectivity answer. Shared verbatim by the monolithic batch
// traversal and the sharded intra-shard and boundary-merge passes, so every
// path applies the identical edge function.
func (st *pipeline) processPair(g, h int32, connect connectFunc, ws *workerScratch) {
	if len(st.corePts[g]) == 0 || len(st.corePts[h]) == 0 {
		return // not a core cell pair
	}
	// Core bounding boxes must be within eps for any core pair to qualify
	// (the neighbor relation was computed from full cells).
	if st.k.BoxBoxDistSqAt(st.coreBBLo, st.coreBBHi, g, h) > st.eps2 {
		return
	}
	// Reduced connectivity queries: skip if already connected.
	if st.uf.SameSet(g, h) {
		return
	}
	if connect(g, h, ws) {
		st.uf.Union(g, h)
	}
}

// bcpConnected decides cell connectivity with a bichromatic closest pair
// computation over core points, using the two optimizations of Section 4.4:
// (1) filter out points farther than eps from the other cell's core bounding
// box, and (2) iterate over fixed-size blocks of the two point sets, aborting
// as soon as any pair within eps is found. The filtered lists live in the
// worker's pooled scratch — no allocation per pair.
func (st *pipeline) bcpConnected(g, h int32, ws *workerScratch) bool {
	d := st.cells.Pts.D
	eps2 := st.eps2
	gPts := st.corePts[g]
	hPts := st.corePts[h]
	gLo, gHi := st.coreBBLo[int(g)*d:(int(g)+1)*d], st.coreBBHi[int(g)*d:(int(g)+1)*d]
	hLo, hHi := st.coreBBLo[int(h)*d:(int(h)+1)*d], st.coreBBHi[int(h)*d:(int(h)+1)*d]

	// Filter: only points within eps of the other cell's core box can be in
	// a qualifying pair. On the contiguous layout a full-cell core list is
	// exactly the dense payload row range [CellStart[g], CellStart[g+1]), so
	// the filter — and, when both filters keep everything, the blocked scan —
	// streams the payload with no index list at all. The range forms evaluate
	// the same points in the same order, so the answer is bit-identical.
	if st.contig {
		cs := st.cells.CellStart
		gFull := len(gPts) == int(cs[g+1]-cs[g])
		hFull := len(hPts) == int(cs[h+1]-cs[h])
		if gFull {
			ws.gf = st.k.FilterNearRangeInto(ws.gf[:0], cs[g], cs[g+1], hLo, hHi, eps2)
		} else {
			ws.gf = st.k.FilterNearInto(ws.gf[:0], gPts, hLo, hHi, eps2)
		}
		if len(ws.gf) == 0 {
			return false
		}
		if hFull {
			ws.hf = st.k.FilterNearRangeInto(ws.hf[:0], cs[h], cs[h+1], gLo, gHi, eps2)
		} else {
			ws.hf = st.k.FilterNearInto(ws.hf[:0], hPts, gLo, gHi, eps2)
		}
		if len(ws.hf) == 0 {
			return false
		}
		if gFull && hFull && len(ws.gf) == len(gPts) && len(ws.hf) == len(hPts) {
			return st.k.AnyPairWithinRanges(cs[g], cs[g+1], cs[h], cs[h+1], eps2)
		}
		return st.k.AnyPairWithin(ws.gf, ws.hf, eps2)
	}
	ws.gf = st.k.FilterNearInto(ws.gf[:0], gPts, hLo, hHi, eps2)
	if len(ws.gf) == 0 {
		return false
	}
	ws.hf = st.k.FilterNearInto(ws.hf[:0], hPts, gLo, gHi, eps2)
	if len(ws.hf) == 0 {
		return false
	}

	// Blocked early-termination scan.
	return st.k.AnyPairWithin(ws.gf, ws.hf, eps2)
}

// quadtreeConnected queries the larger cell's core quadtree with each core
// point of the smaller cell, terminating on the first non-zero range count
// (the exact quadtree connectivity of Section 5.2).
func (st *pipeline) quadtreeConnected(g, h int32, _ *workerScratch) bool {
	// Query from the smaller side into the bigger tree.
	if len(st.corePts[g]) > len(st.corePts[h]) {
		g, h = h, g
	}
	tree := st.coreTree(h)
	for _, p := range st.corePts[g] {
		if tree.AnyWithin(st.at(p), st.eps) {
			return true
		}
	}
	return false
}

// approxConnected is quadtreeConnected with Gan–Tao's approximate range
// query: connect when a point is certainly within eps, never connect when
// everything is beyond eps(1+rho), either answer in between.
func (st *pipeline) approxConnected(g, h int32, _ *workerScratch) bool {
	if len(st.corePts[g]) > len(st.corePts[h]) {
		g, h = h, g
	}
	tree := st.coreTree(h)
	for _, p := range st.corePts[g] {
		if tree.ApproxAnyWithin(st.at(p), st.eps, st.p.Rho) {
			return true
		}
	}
	return false
}

// clusterCoreDelaunay implements the triangulation-based cell graph
// (Section 4.4): triangulate all core points, keep inter-cell edges of
// length at most eps (parallel filter), and union the endpoints' cells.
func (st *pipeline) clusterCoreDelaunay() {
	st.delaunayUnion(st.coreCells)
}

// delaunayUnion triangulates the core points of the given cells and unions
// the cells joined by an inter-cell edge of length at most eps. The cell list
// is the whole core-cell set for the monolithic path and one shard's owned
// core cells for the sharded path: the triangulation of any point subset
// still contains its Euclidean MST, whose edges realize every eps-connection
// within the subset, so per-shard triangulations plus exact cross-boundary
// BCP edges reach exactly the exact-DBSCAN components.
func (st *pipeline) delaunayUnion(cellList []int32) {
	// Gather the core points of the listed cells.
	total := 0
	for _, g := range cellList {
		total += len(st.corePts[g])
	}
	if total == 0 || st.cancelled() {
		// A triangulation is a whole-computation step with no per-cell
		// boundary to stop at; skip it outright on a cancelled run.
		return
	}
	all := make([]int32, 0, total)
	for _, g := range cellList {
		all = append(all, st.corePts[g]...)
	}
	if st.contig {
		// The triangulation runs over the original store (CellOf is keyed by
		// original index); map payload rows back through Order. The mapped
		// sequence equals the indirect path's gather element for element.
		for i, p := range all {
			all[i] = st.cells.Order[p]
		}
	}
	edges := delaunay.Triangulate(st.ex, st.cells.Pts, all)
	cellEdges := delaunay.FilterCellEdges(st.ex, edges, st.cells.Pts, st.cells.CellOf, st.eps)
	st.ex.For(len(cellEdges), func(i int) {
		st.uf.Union(cellEdges[i].U, cellEdges[i].V)
	})
}
