package core

import "fmt"

// IncrementalState is the serializable image of an Incremental cache: the
// per-point core flags, per-cell core point lists and bounding boxes, and the
// cell-graph edge booleans, flattened to plain arrays. Quadtrees are
// deliberately dropped — they are derived state that rebuilds lazily, and
// only for cells a later tick actually touches — so a snapshot stays compact
// and restore stays O(state). The codec lives with the caller; this package
// defines only the shape and its validation.
type IncrementalState struct {
	Valid  bool
	MinPts int

	CoreFlags []bool // per point slot

	// Per-cell core lists: CoreIdx[CoreOff[g]:CoreOff[g+1]] are cell slot g's
	// core point slots; CoreBBLo/Hi are their bounding boxes (rows of the
	// cache's dimensionality, len = numCells*d).
	CoreOff  []int32
	CoreIdx  []int32
	CoreBBLo []float64
	CoreBBHi []float64

	// Flattened edge cache: for cell g, entries EdgeOff[g]:EdgeOff[g+1] of
	// EdgeH (ascending h < g) and EdgeConn.
	EdgeOff  []int32
	EdgeH    []int32
	EdgeConn []bool
	EdgeKind int
	EdgeRho  float64
}

// ExportState captures the cache. The returned value aliases nothing.
func (inc *Incremental) ExportState() *IncrementalState {
	st := &IncrementalState{
		Valid:     inc.valid,
		MinPts:    inc.minPts,
		CoreFlags: append([]bool(nil), inc.coreFlags...),
		CoreOff:   make([]int32, len(inc.corePts)+1),
		CoreBBLo:  append([]float64(nil), inc.coreBBLo...),
		CoreBBHi:  append([]float64(nil), inc.coreBBHi...),
		EdgeOff:   make([]int32, len(inc.edges)+1),
		EdgeKind:  int(inc.edgeKind),
		EdgeRho:   inc.edgeRho,
	}
	for g, pts := range inc.corePts {
		st.CoreIdx = append(st.CoreIdx, pts...)
		st.CoreOff[g+1] = int32(len(st.CoreIdx))
	}
	for g, es := range inc.edges {
		for _, e := range es {
			st.EdgeH = append(st.EdgeH, e.h)
			st.EdgeConn = append(st.EdgeConn, e.conn)
		}
		st.EdgeOff[g+1] = int32(len(st.EdgeH))
	}
	return st
}

// RestoreIncremental rebuilds an Incremental from an exported state. Tree
// caches start empty (rebuilt lazily by the next run that wants them); every
// flattened extent is validated so a corrupt snapshot errors instead of
// producing out-of-range slot references.
func RestoreIncremental(st *IncrementalState) (*Incremental, error) {
	numCells := len(st.CoreOff) - 1
	if numCells < 0 || len(st.EdgeOff) != len(st.CoreOff) {
		return nil, fmt.Errorf("core: restore: core/edge tables cover %d and %d cells", numCells, len(st.EdgeOff)-1)
	}
	if st.CoreOff != nil && st.CoreOff[0] != 0 || st.EdgeOff != nil && st.EdgeOff[0] != 0 {
		return nil, fmt.Errorf("core: restore: offsets do not start at 0")
	}
	if len(st.EdgeConn) != len(st.EdgeH) {
		return nil, fmt.Errorf("core: restore: %d edge booleans for %d edges", len(st.EdgeConn), len(st.EdgeH))
	}
	if st.EdgeKind != int(GraphBCP) && st.EdgeKind != int(GraphApprox) {
		return nil, fmt.Errorf("core: restore: unknown edge kind %d", st.EdgeKind)
	}
	if st.MinPts < 0 {
		return nil, fmt.Errorf("core: restore: MinPts %d", st.MinPts)
	}
	inc := NewIncremental()
	inc.valid = st.Valid
	inc.minPts = st.MinPts
	inc.coreFlags = append([]bool(nil), st.CoreFlags...)
	inc.corePts = make([][]int32, numCells)
	inc.coreBBLo = append([]float64(nil), st.CoreBBLo...)
	inc.coreBBHi = append([]float64(nil), st.CoreBBHi...)
	inc.edges = make([][]edgeEntry, numCells)
	inc.edgeKind = GraphStrategy(st.EdgeKind)
	inc.edgeRho = st.EdgeRho
	if len(st.CoreBBLo) != len(st.CoreBBHi) ||
		(numCells > 0 && (len(st.CoreBBLo)%numCells != 0)) {
		return nil, fmt.Errorf("core: restore: bounding boxes are %d+%d floats for %d cells", len(st.CoreBBLo), len(st.CoreBBHi), numCells)
	}
	nFlags := int32(len(st.CoreFlags))
	for g := 0; g < numCells; g++ {
		lo, hi := st.CoreOff[g], st.CoreOff[g+1]
		if lo > hi || int(hi) > len(st.CoreIdx) {
			return nil, fmt.Errorf("core: restore: cell %d core extent [%d,%d) out of range", g, lo, hi)
		}
		if lo != hi {
			pts := make([]int32, hi-lo)
			copy(pts, st.CoreIdx[lo:hi])
			for _, p := range pts {
				if p < 0 || p >= nFlags || !st.CoreFlags[p] {
					return nil, fmt.Errorf("core: restore: cell %d lists non-core point slot %d", g, p)
				}
			}
			inc.corePts[g] = pts
		}
		elo, ehi := st.EdgeOff[g], st.EdgeOff[g+1]
		if elo > ehi || int(ehi) > len(st.EdgeH) {
			return nil, fmt.Errorf("core: restore: cell %d edge extent [%d,%d) out of range", g, elo, ehi)
		}
		if elo != ehi {
			es := make([]edgeEntry, 0, ehi-elo)
			last := int32(-1)
			for i := elo; i < ehi; i++ {
				h := st.EdgeH[i]
				if h <= last || int(h) >= numCells || h >= int32(g) {
					return nil, fmt.Errorf("core: restore: cell %d edge list not ascending below g (h=%d)", g, h)
				}
				last = h
				es = append(es, edgeEntry{h: h, conn: st.EdgeConn[i]})
			}
			inc.edges[g] = es
		}
	}
	return inc, nil
}
