// Package core implements the paper's primary contribution: the parallel
// DBSCAN pipeline of Algorithm 1 — MarkCore (Algorithm 2), ClusterCore
// (Algorithm 3) with every cell-graph strategy the paper describes (BCP,
// quadtree range queries, approximate quadtree, USEC with line separation,
// Delaunay triangulation), the reduced-connectivity-query optimization with a
// lock-free union-find, the bucketing heuristic, and ClusterBorder
// (Algorithm 4).
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
	"pdbscan/internal/quadtree"
	"pdbscan/internal/unionfind"
)

// MarkStrategy selects how RangeCount queries are answered in MarkCore.
type MarkStrategy int

const (
	// MarkScan compares the query point against every point of the
	// neighboring cell (the theoretically-efficient method of Section 4.3).
	MarkScan MarkStrategy = iota
	// MarkQuadtree answers RangeCount with a per-cell quadtree (Section 5.2).
	MarkQuadtree
)

// GraphStrategy selects how cell-graph connectivity queries are answered in
// ClusterCore.
type GraphStrategy int

const (
	// GraphBCP computes bichromatic closest pairs with point filtering and
	// blocked early termination (Section 4.4).
	GraphBCP GraphStrategy = iota
	// GraphQuadtree issues exact quadtree range queries from each core point
	// to the neighboring cell, with early termination (Section 5.2).
	GraphQuadtree
	// GraphApprox issues approximate quadtree range queries (approximate
	// DBSCAN, Sections 5.2 and 6.3). Requires Rho > 0.
	GraphApprox
	// GraphUSEC solves unit-spherical emptiness checking with line
	// separation via circle wavefronts (Section 4.4; 2D only).
	GraphUSEC
	// GraphDelaunay builds a Delaunay triangulation of all core points and
	// keeps inter-cell edges of length at most eps (Section 4.4; 2D only).
	GraphDelaunay
)

// Params configures a pipeline run.
type Params struct {
	MinPts    int
	Rho       float64 // approximation parameter (GraphApprox only)
	Mark      MarkStrategy
	Graph     GraphStrategy
	Bucketing bool // process core cells in size-sorted batches (Section 4.4)
	Buckets   int  // number of batches when Bucketing (default 32)

	// Sample, when non-nil, selects the DBSCAN++ sampled-core mode: core
	// status is computed only for points i with Sample[i] set (the counting
	// set stays all points, so a sampled point's core decision is exact);
	// unsampled points are never core and are attached border-style to the
	// clusters of nearby sampled cores. len(Sample) must equal the point
	// count. Nil runs exact DBSCAN. See UniformMask and KCenterMask for the
	// deterministic samplers.
	Sample []bool

	// Exec is the executor every parallel phase runs on. A nil Exec is the
	// default (GOMAXPROCS) pool. Threading the executor through Params — as
	// opposed to a process-wide worker count — is what makes concurrent Run
	// calls with different budgets safe.
	Exec *parallel.Pool

	// Arena pools the pipeline's scratch buffers across runs; nil means no
	// pooling (one-shot behavior). Clusterer and StreamingClusterer thread
	// their per-instance arena here so repeated runs are near-allocation-free.
	Arena *Arena

	// ForceGenericKernel resolves the pipeline's own distance kernel to the
	// generic-D loop instead of the dimension-specialized forms. Results are
	// bit-identical either way (the kernels are exact re-expressions); the
	// flag exists so cmd/dbscanbench -exp hot can measure specialization
	// against its own fallback. Scope: it covers the pipeline's loops
	// (MarkCore counting, BCP, border attachment, cell-graph filters) — the
	// quadtree and k-d tree resolve their own kernels at build time and stay
	// specialized, so tree-heavy configurations (exact-qt, approx) measure
	// mostly the arena, not the kernel, under this flag.
	ForceGenericKernel bool

	// ForceIndirectLayout runs the pipeline in the original point order,
	// indirecting through cells.Order, even when the cells carry a cell-major
	// payload (grid.Cells.Payload). The contiguous path evaluates the same
	// pairs with the same arithmetic in the same accumulation order, so
	// results are bit-identical either way; the flag is the differential
	// escape hatch for the layout-equivalence tests and for
	// cmd/dbscanbench -exp hot's layout comparison, mirroring
	// ForceGenericKernel. The incremental path sets it internally — its
	// caches hold original-index core lists and trees across ticks, which a
	// payload-row run would poison.
	ForceIndirectLayout bool

	// Timings, when non-nil, receives the wall-clock duration of each
	// pipeline phase of the run (the observability seam RunStats is built
	// on). Written once, at phase completion, by the run's own goroutine.
	Timings *PhaseTimings

	// PhaseHook, when non-nil, is called on the run's goroutine at the start
	// of each pipeline phase with the phase's name: "mark", "collect",
	// "graph", "merge" (sharded only), "label", "border" — and, for
	// ComputeHierarchy builds, "coredist", "edges", "mst". It exists for
	// observability and for tests that need a deterministic point inside a
	// run (the cancellation suite cancels a context from it); it must be
	// cheap and must not mutate pipeline state.
	PhaseHook func(phase string)
}

// PhaseTimings records how long each pipeline phase of one run took. The
// sharded path reports its per-shard mark+collect pass as Mark, its
// intra-shard graph pass as Graph, and its boundary pass as Merge; the
// monolithic and incremental paths leave Merge zero.
type PhaseTimings struct {
	Mark    time.Duration // MarkCore (Algorithm 2)
	Collect time.Duration // per-cell core lists, boxes, core-cell set
	Graph   time.Duration // ClusterCore cell graph (Algorithm 3)
	Merge   time.Duration // sharded boundary merge (RunSharded only)
	Label   time.Duration // dense label assignment
	Border  time.Duration // ClusterBorder (Algorithm 4)

	// ComputeHierarchy phases (zero on clustering runs).
	CoreDist time.Duration // per-point core distances
	Edges    time.Duration // mutual-reachability candidate enumeration + per-block Kruskal
	MST      time.Duration // global sort + final Kruskal merge
}

// Result is the clustering output.
type Result struct {
	// Core[i] reports whether point i is a core point.
	Core []bool
	// Labels[i] is the cluster of point i in [0, NumClusters), or -1 for
	// noise. Border points belonging to several clusters get the smallest
	// label; their full membership is in Border.
	Labels []int32
	// Border maps a border point to all clusters it belongs to (ascending),
	// for the points that belong to more than one.
	Border map[int32][]int32
	// NumClusters is the number of clusters found.
	NumClusters int
}

// pipeline carries the state between the phases of Algorithm 1.
type pipeline struct {
	cells *grid.Cells
	p     Params
	eps   float64
	eps2  float64
	ex    *parallel.Pool // == p.Exec; the executor for every parallel phase
	k     geom.Kernel    // dimension-resolved distance kernel over the active store

	// The active point store. When the cells carry a cell-major payload (and
	// ForceIndirectLayout is off) the pipeline runs in payload-row space:
	// pts is cells.PayloadPts(), every point index flowing through the
	// phases (cell point lists, core lists, border candidates, tree indices)
	// is a payload row, and per-point state keyed by original index
	// (coreFlags, labels, Sample) is reached through origOf. Otherwise pts is
	// cells.Pts and indices are original point indices (origOf is identity).
	contig bool
	pts    geom.Points

	arena *Arena      // == p.Arena (nil: no pooling)
	rs    *runScratch // this run's checked-out scratch; returned by release

	// Phase timing cursor: phaseDur (a field of p.Timings, nil when timings
	// are off) receives the elapsed time since phaseT0 at the next phase
	// transition.
	phaseT0  time.Time
	phaseDur *time.Duration

	coreFlags []bool
	corePts   [][]int32 // per cell: indices of its core points
	coreStore []int32   // flat backing of small-cell core lists (batch paths; nil incremental)
	coreBBLo  []float64 // per cell: bounding box of its core points
	coreBBHi  []float64
	coreCells []int32 // cells with at least one core point

	uf *unionfind.UF

	// Lazy per-cell quadtrees: over all points (MarkCore) and over core
	// points (ClusterCore); built on first use, guarded by sync.Once.
	allTrees  []lazyTree
	coreTrees []lazyTree

	// Pre-seeded trees from an Incremental cache (nil entries build lazily).
	// Written before the run starts and read-only during it.
	preAllTrees  []*quadtree.Tree
	preCoreTrees []*quadtree.Tree

	// Lazy per-cell USEC state (2D): core points sorted by x and by y, and
	// the four directional envelopes.
	usecCells []usecCell
}

type lazyTree struct {
	once sync.Once
	tree *quadtree.Tree
}

// validateParams checks cells/Params compatibility and applies defaults
// (shared by Run and RunIncremental).
func validateParams(cells *grid.Cells, p *Params) error {
	if cells.Neighbors == nil {
		return fmt.Errorf("core: cells have no neighbor lists; call a ComputeNeighbors method first")
	}
	if p.MinPts < 1 {
		return fmt.Errorf("core: MinPts must be >= 1, got %d", p.MinPts)
	}
	if p.Graph == GraphApprox && p.Rho <= 0 {
		return fmt.Errorf("core: GraphApprox requires Rho > 0, got %v", p.Rho)
	}
	if (p.Graph == GraphUSEC || p.Graph == GraphDelaunay) && cells.Pts.D != 2 {
		return fmt.Errorf("core: USEC and Delaunay strategies are 2D only (d=%d)", cells.Pts.D)
	}
	if p.Sample != nil && len(p.Sample) != cells.Pts.N {
		return fmt.Errorf("core: Sample mask has %d entries for %d points", len(p.Sample), cells.Pts.N)
	}
	if p.Buckets <= 0 {
		p.Buckets = 32
	}
	return nil
}

// newPipeline builds the per-run state: the dimension-resolved kernel and a
// runScratch checked out of p.Arena (fresh when nil). Callers must pair it
// with release.
func newPipeline(cells *grid.Cells, p Params) *pipeline {
	contig := cells.Payload != nil && !p.ForceIndirectLayout
	pts := cells.Pts
	if contig {
		pts = cells.PayloadPts()
	}
	k := geom.NewKernel(pts)
	if p.ForceGenericKernel {
		k = geom.NewGenericKernel(pts)
	}
	return &pipeline{
		cells: cells, p: p, eps: cells.Eps, eps2: cells.Eps * cells.Eps,
		ex: p.Exec, k: k, arena: p.Arena, rs: p.Arena.getRun(),
		contig: contig, pts: pts,
	}
}

// origOf maps an active-store point index to the original point index
// (identity on the indirect path, cells.Order on the contiguous one).
func (st *pipeline) origOf(p int32) int32 {
	if st.contig {
		return st.cells.Order[p]
	}
	return p
}

// cellPts returns cell g's point list in the active store's index space:
// payload rows when contiguous, original indices otherwise. Both are views
// into the cells; do not mutate.
func (st *pipeline) cellPts(g int) []int32 {
	if st.contig {
		return st.cells.RowsOf(g)
	}
	return st.cells.PointsOf(g)
}

// release returns the run's scratch to the arena. The scratch keeps aliases
// into the cells (core point lists alias cell point lists) — that is fine,
// the arena belongs to the Clusterer that owns the cells.
func (st *pipeline) release() {
	st.arena.putRun(st.rs)
	st.rs = nil
}

// getWS checks a workerScratch out for one parallel block (or one shard).
func (st *pipeline) getWS() *workerScratch { return st.arena.getWorker() }

// putWS returns a block's workerScratch.
func (st *pipeline) putWS(ws *workerScratch) { st.arena.putWorker(ws) }

// initUF readies the union-find over numCells cells from the run scratch.
func (st *pipeline) initUF(numCells int) {
	st.rs.uf.Reset(numCells)
	st.uf = &st.rs.uf
}

// cancelled reports whether the run's executor context is done (the
// per-cell cooperative check of the phase loops; an atomic load on the fast
// path).
func (st *pipeline) cancelled() bool { return st.ex.Cancelled() }

// phase announces a phase transition: it stamps the previous phase's
// duration into Timings, fires the PhaseHook, and reports the executor
// context's error — the pipeline's cancellation boundary. Each phase
// function runs only when the boundary before it is clean, so a cancelled
// run unwinds after at most one phase's grain of work, with every output
// left unconsumed. "done" closes the last phase without opening a new one.
func (st *pipeline) phase(name string) error {
	now := time.Now()
	if st.phaseDur != nil {
		*st.phaseDur = now.Sub(st.phaseT0)
	}
	st.phaseT0 = now
	st.phaseDur = nil
	if tm := st.p.Timings; tm != nil {
		switch name {
		case "mark":
			st.phaseDur = &tm.Mark
		case "collect":
			st.phaseDur = &tm.Collect
		case "graph":
			st.phaseDur = &tm.Graph
		case "merge":
			st.phaseDur = &tm.Merge
		case "label":
			st.phaseDur = &tm.Label
		case "border":
			st.phaseDur = &tm.Border
		case "coredist":
			st.phaseDur = &tm.CoreDist
		case "edges":
			st.phaseDur = &tm.Edges
		case "mst":
			st.phaseDur = &tm.MST
		}
	}
	if st.p.PhaseHook != nil {
		st.p.PhaseHook(name)
	}
	return st.ex.Err()
}

// Run executes the full pipeline on prepared cells (Neighbors must have been
// computed). If the executor pool carries a cancelled context — or the
// context is cancelled while the run is in flight — Run stops at the next
// phase or cell boundary and returns the context's error; the partial state
// stays inside the run's arena scratch, which the release leaves ready for
// the owner's next run.
func Run(cells *grid.Cells, p Params) (*Result, error) {
	if err := validateParams(cells, &p); err != nil {
		return nil, err
	}
	st := newPipeline(cells, p)
	defer st.release()
	if err := st.phase("mark"); err != nil {
		return nil, err
	}
	st.markCore()
	if err := st.phase("collect"); err != nil {
		return nil, err
	}
	st.collectCore()
	if err := st.phase("graph"); err != nil {
		return nil, err
	}
	st.clusterCore()
	if err := st.phase("label"); err != nil {
		return nil, err
	}
	labels, numClusters := st.coreLabels()
	if err := st.phase("border"); err != nil {
		return nil, err
	}
	border := st.clusterBorder(labels, numClusters)
	if err := st.phase("done"); err != nil {
		return nil, err
	}
	return &Result{
		Core:        st.coreFlags,
		Labels:      labels,
		Border:      border,
		NumClusters: numClusters,
	}, nil
}

// initCoreState readies the per-cell core buffers (lists, flat backing,
// bounding boxes) from the run scratch — shared by the monolithic and
// sharded batch paths. Every cell's entries are overwritten by
// collectCellCore before any read, so no clearing is needed.
func (st *pipeline) initCoreState() {
	c := st.cells
	d := c.Pts.D
	numCells := c.NumCells()
	st.rs.corePts = slicesBuf(st.rs.corePts, numCells)
	st.rs.coreStore = int32Buf(st.rs.coreStore, c.Pts.N)
	st.rs.coreBBLo = floatBuf(st.rs.coreBBLo, numCells*d)
	st.rs.coreBBHi = floatBuf(st.rs.coreBBHi, numCells*d)
	st.corePts = st.rs.corePts
	st.coreStore = st.rs.coreStore
	st.coreBBLo = st.rs.coreBBLo
	st.coreBBHi = st.rs.coreBBHi
}

// collectCore builds the per-cell core point lists, core bounding boxes, and
// the list of core cells.
func (st *pipeline) collectCore() {
	numCells := st.cells.NumCells()
	st.initCoreState()
	st.ex.ForGrain(numCells, 1, func(g int) { st.collectCellCore(g) })
	st.coreCells = prim.FilterIndex(st.ex, numCells, func(g int) bool {
		return len(st.corePts[g]) > 0
	})
}

// collectCellCore derives cell g's core point list and core bounding box from
// the core flags (the per-cell body shared by collectCore, the sharded path,
// and the incremental path — one implementation, so the paths can never
// desynchronize). All-core cells alias the cell's point list. Small cells
// write into their disjoint region of the flat coreStore when the batch
// scratch provides one; the incremental path (coreStore nil) counts the set
// flags first and allocates exactly — its lists are cached across ticks and
// must own their memory.
func (st *pipeline) collectCellCore(g int) {
	c := st.cells
	d := c.Pts.D
	pts := st.cellPts(g)
	orig := c.PointsOf(g) // == pts on the indirect path
	var core []int32
	if st.p.Sample == nil && c.CellSize(g) >= st.p.MinPts {
		// Every point is core; alias the cell's slice. (Under a sample mask
		// only the sampled points of a big cell are core, so the alias is
		// wrong there and the flag-scan paths below run instead.)
		core = pts
	} else if st.coreStore != nil {
		off := c.CellStart[g]
		buf := st.coreStore[off : off : off+int32(len(pts))]
		for i, p := range pts {
			if st.coreFlags[orig[i]] {
				buf = append(buf, p)
			}
		}
		core = buf
	} else {
		cnt := 0
		for _, p := range orig {
			if st.coreFlags[p] {
				cnt++
			}
		}
		if cnt > 0 {
			core = make([]int32, 0, cnt)
			for i, p := range pts {
				if st.coreFlags[orig[i]] {
					core = append(core, p)
				}
			}
		}
	}
	st.corePts[g] = core
	if len(core) > 0 {
		lo := st.coreBBLo[g*d : (g+1)*d]
		hi := st.coreBBHi[g*d : (g+1)*d]
		copy(lo, st.at(core[0]))
		copy(hi, st.at(core[0]))
		for _, p := range core[1:] {
			row := st.at(p)
			for j, v := range row {
				if v < lo[j] {
					lo[j] = v
				}
				if v > hi[j] {
					hi[j] = v
				}
			}
		}
	}
}

// coreLabels assigns dense cluster labels to core points from the union-find
// state over cells and returns (labels, numClusters); non-core points get -1.
func (st *pipeline) coreLabels() ([]int32, int) {
	c := st.cells
	// Mark and densify the union-find roots of the core cells (a cell is
	// core iff it kept at least one core point).
	roots, dense := unionfind.DenseRoots(st.ex, st.uf, func(g int32) bool {
		return len(st.corePts[g]) > 0
	})
	labels := make([]int32, c.Pts.N)
	st.ex.For(c.Pts.N, func(i int) {
		if st.coreFlags[i] {
			labels[i] = dense[st.uf.Find(c.CellOf[i])]
		} else {
			labels[i] = -1
		}
	})
	return labels, len(roots)
}

// quadtreeRoot returns a cube enclosing cell g's points, suitable as a
// quadtree root: the grid cube for grid cells, or the squared-up bounding box
// for box cells (whose extent is at most eps/sqrt(d) by construction, so the
// approximate depth bound still holds).
func (st *pipeline) quadtreeRoot(g int) (lo []float64, side float64) {
	c := st.cells
	if c.Coords != nil {
		lo, _ = c.GridCube(g)
		return lo, c.Side
	}
	bbLo, bbHi := c.CellBox(g)
	lo = make([]float64, c.Pts.D)
	copy(lo, bbLo)
	side = 0
	for j := range bbLo {
		if e := bbHi[j] - bbLo[j]; e > side {
			side = e
		}
	}
	if side == 0 {
		side = math.SmallestNonzeroFloat64
	}
	// Slightly inflate so points on the upper face fall strictly inside.
	side *= 1 + 1e-12
	return lo, side
}

// allTree returns (building on first use) the quadtree over all points of
// cell g, used by MarkQuadtree.
func (st *pipeline) allTree(g int32) *quadtree.Tree {
	if st.preAllTrees != nil {
		if t := st.preAllTrees[g]; t != nil {
			return t
		}
	}
	lt := &st.allTrees[g]
	lt.once.Do(func() {
		pts := st.cellPts(int(g))
		idx := make([]int32, len(pts))
		copy(idx, pts)
		lo, side := st.quadtreeRoot(int(g))
		lt.tree = quadtree.Build(st.ex, st.pts, idx, lo, side, -1)
	})
	return lt.tree
}

// coreTree returns (building on first use) the quadtree over the core points
// of cell g. maxDepth depends on the graph strategy: exact for GraphQuadtree,
// capped for GraphApprox.
func (st *pipeline) coreTree(g int32) *quadtree.Tree {
	if st.preCoreTrees != nil {
		if t := st.preCoreTrees[g]; t != nil {
			return t
		}
	}
	lt := &st.coreTrees[g]
	lt.once.Do(func() {
		src := st.corePts[g]
		idx := make([]int32, len(src))
		copy(idx, src)
		lo, side := st.quadtreeRoot(int(g))
		maxDepth := -1
		if st.p.Graph == GraphApprox {
			maxDepth = quadtree.ApproxDepth(st.p.Rho)
		}
		lt.tree = quadtree.Build(st.ex, st.pts, idx, lo, side, maxDepth)
	})
	return lt.tree
}

// at returns the coordinate row of active-store point p.
func (st *pipeline) at(p int32) []float64 { return st.pts.At(int(p)) }

// distSq between two points by index, through the run's kernel.
func (st *pipeline) distSq(a, b int32) float64 {
	return st.k.DistSq(a, b)
}
