package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
)

// shardedTestCells builds grid cells with neighbors for random clustered 2D/3D
// points.
func shardedTestCells(t *testing.T, n, d int, seed int64, eps float64) *grid.Cells {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	for i := 0; i < n; i++ {
		cx := float64(rng.Intn(4)) * 5
		for j := 0; j < d; j++ {
			data[i*d+j] = cx + rng.NormFloat64()
		}
	}
	pts := geom.Points{N: n, D: d, Data: data}
	c := grid.BuildGrid(nil, pts, eps)
	c.ComputeNeighborsEnum(nil)
	return c
}

// TestRunShardedMatchesRun pins, at the core layer, the tentpole invariant:
// for every graph strategy, RunSharded over any partition returns exactly
// Run's result — identical labels, not merely an equivalent partition.
func TestRunShardedMatchesRun(t *testing.T) {
	for _, d := range []int{2, 3} {
		cells := shardedTestCells(t, 1500, d, int64(d)*7, 1.2)
		strategies := []struct {
			name  string
			mark  MarkStrategy
			graph GraphStrategy
			rho   float64
		}{
			{"scan-bcp", MarkScan, GraphBCP, 0},
			{"qt-qt", MarkQuadtree, GraphQuadtree, 0},
			{"scan-approx", MarkScan, GraphApprox, 0.05},
			{"qt-approx", MarkQuadtree, GraphApprox, 0.3},
		}
		if d == 2 {
			strategies = append(strategies,
				struct {
					name  string
					mark  MarkStrategy
					graph GraphStrategy
					rho   float64
				}{"scan-usec", MarkScan, GraphUSEC, 0},
				struct {
					name  string
					mark  MarkStrategy
					graph GraphStrategy
					rho   float64
				}{"scan-delaunay", MarkScan, GraphDelaunay, 0},
			)
		}
		for _, s := range strategies {
			p := Params{MinPts: 5, Mark: s.mark, Graph: s.graph, Rho: s.rho}
			want, err := Run(cells, p)
			if err != nil {
				t.Fatalf("d=%d %s: Run: %v", d, s.name, err)
			}
			for _, k := range []int{2, 3, 9} {
				part, err := grid.MakePartition(nil, cells, k)
				if err != nil {
					t.Fatalf("d=%d %s k=%d: %v", d, s.name, k, err)
				}
				got, err := RunSharded(cells, p, part)
				if err != nil {
					t.Fatalf("d=%d %s k=%d: RunSharded: %v", d, s.name, k, err)
				}
				if err := sameResult(got, want); err != nil {
					t.Fatalf("d=%d %s k=%d: %v", d, s.name, k, err)
				}
			}
		}
	}
}

// sameResult demands bit-identical results (labels, cores, borders).
func sameResult(got, want *Result) error {
	if got.NumClusters != want.NumClusters {
		return fmt.Errorf("NumClusters %d vs %d", got.NumClusters, want.NumClusters)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] || got.Core[i] != want.Core[i] {
			return fmt.Errorf("point %d: label %d/%d core %v/%v",
				i, got.Labels[i], want.Labels[i], got.Core[i], want.Core[i])
		}
	}
	if len(got.Border) != len(want.Border) {
		return fmt.Errorf("border size %d vs %d", len(got.Border), len(want.Border))
	}
	for p, m := range want.Border {
		gm := got.Border[p]
		if len(gm) != len(m) {
			return fmt.Errorf("border of %d: %v vs %v", p, gm, m)
		}
		for i := range m {
			if gm[i] != m[i] {
				return fmt.Errorf("border of %d: %v vs %v", p, gm, m)
			}
		}
	}
	return nil
}

// TestRunShardedValidation: bad params and mismatched partitions are
// rejected.
func TestRunShardedValidation(t *testing.T) {
	cells := shardedTestCells(t, 200, 2, 1, 1.0)
	part, err := grid.MakePartition(nil, cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSharded(cells, Params{MinPts: 0}, part); err == nil {
		t.Fatal("MinPts=0 accepted")
	}
	if _, err := RunSharded(cells, Params{MinPts: 2}, nil); err == nil {
		t.Fatal("nil partition accepted")
	}
	other := shardedTestCells(t, 50, 2, 2, 1.0)
	otherPart, err := grid.MakePartition(nil, other, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSharded(cells, Params{MinPts: 2}, otherPart); err == nil {
		t.Fatal("partition of different cells accepted")
	}
	if _, err := RunSharded(cells, Params{MinPts: 2, Graph: GraphApprox}, part); err == nil {
		t.Fatal("GraphApprox without Rho accepted")
	}
}
