package core

import "sync"

// clusterBorder implements Algorithm 4: every non-core point checks the core
// points of its own cell and of all neighboring cells; it joins the cluster
// of each core point within eps. Border points may belong to multiple
// clusters; labels[p] receives the smallest, and the full sets (for points
// with more than one) are returned as a map.
//
// Only cells with fewer than minPts points can contain non-core points, so
// the loop mirrors the paper's `|g| < minPts` guard in exact runs. Under a
// sample mask (DBSCAN++ mode) big cells hold unsampled non-core points too,
// so every cell is a border candidate; to keep that affordable the candidate
// cells are resolved once per cell, not once per point:
//
//   - a neighbor whose core bounding box is beyond eps of this cell's point
//     bounding box is dropped for every point at once;
//   - a neighbor whose core bounding box is within eps of every point of
//     this cell (box-box maximum distance <= eps) contributes its label as
//     "sure" — applied to all non-core points with no distance computations.
//     The own cell is always sure when it has cores: both boxes lie inside
//     one cell, whose diameter is at most eps by construction;
//   - all cores of one cell share one cluster, so a neighbor whose label is
//     already sure needs no per-point scan either.
//
// In the interior of a cluster every neighbor carries the same label as the
// cell itself, so the whole cell resolves to one sure label and zero
// distance work; only cells near cluster boundaries scan, and only against
// the few candidates that survive the cell-level pass. The per-point label
// set lives in the worker's pooled scratch; only the rare membership lists
// of multi-cluster border points are freshly allocated (they escape into
// the Result) and are merged into the map per block under a mutex.
func (st *pipeline) clusterBorder(labels []int32, numClusters int) map[int32][]int32 {
	c := st.cells
	numCells := c.NumCells()

	border := make(map[int32][]int32)
	var mu sync.Mutex
	st.ex.BlockedFor(numCells, 1, func(lo, hi int) {
		ws := st.getWS()
		var multiP []int32   // border points in 2+ clusters found by this block
		var multiM [][]int32 // their membership lists (freshly allocated)
		for g := lo; g < hi; g++ {
			if st.cancelled() {
				break // partial labels; the run bails before returning them
			}
			if st.p.Sample == nil && c.CellSize(g) >= st.p.MinPts {
				continue // all points are core (exact runs only; under a
				// sample mask big cells hold unsampled non-core points)
			}
			built := false
			pts := st.cellPts(g)
			orig := c.PointsOf(g) // == pts on the indirect path
			for i, p := range pts {
				op := orig[i]
				if st.coreFlags[op] {
					continue
				}
				if !built {
					st.borderCellCandidates(int32(g), labels, ws)
					built = true
				}
				if len(ws.sure) == 0 && len(ws.cand) == 0 {
					break // no reachable cores anywhere near this cell
				}
				found := append(ws.found[:0], ws.sure...)
				for _, h := range ws.cand {
					found = st.borderScanCell(p, h, labels, found)
				}
				ws.found = found // keep grown capacity
				if len(found) > 0 {
					labels[op] = found[0]
					if len(found) > 1 {
						multiP = append(multiP, op)
						multiM = append(multiM, append([]int32(nil), found...))
					}
				}
			}
		}
		st.putWS(ws)
		if len(multiP) > 0 {
			mu.Lock()
			for i, p := range multiP {
				border[p] = multiM[i]
			}
			mu.Unlock()
		}
	})
	return border
}

// borderCellCandidates resolves, once per cell, which neighboring core cells
// the non-core points of cell g must scan. It fills ws.sure with the
// ascending set of labels certain for every point of g (core bounding box
// within eps of the whole cell) and ws.cand with the cells that need
// per-point distance checks. Cells whose label is already sure are dropped:
// all cores of a cell share one cluster, so they cannot add anything.
func (st *pipeline) borderCellCandidates(g int32, labels []int32, ws *workerScratch) {
	c := st.cells
	d := c.Pts.D
	gLo := c.BBLo[int(g)*d : int(g)*d+d]
	gHi := c.BBHi[int(g)*d : int(g)*d+d]
	sure := ws.sure[:0]
	cand := ws.cand[:0]
	consider := func(h int32) {
		core := st.corePts[h]
		if len(core) == 0 {
			return
		}
		lbl := st.coreLabelOf(h, labels) // one cluster per cell
		if containsLabel(sure, lbl) {
			return
		}
		hLo := st.coreBBLo[int(h)*d : int(h)*d+d]
		hHi := st.coreBBHi[int(h)*d : int(h)*d+d]
		if st.k.BoxBoxDistSq(gLo, gHi, hLo, hHi) > st.eps2 {
			return // beyond eps for every point of g
		}
		if boxBoxMaxDistSq(gLo, gHi, hLo, hHi) <= st.eps2 {
			sure = insertLabel(sure, lbl)
			// Drop already-queued cells made redundant by the new sure label.
			keep := cand[:0]
			for _, q := range cand {
				if st.coreLabelOf(q, labels) != lbl {
					keep = append(keep, q)
				}
			}
			cand = keep
			return
		}
		cand = append(cand, h)
	}
	consider(g)
	for _, h := range c.Neighbors[g] {
		consider(h)
	}
	ws.sure, ws.cand = sure, cand // keep grown capacity
}

// borderScanCell checks non-core point p against the core points of cell h
// and inserts h's cluster label into the ascending set found when some core
// point lies within eps.
func (st *pipeline) borderScanCell(p, h int32, labels []int32, found []int32) []int32 {
	core := st.corePts[h]
	// The whole cell belongs to one cluster; if we already have its label,
	// no need to scan the points again.
	lbl := st.coreLabelOf(h, labels)
	if containsLabel(found, lbl) {
		return found
	}
	// Skip cells whose core bounding box is beyond eps.
	if st.k.PointBoxDistSqAt(p, st.coreBBLo, st.coreBBHi, h) > st.eps2 {
		return found
	}
	if st.contig {
		// Full-cell core lists are dense payload row ranges; stream them.
		if cs := st.cells.CellStart; len(core) == int(cs[h+1]-cs[h]) {
			if st.k.AnyWithinRange(p, cs[h], cs[h+1], st.eps2) {
				return insertLabel(found, lbl)
			}
			return found
		}
	}
	if st.k.AnyWithin(p, core, st.eps2) {
		return insertLabel(found, lbl)
	}
	return found
}

// coreLabelOf returns the cluster label of core cell h (all cores of one cell
// share a cluster), resolving the representative through origOf — labels are
// keyed by original index while core lists live in the active store's space.
func (st *pipeline) coreLabelOf(h int32, labels []int32) int32 {
	return labels[st.origOf(st.corePts[h][0])]
}

// boxBoxMaxDistSq returns the squared maximum distance between two
// axis-aligned boxes: an upper bound on the distance from any point of one
// to any point of the other.
func boxBoxMaxDistSq(alo, ahi, blo, bhi []float64) float64 {
	s := 0.0
	for j := range alo {
		diff := ahi[j] - blo[j]
		if other := bhi[j] - alo[j]; other > diff {
			diff = other
		}
		s += diff * diff
	}
	return s
}

func containsLabel(set []int32, l int32) bool {
	for _, v := range set {
		if v == l {
			return true
		}
	}
	return false
}

// insertLabel inserts l into the ascending set if absent.
func insertLabel(set []int32, l int32) []int32 {
	i := 0
	for i < len(set) && set[i] < l {
		i++
	}
	if i < len(set) && set[i] == l {
		return set
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = l
	return set
}
