package core

import (
	"pdbscan/internal/geom"
)

// clusterBorder implements Algorithm 4: every non-core point checks the core
// points of its own cell and of all neighboring cells; it joins the cluster
// of each core point within eps. Border points may belong to multiple
// clusters; labels[p] receives the smallest, and the full sets (for points
// with more than one) are returned as a map.
//
// Only cells with fewer than minPts points can contain non-core points, so
// the loop mirrors the paper's `|g| < minPts` guard.
func (st *pipeline) clusterBorder(labels []int32, numClusters int) map[int32][]int32 {
	c := st.cells
	eps2 := st.eps * st.eps
	numCells := c.NumCells()

	// memberships[p] is non-nil only for border points in 2+ clusters.
	memberships := make([][]int32, c.Pts.N)
	st.ex.ForGrain(numCells, 1, func(g int) {
		if c.CellSize(g) >= st.p.MinPts {
			return // all points are core
		}
		for _, p := range c.PointsOf(g) {
			if st.coreFlags[p] {
				continue
			}
			q := st.at(p)
			var found []int32 // distinct cluster labels, ascending insert
			addCell := func(h int32) {
				// Skip non-core cells and cells beyond eps.
				core := st.corePts[h]
				if len(core) == 0 {
					return
				}
				d := c.Pts.D
				if geom.PointBoxDistSq(q,
					st.coreBBLo[int(h)*d:(int(h)+1)*d],
					st.coreBBHi[int(h)*d:(int(h)+1)*d]) > eps2 {
					return
				}
				// The whole cell belongs to one cluster; if we already have
				// its label, no need to scan the points again.
				lbl := labels[core[0]]
				if containsLabel(found, lbl) {
					return
				}
				for _, r := range core {
					if geom.DistSq(q, st.at(r)) <= eps2 {
						found = insertLabel(found, lbl)
						return
					}
				}
			}
			addCell(int32(g))
			for _, h := range c.Neighbors[g] {
				addCell(h)
			}
			if len(found) > 0 {
				labels[p] = found[0]
				if len(found) > 1 {
					memberships[p] = found
				}
			}
		}
	})

	border := make(map[int32][]int32)
	for p, m := range memberships {
		if m != nil {
			border[int32(p)] = m
		}
	}
	return border
}

func containsLabel(set []int32, l int32) bool {
	for _, v := range set {
		if v == l {
			return true
		}
	}
	return false
}

// insertLabel inserts l into the ascending set if absent.
func insertLabel(set []int32, l int32) []int32 {
	i := 0
	for i < len(set) && set[i] < l {
		i++
	}
	if i < len(set) && set[i] == l {
		return set
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = l
	return set
}
