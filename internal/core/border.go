package core

import "sync"

// clusterBorder implements Algorithm 4: every non-core point checks the core
// points of its own cell and of all neighboring cells; it joins the cluster
// of each core point within eps. Border points may belong to multiple
// clusters; labels[p] receives the smallest, and the full sets (for points
// with more than one) are returned as a map.
//
// Only cells with fewer than minPts points can contain non-core points, so
// the loop mirrors the paper's `|g| < minPts` guard. The per-point label set
// lives in the worker's pooled scratch; only the rare membership lists of
// multi-cluster border points are freshly allocated (they escape into the
// Result) and are merged into the map per block under a mutex.
func (st *pipeline) clusterBorder(labels []int32, numClusters int) map[int32][]int32 {
	c := st.cells
	numCells := c.NumCells()

	border := make(map[int32][]int32)
	var mu sync.Mutex
	st.ex.BlockedFor(numCells, 1, func(lo, hi int) {
		ws := st.getWS()
		var multiP []int32   // border points in 2+ clusters found by this block
		var multiM [][]int32 // their membership lists (freshly allocated)
		for g := lo; g < hi; g++ {
			if st.cancelled() {
				break // partial labels; the run bails before returning them
			}
			if c.CellSize(g) >= st.p.MinPts {
				continue // all points are core
			}
			for _, p := range c.PointsOf(g) {
				if st.coreFlags[p] {
					continue
				}
				found := st.borderScanCell(p, int32(g), labels, ws.found[:0])
				for _, h := range c.Neighbors[g] {
					found = st.borderScanCell(p, h, labels, found)
				}
				ws.found = found // keep grown capacity
				if len(found) > 0 {
					labels[p] = found[0]
					if len(found) > 1 {
						multiP = append(multiP, p)
						multiM = append(multiM, append([]int32(nil), found...))
					}
				}
			}
		}
		st.putWS(ws)
		if len(multiP) > 0 {
			mu.Lock()
			for i, p := range multiP {
				border[p] = multiM[i]
			}
			mu.Unlock()
		}
	})
	return border
}

// borderScanCell checks non-core point p against the core points of cell h
// and inserts h's cluster label into the ascending set found when some core
// point lies within eps.
func (st *pipeline) borderScanCell(p, h int32, labels []int32, found []int32) []int32 {
	core := st.corePts[h]
	if len(core) == 0 {
		return found // non-core cell
	}
	// Skip cells whose core bounding box is beyond eps.
	if st.k.PointBoxDistSqAt(p, st.coreBBLo, st.coreBBHi, h) > st.eps2 {
		return found
	}
	// The whole cell belongs to one cluster; if we already have its label,
	// no need to scan the points again.
	lbl := labels[core[0]]
	if containsLabel(found, lbl) {
		return found
	}
	if st.k.AnyWithin(p, core, st.eps2) {
		return insertLabel(found, lbl)
	}
	return found
}

func containsLabel(set []int32, l int32) bool {
	for _, v := range set {
		if v == l {
			return true
		}
	}
	return false
}

// insertLabel inserts l into the ascending set if absent.
func insertLabel(set []int32, l int32) []int32 {
	i := 0
	for i < len(set) && set[i] < l {
		i++
	}
	if i < len(set) && set[i] == l {
		return set
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = l
	return set
}
