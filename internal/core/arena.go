package core

import (
	"sync"

	"pdbscan/internal/unionfind"
)

// Arena pools the scratch state of pipeline runs so that repeated Run calls
// on one Clusterer (or streaming ticks on one StreamingClusterer) allocate
// almost nothing in steady state. It holds two kinds of scratch:
//
//   - runScratch: the per-run phase buffers (per-cell core lists and their
//     flat backing store, core bounding boxes, the size-sorted cell order,
//     the union-find, lazy tree/USEC tables). Exactly one run checks a
//     runScratch out for its whole duration and returns it at the end.
//
//   - workerScratch: the small per-worker buffers of the parallel hot loops
//     (BCP filter outputs, border label sets, distance-ordered neighbor
//     lists). A parallel phase checks one out per contiguous block — each
//     block runs on exactly one goroutine, so a checked-out workerScratch is
//     always single-owner; there is no sharing to argue about.
//
// Ownership rules: buffers handed out of a scratch must never outlive the
// run (anything that escapes into a Result — labels, core flags, border
// membership lists — is freshly allocated). Checkout and return go through a
// mutex-guarded free list, so concurrent Runs on one Clusterer are safe:
// each pops its own scratch (or starts a fresh one when the list is empty)
// and pushes it back when done. A nil *Arena is valid everywhere and means
// "no pooling": every checkout returns a fresh scratch and returns are
// dropped, which is exactly the one-shot Cluster behavior.
type Arena struct {
	mu      sync.Mutex
	runs    []*runScratch
	workers []*workerScratch
}

// NewArena returns an empty arena. Clusterer and StreamingClusterer create
// one per instance; one-shot entry points run with a nil arena.
func NewArena() *Arena { return &Arena{} }

// runScratch is the pooled per-run state. Buffers grow to the high-water
// mark of the runs that used them and are reused as-is; every consumer
// either overwrites its region in full or clears it on checkout (the lazy
// tables, whose zero value is meaningful).
type runScratch struct {
	corePts   [][]int32
	coreStore []int32 // flat backing for small-cell core lists, cell g's region at CellStart[g]
	coreBBLo  []float64
	coreBBHi  []float64
	order     []int32 // size-sorted core cell traversal order
	uf        unionfind.UF
	allTrees  []lazyTree
	coreTrees []lazyTree
	usecCells []usecCell
}

// workerScratch is the pooled per-worker state of the parallel hot loops.
type workerScratch struct {
	gf, hf    []int32   // bcpConnected: box-filtered core point lists
	found     []int32   // clusterBorder: distinct cluster labels of one point
	sure      []int32   // clusterBorder: labels certain for a whole cell
	cand      []int32   // clusterBorder: cells needing per-point scans
	nbrOrder  []int32   // markCellCore: neighbor cells, ascending box distance
	nbrDist   []float64 // markCellCore: the distances of nbrOrder
	cellOrder []int32   // clusterShard: per-shard size-sorted owned core cells
	sorter    nbrSorter // markCellCore: allocation-free sort.Sort adapter

	kthHeap   []float64    // cellCoreDistances: bounded max-heap of the k smallest d2
	mrEdges   []MREdge     // mrEdgeParts: per-block candidate edge buffer
	mrUF      unionfind.UF // mrEdgeParts: per-block Kruskal compaction state
	primOwn   []int32      // cellMREdges: own-cell core-capable vertex list
	primVerts []int32      // cellMREdges: per-cell-pair bipartite vertex list
	primKey   []float64    // primForest: best edge weight to the growing tree
	primFrom  []int32      // primForest: tree endpoint of the best edge
	primSide  []bool       // primForest: bipartite side flag per vertex
}

// getRun checks a runScratch out of the arena (a fresh one when the arena is
// nil or empty).
func (a *Arena) getRun() *runScratch {
	if a == nil {
		return &runScratch{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.runs); n > 0 {
		rs := a.runs[n-1]
		a.runs = a.runs[:n-1]
		return rs
	}
	return &runScratch{}
}

// putRun returns a runScratch to the arena (dropped when the arena is nil).
func (a *Arena) putRun(rs *runScratch) {
	if a == nil || rs == nil {
		return
	}
	a.mu.Lock()
	a.runs = append(a.runs, rs)
	a.mu.Unlock()
}

// getWorker checks a workerScratch out of the arena.
func (a *Arena) getWorker() *workerScratch {
	if a == nil {
		return &workerScratch{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.workers); n > 0 {
		ws := a.workers[n-1]
		a.workers = a.workers[:n-1]
		return ws
	}
	return &workerScratch{}
}

// putWorker returns a workerScratch to the arena.
func (a *Arena) putWorker(ws *workerScratch) {
	if a == nil || ws == nil {
		return
	}
	a.mu.Lock()
	a.workers = append(a.workers, ws)
	a.mu.Unlock()
}

// int32Buf returns buf resized to n without preserving contents.
func int32Buf(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// floatBuf returns buf resized to n without preserving contents.
func floatBuf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// slicesBuf returns buf resized to n with every slot up to the full capacity
// cleared: entries within n are overwritten by every consumer before use,
// but slots beyond n would otherwise pin the point lists of a previous,
// larger run after the cell count shrinks.
func slicesBuf(buf [][]int32, n int) [][]int32 {
	if cap(buf) < n {
		return make([][]int32, n)
	}
	buf = buf[:cap(buf)]
	clear(buf)
	return buf[:n]
}

// lazyTreeBuf returns buf resized to n with every slot up to the full
// capacity cleared: the zero lazyTree (unfired sync.Once, nil tree) is the
// meaningful initial state, and tree pointers beyond n must not outlive a
// shrinking cell count.
func lazyTreeBuf(buf []lazyTree, n int) []lazyTree {
	if cap(buf) < n {
		return make([]lazyTree, n)
	}
	buf = buf[:cap(buf)]
	clear(buf)
	return buf[:n]
}

// usecCellBuf returns buf resized to n with every slot up to the full
// capacity cleared (same reasoning as lazyTreeBuf).
func usecCellBuf(buf []usecCell, n int) []usecCell {
	if cap(buf) < n {
		return make([]usecCell, n)
	}
	buf = buf[:cap(buf)]
	clear(buf)
	return buf[:n]
}
