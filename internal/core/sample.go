package core

import (
	"math"

	"pdbscan/internal/geom"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// This file implements the point samplers of the DBSCAN++ sampled-core mode
// ("DBSCAN++: Towards fast and scalable density clustering", Jang & Jiang).
// A sampler picks the subset S of points whose core status the pipeline
// computes (Params.Sample); |S| = m ≪ n makes MarkCore — the dominant phase
// on dense data — sublinear in n while the counting set stays exact.
//
// Both samplers are deterministic functions of (n or points, frac, seed) and
// independent of the executor's worker count: a fixed seed reproduces the
// same sample, and therefore the same clustering, at any parallelism.

// UniformMask samples each point independently with probability frac by a
// hash threshold: point i is in the sample iff mix64(seed, i) falls below
// frac of the hash range. The expected sample size is frac*n; the decision
// for each point depends only on (seed, i), never on iteration order, so the
// mask is identical across worker counts. frac >= 1 selects every point
// (sampled-core with a full mask is exact DBSCAN).
func UniformMask(ex *parallel.Pool, n int, frac float64, seed int64) []bool {
	mask := make([]bool, n)
	if frac >= 1 {
		for i := range mask {
			mask[i] = true
		}
		return mask
	}
	if frac <= 0 {
		return mask
	}
	// Compare the hash's top 53 bits against frac*2^53: both sides are exact
	// float64 values, so there is no uint64 overflow for frac near 1.
	thr := frac * float64(1<<53)
	mixedSeed := prim.Mix64(uint64(seed))
	ex.For(n, func(i int) {
		mask[i] = float64(prim.Mix64(uint64(i)+mixedSeed)>>11) < thr
	})
	return mask
}

// KCenterMask samples m = ceil(frac*n) points by greedy K-center (Gonzalez):
// start from a seed-chosen point, then repeatedly add the point farthest from
// the current sample. The result covers the data geometrically — every point
// is close to some sampled point — which is the sampler DBSCAN++ pairs with
// its approximation guarantee. Cost is O(m*n) distance evaluations, so it
// suits small fractions; UniformMask is the cheap default.
//
// Deterministic at any worker count: the farthest-point argmax is reduced
// per block under the total order (distance desc, index asc) and merged
// under the same order, so ties break identically regardless of how the
// blocks were cut. On a cancelled executor the mask returns early and is
// arbitrary; callers must check the executor's Err before using it.
func KCenterMask(ex *parallel.Pool, pts geom.Points, frac float64, seed int64) []bool {
	n := pts.N
	mask := make([]bool, n)
	if frac <= 0 || n == 0 {
		return mask
	}
	m := int(math.Ceil(frac * float64(n)))
	if m >= n {
		for i := range mask {
			mask[i] = true
		}
		return mask
	}
	k := geom.NewKernel(pts)
	dist := make([]float64, n) // squared distance to the nearest sampled point
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	cur := int32(prim.Mix64(uint64(seed)) % uint64(n))
	mask[cur] = true
	nb := ex.NumBlocks(n, 0)
	bestD := make([]float64, nb)
	bestI := make([]int32, nb)
	for picked := 1; picked < m; picked++ {
		if ex.Cancelled() {
			return mask
		}
		// One pass: fold the new center into dist and find the farthest point.
		ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
			bd, bi := -1.0, int32(-1)
			for i := lo; i < hi; i++ {
				if d2 := k.DistSq(int32(i), cur); d2 < dist[i] {
					dist[i] = d2
				}
				if dist[i] > bd {
					bd, bi = dist[i], int32(i)
				}
			}
			bestD[b], bestI[b] = bd, bi
		})
		bd, bi := -1.0, int32(-1)
		for b := 0; b < nb; b++ {
			if bestD[b] > bd || (bestD[b] == bd && bestI[b] < bi) {
				bd, bi = bestD[b], bestI[b]
			}
		}
		if bi < 0 || bd == 0 {
			break // fewer than m distinct points; the sample already covers all
		}
		mask[bi] = true
		cur = bi
	}
	return mask
}
