package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"pdbscan/internal/grid"
	"pdbscan/internal/parallel"
)

// sameCoreResult asserts two pipeline results are identical (the pipeline is
// deterministic, so equality is exact, not merely up to permutation).
func sameCoreResult(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if got.NumClusters != want.NumClusters {
		t.Fatalf("%s: NumClusters = %d, want %d", label, got.NumClusters, want.NumClusters)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatalf("%s: labels differ", label)
	}
	if !reflect.DeepEqual(got.Core, want.Core) {
		t.Fatalf("%s: core flags differ", label)
	}
	if len(got.Border) != len(want.Border) || (len(want.Border) > 0 && !reflect.DeepEqual(got.Border, want.Border)) {
		t.Fatalf("%s: border maps differ", label)
	}
}

// TestRunCancelAtEveryPhaseBoundary cancels a context from the PhaseHook at
// each pipeline phase in turn and asserts (1) Run returns context.Canceled,
// (2) the arena scratch the cancelled run released is reused cleanly — the
// very next uncancelled run on the same arena returns exactly the baseline.
func TestRunCancelAtEveryPhaseBoundary(t *testing.T) {
	pts := clusteredPoints(6000, 2, 100, 42)
	cells := buildGridCells(pts, 2.0)
	arena := NewArena()
	base := Params{MinPts: 10, Graph: GraphBCP, Arena: arena}
	want, err := Run(cells, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"mark", "collect", "graph", "label", "border", "done"} {
		ctx, cancel := context.WithCancel(context.Background())
		p := base
		p.Exec = parallel.NewPoolContext(ctx, 0)
		p.PhaseHook = func(name string) {
			if name == phase {
				cancel()
			}
		}
		res, err := Run(cells, p)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at %q: err = %v, want context.Canceled", phase, err)
		}
		if res != nil {
			t.Fatalf("cancel at %q: got a result alongside the error", phase)
		}
		// The next run reuses the scratch the cancelled run abandoned
		// mid-phase; it must be indistinguishable from a clean run.
		got, err := Run(cells, base)
		if err != nil {
			t.Fatalf("run after cancel at %q: %v", phase, err)
		}
		sameCoreResult(t, got, want, "run after cancel at "+phase)
	}
}

// TestRunCancelPhaseBoundaryAllStrategies repeats the boundary cancellation
// for every graph strategy (the lazy per-cell state — quadtrees, USEC
// envelopes, Delaunay — must also tolerate an abandoned run).
func TestRunCancelPhaseBoundaryAllStrategies(t *testing.T) {
	pts := clusteredPoints(3000, 2, 100, 7)
	cells := buildGridCells(pts, 2.0)
	for _, g := range []GraphStrategy{GraphBCP, GraphQuadtree, GraphApprox, GraphUSEC, GraphDelaunay} {
		arena := NewArena()
		base := Params{MinPts: 8, Graph: g, Mark: MarkScan, Arena: arena}
		if g == GraphApprox {
			base.Rho = 0.05
		}
		want, err := Run(cells, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, phase := range []string{"graph", "border"} {
			ctx, cancel := context.WithCancel(context.Background())
			p := base
			p.Exec = parallel.NewPoolContext(ctx, 0)
			p.PhaseHook = func(name string) {
				if name == phase {
					cancel()
				}
			}
			if _, err := Run(cells, p); !errors.Is(err, context.Canceled) {
				t.Fatalf("graph=%d cancel at %q: err = %v", g, phase, err)
			}
			cancel()
			got, err := Run(cells, base)
			if err != nil {
				t.Fatalf("graph=%d run after cancel: %v", g, err)
			}
			sameCoreResult(t, got, want, "rerun")
		}
	}
}

// TestRunShardedCancelAtEveryPhaseBoundary is the sharded-path variant,
// covering the boundary-merge phase the monolithic path does not have.
func TestRunShardedCancelAtEveryPhaseBoundary(t *testing.T) {
	pts := clusteredPoints(8000, 2, 100, 11)
	cells := buildGridCells(pts, 2.0)
	part, err := grid.MakePartition(nil, cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	if part.NumShards < 2 {
		t.Fatalf("partition produced %d shards, want >= 2", part.NumShards)
	}
	arena := NewArena()
	base := Params{MinPts: 10, Graph: GraphBCP, Arena: arena}
	want, err := RunSharded(cells, base, part)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"mark", "graph", "merge", "label", "border", "done"} {
		ctx, cancel := context.WithCancel(context.Background())
		p := base
		p.Exec = parallel.NewPoolContext(ctx, 0)
		p.PhaseHook = func(name string) {
			if name == phase {
				cancel()
			}
		}
		res, err := RunSharded(cells, p, part)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sharded cancel at %q: err = %v, want context.Canceled", phase, err)
		}
		if res != nil {
			t.Fatalf("sharded cancel at %q: got a result alongside the error", phase)
		}
		got, err := RunSharded(cells, base, part)
		if err != nil {
			t.Fatalf("sharded run after cancel at %q: %v", phase, err)
		}
		sameCoreResult(t, got, want, "sharded rerun after cancel at "+phase)
	}
}

// TestRunIncrementalCancelPoisonsCache cancels an incremental tick at each
// phase boundary and asserts the half-absorbed cache is marked not-reusable
// (Fresh reports true), so the next tick recomputes from scratch and matches
// a from-scratch run exactly.
func TestRunIncrementalCancelPoisonsCache(t *testing.T) {
	pts := clusteredPoints(4000, 2, 100, 13)
	for _, phase := range []string{"mark", "collect", "graph", "label", "border"} {
		dyn := grid.NewDynamic(2, 2.0)
		for i := 0; i < pts.N; i++ {
			dyn.Insert(pts.At(i))
		}
		cells, dirty, err := dyn.Snapshot(nil)
		if err != nil {
			t.Fatal(err)
		}
		inc := NewIncremental()
		arena := NewArena()
		base := Params{MinPts: 10, Graph: GraphBCP, Arena: arena}
		want, err := RunIncremental(cells, base, inc, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if inc.Fresh() {
			t.Fatal("cache still fresh after a completed run")
		}

		// Mutation-free snapshot; cancel the tick at the phase boundary.
		cells2, dirty2, err := dyn.Snapshot(nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		p := base
		p.Exec = parallel.NewPoolContext(ctx, 0)
		p.PhaseHook = func(name string) {
			if name == phase {
				cancel()
			}
		}
		if _, err := RunIncremental(cells2, p, inc, dirty2); !errors.Is(err, context.Canceled) {
			t.Fatalf("incremental cancel at %q: err = %v", phase, err)
		}
		cancel()
		if !inc.Fresh() {
			t.Fatalf("incremental cancel at %q: cache not poisoned", phase)
		}

		// The poisoned cache forces a full recompute; results must match the
		// baseline exactly.
		cells3, dirty3, err := dyn.Snapshot(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunIncremental(cells3, base, inc, dirty3)
		if err != nil {
			t.Fatalf("tick after cancelled tick: %v", err)
		}
		sameCoreResult(t, got, want, "tick after cancel at "+phase)
	}
}

// TestRunUncancelledContextIdentical pins that merely running under a live
// (never-cancelled) context changes nothing: results are bit-identical to a
// context-free run, for the monolithic and sharded paths.
func TestRunUncancelledContextIdentical(t *testing.T) {
	pts := clusteredPoints(5000, 3, 100, 17)
	cells := buildGridCells(pts, 3.0)
	base := Params{MinPts: 10, Graph: GraphBCP, Arena: NewArena()}
	want, err := Run(cells, base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := base
	p.Exec = parallel.NewPoolContext(ctx, 3)
	var tm PhaseTimings
	p.Timings = &tm
	got, err := Run(cells, p)
	if err != nil {
		t.Fatal(err)
	}
	sameCoreResult(t, got, want, "live-context run")
	if tm.Mark < 0 || tm.Graph < 0 || tm.Border < 0 {
		t.Fatalf("negative phase timings: %+v", tm)
	}
	if tm.Mark == 0 && tm.Collect == 0 && tm.Graph == 0 && tm.Label == 0 && tm.Border == 0 {
		t.Fatal("no phase timing recorded")
	}
}
