package core

import (
	"fmt"
	"testing"

	"pdbscan/internal/geom"
	"pdbscan/internal/grid"
	"pdbscan/internal/metrics"
)

// TestBucketingAcrossStrategies verifies that bucketing changes no result
// for every cell-graph strategy (it only reorders connectivity queries).
func TestBucketingAcrossStrategies(t *testing.T) {
	pts := clusteredPoints(500, 2, 80, 99)
	eps := 4.0
	cells := buildGridCells(pts, eps)
	for _, g := range []GraphStrategy{GraphBCP, GraphQuadtree, GraphUSEC} {
		base, err := Run(cells, Params{MinPts: 8, Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		bucketed, err := Run(cells, Params{MinPts: 8, Graph: g, Bucketing: true, Buckets: 7})
		if err != nil {
			t.Fatal(err)
		}
		if base.NumClusters != bucketed.NumClusters {
			t.Fatalf("graph %d: bucketing changed cluster count %d -> %d",
				g, base.NumClusters, bucketed.NumClusters)
		}
		if ari := metrics.AdjustedRandIndex(base.Labels, bucketed.Labels); ari != 1 {
			t.Fatalf("graph %d: bucketing changed labels (ARI %v)", g, ari)
		}
	}
}

// TestApproxOnBoxCells runs the approximate strategy over the 2D box
// construction (quadtree roots fall back to squared-up bounding boxes).
func TestApproxOnBoxCells(t *testing.T) {
	pts := clusteredPoints(400, 2, 80, 41)
	eps := 4.0
	cells := grid.BuildBox2D(nil, pts, eps)
	cells.ComputeNeighborsBox2D(nil)
	for _, rho := range []float64{0.01, 0.3} {
		res, err := Run(cells, Params{MinPts: 6, Graph: GraphApprox, Rho: rho})
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.ValidApproxResult(pts, eps, rho, 6,
			res.Core, res.Labels, res.Border); err != nil {
			t.Fatalf("rho=%v: %v", rho, err)
		}
	}
}

// TestNegativeCoordinates exercises the origin shift in the grid builder.
func TestNegativeCoordinates(t *testing.T) {
	pts := clusteredPoints(300, 3, 50, 55)
	// Shift everything negative.
	shifted := make([]float64, len(pts.Data))
	for i, v := range pts.Data {
		shifted[i] = v - 1000
	}
	neg := geom.Points{N: pts.N, D: pts.D, Data: shifted}
	eps := 6.0
	cells := buildGridCells(neg, eps)
	res, err := Run(cells, Params{MinPts: 6, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	ref := metrics.BruteDBSCAN(neg, eps, 6)
	if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
		t.Fatal(err)
	}
}

// TestMixedScales uses coordinates at very different magnitudes per axis.
func TestMixedScales(t *testing.T) {
	pts := clusteredPoints(250, 2, 50, 77)
	data := make([]float64, len(pts.Data))
	copy(data, pts.Data)
	for i := 1; i < len(data); i += 2 {
		data[i] *= 1e-3 // compress the y axis
	}
	mixed := geom.Points{N: pts.N, D: 2, Data: data}
	eps := 2.0
	cells := buildGridCells(mixed, eps)
	for _, g := range []GraphStrategy{GraphBCP, GraphUSEC} {
		res, err := Run(cells, Params{MinPts: 5, Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		ref := metrics.BruteDBSCAN(mixed, eps, 5)
		if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
			t.Fatalf("graph %d: %v", g, err)
		}
	}
}

// TestManySmallCells exercises the regime where every cell holds one point
// (eps much smaller than spacing) across strategies.
func TestManySmallCells(t *testing.T) {
	rows := [][]float64{}
	for i := 0; i < 200; i++ {
		rows = append(rows, []float64{float64(i) * 10, float64(i%7) * 10})
	}
	pts, _ := geom.FromRows(rows)
	cells := buildGridCells(pts, 1.0)
	if cells.NumCells() != pts.N {
		t.Fatalf("cells = %d, want %d", cells.NumCells(), pts.N)
	}
	res, err := Run(cells, Params{MinPts: 1, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	// Every point is core (counts itself) and isolated.
	if res.NumClusters != pts.N {
		t.Fatalf("clusters = %d, want %d", res.NumClusters, pts.N)
	}
}

// TestEpsBoundaryPairs places points at exactly eps distance: the definition
// uses d <= eps, so they must connect.
func TestEpsBoundaryPairs(t *testing.T) {
	eps := 2.0
	rows := [][]float64{{0, 0}, {2, 0}, {4, 0}} // consecutive pairs at exactly eps
	pts, _ := geom.FromRows(rows)
	cells := buildGridCells(pts, eps)
	res, err := Run(cells, Params{MinPts: 2, Graph: GraphBCP})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1 (chain at exactly eps)", res.NumClusters)
	}
	for i := range rows {
		if !res.Core[i] {
			t.Fatalf("point %d should be core", i)
		}
	}
	for _, g := range []GraphStrategy{GraphQuadtree, GraphUSEC, GraphDelaunay} {
		r, err := Run(cells, Params{MinPts: 2, Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		if r.NumClusters != 1 {
			t.Fatalf("graph %d: clusters = %d, want 1", g, r.NumClusters)
		}
	}
}

// TestVaryingBucketsLargerMatrix runs a wider (eps, minPts) matrix through
// two strategies as a regression net for the union-find pruning.
func TestVaryingBucketsLargerMatrix(t *testing.T) {
	pts := clusteredPoints(350, 2, 70, 31)
	for _, eps := range []float64{1, 2.5, 6} {
		cells := buildGridCells(pts, eps)
		for _, minPts := range []int{2, 5, 20} {
			ref := metrics.BruteDBSCAN(pts, eps, minPts)
			for _, g := range []GraphStrategy{GraphBCP, GraphUSEC} {
				res, err := Run(cells, Params{MinPts: minPts, Graph: g, Bucketing: true, Buckets: 3})
				if err != nil {
					t.Fatal(err)
				}
				if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
					t.Fatalf("eps=%v minPts=%d graph=%d: %v", eps, minPts, g, err)
				}
			}
		}
	}
}

// TestCollinearPointsGridAndUSEC is a degeneracy regression: all points on a
// line (the Delaunay variant is excluded: collinear inputs have no proper
// triangulation).
func TestCollinearPointsGridAndUSEC(t *testing.T) {
	rows := [][]float64{}
	for i := 0; i < 60; i++ {
		rows = append(rows, []float64{float64(i) * 0.5, 3})
	}
	pts, _ := geom.FromRows(rows)
	eps := 1.0
	cells := buildGridCells(pts, eps)
	ref := metrics.BruteDBSCAN(pts, eps, 3)
	for _, g := range []GraphStrategy{GraphBCP, GraphQuadtree, GraphUSEC} {
		res, err := Run(cells, Params{MinPts: 3, Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
			t.Fatalf("graph %d: %v", g, err)
		}
	}
}

func ExampleRun() {
	rows := [][]float64{{0, 0}, {0.5, 0}, {1, 0}, {10, 10}}
	pts, _ := geom.FromRows(rows)
	cells := grid.BuildGrid(nil, pts, 1.0)
	cells.ComputeNeighborsEnum(nil)
	res, _ := Run(cells, Params{MinPts: 2, Graph: GraphBCP})
	fmt.Println(res.NumClusters)
	// Output: 1
}
