package core

import (
	"pdbscan/internal/geom"
)

// markCore implements Algorithm 2: cells with at least minPts points are
// all-core; points in smaller cells count their eps-neighbors in their own
// cell plus every neighboring cell via RangeCount queries.
func (st *pipeline) markCore() {
	c := st.cells
	n := c.Pts.N
	numCells := c.NumCells()
	st.coreFlags = make([]bool, n)
	if st.p.Mark == MarkQuadtree {
		st.allTrees = make([]lazyTree, numCells)
	}
	st.ex.ForGrain(numCells, 1, func(g int) { st.markCellCore(g) })
}

// markCellCore decides the core flag of every point in cell g (writing both
// true and false, so the incremental pipeline can re-mark a dirty cell over
// stale flags).
func (st *pipeline) markCellCore(g int) {
	c := st.cells
	minPts := st.p.MinPts
	eps := st.eps
	eps2 := eps * eps
	size := c.CellSize(g)
	pts := c.PointsOf(g)
	if size >= minPts {
		// Every pair inside a cell is within eps (cell diameter <= eps).
		for _, p := range pts {
			st.coreFlags[p] = true
		}
		return
	}
	// Small cell: each point runs RangeCount against the neighbors.
	nbrs := c.Neighbors[g]
	for _, p := range pts {
		count := size // the cell's own points are all within eps
		q := st.at(p)
		for _, h := range nbrs {
			if count >= minPts {
				break
			}
			// Skip neighbor cells entirely outside the eps-ball.
			hLo, hHi := c.CellBox(int(h))
			if geom.PointBoxDistSq(q, hLo, hHi) > eps2 {
				continue
			}
			if st.p.Mark == MarkQuadtree {
				count += st.allTree(h).CountWithin(q, eps)
			} else {
				count += st.rangeCountScan(q, int(h), eps2, minPts-count)
			}
		}
		st.coreFlags[p] = count >= minPts
	}
}

// rangeCountScan counts points of cell h within sqrt(eps2) of q by scanning,
// stopping once `need` qualifying points have been found (early exit never
// changes the core/non-core decision).
func (st *pipeline) rangeCountScan(q []float64, h int, eps2 float64, need int) int {
	count := 0
	for _, r := range st.cells.PointsOf(h) {
		if geom.DistSq(q, st.at(r)) <= eps2 {
			count++
			if count >= need {
				return count
			}
		}
	}
	return count
}
