package core

import "sort"

// markCore implements Algorithm 2: cells with at least minPts points are
// all-core; points in smaller cells count their eps-neighbors in their own
// cell plus every neighboring cell via RangeCount queries.
func (st *pipeline) markCore() {
	c := st.cells
	n := c.Pts.N
	numCells := c.NumCells()
	st.coreFlags = make([]bool, n) // escapes into Result.Core; never pooled
	if st.p.Mark == MarkQuadtree {
		st.rs.allTrees = lazyTreeBuf(st.rs.allTrees, numCells)
		st.allTrees = st.rs.allTrees
	}
	st.ex.BlockedFor(numCells, 1, func(lo, hi int) {
		ws := st.getWS()
		for g := lo; g < hi; g++ {
			if st.cancelled() {
				break // partial flags; Run bails at the next phase boundary
			}
			st.markCellCore(g, ws)
		}
		st.putWS(ws)
	})
}

// markCellCore decides the core flag of every point in cell g (writing both
// true and false, so the incremental pipeline can re-mark a dirty cell over
// stale flags).
//
// Under a sample mask (Params.Sample, the DBSCAN++ mode) only sampled points
// get a core decision — computed against the full counting set, so it equals
// the exact decision — and every unsampled point's flag is written false.
//
// For small cells the neighbor list is first filtered and ordered by
// ascending box-box distance between the cells' point bounding boxes:
// neighbors whose box lies beyond eps can contribute nothing to any point of
// g and are dropped wholesale, and visiting the nearest boxes first makes
// the count reach MinPts — and the per-point loop terminate — after the
// fewest RangeCount queries. The core decision is a pure threshold on the
// total count, so visit order never changes a flag.
//
// The prepass costs one box-box distance per neighbor plus a sort, amortized
// over the cell's points. In low dimensions neighbor lists are short (<= 24
// cells in 2D) and the prepass always pays; in high dimensions a sparse cell
// can see a neighbor list orders of magnitude longer than its point count,
// where the old per-point early-exit walk does less total work — so the
// ordered path is gated on the list-to-cell size ratio and the unordered
// walk kept as the fallback.
func (st *pipeline) markCellCore(g int, ws *workerScratch) {
	c := st.cells
	minPts := st.p.MinPts
	eps2 := st.eps2
	size := c.CellSize(g)
	pts := st.cellPts(g)
	orig := c.PointsOf(g) // == pts on the indirect path
	sample := st.p.Sample
	if size >= minPts {
		// Every pair inside a cell is within eps (cell diameter <= eps).
		// Flags and the sample mask are keyed by original index, so this
		// shortcut never touches the active store at all.
		if sample != nil {
			for _, p := range orig {
				st.coreFlags[p] = sample[p]
			}
			return
		}
		for _, p := range orig {
			st.coreFlags[p] = true
		}
		return
	}
	nbrs := c.Neighbors[g]
	ordered := len(nbrs) <= maxOrderedNeighbors
	if !ordered && st.k.Specialized() {
		// In 2D/3D the box prepass is a handful of specialized compares per
		// neighbor; it also pays on longer lists when the cell has enough
		// points to amortize it. In higher dimensions the generic prepass
		// only pays on short lists (the fallback preserves the seed's cost
		// shape there — measured in BENCH_hot.json's d=5 rows).
		ordered = len(nbrs) <= 8*size
	}
	if !ordered {
		// Unordered fallback: per-point box check + early exit.
		for i, p := range pts {
			op := orig[i]
			if sample != nil && !sample[op] {
				st.coreFlags[op] = false
				continue
			}
			count := size
			for _, h := range nbrs {
				if count >= minPts {
					break
				}
				if st.k.PointBoxDistSqAt(p, c.BBLo, c.BBHi, h) > eps2 {
					continue
				}
				count += st.rangeCount(p, h, eps2, minPts-count)
			}
			st.coreFlags[op] = count >= minPts
		}
		return
	}
	// Order the neighbor cells by ascending box distance, dropping cells
	// entirely outside the eps-ball of g's bounding box.
	ord := ws.nbrOrder[:0]
	dist := ws.nbrDist[:0]
	for _, h := range nbrs {
		d2 := st.k.BoxBoxDistSqAt(c.BBLo, c.BBHi, int32(g), h)
		if d2 > eps2 {
			continue
		}
		ord = append(ord, h)
		dist = append(dist, d2)
	}
	sortNeighborsByDist(ws, ord, dist)
	ws.nbrOrder, ws.nbrDist = ord, dist // keep grown capacity

	// Each point runs RangeCount against the ordered neighbors.
	for i, p := range pts {
		op := orig[i]
		if sample != nil && !sample[op] {
			st.coreFlags[op] = false
			continue
		}
		count := size // the cell's own points are all within eps
		for _, h := range ord {
			if count >= minPts {
				break
			}
			// Skip neighbor cells entirely outside this point's eps-ball.
			if st.k.PointBoxDistSqAt(p, c.BBLo, c.BBHi, h) > eps2 {
				continue
			}
			count += st.rangeCount(p, h, eps2, minPts-count)
		}
		st.coreFlags[op] = count >= minPts
	}
}

// rangeCount counts points of neighbor cell h within sqrt(eps2) of point p,
// stopping at need, through the configured MarkCore strategy.
func (st *pipeline) rangeCount(p, h int32, eps2 float64, need int) int {
	if st.p.Mark == MarkQuadtree {
		return st.allTree(h).CountWithin(st.at(p), st.eps)
	}
	if st.contig {
		// Cell h's points are the contiguous payload rows
		// [CellStart[h], CellStart[h+1]): stream them instead of gathering.
		return st.k.CountWithinRange(p, st.cells.CellStart[h], st.cells.CellStart[h+1], eps2, need)
	}
	return st.k.CountWithin(p, st.cells.PointsOf(int(h)), eps2, need)
}

// maxOrderedNeighbors is the neighbor-list length up to which the ordered
// prepass always runs regardless of cell size (covers every 2D list and the
// common 3D ones); longer lists order only when the cell has enough points
// to amortize the prepass.
const maxOrderedNeighbors = 32

// sortNeighborsByDist sorts (ord, dist) by ascending distance, ties by cell
// index (a deterministic total order): insertion sort for short lists, an
// allocation-free sort.Sort via the worker's sorter otherwise.
func sortNeighborsByDist(ws *workerScratch, ord []int32, dist []float64) {
	if len(ord) <= 24 {
		for i := 1; i < len(ord); i++ {
			dj, hj := dist[i], ord[i]
			j := i
			for j > 0 && (dist[j-1] > dj || (dist[j-1] == dj && ord[j-1] > hj)) {
				dist[j], ord[j] = dist[j-1], ord[j-1]
				j--
			}
			dist[j], ord[j] = dj, hj
		}
		return
	}
	ws.sorter.ord, ws.sorter.dist = ord, dist
	sort.Sort(&ws.sorter)
	ws.sorter.ord, ws.sorter.dist = nil, nil
}

// nbrSorter sorts a neighbor list by ascending distance, ties by cell index.
type nbrSorter struct {
	ord  []int32
	dist []float64
}

func (s *nbrSorter) Len() int { return len(s.ord) }
func (s *nbrSorter) Less(i, j int) bool {
	if s.dist[i] != s.dist[j] {
		return s.dist[i] < s.dist[j]
	}
	return s.ord[i] < s.ord[j]
}
func (s *nbrSorter) Swap(i, j int) {
	s.ord[i], s.ord[j] = s.ord[j], s.ord[i]
	s.dist[i], s.dist[j] = s.dist[j], s.dist[i]
}
