package core

import (
	"math"
	"testing"

	"pdbscan/internal/dataset"
	"pdbscan/internal/parallel"
)

func TestUniformMaskDeterministicAcrossWorkers(t *testing.T) {
	const n = 10000
	ref := UniformMask(parallel.NewPool(1), n, 0.3, 42)
	for _, w := range []int{2, 3, 8} {
		got := UniformMask(parallel.NewPool(w), n, 0.3, 42)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: mask[%d] = %v, want %v", w, i, got[i], ref[i])
			}
		}
	}
	// A different seed picks a different sample.
	other := UniformMask(parallel.NewPool(2), n, 0.3, 43)
	same := 0
	for i := range ref {
		if other[i] == ref[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("seed 42 and 43 produced identical masks")
	}
}

func TestUniformMaskFraction(t *testing.T) {
	const n = 200000
	for _, frac := range []float64{0.01, 0.1, 0.5} {
		mask := UniformMask(nil, n, frac, 7)
		count := 0
		for _, m := range mask {
			if m {
				count++
			}
		}
		want := frac * n
		// Binomial: allow 6 standard deviations.
		tol := 6 * math.Sqrt(want*(1-frac))
		if math.Abs(float64(count)-want) > tol {
			t.Errorf("frac=%v: sampled %d of %d, want %.0f +- %.0f", frac, count, n, want, tol)
		}
	}
	full := UniformMask(nil, 100, 1.0, 7)
	for i, m := range full {
		if !m {
			t.Fatalf("frac=1: point %d not sampled", i)
		}
	}
	none := UniformMask(nil, 100, 0, 7)
	for i, m := range none {
		if m {
			t.Fatalf("frac=0: point %d sampled", i)
		}
	}
}

func TestKCenterMaskCountAndDeterminism(t *testing.T) {
	pts := dataset.UniformFill(5000, 2, 11)
	const frac = 0.04
	wantM := int(math.Ceil(frac * float64(pts.N)))
	ref := KCenterMask(parallel.NewPool(1), pts, frac, 42)
	count := 0
	for _, m := range ref {
		if m {
			count++
		}
	}
	if count != wantM {
		t.Fatalf("sampled %d points, want ceil(frac*n) = %d", count, wantM)
	}
	for _, w := range []int{2, 3, 8} {
		got := KCenterMask(parallel.NewPool(w), pts, frac, 42)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: mask[%d] = %v, want %v (argmax not partition-independent)", w, i, got[i], ref[i])
			}
		}
	}
}

func TestKCenterMaskCovers(t *testing.T) {
	// Greedy K-center's defining property: after picking m centers, the
	// farthest remaining distance is at most the optimal 2-approximation —
	// here we just check it shrinks as m grows.
	pts := dataset.UniformFill(2000, 2, 5)
	far := func(frac float64) float64 {
		mask := KCenterMask(nil, pts, frac, 1)
		worst := 0.0
		for i := 0; i < pts.N; i++ {
			best := math.Inf(1)
			for j := 0; j < pts.N; j++ {
				if !mask[j] {
					continue
				}
				var d2 float64
				for k := 0; k < pts.D; k++ {
					diff := pts.At(i)[k] - pts.At(j)[k]
					d2 += diff * diff
				}
				if d2 < best {
					best = d2
				}
			}
			if best > worst {
				worst = best
			}
		}
		return worst
	}
	if f1, f2 := far(0.002), far(0.02); f2 >= f1 {
		t.Fatalf("coverage radius did not shrink with more centers: %v -> %v", f1, f2)
	}
}
