package core

import (
	"sort"
	"sync"

	"pdbscan/internal/usec"
)

// Canonical frames for the USEC separating line (2D). The envelope cell is
// always the one below (or left of) the line; a query cell above uses dirUp,
// a query cell to the right uses dirRight with coordinates swapped so the
// line is horizontal in the canonical (u, v) frame.
const (
	dirUp    = iota // vertical separation: u = x, v = y
	dirRight        // horizontal separation: u = y, v = x
	numDirs
)

// usecCell is the per-core-cell lazy USEC state: core points sorted by x and
// by y (the "two copies" of Section 4.4), plus one wavefront per direction.
type usecCell struct {
	sortOnce sync.Once
	byX, byY []int32 // core point indices sorted by x / by y

	envOnce [numDirs]sync.Once
	env     [numDirs]*usec.Envelope
}

func (st *pipeline) initUSEC() {
	st.rs.usecCells = usecCellBuf(st.rs.usecCells, st.cells.NumCells())
	st.usecCells = st.rs.usecCells
}

// sorted ensures and returns the coordinate-sorted core point lists of cell g.
func (st *pipeline) sorted(g int32) *usecCell {
	uc := &st.usecCells[g]
	uc.sortOnce.Do(func() {
		core := st.corePts[g]
		uc.byX = make([]int32, len(core))
		copy(uc.byX, core)
		uc.byY = make([]int32, len(core))
		copy(uc.byY, core)
		data := st.pts.Data // active store: core lists are in its index space
		sort.Slice(uc.byX, func(i, j int) bool {
			return data[2*uc.byX[i]] < data[2*uc.byX[j]]
		})
		sort.Slice(uc.byY, func(i, j int) bool {
			return data[2*uc.byY[i]+1] < data[2*uc.byY[j]+1]
		})
	})
	return uc
}

// transform maps active-store point p into the canonical frame of dir.
func (st *pipeline) transform(p int32, dir int) (u, v float64) {
	x := st.pts.Data[2*p]
	y := st.pts.Data[2*p+1]
	if dir == dirUp {
		return x, y
	}
	return y, x
}

// envelope returns (building on first use) cell g's wavefront facing dir.
func (st *pipeline) envelope(g int32, dir int) *usec.Envelope {
	uc := st.sorted(g)
	uc.envOnce[dir].Do(func() {
		// Centers sorted by canonical u: x-order for the vertical frame,
		// y-order for the horizontal one.
		src := uc.byX
		if dir == dirRight {
			src = uc.byY
		}
		us := make([]float64, len(src))
		vs := make([]float64, len(src))
		for i, p := range src {
			us[i], vs[i] = st.transform(p, dir)
		}
		uc.env[dir] = usec.BuildEnvelope(us, vs, st.eps)
	})
	return uc.env[dir]
}

// usecConnected answers the cell connectivity query with USEC: pick an
// axis-parallel line separating the two cells' core bounding boxes (one
// always exists: cells are disjoint axis-aligned boxes), take the wavefront
// of the cell below/left of the line, and test whether any core point of the
// other cell lies inside the union of circles.
func (st *pipeline) usecConnected(g, h int32, ws *workerScratch) bool {
	gLo := st.coreBBLo[2*g : 2*g+2]
	gHi := st.coreBBHi[2*g : 2*g+2]
	hLo := st.coreBBLo[2*h : 2*h+2]
	hHi := st.coreBBHi[2*h : 2*h+2]

	var env, query int32
	var dir int
	switch {
	case gLo[1] >= hHi[1]: // g above h
		env, query, dir = h, g, dirUp
	case hLo[1] >= gHi[1]: // h above g
		env, query, dir = g, h, dirUp
	case gLo[0] >= hHi[0]: // g right of h
		env, query, dir = h, g, dirRight
	case hLo[0] >= gHi[0]: // h right of g
		env, query, dir = g, h, dirRight
	default:
		// Unreachable for grid/box cells (disjoint boxes always separate
		// along an axis); kept as a safe fallback.
		return st.bcpConnected(g, h, ws)
	}
	e := st.envelope(env, dir)
	for _, p := range st.sorted(query).byX {
		u, v := st.transform(p, dir)
		if e.Covers(u, v) {
			return true
		}
	}
	return false
}
