// Package hashtable implements the phase-concurrent linear-probing hash table
// the paper uses to store non-empty cells (Section 2, citing Shun–Blelloch).
// Insertions use an atomic claim of an empty slot and continue probing on
// failure; lookups may run concurrently with each other and, in the
// phase-concurrent discipline, are issued only after the insert phase ends.
package hashtable

import (
	"sync/atomic"

	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// slot states.
const (
	slotEmpty uint32 = iota
	slotClaimed
	slotFull
)

// U64 maps uint64 keys to int32 values. The zero key is a valid key.
type U64 struct {
	state []uint32
	keys  []uint64
	vals  []int32
	mask  uint64
}

// NewU64 creates a table with capacity for at least n entries at load factor
// <= 0.5 (capacity is the next power of two >= 2n, minimum 16).
func NewU64(n int) *U64 {
	capacity := 16
	for capacity < 2*n {
		capacity <<= 1
	}
	return &U64{
		state: make([]uint32, capacity),
		keys:  make([]uint64, capacity),
		vals:  make([]int32, capacity),
		mask:  uint64(capacity - 1),
	}
}

// Insert stores key -> val. It is safe to call concurrently with other
// Inserts. If the key is inserted twice, one of the values wins
// (non-deterministic, like the paper's table); duplicate inserts of the same
// key are not detected, so callers insert each key once (the grid inserts one
// entry per distinct cell).
func (t *U64) Insert(key uint64, val int32) {
	i := prim.Mix64(key) & t.mask
	for {
		if atomic.LoadUint32(&t.state[i]) == slotEmpty &&
			atomic.CompareAndSwapUint32(&t.state[i], slotEmpty, slotClaimed) {
			t.keys[i] = key
			t.vals[i] = val
			atomic.StoreUint32(&t.state[i], slotFull)
			return
		}
		i = (i + 1) & t.mask
	}
}

// Lookup returns the value for key and whether it is present. Concurrent with
// other Lookups; if concurrent with Inserts it spins on slots whose write is
// in flight (phase-concurrent usage never does).
func (t *U64) Lookup(key uint64) (int32, bool) {
	i := prim.Mix64(key) & t.mask
	for {
		s := atomic.LoadUint32(&t.state[i])
		for s == slotClaimed {
			s = atomic.LoadUint32(&t.state[i])
		}
		if s == slotEmpty {
			return 0, false
		}
		if t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// Len counts the occupied slots (parallel scan).
func (t *U64) Len() int {
	return prim.CountIf(nil, len(t.state), func(i int) bool {
		return atomic.LoadUint32(&t.state[i]) == slotFull
	})
}

// ForEach invokes f on every (key, value) pair, in parallel. Must not run
// concurrently with Inserts.
func (t *U64) ForEach(f func(key uint64, val int32)) {
	parallel.For(len(t.state), func(i int) {
		if t.state[i] == slotFull {
			f(t.keys[i], t.vals[i])
		}
	})
}
