package hashtable

import (
	"math/rand"
	"testing"

	"pdbscan/internal/parallel"
)

func TestInsertLookupSerial(t *testing.T) {
	tb := NewU64(100)
	want := map[uint64]int32{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		k := rng.Uint64()
		want[k] = int32(i)
		tb.Insert(k, int32(i))
	}
	for k, v := range want {
		got, ok := tb.Lookup(k)
		if !ok || got != v {
			t.Fatalf("Lookup(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	if _, ok := tb.Lookup(0xdeadbeef12345678); ok {
		t.Fatal("found absent key")
	}
	if tb.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(want))
	}
}

func TestZeroKey(t *testing.T) {
	tb := NewU64(4)
	tb.Insert(0, 42)
	got, ok := tb.Lookup(0)
	if !ok || got != 42 {
		t.Fatalf("zero key: got %d,%v", got, ok)
	}
}

func TestConcurrentInserts(t *testing.T) {
	n := 200000
	tb := NewU64(n)
	parallel.For(n, func(i int) {
		tb.Insert(uint64(i)*2654435761+1, int32(i))
	})
	if got := tb.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	parallel.For(n, func(i int) {
		v, ok := tb.Lookup(uint64(i)*2654435761 + 1)
		if !ok || v != int32(i) {
			t.Errorf("key %d: got %d,%v", i, v, ok)
		}
	})
}

func TestForEachVisitsAll(t *testing.T) {
	n := 5000
	tb := NewU64(n)
	for i := 0; i < n; i++ {
		tb.Insert(uint64(i)+7, int32(i))
	}
	seen := make([]int32, n)
	tb.ForEach(func(k uint64, v int32) {
		seen[v]++
		if k != uint64(v)+7 {
			t.Errorf("mismatched pair (%d,%d)", k, v)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("value %d seen %d times", i, c)
		}
	}
}

func TestHighCollisionKeys(t *testing.T) {
	// Sequential keys stress linear probing runs.
	n := 30000
	tb := NewU64(n)
	parallel.For(n, func(i int) { tb.Insert(uint64(i), int32(i)) })
	for i := 0; i < n; i++ {
		v, ok := tb.Lookup(uint64(i))
		if !ok || v != int32(i) {
			t.Fatalf("key %d: got %d,%v", i, v, ok)
		}
	}
}
