package delaunay

import "testing"

func BenchmarkTriangulate(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		pts := randomPoints2D(n, 1e4, 1)
		idx := allIdx(n)
		b.Run(benchName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				work := make([]int32, len(idx))
				copy(work, idx)
				Triangulate(nil, pts, work)
			}
		})
	}
}

func benchName(n int) string {
	if n >= 1000 {
		return "n=" + itoa(n/1000) + "k"
	}
	return "n=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
