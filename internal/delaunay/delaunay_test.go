package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"pdbscan/internal/geom"
)

func randomPoints2D(n int, scale float64, seed int64) geom.Points {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*2)
	for i := range data {
		data[i] = rng.Float64() * scale
	}
	return geom.Points{N: n, D: 2, Data: data}
}

func allIdx(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// isDelaunayEdge brute-forces the Delaunay edge characterization: (u, v) is
// a Delaunay edge iff some circle through u and v is empty of other points.
// For points in general position it suffices to check circumcircles through
// every third point plus the diametral circle.
func isDelaunayEdge(pts geom.Points, u, v int) bool {
	ux, uy := pts.At(u)[0], pts.At(u)[1]
	vx, vy := pts.At(v)[0], pts.At(v)[1]
	// Diametral circle.
	cx, cy := (ux+vx)/2, (uy+vy)/2
	r2 := ((ux-vx)*(ux-vx) + (uy-vy)*(uy-vy)) / 4
	empty := true
	for w := 0; w < pts.N; w++ {
		if w == u || w == v {
			continue
		}
		wx, wy := pts.At(w)[0], pts.At(w)[1]
		if (wx-cx)*(wx-cx)+(wy-cy)*(wy-cy) < r2-1e-12 {
			empty = false
			break
		}
	}
	if empty {
		return true
	}
	// Circumcircles through each candidate third point.
	for w := 0; w < pts.N; w++ {
		if w == u || w == v {
			continue
		}
		wx, wy := pts.At(w)[0], pts.At(w)[1]
		// Circumcenter of (u, v, w).
		d := 2 * (ux*(vy-wy) + vx*(wy-uy) + wx*(uy-vy))
		if math.Abs(d) < 1e-12 {
			continue // collinear
		}
		cx := ((ux*ux+uy*uy)*(vy-wy) + (vx*vx+vy*vy)*(wy-uy) + (wx*wx+wy*wy)*(uy-vy)) / d
		cy := ((ux*ux+uy*uy)*(wx-vx) + (vx*vx+vy*vy)*(ux-wx) + (wx*wx+wy*wy)*(vx-ux)) / d
		r2 := (ux-cx)*(ux-cx) + (uy-cy)*(uy-cy)
		ok := true
		for z := 0; z < pts.N; z++ {
			if z == u || z == v || z == w {
				continue
			}
			zx, zy := pts.At(z)[0], pts.At(z)[1]
			if (zx-cx)*(zx-cx)+(zy-cy)*(zy-cy) < r2-1e-9 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestTriangulationMatchesBruteForce(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pts := randomPoints2D(40, 100, seed)
		edges := Triangulate(nil, pts, allIdx(pts.N))
		got := map[[2]int32]bool{}
		for _, e := range edges {
			got[[2]int32{e.U, e.V}] = true
		}
		for u := 0; u < pts.N; u++ {
			for v := u + 1; v < pts.N; v++ {
				want := isDelaunayEdge(pts, u, v)
				if got[[2]int32{int32(u), int32(v)}] != want {
					t.Fatalf("seed %d: edge (%d,%d) in DT = %v, brute force = %v",
						seed, u, v, got[[2]int32{int32(u), int32(v)}], want)
				}
			}
		}
	}
}

// convexHullSize computes the hull size with Andrew's monotone chain.
func convexHullSize(pts geom.Points) int {
	n := pts.N
	idx := allIdx(n)
	// sort by (x, y)
	for i := 1; i < n; i++ {
		j := i
		for j > 0 {
			a, b := idx[j], idx[j-1]
			if pts.At(int(a))[0] < pts.At(int(b))[0] ||
				(pts.At(int(a))[0] == pts.At(int(b))[0] && pts.At(int(a))[1] < pts.At(int(b))[1]) {
				idx[j], idx[j-1] = idx[j-1], idx[j]
				j--
			} else {
				break
			}
		}
	}
	cross := func(o, a, b int32) float64 {
		ox, oy := pts.At(int(o))[0], pts.At(int(o))[1]
		ax, ay := pts.At(int(a))[0], pts.At(int(a))[1]
		bx, by := pts.At(int(b))[0], pts.At(int(b))[1]
		return (ax-ox)*(by-oy) - (ay-oy)*(bx-ox)
	}
	var hull []int32
	for _, p := range idx {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	lower := len(hull)
	hull = hull[:len(hull):len(hull)]
	upper := []int32{}
	for i := n - 1; i >= 0; i-- {
		p := idx[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	return lower + len(upper) - 2
}

func TestEdgeCountFormula(t *testing.T) {
	// For a triangulation of n points with h hull points (general position):
	// E = 3n - 3 - h.
	for _, n := range []int{10, 50, 200} {
		pts := randomPoints2D(n, 1000, int64(n))
		edges := Triangulate(nil, pts, allIdx(n))
		h := convexHullSize(pts)
		want := 3*n - 3 - h
		if len(edges) != want {
			t.Fatalf("n=%d h=%d: %d edges, want %d", n, h, len(edges), want)
		}
	}
}

func TestNearestNeighborEdgesPresent(t *testing.T) {
	// The nearest-neighbor graph is a subgraph of the DT.
	pts := randomPoints2D(300, 100, 77)
	edges := Triangulate(nil, pts, allIdx(pts.N))
	have := map[[2]int32]bool{}
	for _, e := range edges {
		have[[2]int32{e.U, e.V}] = true
	}
	for u := 0; u < pts.N; u++ {
		best, bestD := -1, math.Inf(1)
		for v := 0; v < pts.N; v++ {
			if v == u {
				continue
			}
			if d := geom.DistSq(pts.At(u), pts.At(v)); d < bestD {
				best, bestD = v, d
			}
		}
		a, b := int32(u), int32(best)
		if a > b {
			a, b = b, a
		}
		if !have[[2]int32{a, b}] {
			t.Fatalf("nearest-neighbor edge (%d,%d) missing from DT", a, b)
		}
	}
}

func TestSmallInputs(t *testing.T) {
	if edges := Triangulate(nil, geom.Points{N: 1, D: 2, Data: []float64{0, 0}}, []int32{0}); edges != nil {
		t.Fatalf("1 point: edges = %v", edges)
	}
	two, _ := geom.FromRows([][]float64{{0, 0}, {1, 1}})
	edges := Triangulate(nil, two, allIdx(2))
	if len(edges) != 1 || edges[0] != (Edge{0, 1}) {
		t.Fatalf("2 points: edges = %v", edges)
	}
	three, _ := geom.FromRows([][]float64{{0, 0}, {1, 0}, {0, 1}})
	edges = Triangulate(nil, three, allIdx(3))
	if len(edges) != 3 {
		t.Fatalf("3 points: %d edges, want 3", len(edges))
	}
}

func TestDuplicateCoordinatesCollapsed(t *testing.T) {
	rows := [][]float64{{0, 0}, {1, 0}, {0, 1}, {0, 0}, {1, 0}}
	pts, _ := geom.FromRows(rows)
	edges := Triangulate(nil, pts, allIdx(5))
	if len(edges) != 3 {
		t.Fatalf("duplicates: %d edges, want 3", len(edges))
	}
	for _, e := range edges {
		if e.U > 2 || e.V > 2 {
			t.Fatalf("edge references duplicate point: %v", e)
		}
	}
}

func TestSubsetTriangulation(t *testing.T) {
	pts := randomPoints2D(100, 50, 5)
	idx := []int32{}
	for i := 0; i < 100; i += 3 {
		idx = append(idx, int32(i))
	}
	edges := Triangulate(nil, pts, idx)
	sel := map[int32]bool{}
	for _, i := range idx {
		sel[i] = true
	}
	for _, e := range edges {
		if !sel[e.U] || !sel[e.V] {
			t.Fatalf("edge %v uses point outside the subset", e)
		}
	}
}

func TestFilterCellEdges(t *testing.T) {
	pts, _ := geom.FromRows([][]float64{{0, 0}, {1, 0}, {10, 0}, {0.5, 0.5}})
	cellOf := []int32{0, 1, 2, 0}
	edges := []Edge{{0, 1}, {1, 2}, {0, 3}, {1, 3}}
	out := FilterCellEdges(nil, edges, pts, cellOf, 2.0)
	// (0,1): cells 0-1, dist 1 <= 2: kept. (1,2): dist 9 > 2: dropped.
	// (0,3): same cell: dropped. (1,3): cells 1-0, dist ~0.7: kept.
	if len(out) != 2 {
		t.Fatalf("filtered edges = %v", out)
	}
	if out[0].U != 0 || out[0].V != 1 {
		t.Fatalf("first cell edge = %v", out[0])
	}
	if out[1].U != 1 || out[1].V != 0 {
		t.Fatalf("second cell edge = %v", out[1])
	}
}

func TestLargeTriangulationSane(t *testing.T) {
	n := 5000
	pts := randomPoints2D(n, 1e4, 99)
	edges := Triangulate(nil, pts, allIdx(n))
	if len(edges) < 2*n || len(edges) > 3*n {
		t.Fatalf("edge count %d outside sane range for n=%d", len(edges), n)
	}
}
