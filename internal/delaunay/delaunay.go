// Package delaunay implements the 2D Delaunay triangulation used by the
// triangulation-based cell-graph construction (Section 4.4): if a DT edge
// between core points of two different cells has length at most eps, the two
// cells are connected.
//
// The construction is the randomized incremental Bowyer–Watson algorithm with
// a history DAG for point location (expected O(n log n) work). The paper uses
// the batched parallel incremental algorithm from PBBS; here insertion is
// serial while edge extraction and all downstream use are parallel — a
// documented substitution (DESIGN.md): the Delaunay variant exists to be
// compared against BCP/USEC, and the paper itself finds it dominated.
package delaunay

import (
	"math/rand"

	"pdbscan/internal/geom"
	"pdbscan/internal/parallel"
	"pdbscan/internal/prim"
)

// Edge is an undirected triangulation edge between point indices U < V.
type Edge struct {
	U, V int32
}

type triangle struct {
	v        [3]int32 // CCW vertices; >= nReal are super-triangle vertices
	adj      [3]int32 // adj[k] is across the edge opposite v[k]; -1 if none
	children []int32
	alive    bool
}

type mesh struct {
	px, py []float64 // coordinates indexed by vertex id (real + 3 super)
	tris   []triangle
	root   int32
	nReal  int32
}

// Triangulate computes the Delaunay triangulation of the points selected by
// idx (2D). Exact coordinate duplicates are collapsed to one representative;
// returned edges reference original point indices with U < V. The executor ex
// sizes the parallel pre/post passes (nil = default pool); insertion itself
// is serial.
func Triangulate(ex *parallel.Pool, pts geom.Points, idx []int32) []Edge {
	if pts.D != 2 {
		panic("delaunay: requires 2-dimensional points")
	}
	// Deduplicate identical coordinates: sort by (x, y) and keep the first of
	// each run. Duplicates share the representative's cell (equal coords), so
	// dropping them never loses cell-graph connectivity.
	uniq := make([]int32, len(idx))
	copy(uniq, idx)
	prim.Sort(ex, uniq, func(a, b int32) bool {
		ax, ay := pts.Data[2*a], pts.Data[2*a+1]
		bx, by := pts.Data[2*b], pts.Data[2*b+1]
		if ax != bx {
			return ax < bx
		}
		if ay != by {
			return ay < by
		}
		return a < b
	})
	w := 0
	for i := range uniq {
		if i == 0 || pts.Data[2*uniq[i]] != pts.Data[2*uniq[i-1]] ||
			pts.Data[2*uniq[i]+1] != pts.Data[2*uniq[i-1]+1] {
			uniq[w] = uniq[i]
			w++
		}
	}
	uniq = uniq[:w]
	n := len(uniq)
	if n < 2 {
		return nil
	}
	if n == 2 {
		u, v := uniq[0], uniq[1]
		if u > v {
			u, v = v, u
		}
		return []Edge{{u, v}}
	}

	// Vertex coordinate tables: real vertices first, then the three
	// super-triangle vertices.
	m := &mesh{
		px:    make([]float64, n+3),
		py:    make([]float64, n+3),
		nReal: int32(n),
	}
	minX, maxX := pts.Data[2*uniq[0]], pts.Data[2*uniq[0]]
	minY, maxY := pts.Data[2*uniq[0]+1], pts.Data[2*uniq[0]+1]
	for i, p := range uniq {
		x, y := pts.Data[2*p], pts.Data[2*p+1]
		m.px[i], m.py[i] = x, y
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	r := maxX - minX
	if dy := maxY - minY; dy > r {
		r = dy
	}
	if r == 0 {
		r = 1
	}
	// Super-triangle vertices far enough out that their circumcircles never
	// exclude valid real-point triangles near the hull.
	big := r * 1e5
	m.px[n], m.py[n] = cx-2*big, cy-big
	m.px[n+1], m.py[n+1] = cx+2*big, cy-big
	m.px[n+2], m.py[n+2] = cx, cy+2*big
	m.tris = append(m.tris, triangle{
		v:     [3]int32{int32(n), int32(n + 1), int32(n + 2)},
		adj:   [3]int32{-1, -1, -1},
		alive: true,
	})
	m.root = 0

	// Random insertion order (deterministic seed for reproducibility).
	perm := rand.New(rand.NewSource(0x5eed)).Perm(n)
	for _, vi := range perm {
		m.insert(int32(vi))
	}

	// Collect edges of alive triangles with no super vertices, mapped back to
	// original indices, deduplicated.
	var edges []Edge
	seen := make(map[Edge]bool)
	for ti := range m.tris {
		t := &m.tris[ti]
		if !t.alive {
			continue
		}
		for k := 0; k < 3; k++ {
			a, b := t.v[k], t.v[(k+1)%3]
			if a >= m.nReal || b >= m.nReal {
				continue
			}
			u, v := uniq[a], uniq[b]
			if u > v {
				u, v = v, u
			}
			e := Edge{u, v}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	return edges
}

// orient returns twice the signed area of (a, b, c): > 0 if CCW.
func (m *mesh) orient(a, b, c int32) float64 {
	return (m.px[b]-m.px[a])*(m.py[c]-m.py[a]) - (m.py[b]-m.py[a])*(m.px[c]-m.px[a])
}

// inCircumcircle reports whether vertex p lies strictly inside the
// circumcircle of the CCW triangle t.
func (m *mesh) inCircumcircle(t *triangle, p int32) bool {
	ax, ay := m.px[t.v[0]]-m.px[p], m.py[t.v[0]]-m.py[p]
	bx, by := m.px[t.v[1]]-m.px[p], m.py[t.v[1]]-m.py[p]
	cx, cy := m.px[t.v[2]]-m.px[p], m.py[t.v[2]]-m.py[p]
	a2 := ax*ax + ay*ay
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	det := ax*(by*c2-b2*cy) - ay*(bx*c2-b2*cx) + a2*(bx*cy-by*cx)
	return det > 0
}

// insideScore returns the minimum edge orientation of p against triangle ti;
// >= 0 means p is inside or on the boundary.
func (m *mesh) insideScore(ti, p int32) float64 {
	t := &m.tris[ti]
	s := m.orient(t.v[0], t.v[1], p)
	if v := m.orient(t.v[1], t.v[2], p); v < s {
		s = v
	}
	if v := m.orient(t.v[2], t.v[0], p); v < s {
		s = v
	}
	return s
}

// locate walks the history DAG to a leaf triangle containing p.
func (m *mesh) locate(p int32) int32 {
	cur := m.root
	for len(m.tris[cur].children) > 0 {
		best := int32(-1)
		bestScore := 0.0
		for _, ch := range m.tris[cur].children {
			s := m.insideScore(ch, p)
			if best == -1 || s > bestScore {
				best, bestScore = ch, s
			}
			if s >= 0 {
				best, bestScore = ch, s
				break
			}
		}
		cur = best
	}
	return cur
}

// insert adds vertex p to the triangulation (Bowyer–Watson cavity step).
func (m *mesh) insert(p int32) {
	start := m.locate(p)
	// Cavity: BFS over adjacent triangles whose circumcircle contains p.
	inCavity := map[int32]bool{start: true}
	stack := []int32{start}
	var cavity []int32
	for len(stack) > 0 {
		ti := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cavity = append(cavity, ti)
		for k := 0; k < 3; k++ {
			nb := m.tris[ti].adj[k]
			if nb < 0 || inCavity[nb] {
				continue
			}
			if m.inCircumcircle(&m.tris[nb], p) {
				inCavity[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	// Boundary edges: for each cavity triangle, the edges whose neighbor is
	// outside the cavity.
	type boundaryEdge struct {
		a, b  int32 // directed so that (a, b, p) is CCW
		outer int32 // triangle across (a, b), or -1
	}
	var boundary []boundaryEdge
	for _, ti := range cavity {
		t := &m.tris[ti]
		for k := 0; k < 3; k++ {
			nb := t.adj[k]
			if nb >= 0 && inCavity[nb] {
				continue
			}
			a, b := t.v[(k+1)%3], t.v[(k+2)%3]
			boundary = append(boundary, boundaryEdge{a: a, b: b, outer: nb})
		}
	}
	// Retriangulate the cavity as a fan around p.
	newTris := make([]int32, len(boundary))
	fromA := make(map[int32]int32, len(boundary)) // boundary-edge start vertex -> new triangle
	fromB := make(map[int32]int32, len(boundary))
	for i, be := range boundary {
		ti := int32(len(m.tris))
		m.tris = append(m.tris, triangle{
			v:     [3]int32{be.a, be.b, p},
			adj:   [3]int32{-1, -1, be.outer},
			alive: true,
		})
		newTris[i] = ti
		fromA[be.a] = ti
		fromB[be.b] = ti
		// Fix the outer triangle's adjacency to point at the new triangle.
		if be.outer >= 0 {
			o := &m.tris[be.outer]
			for k := 0; k < 3; k++ {
				oa, ob := o.v[(k+1)%3], o.v[(k+2)%3]
				if oa == be.b && ob == be.a {
					o.adj[k] = ti
					break
				}
			}
		}
	}
	// Adjacency between consecutive fan triangles: triangle with edge (p, a)
	// meets the triangle whose boundary edge ends at a (b' == a), and vice
	// versa.
	for i, be := range boundary {
		ti := newTris[i]
		t := &m.tris[ti]
		// adj[1] is across edge (p, a) == opposite vertex b.
		t.adj[1] = fromB[be.a]
		// adj[0] is across edge (b, p) == opposite vertex a.
		t.adj[0] = fromA[be.b]
	}
	// Kill cavity triangles and register history children.
	for _, ti := range cavity {
		t := &m.tris[ti]
		t.alive = false
		t.children = append(t.children, newTris...)
	}
}

// FilterCellEdges keeps the triangulation edges that cross between two
// different cells and have length at most eps — the parallel filter that
// turns the DT into cell-graph edges (Section 4.4).
func FilterCellEdges(ex *parallel.Pool, edges []Edge, pts geom.Points, cellOf []int32, eps float64) []Edge {
	eps2 := eps * eps
	kept := prim.Filter(ex, edges, func(e Edge) bool {
		if cellOf[e.U] == cellOf[e.V] {
			return false
		}
		return geom.DistSq(pts.At(int(e.U)), pts.At(int(e.V))) <= eps2
	})
	// Map to cell ids in parallel.
	out := make([]Edge, len(kept))
	ex.For(len(kept), func(i int) {
		out[i] = Edge{U: cellOf[kept[i].U], V: cellOf[kept[i].V]}
	})
	return out
}
