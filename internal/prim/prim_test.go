package prim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPrefixSumMatchesSerial(t *testing.T) {
	f := func(xs []int32) bool {
		a := make([]int64, len(xs))
		for i, x := range xs {
			a[i] = int64(x)
		}
		out := make([]int64, len(a))
		total := PrefixSum(nil, a, out)
		var run int64
		for i := range a {
			if out[i] != run {
				return false
			}
			run += a[i]
		}
		return total == run
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumLargeInPlace(t *testing.T) {
	n := 1 << 20
	a := make([]int, n)
	for i := range a {
		a[i] = 1
	}
	total := PrefixSumInPlace(nil, a)
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	for i := 0; i < n; i += 131071 {
		if a[i] != i {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], i)
		}
	}
}

func TestPrefixSumEmpty(t *testing.T) {
	if got := PrefixSum[int](nil, nil, nil); got != 0 {
		t.Fatalf("empty prefix sum = %v", got)
	}
}

func TestFilterPreservesOrder(t *testing.T) {
	f := func(xs []int16) bool {
		pred := func(x int16) bool { return x%3 == 0 }
		got := Filter(nil, xs, pred)
		var want []int16
		for _, x := range xs {
			if pred(x) {
				want = append(want, x)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterIndexLarge(t *testing.T) {
	n := 1 << 19
	idx := FilterIndex(nil, n, func(i int) bool { return i%7 == 0 })
	want := (n + 6) / 7
	if len(idx) != want {
		t.Fatalf("len = %d, want %d", len(idx), want)
	}
	for k, i := range idx {
		if int(i) != k*7 {
			t.Fatalf("idx[%d] = %d, want %d", k, i, k*7)
		}
	}
}

func TestPack(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	flags := []bool{true, false, false, true}
	got := Pack(nil, a, flags)
	if len(got) != 2 || got[0] != "a" || got[1] != "d" {
		t.Fatalf("Pack = %v", got)
	}
}

func TestCountIf(t *testing.T) {
	if got := CountIf(nil, 1000, func(i int) bool { return i < 10 }); got != 10 {
		t.Fatalf("CountIf = %d, want 10", got)
	}
}

func TestMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		na, nb := rng.Intn(20000), rng.Intn(20000)
		a := make([]int, na)
		b := make([]int, nb)
		for i := range a {
			a[i] = rng.Intn(5000)
		}
		for i := range b {
			b[i] = rng.Intn(5000)
		}
		sort.Ints(a)
		sort.Ints(b)
		out := make([]int, na+nb)
		Merge(nil, a, b, out, func(x, y int) bool { return x < y })
		want := append(append([]int{}, a...), b...)
		sort.Ints(want)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("trial %d: out[%d] = %d, want %d", trial, i, out[i], want[i])
			}
		}
	}
}

func TestMergeEmptySides(t *testing.T) {
	less := func(x, y int) bool { return x < y }
	out := make([]int, 3)
	Merge(nil, nil, []int{1, 2, 3}, out, less)
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("merge with empty a: %v", out)
	}
	Merge(nil, []int{4, 5, 6}, nil, out, less)
	if out[0] != 4 || out[2] != 6 {
		t.Fatalf("merge with empty b: %v", out)
	}
	Merge(nil, nil, nil, nil, less) // must not panic
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 100, 8192, 8193, 200000} {
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(1000)
		}
		want := append([]int{}, a...)
		sort.Ints(want)
		Sort(nil, a, func(x, y int) bool { return x < y })
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("n=%d: a[%d] = %d, want %d", n, i, a[i], want[i])
			}
		}
	}
}

func TestSortStability(t *testing.T) {
	type kv struct{ k, seq int }
	n := 100000
	a := make([]kv, n)
	rng := rand.New(rand.NewSource(3))
	for i := range a {
		a[i] = kv{k: rng.Intn(50), seq: i}
	}
	Sort(nil, a, func(x, y kv) bool { return x.k < y.k })
	for i := 1; i < n; i++ {
		if a[i].k == a[i-1].k && a[i].seq < a[i-1].seq {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

func TestRadixSortPairsMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 3, 1000, 100000} {
		keys := make([]uint64, n)
		vals := make([]int32, n)
		for i := range keys {
			keys[i] = uint64(rng.Uint32())
			vals[i] = int32(i)
		}
		type pair struct {
			k uint64
			v int32
		}
		want := make([]pair, n)
		for i := range want {
			want[i] = pair{keys[i], vals[i]}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].k < want[j].k })
		RadixSortPairs(nil, keys, vals, 32)
		for i := 0; i < n; i++ {
			if keys[i] != want[i].k || vals[i] != want[i].v {
				t.Fatalf("n=%d idx=%d: got (%d,%d) want (%d,%d)",
					n, i, keys[i], vals[i], want[i].k, want[i].v)
			}
		}
	}
}

func TestRadixSortPartialBits(t *testing.T) {
	keys := []uint64{5, 3, 5, 1, 0, 7, 2}
	vals := []int32{0, 1, 2, 3, 4, 5, 6}
	RadixSortPairs(nil, keys, vals, 3)
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("not sorted at %d: %v", i, keys)
		}
	}
}

func TestIntegerSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 50000
	keyRange := 1 << 7 // like quadtree children for d=7
	keys := make([]int32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = int32(rng.Intn(keyRange))
		vals[i] = int32(i)
	}
	IntegerSort(nil, keys, vals, keyRange)
	for i := 1; i < n; i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Stability: vals with equal keys must remain in increasing order.
	for i := 1; i < n; i++ {
		if keys[i] == keys[i-1] && vals[i] < vals[i-1] {
			t.Fatalf("instability at %d", i)
		}
	}
}

func TestSemisortGroupsContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 10, 1000, 200000} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(97)) // few distinct keys -> big groups
		}
		res := Semisort(nil, keys)
		if len(res.Order) != n {
			t.Fatalf("order length %d, want %d", len(res.Order), n)
		}
		// Every index appears exactly once.
		seen := make([]bool, n)
		for _, idx := range res.Order {
			if seen[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			seen[idx] = true
		}
		// Groups partition [0,n) and are key-homogeneous; no key appears in
		// two groups.
		groupOf := map[uint64]int{}
		for g := 0; g+1 < len(res.GroupStart); g++ {
			lo, hi := res.GroupStart[g], res.GroupStart[g+1]
			if lo >= hi {
				t.Fatalf("empty group %d", g)
			}
			k := keys[res.Order[lo]]
			for i := lo; i < hi; i++ {
				if keys[res.Order[i]] != k {
					t.Fatalf("group %d mixes keys", g)
				}
			}
			if prev, ok := groupOf[k]; ok {
				t.Fatalf("key %d split across groups %d and %d", k, prev, g)
			}
			groupOf[k] = g
		}
		// Distinct-key count must match.
		distinct := map[uint64]bool{}
		for _, k := range keys {
			distinct[k] = true
		}
		if res.NumGroups() != len(distinct) {
			t.Fatalf("groups = %d, want %d", res.NumGroups(), len(distinct))
		}
	}
}

func TestSemisortAllEqualKeys(t *testing.T) {
	keys := make([]uint64, 100000)
	res := Semisort(nil, keys)
	if res.NumGroups() != 1 {
		t.Fatalf("groups = %d, want 1", res.NumGroups())
	}
}

func TestSemisortAllDistinctKeys(t *testing.T) {
	n := 50000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 2654435761
	}
	res := Semisort(nil, keys)
	if res.NumGroups() != n {
		t.Fatalf("groups = %d, want %d", res.NumGroups(), n)
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}
