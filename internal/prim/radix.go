package prim

import (
	"pdbscan/internal/parallel"
)

// radixBits is the digit width of one counting-sort pass. 8 bits keeps the
// per-block histogram (256 entries) in L1 while still finishing a 32-bit key
// in four passes.
const radixBits = 8
const radixBuckets = 1 << radixBits
const radixMask = radixBuckets - 1

// RadixSortPairs stably sorts the parallel arrays (keys, vals) by the low
// `bits` bits of each key, ascending, using parallel LSD counting-sort passes
// (the paper's "integer sort": O(n) work per pass, O(log n) depth).
// keys and vals are overwritten with the sorted order; len(vals) must equal
// len(keys). Passing bits < 64 skips passes for high zero digits, which is how
// the quadtree sorts child indices in a single pass.
func RadixSortPairs[V any](ex *parallel.Pool, keys []uint64, vals []V, bits int) {
	n := len(keys)
	if n < 2 {
		return
	}
	if bits <= 0 {
		return
	}
	if bits > 64 {
		bits = 64
	}
	keyBuf := make([]uint64, n)
	valBuf := make([]V, n)
	src, dst := keys, keyBuf
	vsrc, vdst := vals, valBuf
	for shift := 0; shift < bits; shift += radixBits {
		countingPass(ex, src, vsrc, dst, vdst, uint(shift))
		src, dst = dst, src
		vsrc, vdst = vdst, vsrc
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
		copy(vals, vsrc)
	}
}

// countingPass performs one stable counting-sort pass on digit
// (key >> shift) & radixMask.
func countingPass[V any](ex *parallel.Pool, keys []uint64, vals []V, outKeys []uint64, outVals []V, shift uint) {
	n := len(keys)
	nb := ex.NumBlocks(n, 0)
	// counts[b*radixBuckets + d] = number of items with digit d in block b.
	counts := make([]int32, nb*radixBuckets)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		c := counts[b*radixBuckets : (b+1)*radixBuckets]
		for i := lo; i < hi; i++ {
			c[(keys[i]>>shift)&radixMask]++
		}
	})
	// Exclusive prefix sum in digit-major, block-minor order gives each
	// (digit, block) its unique output offset, preserving stability.
	var run int32
	for d := 0; d < radixBuckets; d++ {
		for b := 0; b < nb; b++ {
			idx := b*radixBuckets + d
			c := counts[idx]
			counts[idx] = run
			run += c
		}
	}
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		// Local copy of this block's start offsets (counts is shared).
		offs := make([]int32, radixBuckets)
		for d := 0; d < radixBuckets; d++ {
			offs[d] = counts[b*radixBuckets+d]
		}
		for i := lo; i < hi; i++ {
			d := (keys[i] >> shift) & radixMask
			w := offs[d]
			offs[d] = w + 1
			outKeys[w] = keys[i]
			outVals[w] = vals[i]
		}
	})
}

// IntegerSort sorts int32 keys from [0, keyRange) ascending in O(n) work,
// carrying vals along. It is the primitive the parallel quadtree construction
// uses (keys are child indices in [0, 2^d)).
func IntegerSort[V any](ex *parallel.Pool, keys []int32, vals []V, keyRange int) {
	bits := 0
	for (1 << bits) < keyRange {
		bits++
	}
	if bits == 0 {
		return
	}
	k64 := make([]uint64, len(keys))
	ex.For(len(keys), func(i int) { k64[i] = uint64(uint32(keys[i])) })
	RadixSortPairs(ex, k64, vals, bits)
	ex.For(len(keys), func(i int) { keys[i] = int32(k64[i]) })
}
