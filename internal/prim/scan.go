// Package prim reimplements the parallel primitives the paper takes from the
// Problem Based Benchmark Suite (PBBS): prefix sum, filter, merge, comparison
// sort, integer sort, and semisort (Table 1 of the paper). Each primitive
// matches the work bound of its PBBS counterpart; depth is polylogarithmic in
// the blocked-scheduler model of internal/parallel.
//
// Every primitive takes an explicit *parallel.Pool as its first argument and
// sizes its block partition by that pool's budget; a nil pool means the
// default (GOMAXPROCS) budget. Primitives keep no state between calls, so
// concurrent invocations with different pools never interfere.
package prim

import (
	"pdbscan/internal/parallel"
)

// Number is the constraint for scan/reduce element types.
type Number interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64 | ~float64
}

// PrefixSum computes the exclusive prefix sum of a into out (out[i] = sum of
// a[:i]) and returns the total sum of a. out must have len(a) elements; it may
// alias a. This is the classic two-pass blocked scan: per-block sums, a serial
// scan over the (few) block sums, then a per-block local scan. O(n) work.
func PrefixSum[T Number](ex *parallel.Pool, a, out []T) T {
	n := len(a)
	if n == 0 {
		return 0
	}
	nb := ex.NumBlocks(n, 0)
	if nb == 1 {
		var run T
		for i := 0; i < n; i++ {
			v := a[i]
			out[i] = run
			run += v
		}
		return run
	}
	sums := make([]T, nb)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		var s T
		for i := lo; i < hi; i++ {
			s += a[i]
		}
		sums[b] = s
	})
	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		run := sums[b]
		for i := lo; i < hi; i++ {
			v := a[i]
			out[i] = run
			run += v
		}
	})
	return total
}

// PrefixSumInPlace overwrites a with its exclusive prefix sum and returns the
// total.
func PrefixSumInPlace[T Number](ex *parallel.Pool, a []T) T {
	return PrefixSum(ex, a, a)
}

// Filter returns the elements of a for which pred is true, preserving order.
// O(n) work: per-block count, prefix sum of counts, per-block compaction into
// unique output ranges.
func Filter[T any](ex *parallel.Pool, a []T, pred func(T) bool) []T {
	n := len(a)
	if n == 0 {
		return nil
	}
	nb := ex.NumBlocks(n, 0)
	counts := make([]int, nb)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(a[i]) {
				c++
			}
		}
		counts[b] = c
	})
	total := PrefixSumInPlace(ex, counts)
	out := make([]T, total)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		w := counts[b]
		for i := lo; i < hi; i++ {
			if pred(a[i]) {
				out[w] = a[i]
				w++
			}
		}
	})
	return out
}

// FilterIndex returns the indices i in [0, n) for which pred(i) is true, in
// increasing order. This is the form most algorithms in the library use
// (e.g. "collect the core cells").
func FilterIndex(ex *parallel.Pool, n int, pred func(int) bool) []int32 {
	if n == 0 {
		return nil
	}
	nb := ex.NumBlocks(n, 0)
	counts := make([]int, nb)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := PrefixSumInPlace(ex, counts)
	out := make([]int32, total)
	ex.BlockedForIdx(n, 0, func(b, lo, hi int) {
		w := counts[b]
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[w] = int32(i)
				w++
			}
		}
	})
	return out
}

// Pack copies a[i] for the true positions of flags into a fresh slice,
// preserving order. len(flags) must equal len(a).
func Pack[T any](ex *parallel.Pool, a []T, flags []bool) []T {
	idx := FilterIndex(ex, len(a), func(i int) bool { return flags[i] })
	out := make([]T, len(idx))
	ex.For(len(idx), func(i int) {
		out[i] = a[idx[i]]
	})
	return out
}

// CountIf counts the i in [0, n) for which pred(i) holds, in parallel.
func CountIf(ex *parallel.Pool, n int, pred func(int) bool) int {
	return ex.ReduceInt(n, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}
