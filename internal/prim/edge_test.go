package prim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortAllEqual(t *testing.T) {
	a := make([]int, 100000)
	for i := range a {
		a[i] = 7
	}
	Sort(nil, a, func(x, y int) bool { return x < y })
	for _, v := range a {
		if v != 7 {
			t.Fatal("sort corrupted all-equal input")
		}
	}
}

func TestSortReverseSorted(t *testing.T) {
	n := 100000
	a := make([]int, n)
	for i := range a {
		a[i] = n - i
	}
	Sort(nil, a, func(x, y int) bool { return x < y })
	for i := range a {
		if a[i] != i+1 {
			t.Fatalf("a[%d] = %d", i, a[i])
		}
	}
}

func TestMergeHeavyDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := make([]int, 30000)
	b := make([]int, 20000)
	for i := range a {
		a[i] = rng.Intn(5)
	}
	for i := range b {
		b[i] = rng.Intn(5)
	}
	sort.Ints(a)
	sort.Ints(b)
	out := make([]int, len(a)+len(b))
	Merge(nil, a, b, out, func(x, y int) bool { return x < y })
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestRadixSort64Bits(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 50000
	keys := make([]uint64, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		vals[i] = int32(i)
	}
	want := append([]uint64{}, keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	RadixSortPairs(nil, keys, vals, 64)
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("64-bit radix: keys[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
}

func TestRadixSortZeroAndOversizeBits(t *testing.T) {
	keys := []uint64{3, 1, 2}
	vals := []int32{0, 1, 2}
	RadixSortPairs(nil, keys, vals, 0) // no-op
	if keys[0] != 3 {
		t.Fatal("bits=0 should not sort")
	}
	RadixSortPairs(nil, keys, vals, 1000) // clamped to 64
	if keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("oversize bits: %v", keys)
	}
}

func TestFilterAllAndNone(t *testing.T) {
	a := []int{1, 2, 3}
	if got := Filter(nil, a, func(int) bool { return true }); len(got) != 3 {
		t.Fatalf("all: %v", got)
	}
	if got := Filter(nil, a, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("none: %v", got)
	}
	if got := Filter(nil, []int(nil), func(int) bool { return true }); got != nil {
		t.Fatalf("nil input: %v", got)
	}
}

func TestSemisortSingleElement(t *testing.T) {
	res := Semisort(nil, []uint64{42})
	if res.NumGroups() != 1 || res.Order[0] != 0 {
		t.Fatalf("single element: %+v", res)
	}
}

func TestPrefixSumFloat(t *testing.T) {
	a := []float64{0.5, 1.5, 2.0}
	out := make([]float64, 3)
	total := PrefixSum(nil, a, out)
	if total != 4.0 || out[0] != 0 || out[1] != 0.5 || out[2] != 2.0 {
		t.Fatalf("float scan: total=%v out=%v", total, out)
	}
}
