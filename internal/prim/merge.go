package prim

import (
	"sort"

	"pdbscan/internal/parallel"
)

// Merge merges two sorted slices a and b into out using less as the strict
// weak ordering. len(out) must be len(a)+len(b). The algorithm follows the
// paper's description (Section 2): equally spaced pivots from the larger side
// are binary-searched in the other side, creating independent sub-merges that
// run in parallel and are each solved serially. O(n) work, O(log n) depth.
func Merge[T any](ex *parallel.Pool, a, b, out []T, less func(x, y T) bool) {
	n := len(a) + len(b)
	if n == 0 {
		return
	}
	if len(out) != n {
		panic("prim.Merge: out has wrong length")
	}
	// Small inputs: serial merge.
	const serialCutoff = 4096
	if n <= serialCutoff {
		serialMerge(a, b, out, less)
		return
	}
	// Choose the number of sub-merges proportional to available workers.
	pieces := ex.Workers() * 4
	if pieces > n/serialCutoff+1 {
		pieces = n/serialCutoff + 1
	}
	if pieces < 2 {
		serialMerge(a, b, out, less)
		return
	}
	// Pivot positions in a; binary search each pivot in b. Sub-merge k handles
	// a[aCut[k]:aCut[k+1]] with b[bCut[k]:bCut[k+1]].
	aCut := make([]int, pieces+1)
	bCut := make([]int, pieces+1)
	aCut[pieces] = len(a)
	bCut[pieces] = len(b)
	for k := 1; k < pieces; k++ {
		aCut[k] = len(a) * k / pieces
	}
	ex.For(pieces-1, func(i int) {
		k := i + 1
		pivot := a[aCut[k]-1] // last element of piece k-1's a-range
		// All b elements strictly less than pivot go to earlier pieces;
		// elements equal to pivot stay after it to keep stability (a first).
		bCut[k] = sort.Search(len(b), func(j int) bool { return !less(b[j], pivot) })
	})
	// bCut must be non-decreasing; binary searches on a sorted b guarantee it
	// when pivots are non-decreasing, which they are since a is sorted.
	ex.ForGrain(pieces, 1, func(k int) {
		alo, ahi := aCut[k], aCut[k+1]
		blo, bhi := bCut[k], bCut[k+1]
		serialMerge(a[alo:ahi], b[blo:bhi], out[alo+blo:ahi+bhi], less)
	})
}

func serialMerge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// Sort sorts a in place using a parallel merge sort built on Merge: the two
// halves are sorted in parallel (fork-join) and combined with the parallel
// merge. O(n log n) work, polylogarithmic depth. The sort is stable.
func Sort[T any](ex *parallel.Pool, a []T, less func(x, y T) bool) {
	if len(a) < 2 {
		return
	}
	buf := make([]T, len(a))
	mergeSort(ex, a, buf, less, ex.Workers())
}

// mergeSort sorts a using buf as scratch. budget limits fork depth so that at
// most ~2*budget goroutines are live.
func mergeSort[T any](ex *parallel.Pool, a, buf []T, less func(x, y T) bool, budget int) {
	const serialCutoff = 8192
	if len(a) <= serialCutoff || budget <= 1 {
		sort.SliceStable(a, func(i, j int) bool { return less(a[i], a[j]) })
		return
	}
	mid := len(a) / 2
	parallel.Do(
		func() { mergeSort(ex, a[:mid], buf[:mid], less, budget/2) },
		func() { mergeSort(ex, a[mid:], buf[mid:], less, budget-budget/2) },
	)
	Merge(ex, a[:mid], a[mid:], buf, less)
	copy(a, buf)
}

// SortInts sorts a slice of int32 keys ascending, in parallel.
func SortInts(ex *parallel.Pool, a []int32) {
	Sort(ex, a, func(x, y int32) bool { return x < y })
}
