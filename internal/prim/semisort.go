package prim

import (
	"pdbscan/internal/parallel"
)

// Mix64 is a strong 64-bit mixing function (splitmix64 finalizer). It is the
// hash used by the semisort and the concurrent hash table, so equal keys
// always collide and unequal keys collide with probability ~2^-64.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SemisortResult is the output of Semisort: Order is a permutation of
// [0, n) such that equal keys are contiguous, and GroupStart[g] is the offset
// in Order where group g begins (GroupStart has one extra sentinel entry = n,
// so group g spans Order[GroupStart[g]:GroupStart[g+1]]).
type SemisortResult struct {
	Order      []int32
	GroupStart []int32
}

// NumGroups reports the number of distinct keys found.
func (r *SemisortResult) NumGroups() int { return len(r.GroupStart) - 1 }

// Semisort groups indices by key: after the call, indices with equal keys[i]
// are contiguous in Order, with no guarantee on inter-group order — exactly
// the semisort semantics the paper uses for grid construction (Section 4.1).
//
// Implementation: hash every key with Mix64, radix sort index pairs by the low
// 32 bits of the hash (O(n) work, constant passes), then split equal-hash runs
// by the true key (runs are O(1) expected length) and emit group boundaries
// with a parallel filter. Expected O(n) work, matching the bound in Table 1.
func Semisort(ex *parallel.Pool, keys []uint64) *SemisortResult {
	n := len(keys)
	if n == 0 {
		return &SemisortResult{Order: nil, GroupStart: []int32{0}}
	}
	hashes := make([]uint64, n)
	order := make([]int32, n)
	ex.For(n, func(i int) {
		hashes[i] = Mix64(keys[i]) & 0xffffffff
		order[i] = int32(i)
	})
	RadixSortPairs(ex, hashes, order, 32)

	// A position i starts a group iff its hash differs from the previous
	// position's hash, or (rare 32-bit collision) hashes match but keys
	// differ. Equal keys always have equal hashes, so they can only be
	// interleaved with colliding different keys; fix those runs serially —
	// they have O(1) expected length.
	fixCollisionRuns(ex, hashes, order, keys)

	isStart := func(i int) bool {
		if i == 0 {
			return true
		}
		return keys[order[i]] != keys[order[i-1]]
	}
	starts := FilterIndex(ex, n, isStart)
	groupStart := make([]int32, len(starts)+1)
	copy(groupStart, starts)
	groupStart[len(starts)] = int32(n)
	return &SemisortResult{Order: order, GroupStart: groupStart}
}

// fixCollisionRuns sorts, within each maximal run of equal hashes, the order
// entries by true key so equal keys become contiguous.
func fixCollisionRuns(ex *parallel.Pool, hashes []uint64, order []int32, keys []uint64) {
	n := len(hashes)
	// Runs of length 1 (the common case) need no work. Detect run heads in
	// parallel and process each run serially.
	heads := FilterIndex(ex, n, func(i int) bool {
		return (i == 0 || hashes[i] != hashes[i-1]) &&
			i+1 < n && hashes[i+1] == hashes[i]
	})
	ex.ForGrain(len(heads), 1, func(h int) {
		lo := int(heads[h])
		hi := lo + 1
		for hi < n && hashes[hi] == hashes[lo] {
			hi++
		}
		run := order[lo:hi]
		// Insertion sort by key: runs are tiny w.h.p.
		for i := 1; i < len(run); i++ {
			j := i
			for j > 0 && keys[run[j]] < keys[run[j-1]] {
				run[j], run[j-1] = run[j-1], run[j]
				j--
			}
		}
	})
}
