package pdbscan

import (
	"fmt"
	"testing"

	"pdbscan/internal/dataset"
)

// BenchmarkSharded compares the monolithic clustering phase (Shards = 1)
// against the sharded partition/merge path at 1M points on a prepared
// Clusterer, so the numbers isolate the execution architecture from the
// (shared) grid build. Shard-level parallelism with serial per-shard phases
// replaces the barrier-separated parallel loops of the monolithic pipeline;
// the gap widens with core count (on a single-core runner the two are at
// parity, the partition/merge overhead being within noise).
//
// cmd/dbscanbench -exp shard runs the same comparison standalone and records
// it in BENCH_shard.json.
func BenchmarkSharded(b *testing.B) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: n, D: 2, Seed: 1})
	const eps, minPts = 1000.0, 100
	c, err := NewClustererFlat(pts.Data, pts.D, eps)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Prepare(Config{}); err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 0, 4, 16} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "shards=auto"
		} else if shards == 1 {
			name = "monolithic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(Config{MinPts: minPts, Shards: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedOneShot measures the full Cluster call (grid build +
// clustering) with and without sharding, the end-to-end number a one-shot
// caller sees.
func BenchmarkShardedOneShot(b *testing.B) {
	n := 300_000
	if testing.Short() {
		n = 50_000
	}
	pts := dataset.SeedSpreader(dataset.SeedSpreaderConfig{N: n, D: 3, Seed: 2})
	const eps, minPts = 2000.0, 100
	for _, shards := range []int{1, 0} {
		name := "monolithic"
		if shards == 0 {
			name = "shards=auto"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ClusterFlat(pts.Data, pts.D, Config{
					Eps: eps, MinPts: minPts, Shards: shards,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
