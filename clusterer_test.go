package pdbscan

import (
	"fmt"
	"sync"
	"testing"
)

// labelsEqual reports whether two results are identical clusterings
// (including border multi-memberships).
func labelsEqual(a, b *Result) error {
	if a.NumClusters != b.NumClusters {
		return fmt.Errorf("NumClusters %d vs %d", a.NumClusters, b.NumClusters)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return fmt.Errorf("label of point %d: %d vs %d", i, a.Labels[i], b.Labels[i])
		}
		if a.Core[i] != b.Core[i] {
			return fmt.Errorf("core flag of point %d: %v vs %v", i, a.Core[i], b.Core[i])
		}
	}
	if len(a.Border) != len(b.Border) {
		return fmt.Errorf("border map size %d vs %d", len(a.Border), len(b.Border))
	}
	for p, m := range a.Border {
		bm := b.Border[p]
		if len(m) != len(bm) {
			return fmt.Errorf("border memberships of %d: %v vs %v", p, m, bm)
		}
		for k := range m {
			if m[k] != bm[k] {
				return fmt.Errorf("border memberships of %d: %v vs %v", p, m, bm)
			}
		}
	}
	return nil
}

// TestClustererSweepMatchesCluster checks the tentpole reuse property: a
// MinPts/method sweep through one Clusterer must produce exactly the labels
// of fresh one-shot Cluster calls.
func TestClustererSweepMatchesCluster(t *testing.T) {
	for _, d := range []int{2, 3} {
		rows := blobs(500, d, 7)
		eps := 3.0
		c, err := NewClusterer(rows, eps)
		if err != nil {
			t.Fatal(err)
		}
		methods := []Method{MethodExact, MethodExactQt}
		if d == 2 {
			methods = append(methods, Method2DGridUSEC, Method2DBoxBCP, Method2DBoxDelaunay)
		}
		for _, m := range methods {
			for _, minPts := range []int{3, 8, 25} {
				cfg := Config{Eps: eps, MinPts: minPts, Method: m}
				got, err := c.Run(cfg)
				if err != nil {
					t.Fatalf("d=%d %s minPts=%d: Run: %v", d, m, minPts, err)
				}
				want, err := Cluster(rows, cfg)
				if err != nil {
					t.Fatalf("d=%d %s minPts=%d: Cluster: %v", d, m, minPts, err)
				}
				if err := labelsEqual(got, want); err != nil {
					t.Fatalf("d=%d %s minPts=%d: sweep result differs: %v", d, m, minPts, err)
				}
			}
		}
	}
}

// TestClustererReusesCellStructure checks that repeated Run calls do not
// rebuild the grid: one build per layout, no matter how many runs.
func TestClustererReusesCellStructure(t *testing.T) {
	rows := blobs(400, 2, 11)
	c, err := NewClusterer(rows, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, minPts := range []int{2, 5, 10, 20, 40} {
		if _, err := c.Run(Config{MinPts: minPts}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.builds.Load(); got != 1 {
		t.Fatalf("grid layout built %d times across 5 runs, want 1", got)
	}
	// A box-layout method triggers exactly one more build.
	for _, minPts := range []int{5, 10} {
		if _, err := c.Run(Config{MinPts: minPts, Method: Method2DBoxBCP}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.builds.Load(); got != 2 {
		t.Fatalf("builds = %d after box-method runs, want 2 (one per layout)", got)
	}
}

// TestClustererPrepare checks that Prepare builds the layout eagerly (with
// its own budget) and that subsequent Runs reuse it.
func TestClustererPrepare(t *testing.T) {
	rows := blobs(300, 2, 13)
	c, err := NewClusterer(rows, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare(Config{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if got := c.builds.Load(); got != 1 {
		t.Fatalf("builds = %d after Prepare, want 1", got)
	}
	if _, err := c.Run(Config{MinPts: 5, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare(Config{}); err != nil { // repeat: no-op
		t.Fatal(err)
	}
	if got := c.builds.Load(); got != 1 {
		t.Fatalf("builds = %d after Run+Prepare, want 1 (reused)", got)
	}
	if err := c.Prepare(Config{Eps: 99}); err == nil {
		t.Fatal("Prepare with conflicting Eps accepted")
	}
	if err := c.Prepare(Config{Method: "nope"}); err == nil {
		t.Fatal("Prepare with unknown method accepted")
	}
}

// TestClustererEpsPinned checks that a Clusterer refuses a conflicting Eps
// but accepts zero ("use mine") and its own value.
func TestClustererEpsPinned(t *testing.T) {
	rows := blobs(100, 2, 3)
	c, err := NewClusterer(rows, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Eps() != 2.5 || c.NumPoints() != 100 || c.Dims() != 2 {
		t.Fatalf("accessors: eps=%v n=%d d=%d", c.Eps(), c.NumPoints(), c.Dims())
	}
	if _, err := c.Run(Config{MinPts: 5}); err != nil {
		t.Fatalf("Eps=0 should use the clusterer's eps: %v", err)
	}
	if _, err := c.Run(Config{Eps: 2.5, MinPts: 5}); err != nil {
		t.Fatalf("matching Eps rejected: %v", err)
	}
	if _, err := c.Run(Config{Eps: 3.0, MinPts: 5}); err == nil {
		t.Fatal("conflicting Eps accepted")
	}
	if _, err := c.Run(Config{MinPts: 0}); err == nil {
		t.Fatal("MinPts=0 accepted")
	}
	if _, err := c.Run(Config{MinPts: 5, Method: "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestManyCellsOneCluster is the regression test for the coreLabels data
// race: a single cluster spanning far more than 512 cells makes the
// root-marking loop actually run in parallel with every iteration writing
// the same root slot (caught by -race before the stores were atomic).
func TestManyCellsOneCluster(t *testing.T) {
	var rows [][]float64
	for x := 0; x < 12; x++ {
		for y := 0; y < 12; y++ {
			for z := 0; z < 12; z++ {
				rows = append(rows, []float64{float64(x), float64(y), float64(z)})
			}
		}
	}
	// eps 1.1 > lattice spacing 1: one connected cluster; cell side
	// 1.1/sqrt(3) < 1 puts every point in its own cell (1728 cells > 512).
	res, err := Cluster(rows, Config{Eps: 1.1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 || res.NumNoise() != 0 {
		t.Fatalf("clusters=%d noise=%d, want 1 cluster / 0 noise", res.NumClusters, res.NumNoise())
	}
}

// TestConcurrentClusterDifferentWorkers runs overlapping one-shot Cluster
// calls with different Workers budgets and checks every call still produces
// the reference clustering. Under -race this is the regression test for the
// old process-wide SetWorkers state (two concurrent calls used to fight over
// one global cap).
func TestConcurrentClusterDifferentWorkers(t *testing.T) {
	rows := blobs(600, 3, 5)
	cfg := Config{Eps: 3.0, MinPts: 8}
	want, err := Cluster(rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for rep := 0; rep < 4; rep++ {
		for _, workers := range []int{1, 2, 3, 7} {
			wg.Add(1)
			go func(workers int) {
				defer wg.Done()
				c := cfg
				c.Workers = workers
				got, err := Cluster(rows, c)
				if err != nil {
					errs <- fmt.Errorf("workers=%d: %v", workers, err)
					return
				}
				if err := labelsEqual(got, want); err != nil {
					errs <- fmt.Errorf("workers=%d: %v", workers, err)
				}
			}(workers)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestClustererConcurrentRuns exercises concurrent Run calls on one shared
// Clusterer — including the racy first calls that trigger the lazy cell
// build — with different Workers, MinPts, and methods per call.
func TestClustererConcurrentRuns(t *testing.T) {
	rows := blobs(600, 2, 9)
	eps := 3.0
	c, err := NewClusterer(rows, eps)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		minPts  int
		method  Method
		workers int
	}
	jobs := []job{
		{5, MethodExact, 1},
		{5, Method2DGridBCP, 3},
		{12, Method2DGridUSEC, 2},
		{12, Method2DBoxBCP, 4},
		{25, Method2DBoxUSEC, 1},
		{25, MethodExactQt, 0},
	}
	want := make([]*Result, len(jobs))
	for i, j := range jobs {
		w, err := Cluster(rows, Config{Eps: eps, MinPts: j.minPts, Method: j.method})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(jobs))
	for rep := 0; rep < 2; rep++ {
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				got, err := c.Run(Config{MinPts: j.minPts, Method: j.method, Workers: j.workers})
				if err != nil {
					errs <- fmt.Errorf("job %d: %v", i, err)
					return
				}
				if err := labelsEqual(got, want[i]); err != nil {
					errs <- fmt.Errorf("job %d (%s minPts=%d): %v", i, j.method, j.minPts, err)
				}
			}(i, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := c.builds.Load(); got != 2 {
		t.Errorf("builds = %d across 12 concurrent runs, want 2 (one per layout)", got)
	}
}
