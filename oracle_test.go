// oracle_test.go is the repo's ground-truth harness: every method is
// cross-checked against the O(n²) brute-force reference DBSCAN
// (internal/metrics.BruteDBSCAN — exact core/border/noise semantics,
// including multi-membership border points) over a matrix of adversarial
// layouts and dimensionalities, up to cluster label permutation. The exact
// methods must reproduce the oracle exactly; the approximate methods must
// satisfy the Gan–Tao validity conditions against the same oracle
// definitions. The streaming clusterer is held to the same standard on
// mutated point sets.
package pdbscan

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"pdbscan/internal/geom"
	"pdbscan/internal/metrics"
)

// oracleLayout generates an adversarial point set for dimension d. eps and
// the MinPts values to try ride along, chosen so the layout exercises the
// regime it is named after.
type oracleLayout struct {
	name   string
	eps    float64
	minPts []int
	gen    func(d int) [][]float64
}

func repeatRow(v float64, d int) []float64 {
	row := make([]float64, d)
	for j := range row {
		row[j] = v
	}
	return row
}

var oracleLayouts = []oracleLayout{
	{
		// Duplicate points: several stacks of identical coordinates. Core
		// counts must count multiplicity; a stack of minPts duplicates is
		// core on its own.
		name: "duplicates", eps: 1.0, minPts: []int{2, 4, 7},
		gen: func(d int) [][]float64 {
			var rows [][]float64
			for s := 0; s < 5; s++ {
				site := repeatRow(float64(s)*3, d)
				for k := 0; k < 3+s; k++ {
					rows = append(rows, site)
				}
			}
			return rows
		},
	},
	{
		// Collinear points along the first axis at spacing eps/2: a chain
		// where connectivity hops exactly along cell boundaries.
		name: "collinear", eps: 1.0, minPts: []int{2, 3, 5},
		gen: func(d int) [][]float64 {
			var rows [][]float64
			for i := 0; i < 30; i++ {
				row := repeatRow(0, d)
				row[0] = float64(i) * 0.5
				rows = append(rows, row)
			}
			return rows
		},
	},
	{
		// One cell: everything inside a single grid cell (diameter << eps),
		// hitting the |cell| >= minPts all-core shortcut and its complement.
		name: "one-cell", eps: 10.0, minPts: []int{3, 10, 40},
		gen: func(d int) [][]float64 {
			rng := rand.New(rand.NewSource(5))
			rows := make([][]float64, 30)
			for i := range rows {
				row := make([]float64, d)
				for j := range row {
					row[j] = 100 + rng.Float64()*0.5
				}
				rows[i] = row
			}
			return rows
		},
	},
	{
		// All noise: points spread so far apart nothing is core (for
		// minPts > 1); with minPts = 1 every point is its own cluster.
		name: "all-noise", eps: 1.0, minPts: []int{1, 2, 5},
		gen: func(d int) [][]float64 {
			rows := make([][]float64, 25)
			for i := range rows {
				row := repeatRow(float64(i*i)*7, d)
				row[d-1] = float64(i) * 50
				rows[i] = row
			}
			return rows
		},
	},
	{
		// Eps-boundary pairs: points at axis-aligned distance exactly eps
		// (d <= eps is inclusive — the pair must count), plus pairs just
		// beyond (must not count). Integer coordinates keep the distances
		// exact in float64.
		name: "eps-boundary", eps: 4.0, minPts: []int{2, 3},
		gen: func(d int) [][]float64 {
			var rows [][]float64
			for p := 0; p < 6; p++ {
				a := repeatRow(0, d)
				a[0] = float64(p) * 100
				b := append([]float64(nil), a...)
				b[1] = 4 // exactly eps away
				c := append([]float64(nil), a...)
				c[1] = -5 // just beyond eps
				rows = append(rows, a, b, c)
			}
			return rows
		},
	},
	{
		// Lattice at exact eps spacing along each axis: every neighbor pair
		// is a boundary case and borders abound.
		name: "eps-lattice", eps: 2.0, minPts: []int{3, 5},
		gen: func(d int) [][]float64 {
			var rows [][]float64
			per := 4
			if d >= 5 {
				per = 2
			}
			var rec func(row []float64, j int)
			rec = func(row []float64, j int) {
				if j == d {
					rows = append(rows, append([]float64(nil), row...))
					return
				}
				for k := 0; k < per; k++ {
					row[j] = float64(k) * 2
					rec(row, j+1)
				}
			}
			rec(make([]float64, d), 0)
			return rows
		},
	},
	{
		// Random blobs with noise: the general regime.
		name: "blobs", eps: 1.5, minPts: []int{4, 8},
		gen: func(d int) [][]float64 {
			rng := rand.New(rand.NewSource(11))
			rows := make([][]float64, 120)
			for i := range rows {
				row := make([]float64, d)
				center := float64(rng.Intn(3)) * 6
				for j := range row {
					row[j] = center + rng.NormFloat64()
				}
				rows[i] = row
			}
			return rows
		},
	},
	{
		// Negative and lattice-straddling coordinates: exercises the
		// absolute-grid anchoring around 0.
		name: "straddle-origin", eps: 1.0, minPts: []int{2, 4},
		gen: func(d int) [][]float64 {
			rng := rand.New(rand.NewSource(17))
			rows := make([][]float64, 80)
			for i := range rows {
				row := make([]float64, d)
				for j := range row {
					row[j] = (rng.Float64() - 0.5) * 4
				}
				rows[i] = row
			}
			return rows
		},
	},
	{
		// Exact-eps chain along the first axis: consecutive points at
		// distance exactly eps form one long cluster. The sharded path cuts
		// the lattice along this axis (it has the most occupied slabs), so every
		// shard cut splits an exact-eps pair — the boundary-merge pass must
		// treat d == eps as connected or the chain shatters at the cuts.
		// Integer coordinates keep the distances exact in float64.
		name: "shard-chain", eps: 2.0, minPts: []int{2, 3},
		gen: func(d int) [][]float64 {
			var rows [][]float64
			for i := 0; i < 40; i++ {
				row := repeatRow(0, d)
				row[0] = float64(i) * 2 // exactly eps apart
				rows = append(rows, row)
			}
			return rows
		},
	},
	{
		// Dense blobs strung along the split axis with single-point bridges
		// between them: clusters wide enough to straddle any shard halo, so
		// intra-shard clustering alone cannot close them — connectivity must
		// flow through cross-boundary edges between blob fringes and bridge
		// points, and border points near the cuts must resolve against core
		// cells owned by other shards.
		name: "halo-blobs", eps: 1.5, minPts: []int{4, 6},
		gen: func(d int) [][]float64 {
			rng := rand.New(rand.NewSource(23))
			var rows [][]float64
			for b := 0; b < 5; b++ {
				cx := float64(b) * 6
				for i := 0; i < 25; i++ {
					row := make([]float64, d)
					row[0] = cx + rng.NormFloat64()*0.8
					for j := 1; j < d; j++ {
						row[j] = rng.NormFloat64() * 0.8
					}
					rows = append(rows, row)
				}
				if b < 4 {
					// Bridge midway to the next blob: within eps of both
					// fringes for small d, a border/noise frontier for
					// larger d.
					bridge := repeatRow(0, d)
					bridge[0] = cx + 3
					rows = append(rows, bridge)
				}
			}
			return rows
		},
	},
}

// oracleCheck runs one method over one layout, compares against the
// brute-force reference, and returns the result for cross-path comparisons.
func oracleCheck(t *testing.T, rows [][]float64, cfg Config, ctx string) *Result {
	t.Helper()
	res, err := Cluster(rows, cfg)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if cfg.Method == MethodApprox || cfg.Method == MethodApproxQt {
		rho := cfg.Rho
		if rho == 0 {
			rho = 0.01
		}
		if err := metrics.ValidApproxResult(pts, cfg.Eps, rho, cfg.MinPts,
			res.Core, res.Labels, res.Border); err != nil {
			t.Fatalf("%s: approx validity: %v", ctx, err)
		}
		return res
	}
	ref := metrics.BruteDBSCAN(pts, cfg.Eps, cfg.MinPts)
	if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	return res
}

// oracleShards is the shard-count axis of the conformance matrix: the
// monolithic path, a single cut, and a count that fragments the small
// layouts down to slab granularity.
var oracleShards = [3]int{1, 2, 7}

// TestOracleConformance is the full matrix: every method × {2, 3, 5}
// dimensions × every adversarial layout × the layout's MinPts values ×
// Shards ∈ {1, 2, 7}. Each sharded run is held to the oracle directly and
// to label-permutation equality against the monolithic run of the same
// configuration (the check that pins the approximate methods, where the
// oracle alone admits a band of valid answers).
func TestOracleConformance(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		d := d
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			t.Parallel()
			for _, layout := range oracleLayouts {
				rows := layout.gen(d)
				for _, m := range streamMethodsFor(d) {
					for _, minPts := range layout.minPts {
						cfg := Config{Eps: layout.eps, MinPts: minPts, Method: m, Shards: 1}
						ctx := fmt.Sprintf("%s d=%d %s minPts=%d", layout.name, d, m, minPts)
						mono := oracleCheck(t, rows, cfg, ctx)
						for _, shards := range oracleShards[1:] {
							cfgS := cfg
							cfgS.Shards = shards
							res := oracleCheck(t, rows, cfgS, fmt.Sprintf("%s shards=%d", ctx, shards))
							if err := equivalentResults(res, mono); err != nil {
								t.Fatalf("%s shards=%d vs monolithic: %v", ctx, shards, err)
							}
						}
					}
				}
			}
		})
	}
}

// hierarchyQueryGrid derives the CutEps query radii for a layout: fixed
// fractions of the build eps plus a sample of the exact pairwise distances
// at most eps (computed O(n²); the layouts are small). Exact-distance
// queries are the adversarial cases — d <= eps is inclusive, so a query at
// precisely an edge's length must connect that edge on both paths.
func hierarchyQueryGrid(rows [][]float64, eps float64) []float64 {
	seen := map[float64]bool{}
	var qs []float64
	add := func(q float64) {
		if q > 0 && q <= eps && !seen[q] {
			seen[q] = true
			qs = append(qs, q)
		}
	}
	for _, f := range []float64{1, 0.75, 0.5, 0.25, 0.1} {
		add(eps * f)
	}
	dists := map[float64]bool{}
	for i := range rows {
		for j := i + 1; j < len(rows); j++ {
			d2 := 0.0
			for k := range rows[i] {
				dk := rows[i][k] - rows[j][k]
				d2 += dk * dk
			}
			if d := math.Sqrt(d2); d > 0 && d <= eps {
				dists[d] = true
			}
		}
	}
	ds := make([]float64, 0, len(dists))
	for d := range dists {
		ds = append(ds, d)
	}
	sort.Float64s(ds)
	if len(ds) <= 8 {
		for _, d := range ds {
			add(d)
		}
	} else {
		for k := 0; k < 8; k++ {
			add(ds[k*(len(ds)-1)/7])
		}
	}
	return qs
}

// TestOracleHierarchyConformance pins the tentpole equivalence: for every
// layout × {2, 3, 5} dimensions × the layout's MinPts values, one
// BuildHierarchy at the layout's eps must answer every query radius —
// including exact edge distances — label-permutation-equal to a from-scratch
// batch Cluster at that radius. The batch side is itself held to the
// brute-force oracle by TestOracleConformance, so transitively CutEps is
// oracle-exact too.
func TestOracleHierarchyConformance(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		d := d
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			t.Parallel()
			for _, layout := range oracleLayouts {
				rows := layout.gen(d)
				queries := hierarchyQueryGrid(rows, layout.eps)
				c, err := NewClusterer(rows, layout.eps)
				if err != nil {
					t.Fatalf("%s d=%d: %v", layout.name, d, err)
				}
				for _, minPts := range layout.minPts {
					ctx := fmt.Sprintf("%s d=%d minPts=%d", layout.name, d, minPts)
					h, err := c.BuildHierarchy(minPts)
					if err != nil {
						t.Fatalf("%s: BuildHierarchy: %v", ctx, err)
					}
					for _, q := range queries {
						cut, err := h.CutEps(q)
						if err != nil {
							t.Fatalf("%s: CutEps(%v): %v", ctx, q, err)
						}
						batch, err := Cluster(rows, Config{Eps: q, MinPts: minPts})
						if err != nil {
							t.Fatalf("%s: batch at eps=%v: %v", ctx, q, err)
						}
						if err := equivalentResults(cut, batch); err != nil {
							t.Fatalf("%s: CutEps(%v) vs batch: %v", ctx, q, err)
						}
					}
				}
			}
		})
	}
}

// TestOracleConformanceStreaming holds StreamingClusterer to the oracle
// standard across mutations: build each layout incrementally, then remove a
// third of it, checking against the brute-force reference at each stage.
func TestOracleConformanceStreaming(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		d := d
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			t.Parallel()
			for _, layout := range oracleLayouts {
				rows := layout.gen(d)
				for _, m := range streamMethodsFor(d) {
					minPts := layout.minPts[len(layout.minPts)-1]
					ctx := fmt.Sprintf("streaming %s d=%d %s minPts=%d", layout.name, d, m, minPts)
					s, err := NewStreamingClusterer(d, layout.eps)
					if err != nil {
						t.Fatal(err)
					}
					half := len(rows) / 2
					ids, err := s.Insert(rows[:half])
					if err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					cfg := Config{MinPts: minPts, Method: m}
					streamOracleCheck(t, s, cfg, ctx+" (half)")
					if _, err := s.Insert(rows[half:]); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					streamOracleCheck(t, s, cfg, ctx+" (full)")
					if err := s.Remove(ids[:len(ids)/2]...); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					streamOracleCheck(t, s, cfg, ctx+" (after removal)")
				}
			}
		})
	}
}

// streamOracleCheck compares a streaming run against the brute-force oracle
// on the stream's current points (exact methods), or checks Gan–Tao validity
// (approx methods).
func streamOracleCheck(t *testing.T, s *StreamingClusterer, cfg Config, ctx string) {
	t.Helper()
	res, err := s.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	rows := make([][]float64, 0, s.Len())
	for _, id := range s.IDs() {
		row, _ := s.Point(id)
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if cfg.Method == MethodApprox || cfg.Method == MethodApproxQt {
		rho := cfg.Rho
		if rho == 0 {
			rho = 0.01
		}
		if err := metrics.ValidApproxResult(pts, s.Eps(), rho, cfg.MinPts,
			res.Core, res.Labels, res.Border); err != nil {
			t.Fatalf("%s: approx validity: %v", ctx, err)
		}
		return
	}
	ref := metrics.BruteDBSCAN(pts, s.Eps(), cfg.MinPts)
	if err := metrics.SameDBSCANResult(ref, res.Core, res.Labels, res.Border, res.NumClusters); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}
