package pdbscan

import (
	"bytes"
	"math/rand"
	"testing"
)

// snapBlob fills a streaming clusterer with clustered points and returns the
// inserted ids.
func snapFill(t *testing.T, s *StreamingClusterer, n int, seed int64) []int64 {
	t.Helper()
	ids, err := s.Insert(blobs(n, s.Dims(), seed))
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func snapEqualTicks(t *testing.T, name string, a, b *StreamResult) {
	t.Helper()
	if len(a.IDs) != len(b.IDs) {
		t.Fatalf("%s: %d vs %d ids", name, len(a.IDs), len(b.IDs))
	}
	for k := range a.IDs {
		if a.IDs[k] != b.IDs[k] {
			t.Fatalf("%s: id %d vs %d at row %d", name, a.IDs[k], b.IDs[k], k)
		}
		if a.Core[k] != b.Core[k] {
			t.Fatalf("%s: core flag of id %d: %v vs %v", name, a.IDs[k], a.Core[k], b.Core[k])
		}
	}
	if !permEqualLabels(a.Labels, b.Labels) {
		t.Fatalf("%s: labels not permutation-equal", name)
	}
	if a.NumClusters != b.NumClusters {
		t.Fatalf("%s: %d vs %d clusters", name, a.NumClusters, b.NumClusters)
	}
}

// TestSnapshotRoundTrip: snapshot a warm streaming clusterer with pending
// mutations, restore it, and drive the original and the restored clone
// through identical subsequent ticks — results must agree tick for tick, and
// the restored clusterer must stay incremental (not Full) with the same
// dirty-cell accounting as the original.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"exact", Config{MinPts: 6}},
		{"exact-qt", Config{MinPts: 6, Method: MethodExactQt}},
		{"approx", Config{MinPts: 6, Method: MethodApprox, Rho: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewStreamingClusterer(2, 3.0)
			if err != nil {
				t.Fatal(err)
			}
			ids := snapFill(t, s, 800, 21)
			if _, err := s.Run(tc.cfg); err != nil {
				t.Fatal(err) // warm the caches
			}
			// Pending mutations the snapshot must carry as still-pending.
			if err := s.Remove(ids[10], ids[11], ids[12]); err != nil {
				t.Fatal(err)
			}
			snapFill(t, s, 50, 22)

			var buf bytes.Buffer
			if err := s.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := RestoreStreaming(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if r.Len() != s.Len() || r.Dims() != 2 || r.Eps() != 3.0 {
				t.Fatalf("restored shape: %d pts (want %d)", r.Len(), s.Len())
			}

			// Tick both; the snapshot must not have consumed the dirty set of
			// either side.
			want, err := s.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			snapEqualTicks(t, "post-restore tick", want, got)
			ss, rs := s.LastRunStats(), r.LastRunStats()
			if rs.Full {
				t.Fatal("restored tick ran Full: the incremental caches were lost")
			}
			if rs.DirtyCells != ss.DirtyCells || rs.NumCells != ss.NumCells {
				t.Fatalf("restored tick stats %+v, original %+v", rs, ss)
			}

			// Further identical mutations + ticks stay in lockstep, and ids
			// keep ascending from the same counter.
			rng := rand.New(rand.NewSource(33))
			for tick := 0; tick < 3; tick++ {
				rows := blobs(40, 2, int64(100+tick))
				i1, err := s.Insert(rows)
				if err != nil {
					t.Fatal(err)
				}
				i2, err := r.Insert(rows)
				if err != nil {
					t.Fatal(err)
				}
				if i1[0] != i2[0] || i1[len(i1)-1] != i2[len(i2)-1] {
					t.Fatalf("id sequences diverged: %d vs %d", i1[0], i2[0])
				}
				victim := want.IDs[rng.Intn(len(want.IDs))]
				if err := s.Remove(victim); err != nil {
					t.Fatal(err)
				}
				if err := r.Remove(victim); err != nil {
					t.Fatal(err)
				}
				want, err = s.Run(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err = r.Run(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				snapEqualTicks(t, "lockstep tick", want, got)
			}
		})
	}
}

// TestSnapshotEmptyAndFresh: a snapshot of an empty or never-run clusterer
// restores and runs.
func TestSnapshotEmptyAndFresh(t *testing.T) {
	s, err := NewStreamingClusterer(3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreStreaming(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("restored empty clusterer has %d points", r.Len())
	}
	res, err := r.Run(Config{MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 0 {
		t.Fatal("empty run returned rows")
	}
	// Never-run (cold caches) but with points pending.
	s2, _ := NewStreamingClusterer(2, 3.0)
	snapFill(t, s2, 200, 5)
	buf.Reset()
	if err := s2.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := RestoreStreaming(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s2.Run(Config{MinPts: 6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r2.Run(Config{MinPts: 6})
	if err != nil {
		t.Fatal(err)
	}
	snapEqualTicks(t, "cold-cache tick", want, got)
}

// TestSnapshotCorruption: damaged streams must error out, never panic or
// restore silently wrong state.
func TestSnapshotCorruption(t *testing.T) {
	s, err := NewStreamingClusterer(2, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	snapFill(t, s, 300, 9)
	if _, err := s.Run(Config{MinPts: 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := RestoreStreaming(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	for _, cut := range []int{0, 4, 8, 16, len(valid) / 2, len(valid) - 1} {
		if _, err := RestoreStreaming(bytes.NewReader(valid[:cut])); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		bad := append([]byte(nil), valid...)
		pos := rng.Intn(len(bad))
		bad[pos] ^= 1 << uint(rng.Intn(8))
		if bad[pos] == valid[pos] {
			continue
		}
		if _, err := RestoreStreaming(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at byte %d accepted", pos)
		}
	}
}
