package pdbscan

import (
	"path/filepath"
	"strings"
	"testing"
)

// storeMethodsFor lists every clustering method applicable at dimension d,
// paired with the equivalence each one guarantees for store-backed runs:
// grid-layout methods are bit-identical to the writing Clusterer's results,
// 2d-box-* methods (different monolithic cell layout) are equivalent up to a
// label bijection.
func storeMethodsFor(d int) []struct {
	m     Method
	rho   float64
	exact bool
} {
	out := []struct {
		m     Method
		rho   float64
		exact bool
	}{
		{MethodExact, 0, true},
		{MethodExactQt, 0, true},
		{MethodApprox, 0.05, true},
		{MethodApproxQt, 0.05, true},
	}
	if d == 2 {
		out = append(out, []struct {
			m     Method
			rho   float64
			exact bool
		}{
			{Method2DGridBCP, 0, true},
			{Method2DGridUSEC, 0, true},
			{Method2DGridDelaunay, 0, true},
			{Method2DBoxBCP, 0, false},
			{Method2DBoxUSEC, 0, false},
			{Method2DBoxDelaunay, 0, false},
		}...)
	}
	return out
}

// TestStoreRoundTripConformance is the tentpole exactness check: write a cell
// store, reopen it, and every run on the reopened store — both the in-RAM
// path and the out-of-core Spill path, across every method and several shard
// layouts — must reproduce the writing Clusterer's results.
func TestStoreRoundTripConformance(t *testing.T) {
	for _, d := range []int{2, 3} {
		rows := blobs(1200, d, 11)
		eps := 3.0
		ref, err := NewClusterer(rows, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 7} {
			path := filepath.Join(t.TempDir(), "pts.cells")
			if err := ref.WriteStore(path, shards); err != nil {
				t.Fatalf("d=%d shards=%d: WriteStore: %v", d, shards, err)
			}
			sc, err := OpenStoreClusterer(path)
			if err != nil {
				t.Fatalf("d=%d shards=%d: OpenStoreClusterer: %v", d, shards, err)
			}
			if sc.NumPoints() != ref.NumPoints() || sc.Dims() != d {
				t.Fatalf("d=%d shards=%d: store has %d points/%d dims", d, shards, sc.NumPoints(), sc.Dims())
			}
			for _, mc := range storeMethodsFor(d) {
				cfg := Config{Eps: eps, MinPts: 8, Method: mc.m, Rho: mc.rho}
				want, err := ref.Run(cfg)
				if err != nil {
					t.Fatalf("d=%d %s: reference Run: %v", d, mc.m, err)
				}
				got, err := sc.Run(cfg)
				if err != nil {
					t.Fatalf("d=%d shards=%d %s: store Run: %v", d, shards, mc.m, err)
				}
				if mc.exact {
					if err := labelsEqual(want, got); err != nil {
						t.Fatalf("d=%d shards=%d %s: in-RAM store run differs: %v", d, shards, mc.m, err)
					}
				} else if err := equivalentResults(want, got); err != nil {
					t.Fatalf("d=%d shards=%d %s: in-RAM store run not equivalent: %v", d, shards, mc.m, err)
				}
				spill := cfg
				spill.Spill = true
				got2, err := sc.Run(spill)
				if err != nil {
					t.Fatalf("d=%d shards=%d %s: Spill Run: %v", d, shards, mc.m, err)
				}
				if mc.exact {
					if err := labelsEqual(want, got2); err != nil {
						t.Fatalf("d=%d shards=%d %s: Spill run differs: %v", d, shards, mc.m, err)
					}
				} else if err := equivalentResults(want, got2); err != nil {
					t.Fatalf("d=%d shards=%d %s: Spill run not equivalent: %v", d, shards, mc.m, err)
				}
				st := sc.LastRunStats()
				if st.BytesMapped <= 0 || st.PeakResidentBytes <= 0 || st.ShardsResidentPeak < 1 {
					t.Fatalf("d=%d shards=%d %s: Spill stats not recorded: %+v", d, shards, mc.m, st)
				}
				if st.PeakResidentBytes > st.BytesMapped {
					t.Fatalf("d=%d shards=%d %s: peak %d exceeds total mapped %d", d, shards, mc.m, st.PeakResidentBytes, st.BytesMapped)
				}
			}
			if err := sc.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		}
	}
}

// TestStoreSpillBudget checks the hard residency budget: a window larger than
// MaxResidentBytes must fail with a actionable error, and a budget that
// admits every window must succeed and stay under it.
func TestStoreSpillBudget(t *testing.T) {
	rows := blobs(2000, 2, 3)
	ref, err := NewClusterer(rows, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pts.cells")
	if err := ref.WriteStore(path, 8); err != nil {
		t.Fatal(err)
	}
	sc, err := OpenStoreClusterer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	_, err = sc.Run(Config{Eps: 3.0, MinPts: 8, Spill: true, MaxResidentBytes: 4096})
	if err == nil || !strings.Contains(err.Error(), "MaxResidentBytes") {
		t.Fatalf("tiny budget: want budget error, got %v", err)
	}

	budget := int64(sc.NumPoints()) * 2 * 8 // whole dataset fits
	if _, err := sc.Run(Config{Eps: 3.0, MinPts: 8, Spill: true, MaxResidentBytes: budget}); err != nil {
		t.Fatalf("ample budget: %v", err)
	}
	if st := sc.LastRunStats(); st.PeakResidentBytes > budget {
		t.Fatalf("peak resident %d exceeds budget %d", st.PeakResidentBytes, budget)
	}
}

// TestStoreMisuse covers the rejected store API combinations.
func TestStoreMisuse(t *testing.T) {
	rows := blobs(300, 2, 5)
	ref, err := NewClusterer(rows, 3.0)
	if err != nil {
		t.Fatal(err)
	}

	// Spill without a store-backed Clusterer.
	if _, err := ref.Run(Config{Eps: 3.0, MinPts: 5, Spill: true}); err == nil ||
		!strings.Contains(err.Error(), "store-backed") {
		t.Fatalf("Spill on in-memory Clusterer: want store-backed error, got %v", err)
	}

	path := filepath.Join(t.TempDir(), "pts.cells")
	if err := ref.WriteStore(path, 3); err != nil {
		t.Fatal(err)
	}
	sc, err := OpenStoreClusterer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	// Re-exporting a store-backed Clusterer would compound permutations.
	if err := sc.WriteStore(filepath.Join(t.TempDir(), "again.cells"), 2); err == nil {
		t.Fatal("WriteStore on store-backed Clusterer: want error, got nil")
	}

	// Close is idempotent for in-memory Clusterers.
	if err := ref.Close(); err != nil {
		t.Fatalf("Close on in-memory Clusterer: %v", err)
	}
}
