package engine

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"pdbscan"
)

// genPoints returns n deterministic pseudo-random 2D points in a k-cluster
// layout (k Gaussian blobs plus background noise).
func genPoints(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	centers := [][2]float64{{0, 0}, {40, 5}, {10, 50}, {60, 60}}
	for i := range pts {
		if i%10 == 9 { // background noise
			pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
			continue
		}
		c := centers[i%len(centers)]
		pts[i] = []float64{c[0] + rng.NormFloat64()*2, c[1] + rng.NormFloat64()*2}
	}
	return pts
}

func mustClusterer(t *testing.T, pts [][]float64, eps float64) *pdbscan.Clusterer {
	t.Helper()
	c, err := pdbscan.NewClusterer(pts, eps)
	if err != nil {
		t.Fatalf("NewClusterer: %v", err)
	}
	return c
}

func sameResult(t *testing.T, got, want *pdbscan.Result, label string) {
	t.Helper()
	if got.NumClusters != want.NumClusters {
		t.Fatalf("%s: NumClusters = %d, want %d", label, got.NumClusters, want.NumClusters)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", label, i, got.Labels[i], want.Labels[i])
		}
	}
}

// TestEngineMixedConcurrent is the acceptance scenario: >= 8 concurrent
// mixed jobs (batch + streaming, distinct Workers caps) through one Engine
// under -race, with the running worker total never exceeding the shared
// budget, and every batch result identical to a direct run.
func TestEngineMixedConcurrent(t *testing.T) {
	const budget = 8
	e := New(Options{Budget: budget, MaxQueue: 64})
	defer e.Close()

	pts := genPoints(4000, 1)
	cfgBase := pdbscan.Config{Eps: 3, MinPts: 8}
	batch := []*pdbscan.Clusterer{
		mustClusterer(t, pts, 3),
		mustClusterer(t, genPoints(3000, 2), 3),
		mustClusterer(t, genPoints(2000, 3), 3),
	}
	want := make([]*pdbscan.Result, len(batch))
	for i, c := range batch {
		r, err := c.Run(cfgBase)
		if err != nil {
			t.Fatalf("direct run %d: %v", i, err)
		}
		want[i] = r
	}

	streams := make([]*pdbscan.StreamingClusterer, 2)
	for i := range streams {
		s, err := pdbscan.NewStreamingClusterer(2, 3)
		if err != nil {
			t.Fatalf("NewStreamingClusterer: %v", err)
		}
		if _, err := s.Insert(genPoints(1500, int64(10+i))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		streams[i] = s
	}

	// Budget-conformance sampler: the live WorkersInUse must never exceed
	// the budget (and never go negative) at any observable instant.
	stop := make(chan struct{})
	var violations atomic.Int64
	var sampled atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats()
			sampled.Add(1)
			if st.WorkersInUse > st.Budget || st.WorkersInUse < 0 {
				violations.Add(1)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// 12 mixed jobs with distinct caps; several rounds so jobs overlap,
	// queue, and recycle budget.
	var jobs []*Job
	for round := 0; round < 3; round++ {
		for i, c := range batch {
			cfg := cfgBase
			cfg.Workers = 1 + (i+round)%4 // distinct caps 1..4
			j, err := e.Submit(context.Background(), Request{Clusterer: c, Config: cfg})
			if err != nil {
				t.Fatalf("Submit batch: %v", err)
			}
			jobs = append(jobs, j)
		}
		for i, s := range streams {
			cfg := cfgBase
			cfg.Workers = 2 + i
			j, err := e.Submit(context.Background(), Request{Streaming: s, Config: cfg})
			if err != nil {
				t.Fatalf("Submit streaming: %v", err)
			}
			jobs = append(jobs, j)
		}
	}
	if len(jobs) < 8 {
		t.Fatalf("only %d jobs submitted", len(jobs))
	}
	for k, j := range jobs {
		if err := j.Err(); err != nil {
			t.Fatalf("job %d: %v", k, err)
		}
	}
	close(stop)
	if v := violations.Load(); v > 0 {
		t.Fatalf("budget exceeded in %d of %d samples", v, sampled.Load())
	}

	// Batch jobs must return exactly what a direct run returns.
	for k, j := range jobs {
		res, err := j.Result()
		if err != nil {
			t.Fatalf("job %d: %v", k, err)
		}
		if res == nil {
			if sr, _ := j.StreamResult(); sr == nil {
				t.Fatalf("job %d: no result of either kind", k)
			}
			continue
		}
		sameResult(t, res, want[k%5], "engine batch job")
	}

	st := e.Stats()
	if st.Completed != uint64(len(jobs)) {
		t.Fatalf("Completed = %d, want %d", st.Completed, len(jobs))
	}
	if st.Running != 0 || st.Queued != 0 || st.WorkersInUse != 0 {
		t.Fatalf("engine not drained: %+v", st)
	}
}

// saturate submits a whole-budget job on a large clusterer and returns its
// cancel func and job; until cancelled (or naturally finished, which the
// dataset size makes far slower than the test) it pins the entire budget.
func saturate(t *testing.T, e *Engine) (*Job, context.CancelFunc) {
	t.Helper()
	// MinPts far above any neighborhood size keeps core counting from
	// early-exiting, so the run blocks for tens of seconds unless cancelled
	// (and cancellation lands within milliseconds).
	c := mustClusterer(t, genPoints(300000, 99), 2)
	ctx, cancel := context.WithCancel(context.Background())
	j, err := e.Submit(ctx, Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 200000}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	return j, cancel
}

func TestEnginePriorityOrder(t *testing.T) {
	e := New(Options{Budget: 2})
	defer e.Close()
	blocker, release := saturate(t, e)

	pts := genPoints(20000, 7)
	mk := func(prio int) *Job {
		c := mustClusterer(t, pts, 2)
		j, err := e.Submit(context.Background(), Request{
			Clusterer: c,
			Config:    pdbscan.Config{Eps: 2, MinPts: 10, Workers: 2},
			Priority:  prio,
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		return j
	}
	low1 := mk(0)
	low2 := mk(0)
	high := mk(5)
	if q := e.Stats().Queued; q != 3 {
		t.Fatalf("Queued = %d, want 3 (blocker still running)", q)
	}
	release()
	if err := blocker.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocker err = %v, want context.Canceled", err)
	}
	for _, j := range []*Job{low1, low2, high} {
		if err := j.Err(); err != nil {
			t.Fatalf("job err: %v", err)
		}
	}
	// All three were submitted back-to-back while saturated, so queue-wait
	// ordering is dispatch ordering: the high-priority job first, then the
	// equal-priority pair in FIFO order.
	hq, l1q, l2q := high.Stats().Queued, low1.Stats().Queued, low2.Stats().Queued
	if hq >= l1q || hq >= l2q {
		t.Fatalf("high-priority job waited %v, low jobs %v / %v — priority not honored", hq, l1q, l2q)
	}
	if l1q >= l2q {
		t.Fatalf("equal-priority jobs dispatched out of FIFO order: first waited %v, second %v", l1q, l2q)
	}
}

// TestEngineDequeueDispatchesNewHead pins that removing a queued job (here
// by context cancellation) re-runs dispatch: a large head job blocking the
// queue is cancelled and the smaller job behind it must start against the
// free budget immediately, not wait for the running job to finish.
func TestEngineDequeueDispatchesNewHead(t *testing.T) {
	e := New(Options{Budget: 8})
	defer e.Close()
	big := mustClusterer(t, genPoints(300000, 98), 2)
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	blocker, err := e.Submit(ctxB, Request{Clusterer: big, Config: pdbscan.Config{Eps: 2, MinPts: 200000, Workers: 6}})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	// Head: wants the whole budget, cannot fit beside the blocker.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	j1, err := e.Submit(ctx1, Request{Clusterer: big, Config: pdbscan.Config{Eps: 2, MinPts: 200000, Workers: 8}})
	if err != nil {
		t.Fatalf("Submit head: %v", err)
	}
	// Behind it: fits the free budget (8 - 6 = 2) but must not overtake.
	small := mustClusterer(t, genPoints(1000, 97), 2)
	j2, err := e.Submit(context.Background(), Request{Clusterer: small, Config: pdbscan.Config{Eps: 2, MinPts: 5, Workers: 2}})
	if err != nil {
		t.Fatalf("Submit small: %v", err)
	}
	if q := e.Stats().Queued; q != 2 {
		t.Fatalf("Queued = %d, want 2", q)
	}
	cancel1()
	if err := j1.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("head err = %v, want context.Canceled", err)
	}
	// Without the dispatch-on-dequeue, j2 idles until the blocker finishes
	// (which only its cancellation triggers here) — j2 completing now, while
	// the blocker still runs, is the regression signal.
	if err := j2.Err(); err != nil {
		t.Fatalf("small job err = %v", err)
	}
	if st := e.Stats(); st.Running != 1 {
		t.Fatalf("Running = %d after small job finished, want 1 (the blocker)", st.Running)
	}
	cancelB()
	if err := blocker.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocker err = %v", err)
	}
}

func TestEngineQueueFullAndTimeout(t *testing.T) {
	e := New(Options{Budget: 1, MaxQueue: 2, QueueTimeout: 50 * time.Millisecond})
	defer e.Close()
	blocker, release := saturate(t, e)
	defer release()

	c := mustClusterer(t, genPoints(500, 5), 2)
	cfg := pdbscan.Config{Eps: 2, MinPts: 5}
	j1, err := e.Submit(context.Background(), Request{Clusterer: c, Config: cfg})
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	j2, err := e.Submit(context.Background(), Request{Clusterer: c, Config: cfg})
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	if _, err := e.Submit(context.Background(), Request{Clusterer: c, Config: cfg}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over MaxQueue: err = %v, want ErrQueueFull", err)
	}
	// The queue is bounded and the budget pinned, so both queued jobs must
	// time out.
	if err := j1.Err(); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued job 1 err = %v, want ErrQueueTimeout", err)
	}
	if err := j2.Err(); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued job 2 err = %v, want ErrQueueTimeout", err)
	}
	st := e.Stats()
	if st.Rejected != 1 || st.TimedOut != 2 {
		t.Fatalf("Rejected/TimedOut = %d/%d, want 1/2", st.Rejected, st.TimedOut)
	}
	release()
	if err := blocker.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocker err = %v", err)
	}
}

func TestEngineCancelQueuedJob(t *testing.T) {
	e := New(Options{Budget: 1})
	defer e.Close()
	blocker, release := saturate(t, e)
	defer release()

	c := mustClusterer(t, genPoints(500, 6), 2)
	ctx, cancel := context.WithCancel(context.Background())
	j, err := e.Submit(ctx, Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 5}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cancel()
	if err := j.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued job err = %v, want context.Canceled", err)
	}
	if got := e.Stats().Cancelled; got != 1 {
		t.Fatalf("Cancelled = %d, want 1", got)
	}
	release()
	blocker.Err()
}

func TestEngineSubmitValidation(t *testing.T) {
	e := New(Options{Budget: 2})
	defer e.Close()
	c := mustClusterer(t, genPoints(500, 8), 2)
	s, _ := pdbscan.NewStreamingClusterer(2, 2)
	h, err := c.BuildHierarchy(5)
	if err != nil {
		t.Fatalf("BuildHierarchy: %v", err)
	}
	cases := []struct {
		name string
		req  Request
	}{
		{"no target", Request{Config: pdbscan.Config{Eps: 2, MinPts: 5}}},
		{"both targets", Request{Clusterer: c, Streaming: s, Config: pdbscan.Config{Eps: 2, MinPts: 5}}},
		{"all three targets", Request{Clusterer: c, Streaming: s, Hierarchy: h, Config: pdbscan.Config{Eps: 2, MinPts: 5}}},
		{"hierarchy plus clusterer", Request{Clusterer: c, Hierarchy: h, Config: pdbscan.Config{Eps: 2, MinPts: 5}}},
		{"hierarchy plus streaming", Request{Streaming: s, Hierarchy: h, Config: pdbscan.Config{Eps: 2, MinPts: 5}}},
		{"bad config", Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 0}}},
		{"negative shards", Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 5, Shards: -1}}},
		{"hierarchy zero eps", Request{Hierarchy: h, Config: pdbscan.Config{Eps: 0}}},
		{"hierarchy eps beyond build", Request{Hierarchy: h, Config: pdbscan.Config{Eps: 2.5}}},
		{"hierarchy mismatched minpts", Request{Hierarchy: h, Config: pdbscan.Config{Eps: 1, MinPts: 7}}},
		{"hierarchy negative workers", Request{Hierarchy: h, Config: pdbscan.Config{Eps: 1, Workers: -1}}},
	}
	for _, tc := range cases {
		if _, err := e.Submit(context.Background(), tc.req); err == nil {
			t.Errorf("%s: Submit accepted", tc.name)
		}
	}
	if got := e.Stats().Submitted; got != 0 {
		t.Fatalf("Submitted = %d after only invalid requests, want 0", got)
	}
}

func TestEngineClose(t *testing.T) {
	e := New(Options{Budget: 1})
	blocker, release := saturate(t, e)

	c := mustClusterer(t, genPoints(500, 9), 2)
	j, err := e.Submit(context.Background(), Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 5}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Close sweeps the queue before waiting on running jobs, so j completes
	// with ErrClosed while the blocker still occupies the budget. Releasing
	// the blocker only after that sweep is observed (j.Err unblocks) keeps
	// the dispatcher from starting j in the window before Close takes the
	// lock.
	done := make(chan struct{})
	go func() {
		e.Close()
		close(done)
	}()
	if err := j.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued job err after Close = %v, want ErrClosed", err)
	}
	release() // Close waits for running jobs; unwind the blocker
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	if !errors.Is(blocker.Err(), context.Canceled) {
		t.Fatalf("blocker err = %v", blocker.Err())
	}
	if _, err := e.Submit(context.Background(), Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 5}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	// Accounting: every admitted job landed in exactly one terminal counter
	// (the blocker in Cancelled, the dropped job in Closed).
	st := e.Stats()
	if st.Closed != 1 {
		t.Fatalf("Closed = %d, want 1", st.Closed)
	}
	if total := st.Completed + st.Cancelled + st.TimedOut + st.Closed + st.Failed; total != st.Submitted {
		t.Fatalf("terminal counters sum to %d, Submitted = %d", total, st.Submitted)
	}
}

// TestEngineStreamingDeadline exercises a streaming job with a per-job
// deadline long enough to complete, and one cancelled mid-run.
func TestEngineStreamingDeadline(t *testing.T) {
	e := New(Options{Budget: 2})
	defer e.Close()
	s, err := pdbscan.NewStreamingClusterer(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(genPoints(2000, 11)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := e.Submit(ctx, Request{Streaming: s, Config: pdbscan.Config{Eps: 3, MinPts: 8}})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := j.StreamResult()
	if err != nil {
		t.Fatalf("streaming job: %v", err)
	}
	if len(sr.Labels) != 2000 {
		t.Fatalf("streaming result has %d labels, want 2000", len(sr.Labels))
	}
}

// TestEngineHierarchySweep schedules an eps sweep as independent Hierarchy
// jobs on one shared dendrogram: every cut result must be identical to a
// direct CutEps at the same radius, MinPts may be left 0 (defaulted to the
// hierarchy's own), and the jobs run concurrently under the shared budget.
func TestEngineHierarchySweep(t *testing.T) {
	e := New(Options{Budget: 4, MaxQueue: 64})
	defer e.Close()
	c := mustClusterer(t, genPoints(3000, 12), 3)
	h, err := c.BuildHierarchy(5)
	if err != nil {
		t.Fatalf("BuildHierarchy: %v", err)
	}
	const sweeps = 16
	jobs := make([]*Job, sweeps)
	radii := make([]float64, sweeps)
	for i := range jobs {
		radii[i] = 3 * float64(i+1) / sweeps
		jobs[i], err = e.Submit(context.Background(), Request{
			Hierarchy: h,
			Config:    pdbscan.Config{Eps: radii[i], Workers: 2},
		})
		if err != nil {
			t.Fatalf("Submit cut %d: %v", i, err)
		}
	}
	for i, j := range jobs {
		got, err := j.Result()
		if err != nil {
			t.Fatalf("cut %d: %v", i, err)
		}
		want, err := h.CutEps(radii[i])
		if err != nil {
			t.Fatalf("direct CutEps(%g): %v", radii[i], err)
		}
		sameResult(t, got, want, "cut "+strconv.FormatFloat(radii[i], 'g', -1, 64))
	}
	// Explicitly matching MinPts is accepted too.
	j, err := e.Submit(context.Background(), Request{
		Hierarchy: h,
		Config:    pdbscan.Config{Eps: 1, MinPts: 5},
	})
	if err != nil {
		t.Fatalf("Submit with matching MinPts: %v", err)
	}
	if _, err := j.Result(); err != nil {
		t.Fatalf("matching-MinPts job: %v", err)
	}
	if st := e.Stats(); st.Completed != sweeps+1 {
		t.Fatalf("Completed = %d, want %d", st.Completed, sweeps+1)
	}
}
