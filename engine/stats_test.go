package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pdbscan"
)

// The queue-wait regression suite: a job that waited in the queue and then
// left it WITHOUT running (queue timeout, context cancellation, Close sweep)
// must still report its true wait via Job.Stats().Queued. The seed behavior
// recorded 0 on every one of these paths — only dispatch set queuedFor.

func TestJobStatsQueuedOnQueueTimeout(t *testing.T) {
	const timeout = 30 * time.Millisecond
	e := New(Options{Budget: 1, QueueTimeout: timeout})
	defer e.Close()
	blocker, release := saturate(t, e)
	defer release()

	c := mustClusterer(t, genPoints(500, 31), 2)
	j, err := e.Submit(context.Background(), Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 5}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := j.Err(); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	// The timer fires no earlier than QueueTimeout and queuedFor is measured
	// after it fires, so the recorded wait is at least the timeout.
	if q := j.Stats().Queued; q < timeout {
		t.Fatalf("timed-out job Stats().Queued = %v, want >= %v", q, timeout)
	}
	release()
	blocker.Err()
}

func TestJobStatsQueuedOnCancel(t *testing.T) {
	e := New(Options{Budget: 1})
	defer e.Close()
	blocker, release := saturate(t, e)
	defer release()

	c := mustClusterer(t, genPoints(500, 32), 2)
	ctx, cancel := context.WithCancel(context.Background())
	j, err := e.Submit(ctx, Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 5}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	const wait = 20 * time.Millisecond
	time.Sleep(wait)
	cancel()
	if err := j.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The job sat queued for at least the sleep between Submit returning and
	// cancel().
	if q := j.Stats().Queued; q < wait {
		t.Fatalf("cancelled job Stats().Queued = %v, want >= %v", q, wait)
	}
	release()
	blocker.Err()
}

func TestJobStatsQueuedOnClose(t *testing.T) {
	e := New(Options{Budget: 1})
	blocker, release := saturate(t, e)

	c := mustClusterer(t, genPoints(500, 33), 2)
	j, err := e.Submit(context.Background(), Request{Clusterer: c, Config: pdbscan.Config{Eps: 2, MinPts: 5}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	const wait = 20 * time.Millisecond
	time.Sleep(wait)
	done := make(chan struct{})
	go func() {
		e.Close()
		close(done)
	}()
	if err := j.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if q := j.Stats().Queued; q < wait {
		t.Fatalf("swept job Stats().Queued = %v, want >= %v", q, wait)
	}
	release()
	blocker.Err()
	<-done
}

// TestEngineRejectedSubmitBurnsNoSeq pins that an ErrQueueFull rejection
// consumes no scheduler state: the FIFO sequence stays dense across admitted
// jobs no matter how many submissions bounced off the full queue.
func TestEngineRejectedSubmitBurnsNoSeq(t *testing.T) {
	e := New(Options{Budget: 1, MaxQueue: 1})
	defer e.Close()
	blocker, release := saturate(t, e) // seq 0
	defer release()

	c := mustClusterer(t, genPoints(500, 34), 2)
	cfg := pdbscan.Config{Eps: 2, MinPts: 5}
	j1, err := e.Submit(context.Background(), Request{Clusterer: c, Config: cfg}) // seq 1, fills the queue
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Submit(context.Background(), Request{Clusterer: c, Config: cfg}); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("Submit %d over MaxQueue: err = %v, want ErrQueueFull", i, err)
		}
	}
	e.mu.Lock()
	seq := e.seq
	e.mu.Unlock()
	if seq != 2 {
		t.Fatalf("seq = %d after 2 admitted + 5 rejected submissions, want 2 (rejections must not burn seq)", seq)
	}
	if st := e.Stats(); st.Submitted != 2 || st.Rejected != 5 {
		t.Fatalf("Submitted/Rejected = %d/%d, want 2/5", st.Submitted, st.Rejected)
	}
	release()
	blocker.Err()
	j1.Err()
}

// TestEngineStatsIdentityStress hammers one Engine with concurrent submits,
// cancellations, deadlines, queue timeouts, and a mid-flight Close, while a
// sampler continuously checks the documented Stats identity:
//
//	Submitted = Queued + Running + Completed + Cancelled + TimedOut + Closed + Failed
//
// Every counter mutation happens under the same lock acquisition as its state
// transition, so the identity must hold at every snapshot — run under -race.
func TestEngineStatsIdentityStress(t *testing.T) {
	c := mustClusterer(t, genPoints(400, 41), 3)
	s, err := pdbscan.NewStreamingClusterer(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(genPoints(400, 42)); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Budget: 2, MaxQueue: 4, QueueTimeout: 2 * time.Millisecond})

	checkIdentity := func(st Stats) {
		terminal := st.Completed + st.Cancelled + st.TimedOut + st.Closed + st.Failed
		if st.Submitted != uint64(st.Queued)+uint64(st.Running)+terminal {
			t.Errorf("stats identity violated: Submitted %d != Queued %d + Running %d + terminal %d (%+v)",
				st.Submitted, st.Queued, st.Running, terminal, st)
		}
	}

	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			checkIdentity(e.Stats())
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var jobs sync.Map // *Job -> struct{}
	var wg sync.WaitGroup
	const submitters = 8
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			var cancels []context.CancelFunc
			defer func() {
				for _, cancel := range cancels {
					cancel()
				}
			}()
			for i := 0; i < 40; i++ {
				req := Request{Clusterer: c, Config: pdbscan.Config{Eps: 3, MinPts: 8, Workers: 1 + g%2}, Priority: g % 3}
				if g%3 == 1 {
					req = Request{Streaming: s, Config: pdbscan.Config{Eps: 3, MinPts: 8, Workers: 1}}
				}
				ctx := context.Background()
				switch i % 4 {
				case 1:
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					cancels = append(cancels, cancel)
					time.AfterFunc(time.Duration(rng.Intn(3000))*time.Microsecond, cancel)
				case 2:
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(2000))*time.Microsecond)
					cancels = append(cancels, cancel)
				}
				j, err := e.Submit(ctx, req)
				switch {
				case err == nil:
					jobs.Store(j, struct{}{})
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed),
					errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					// Tolerated submit-time outcomes under the storm.
				default:
					t.Errorf("Submit: %v", err)
				}
			}
		}(g)
	}

	// Close the engine while submitters are still going: the sweep races
	// dispatch, ctx watchers, and queue timers, which is exactly the window
	// the identity must survive.
	time.Sleep(20 * time.Millisecond)
	e.Close()
	wg.Wait()

	jobs.Range(func(k, _ any) bool {
		k.(*Job).Err() // every admitted job must complete
		return true
	})
	close(stop)
	<-samplerDone

	st := e.Stats()
	if st.Queued != 0 || st.Running != 0 || st.WorkersInUse != 0 {
		t.Fatalf("engine not drained after Close: %+v", st)
	}
	checkIdentity(st)
	if st.Submitted == 0 {
		t.Fatal("stress produced no admitted jobs")
	}
}
