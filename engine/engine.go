// Package engine schedules concurrent clustering jobs over one shared worker
// budget. It is the serving layer the cancellable execution stack was built
// for: a multi-tenant service (many users sweeping parameters, many sensors
// ticking streaming windows) submits each run as a job with its own context,
// priority, and Workers cap, and the Engine admits, queues, and dispatches
// them so that the total parallelism in flight never exceeds the budget —
// instead of every caller spawning an uncapped run and oversubscribing the
// machine.
//
// The model is deliberately small:
//
//   - Admission is bounded. At most MaxQueue jobs wait; beyond that Submit
//     fails fast with ErrQueueFull, which is the backpressure signal a
//     service propagates (HTTP 429, drop the frame, shed the sweep point).
//
//   - Scheduling is FIFO with priorities. Queued jobs run in priority order
//     (higher first), ties in submission order, and the head of the queue is
//     never overtaken: a large job waiting for workers is not starved by
//     small jobs slipping past it (no backfill).
//
//   - Workers are a shared budget. Each job declares its cap via
//     Config.Workers (0 or anything above the budget asks for the whole
//     budget); a job starts only when its cap fits in the unused budget, and
//     runs with exactly that cap. The sum of the caps of running jobs never
//     exceeds Options.Budget.
//
//   - Every job is cancellable. The submit context travels into the run
//     (Clusterer.RunContext / StreamingClusterer.RunContext): cancelling it
//     removes the job from the queue, or unwinds it mid-run at the next
//     phase boundary. QueueTimeout bounds waiting independently of the
//     caller's context.
//
// Jobs target a *pdbscan.Clusterer, *pdbscan.StreamingClusterer, or
// *pdbscan.Hierarchy built by the caller, so the eps-keyed structures and
// arenas those types cache keep amortizing across jobs exactly as they do
// across direct Run calls. Hierarchy jobs run Config.Eps as a CutEps query
// against the prebuilt dendrogram — the cheap way to schedule an eps sweep
// as independent, individually cancellable jobs.
package engine

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pdbscan"
)

// Sentinel errors of the admission queue. Job.Err returns them wrapped in
// nothing — compare with errors.Is.
var (
	// ErrQueueFull is returned by Submit when the admission queue already
	// holds MaxQueue jobs.
	ErrQueueFull = errors.New("engine: admission queue full")
	// ErrQueueTimeout completes a job that waited longer than QueueTimeout
	// without being dispatched.
	ErrQueueTimeout = errors.New("engine: job timed out waiting in queue")
	// ErrClosed is returned by Submit after Close, and completes jobs still
	// queued when Close is called.
	ErrClosed = errors.New("engine: engine closed")
	// ErrBadRequest is returned by Submit when the request does not name
	// exactly one run target.
	ErrBadRequest = errors.New("engine: request must set exactly one of Clusterer, Streaming, or Hierarchy")
)

// Options configures an Engine. The zero value is usable: GOMAXPROCS worker
// budget, a queue of DefaultMaxQueue jobs, no queue timeout.
type Options struct {
	// Budget is the total number of workers shared by all running jobs.
	// <= 0 means runtime.GOMAXPROCS(0).
	Budget int
	// MaxQueue bounds the admission queue (jobs waiting to run). <= 0 means
	// DefaultMaxQueue. Submit returns ErrQueueFull beyond it.
	MaxQueue int
	// QueueTimeout bounds how long a job may wait in the queue before it is
	// rejected with ErrQueueTimeout. <= 0 means no timeout.
	QueueTimeout time.Duration
}

// DefaultMaxQueue is the admission-queue bound applied when Options.MaxQueue
// is not set.
const DefaultMaxQueue = 64

// Request describes one job: a run target (exactly one of Clusterer,
// Streaming, or Hierarchy), its Config, and a scheduling priority.
type Request struct {
	// Clusterer runs Config as a batch job (Clusterer.RunContext).
	Clusterer *pdbscan.Clusterer
	// Streaming runs Config as a streaming tick (StreamingClusterer.
	// RunContext).
	Streaming *pdbscan.StreamingClusterer
	// Hierarchy runs Config.Eps as a dendrogram cut (Hierarchy.
	// CutEpsContext) on a prebuilt hierarchy. Config.Eps must pass the
	// hierarchy's ValidateEps; Config.MinPts must be 0 or the hierarchy's
	// own MinPts (the hierarchy fixes it at build time). Fields that only
	// configure a full run (Method, Rho, Shards, ...) are ignored.
	Hierarchy *pdbscan.Hierarchy
	// Config is the run configuration. Config.Workers is the job's worker
	// cap, drawn from the Engine's shared budget while the job runs; 0 (or
	// any value above the budget) requests the whole budget, which
	// serializes the job against everything else. Config.Validate is
	// applied at Submit, before the job can occupy a queue slot.
	Config pdbscan.Config
	// Priority orders queued jobs: higher runs first, ties in submission
	// order. Running jobs are never preempted.
	Priority int
}

// Stats is a snapshot of the Engine's live state and cumulative counters.
type Stats struct {
	// Queued and Running are the current number of jobs waiting and in
	// flight; WorkersInUse is the budget consumed by running jobs (always
	// <= Budget).
	Queued, Running, WorkersInUse, Budget int
	// Submitted counts jobs admitted by Submit (queued or started). Every
	// admitted job ends in exactly one terminal counter, so Submitted =
	// Queued + Running + Completed + Cancelled + TimedOut + Closed + Failed
	// at any snapshot.
	Submitted uint64
	// Completed counts jobs that finished with a nil error.
	Completed uint64
	// Cancelled counts jobs that ended with their context cancelled or its
	// deadline exceeded, whether queued or mid-run.
	Cancelled uint64
	// Rejected counts Submit calls refused with ErrQueueFull.
	Rejected uint64
	// TimedOut counts queued jobs rejected with ErrQueueTimeout.
	TimedOut uint64
	// Closed counts queued jobs completed with ErrClosed by Close.
	Closed uint64
	// Failed counts jobs that finished with any other error.
	Failed uint64
}

// Engine schedules jobs. Create with New; all methods are safe for
// concurrent use.
type Engine struct {
	budget       int
	maxQueue     int
	queueTimeout time.Duration

	mu      sync.Mutex
	queue   jobQueue
	avail   int // budget not held by running jobs
	running int
	seq     uint64
	closed  bool
	wg      sync.WaitGroup // running job goroutines

	submitted, completed, cancelled, rejected, timedOut, closedJobs, failed uint64
}

// New returns an Engine with the given options (see Options for defaults).
func New(opts Options) *Engine {
	budget := opts.Budget
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	return &Engine{
		budget:       budget,
		maxQueue:     maxQueue,
		queueTimeout: opts.QueueTimeout,
		avail:        budget,
	}
}

// Budget returns the Engine's total worker budget.
func (e *Engine) Budget() int { return e.budget }

// Submit validates req, and either starts it immediately (queue empty and
// its worker cap fits the unused budget), enqueues it, or rejects it
// (ErrQueueFull, ErrClosed, a validation error, or ctx already done). The
// returned Job completes asynchronously; wait on Done or a blocking
// accessor. ctx covers the job's whole life: cancelling it dequeues a
// waiting job or unwinds a running one cooperatively.
func (e *Engine) Submit(ctx context.Context, req Request) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	targets := 0
	if req.Clusterer != nil {
		targets++
	}
	if req.Streaming != nil {
		targets++
	}
	if req.Hierarchy != nil {
		targets++
	}
	if targets != 1 {
		return nil, ErrBadRequest
	}
	cfgCheck := req.Config
	if req.Hierarchy != nil {
		if err := req.Hierarchy.ValidateEps(cfgCheck.Eps); err != nil {
			return nil, err
		}
		switch cfgCheck.MinPts {
		case 0:
			cfgCheck.MinPts = req.Hierarchy.MinPts()
		case req.Hierarchy.MinPts():
		default:
			return nil, fmt.Errorf("engine: Config.MinPts %d must be 0 or the hierarchy's MinPts %d",
				cfgCheck.MinPts, req.Hierarchy.MinPts())
		}
	}
	if err := cfgCheck.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := req.Config.Workers
	if workers <= 0 || workers > e.budget {
		workers = e.budget
	}
	j := &Job{
		req:       req,
		ctx:       ctx,
		workers:   workers,
		priority:  req.Priority,
		submitted: time.Now(),
		idx:       -1,
		done:      make(chan struct{}),
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if e.queue.Len() == 0 && e.avail >= workers {
		j.seq = e.seq
		e.seq++
		e.submitted++
		e.startLocked(j)
		e.mu.Unlock()
		return j, nil
	}
	if e.queue.Len() >= e.maxQueue {
		// Rejected submissions consume no scheduler state — in particular no
		// seq, so admitted jobs keep a dense FIFO order even under a storm of
		// ErrQueueFull rejections.
		e.rejected++
		e.mu.Unlock()
		return nil, ErrQueueFull
	}
	j.seq = e.seq
	e.seq++
	e.submitted++
	// Watchers are registered before the job becomes visible to the
	// scheduler, and under the lock, so a dispatch (startLocked stops them)
	// never races their assignment. Their callbacks run on fresh goroutines
	// and re-take the lock, so there is no lock-order issue.
	if e.queueTimeout > 0 {
		j.timer = time.AfterFunc(e.queueTimeout, func() {
			e.finishQueued(j, ErrQueueTimeout, &e.timedOut)
		})
	}
	j.stopCtxWatch = context.AfterFunc(ctx, func() {
		e.finishQueued(j, ctx.Err(), &e.cancelled)
	})
	heap.Push(&e.queue, j)
	// The new job may outrank the current head (Priority beats FIFO), in
	// which case it is dispatchable right away.
	e.dispatch()
	e.mu.Unlock()
	return j, nil
}

// startLocked moves a job (already off the queue) into the running state.
// Caller holds e.mu.
func (e *Engine) startLocked(j *Job) {
	e.avail -= j.workers
	e.running++
	j.started = time.Now()
	j.queuedFor = j.started.Sub(j.submitted)
	if j.timer != nil {
		j.timer.Stop()
	}
	if j.stopCtxWatch != nil {
		j.stopCtxWatch()
	}
	e.wg.Add(1)
	go e.runJob(j)
}

// dispatch starts queued jobs, best first, while the head's worker cap fits
// the unused budget. The head is never overtaken (no backfill): a large job
// waits at most for running jobs to drain, not forever behind a stream of
// small ones. Caller holds e.mu.
func (e *Engine) dispatch() {
	for e.queue.Len() > 0 {
		j := e.queue.jobs[0]
		if j.workers > e.avail {
			return
		}
		heap.Pop(&e.queue)
		e.startLocked(j)
	}
}

// runJob executes one job on its own goroutine and returns its workers to
// the budget when done.
func (e *Engine) runJob(j *Job) {
	defer e.wg.Done()
	cfg := j.req.Config
	cfg.Workers = j.workers
	switch {
	case j.req.Clusterer != nil:
		j.res, j.err = j.req.Clusterer.RunContext(j.ctx, cfg)
	case j.req.Hierarchy != nil:
		j.res, j.err = j.req.Hierarchy.CutEpsContext(j.ctx, cfg.Eps, cfg.Workers)
	default:
		j.sres, j.err = j.req.Streaming.RunContext(j.ctx, cfg)
	}
	j.ranFor = time.Since(j.started)
	e.mu.Lock()
	e.avail += j.workers
	e.running--
	switch {
	case j.err == nil:
		e.completed++
	case errors.Is(j.err, context.Canceled), errors.Is(j.err, context.DeadlineExceeded):
		e.cancelled++
	default:
		e.failed++
	}
	e.dispatch()
	e.mu.Unlock()
	close(j.done)
}

// finishQueued completes a job that is still waiting in the queue (queue
// timeout, context cancellation, Close). A job that already started — or
// that another finisher beat this one to — is left alone: once running, only
// runJob completes it.
func (e *Engine) finishQueued(j *Job, err error, counter *uint64) {
	e.mu.Lock()
	if j.idx < 0 {
		e.mu.Unlock()
		return
	}
	heap.Remove(&e.queue, j.idx)
	// The job waited and is leaving the queue without running; record the
	// true wait so JobStats.Queued (and any latency histogram built on it)
	// reports timed-out and cancelled jobs honestly instead of as 0.
	j.queuedFor = time.Since(j.submitted)
	if counter != nil {
		*counter++
	}
	if j.timer != nil {
		j.timer.Stop()
	}
	if j.stopCtxWatch != nil {
		j.stopCtxWatch()
	}
	// Removing j may have exposed a head that fits the free budget (j could
	// have been a large job blocking smaller ones behind it).
	e.dispatch()
	e.mu.Unlock()
	j.err = err
	close(j.done)
}

// Close stops admission (Submit returns ErrClosed), completes every queued
// job with ErrClosed (counted in Stats.Closed), and waits for running jobs
// to finish. Running jobs are not cancelled — cancel their submit contexts
// to unwind them early.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		// A concurrent Close already swept the queue; still wait for the
		// running jobs before returning.
		e.wg.Wait()
		return
	}
	e.closed = true
	var dropped []*Job
	for e.queue.Len() > 0 {
		j := heap.Pop(&e.queue).(*Job)
		j.queuedFor = time.Since(j.submitted)
		if j.timer != nil {
			j.timer.Stop()
		}
		if j.stopCtxWatch != nil {
			j.stopCtxWatch()
		}
		e.closedJobs++
		dropped = append(dropped, j)
	}
	e.mu.Unlock()
	for _, j := range dropped {
		j.err = ErrClosed
		close(j.done)
	}
	e.wg.Wait()
}

// Stats returns a consistent snapshot of the live state and counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Queued:       e.queue.Len(),
		Running:      e.running,
		WorkersInUse: e.budget - e.avail,
		Budget:       e.budget,
		Submitted:    e.submitted,
		Completed:    e.completed,
		Cancelled:    e.cancelled,
		Rejected:     e.rejected,
		TimedOut:     e.timedOut,
		Closed:       e.closedJobs,
		Failed:       e.failed,
	}
}

// Job is one submitted run. Its accessors block until the job completes;
// Done exposes the completion signal for select loops.
type Job struct {
	req       Request
	ctx       context.Context
	workers   int
	priority  int
	seq       uint64
	submitted time.Time

	// idx is the heap index while queued, -1 otherwise. Guarded by e.mu.
	idx int

	// timer / stopCtxWatch guard the queued state; stopped on dispatch and
	// on finishQueued. Written once at Submit under e.mu.
	timer        *time.Timer
	stopCtxWatch func() bool

	// started/queuedFor are written under e.mu by exactly one of startLocked,
	// finishQueued, or Close (the queue-exit paths are mutually exclusive via
	// idx/closed); ranFor, res, sres, and err are written by the completing
	// goroutine before done is closed (the close is the happens-before edge
	// readers synchronize on).
	started   time.Time
	queuedFor time.Duration
	ranFor    time.Duration
	res       *pdbscan.Result
	sres      *pdbscan.StreamResult
	err       error

	done chan struct{}
}

// Done returns a channel closed when the job completes (successfully or
// not).
func (j *Job) Done() <-chan struct{} { return j.done }

// Err blocks until the job completes and returns its error: nil on success,
// the submit context's error if it was cancelled, ErrQueueTimeout /
// ErrClosed if it never ran.
func (j *Job) Err() error {
	<-j.done
	return j.err
}

// Result blocks until the job completes and returns the batch or
// hierarchy-cut result (nil for streaming jobs — use StreamResult).
func (j *Job) Result() (*pdbscan.Result, error) {
	<-j.done
	return j.res, j.err
}

// StreamResult blocks until the job completes and returns the streaming
// result (nil for batch jobs — use Result).
func (j *Job) StreamResult() (*pdbscan.StreamResult, error) {
	<-j.done
	return j.sres, j.err
}

// JobStats describes one completed (or in-flight) job's scheduling.
type JobStats struct {
	// Workers is the cap the job was (or will be) granted from the budget.
	Workers int
	// Queued is how long the job waited in the queue before leaving it — by
	// dispatch, queue timeout, context cancellation, or a Close sweep —
	// near zero if it started immediately. (A Submit rejected outright with
	// ErrQueueFull returns no Job, so there is nothing to record.)
	Queued time.Duration
	// Run is the execution time (0 if the job never ran).
	Run time.Duration
}

// Stats blocks until the job completes and returns its scheduling stats.
func (j *Job) Stats() JobStats {
	<-j.done
	return JobStats{Workers: j.workers, Queued: j.queuedFor, Run: j.ranFor}
}

// jobQueue is the priority queue of waiting jobs: higher Priority first,
// ties in submission (seq) order.
type jobQueue struct {
	jobs []*Job
}

func (q *jobQueue) Len() int { return len(q.jobs) }
func (q *jobQueue) Less(a, b int) bool {
	ja, jb := q.jobs[a], q.jobs[b]
	if ja.priority != jb.priority {
		return ja.priority > jb.priority
	}
	return ja.seq < jb.seq
}
func (q *jobQueue) Swap(a, b int) {
	q.jobs[a], q.jobs[b] = q.jobs[b], q.jobs[a]
	q.jobs[a].idx = a
	q.jobs[b].idx = b
}
func (q *jobQueue) Push(x any) {
	j := x.(*Job)
	j.idx = len(q.jobs)
	q.jobs = append(q.jobs, j)
}
func (q *jobQueue) Pop() any {
	n := len(q.jobs)
	j := q.jobs[n-1]
	q.jobs[n-1] = nil
	q.jobs = q.jobs[:n-1]
	j.idx = -1
	return j
}
