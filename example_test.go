package pdbscan_test

import (
	"fmt"

	"pdbscan"
)

// Demonstrates approximate DBSCAN: with well-separated clusters the
// approximate answer coincides with the exact one, at (asymptotically)
// linear work.
func Example_approximate() {
	var points [][]float64
	for i := 0; i < 20; i++ {
		points = append(points, []float64{float64(i%5) * 0.1, 0})      // blob A
		points = append(points, []float64{100 + float64(i%5)*0.1, 50}) // blob B
	}
	res, err := pdbscan.Cluster(points, pdbscan.Config{
		Eps:    1.0,
		MinPts: 4,
		Method: pdbscan.MethodApprox,
		Rho:    0.01, // core pairs in (eps, 1.01*eps] may merge or not
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters)
	// Output: clusters: 2
}

// Demonstrates the reusable Clusterer: the eps-keyed cell structure is built
// once and shared by every Run in the MinPts sweep, and each Run may use its
// own Workers budget — even from concurrent goroutines.
func ExampleClusterer() {
	var points [][]float64
	for i := 0; i < 12; i++ {
		points = append(points, []float64{float64(i%3) * 0.1, 0}) // dense blob
		points = append(points, []float64{40, float64(i) * 9})    // sparse column
	}
	c, err := pdbscan.NewClusterer(points, 1.0)
	if err != nil {
		panic(err)
	}
	for _, minPts := range []int{4, 13} {
		res, err := c.Run(pdbscan.Config{MinPts: minPts, Workers: 2})
		if err != nil {
			panic(err)
		}
		fmt.Printf("minPts=%d: clusters=%d noise=%d\n", minPts, res.NumClusters, res.NumNoise())
	}
	// Output:
	// minPts=4: clusters=1 noise=12
	// minPts=13: clusters=0 noise=24
}

// Demonstrates selecting a 2D-specific variant and the flat input form.
func ExampleClusterFlat() {
	// Two clusters on a line, stored row-major: (0,0) (1,0) ... (10,0) (11,0) ...
	flat := []float64{
		0, 0, 1, 0, 2, 0, // cluster around x=0..2
		50, 0, 51, 0, 52, 0, // cluster around x=50..52
	}
	res, err := pdbscan.ClusterFlat(flat, 2, pdbscan.Config{
		Eps:    1.5,
		MinPts: 2,
		Method: pdbscan.Method2DGridUSEC,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters, "noise:", res.NumNoise())
	// Output: clusters: 2 noise: 0
}
