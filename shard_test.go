package pdbscan

import (
	"fmt"
	"testing"

	"pdbscan/internal/parallel"
)

// equivalentResults checks that two results are the same clustering up to a
// bijective relabeling of clusters: identical core flags and noise, a
// consistent label bijection over every point, and border membership sets
// that match under that bijection. labelsEqual is the strict (identity
// relabeling) form; this is the invariance the sharded path guarantees
// against the monolithic one even when the two run on different cell layouts
// (2d-box-* methods, whose sharded runs use the grid lattice).
func equivalentResults(a, b *Result) error {
	if len(a.Labels) != len(b.Labels) {
		return fmt.Errorf("length %d vs %d", len(a.Labels), len(b.Labels))
	}
	if a.NumClusters != b.NumClusters {
		return fmt.Errorf("NumClusters %d vs %d", a.NumClusters, b.NumClusters)
	}
	// The bijection is built from core points only: a core point belongs to
	// exactly one cluster, and every cluster has core points, so the core
	// rows determine the full correspondence. Border primary labels cannot
	// seed it — a multi-membership border point takes the smallest label in
	// each result's own numbering, which may name different clusters on the
	// two sides.
	ab := make([]int32, a.NumClusters) // a-label -> b-label
	ba := make([]int32, b.NumClusters)
	for i := range ab {
		ab[i] = -1
	}
	for i := range ba {
		ba[i] = -1
	}
	for i := range a.Labels {
		if a.Core[i] != b.Core[i] {
			return fmt.Errorf("core flag of point %d: %v vs %v", i, a.Core[i], b.Core[i])
		}
		if !a.Core[i] {
			continue
		}
		la, lb := a.Labels[i], b.Labels[i]
		if ab[la] == -1 && ba[lb] == -1 {
			ab[la], ba[lb] = lb, la
		} else if ab[la] != lb || ba[lb] != la {
			return fmt.Errorf("core point %d breaks the label bijection: %d vs %d (mapped %d, %d)", i, la, lb, ab[la], ba[lb])
		}
	}
	// Every point's full membership set must match under the bijection
	// (border points may belong to several clusters; noise to none).
	memberships := func(r *Result, i int) []int32 {
		if m, ok := r.Border[int32(i)]; ok {
			return m
		}
		if r.Labels[i] < 0 {
			return nil
		}
		return []int32{r.Labels[i]}
	}
	for i := range a.Labels {
		ma, mb := memberships(a, i), memberships(b, i)
		if len(ma) != len(mb) {
			return fmt.Errorf("point %d: memberships %v vs %v", i, ma, mb)
		}
		set := make(map[int32]bool, len(ma))
		for _, l := range ma {
			set[ab[l]] = true
		}
		for _, l := range mb {
			if !set[l] {
				return fmt.Errorf("point %d: memberships %v map to %v, missing %d", i, ma, set, l)
			}
		}
	}
	return nil
}

// TestShardedMatchesMonolithicAllMethods pins the tentpole equivalence on a
// mid-size input: for every method and several shard counts, the sharded
// path must reproduce the monolithic clustering — bit-identically for
// grid-layout methods (sharding preserves even the label order there), and
// up to label permutation for the 2d-box-* methods, which sharding serves
// from the grid lattice.
func TestShardedMatchesMonolithicAllMethods(t *testing.T) {
	for _, d := range []int{2, 3} {
		rows := blobs(3000, d, 42)
		for _, m := range streamMethodsFor(d) {
			mono, err := Cluster(rows, Config{Eps: 2.5, MinPts: 6, Method: m, Shards: 1})
			if err != nil {
				t.Fatalf("%s monolithic: %v", m, err)
			}
			boxLayout := m == Method2DBoxBCP || m == Method2DBoxUSEC || m == Method2DBoxDelaunay
			for _, k := range []int{2, 5, 16} {
				sh, err := Cluster(rows, Config{Eps: 2.5, MinPts: 6, Method: m, Shards: k})
				if err != nil {
					t.Fatalf("%s shards=%d: %v", m, k, err)
				}
				if err := equivalentResults(sh, mono); err != nil {
					t.Fatalf("d=%d %s shards=%d: %v", d, m, k, err)
				}
				if !boxLayout {
					if err := labelsEqual(sh, mono); err != nil {
						t.Fatalf("d=%d %s shards=%d: sharded labels should be bit-identical on the grid layout: %v", d, m, k, err)
					}
				}
			}
		}
	}
}

// TestShardedBucketingInteraction: explicit Shards wins over Bucketing (same
// results either way), while auto shards defer to an explicit Bucketing
// request and stay monolithic.
func TestShardedBucketingInteraction(t *testing.T) {
	rows := blobs(2000, 2, 31)
	cfg := Config{Eps: 2.5, MinPts: 5, Bucketing: true, Buckets: 4}
	mono, err := Cluster(rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 3
	sh, err := Cluster(rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := labelsEqual(sh, mono); err != nil {
		t.Fatalf("bucketing + shards: %v", err)
	}
	// The auto heuristic must resolve to 1 when Bucketing is set, and to >1
	// for a large non-bucketed input.
	if got := resolveShards(&Config{Bucketing: true}, 1<<20); got != 1 {
		t.Fatalf("auto shards with Bucketing = %d, want 1", got)
	}
	if got := resolveShards(&Config{}, 1<<20); got < 2 {
		t.Fatalf("auto shards at 1M points = %d, want > 1", got)
	}
	if got := resolveShards(&Config{}, 1000); got != 1 {
		t.Fatalf("auto shards at 1k points = %d, want 1", got)
	}
	// Auto is capped by the worker budget; explicit counts pass through.
	w := parallel.NewPool(2).Workers()
	if got := resolveShards(&Config{Workers: 2}, 1<<30); got != 4*w {
		t.Fatalf("auto shards cap = %d, want %d", got, 4*w)
	}
	if got := resolveShards(&Config{Shards: 7}, 10); got != 7 {
		t.Fatalf("explicit shards = %d, want 7", got)
	}
	// Prepare shares the Shards validation and the layout decision.
	c, err := NewClusterer(rows, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare(Config{Shards: -2}); err == nil {
		t.Fatal("Prepare accepted negative Shards")
	}
	if err := c.Prepare(Config{Shards: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStreamingRun checks the streaming surface: an explicitly
// sharded Run matches the incremental result on the same window, and the
// incremental path keeps working (correctly, from a Full rebuild) after a
// sharded run dropped the caches.
func TestShardedStreamingRun(t *testing.T) {
	rows := blobs(1200, 2, 17)
	s, err := NewStreamingClusterer(2, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rows[:800]); err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinPts: 6}
	inc1, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shCfg := cfg
	shCfg.Shards = 4
	sh, err := s.Run(shCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := labelsEqual(&sh.Result, &inc1.Result); err != nil {
		t.Fatalf("sharded streaming run differs from incremental: %v", err)
	}
	if st := s.LastRunStats(); !st.Full || st.DirtyCells != st.NumCells {
		t.Fatalf("sharded run stats = %+v, want Full with every cell dirty", st)
	}
	// Mutate, then run incrementally again: the dropped caches must force a
	// Full rebuild that still matches a from-scratch Cluster.
	if _, err := s.Insert(rows[800:]); err != nil {
		t.Fatal(err)
	}
	inc2, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.LastRunStats(); !st.Full {
		t.Fatalf("run after a sharded run reused dropped caches: %+v", st)
	}
	want, err := Cluster(rows, Config{Eps: 2.5, MinPts: 6, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := equivalentResults(&inc2.Result, want); err != nil {
		t.Fatalf("incremental run after sharded run: %v", err)
	}
	// Auto (Shards = 0) must stay incremental: no mutations, so the next
	// run reuses everything.
	if _, err := s.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if st := s.LastRunStats(); st.Full || st.DirtyCells != 0 {
		t.Fatalf("auto streaming run was not incremental: %+v", st)
	}
}

// TestShardedEmptyStream: a sharded Run on an empty stream returns an empty
// result rather than erroring (parity with the incremental path).
func TestShardedEmptyStream(t *testing.T) {
	s, err := NewStreamingClusterer(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(Config{MinPts: 2, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Fatalf("empty sharded stream: %d clusters, %d labels", res.NumClusters, len(res.Labels))
	}
	// And after points exist, sharded runs still work on the same instance.
	if _, err := s.Insert(blobs(300, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Config{MinPts: 2, Shards: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMoreShardsThanCells: shard counts far beyond the occupied
// lattice are clamped, not errors — a one-cell input runs with any Shards.
func TestShardedMoreShardsThanCells(t *testing.T) {
	rows := [][]float64{{0, 0}, {0.1, 0.1}, {0.2, 0}, {0.1, 0}}
	mono, err := Cluster(rows, Config{Eps: 10, MinPts: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Cluster(rows, Config{Eps: 10, MinPts: 2, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := labelsEqual(sh, mono); err != nil {
		t.Fatal(err)
	}
	// Streaming takes the same monolithic fallback on an uncuttable lattice.
	s, err := NewStreamingClusterer(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rows); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(Config{MinPts: 2, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := labelsEqual(&res.Result, mono); err != nil {
		t.Fatal(err)
	}
}
